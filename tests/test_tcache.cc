/**
 * @file
 * TCache unit tests (§5.1, Fig. 6): sub-tcache bucketing by bitmap
 * cache line, cursor rotation across sub-tcaches, capacity limits,
 * LIFO-within-bucket behaviour, and drain.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "nvalloc/tcache.h"

namespace nvalloc {
namespace {

class TcacheFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PmDeviceConfig cfg;
        cfg.size = size_t{1} << 26;
        dev_ = std::make_unique<PmDevice>(cfg);
        slab_ = std::make_unique<VSlab>(dev_.get(),
                                        dev_->mapRegion(kSlabSize),
                                        sizeToClass(64), 6, true, false);
    }

    CachedBlock
    blockFor(unsigned idx)
    {
        return CachedBlock{slab_->blockOffset(idx), slab_.get(), idx};
    }

    std::unique_ptr<PmDevice> dev_;
    std::unique_ptr<VSlab> slab_;
};

TEST_F(TcacheFixture, PushPopCounts)
{
    TCache tc(6, true, 48);
    unsigned cls = sizeToClass(64);
    EXPECT_TRUE(tc.empty(cls));
    for (unsigned i = 0; i < 48; ++i)
        EXPECT_TRUE(tc.push(cls, blockFor(i)));
    EXPECT_TRUE(tc.full(cls));
    EXPECT_FALSE(tc.push(cls, blockFor(48))) << "capacity enforced";

    std::set<uint64_t> popped;
    CachedBlock b;
    for (unsigned i = 0; i < 48; ++i) {
        ASSERT_TRUE(tc.pop(cls, b));
        ASSERT_TRUE(popped.insert(b.off).second);
    }
    EXPECT_FALSE(tc.pop(cls, b));
    EXPECT_TRUE(tc.empty(cls));
}

TEST_F(TcacheFixture, ConsecutivePopsRotateAcrossBitLines)
{
    // Fill with blocks covering all stripes; consecutive pops must
    // come from different bitmap cache lines (the §5.1 guarantee).
    TCache tc(6, true, 48);
    unsigned cls = sizeToClass(64);
    for (unsigned i = 0; i < 48; ++i)
        tc.push(cls, blockFor(i)); // blocks 0..47 span 6 stripes

    CachedBlock prev{}, cur{};
    ASSERT_TRUE(tc.pop(cls, prev));
    unsigned same_line = 0, pops = 1;
    while (tc.pop(cls, cur)) {
        if (slab_->bitLineOf(cur.idx) == slab_->bitLineOf(prev.idx))
            ++same_line;
        prev = cur;
        ++pops;
    }
    EXPECT_EQ(pops, 48u);
    // With 6 sub-tcaches over 6 lines, adjacent pops share a line only
    // when buckets drain unevenly at the very end.
    EXPECT_LE(same_line, 6u);
}

TEST_F(TcacheFixture, NonInterleavedIsPlainLifo)
{
    TCache tc(6, /*interleaved=*/false, 16);
    EXPECT_EQ(tc.subCount(), 1u);
    unsigned cls = sizeToClass(64);
    for (unsigned i = 0; i < 8; ++i)
        tc.push(cls, blockFor(i));
    CachedBlock b;
    for (int i = 7; i >= 0; --i) {
        ASSERT_TRUE(tc.pop(cls, b));
        EXPECT_EQ(b.idx, unsigned(i)) << "strict LIFO";
    }
}

TEST_F(TcacheFixture, ClassesAreIndependent)
{
    TCache tc(6, true, 8);
    unsigned c64 = sizeToClass(64), c1k = sizeToClass(1024);
    tc.push(c64, blockFor(0));
    EXPECT_EQ(tc.count(c64), 1u);
    EXPECT_EQ(tc.count(c1k), 0u);
    CachedBlock b;
    EXPECT_FALSE(tc.pop(c1k, b));
    EXPECT_TRUE(tc.pop(c64, b));
}

TEST_F(TcacheFixture, DrainVisitsEverythingOnce)
{
    TCache tc(6, true, 48);
    unsigned c64 = sizeToClass(64);
    unsigned c128 = sizeToClass(128);
    for (unsigned i = 0; i < 10; ++i)
        tc.push(c64, blockFor(i));
    for (unsigned i = 10; i < 15; ++i)
        tc.push(c128, blockFor(i));

    std::set<uint64_t> seen;
    unsigned n64 = 0, n128 = 0;
    tc.drain([&](unsigned cls, const CachedBlock &b) {
        EXPECT_TRUE(seen.insert(b.off).second);
        n64 += cls == c64;
        n128 += cls == c128;
    });
    EXPECT_EQ(n64, 10u);
    EXPECT_EQ(n128, 5u);
    EXPECT_TRUE(tc.empty(c64));
    EXPECT_TRUE(tc.empty(c128));
}

} // namespace
} // namespace nvalloc
