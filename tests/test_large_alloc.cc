/**
 * @file
 * Large allocator tests (§4.3): best-fit with split and coalesce,
 * direct >2 MB regions, the decay pipeline
 * (reclaimed → retained → OS), persistent region-table maintenance,
 * gap-based free-space recovery, and the in-place descriptor mode.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "nvalloc/large_alloc.h"

namespace nvalloc {
namespace {

class LargeFixture : public ::testing::Test
{
  protected:
    void
    init(bool log_mode, uint64_t decay_ns = 50'000'000)
    {
        PmDeviceConfig dcfg;
        dcfg.size = size_t{1} << 28;
        dev_ = std::make_unique<PmDevice>(dcfg);
        table_off_ = dev_->mapRegion(4096);
        table_ = static_cast<uint64_t *>(dev_->at(table_off_));

        cfg_.decay_window_ns = decay_ns;
        if (log_mode) {
            log_ = std::make_unique<BookkeepingLog>();
            log_region_ = dev_->mapRegion(256 * 1024);
            log_->attach(dev_.get(), log_region_, 256 * 1024, true,
                         true, 0.5, true);
        }
        large_ = std::make_unique<LargeAllocator>();
        large_->init(dev_.get(), cfg_, log_.get(), table_, 256);
        VClock::reset();
    }

    NvAllocConfig cfg_;
    std::unique_ptr<PmDevice> dev_;
    std::unique_ptr<BookkeepingLog> log_;
    std::unique_ptr<LargeAllocator> large_;
    uint64_t table_off_ = 0, log_region_ = 0;
    uint64_t *table_ = nullptr;
};

TEST_F(LargeFixture, AllocateFindFree)
{
    init(true);
    uint64_t a = large_->allocate(100 * 1024, false);
    ASSERT_NE(a, 0u);
    Veh *veh = large_->findVeh(a);
    ASSERT_NE(veh, nullptr);
    EXPECT_EQ(veh->off, a);
    EXPECT_EQ(veh->size, 112u * 1024u) << "rounded to 16 KB grain";
    EXPECT_EQ(veh->state, Veh::State::Activated);

    large_->free(a);
    veh = large_->findVeh(a);
    ASSERT_NE(veh, nullptr);
    EXPECT_EQ(veh->state, Veh::State::Reclaimed);
}

TEST_F(LargeFixture, BestFitPrefersTightestExtent)
{
    init(true);
    // Create free extents of 64 KB and 128 KB by alloc+free with
    // separators pinned so they cannot coalesce.
    uint64_t small_e = large_->allocate(64 * 1024, false);
    uint64_t pin1 = large_->allocate(16 * 1024, false);
    uint64_t big_e = large_->allocate(128 * 1024, false);
    uint64_t pin2 = large_->allocate(16 * 1024, false);
    (void)pin1;
    (void)pin2;
    large_->free(small_e);
    large_->free(big_e);

    uint64_t got = large_->allocate(64 * 1024, false);
    EXPECT_EQ(got, small_e) << "best fit picks the 64 KB hole";
}

TEST_F(LargeFixture, SplitLeavesRemainderFree)
{
    init(true);
    uint64_t a = large_->allocate(256 * 1024, false);
    large_->free(a);
    uint64_t b = large_->allocate(64 * 1024, false);
    EXPECT_EQ(b, a) << "front split of the freed extent";
    Veh *rest = large_->findVeh(a + 64 * 1024);
    ASSERT_NE(rest, nullptr);
    EXPECT_EQ(rest->state, Veh::State::Reclaimed);
    // The remainder coalesced with the rest of the region, so it is
    // at least the 192 KB left from the original 256 KB extent.
    EXPECT_GE(rest->size, 192u * 1024u);
}

TEST_F(LargeFixture, CoalesceMergesNeighbors)
{
    init(true);
    uint64_t a = large_->allocate(64 * 1024, false);
    uint64_t b = large_->allocate(64 * 1024, false);
    uint64_t c = large_->allocate(64 * 1024, false);
    ASSERT_EQ(b, a + 64 * 1024);
    ASSERT_EQ(c, b + 64 * 1024);

    large_->free(a);
    large_->free(c);
    large_->free(b); // merges with both neighbours
    Veh *merged = large_->findVeh(a);
    ASSERT_NE(merged, nullptr);
    EXPECT_EQ(merged->off, a);
    EXPECT_GE(merged->size, 3u * 64u * 1024u);
    EXPECT_EQ(large_->findVeh(b), merged);
    EXPECT_EQ(large_->findVeh(c), merged);
    EXPECT_GE(large_->stats().coalesces, 2u);
}

TEST_F(LargeFixture, DirectRegionForHugeAllocations)
{
    init(true);
    size_t committed = dev_->committedBytes();
    uint64_t a = large_->allocate(3 * 1024 * 1024, false);
    Veh *veh = large_->findVeh(a);
    ASSERT_NE(veh, nullptr);
    EXPECT_TRUE(veh->is_direct);
    EXPECT_GT(dev_->committedBytes(), committed + 3 * 1024 * 1024 - 1);

    large_->free(a);
    EXPECT_EQ(large_->findVeh(a), nullptr) << "unmapped entirely";
    EXPECT_EQ(dev_->committedBytes(), committed);
}

TEST_F(LargeFixture, DecayDemotesAndEvicts)
{
    init(true, /*decay_ns=*/100'000); // short window for the test
    uint64_t a = large_->allocate(64 * 1024, false);
    large_->free(a);
    ASSERT_GT(large_->reclaimedBytes(), 0u);

    // Let virtual time pass well beyond two windows, then tick.
    VClock::advance(200'000, TimeKind::Other);
    large_->decayTick();
    EXPECT_EQ(large_->reclaimedBytes(), 0u) << "demoted";

    VClock::advance(200'000, TimeKind::Other);
    large_->decayTick();
    // The whole region became one retained extent and went to the OS.
    EXPECT_EQ(large_->retainedBytes(), 0u) << "evicted";
    EXPECT_GE(large_->stats().evictions, 1u);
}

TEST_F(LargeFixture, RetainedExtentIsRecommittedOnReuse)
{
    init(true, 100'000);
    uint64_t a = large_->allocate(64 * 1024, false);
    uint64_t b = large_->allocate(64 * 1024, false);
    (void)b; // keeps the region alive (no whole-region eviction)
    large_->free(a);
    VClock::advance(150'000, TimeKind::Other);
    large_->decayTick();
    ASSERT_GT(large_->retainedBytes(), 0u);
    size_t committed = dev_->committedBytes();

    uint64_t c = large_->allocate(64 * 1024, false);
    EXPECT_EQ(c, a) << "retained extent reused";
    EXPECT_GT(dev_->committedBytes(), committed);
}

TEST_F(LargeFixture, RegionTablePersistsLiveRegions)
{
    init(true);
    large_->allocate(64 * 1024, false);
    unsigned populated = 0;
    for (unsigned i = 0; i < 256; ++i)
        populated += table_[i] != 0;
    EXPECT_EQ(populated, 1u);

    large_->allocate(5 * 1024 * 1024, false); // direct region
    populated = 0;
    for (unsigned i = 0; i < 256; ++i)
        populated += table_[i] != 0;
    EXPECT_EQ(populated, 2u);
}

TEST_F(LargeFixture, GapRecoveryRebuildsFreeSpace)
{
    init(true);
    uint64_t a = large_->allocate(64 * 1024, false);
    uint64_t b = large_->allocate(128 * 1024, false);
    uint64_t c = large_->allocate(64 * 1024, false);
    large_->free(b); // a .. [gap] .. c

    // "Restart": a fresh allocator adopts the log + region table.
    BookkeepingLog log2;
    log2.attach(dev_.get(), log_region_, 256 * 1024, true, true, 0.5,
                false);
    LargeAllocator fresh;
    fresh.init(dev_.get(), cfg_, &log2, table_, 256);
    log2.replay([&](LogType type, uint64_t off, uint64_t size,
                    LogEntryRef ref) {
        fresh.adoptActivated(off, size, type == kLogSlab, ref);
    });
    fresh.rebuildFreeSpace();

    EXPECT_NE(fresh.findVeh(a), nullptr);
    EXPECT_EQ(fresh.findVeh(a)->state, Veh::State::Activated);
    EXPECT_EQ(fresh.findVeh(c)->state, Veh::State::Activated);
    Veh *gap = fresh.findVeh(b);
    ASSERT_NE(gap, nullptr);
    EXPECT_EQ(gap->state, Veh::State::Reclaimed);

    // The recovered heap allocates out of the gap.
    uint64_t d = fresh.allocate(128 * 1024, false);
    EXPECT_EQ(d, b);
}

TEST_F(LargeFixture, InPlaceDescriptorModeRecovers)
{
    init(false); // no log: Base configuration
    uint64_t a = large_->allocate(96 * 1024, false);
    uint64_t slab = large_->allocate(kSlabSize, true);
    uint64_t b = large_->allocate(64 * 1024, false);
    large_->free(b);

    LargeAllocator fresh;
    fresh.init(dev_.get(), cfg_, nullptr, table_, 256);
    unsigned slabs_seen = 0;
    fresh.recoverFromDescriptors([&](uint64_t off, uint64_t size) {
        EXPECT_EQ(off, slab);
        EXPECT_EQ(size, kSlabSize);
        ++slabs_seen;
    });
    EXPECT_EQ(slabs_seen, 1u);
    EXPECT_EQ(fresh.findVeh(a)->state, Veh::State::Activated);
    EXPECT_EQ(fresh.findVeh(b)->state, Veh::State::Reclaimed);
}

TEST_F(LargeFixture, StressSplitCoalesceKeepsAccounting)
{
    init(true);
    Rng rng(23);
    std::vector<uint64_t> live;
    uint64_t live_bytes = 0;
    for (int i = 0; i < 3000; ++i) {
        if (live.empty() || rng.nextDouble() < 0.55) {
            uint64_t size = (1 + rng.nextBounded(12)) * 16 * 1024;
            uint64_t off = large_->allocate(size, false);
            ASSERT_NE(off, 0u);
            live.push_back(off);
            live_bytes += large_->findVeh(off)->size;
        } else {
            size_t pick = rng.nextBounded(live.size());
            live_bytes -= large_->findVeh(live[pick])->size;
            large_->free(live[pick]);
            live[pick] = live.back();
            live.pop_back();
        }
        ASSERT_EQ(large_->activatedBytes(), live_bytes);
    }
    for (uint64_t off : live)
        large_->free(off);
    EXPECT_EQ(large_->activatedBytes(), 0u);
}

} // namespace
} // namespace nvalloc
