/**
 * @file
 * Smoke tests of the NvAlloc facade: allocate/free round trips, tcache
 * behaviour, small/large routing, and attach-word publishing.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

#include "common/rng.h"
#include "nvalloc/nvalloc.h"

namespace nvalloc {
namespace {

class NvAllocBasic : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PmDeviceConfig dcfg;
        dcfg.size = size_t{1} << 30;
        dev_ = std::make_unique<PmDevice>(dcfg);
        alloc_ = NvAlloc::openOrDie(*dev_);
        ctx_ = alloc_->attachThread();
    }

    void
    TearDown() override
    {
        if (ctx_)
            alloc_->detachThread(ctx_);
        alloc_.reset();
        dev_.reset();
    }

    std::unique_ptr<PmDevice> dev_;
    std::unique_ptr<NvAlloc> alloc_;
    ThreadCtx *ctx_ = nullptr;
};

TEST_F(NvAllocBasic, SmallAllocPublishesOffset)
{
    uint64_t *root = alloc_->rootWord(0);
    void *p = alloc_->mallocTo(*ctx_, 64, root);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(alloc_->at(*root), p);
    EXPECT_NE(*root, 0u);

    alloc_->freeFrom(*ctx_, root);
    EXPECT_EQ(*root, 0u);
}

TEST_F(NvAllocBasic, DistinctAddressesAndWritable)
{
    uint64_t *root = alloc_->rootWord(0);
    std::set<void *> seen;
    std::vector<uint64_t> offs;
    for (int i = 0; i < 500; ++i) {
        void *p = alloc_->mallocTo(*ctx_, 128, root);
        ASSERT_TRUE(seen.insert(p).second) << "duplicate address";
        memset(p, 0xab, 128);
        offs.push_back(*root);
    }
    for (uint64_t off : offs)
        alloc_->freeOffset(*ctx_, off, nullptr);
}

TEST_F(NvAllocBasic, FreeRefillsTcacheAndReusesBlocks)
{
    // With the interleaved layout, pops rotate across sub-tcaches, so
    // exact LIFO order is not guaranteed — but a free/alloc cycle must
    // stay within the same slab (the block returns to the tcache and
    // the tcache serves the next request).
    uint64_t off1 = alloc_->allocOffset(*ctx_, 64, nullptr);
    VSlab *slab1 = static_cast<VSlab *>(alloc_->slabRadix().get(off1));
    alloc_->freeOffset(*ctx_, off1, nullptr);
    uint64_t off2 = alloc_->allocOffset(*ctx_, 64, nullptr);
    VSlab *slab2 = static_cast<VSlab *>(alloc_->slabRadix().get(off2));
    EXPECT_EQ(slab1, slab2);
    EXPECT_EQ(alloc_->arena(ctx_->arena->id()).stats().refills, 1u);
    alloc_->freeOffset(*ctx_, off2, nullptr);

    // With interleaving off, the cache is strictly LIFO. Morphing is
    // disabled too: its tcache-bypass for low-occupancy slabs would
    // route this nearly-empty slab's free around the cache.
    NvAllocConfig cfg;
    cfg.interleaved_tcache = false;
    cfg.slab_morphing = false;
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 29;
    PmDevice dev2(dcfg);
    auto lifo_h = NvAlloc::openOrDie(dev2, cfg);
    NvAlloc &lifo = *lifo_h;
    ThreadCtx *ctx = lifo.attachThread();
    uint64_t a = lifo.allocOffset(*ctx, 64, nullptr);
    lifo.freeOffset(*ctx, a, nullptr);
    uint64_t b = lifo.allocOffset(*ctx, 64, nullptr);
    EXPECT_EQ(a, b);
    lifo.freeOffset(*ctx, b, nullptr);
    lifo.detachThread(ctx);
}

TEST_F(NvAllocBasic, LargeAllocationRoutesToExtents)
{
    uint64_t *root = alloc_->rootWord(1);
    void *p = alloc_->mallocTo(*ctx_, 128 * 1024, root);
    ASSERT_NE(p, nullptr);
    memset(p, 0x5a, 128 * 1024);
    EXPECT_EQ(alloc_->slabRadix().get(*root), nullptr);
    Veh *veh = alloc_->large().findVeh(*root);
    ASSERT_NE(veh, nullptr);
    EXPECT_EQ(veh->state, Veh::State::Activated);
    EXPECT_GE(veh->size, 128u * 1024u);
    alloc_->freeFrom(*ctx_, root);
}

TEST_F(NvAllocBasic, HugeAllocationGetsDirectRegion)
{
    uint64_t *root = alloc_->rootWord(2);
    void *p = alloc_->mallocTo(*ctx_, 3 * 1024 * 1024, root);
    ASSERT_NE(p, nullptr);
    Veh *veh = alloc_->large().findVeh(*root);
    ASSERT_NE(veh, nullptr);
    EXPECT_TRUE(veh->is_direct);
    alloc_->freeFrom(*ctx_, root);
    EXPECT_EQ(alloc_->large().findVeh(dev_->offsetOf(p)), nullptr);
}

TEST_F(NvAllocBasic, SizeClassBoundaries)
{
    for (size_t size : {size_t{1}, size_t{8}, size_t{9}, size_t{128},
                        size_t{129}, size_t{4096}, size_t{16384}}) {
        uint64_t off = alloc_->allocOffset(*ctx_, size, nullptr);
        ASSERT_NE(off, 0u) << size;
        VSlab *slab = static_cast<VSlab *>(alloc_->slabRadix().get(off));
        ASSERT_NE(slab, nullptr) << size;
        EXPECT_GE(slab->blockSize(), size);
        alloc_->freeOffset(*ctx_, off, nullptr);
    }
}

TEST_F(NvAllocBasic, ManyAllocFreeCyclesStayBounded)
{
    // Churn must not grow the heap: the same slabs get reused.
    std::vector<uint64_t> offs;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 200; ++i)
            offs.push_back(alloc_->allocOffset(*ctx_, 100, nullptr));
        for (uint64_t off : offs)
            alloc_->freeOffset(*ctx_, off, nullptr);
        offs.clear();
    }
    // 200 live 128 B blocks fit in one slab; allow a handful.
    EXPECT_LE(alloc_->arena(0).stats().slabs_created +
                  alloc_->arena(1).stats().slabs_created +
                  alloc_->arena(2).stats().slabs_created +
                  alloc_->arena(3).stats().slabs_created,
              8u);
}

TEST_F(NvAllocBasic, MultiThreadedChurn)
{
    constexpr int kThreads = 4;
    constexpr int kOps = 3000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ThreadCtx *ctx = alloc_->attachThread();
            Rng rng(t + 1);
            std::vector<uint64_t> live;
            for (int i = 0; i < kOps; ++i) {
                if (live.empty() || rng.nextDouble() < 0.6) {
                    size_t size = 16 + rng.nextBounded(500);
                    live.push_back(
                        alloc_->allocOffset(*ctx, size, nullptr));
                } else {
                    size_t pick = rng.nextBounded(live.size());
                    alloc_->freeOffset(*ctx, live[pick], nullptr);
                    live[pick] = live.back();
                    live.pop_back();
                }
            }
            for (uint64_t off : live)
                alloc_->freeOffset(*ctx, off, nullptr);
            alloc_->detachThread(ctx);
        });
    }
    for (auto &th : threads)
        th.join();
}

} // namespace
} // namespace nvalloc
