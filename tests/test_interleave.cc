/**
 * @file
 * Property tests of the interleaved mapping (§5.1) — parameterized
 * over stripe counts: the logical→physical map must be a bijection,
 * consecutive logical slots must land in distinct stripes, and the
 * fixed-size buffers (slab bitmap area, WAL ring, log chunk) must
 * hold the padded layout for every supported stripe count.
 */

#include <gtest/gtest.h>

#include <set>

#include "nvalloc/interleave.h"
#include "nvalloc/layout.h"
#include "nvalloc/slab.h"

namespace nvalloc {
namespace {

class InterleaveProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(InterleaveProperty, BijectionOverAllSlabClasses)
{
    unsigned stripes = GetParam();
    for (unsigned cls = 0; cls < kNumSizeClasses; ++cls) {
        SlabGeometry geo = SlabGeometry::compute(cls, stripes);
        std::set<unsigned> phys;
        for (unsigned b = 0; b < geo.capacity; ++b) {
            unsigned p = geo.map.physical(b);
            ASSERT_LT(p, geo.map.physicalSlots());
            ASSERT_TRUE(phys.insert(p).second)
                << "collision cls=" << cls << " b=" << b;
            ASSERT_EQ(geo.map.logical(p), b);
        }
    }
}

TEST_P(InterleaveProperty, ConsecutiveBlocksHitDistinctStripes)
{
    unsigned stripes = GetParam();
    if (stripes < 2)
        GTEST_SKIP() << "sequential mapping";
    SlabGeometry geo = SlabGeometry::compute(sizeToClass(64), stripes);
    unsigned window = std::min(stripes, geo.map.stripes);
    for (unsigned b = 0; b + window <= geo.capacity; b += window) {
        std::set<unsigned> seen;
        for (unsigned i = 0; i < window; ++i) {
            unsigned stripe =
                geo.map.physical(b + i) / geo.map.padded_stripe;
            seen.insert(stripe);
        }
        ASSERT_EQ(seen.size(), window)
            << "blocks " << b << ".. must spread across stripes";
    }
}

TEST_P(InterleaveProperty, SlabBitmapFitsBudget)
{
    unsigned stripes = GetParam();
    for (unsigned cls = 0; cls < kNumSizeClasses; ++cls) {
        SlabGeometry geo = SlabGeometry::compute(cls, stripes);
        EXPECT_LE(geo.map.physicalSlots(), kSlabBitmapBytes * 8)
            << "cls=" << cls << " stripes=" << stripes;
    }
}

TEST_P(InterleaveProperty, WalRingFitsBudget)
{
    InterleaveMap m = InterleaveMap::build(
        kWalRingEntries, sizeof(WalEntry) * 8, GetParam());
    EXPECT_LE(m.physicalSlots() * sizeof(WalEntry), kWalRingBytes);
}

INSTANTIATE_TEST_SUITE_P(Stripes, InterleaveProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u, 12u, 16u, 24u, 32u));

TEST(Interleave, StripeClampWhenFewSlots)
{
    // More stripes than slots: clamp so every stripe has >= 1 slot.
    InterleaveMap m = InterleaveMap::build(4, 1, 32);
    EXPECT_EQ(m.stripes, 4u);
    std::set<unsigned> phys;
    for (unsigned i = 0; i < 4; ++i)
        phys.insert(m.physical(i));
    EXPECT_EQ(phys.size(), 4u);
}

TEST(Interleave, LogChunkStripesFit)
{
    InterleaveMap m =
        InterleaveMap::build(kLogEntriesPerChunk, 64, kLogChunkStripes);
    EXPECT_LE(m.physicalSlots(), kLogEntriesPerChunk)
        << "log chunks cannot grow beyond 1 KB of entries";
    // Same-line reuse distance must clear the reflush window (4).
    EXPECT_GE(kLogChunkStripes, 5u);
}

TEST(Interleave, SequentialMapIsIdentity)
{
    InterleaveMap m = InterleaveMap::build(1000, 1, 1);
    for (unsigned i = 0; i < 1000; ++i)
        EXPECT_EQ(m.physical(i), i);
}

TEST(Interleave, PhysicalPositionsOfConsecutiveBlocksInDistinctLines)
{
    // The headline property: with >= reflush-window stripes, blocks
    // b and b+1..b+3 never share a bitmap cache line.
    SlabGeometry geo = SlabGeometry::compute(sizeToClass(64), 6);
    for (unsigned b = 0; b + 4 < geo.capacity; ++b) {
        unsigned line_b = geo.map.physical(b) / 512;
        for (unsigned d = 1; d <= 3; ++d) {
            unsigned line_d = geo.map.physical(b + d) / 512;
            ASSERT_NE(line_b, line_d) << "b=" << b << " d=" << d;
        }
    }
}

} // namespace
} // namespace nvalloc
