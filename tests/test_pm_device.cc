/**
 * @file
 * Tests of the emulated PM device: region map/unmap with reuse and
 * coalescing, committed-byte accounting (the space metric of the
 * paper's figures), decommit/recommit, persist-to-shadow semantics,
 * and crash rollback.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "pm/pm_device.h"

namespace nvalloc {
namespace {

PmDeviceConfig
smallCfg(bool shadow = false)
{
    PmDeviceConfig cfg;
    cfg.size = size_t{1} << 28;
    cfg.shadow = shadow;
    return cfg;
}

TEST(PmDevice, MapRegionsAreAlignedZeroedAndDisjoint)
{
    PmDevice dev(smallCfg());
    uint64_t a = dev.mapRegion(100 * 1024);
    uint64_t b = dev.mapRegion(64 * 1024);
    EXPECT_EQ(a % PmDevice::kRegionAlign, 0u);
    EXPECT_EQ(b % PmDevice::kRegionAlign, 0u);
    EXPECT_GE(b, a + 128 * 1024) << "rounded up to the region grain";

    auto *bytes = static_cast<unsigned char *>(dev.at(a));
    for (int i = 0; i < 1024; ++i)
        ASSERT_EQ(bytes[i], 0);
    EXPECT_GE(a, PmDevice::kRootSize) << "root area stays reserved";
}

TEST(PmDevice, UnmapReusesAndCoalesces)
{
    PmDevice dev(smallCfg());
    uint64_t a = dev.mapRegion(64 * 1024);
    uint64_t b = dev.mapRegion(64 * 1024);
    uint64_t c = dev.mapRegion(64 * 1024);
    (void)c;
    std::memset(dev.at(a), 0xff, 64 * 1024);

    dev.unmapRegion(a, 64 * 1024);
    dev.unmapRegion(b, 64 * 1024);

    // The two holes coalesce: a 128 KB request fits at `a`.
    uint64_t d = dev.mapRegion(128 * 1024);
    EXPECT_EQ(d, a);
    // And reads back zeroed, like a fresh mapping.
    auto *bytes = static_cast<unsigned char *>(dev.at(d));
    for (int i = 0; i < 64 * 1024; i += 4096)
        ASSERT_EQ(bytes[i], 0);
}

TEST(PmDevice, CommittedAccountingAndPeak)
{
    PmDevice dev(smallCfg());
    size_t base = dev.committedBytes();
    uint64_t a = dev.mapRegion(1 << 20);
    EXPECT_EQ(dev.committedBytes(), base + (1 << 20));
    uint64_t b = dev.mapRegion(1 << 20);
    size_t peak = dev.peakCommittedBytes();
    EXPECT_EQ(peak, base + (2 << 20));

    dev.unmapRegion(b, 1 << 20);
    EXPECT_EQ(dev.committedBytes(), base + (1 << 20));
    EXPECT_EQ(dev.peakCommittedBytes(), peak) << "peak sticks";

    dev.resetPeak();
    EXPECT_EQ(dev.peakCommittedBytes(), dev.committedBytes());
    dev.unmapRegion(a, 1 << 20);
}

TEST(PmDevice, DecommitReleasesBytesRecommitRestores)
{
    PmDevice dev(smallCfg());
    uint64_t a = dev.mapRegion(1 << 20);
    size_t committed = dev.committedBytes();
    std::memset(dev.at(a), 0x77, 1 << 20);

    dev.decommit(a, 1 << 20);
    EXPECT_EQ(dev.committedBytes(), committed - (1 << 20));
    dev.recommit(a, 1 << 20);
    EXPECT_EQ(dev.committedBytes(), committed);
    // Contents were dropped.
    EXPECT_EQ(static_cast<unsigned char *>(dev.at(a))[0], 0);
}

TEST(PmDevice, CrashDiscardsUnpersistedStores)
{
    PmDevice dev(smallCfg(true));
    uint64_t a = dev.mapRegion(64 * 1024);
    auto *p = static_cast<uint64_t *>(dev.at(a));

    p[0] = 111; // persisted
    dev.persistFence(&p[0], 8, TimeKind::FlushData);
    p[1] = 222; // never flushed
    p[0] = 333; // overwrites the persisted value, not flushed

    dev.crash();
    EXPECT_EQ(p[0], 111u) << "rolls back to last persisted value";
    EXPECT_EQ(p[1], 0u) << "unpersisted store lost";
}

TEST(PmDevice, PersistCoversWholeLines)
{
    PmDevice dev(smallCfg(true));
    uint64_t a = dev.mapRegion(64 * 1024);
    auto *p = static_cast<unsigned char *>(dev.at(a));
    std::memset(p, 0xab, 128);
    // Persisting one byte makes its whole 64 B line durable.
    dev.persistFence(p + 10, 1, TimeKind::FlushData);
    dev.crash();
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(p[i], 0xab);
    for (int i = 64; i < 128; ++i)
        ASSERT_EQ(p[i], 0);
}

TEST(PmDevice, CrashPreservesAcrossMultipleRegions)
{
    PmDevice dev(smallCfg(true));
    std::vector<uint64_t> regions;
    for (int i = 0; i < 8; ++i) {
        uint64_t off = dev.mapRegion(64 * 1024);
        auto *p = static_cast<uint64_t *>(dev.at(off));
        p[0] = 1000 + i;
        dev.persistFence(p, 8, TimeKind::FlushData);
        p[1] = 42; // torn
        regions.push_back(off);
    }
    dev.crash();
    for (int i = 0; i < 8; ++i) {
        auto *p = static_cast<uint64_t *>(dev.at(regions[i]));
        EXPECT_EQ(p[0], uint64_t(1000 + i));
        EXPECT_EQ(p[1], 0u);
    }
}

TEST(PmDevice, ContainsAndOffsetRoundtrip)
{
    PmDevice dev(smallCfg());
    uint64_t a = dev.mapRegion(64 * 1024);
    void *p = dev.at(a + 100);
    EXPECT_TRUE(dev.contains(p));
    EXPECT_EQ(dev.offsetOf(p), a + 100);
    int local;
    EXPECT_FALSE(dev.contains(&local));
}

} // namespace
} // namespace nvalloc
