/**
 * @file
 * Chaos soak: the hardening subsystem's end-to-end containment
 * contract under an adversarial mix of crashes, media poison and
 * deliberate application corruption.
 *
 * The engine lives in tools/chaos_harness.h (shared with the
 * nvalloc_chaos CLI); each round churns a reopened heap, injects one
 * seeded trouble event, and asserts detection (the matching
 * stats.hardening.* counter moved, with the documented status) plus
 * containment (audit clean, repairable damage repaired, recovery
 * converged after crashes). Manual maintenance keeps every run
 * deterministic for its seed.
 */

#include <gtest/gtest.h>

#include "chaos_harness.h"

using namespace nvalloc;

namespace {

/** Every corruption class must have been injected at least once and
 *  detected every time it was injected (skips excluded). */
void
expectFullCoverage(const ChaosHarness &h)
{
    for (unsigned e = 0; e < ChaosHarness::kEventCount; ++e) {
        ChaosEvent ev = ChaosEvent(e);
        EXPECT_GT(h.injected(ev), h.skipped(ev))
            << chaosEventName(ev) << " never ran";
        EXPECT_EQ(h.detected(ev), h.injected(ev) - h.skipped(ev))
            << chaosEventName(ev) << " injected but not detected";
    }
}

} // namespace

TEST(Chaos, SoakContainsAllCorruption)
{
    ChaosOptions o;
    o.seed = 20260807;
    o.rounds = 200;
    ChaosHarness h(o);
    EXPECT_TRUE(h.run()) << h.error();
    EXPECT_EQ(h.roundsRun(), o.rounds);
    expectFullCoverage(h);
}

TEST(Chaos, SoakGcVariantQuarantinePolicy)
{
    ChaosOptions o;
    o.seed = 99;
    o.rounds = 60;
    o.gc = true;
    o.policy = HardeningPolicy::Quarantine;
    ChaosHarness h(o);
    EXPECT_TRUE(h.run()) << h.error();
    EXPECT_EQ(h.roundsRun(), o.rounds);
    // A 60-round run still cycles each class several times; require at
    // least one real (non-skipped) detection per class. Torn
    // transactions and KV stomps are the exception: the tx layer (and
    // the KV service built on it) is LOG-only, so on the GC variant
    // those classes degrade to documented skips.
    for (unsigned e = 0; e < ChaosHarness::kEventCount; ++e) {
        ChaosEvent ev = ChaosEvent(e);
        if (ev == ChaosEvent::TornTx || ev == ChaosEvent::KvStomp) {
            EXPECT_EQ(h.detected(ev), 0u) << chaosEventName(ev);
            EXPECT_EQ(h.skipped(ev), h.injected(ev))
                << chaosEventName(ev);
            continue;
        }
        EXPECT_GT(h.detected(ev), 0u) << chaosEventName(ev);
    }
}

TEST(Chaos, DeterministicForSeed)
{
    ChaosOptions o;
    o.seed = 4242;
    o.rounds = 30;
    ChaosHarness a(o), b(o);
    ASSERT_TRUE(a.run()) << a.error();
    ASSERT_TRUE(b.run()) << b.error();
    for (unsigned e = 0; e < ChaosHarness::kEventCount; ++e) {
        ChaosEvent ev = ChaosEvent(e);
        EXPECT_EQ(a.injected(ev), b.injected(ev)) << chaosEventName(ev);
        EXPECT_EQ(a.detected(ev), b.detected(ev)) << chaosEventName(ev);
        EXPECT_EQ(a.skipped(ev), b.skipped(ev)) << chaosEventName(ev);
    }
}

/** Long soak — excluded from the default ctest run; registered under
 *  the `soak` ctest configuration/label (see tests/CMakeLists.txt) and
 *  runnable directly with --gtest_also_run_disabled_tests. */
TEST(Chaos, DISABLED_LongSoak)
{
    ChaosOptions o;
    o.seed = 1;
    o.rounds = 2000;
    ChaosHarness h(o);
    EXPECT_TRUE(h.run()) << h.error();
    expectFullCoverage(h);
}
