/**
 * @file
 * Workload generator tests: operation counts, determinism for a fixed
 * seed, the Fragbench live-cap invariant, Table 1 encodings, and the
 * harness' virtual-time bookkeeping.
 */

#include <gtest/gtest.h>

#include "baselines/nvalloc_adapter.h"
#include "workloads/workloads.h"

namespace nvalloc {
namespace {

std::unique_ptr<PmAllocator>
freshAlloc(std::unique_ptr<PmDevice> &dev)
{
    dev = makeBenchDevice(size_t{1} << 30);
    return makeAllocator(AllocKind::NvAllocLog, *dev, {});
}

TEST(Workloads, ThreadtestOpCountExact)
{
    std::unique_ptr<PmDevice> dev;
    auto alloc = freshAlloc(dev);
    VtimeEpoch epoch;
    RunResult r = threadtest(*alloc, epoch, 3, 2, 100, 64);
    EXPECT_EQ(r.total_ops, 3u * 2u * 100u * 2u);
    EXPECT_GT(r.makespan_ns, 0u);
}

TEST(Workloads, ProdconConsumesEverything)
{
    std::unique_ptr<PmDevice> dev;
    auto alloc = freshAlloc(dev);
    VtimeEpoch epoch;
    RunResult r = prodcon(*alloc, epoch, 4, 500, 64);
    // 2 pairs x 500 objects, each allocated once and freed once.
    EXPECT_EQ(r.total_ops, 2u * 500u * 2u);
    // Nothing leaked: all small blocks freed.
    auto &nv = dynamic_cast<NvAllocAdapter *>(alloc.get())->impl();
    uint64_t live = 0;
    for (unsigned i = 0; i < nv.numArenas(); ++i) {
        nv.arena(i).forEachSlab(
            [&](VSlab *s) { live += s->liveBlocks() + s->cntSlab(); });
    }
    EXPECT_EQ(live, 0u);
}

TEST(Workloads, LarsonFreesEverythingAtEnd)
{
    std::unique_ptr<PmDevice> dev;
    auto alloc = freshAlloc(dev);
    VtimeEpoch epoch;
    larson(*alloc, epoch, 2, 64, 256, 64, 2, 200, 7);
    auto &nv = dynamic_cast<NvAllocAdapter *>(alloc.get())->impl();
    uint64_t live = 0;
    for (unsigned i = 0; i < nv.numArenas(); ++i) {
        nv.arena(i).forEachSlab(
            [&](VSlab *s) { live += s->liveBlocks() + s->cntSlab(); });
    }
    EXPECT_EQ(live, 0u);
}

TEST(Workloads, DeterministicForSeed)
{
    uint64_t ops[2], vns[2];
    for (int round = 0; round < 2; ++round) {
        std::unique_ptr<PmDevice> dev;
        auto alloc = freshAlloc(dev);
        VtimeEpoch epoch;
        RunResult r = shbench(*alloc, epoch, 1, 500, 42);
        ops[round] = r.total_ops;
        vns[round] = r.makespan_ns;
    }
    EXPECT_EQ(ops[0], ops[1]);
    EXPECT_EQ(vns[0], vns[1]) << "single-thread runs are bit-stable";
}

TEST(Workloads, FragbenchTableMatchesPaper)
{
    const FragWorkload *ws = fragWorkloads();
    EXPECT_EQ(ws[0].before.lo, 100u);
    EXPECT_EQ(ws[0].before.hi, 100u);
    EXPECT_DOUBLE_EQ(ws[0].delete_ratio, 0.9);
    EXPECT_EQ(ws[0].after.lo, 130u);
    EXPECT_DOUBLE_EQ(ws[1].delete_ratio, 0.0);
    EXPECT_EQ(ws[2].after.hi, 250u);
    EXPECT_EQ(ws[3].after.lo, 1000u);
    EXPECT_EQ(ws[3].after.hi, 2000u);
}

TEST(Workloads, FragbenchRespectsLiveCap)
{
    std::unique_ptr<PmDevice> dev;
    auto alloc = freshAlloc(dev);
    VtimeEpoch epoch;
    constexpr size_t kCap = 2 << 20;
    FragResult fr = fragbench(*alloc, epoch, fragWorkloads()[2],
                              8 << 20, kCap, 42);
    EXPECT_LE(fr.live_bytes, kCap);
    EXPECT_GT(fr.peak_bytes, 0u);
    EXPECT_GE(fr.peak_bytes, fr.live_bytes);
}

TEST(Workloads, HarnessAggregatesBreakdown)
{
    std::unique_ptr<PmDevice> dev;
    auto alloc = freshAlloc(dev);
    VtimeEpoch epoch;
    RunResult r = threadtest(*alloc, epoch, 2, 1, 200, 64);
    uint64_t total = 0;
    for (auto v : r.breakdown)
        total += v;
    EXPECT_GT(total, 0u);
    EXPECT_GT(r.breakdown[unsigned(TimeKind::FlushMeta)], 0u);
    EXPECT_GT(r.breakdown[unsigned(TimeKind::FlushWal)], 0u);
}

TEST(Workloads, EpochCarriesVirtualTimeAcrossPhases)
{
    std::unique_ptr<PmDevice> dev;
    auto alloc = freshAlloc(dev);
    VtimeEpoch epoch;
    threadtest(*alloc, epoch, 1, 1, 100, 64);
    uint64_t base_after_first = epoch.base();
    EXPECT_GT(base_after_first, 0u);
    threadtest(*alloc, epoch, 1, 1, 100, 64);
    EXPECT_GT(epoch.base(), base_after_first);
}

TEST(Workloads, GroupsMatchPaper)
{
    auto strong = strongGroup();
    auto weak = weakGroup();
    EXPECT_EQ(strong.size(), 4u);
    EXPECT_EQ(weak.size(), 3u);
    for (AllocKind kind : strong) {
        std::unique_ptr<PmDevice> d = makeBenchDevice(size_t{1} << 28);
        EXPECT_TRUE(makeAllocator(kind, *d, {})->stronglyConsistent());
    }
    for (AllocKind kind : weak) {
        std::unique_ptr<PmDevice> d = makeBenchDevice(size_t{1} << 28);
        EXPECT_FALSE(makeAllocator(kind, *d, {})->stronglyConsistent());
    }
}

} // namespace
} // namespace nvalloc
