/**
 * @file
 * Unit tests of the baseline substrate internals: ExtentHeap
 * (best-fit, split, coalesce, descriptor accounting) and SlabEngine
 * policy semantics (bitmap vs embedded free lists, static
 * segregation, journaling disciplines, per-thread heaps).
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baselines/extent_heap.h"
#include "common/rng.h"
#include "baselines/slab_engine.h"

namespace nvalloc {
namespace {

class ExtentHeapFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PmDeviceConfig cfg;
        cfg.size = size_t{1} << 28;
        dev_ = std::make_unique<PmDevice>(cfg);
        heap_ = std::make_unique<ExtentHeap>(dev_.get(), true);
        VClock::reset();
    }

    std::unique_ptr<PmDevice> dev_;
    std::unique_ptr<ExtentHeap> heap_;
};

TEST_F(ExtentHeapFixture, AllocFreeRoundtrip)
{
    uint64_t a = heap_->allocExtent(100 * 1024);
    ASSERT_NE(a, 0u);
    EXPECT_TRUE(heap_->isAllocated(a));
    EXPECT_EQ(heap_->allocatedBytes(), 112u * 1024u); // 16 KB grain
    heap_->freeExtent(a);
    EXPECT_FALSE(heap_->isAllocated(a));
    EXPECT_EQ(heap_->allocatedBytes(), 0u);
}

TEST_F(ExtentHeapFixture, FreedSpaceIsReusedAndCoalesced)
{
    uint64_t a = heap_->allocExtent(64 * 1024);
    uint64_t b = heap_->allocExtent(64 * 1024);
    uint64_t c = heap_->allocExtent(64 * 1024);
    ASSERT_EQ(c, b + 64 * 1024);
    size_t committed = dev_->committedBytes();

    heap_->freeExtent(a);
    heap_->freeExtent(b);
    // The coalesced 128 KB hole serves a 128 KB request at `a`.
    uint64_t d = heap_->allocExtent(128 * 1024);
    EXPECT_EQ(d, a);
    EXPECT_EQ(dev_->committedBytes(), committed) << "no new region";
    heap_->freeExtent(c);
    heap_->freeExtent(d);
}

TEST_F(ExtentHeapFixture, DistinctExtentsNeverOverlap)
{
    std::set<std::pair<uint64_t, uint64_t>> live;
    Rng rng(3);
    std::vector<uint64_t> offs;
    for (int i = 0; i < 500; ++i) {
        if (offs.empty() || rng.nextDouble() < 0.6) {
            uint64_t size = (1 + rng.nextBounded(10)) * 16 * 1024;
            uint64_t off = heap_->allocExtent(size);
            for (auto [lo, hi] : live)
                ASSERT_TRUE(off + size <= lo || off >= hi);
            live.emplace(off, off + size);
            offs.push_back(off);
        } else {
            size_t pick = rng.nextBounded(offs.size());
            uint64_t off = offs[pick];
            for (auto it = live.begin(); it != live.end(); ++it) {
                if (it->first == off) {
                    live.erase(it);
                    break;
                }
            }
            heap_->freeExtent(off);
            offs[pick] = offs.back();
            offs.pop_back();
        }
    }
}

TEST_F(ExtentHeapFixture, InPlaceUpdatesAreRandomFlushes)
{
    // Warm up several regions so descriptors scatter.
    std::vector<uint64_t> offs;
    for (int i = 0; i < 40; ++i)
        offs.push_back(heap_->allocExtent(256 * 1024));
    dev_->model().reset();
    Rng rng(5);
    for (int i = 0; i < 60; ++i) {
        size_t pick = rng.nextBounded(offs.size());
        heap_->freeExtent(offs[pick]);
        offs[pick] = heap_->allocExtent(
            (1 + rng.nextBounded(12)) * 16 * 1024);
    }
    auto c = dev_->flushCounts();
    // The §3.3 behaviour: a substantial share of random media writes.
    EXPECT_GT(c.random, c.sequential);
}

// ---- SlabEngine policies ------------------------------------------------

struct EngineRig
{
    std::unique_ptr<PmDevice> dev;
    std::unique_ptr<ExtentHeap> extents;
    std::unique_ptr<SlabEngine> engine;
    SlabEngine::Tls *tls = nullptr;

    explicit EngineRig(SlabEngine::Policy policy)
    {
        PmDeviceConfig cfg;
        cfg.size = size_t{1} << 28;
        dev = std::make_unique<PmDevice>(cfg);
        extents = std::make_unique<ExtentHeap>(dev.get(), true);
        engine = std::make_unique<SlabEngine>(dev.get(), extents.get(),
                                              policy, true);
        tls = engine->attach();
    }

    ~EngineRig() { engine->detach(tls); }
};

TEST(SlabEngine, BitmapModeReusesFreedBlocks)
{
    SlabEngine::Policy p;
    p.freelist = SlabEngine::FreeList::Bitmap;
    EngineRig rig(p);

    uint64_t a = rig.engine->alloc(rig.tls, 64);
    ASSERT_NE(a, 0u);
    ASSERT_TRUE(rig.engine->free(rig.tls, a));
    uint64_t b = rig.engine->alloc(rig.tls, 64);
    EXPECT_EQ(b, a) << "first-zero bit scan reuses the slot";
    // Offsets outside any slab are reported unknown (large path).
    EXPECT_FALSE(rig.engine->free(rig.tls, rig.dev->size() - 4096));
    rig.engine->free(rig.tls, b);
}

TEST(SlabEngine, EmbeddedModeIsLifoAndChargesReads)
{
    SlabEngine::Policy p;
    p.freelist = SlabEngine::FreeList::Embedded;
    p.link_read_charge = true;
    EngineRig rig(p);

    uint64_t a = rig.engine->alloc(rig.tls, 64);
    uint64_t b = rig.engine->alloc(rig.tls, 64);
    rig.engine->free(rig.tls, a);
    rig.engine->free(rig.tls, b);

    VClock::reset();
    uint64_t c = rig.engine->alloc(rig.tls, 64);
    EXPECT_EQ(c, b) << "embedded list is LIFO";
    EXPECT_GT(VClock::kindTotal(TimeKind::PmRead), 0u)
        << "pointer chase charged as a PM read";
    rig.engine->free(rig.tls, c);
}

TEST(SlabEngine, StaticSegregationNeverReturnsSlabs)
{
    SlabEngine::Policy p;
    EngineRig rig(p);

    // Fill and completely empty a class: the slabs must stay.
    std::vector<uint64_t> offs;
    for (int i = 0; i < 3000; ++i)
        offs.push_back(rig.engine->alloc(rig.tls, 64));
    uint64_t slabs_at_peak = rig.engine->slabCount();
    for (uint64_t off : offs)
        rig.engine->free(rig.tls, off);
    EXPECT_EQ(rig.engine->slabCount(), slabs_at_peak)
        << "empty slabs stay pinned to their class (paper §3.2)";
    EXPECT_EQ(rig.engine->liveBlocks(), 0u);

    // A different class cannot reuse them: new slabs are created.
    uint64_t big = rig.engine->alloc(rig.tls, 1024);
    EXPECT_GT(rig.engine->slabCount(), slabs_at_peak);
    rig.engine->free(rig.tls, big);
}

TEST(SlabEngine, LaneHeadJournalingReflushes)
{
    SlabEngine::Policy p;
    p.log_head_flush = true;
    p.log_entry_flushes = 1;
    EngineRig rig(p);
    // Warm up.
    for (int i = 0; i < 8; ++i)
        rig.engine->alloc(rig.tls, 64);
    rig.dev->model().reset();
    for (int i = 0; i < 50; ++i)
        rig.engine->alloc(rig.tls, 64);
    auto c = rig.dev->flushCounts();
    // Lane-head rewrites alone are 50 reflushes at distance ~2.
    EXPECT_GT(double(c.reflush) / double(c.total), 0.8);
}

TEST(SlabEngine, PerThreadHeapsIsolateAllocations)
{
    SlabEngine::Policy p;
    p.locking = SlabEngine::Locking::PerThread;
    EngineRig rig(p);

    SlabEngine::Tls *other = rig.engine->attach();
    uint64_t mine = rig.engine->alloc(rig.tls, 64);
    uint64_t theirs = rig.engine->alloc(other, 64);
    // Distinct heaps means distinct slabs.
    EXPECT_NE(mine & ~uint64_t{kSlabSize - 1},
              theirs & ~uint64_t{kSlabSize - 1});
    // Cross-thread free routes to the owner heap and works.
    EXPECT_TRUE(rig.engine->free(rig.tls, theirs));
    EXPECT_TRUE(rig.engine->free(other, mine));
    rig.engine->detach(other);
}

} // namespace
} // namespace nvalloc
