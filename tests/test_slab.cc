/**
 * @file
 * Slab/VSlab unit tests: geometry for every size class (TEST_P),
 * availability state machine (pop / lend / allocate / free), the
 * persistent-vs-volatile bitmap contract, rebuild-from-header, and
 * the full slab-morphing protocol of §5.2 — index table contents,
 * cnt_slab/cnt_block math for small→large and large→small morphs,
 * block_before classification and release, and flag-based undo/redo.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "nvalloc/slab.h"

namespace nvalloc {
namespace {

class SlabFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PmDeviceConfig cfg;
        cfg.size = size_t{1} << 26;
        dev_ = std::make_unique<PmDevice>(cfg);
        slab_off_ = dev_->mapRegion(kSlabSize);
    }

    std::unique_ptr<PmDevice> dev_;
    uint64_t slab_off_ = 0;
};

class SlabGeometryAllClasses
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SlabGeometryAllClasses, CapacityAndOffsetsConsistent)
{
    unsigned cls = GetParam();
    SlabGeometry geo = SlabGeometry::compute(cls, 6);
    EXPECT_GT(geo.capacity, 0u);
    EXPECT_LE(kSlabHeaderSize + uint64_t(geo.capacity) * geo.block_size,
              kSlabSize);
    // Adding one more block must not fit.
    EXPECT_GT(kSlabHeaderSize +
                  uint64_t(geo.capacity + 1) * geo.block_size,
              kSlabSize);
    EXPECT_LE(geo.capacity, kMaxSlabBlocks);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, SlabGeometryAllClasses,
                         ::testing::Range(0u, kNumSizeClasses));

TEST_F(SlabFixture, FreshSlabFullyAvailable)
{
    VSlab slab(dev_.get(), slab_off_, sizeToClass(64), 6, true, false);
    EXPECT_EQ(slab.available(), slab.capacity());
    EXPECT_EQ(slab.liveBlocks(), 0u);
    EXPECT_EQ(slab.header()->magic, kSlabMagic);
    EXPECT_FALSE(slab.morphing());
}

TEST_F(SlabFixture, PopAllocateFreeLifecycle)
{
    VSlab slab(dev_.get(), slab_off_, sizeToClass(128), 6, true, false);
    unsigned cap = slab.capacity();

    unsigned idx = slab.popBlock();
    ASSERT_LT(idx, cap);
    EXPECT_EQ(slab.lentBlocks(), 1u);
    EXPECT_EQ(slab.available(), cap - 1);

    slab.markAllocated(idx);
    EXPECT_EQ(slab.lentBlocks(), 0u);
    EXPECT_EQ(slab.liveBlocks(), 1u);
    EXPECT_TRUE(slab.isAllocated(idx));

    slab.markFree(idx);
    EXPECT_EQ(slab.liveBlocks(), 0u);
    EXPECT_EQ(slab.available(), cap);
    EXPECT_FALSE(slab.isAllocated(idx));
}

TEST_F(SlabFixture, PopUntilExhausted)
{
    VSlab slab(dev_.get(), slab_off_, sizeToClass(2048), 6, true, false);
    std::set<unsigned> seen;
    for (unsigned i = 0; i < slab.capacity(); ++i) {
        unsigned idx = slab.popBlock();
        ASSERT_LT(idx, slab.capacity());
        ASSERT_TRUE(seen.insert(idx).second);
    }
    EXPECT_EQ(slab.popBlock(), slab.capacity());
    EXPECT_EQ(slab.popBlockSpread(), slab.capacity());
}

TEST_F(SlabFixture, BlockOffsetsRoundtrip)
{
    VSlab slab(dev_.get(), slab_off_, sizeToClass(160), 6, true, false);
    for (unsigned idx = 0; idx < slab.capacity(); idx += 17) {
        uint64_t off = slab.blockOffset(idx);
        EXPECT_EQ(slab.blockIndexOf(off), idx);
        EXPECT_GE(off, slab_off_ + kSlabHeaderSize);
        EXPECT_LE(off + slab.blockSize(), slab_off_ + kSlabSize);
    }
    // Misaligned offsets are rejected.
    EXPECT_EQ(slab.blockIndexOf(slab.blockOffset(0) + 1),
              slab.capacity());
    EXPECT_EQ(slab.blockIndexOf(slab_off_), slab.capacity());
}

TEST_F(SlabFixture, RebuildFromHeaderMatches)
{
    std::set<unsigned> allocated;
    {
        VSlab slab(dev_.get(), slab_off_, sizeToClass(96), 6, true,
                   false);
        for (int i = 0; i < 50; ++i) {
            unsigned idx = slab.popBlock();
            slab.markAllocated(idx);
            allocated.insert(idx);
        }
        // Free a few again.
        for (int i = 0; i < 10; ++i) {
            unsigned idx = *allocated.begin();
            allocated.erase(allocated.begin());
            slab.markFree(idx);
        }
    }
    VSlab rebuilt(dev_.get(), slab_off_, true, false);
    EXPECT_EQ(rebuilt.sizeClass(), sizeToClass(96));
    EXPECT_EQ(rebuilt.liveBlocks(), allocated.size());
    for (unsigned idx = 0; idx < rebuilt.capacity(); ++idx)
        EXPECT_EQ(rebuilt.isAllocated(idx), allocated.count(idx) > 0);
}

TEST_F(SlabFixture, PersistentBitsFlushedInLogMode)
{
    VSlab slab(dev_.get(), slab_off_, sizeToClass(64), 6, true, false);
    dev_->model().reset();
    unsigned idx = slab.popBlock();
    slab.markAllocated(idx);
    EXPECT_GE(dev_->flushCounts().total, 1u);

    // GC mode writes the bit but never flushes it.
    uint64_t off2 = dev_->mapRegion(kSlabSize);
    VSlab gc_slab(dev_.get(), off2, sizeToClass(64), 6, true, true);
    dev_->model().reset();
    unsigned idx2 = gc_slab.popBlock();
    gc_slab.markAllocated(idx2);
    EXPECT_EQ(dev_->flushCounts().total, 0u);
    EXPECT_TRUE(gc_slab.isAllocated(idx2)) << "bit written anyway";
}

// ---- morphing ---------------------------------------------------------

class MorphFixture : public SlabFixture
{
  protected:
    /** Build a slab of `from` with `live` allocated blocks at chosen
     *  indices. */
    std::unique_ptr<VSlab>
    makeSparse(unsigned from_size, const std::vector<unsigned> &live)
    {
        auto slab = std::make_unique<VSlab>(
            dev_.get(), slab_off_, sizeToClass(from_size), 6, true,
            false);
        // Claim specific indices (pop everything, return the rest).
        std::vector<unsigned> popped;
        for (unsigned i = 0; i < slab->capacity(); ++i)
            popped.push_back(slab->popBlock());
        std::set<unsigned> keep(live.begin(), live.end());
        for (unsigned idx : popped) {
            if (keep.count(idx))
                slab->markAllocated(idx);
            else
                slab->unlendBlock(idx);
        }
        return slab;
    }
};

TEST_F(MorphFixture, SmallToLargeTracksOverlaps)
{
    // 64 B slab with three live blocks; morph to 256 B: each old block
    // overlaps exactly one new block (4 old per new).
    auto slab = makeSparse(64, {0, 1, 9});
    ASSERT_TRUE(slab->morphEligible(0.2));

    unsigned old_cap = slab->capacity();
    slab->morphTo(sizeToClass(256), 6);

    EXPECT_EQ(slab->sizeClass(), sizeToClass(256));
    EXPECT_TRUE(slab->morphing());
    EXPECT_EQ(slab->cntSlab(), 3u);
    EXPECT_EQ(slab->header()->index_count, 3u);
    EXPECT_EQ(slab->header()->old_capacity, old_cap);

    // Old blocks 0 and 1 share new block 0 (cnt 2); old 9 covers new 2.
    EXPECT_EQ(slab->cntBlock(0), 2u);
    EXPECT_EQ(slab->cntBlock(1), 0u);
    EXPECT_EQ(slab->cntBlock(2), 1u);

    // Occupied new blocks are unavailable.
    EXPECT_EQ(slab->available(), slab->capacity() - 2);
}

TEST_F(MorphFixture, LargeToSmallSpansManyNewBlocks)
{
    // 1024 B slab, one live block; morph to 128 B: the old block spans
    // 8 new blocks.
    auto slab = makeSparse(1024, {2});
    slab->morphTo(sizeToClass(128), 6);
    EXPECT_EQ(slab->cntSlab(), 1u);
    unsigned covered = 0;
    for (unsigned nb = 0; nb < slab->capacity(); ++nb)
        covered += slab->cntBlock(nb) ? 1 : 0;
    EXPECT_EQ(covered, 8u);
    EXPECT_EQ(slab->available(), slab->capacity() - 8);
}

TEST_F(MorphFixture, OldBlockClassificationAndRelease)
{
    auto slab = makeSparse(64, {0, 1, 9});
    uint64_t old0 = slab->blockOffset(0);
    uint64_t old9 = slab->blockOffset(9);
    slab->morphTo(sizeToClass(256), 6);

    unsigned old_idx = 0;
    ASSERT_TRUE(slab->isOldBlock(old0, old_idx));
    EXPECT_EQ(old_idx, 0u);
    ASSERT_TRUE(slab->isOldBlock(old9, old_idx));
    EXPECT_EQ(old_idx, 9u);

    // A new-geometry block handed out is never classified as old.
    unsigned fresh = slab->popBlock();
    slab->markAllocated(fresh);
    EXPECT_FALSE(slab->isOldBlock(slab->blockOffset(fresh), old_idx));

    // Release old blocks one by one; the morph completes at zero.
    EXPECT_FALSE(slab->freeOldBlock(0));
    EXPECT_EQ(slab->cntSlab(), 2u);
    EXPECT_FALSE(slab->freeOldBlock(1));
    EXPECT_TRUE(slab->freeOldBlock(9)) << "last old block completes";
    EXPECT_FALSE(slab->morphing());
    EXPECT_EQ(slab->header()->index_count, 0u);
    // All capacity minus the fresh allocation is available again.
    EXPECT_EQ(slab->available(), slab->capacity() - 1);
}

TEST_F(MorphFixture, SharedNewBlockFreesOnlyWhenAllOldGone)
{
    auto slab = makeSparse(64, {0, 1}); // both inside new block 0
    slab->morphTo(sizeToClass(256), 6);
    ASSERT_EQ(slab->cntBlock(0), 2u);
    unsigned before = slab->available();
    slab->freeOldBlock(0);
    EXPECT_EQ(slab->available(), before) << "block 1 still pins it";
    slab->freeOldBlock(1);
    EXPECT_EQ(slab->available(), slab->capacity());
}

TEST_F(MorphFixture, IneligibleWhenBusyOrLent)
{
    // Too full.
    {
        std::vector<unsigned> many;
        for (unsigned i = 0; i < 400; ++i)
            many.push_back(i);
        auto slab = makeSparse(64, many);
        EXPECT_FALSE(slab->morphEligible(0.2));
        EXPECT_TRUE(slab->morphEligible(0.6));
    }
    // Lent blocks pin the slab.
    {
        uint64_t off2 = dev_->mapRegion(kSlabSize);
        VSlab slab(dev_.get(), off2, sizeToClass(64), 6, true, false);
        unsigned a = slab.popBlock();
        slab.markAllocated(a);
        EXPECT_TRUE(slab.morphEligible(0.2));
        slab.popBlock(); // lend one
        EXPECT_FALSE(slab.morphEligible(0.2));
    }
}

TEST_F(MorphFixture, MorphStateSurvivesRebuild)
{
    auto slab = makeSparse(64, {0, 1, 9});
    slab->morphTo(sizeToClass(256), 6);
    unsigned fresh = slab->popBlock();
    slab->markAllocated(fresh);
    slab.reset(); // drop volatile state

    VSlab rebuilt(dev_.get(), slab_off_, true, false);
    EXPECT_TRUE(rebuilt.morphing());
    EXPECT_EQ(rebuilt.cntSlab(), 3u);
    EXPECT_EQ(rebuilt.sizeClass(), sizeToClass(256));
    EXPECT_EQ(rebuilt.cntBlock(0), 2u);
    EXPECT_TRUE(rebuilt.isAllocated(fresh));
    unsigned old_idx = 0;
    EXPECT_TRUE(rebuilt.isOldBlock(rebuilt.slabOffset() +
                                       kSlabHeaderSize + 9 * 64,
                                   old_idx));
}

TEST_F(MorphFixture, CrashAtEarlyFlagUndoesMorph)
{
    auto slab = makeSparse(64, {0, 5});
    // Hand-stage steps 1-2 as a crash mid-morph would leave them.
    SlabHeader *hdr = slab->header();
    hdr->old_size_class = hdr->size_class;
    hdr->old_capacity = hdr->capacity;
    hdr->index_table[0] = 0 | kIndexAllocated;
    hdr->index_table[1] = 5 | kIndexAllocated;
    hdr->index_count = 2;
    hdr->flag = 2;
    slab.reset();

    VSlab rebuilt(dev_.get(), slab_off_, true, false);
    EXPECT_EQ(rebuilt.header()->flag, 0u) << "undo clears the flag";
    EXPECT_FALSE(rebuilt.morphing()) << "staging discarded";
    EXPECT_EQ(rebuilt.sizeClass(), sizeToClass(64));
    EXPECT_EQ(rebuilt.liveBlocks(), 2u);
}

} // namespace
} // namespace nvalloc
