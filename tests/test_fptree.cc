/**
 * @file
 * FPTree correctness tests: ordered-map semantics under inserts,
 * deletes, lookups, splits across multiple levels, and concurrent
 * mixed workloads — on top of both NVAlloc variants and a baseline.
 */

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "baselines/nvalloc_adapter.h"
#include "baselines/pmdk_alloc.h"
#include "common/rng.h"
#include "fptree/fptree.h"

namespace nvalloc {
namespace {

TEST(FpTree, InsertLookupEraseSmoke)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 29;
    PmDevice dev(dcfg);
    NvAllocAdapter alloc(dev);
    FpTree tree(alloc);
    AllocThread *t = alloc.threadAttach();

    EXPECT_TRUE(tree.insert(t, 42, 1000));
    EXPECT_FALSE(tree.insert(t, 42, 1001)) << "duplicate must fail";
    uint64_t v = 0;
    EXPECT_TRUE(tree.lookup(42, v));
    EXPECT_EQ(v, 1000u);
    EXPECT_TRUE(tree.erase(t, 42));
    EXPECT_FALSE(tree.erase(t, 42));
    EXPECT_FALSE(tree.lookup(42, v));
    alloc.threadDetach(t);
}

TEST(FpTree, SplitsAcrossLevelsMatchStdMap)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 30;
    PmDevice dev(dcfg);
    NvAllocAdapter alloc(dev);
    FpTree tree(alloc);
    AllocThread *t = alloc.threadAttach();

    // Enough keys to force multi-level inner splits (64-way fanout,
    // 64-entry leaves -> 20k keys gives a 3-level tree).
    std::map<uint64_t, uint64_t> model;
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        uint64_t key = rng.next();
        uint64_t val = rng.next();
        bool inserted = tree.insert(t, key, val);
        bool expected = model.emplace(key, val).second;
        ASSERT_EQ(inserted, expected) << i;
    }
    EXPECT_EQ(tree.size(), model.size());

    Rng probe(7);
    for (int i = 0; i < 20000; ++i) {
        uint64_t key = probe.next();
        uint64_t expect_val = probe.next();
        uint64_t v = 0;
        ASSERT_TRUE(tree.lookup(key, v)) << i;
        if (model.at(key) == expect_val) {
            ASSERT_EQ(v, expect_val);
        }
    }

    // Erase half, verify membership matches the model.
    Rng eraser(7);
    int removed = 0;
    for (int i = 0; i < 20000; ++i) {
        uint64_t key = eraser.next();
        eraser.next();
        if (i % 2 == 0) {
            bool erased = tree.erase(t, key);
            bool expected = model.erase(key) > 0;
            ASSERT_EQ(erased, expected);
            removed += erased ? 1 : 0;
        }
    }
    EXPECT_EQ(tree.size(), model.size());
    for (const auto &[key, val] : model) {
        uint64_t v = 0;
        ASSERT_TRUE(tree.lookup(key, v));
        ASSERT_EQ(v, val);
    }
    alloc.threadDetach(t);
}

TEST(FpTree, WorksOnBaselineAllocators)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 29;
    PmDevice dev(dcfg);
    PmdkAlloc alloc(dev);
    FpTree tree(alloc);
    AllocThread *t = alloc.threadAttach();
    for (uint64_t k = 0; k < 2000; ++k)
        ASSERT_TRUE(tree.insert(t, k * 3, k));
    uint64_t v;
    for (uint64_t k = 0; k < 2000; ++k) {
        ASSERT_TRUE(tree.lookup(k * 3, v));
        ASSERT_EQ(v, k);
    }
    alloc.threadDetach(t);
}

TEST(FpTree, ConcurrentMixedOps)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 30;
    PmDevice dev(dcfg);
    NvAllocAdapter alloc(dev);
    FpTree tree(alloc);

    constexpr unsigned kThreads = 4;
    std::vector<std::thread> workers;
    for (unsigned tid = 0; tid < kThreads; ++tid) {
        workers.emplace_back([&, tid] {
            AllocThread *t = alloc.threadAttach();
            Rng rng(tid + 100);
            // Disjoint key ranges; 50/50 insert/delete as in §6.3.
            uint64_t base = uint64_t(tid) << 32;
            std::vector<uint64_t> mine;
            for (int i = 0; i < 4000; ++i) {
                if (mine.empty() || rng.nextDouble() < 0.5) {
                    uint64_t key = base + rng.nextBounded(1u << 20);
                    if (tree.insert(t, key, key * 2))
                        mine.push_back(key);
                } else {
                    size_t pick = rng.nextBounded(mine.size());
                    ASSERT_TRUE(tree.erase(t, mine[pick]));
                    mine[pick] = mine.back();
                    mine.pop_back();
                }
            }
            for (uint64_t key : mine) {
                uint64_t v = 0;
                ASSERT_TRUE(tree.lookup(key, v));
                ASSERT_EQ(v, key * 2);
            }
            alloc.threadDetach(t);
        });
    }
    for (auto &w : workers)
        w.join();
}

} // namespace
} // namespace nvalloc
