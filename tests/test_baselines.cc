/**
 * @file
 * Functional tests of the baseline allocator models through the
 * common PmAllocator interface — every allocator must allocate
 * distinct, writable, reusable blocks, and exhibit the flush
 * discipline its original is known for (checked via the latency-model
 * counters).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <thread>

#include "baselines/makalu_alloc.h"
#include "baselines/nvalloc_adapter.h"
#include "baselines/nvm_malloc_alloc.h"
#include "baselines/pallocator.h"
#include "baselines/pmdk_alloc.h"
#include "baselines/ralloc_alloc.h"
#include "common/rng.h"

namespace nvalloc {
namespace {

enum class Kind { Pmdk, NvmMalloc, Pal, Makalu, Ralloc, NvLog, NvGc };

std::unique_ptr<PmAllocator>
make(Kind kind, PmDevice &dev)
{
    switch (kind) {
      case Kind::Pmdk:
        return std::make_unique<PmdkAlloc>(dev);
      case Kind::NvmMalloc:
        return std::make_unique<NvmMallocAlloc>(dev);
      case Kind::Pal:
        return std::make_unique<PalAllocator>(dev);
      case Kind::Makalu:
        return std::make_unique<MakaluAlloc>(dev);
      case Kind::Ralloc:
        return std::make_unique<RallocAlloc>(dev);
      case Kind::NvLog:
        return std::make_unique<NvAllocAdapter>(dev);
      case Kind::NvGc: {
        NvAllocConfig cfg;
        cfg.consistency = Consistency::Gc;
        return std::make_unique<NvAllocAdapter>(dev, cfg);
      }
    }
    return nullptr;
}

class AllAllocators : public ::testing::TestWithParam<Kind>
{
};

TEST_P(AllAllocators, AllocFreeReuseCycle)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 30;
    PmDevice dev(dcfg);
    auto alloc = make(GetParam(), dev);
    AllocThread *t = alloc->threadAttach();

    std::set<uint64_t> seen;
    std::vector<uint64_t> offs;
    for (int i = 0; i < 1000; ++i) {
        size_t size = 16 + (i % 400);
        uint64_t off = alloc->allocTo(t, size, nullptr);
        ASSERT_NE(off, 0u);
        ASSERT_TRUE(seen.insert(off).second) << alloc->name();
        std::memset(dev.at(off), 0x5c, size);
        offs.push_back(off);
    }
    for (uint64_t off : offs)
        alloc->freeFrom(t, off, nullptr);

    // Freed memory must be reusable without growing the heap much.
    size_t committed = dev.committedBytes();
    for (int round = 0; round < 3; ++round) {
        std::vector<uint64_t> batch;
        for (int i = 0; i < 1000; ++i)
            batch.push_back(alloc->allocTo(t, 16 + (i % 400), nullptr));
        for (uint64_t off : batch)
            alloc->freeFrom(t, off, nullptr);
    }
    EXPECT_LE(dev.committedBytes(), committed + 4 * kRegionSize)
        << alloc->name();

    alloc->threadDetach(t);
}

TEST_P(AllAllocators, LargeAllocations)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 30;
    PmDevice dev(dcfg);
    auto alloc = make(GetParam(), dev);
    if (!alloc->supportsLarge())
        GTEST_SKIP() << alloc->name() << " excluded for large objects";
    AllocThread *t = alloc->threadAttach();

    std::vector<uint64_t> offs;
    for (int i = 0; i < 40; ++i) {
        size_t size = 32 * 1024 + (i % 8) * 48 * 1024;
        uint64_t off = alloc->allocTo(t, size, nullptr);
        ASSERT_NE(off, 0u);
        std::memset(dev.at(off), 0x11, size);
        offs.push_back(off);
    }
    for (uint64_t off : offs)
        alloc->freeFrom(t, off, nullptr);
    alloc->threadDetach(t);
}

TEST_P(AllAllocators, PublishesAttachWord)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 29;
    PmDevice dev(dcfg);
    auto alloc = make(GetParam(), dev);
    AllocThread *t = alloc->threadAttach();

    // A persistent word in the heap region: use a raw region carve.
    auto *word =
        static_cast<uint64_t *>(dev.at(dev.mapRegion(4096)));
    *word = 0;
    uint64_t off = alloc->allocTo(t, 64, word);
    EXPECT_EQ(*word, off);
    alloc->freeFrom(t, off, word);
    EXPECT_EQ(*word, 0u);
    alloc->threadDetach(t);
}

TEST_P(AllAllocators, MultiThreadedCorrectness)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 30;
    PmDevice dev(dcfg);
    auto alloc = make(GetParam(), dev);

    std::vector<std::thread> threads;
    for (int ti = 0; ti < 4; ++ti) {
        threads.emplace_back([&, ti] {
            AllocThread *t = alloc->threadAttach();
            Rng rng(ti + 7);
            std::vector<std::pair<uint64_t, uint8_t>> live;
            for (int i = 0; i < 2000; ++i) {
                if (live.empty() || rng.nextDouble() < 0.55) {
                    size_t size = 24 + rng.nextBounded(300);
                    uint64_t off = alloc->allocTo(t, size, nullptr);
                    ASSERT_NE(off, 0u);
                    uint8_t tag = uint8_t(rng.next());
                    std::memset(dev.at(off), tag, 24);
                    live.emplace_back(off, tag);
                } else {
                    size_t pick = rng.nextBounded(live.size());
                    auto [off, tag] = live[pick];
                    // No other thread may have scribbled on our block.
                    auto *bytes = static_cast<uint8_t *>(dev.at(off));
                    for (int b = 0; b < 24; ++b)
                        ASSERT_EQ(bytes[b], tag) << alloc->name();
                    alloc->freeFrom(t, off, nullptr);
                    live[pick] = live.back();
                    live.pop_back();
                }
            }
            for (auto [off, tag] : live)
                alloc->freeFrom(t, off, nullptr);
            alloc->threadDetach(t);
        });
    }
    for (auto &th : threads)
        th.join();
}

INSTANTIATE_TEST_SUITE_P(
    Models, AllAllocators,
    ::testing::Values(Kind::Pmdk, Kind::NvmMalloc, Kind::Pal,
                      Kind::Makalu, Kind::Ralloc, Kind::NvLog,
                      Kind::NvGc),
    [](const ::testing::TestParamInfo<Kind> &info) {
        switch (info.param) {
          case Kind::Pmdk: return "PMDK";
          case Kind::NvmMalloc: return "nvm_malloc";
          case Kind::Pal: return "PAllocator";
          case Kind::Makalu: return "Makalu";
          case Kind::Ralloc: return "Ralloc";
          case Kind::NvLog: return "NVAllocLOG";
          case Kind::NvGc: return "NVAllocGC";
        }
        return "unknown";
    });

TEST(BaselineDiscipline, PmdkIsReflushBound)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 29;
    PmDevice dev(dcfg);
    PmdkAlloc alloc(dev);
    AllocThread *t = alloc.threadAttach();
    dev.model().reset();
    std::vector<uint64_t> offs;
    for (int i = 0; i < 2000; ++i)
        offs.push_back(alloc.allocTo(t, 64, nullptr));
    auto c = dev.flushCounts();
    // The paper's Fig. 1(a): PMDK's flushes are overwhelmingly
    // reflushes (up to 99.7%).
    EXPECT_GT(double(c.reflush) / double(c.total), 0.9);
    for (uint64_t off : offs)
        alloc.freeFrom(t, off, nullptr);
    alloc.threadDetach(t);
}

TEST(BaselineDiscipline, NvAllocLogAvoidsReflushes)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 29;
    PmDevice dev(dcfg);
    NvAllocAdapter alloc(dev);
    AllocThread *t = alloc.threadAttach();
    dev.model().reset();
    std::vector<uint64_t> offs;
    for (int i = 0; i < 2000; ++i)
        offs.push_back(alloc.allocTo(t, 64, nullptr));
    auto c = dev.flushCounts();
    // Interleaved mapping: reflushes nearly eliminated (paper §5.1).
    EXPECT_LT(double(c.reflush) / double(c.total), 0.1);
    for (uint64_t off : offs)
        alloc.freeFrom(t, off, nullptr);
    alloc.threadDetach(t);
}

} // namespace
} // namespace nvalloc
