/**
 * @file
 * OffsetPtr tests: self-relative semantics, null encoding, and —
 * the property that matters for persistent structures — validity
 * after the containing memory is "remapped" (memcpy'd elsewhere)
 * together with its target.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "pm/offset_ptr.h"

namespace nvalloc {
namespace {

struct PNode
{
    uint64_t value;
    OffsetPtr<PNode> next;
};

TEST(OffsetPtr, NullByDefaultAndAssignable)
{
    OffsetPtr<int> p;
    EXPECT_FALSE(p);
    EXPECT_EQ(p.get(), nullptr);
    int x = 42;
    p = &x;
    EXPECT_TRUE(p);
    EXPECT_EQ(*p, 42);
    p = nullptr;
    EXPECT_FALSE(p);
}

TEST(OffsetPtr, SelfRelativeSurvivesRelocation)
{
    // A little arena holding two nodes linked by OffsetPtr.
    alignas(16) char arena_a[256];
    std::memset(arena_a, 0, sizeof(arena_a));
    auto *n0 = new (arena_a) PNode{10, {}};
    auto *n1 = new (arena_a + 64) PNode{20, {}};
    n0->next = n1;
    ASSERT_EQ(n0->next->value, 20u);

    // "Remap" the heap at a different address: raw copy.
    alignas(16) char arena_b[256];
    std::memcpy(arena_b, arena_a, sizeof(arena_a));
    auto *m0 = reinterpret_cast<PNode *>(arena_b);
    EXPECT_EQ(m0->next->value, 20u);
    EXPECT_EQ(reinterpret_cast<char *>(m0->next.get()), arena_b + 64)
        << "link must resolve within the new mapping";
}

TEST(OffsetPtr, CopyRebasesRelativeOffset)
{
    int x = 7;
    OffsetPtr<int> a(&x);
    OffsetPtr<int> b(a); // lives at a different address than a
    EXPECT_EQ(b.get(), &x);
    OffsetPtr<int> c;
    c = a;
    EXPECT_EQ(c.get(), &x);
    EXPECT_TRUE(a == b);
}

TEST(OffsetPtr, ChainTraversal)
{
    std::vector<char> arena(64 * 32);
    PNode *prev = nullptr;
    for (int i = 31; i >= 0; --i) {
        auto *n = new (arena.data() + i * 64) PNode{uint64_t(i), {}};
        n->next = prev;
        prev = n;
    }
    unsigned count = 0;
    for (PNode *n = prev; n; n = n->next.get()) {
        EXPECT_EQ(n->value, count);
        ++count;
    }
    EXPECT_EQ(count, 32u);
}

} // namespace
} // namespace nvalloc
