/**
 * @file
 * Fault-injection substrate tests: torn persists, dropped flushes,
 * early evictions, 8-byte word atomicity, media poison, and the
 * hardened recovery they exercise.
 *
 * The centerpiece is a flush/fence-granularity crash sweep: unlike the
 * op-granularity crash matrix, crashes land *inside* operations — in
 * the middle of a WAL append, a bitmap flush, a morph step, a log
 * compaction — under four durability policies. At every crash point
 * the recovered heap must satisfy the same safety properties:
 *
 *   1. no lost committed object — every offset whose attach word was
 *      persistently published is still allocated;
 *   2. no leak — live blocks equal published words exactly;
 *   3. the heap remains fully usable after recovery;
 *   4. the recovered heap passes a full HeapAuditor walk with zero
 *      violations — the auditor is the sweep's structural oracle;
 *   5. damage injected *after* recovery (a poisoned free line, a
 *      stray persistent-bitmap bit) is repaired by the auditor and
 *      the heap audits clean again.
 *
 * Data *content* is deliberately not asserted here: the workload
 * persists payload bytes after the publishing fence, so a mid-op crash
 * legitimately loses them. Content integrity across crashes is an
 * application-transaction concern; the op-granularity crash matrix
 * covers the content-after-complete-op case.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <system_error>
#include <tuple>

#include "common/rng.h"
#include "nvalloc/auditor.h"
#include "nvalloc/nvalloc.h"
#include "nvalloc/wal.h"
#include "test_util.h"

namespace nvalloc {
namespace {

// ---------------------------------------------------------------------
// Device-level fault-injection semantics
// ---------------------------------------------------------------------

TEST(PmDeviceFault, MmapFailureThrowsSystemError)
{
    PmDeviceConfig cfg;
    cfg.size = size_t{1} << 62; // exceeds any user address space
    EXPECT_THROW(PmDevice dev(cfg), std::system_error);
}

class FaultDeviceFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PmDeviceConfig cfg;
        cfg.size = size_t{1} << 22;
        cfg.shadow = true;
        dev_ = std::make_unique<PmDevice>(cfg);
        off_ = dev_->mapRegion(4096);
        w_ = static_cast<uint64_t *>(dev_->at(off_));
    }

    std::unique_ptr<PmDevice> dev_;
    uint64_t off_ = 0;
    uint64_t *w_ = nullptr;
};

TEST_F(FaultDeviceFixture, FencedEpochsAlwaysCommit)
{
    FaultPolicy p;
    p.staged_persist_fraction = 0.0; // drop every unfenced flush
    dev_->enableFaultInjection(p);

    w_[0] = 1;
    dev_->persistFence(w_, 8, TimeKind::FlushData);
    dev_->crash();
    EXPECT_EQ(w_[0], 1u) << "fence retired => durable, policy-immune";
}

TEST_F(FaultDeviceFixture, UnfencedFlushIsSubjectToPolicy)
{
    FaultPolicy p;
    p.staged_persist_fraction = 0.0;
    dev_->enableFaultInjection(p);

    w_[0] = 1;
    dev_->persistFence(w_, 8, TimeKind::FlushData);
    w_[0] = 2;
    dev_->persist(w_, 8, TimeKind::FlushData); // flushed, never fenced
    dev_->crash();
    EXPECT_EQ(w_[0], 1u) << "issued-but-unfenced flush dropped";

    // The idealized default keeps it.
    dev_->enableFaultInjection(FaultPolicy{});
    w_[0] = 3;
    dev_->persist(w_, 8, TimeKind::FlushData);
    dev_->crash();
    EXPECT_EQ(w_[0], 3u) << "fraction 1.0 reproduces flush-is-durable";
}

TEST_F(FaultDeviceFixture, EvictionLandsNeverFlushedStores)
{
    dev_->enableFaultInjection(FaultPolicy{});
    w_[0] = 1;
    dev_->persistFence(w_, 8, TimeKind::FlushData);

    w_[0] = 2; // dirty, never flushed
    dev_->crash();
    EXPECT_EQ(w_[0], 1u) << "no eviction: unflushed store lost";

    FaultPolicy p;
    p.eviction_fraction = 1.0;
    dev_->enableFaultInjection(p);
    w_[0] = 2;
    dev_->crash();
    EXPECT_EQ(w_[0], 2u) << "evicted line reached media without flush";
}

TEST_F(FaultDeviceFixture, TornLineRespectsWordAtomicity)
{
    bool saw_old = false, saw_new = false;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        FaultPolicy p;
        p.seed = seed;
        p.word_granularity = true;
        dev_->enableFaultInjection(p);

        for (unsigned i = 0; i < 8; ++i)
            w_[i] = 0x1111111111111111ull * (i + 1);
        dev_->persistFence(w_, 64, TimeKind::FlushData);

        for (unsigned i = 0; i < 8; ++i)
            w_[i] = 0xaaaaaaaaaaaaaaaaull - i;
        dev_->persist(w_, 64, TimeKind::FlushData); // unfenced: may tear
        dev_->crash();

        for (unsigned i = 0; i < 8; ++i) {
            uint64_t old_v = 0x1111111111111111ull * (i + 1);
            uint64_t new_v = 0xaaaaaaaaaaaaaaaaull - i;
            ASSERT_TRUE(w_[i] == old_v || w_[i] == new_v)
                << "word " << i << " torn below 8-byte granularity";
            (w_[i] == old_v ? saw_old : saw_new) = true;
        }
        // Reset to a clean fenced state for the next seed.
        for (unsigned i = 0; i < 8; ++i)
            w_[i] = 0;
        dev_->persistFence(w_, 64, TimeKind::FlushData);
    }
    EXPECT_TRUE(saw_old && saw_new)
        << "tearing should produce a mix of old and new words";
}

TEST_F(FaultDeviceFixture, ArmedCrashFreezesWithoutThrowing)
{
    dev_->enableFaultInjection(FaultPolicy{});
    dev_->armCrashAtFlush(2);

    w_[0] = 1;
    dev_->persistFence(w_, 8, TimeKind::FlushData); // flush #1, fenced
    EXPECT_FALSE(dev_->crashTriggered());

    w_[1] = 2;
    dev_->persistFence(&w_[1], 8, TimeKind::FlushData); // flush #2: crash
    EXPECT_TRUE(dev_->crashTriggered());

    // The workload keeps running; post-crash-point stores are doomed.
    w_[2] = 3;
    dev_->persistFence(&w_[2], 8, TimeKind::FlushData);

    dev_->crash();
    EXPECT_EQ(w_[0], 1u) << "pre-crash fenced epoch kept";
    EXPECT_EQ(w_[1], 2u) << "crash-epoch flush lands (fraction 1.0)";
    EXPECT_EQ(w_[2], 0u) << "post-crash-point persist is a no-op";
    EXPECT_FALSE(dev_->crashTriggered()) << "crash consumed the arming";
}

TEST_F(FaultDeviceFixture, PoisonReadsSentinelUntilRewritten)
{
    dev_->poisonLine(off_);
    EXPECT_TRUE(dev_->isPoisoned(w_, 8));
    EXPECT_EQ(dev_->poisonedLineCount(), 1u);
    auto *bytes = static_cast<uint8_t *>(dev_->at(off_));
    for (unsigned i = 0; i < kCacheLine; ++i)
        ASSERT_EQ(bytes[i], kPoisonByte);

    // Poison is a media property: it survives a crash.
    dev_->crash();
    EXPECT_TRUE(dev_->isPoisoned(w_, 8));
    EXPECT_EQ(bytes[0], kPoisonByte);

    // A persisted write heals the line.
    w_[0] = 7;
    dev_->persistFence(w_, 8, TimeKind::FlushData);
    EXPECT_FALSE(dev_->isPoisoned(w_, 8));
    EXPECT_EQ(dev_->poisonedLineCount(), 0u);
    dev_->crash();
    EXPECT_EQ(w_[0], 7u);

    // clearPoison is administrative repair: flag gone, bytes stale.
    dev_->poisonLine(off_);
    dev_->clearPoison(off_);
    EXPECT_FALSE(dev_->isPoisoned(w_, 8));
}

// ---------------------------------------------------------------------
// Flush/fence-granularity crash sweep
// ---------------------------------------------------------------------

constexpr unsigned kSlots = 64;
constexpr unsigned kMaxOps = 400;

/** The sweep honours NVALLOC_MAINTENANCE=off|manual|thread (the CI
 *  matrix's background-maintenance legs): every heap below opens with
 *  that mode, so in the thread leg crash points land while a live
 *  maintenance worker races the workload, and recovery itself runs
 *  with the service restarted.
 *
 *  NVALLOC_HARDENING=full additionally turns canaries and the
 *  delayed-reuse quarantine on, so the CI hardening leg proves crash
 *  points landing inside canary stamps and quarantine traffic still
 *  recover to a clean heap. Guard sampling stays off here: guards are
 *  large extents, which would skew this sweep's small-block leak
 *  oracle (the chaos harness crash-sweeps guards instead).
 *
 *  NVALLOC_FASTPATH=locked|lockfree pins the small-path mode (the
 *  tsan-fastpath CI leg sweeps with lockfree explicitly; locked is
 *  the escape-hatch leg). Unset keeps the config default. */
NvAllocConfig
sweepConfig()
{
    NvAllocConfig cfg;
    const char *env = std::getenv("NVALLOC_MAINTENANCE");
    if (env && std::strcmp(env, "thread") == 0)
        cfg.maintenance_mode = MaintenanceMode::Thread;
    else if (env && std::strcmp(env, "manual") == 0)
        cfg.maintenance_mode = MaintenanceMode::Manual;
    const char *hard = std::getenv("NVALLOC_HARDENING");
    if (hard && std::strcmp(hard, "full") == 0) {
        cfg.redzone_canaries = true;
        cfg.quarantine_depth = 16;
    }
    const char *fp = std::getenv("NVALLOC_FASTPATH");
    if (fp && std::strcmp(fp, "locked") == 0)
        cfg.fastpath = FastPathMode::Locked;
    else if (fp && std::strcmp(fp, "lockfree") == 0)
        cfg.fastpath = FastPathMode::LockFree;
    return cfg;
}

struct PolicyCase
{
    const char *name;
    double staged_fraction;
    double eviction_fraction;
    bool word_granularity;
};

constexpr PolicyCase kPolicyCases[] = {
    {"clean-epoch", 1.0, 0.0, false},
    {"dropped-flushes", 0.5, 0.3, false},
    {"torn-words", 0.7, 0.0, true},
    {"epoch-lost", 0.0, 0.0, false},
};

/** Run the seeded mixed workload, crash at the nth flush (or fence),
 *  recover, and assert the three safety properties. */
void
runCrashSweepPoint(const PolicyCase &pc, bool at_fence, unsigned nth)
{
    SCOPED_TRACE(::testing::Message()
                 << pc.name << (at_fence ? " fence=" : " flush=") << nth);

    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 29;
    dcfg.shadow = true;
    PmDevice dev(dcfg);

    FaultPolicy policy;
    policy.seed = uint64_t(nth) * 0x9e3779b9u + (at_fence ? 77 : 0);
    policy.staged_persist_fraction = pc.staged_fraction;
    policy.eviction_fraction = pc.eviction_fraction;
    policy.word_granularity = pc.word_granularity;
    dev.enableFaultInjection(policy);

    uint64_t table_off;
    {
        auto alloc_h = NvAlloc::openOrDie(dev, sweepConfig());
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        alloc.mallocTo(*ctx, kSlots * 8, alloc.rootWord(0));
        table_off = *alloc.rootWord(0);
        std::memset(alloc.at(table_off), 0, kSlots * 8);
        dev.persistFence(alloc.at(table_off), kSlots * 8,
                         TimeKind::FlushData);

        // Arm after setup so every crash point lands in the workload.
        if (at_fence)
            dev.armCrashAtFence(nth);
        else
            dev.armCrashAtFlush(nth);

        auto *slots = static_cast<uint64_t *>(alloc.at(table_off));
        Rng rng(99);
        for (unsigned op = 0; op < kMaxOps && !dev.crashTriggered();
             ++op) {
            unsigned s = unsigned(rng.nextBounded(kSlots));
            if (slots[s] == 0) {
                size_t size = 32 + rng.nextBounded(400);
                void *p = alloc.mallocTo(*ctx, size, &slots[s]);
                std::memset(p, int(0x40 + s), 32);
                dev.persistFence(p, 32, TimeKind::FlushData);
            } else {
                alloc.freeFrom(*ctx, &slots[s]);
            }
        }
        alloc.simulateCrash();
    }

    auto again_h = NvAlloc::openOrDie(dev, sweepConfig());
    NvAlloc &again = *again_h;
    const RecoveryReport &rep = again.lastRecovery();
    EXPECT_TRUE(rep.performed);
    EXPECT_TRUE(rep.after_failure);

    // Properties 1 + 2: published <=> allocated, no leak.
    auto *slots = static_cast<uint64_t *>(again.at(table_off));
    unsigned published = 0;
    for (unsigned s = 0; s < kSlots; ++s) {
        if (slots[s] == 0)
            continue;
        ++published;
        ASSERT_TRUE(blockIsLive(again, slots[s]))
            << "slot " << s << " (off " << slots[s]
            << ") lost; wal_rejected=" << rep.wal_rejected
            << " undos=" << rep.wal_undos
            << " completions=" << rep.wal_completions
            << " quarantined=" << rep.slabs_quarantined;
    }
    EXPECT_EQ(liveSmallBlocks(again), published + 1)
        << "leak or loss; wal_rejected=" << rep.wal_rejected
        << " undos=" << rep.wal_undos
        << " completions=" << rep.wal_completions
        << " quarantined=" << rep.slabs_quarantined;

    // Property 4: the post-recovery heap audits clean (informational
    // poison counters aside, which the policies here never produce).
    HeapAuditor auditor(again);
    AuditReport audit0 = auditor.audit();
    EXPECT_EQ(audit0.violations(), 0u) << audit0.summary();

    // Property 5: inject repairable damage — a poisoned free line and
    // a stray bit in one slab's persistent bitmap — then repair and
    // re-audit. The stray bit goes to a quiescent slab (no morph, no
    // lent blocks) so the bitmap is rebuildable from the mirror.
    // Maintenance is paused across the injection so a background scrub
    // slice cannot heal the poisoned line before the auditor gets to
    // count and repair it (the counters below are exact).
    again.maintenance().pause();
    dev.poisonLine(dev.size() - kCacheLine); // unmapped => free line
    VSlab *victim = nullptr;
    for (unsigned a = 0; a < again.numArenas() && !victim; ++a) {
        again.arena(a).forEachSlab([&](VSlab *s) {
            if (!victim && !s->morphing() && s->lentBlocks() == 0)
                victim = s;
        });
    }
    if (victim)
        victim->header()->bitmap[kSlabBitmapBytes - 1] ^= 0x80;
    AuditReport fixed = auditor.repair();
    EXPECT_EQ(fixed.scrubbed_lines, 1u) << fixed.summary();
    if (victim) {
        EXPECT_EQ(fixed.bitmap_mismatch, 1u) << fixed.summary();
        EXPECT_EQ(fixed.repaired_bitmaps, 1u) << fixed.summary();
    }
    AuditReport audit1 = auditor.audit();
    EXPECT_EQ(audit1.violations(), 0u) << audit1.summary();
    EXPECT_EQ(audit1.poisoned_free_lines, 0u);
    EXPECT_EQ(audit1.poisoned_live_lines, 0u);
    again.maintenance().resume();

    // Property 3: still usable — free everything, allocate again.
    ThreadCtx *ctx = again.attachThread();
    for (unsigned s = 0; s < kSlots; ++s) {
        if (slots[s])
            again.freeFrom(*ctx, &slots[s]);
    }
    uint64_t probe = again.allocOffset(*ctx, 128, nullptr);
    EXPECT_NE(probe, 0u);
    again.freeOffset(*ctx, probe, nullptr);
    again.detachThread(ctx);
}

class FlushCrashSweep
    : public ::testing::TestWithParam<std::tuple<int, unsigned>>
{
};

TEST_P(FlushCrashSweep, SafeAtEveryFlushCrashPoint)
{
    auto [pi, k] = GetParam();
    // Per-policy offset + stride 7 keeps every (policy, nth) pair a
    // distinct absolute crash point across the whole sweep.
    unsigned nth = 1 + unsigned(pi) + 7 * k;
    runCrashSweepPoint(kPolicyCases[pi], /*at_fence=*/false, nth);
}

// 4 policies x 80 flush points = 320 distinct crash points.
INSTANTIATE_TEST_SUITE_P(Policies, FlushCrashSweep,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0u, 80u)));

class FenceCrashSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FenceCrashSweep, SafeAtEveryFenceCrashPoint)
{
    unsigned nth = 2 + 17 * GetParam();
    runCrashSweepPoint(kPolicyCases[2], /*at_fence=*/true, nth);
}

// 25 more crash points, at fence granularity (epoch never commits).
INSTANTIATE_TEST_SUITE_P(TornWords, FenceCrashSweep,
                         ::testing::Range(0u, 25u));

// ---------------------------------------------------------------------
// WAL checksum rejection
// ---------------------------------------------------------------------

TEST(WalChecksum, TornEntryIsRejectedAndUndoneNotReplayed)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 28;
    PmDevice dev(dcfg);

    uint64_t c_off;
    {
        auto alloc_h = NvAlloc::openOrDie(dev);
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        alloc.mallocTo(*ctx, 64, alloc.rootWord(2));
        c_off = *alloc.rootWord(2);

        // Newest entry journals the (published, committed) alloc of C.
        // Rewrite its attach word to an empty root — the shape a torn
        // append would leave — WITHOUT fixing the crc. If replay
        // trusted it, it would "undo" the never-published alloc and
        // free live block C.
        auto *newest = const_cast<WalEntry *>(Wal::newestEntry(
            &dev, alloc.walRingOffset(ctx->wal_slot)));
        ASSERT_NE(newest, nullptr);
        ASSERT_EQ(newest->block_op >> 2, c_off);
        newest->where_off = dev.offsetOf(alloc.rootWord(3));
        alloc.dirtyRestart();
    }
    {
        auto again_h = NvAlloc::openOrDie(dev);
        NvAlloc &again = *again_h;
        const RecoveryReport &rep = again.lastRecovery();
        EXPECT_TRUE(rep.after_failure);
        EXPECT_GE(rep.wal_rejected, 1u) << "checksum must fire";
        EXPECT_EQ(rep.wal_undos, 0u);
        EXPECT_TRUE(blockIsLive(again, c_off))
            << "torn entry must be treated as uncommitted, not replayed";

        // Control: the same entry with a VALID crc is trusted, and the
        // undo it describes really does free C — demonstrating that
        // only the checksum stood between the torn entry and replay.
        WalEntry fake{};
        fake.block_op = (c_off << 2) | uint64_t(kWalAlloc);
        fake.seq = 1;
        fake.where_off = dev.offsetOf(again.rootWord(3));
        fake.size = 64;
        fake.crc = walEntryCrc(fake);
        *static_cast<WalEntry *>(dev.at(again.walRingOffset(0))) = fake;
        again.dirtyRestart();
    }
    auto third_h = NvAlloc::openOrDie(dev);
    NvAlloc &third = *third_h;
    EXPECT_EQ(third.lastRecovery().wal_rejected, 0u);
    EXPECT_GE(third.lastRecovery().wal_undos, 1u);
    EXPECT_FALSE(blockIsLive(third, c_off));
}

// ---------------------------------------------------------------------
// Media poison containment
// ---------------------------------------------------------------------

TEST(PoisonContainment, PoisonedSlabHeaderIsQuarantinedPersistently)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 28;
    dcfg.shadow = true;
    PmDevice dev(dcfg);

    uint64_t a_off, b_off, slab_off;
    {
        auto alloc_h = NvAlloc::openOrDie(dev);
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        alloc.mallocTo(*ctx, 64, alloc.rootWord(0));
        a_off = *alloc.rootWord(0);
        alloc.mallocTo(*ctx, 2048, alloc.rootWord(1));
        b_off = *alloc.rootWord(1);
        auto *slab = static_cast<VSlab *>(alloc.slabRadix().get(a_off));
        ASSERT_NE(slab, nullptr);
        slab_off = slab->slabOffset();
        ASSERT_NE(slab_off,
                  static_cast<VSlab *>(alloc.slabRadix().get(b_off))
                      ->slabOffset())
            << "test needs the two blocks in different slabs";

        dev.poisonLine(slab_off); // header's first line
        alloc.simulateCrash();
    }
    uint64_t probe;
    {
        auto again_h = NvAlloc::openOrDie(dev);
        NvAlloc &again = *again_h;
        const RecoveryReport &rep = again.lastRecovery();
        EXPECT_GE(rep.lines_poisoned, 1u);
        EXPECT_EQ(rep.slabs_quarantined, 1u);
        EXPECT_TRUE(again.isQuarantined(slab_off));
        auto q = again.quarantinedSlabs();
        EXPECT_NE(std::find(q.begin(), q.end(), slab_off), q.end());

        // Contained loss: the poisoned slab's block is gone, the rest
        // of the heap is intact and fully usable.
        EXPECT_FALSE(blockIsLive(again, a_off));
        EXPECT_TRUE(blockIsLive(again, b_off));
        EXPECT_EQ(liveSmallBlocks(again), 1u);

        ThreadCtx *ctx = again.attachThread();
        probe = again.allocOffset(*ctx, 64, nullptr);
        EXPECT_NE(probe, 0u);
        EXPECT_FALSE(again.isQuarantined(
            static_cast<VSlab *>(again.slabRadix().get(probe))
                ->slabOffset()));
        again.freeOffset(*ctx, probe, nullptr);
        again.detachThread(ctx);
        again.dirtyRestart();
    }
    // The quarantine list is persistent: the next recovery skips the
    // slab silently instead of re-quarantining (or worse, adopting) it.
    auto third_h = NvAlloc::openOrDie(dev);
    NvAlloc &third = *third_h;
    EXPECT_TRUE(third.isQuarantined(slab_off));
    EXPECT_EQ(third.lastRecovery().slabs_quarantined, 0u);
    EXPECT_FALSE(blockIsLive(third, a_off));
}

// ---------------------------------------------------------------------
// Double recovery: crash during recovery, recover again
// ---------------------------------------------------------------------

class DoubleRecovery : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DoubleRecovery, CrashDuringRecoveryIsIdempotent)
{
    unsigned nth = GetParam();
    SCOPED_TRACE(::testing::Message() << "recovery crash flush=" << nth);

    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 29;
    dcfg.shadow = true;
    PmDevice dev(dcfg);

    FaultPolicy policy;
    policy.seed = nth * 31 + 7;
    policy.staged_persist_fraction = 0.6;
    policy.word_granularity = true;
    dev.enableFaultInjection(policy);

    // Phase 1: a workload crash leaves real recovery work behind.
    uint64_t table_off;
    {
        auto alloc_h = NvAlloc::openOrDie(dev, sweepConfig());
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        alloc.mallocTo(*ctx, kSlots * 8, alloc.rootWord(0));
        table_off = *alloc.rootWord(0);
        std::memset(alloc.at(table_off), 0, kSlots * 8);
        dev.persistFence(alloc.at(table_off), kSlots * 8,
                         TimeKind::FlushData);
        dev.armCrashAtFlush(173);
        auto *slots = static_cast<uint64_t *>(alloc.at(table_off));
        Rng rng(7);
        for (unsigned op = 0; op < 200 && !dev.crashTriggered(); ++op) {
            unsigned s = unsigned(rng.nextBounded(kSlots));
            if (slots[s] == 0)
                alloc.mallocTo(*ctx, 32 + rng.nextBounded(400),
                               &slots[s]);
            else
                alloc.freeFrom(*ctx, &slots[s]);
        }
        alloc.simulateCrash();
    }

    // Phase 2: the first recovery itself crashes at the nth flush.
    dev.armCrashAtFlush(nth);
    {
        auto once_h = NvAlloc::openOrDie(dev, sweepConfig());
        NvAlloc &once = *once_h;
        once.simulateCrash();
    }

    // Phase 3: the second recovery must complete and the safety
    // properties must hold exactly as after a single recovery.
    auto again_h = NvAlloc::openOrDie(dev, sweepConfig());
    NvAlloc &again = *again_h;
    const RecoveryReport &rep = again.lastRecovery();
    EXPECT_TRUE(rep.performed);
    EXPECT_TRUE(rep.after_failure);

    auto *slots = static_cast<uint64_t *>(again.at(table_off));
    unsigned published = 0;
    for (unsigned s = 0; s < kSlots; ++s) {
        if (slots[s] == 0)
            continue;
        ++published;
        ASSERT_TRUE(blockIsLive(again, slots[s])) << "slot " << s;
    }
    EXPECT_EQ(liveSmallBlocks(again), published + 1);

    ThreadCtx *ctx = again.attachThread();
    for (unsigned s = 0; s < kSlots; ++s) {
        if (slots[s])
            again.freeFrom(*ctx, &slots[s]);
    }
    uint64_t probe = again.allocOffset(*ctx, 128, nullptr);
    EXPECT_NE(probe, 0u);
    again.freeOffset(*ctx, probe, nullptr);
    again.detachThread(ctx);
}

INSTANTIATE_TEST_SUITE_P(RecoveryCrashPoints, DoubleRecovery,
                         ::testing::Values(3u, 11u, 29u, 67u, 139u,
                                           311u, 701u, 1511u, 3001u,
                                           6007u));

} // namespace
} // namespace nvalloc
