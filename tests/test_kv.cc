/**
 * @file
 * KV service tests (DESIGN.md §13): the KvStore surface (put/get/
 * erase/rmw/scan, rebuild-on-open, checksum containment, quarantine
 * routing), the YCSB generator machinery (seeded determinism and
 * distribution shape), the C veneer's error contracts on degraded and
 * quota-bound pool tenants — and the centerpiece, two crash-mid-
 * workload proofs:
 *
 *  - an every-flush-point sweep of a deterministic KV op mix whose
 *    oracle knows exactly which ops completed before the crash: every
 *    acked op must survive recovery bit-exact, the single in-flight
 *    op must resolve all-or-nothing (old state or new state, never a
 *    mix), and nothing else may change;
 *
 *  - seeded crash points inside a real multithreaded ycsbRun, where
 *    the recovered heap must audit clean, pass the store's full
 *    checksum verify, and still hold every load-phase key.
 *
 * Both honour NVALLOC_MAINTENANCE=off|manual|thread and
 * NVALLOC_HARDENING=full like the tx sweep, so the CI legs prove the
 * KV protocol under a racing maintenance worker and full hardening.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "kv/kv_c.h"
#include "kv/kv_store.h"
#include "nvalloc/auditor.h"
#include "nvalloc/nvalloc.h"
#include "workloads/ycsb.h"

namespace nvalloc {
namespace {

NvAllocConfig
sweepConfig()
{
    NvAllocConfig cfg;
    const char *env = std::getenv("NVALLOC_MAINTENANCE");
    if (env && std::strcmp(env, "thread") == 0)
        cfg.maintenance_mode = MaintenanceMode::Thread;
    else if (env && std::strcmp(env, "manual") == 0)
        cfg.maintenance_mode = MaintenanceMode::Manual;
    const char *hard = std::getenv("NVALLOC_HARDENING");
    if (hard && std::strcmp(hard, "full") == 0) {
        cfg.redzone_canaries = true;
        cfg.quarantine_depth = 16;
    }
    return cfg;
}

uint64_t
ctlValue(NvAlloc &alloc, const char *name)
{
    uint64_t v = ~uint64_t{0};
    EXPECT_EQ(alloc.ctlRead(name, &v), NvStatus::Ok) << name;
    return v;
}

// ---------------------------------------------------------------------
// Generator machinery: seeded determinism and distribution shape
// ---------------------------------------------------------------------

TEST(YcsbGenerator, ZipfianIsDeterministicForASeed)
{
    ZipfianGenerator gen(100'000, 0.99);
    Rng a(1234), b(1234), c(999);
    bool diverged = false;
    for (int i = 0; i < 4096; ++i) {
        uint64_t ra = gen.next(a);
        ASSERT_EQ(ra, gen.next(b)) << "same seed diverged at " << i;
        if (ra != gen.next(c))
            diverged = true;
    }
    EXPECT_TRUE(diverged) << "different seeds produced one stream";
}

TEST(YcsbGenerator, ZipfianRanksInBoundsAndSkewed)
{
    constexpr uint64_t kItems = 1000;
    constexpr int kDraws = 200'000;
    ZipfianGenerator gen(kItems, 0.99);
    Rng rng(42);
    std::vector<uint32_t> hist(kItems, 0);
    for (int i = 0; i < kDraws; ++i) {
        uint64_t r = gen.next(rng);
        ASSERT_LT(r, kItems);
        ++hist[r];
    }
    // Rank 0 of a theta=0.99 zipfian over 1000 items carries ~13% of
    // the mass (1/zeta_0.99(1000)); uniform would be 0.1%. Loose
    // bounds — this is a shape check, not a statistics exam.
    double head = double(hist[0]) / kDraws;
    EXPECT_GT(head, 0.08) << "head rank not hot: " << head;
    EXPECT_LT(head, 0.25) << "head rank implausibly hot: " << head;
    // Monotone-ish decay: the first decile outweighs the last.
    uint64_t first = 0, last = 0;
    for (int i = 0; i < 100; ++i) {
        first += hist[i];
        last += hist[kItems - 100 + i];
    }
    EXPECT_GT(first, last * 10);
}

TEST(YcsbGenerator, SkewGrowsWithTheta)
{
    constexpr uint64_t kItems = 1000;
    constexpr int kDraws = 100'000;
    auto headMass = [&](double theta) {
        ZipfianGenerator gen(kItems, theta);
        Rng rng(7);
        int head = 0;
        for (int i = 0; i < kDraws; ++i)
            if (gen.next(rng) < 10)
                ++head;
        return double(head) / kDraws;
    };
    double flat = headMass(0.5), steep = headMass(0.99);
    EXPECT_GT(steep, flat * 1.5)
        << "theta 0.99 head mass " << steep << " vs 0.5's " << flat;
}

TEST(YcsbGenerator, KeysAndValuesAreDeterministicAndDistinct)
{
    EXPECT_EQ(ycsbKey(17), ycsbKey(17));
    EXPECT_NE(ycsbKey(17), ycsbKey(18));
    EXPECT_EQ(ycsbKey(0).compare(0, 4, "user"), 0);
    std::string v = ycsbValue(5, 3, 96);
    EXPECT_EQ(v.size(), 96u);
    EXPECT_EQ(v, ycsbValue(5, 3, 96));
    EXPECT_NE(v, ycsbValue(5, 4, 96));
    EXPECT_NE(v, ycsbValue(6, 3, 96));
}

// ---------------------------------------------------------------------
// KvStore functional surface
// ---------------------------------------------------------------------

class KvFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PmDeviceConfig dcfg;
        dcfg.size = size_t{1} << 28;
        dcfg.shadow = true;
        dev_ = std::make_unique<PmDevice>(dcfg);
        alloc_ = NvAlloc::openOrDie(*dev_, sweepConfig());
        ctx_ = alloc_->attachThread();
        ASSERT_NE(ctx_, nullptr);
        KvOptions ko;
        ko.buckets = 256;
        KvStatus why;
        store_ = KvStore::open(*alloc_, ko, &why);
        ASSERT_NE(store_, nullptr) << kvStatusName(why);
    }

    void
    TearDown() override
    {
        store_.reset();
        if (ctx_ && alloc_)
            alloc_->detachThread(ctx_);
        alloc_.reset();
    }

    std::unique_ptr<PmDevice> dev_;
    std::unique_ptr<NvAlloc> alloc_;
    ThreadCtx *ctx_ = nullptr;
    std::unique_ptr<KvStore> store_;
};

TEST_F(KvFixture, PutGetUpdateErase)
{
    EXPECT_EQ(store_->put(*ctx_, "alpha", "one"), KvStatus::Ok);
    EXPECT_EQ(store_->put(*ctx_, "beta", "two"), KvStatus::Ok);
    EXPECT_EQ(store_->count(), 2u);

    std::string v;
    EXPECT_EQ(store_->get("alpha", &v), KvStatus::Ok);
    EXPECT_EQ(v, "one");
    EXPECT_EQ(store_->get("gamma", &v), KvStatus::NotFound);

    // Replace: same key, new value, count unchanged.
    EXPECT_EQ(store_->put(*ctx_, "alpha", "ONE-REPLACED"),
              KvStatus::Ok);
    EXPECT_EQ(store_->count(), 2u);
    EXPECT_EQ(store_->get("alpha", &v), KvStatus::Ok);
    EXPECT_EQ(v, "ONE-REPLACED");

    EXPECT_EQ(store_->erase(*ctx_, "alpha"), KvStatus::Ok);
    EXPECT_EQ(store_->get("alpha", &v), KvStatus::NotFound);
    EXPECT_EQ(store_->erase(*ctx_, "alpha"), KvStatus::NotFound);
    EXPECT_EQ(store_->count(), 1u);
    EXPECT_EQ(store_->verify(), KvStatus::Ok);
}

TEST_F(KvFixture, LargeAndEmptyValues)
{
    std::string big(256 * 1024, 'x');
    for (size_t i = 0; i < big.size(); i += 7)
        big[i] = char('a' + i % 26);
    EXPECT_EQ(store_->put(*ctx_, "big", big), KvStatus::Ok);
    EXPECT_EQ(store_->put(*ctx_, "empty", ""), KvStatus::Ok);

    std::string v;
    ASSERT_EQ(store_->get("big", &v), KvStatus::Ok);
    EXPECT_EQ(v, big);
    ASSERT_EQ(store_->get("empty", &v), KvStatus::Ok);
    EXPECT_EQ(v, "");

    // Shrink a large record to a small one and back.
    EXPECT_EQ(store_->put(*ctx_, "big", "tiny"), KvStatus::Ok);
    ASSERT_EQ(store_->get("big", &v), KvStatus::Ok);
    EXPECT_EQ(v, "tiny");
    EXPECT_EQ(store_->verify(), KvStatus::Ok);
}

TEST_F(KvFixture, FormatLimitsRejected)
{
    std::string long_key(KvStore::kMaxKeyLen + 1, 'k');
    EXPECT_EQ(store_->put(*ctx_, long_key, "v"), KvStatus::TooLarge);
    EXPECT_EQ(store_->put(*ctx_, "", "v"), KvStatus::Invalid);
    // Reads refuse an over-limit key outright (it can never have been
    // stored), symmetric with the put-side rejection.
    std::string v;
    EXPECT_EQ(store_->get(long_key, &v), KvStatus::TooLarge);
}

TEST_F(KvFixture, RmwUpsertsAndMutates)
{
    auto append_x = [](std::string_view old) {
        return std::string(old) + "x";
    };
    EXPECT_EQ(store_->rmw(*ctx_, "ctr", append_x), KvStatus::Ok);
    EXPECT_EQ(store_->rmw(*ctx_, "ctr", append_x), KvStatus::Ok);
    EXPECT_EQ(store_->rmw(*ctx_, "ctr", append_x), KvStatus::Ok);
    std::string v;
    ASSERT_EQ(store_->get("ctr", &v), KvStatus::Ok);
    EXPECT_EQ(v, "xxx");
}

TEST_F(KvFixture, ScanCollectsRecords)
{
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(store_->put(*ctx_, ycsbKey(i), ycsbValue(i, 0, 32)),
                  KvStatus::Ok);
    std::vector<std::pair<std::string, std::string>> out;
    EXPECT_EQ(store_->scan(ycsbKey(0), 10, &out), KvStatus::Ok);
    EXPECT_EQ(out.size(), 10u);
    for (auto &kv : out) {
        std::string v;
        EXPECT_EQ(store_->get(kv.first, &v), KvStatus::Ok);
        EXPECT_EQ(v, kv.second);
    }
    // A scan asking for more than exists returns everything.
    out.clear();
    EXPECT_EQ(store_->scan(ycsbKey(1), 1000, &out), KvStatus::Ok);
    EXPECT_EQ(out.size(), 64u);
}

TEST_F(KvFixture, ReopenRebuildsTheVolatileIndex)
{
    constexpr int kN = 200;
    for (int i = 0; i < kN; ++i) {
        uint32_t len = (i % 13 == 0) ? 20000 : 48 + i % 200;
        ASSERT_EQ(store_->put(*ctx_, ycsbKey(i), ycsbValue(i, 0, len)),
                  KvStatus::Ok);
    }
    ASSERT_EQ(store_->erase(*ctx_, ycsbKey(3)), KvStatus::Ok);
    store_.reset();

    KvStatus why;
    store_ = KvStore::open(*alloc_, KvOptions{}, &why);
    ASSERT_NE(store_, nullptr) << kvStatusName(why);
    EXPECT_EQ(store_->count(), uint64_t(kN - 1));
    EXPECT_EQ(store_->stats().rebuilds.load(), 1u);
    EXPECT_EQ(store_->stats().rebuilt_records.load(),
              uint64_t(kN - 1));
    std::string v;
    for (int i = 0; i < kN; ++i) {
        uint32_t len = (i % 13 == 0) ? 20000 : 48 + i % 200;
        if (i == 3) {
            EXPECT_EQ(store_->get(ycsbKey(i), &v), KvStatus::NotFound);
        } else {
            ASSERT_EQ(store_->get(ycsbKey(i), &v), KvStatus::Ok) << i;
            EXPECT_EQ(v, ycsbValue(i, 0, len)) << i;
        }
    }
}

TEST_F(KvFixture, CorruptRecordContainedNotFatal)
{
    ASSERT_EQ(store_->put(*ctx_, "victim", "payload-payload-payload"),
              KvStatus::Ok);
    ASSERT_EQ(store_->put(*ctx_, "bystander", "fine"), KvStatus::Ok);
    uint64_t roff = store_->recordOffset("victim");
    ASSERT_NE(roff, 0u);

    auto *p = static_cast<unsigned char *>(
        dev_->at(roff + KvStore::kRecordHeader + 6 /* klen */ + 4));
    unsigned char saved = *p;
    *p ^= 0xff;

    std::string v;
    EXPECT_EQ(store_->get("victim", &v), KvStatus::Corrupt);
    EXPECT_GE(store_->stats().corrupt_records.load(), 1u);
    EXPECT_EQ(store_->get("bystander", &v), KvStatus::Ok);
    EXPECT_EQ(store_->verify(), KvStatus::Corrupt);
    // The KV layer contains payload damage record-granularly; the
    // heap's health machine is not involved.
    EXPECT_EQ(alloc_->health(), HeapHealth::Serving);

    *p = saved;
    EXPECT_EQ(store_->get("victim", &v), KvStatus::Ok);
    EXPECT_EQ(store_->verify(), KvStatus::Ok);
}

TEST_F(KvFixture, StatsCtlSubtreeFollowsTraffic)
{
    ASSERT_EQ(store_->put(*ctx_, "a", "1"), KvStatus::Ok);
    ASSERT_EQ(store_->put(*ctx_, "b", "2"), KvStatus::Ok);
    ASSERT_EQ(store_->put(*ctx_, "a", "3"), KvStatus::Ok);
    std::string v;
    ASSERT_EQ(store_->get("a", &v), KvStatus::Ok);
    ASSERT_EQ(store_->get("nope", &v), KvStatus::NotFound);
    ASSERT_EQ(store_->erase(*ctx_, "b"), KvStatus::Ok);

    EXPECT_EQ(ctlValue(*alloc_, "stats.kv.inserts"), 2u);
    EXPECT_EQ(ctlValue(*alloc_, "stats.kv.updates"), 1u);
    EXPECT_EQ(ctlValue(*alloc_, "stats.kv.erases"), 1u);
    EXPECT_EQ(ctlValue(*alloc_, "stats.kv.gets"), 2u);
    EXPECT_EQ(ctlValue(*alloc_, "stats.kv.hits"), 1u);
    EXPECT_EQ(ctlValue(*alloc_, "stats.kv.misses"), 1u);
    EXPECT_EQ(ctlValue(*alloc_, "stats.kv.records"), 1u);
    EXPECT_EQ(ctlValue(*alloc_, "stats.kv.buckets"), 256u);

    // Detach on destruction: the subtree stays readable, all zero.
    store_.reset();
    EXPECT_EQ(ctlValue(*alloc_, "stats.kv.inserts"), 0u);
    EXPECT_EQ(ctlValue(*alloc_, "stats.kv.records"), 0u);
}

TEST(KvOpen, GcVariantAndOccupiedRootRefused)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 27;
    {
        PmDevice dev(dcfg);
        NvAllocConfig cfg;
        cfg.consistency = Consistency::Gc;
        auto alloc_h = NvAlloc::openOrDie(dev, cfg);
        NvAlloc &alloc = *alloc_h;
        KvStatus why;
        EXPECT_EQ(KvStore::open(alloc, KvOptions{}, &why), nullptr);
        EXPECT_EQ(why, KvStatus::Invalid);
    }
    {
        PmDevice dev(dcfg);
        auto alloc_h = NvAlloc::openOrDie(dev);
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        ASSERT_NE(ctx, nullptr);
        // Root word 0 already anchors something that is not a super.
        // From the store's side that is indistinguishable from a
        // corrupted super block, so the refusal reports Corrupt.
        uint64_t off = alloc.allocOffset(*ctx, 512, alloc.rootWord(0));
        ASSERT_NE(off, 0u);
        KvStatus why;
        EXPECT_EQ(KvStore::open(alloc, KvOptions{}, &why), nullptr);
        EXPECT_EQ(why, KvStatus::Corrupt);
        alloc.detachThread(ctx);
    }
}

// ---------------------------------------------------------------------
// Hardening integration: erase routes through the delayed-reuse
// quarantine, and reading after erase never trips the UAF detector
// (readers hold the stripe lock, so they can't reach a freed record).
// ---------------------------------------------------------------------

TEST(KvHardening, EraseRoutesThroughQuarantineWithoutUaf)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 27;
    PmDevice dev(dcfg);
    NvAllocConfig cfg;
    cfg.redzone_canaries = true;
    cfg.quarantine_depth = 16;
    // Morphing-eligible (low-occupancy) slabs bypass the quarantine in
    // favour of the morph pipeline — same rule as the plain free path.
    // A handful of records never fills a slab past the threshold, so
    // pin morphing off to observe the quarantine routing itself.
    cfg.slab_morphing = false;
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();
    ASSERT_NE(ctx, nullptr);
    KvOptions ko;
    ko.buckets = 64;
    auto store = KvStore::open(alloc, ko);
    ASSERT_NE(store, nullptr);

    uint64_t pushes0 =
        alloc.hardening().stats().quarantine_pushes.load();
    for (int i = 0; i < 8; ++i)
        ASSERT_EQ(store->put(*ctx, ycsbKey(i), ycsbValue(i, 0, 64)),
                  KvStatus::Ok);
    for (int i = 0; i < 8; ++i)
        ASSERT_EQ(store->erase(*ctx, ycsbKey(i)), KvStatus::Ok);
    EXPECT_GE(alloc.hardening().stats().quarantine_pushes.load(),
              pushes0 + 8);

    // Erase-then-read: the freed (possibly poison-filled) records
    // must be unreachable, not misread.
    std::string v;
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(store->get(ycsbKey(i), &v), KvStatus::NotFound);
    alloc.hardening().drainQuarantine();
    EXPECT_EQ(alloc.hardening().stats().quarantine_uaf.load(), 0u);
    EXPECT_EQ(alloc.health(), HeapHealth::Serving);
    store.reset();
    alloc.detachThread(ctx);
}

// ---------------------------------------------------------------------
// Error contracts: degraded tenants and capacity quotas
// ---------------------------------------------------------------------

TEST(KvContracts, DegradedHeapRefusesOps)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 27;
    PmDevice dev(dcfg);
    NvAllocConfig cfg;
    cfg.fault_containment = true;
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();
    ASSERT_NE(ctx, nullptr);
    auto store = KvStore::open(alloc, KvOptions{});
    ASSERT_NE(store, nullptr);
    ASSERT_EQ(store->put(*ctx, "k", "v"), KvStatus::Ok);

    alloc.escalateHealth(HeapHealth::Degraded, "test injection");
    std::string v;
    EXPECT_EQ(store->put(*ctx, "k2", "v"), KvStatus::HeapUnhealthy);
    EXPECT_EQ(store->get("k", &v), KvStatus::HeapUnhealthy);
    EXPECT_EQ(store->erase(*ctx, "k"), KvStatus::HeapUnhealthy);
    EXPECT_GE(store->stats().rejected_unhealthy.load(), 3u);
    store.reset();
    alloc.detachThread(ctx);
}

TEST(KvContracts, QuotaExceededIsNotAnAbort)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 27;
    PmDevice dev(dcfg);
    NvAllocConfig cfg;
    cfg.fault_containment = true;
    cfg.capacity_quota_bytes = uint64_t{1} << 18; // 256 KB
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();
    ASSERT_NE(ctx, nullptr);
    KvOptions ko;
    ko.buckets = 64;
    auto store = KvStore::open(alloc, ko);
    ASSERT_NE(store, nullptr);

    // Seed one small record first: it activates the small-class slab
    // while the quota still has headroom. (A slab is itself an extent,
    // so a *first* small put after exhaustion would be quota-charged.)
    ASSERT_EQ(store->put(*ctx, "warm", "x"), KvStatus::Ok);

    // 16 KB values ride the extent path, where the quota is enforced.
    std::string big(16 * 1024, 'q');
    KvStatus st = KvStatus::Ok;
    int landed = 0;
    for (int i = 0; i < 64 && st == KvStatus::Ok; ++i) {
        st = store->put(*ctx, ycsbKey(i), big);
        if (st == KvStatus::Ok)
            ++landed;
    }
    ASSERT_EQ(st, KvStatus::QuotaExceeded)
        << "quota never tripped after " << landed << " inserts";
    EXPECT_GE(store->stats().rejected_quota.load(), 1u);

    // Not an abort: the heap stays Serving, existing data stays
    // readable, and small traffic keeps working.
    EXPECT_EQ(alloc.health(), HeapHealth::Serving);
    std::string v;
    ASSERT_GE(landed, 1);
    EXPECT_EQ(store->get(ycsbKey(0), &v), KvStatus::Ok);
    EXPECT_EQ(v, big);
    EXPECT_EQ(store->put(*ctx, "small", "fits"), KvStatus::Ok);
    EXPECT_EQ(store->get("small", &v), KvStatus::Ok);
    EXPECT_EQ(store->verify(), KvStatus::Ok);
    store.reset();
    alloc.detachThread(ctx);
}

TEST(KvCApi, RoundTripAndErrnoContracts)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 27;
    PmDevice dev(dcfg);

    NvKv *kv = nullptr;
    ASSERT_EQ(nvalloc_kv_open(&dev, "tenant-a", nullptr, 128, &kv),
              NVALLOC_OK);
    ASSERT_NE(kv, nullptr);

    EXPECT_EQ(nvalloc_kv_put(kv, "key", 3, "value", 5), NVALLOC_OK);
    char buf[16];
    size_t len = 0;
    EXPECT_EQ(nvalloc_kv_get(kv, "key", 3, buf, sizeof buf, &len),
              NVALLOC_OK);
    ASSERT_EQ(len, 5u);
    EXPECT_EQ(std::memcmp(buf, "value", 5), 0);
    // Size probe with a null buffer.
    len = 0;
    EXPECT_EQ(nvalloc_kv_get(kv, "key", 3, nullptr, 0, &len),
              NVALLOC_OK);
    EXPECT_EQ(len, 5u);
    EXPECT_EQ(nvalloc_kv_get(kv, "nope", 4, buf, sizeof buf, &len),
              NVALLOC_ENOENT);
    EXPECT_EQ(nvalloc_kv_count(kv), 1u);
    EXPECT_EQ(nvalloc_kv_erase(kv, "key", 3), NVALLOC_OK);
    EXPECT_EQ(nvalloc_kv_erase(kv, "key", 3), NVALLOC_ENOENT);

    // Degraded tenant: ops return EINVAL per the documented contract
    // (HeapUnhealthy is a caller error, not new corruption).
    NvInstance *inst = nvalloc_kv_instance(kv);
    ASSERT_NE(inst, nullptr);
    nvalloc_impl(inst)->escalateHealth(HeapHealth::Degraded,
                                       "test injection");
    EXPECT_EQ(nvalloc_kv_put(kv, "k2", 2, "v", 1), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_kv_get(kv, "k2", 2, buf, sizeof buf, &len),
              NVALLOC_EINVAL);
    nvalloc_kv_close(kv);
}

TEST(KvCApi, QuotaBoundTenantReportsEnomem)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 27;
    PmDevice dev(dcfg);
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    opts.capacity_quota_bytes = uint64_t{1} << 18;

    NvKv *kv = nullptr;
    ASSERT_EQ(nvalloc_kv_open(&dev, "tenant-q", &opts, 64, &kv),
              NVALLOC_OK);
    // Activate the small-class slab before exhausting the quota (a
    // first small put afterwards would need a quota-charged extent).
    EXPECT_EQ(nvalloc_kv_put(kv, "warm", 4, "x", 1), NVALLOC_OK);
    std::string big(16 * 1024, 'q');
    int rc = NVALLOC_OK;
    for (int i = 0; i < 64 && rc == NVALLOC_OK; ++i) {
        std::string key = ycsbKey(i);
        rc = nvalloc_kv_put(kv, key.data(), key.size(), big.data(),
                            big.size());
    }
    EXPECT_EQ(rc, NVALLOC_ENOMEM);
    // Quota rejection is not an abort: small traffic keeps working.
    EXPECT_EQ(nvalloc_kv_put(kv, "small", 5, "v", 1), NVALLOC_OK);
    nvalloc_kv_close(kv);
}

// ---------------------------------------------------------------------
// YCSB driver: functional pass over every mix, and t=1 determinism
// ---------------------------------------------------------------------

YcsbSpec
smallSpec(YcsbWorkload w, unsigned threads)
{
    YcsbSpec spec;
    spec.workload = w;
    spec.record_count = 2000;
    spec.op_count = 2000;
    spec.threads = threads;
    spec.large_value_every = 128;
    spec.large_value_size = 4096;
    spec.seed = 42;
    return spec;
}

TEST(Ycsb, EveryWorkloadRunsCleanly)
{
    for (int wi = 0; wi < 6; ++wi) {
        YcsbWorkload w = YcsbWorkload(wi);
        SCOPED_TRACE(ycsbWorkloadName(w));
        PmDeviceConfig dcfg;
        dcfg.size = size_t{1} << 29;
        PmDevice dev(dcfg);
        auto alloc_h = NvAlloc::openOrDie(dev, sweepConfig());
        NvAlloc &alloc = *alloc_h;
        KvOptions ko;
        ko.buckets = 2048;
        auto store = KvStore::open(alloc, ko);
        ASSERT_NE(store, nullptr);

        YcsbSpec spec = smallSpec(w, 2);
        VtimeEpoch epoch;
        YcsbResult load = ycsbLoad(*store, spec, epoch);
        EXPECT_EQ(load.errors, 0u);
        EXPECT_EQ(load.inserts, spec.record_count);
        EXPECT_EQ(store->count(), spec.record_count);

        std::atomic<uint64_t> inserted{spec.record_count};
        YcsbResult run = ycsbRun(*store, spec, epoch, inserted);
        EXPECT_EQ(run.errors, 0u);
        uint64_t total = run.reads + run.updates + run.inserts +
                         run.scans + run.rmws;
        EXPECT_EQ(total, spec.op_count);
        switch (w) {
        case YcsbWorkload::C:
            EXPECT_EQ(run.reads, spec.op_count);
            break;
        case YcsbWorkload::E:
            EXPECT_GT(run.scans, spec.op_count / 2);
            EXPECT_GT(run.inserts, 0u);
            break;
        case YcsbWorkload::F:
            EXPECT_GT(run.rmws, spec.op_count / 3);
            break;
        default:
            EXPECT_GT(run.reads, 0u);
            break;
        }
        EXPECT_EQ(store->verify(), KvStatus::Ok);
    }
}

TEST(Ycsb, SingleThreadRunIsDeterministic)
{
    auto counters = [](uint64_t seed) {
        PmDeviceConfig dcfg;
        dcfg.size = size_t{1} << 29;
        PmDevice dev(dcfg);
        auto alloc_h = NvAlloc::openOrDie(dev);
        NvAlloc &alloc = *alloc_h;
        KvOptions ko;
        ko.buckets = 2048;
        auto store = KvStore::open(alloc, ko);
        YcsbSpec spec = smallSpec(YcsbWorkload::A, 1);
        spec.seed = seed;
        VtimeEpoch epoch;
        ycsbLoad(*store, spec, epoch);
        std::atomic<uint64_t> inserted{spec.record_count};
        YcsbResult r = ycsbRun(*store, spec, epoch, inserted);
        return std::vector<uint64_t>{r.reads, r.updates, r.inserts,
                                     r.scans, r.rmws, r.not_found};
    };
    EXPECT_EQ(counters(7), counters(7));
    EXPECT_NE(counters(7), counters(8));
}

// ---------------------------------------------------------------------
// Crash-mid-workload, proof 1: an every-flush-point sweep over a
// deterministic KV op mix with an exact completed-op oracle.
// ---------------------------------------------------------------------

constexpr uint64_t kSweepRecords = 48;

uint32_t
sweepValueLen(uint64_t id, uint64_t version)
{
    // Every 7th id is a large (extent-path) record on even versions:
    // the crash points then cover slab, extent and mixed commits.
    if (id % 7 == 0 && version % 2 == 0)
        return 4096;
    return uint32_t(48 + (id * 31 + version * 17) % 160);
}

std::string
sweepValue(uint64_t id, uint64_t version)
{
    return ycsbValue(id, version, sweepValueLen(id, version));
}

struct SweepOp
{
    enum class Kind { Read, Update, Insert, Erase } kind;
    uint64_t id = 0;
    uint64_t version = 0; //!< version written (update/insert)
};

/**
 * One crash point: load kSweepRecords records, arm the crash at the
 * nth run-phase flush, execute a deterministic update/insert/erase/
 * read mix, stopping at the first op that observes the crash as
 * triggered. Every op completed strictly before the trigger is fully
 * persisted (all of its flushes landed) and must survive recovery
 * bit-exact; the one in-flight op must resolve all-or-nothing.
 *
 * Returns true if the armed crash triggered (more points remain).
 */
bool
runKvCrashPoint(unsigned nth)
{
    SCOPED_TRACE(::testing::Message() << "flush=" << nth);

    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 28;
    dcfg.shadow = true;
    PmDevice dev(dcfg);
    dev.enableFaultInjection(FaultPolicy{});

    // Durable oracle: id -> latest acked version. Maintained only for
    // ops that completed before the crash triggered.
    std::map<uint64_t, uint64_t> oracle;
    bool has_inflight = false;
    SweepOp inflight;
    uint64_t next_id = kSweepRecords;
    bool triggered = false;

    {
        auto alloc_h = NvAlloc::openOrDie(dev, sweepConfig());
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        if (ctx == nullptr) {
            ADD_FAILURE() << "attach failed during setup";
            return false;
        }
        KvOptions ko;
        ko.buckets = 64;
        KvStatus why;
        auto store = KvStore::open(alloc, ko, &why);
        if (store == nullptr) {
            ADD_FAILURE() << "kv open failed: " << kvStatusName(why);
            return false;
        }
        for (uint64_t id = 0; id < kSweepRecords; ++id) {
            if (store->put(*ctx, ycsbKey(id), sweepValue(id, 0)) !=
                KvStatus::Ok) {
                ADD_FAILURE() << "load failed at id " << id;
                return false;
            }
            oracle[id] = 0;
        }

        // Arm after the load: nth indexes into the run mix only.
        dev.armCrashAtFlush(nth);

        // The op stream is a pure function of the fixed seed and the
        // oracle state, so every sweep point replays the same ops.
        Rng rng(0x5eed + 20260809);
        std::map<uint64_t, uint64_t> versions = oracle; //!< volatile
        constexpr unsigned kOps = 40;
        for (unsigned i = 0; i < kOps; ++i) {
            unsigned r = unsigned(rng.nextBounded(100));
            SweepOp op;
            auto pick = [&]() -> uint64_t {
                // Deterministic pick from the (ordered) live set.
                auto it = versions.begin();
                std::advance(it, rng.nextBounded(versions.size()));
                return it->first;
            };
            if (versions.empty() || r < 40) {
                if (versions.empty()) {
                    op = {SweepOp::Kind::Insert, next_id, 0};
                } else {
                    uint64_t id = pick();
                    op = {SweepOp::Kind::Update, id,
                          versions[id] + 1};
                }
            } else if (r < 60) {
                op = {SweepOp::Kind::Insert, next_id, 0};
            } else if (r < 75) {
                op = {SweepOp::Kind::Erase, pick(), 0};
            } else {
                op = {SweepOp::Kind::Read, pick(), 0};
            }

            KvStatus st = KvStatus::Ok;
            std::string v;
            switch (op.kind) {
            case SweepOp::Kind::Update:
            case SweepOp::Kind::Insert:
                st = store->put(*ctx, ycsbKey(op.id),
                                sweepValue(op.id, op.version));
                break;
            case SweepOp::Kind::Erase:
                st = store->erase(*ctx, ycsbKey(op.id));
                break;
            case SweepOp::Kind::Read:
                st = store->get(ycsbKey(op.id), &v);
                break;
            }
            EXPECT_EQ(st, KvStatus::Ok)
                << "op " << i << " kind " << int(op.kind) << " id "
                << op.id << ": " << kvStatusName(st);

            // Track volatile state for the pick()s...
            switch (op.kind) {
            case SweepOp::Kind::Update:
            case SweepOp::Kind::Insert:
                versions[op.id] = op.version;
                if (op.kind == SweepOp::Kind::Insert)
                    ++next_id;
                break;
            case SweepOp::Kind::Erase:
                versions.erase(op.id);
                break;
            case SweepOp::Kind::Read:
                break;
            }
            // ...and the durable oracle only for pre-crash acks.
            if (!dev.crashTriggered()) {
                if (op.kind == SweepOp::Kind::Erase)
                    oracle.erase(op.id);
                else if (op.kind != SweepOp::Kind::Read)
                    oracle[op.id] = op.version;
            } else {
                if (op.kind != SweepOp::Kind::Read) {
                    has_inflight = true;
                    inflight = op;
                }
                break; // stop at the crash: exactly one in-flight op
            }
        }
        triggered = dev.crashTriggered();
        store.reset();
        alloc.simulateCrash();
    }

    auto again_h = NvAlloc::openOrDie(dev, sweepConfig());
    NvAlloc &again = *again_h;
    EXPECT_TRUE(again.lastRecovery().performed);
    KvStatus why;
    auto store = KvStore::open(again, KvOptions{}, &why);
    if (store == nullptr) {
        ADD_FAILURE() << "reopen failed: " << kvStatusName(why);
        return triggered;
    }

    AuditReport audit = HeapAuditor(again).audit();
    EXPECT_EQ(audit.violations(), 0u) << audit.summary();
    EXPECT_EQ(store->verify(), KvStatus::Ok);

    // Every acked op survived bit-exact; the in-flight op resolved
    // all-or-nothing. Check the in-flight key first, then the rest.
    uint64_t expect_count = oracle.size();
    std::string v;
    if (has_inflight) {
        KvStatus st = store->get(ycsbKey(inflight.id), &v);
        auto old_it = oracle.find(inflight.id);
        bool old_present = old_it != oracle.end();
        std::string old_v =
            old_present ? sweepValue(inflight.id, old_it->second)
                        : std::string();
        std::string new_v = sweepValue(inflight.id, inflight.version);
        bool is_new = false;
        switch (inflight.kind) {
        case SweepOp::Kind::Insert:
            EXPECT_TRUE((st == KvStatus::NotFound) ||
                        (st == KvStatus::Ok && v == new_v))
                << "in-flight insert torn: " << kvStatusName(st);
            is_new = st == KvStatus::Ok;
            if (is_new)
                ++expect_count;
            break;
        case SweepOp::Kind::Update:
            EXPECT_EQ(st, KvStatus::Ok)
                << "in-flight update lost the key";
            if (st == KvStatus::Ok)
                EXPECT_TRUE(v == old_v || v == new_v)
                    << "in-flight update torn";
            break;
        case SweepOp::Kind::Erase:
            EXPECT_TRUE((st == KvStatus::NotFound) ||
                        (st == KvStatus::Ok && v == old_v))
                << "in-flight erase torn: " << kvStatusName(st);
            if (st == KvStatus::NotFound)
                --expect_count;
            break;
        case SweepOp::Kind::Read:
            break;
        }
    }
    for (const auto &[id, version] : oracle) {
        if (has_inflight && id == inflight.id)
            continue;
        KvStatus st = store->get(ycsbKey(id), &v);
        EXPECT_EQ(st, KvStatus::Ok) << "acked op lost: id " << id;
        if (st == KvStatus::Ok)
            EXPECT_EQ(v, sweepValue(id, version)) << "id " << id;
    }
    // Nothing invented: ids never durably inserted stay absent
    // (except a visible in-flight insert, handled above).
    for (uint64_t id = kSweepRecords; id < next_id + 2; ++id) {
        if (oracle.count(id))
            continue;
        if (has_inflight && id == inflight.id)
            continue;
        EXPECT_EQ(store->get(ycsbKey(id), &v), KvStatus::NotFound)
            << "unacked insert visible: id " << id;
    }
    EXPECT_EQ(store->count(), expect_count);

    // Usability probe: the recovered store serves fresh traffic.
    ThreadCtx *ctx = again.attachThread();
    if (ctx != nullptr) {
        EXPECT_EQ(store->put(*ctx, "probe", "alive"), KvStatus::Ok);
        EXPECT_EQ(store->get("probe", &v), KvStatus::Ok);
        EXPECT_EQ(v, "alive");
        again.detachThread(ctx);
    } else {
        ADD_FAILURE() << "recovered heap refused an attach";
    }
    return triggered;
}

TEST(KvCrashSweep, AllOrNothingAtEveryFlushPoint)
{
    constexpr unsigned kCap = 3000; // far above the mix's flush count
    unsigned nth = 1;
    for (; nth <= kCap; ++nth) {
        if (!runKvCrashPoint(nth))
            break;
        if (::testing::Test::HasFailure())
            return; // the SCOPED_TRACE already names the point
    }
    ASSERT_LE(nth, kCap) << "sweep never ran out of flush points";
    RecordProperty("crash_points", int(nth));
}

// ---------------------------------------------------------------------
// Crash-mid-workload, proof 2: seeded crash points inside a real
// multithreaded ycsbRun.
// ---------------------------------------------------------------------

/** Crash a 4-thread YCSB run at the nth run-phase flush; returns
 *  whether the crash triggered. */
bool
runYcsbCrashPoint(YcsbWorkload w, unsigned nth)
{
    SCOPED_TRACE(::testing::Message()
                 << ycsbWorkloadName(w) << " flush=" << nth);

    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 28;
    dcfg.shadow = true;
    PmDevice dev(dcfg);
    dev.enableFaultInjection(FaultPolicy{});

    YcsbSpec spec = smallSpec(w, 4);
    spec.record_count = 1500;
    spec.op_count = 1500;
    bool triggered = false;
    {
        auto alloc_h = NvAlloc::openOrDie(dev, sweepConfig());
        NvAlloc &alloc = *alloc_h;
        KvOptions ko;
        ko.buckets = 1024;
        auto store = KvStore::open(alloc, ko);
        if (store == nullptr) {
            ADD_FAILURE() << "kv open failed";
            return false;
        }
        VtimeEpoch epoch;
        YcsbResult load = ycsbLoad(*store, spec, epoch);
        if (load.errors != 0 || load.inserts != spec.record_count) {
            ADD_FAILURE() << "load failed";
            return false;
        }
        dev.armCrashAtFlush(nth);
        std::atomic<uint64_t> inserted{spec.record_count};
        ycsbRun(*store, spec, epoch, inserted);
        triggered = dev.crashTriggered();
        store.reset();
        alloc.simulateCrash();
    }

    auto again_h = NvAlloc::openOrDie(dev, sweepConfig());
    NvAlloc &again = *again_h;
    KvStatus why;
    auto store = KvStore::open(again, KvOptions{}, &why);
    if (store == nullptr) {
        ADD_FAILURE() << "reopen failed: " << kvStatusName(why);
        return triggered;
    }
    AuditReport audit = HeapAuditor(again).audit();
    EXPECT_EQ(audit.violations(), 0u) << audit.summary();
    EXPECT_EQ(store->verify(), KvStatus::Ok);

    // Neither A (update-only) nor D (insert-only) ever erases, so
    // every load-phase key is a committed insert that must survive.
    std::string v;
    uint64_t missing = 0;
    for (uint64_t id = 0; id < spec.record_count; ++id)
        if (store->get(ycsbKey(id), &v) != KvStatus::Ok)
            ++missing;
    EXPECT_EQ(missing, 0u) << "committed inserts lost";
    EXPECT_GE(store->count(), spec.record_count);
    return triggered;
}

class YcsbCrash : public ::testing::TestWithParam<int>
{
};

TEST_P(YcsbCrash, RecoversAtSeededPoints)
{
    YcsbWorkload w = YcsbWorkload(GetParam());
    // Geometric spread of crash points through the run phase; a point
    // beyond the workload's flush count ends the walk.
    for (unsigned nth = 1; nth <= 50'000; nth = nth * 3 + 2) {
        if (!runYcsbCrashPoint(w, nth))
            break;
        if (::testing::Test::HasFailure())
            return;
    }
}

INSTANTIATE_TEST_SUITE_P(UpdateAndInsertMixes, YcsbCrash,
                         ::testing::Values(int(YcsbWorkload::A),
                                           int(YcsbWorkload::D)),
                         [](const auto &info) {
                             return std::string(ycsbWorkloadName(
                                 YcsbWorkload(info.param)));
                         });

} // namespace
} // namespace nvalloc
