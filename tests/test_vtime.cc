/**
 * @file
 * Tests of the virtual-time machinery: per-thread clocks with kind
 * attribution, the windowed capacity server (VServer), and the
 * contention-modeling lock (VLock).
 */

#include <gtest/gtest.h>

#include <thread>

#include "nvalloc/vlock.h"
#include "pm/vclock.h"

namespace nvalloc {
namespace {

TEST(VClock, AdvanceAndAttribution)
{
    VClock::reset();
    EXPECT_EQ(VClock::now(), 0u);
    VClock::advance(100, TimeKind::FlushMeta);
    VClock::advance(50, TimeKind::Search);
    EXPECT_EQ(VClock::now(), 150u);
    EXPECT_EQ(VClock::kindTotal(TimeKind::FlushMeta), 100u);
    EXPECT_EQ(VClock::kindTotal(TimeKind::Search), 50u);

    VClock::advanceTo(120, TimeKind::Other); // in the past: no-op
    EXPECT_EQ(VClock::now(), 150u);
    VClock::advanceTo(200, TimeKind::Other);
    EXPECT_EQ(VClock::now(), 200u);
    EXPECT_EQ(VClock::kindTotal(TimeKind::Other), 50u);
}

TEST(VClock, SetNowDoesNotAttribute)
{
    VClock::reset();
    VClock::setNow(5000);
    EXPECT_EQ(VClock::now(), 5000u);
    auto snap = VClock::snapshot();
    for (auto v : snap)
        EXPECT_EQ(v, 0u);
}

TEST(VClock, PerThreadIsolation)
{
    VClock::reset();
    VClock::advance(1000, TimeKind::Other);
    std::thread([&] {
        VClock::reset();
        EXPECT_EQ(VClock::now(), 0u);
        VClock::advance(7, TimeKind::Other);
        EXPECT_EQ(VClock::now(), 7u);
    }).join();
    EXPECT_EQ(VClock::now(), 1000u);
}

TEST(VServer, NoWaitBelowCapacity)
{
    VServer server(1);
    // Sparse requests: each starts exactly at its arrival.
    for (uint64_t t = 0; t < 10; ++t)
        EXPECT_EQ(server.reserve(t * 10000, 100), t * 10000);
}

TEST(VServer, SerializesSameArrival)
{
    VServer server(1);
    // Ten holds all arriving at t=0 must queue one after another.
    uint64_t last_start = 0;
    for (int i = 0; i < 10; ++i) {
        uint64_t start = server.reserve(0, 1000);
        EXPECT_GE(start, last_start);
        last_start = start;
    }
    // The tenth hold cannot start before 9 holds' worth of busy time.
    EXPECT_GE(last_start, 9000u);
}

TEST(VServer, BackfillsPastIdleWindows)
{
    VServer server(1, 1000); // 1 us windows
    // A thread far in the virtual future books a hold...
    EXPECT_EQ(server.reserve(50'000, 500), 50'000u);
    // ...but a request from the virtual past is served in the idle
    // capacity back then — no fake queueing behind the future hold.
    EXPECT_LE(server.reserve(100, 200), 1000u);
}

TEST(VServer, ParallelUnitsMultiplyCapacity)
{
    VServer one(1, 1000), four(4, 1000);
    uint64_t last_one = 0, last_four = 0;
    for (int i = 0; i < 16; ++i) {
        last_one = one.reserve(0, 500);
        last_four = four.reserve(0, 500);
    }
    // 16 holds of 500ns: 1 unit needs ~8 windows, 4 units ~2 windows.
    EXPECT_GT(last_one, 3 * last_four);
}

TEST(VServer, ZeroHoldIsFree)
{
    VServer server(1);
    EXPECT_EQ(server.reserve(123, 0), 123u);
}

TEST(VServer, ResetClearsHistory)
{
    VServer server(1);
    server.reserve(0, 1'000'000);
    server.reset();
    EXPECT_EQ(server.reserve(0, 100), 0u);
}

TEST(VLock, UncontendedLockAddsNoTime)
{
    VClock::reset();
    VLock lock;
    for (int i = 0; i < 100; ++i) {
        lock.lock();
        VClock::advance(50, TimeKind::Other);
        lock.unlock();
    }
    EXPECT_EQ(VClock::kindTotal(TimeKind::LockWait), 0u);
    EXPECT_EQ(VClock::now(), 5000u);
}

TEST(VLock, ContendedHoldsSerializeInVirtualTime)
{
    // Two threads, same virtual start, each holding the lock for 1000
    // virtual ns x 200 times: combined they must span >= ~400 us of
    // virtual time on at least one clock.
    VLock lock;
    uint64_t end[2] = {0, 0};
    std::thread t1([&] {
        VClock::reset();
        for (int i = 0; i < 200; ++i) {
            lock.lock();
            VClock::advance(1000, TimeKind::Other);
            lock.unlock();
        }
        end[0] = VClock::now();
    });
    std::thread t2([&] {
        VClock::reset();
        for (int i = 0; i < 200; ++i) {
            lock.lock();
            VClock::advance(1000, TimeKind::Other);
            lock.unlock();
        }
        end[1] = VClock::now();
    });
    t1.join();
    t2.join();
    // 400 holds x 1000 ns through one lock: the later finisher must
    // reflect near-full serialization (windows add slack).
    EXPECT_GE(std::max(end[0], end[1]), 330'000u);
}

TEST(VLock, HoldWithNoVirtualWorkIsFree)
{
    VClock::reset();
    VLock lock;
    lock.lock();
    lock.unlock(); // zero-duration hold books nothing
    EXPECT_EQ(VClock::now(), 0u);
}

} // namespace
} // namespace nvalloc
