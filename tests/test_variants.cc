/**
 * @file
 * Tests of the consistency variants beyond NVAlloc-LOG: the
 * internal-collection variant (NVAlloc-IC, the paper's §4.1 future
 * work) with its object-enumeration guarantee, and the dynamic
 * stripe-count policy (§6.5 future work).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "nvalloc/nvalloc.h"
#include "test_util.h"

namespace nvalloc {
namespace {

NvAllocConfig
icConfig()
{
    NvAllocConfig cfg;
    cfg.consistency = Consistency::InternalCollection;
    return cfg;
}

TEST(InternalCollection, EnumeratesExactlyTheLiveObjects)
{
    PmDevice dev;
    auto alloc_h = NvAlloc::openOrDie(dev, icConfig());
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();

    std::set<uint64_t> expect;
    for (int i = 0; i < 300; ++i)
        expect.insert(alloc.allocOffset(*ctx, 48 + (i % 100), nullptr));
    expect.insert(alloc.allocOffset(*ctx, 128 * 1024, nullptr));

    // Free a third.
    unsigned k = 0;
    for (auto it = expect.begin(); it != expect.end();) {
        if (k++ % 3 == 0) {
            alloc.freeOffset(*ctx, *it, nullptr);
            it = expect.erase(it);
        } else {
            ++it;
        }
    }

    std::set<uint64_t> seen;
    alloc.forEachAllocated([&](uint64_t off, size_t size, bool) {
        EXPECT_GT(size, 0u);
        EXPECT_TRUE(seen.insert(off).second) << "duplicate " << off;
    });
    EXPECT_EQ(seen, expect);
    alloc.detachThread(ctx);
}

TEST(InternalCollection, NoWalFlushesOnSmallPath)
{
    PmDevice dev;
    auto alloc_h = NvAlloc::openOrDie(dev, icConfig());
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();
    // Warm the tcache so the measured ops are pure hot path.
    uint64_t warm = alloc.allocOffset(*ctx, 64, nullptr);
    alloc.freeOffset(*ctx, warm, nullptr);

    dev.model().reset();
    uint64_t off = alloc.allocOffset(*ctx, 64, nullptr);
    auto c = dev.flushCounts();
    // Exactly the bitmap persist (plus its fence): no WAL entry.
    EXPECT_EQ(c.total, 1u) << "IC small alloc flushes only its bit";
    alloc.freeOffset(*ctx, off, nullptr);
    alloc.detachThread(ctx);
}

TEST(InternalCollection, NothingIsLostAfterCrashWithoutAttachWords)
{
    PmDeviceConfig dcfg;
    dcfg.shadow = true;
    PmDevice dev(dcfg);
    std::set<uint64_t> committed;
    {
        auto alloc_h = NvAlloc::openOrDie(dev, icConfig());
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        // No attach words at all: under LOG this would leak and be
        // rolled back; under IC the objects stay enumerable.
        for (int i = 0; i < 200; ++i)
            committed.insert(alloc.allocOffset(*ctx, 64, nullptr));
        alloc.simulateCrash();
    }

    auto again_h = NvAlloc::openOrDie(dev, icConfig());
    NvAlloc &again = *again_h;
    EXPECT_TRUE(again.lastRecovery().after_failure);
    std::set<uint64_t> seen;
    again.forEachAllocated(
        [&](uint64_t off, size_t, bool) { seen.insert(off); });
    for (uint64_t off : committed)
        EXPECT_TRUE(seen.count(off)) << off << " lost";

    // And they are all freeable through the enumeration.
    ThreadCtx *ctx = again.attachThread();
    for (uint64_t off : committed)
        again.freeOffset(*ctx, off, nullptr);
    EXPECT_EQ(liveSmallBlocks(again), 0u);
    again.detachThread(ctx);
}

TEST(InternalCollection, EnumerationIncludesMorphOldBlocks)
{
    PmDevice dev;
    NvAllocConfig cfg = icConfig();
    cfg.num_arenas = 1;
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();

    // Sparse 64 B population, then 1 KB demand to force morphing.
    std::vector<uint64_t> offs;
    for (int i = 0; i < 6000; ++i)
        offs.push_back(alloc.allocOffset(*ctx, 64, nullptr));
    std::set<uint64_t> survivors;
    for (size_t i = 0; i < offs.size(); ++i) {
        if (i % 40 == 0)
            survivors.insert(offs[i]);
        else
            alloc.freeOffset(*ctx, offs[i], nullptr);
    }
    uint64_t morphs = 0;
    std::vector<uint64_t> big;
    while (morphs == 0 && big.size() < 4000) {
        big.push_back(alloc.allocOffset(*ctx, 1024, nullptr));
        morphs = alloc.arena(0).stats().morphs;
    }
    ASSERT_GT(morphs, 0u);

    std::set<uint64_t> seen;
    alloc.forEachAllocated(
        [&](uint64_t off, size_t, bool) { seen.insert(off); });
    for (uint64_t off : survivors)
        EXPECT_TRUE(seen.count(off))
            << "old-geometry block " << off << " missing";
    for (uint64_t off : big)
        EXPECT_TRUE(seen.count(off));
    alloc.detachThread(ctx);
}

TEST(DynamicStripes, PolicyMonotoneAndAboveReflushWindow)
{
    unsigned prev = 64;
    for (unsigned threads : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        unsigned s = Arena::dynamicStripes(threads);
        EXPECT_LE(s, prev) << "more threads, fewer stripes";
        EXPECT_GE(s, 5u) << "never within the reflush window";
        prev = s;
    }
    EXPECT_EQ(Arena::dynamicStripes(1), 6u);
    EXPECT_EQ(Arena::dynamicStripes(64), 5u);
}

TEST(DynamicStripes, NewSlabsFollowConcurrency)
{
    PmDevice dev;
    NvAllocConfig cfg;
    cfg.dynamic_stripes = true;
    cfg.num_arenas = 1;
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;

    // One attached thread: slabs use 6 stripes.
    ThreadCtx *ctx = alloc.attachThread();
    uint64_t off = alloc.allocOffset(*ctx, 64, nullptr);
    VSlab *slab = static_cast<VSlab *>(alloc.slabRadix().get(off));
    EXPECT_EQ(slab->header()->stripes, 6u);

    // Attach many more, demand a different class: the new slab's
    // persistent header records the reduced stripe count.
    std::vector<ThreadCtx *> more;
    for (int i = 0; i < 30; ++i)
        more.push_back(alloc.attachThread());
    uint64_t off2 = alloc.allocOffset(*ctx, 4096, nullptr);
    VSlab *slab2 = static_cast<VSlab *>(alloc.slabRadix().get(off2));
    EXPECT_EQ(slab2->header()->stripes, 5u);

    // Mixed-stripe heaps recover: both geometries are per-slab.
    EXPECT_NE(slab->header()->stripes, slab2->header()->stripes);
    alloc.freeOffset(*ctx, off, nullptr);
    alloc.freeOffset(*ctx, off2, nullptr);
    for (ThreadCtx *c : more)
        alloc.detachThread(c);
    alloc.detachThread(ctx);
}

} // namespace
} // namespace nvalloc
