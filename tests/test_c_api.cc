/**
 * @file
 * Tests of the paper-style C API veneer (nvalloc_init /
 * nvalloc_malloc_to / nvalloc_free_from / nvalloc_exit), including
 * implicit per-thread contexts.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "nvalloc/auditor.h"
#include "nvalloc/nvalloc.h"
#include "nvalloc/nvalloc_c.h"

namespace nvalloc {
namespace {

TEST(CApi, InitMallocFreeExit)
{
    PmDevice dev;
    NvInstance *inst = nvalloc_init(&dev);
    uint64_t *root = nvalloc_root(inst, 0);

    void *p = nvalloc_malloc_to(inst, 128, root);
    ASSERT_NE(p, nullptr);
    EXPECT_NE(*root, 0u);
    std::memset(p, 0x3c, 128);

    nvalloc_free_from(inst, root);
    EXPECT_EQ(*root, 0u);
    nvalloc_exit(inst);
}

TEST(CApi, GcVariantOption)
{
    PmDevice dev;
    NvAllocOptions opts;
    opts.gc_variant = true;
    NvInstance *inst = nvalloc_init(&dev, &opts);
    EXPECT_EQ(nvalloc_impl(inst)->config().consistency,
              Consistency::Gc);
    nvalloc_exit(inst);
}

TEST(CApi, ImplicitThreadContexts)
{
    PmDevice dev;
    NvInstance *inst = nvalloc_init(&dev);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            std::vector<uint64_t> words(50, 0);
            for (auto &w : words)
                ASSERT_NE(nvalloc_malloc_to(inst, 64, &w), nullptr);
            for (auto &w : words)
                nvalloc_free_from(inst, &w);
        });
    }
    for (auto &th : threads)
        th.join();
    nvalloc_exit(inst);
}

TEST(CApi, OomSurfacesAsErrno)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{32} << 20; // tiny device
    PmDevice dev(dcfg);
    NvInstance *inst = nvalloc_init(&dev);

    std::vector<uint64_t> words(64, 0);
    unsigned got = 0;
    for (auto &w : words) {
        if (nvalloc_malloc_to(inst, 1 << 20, &w) == nullptr)
            break;
        ++got;
    }
    ASSERT_GT(got, 0u);
    ASSERT_LT(got, words.size()) << "device never exhausted";
    EXPECT_EQ(nvalloc_errno(inst), NVALLOC_ENOMEM);

    // Frees keep working; then allocation resumes.
    for (auto &w : words) {
        if (w) {
            EXPECT_EQ(nvalloc_free_from(inst, &w), NVALLOC_OK);
        }
    }
    uint64_t again = 0;
    EXPECT_NE(nvalloc_malloc_to(inst, 1 << 20, &again), nullptr);
    nvalloc_free_from(inst, &again);
    nvalloc_exit(inst);
}

TEST(CApi, UnserviceableSizeIsErrnoNotAbort)
{
    PmDevice dev;
    NvInstance *inst = nvalloc_init(&dev);
    uint64_t w = 0;
    EXPECT_EQ(nvalloc_malloc_to(inst, 0, &w), nullptr);
    EXPECT_EQ(nvalloc_errno(inst), NVALLOC_EINVAL);
    EXPECT_EQ(w, 0u);
    nvalloc_exit(inst);
}

TEST(CApi, AttachFailureIsEagainAndRetries)
{
    PmDevice dev;
    NvInstance *inst = nvalloc_init(&dev);

    // Fill every thread slot directly through the C++ core, so this
    // thread's implicit attach cannot get one.
    NvAlloc *core = nvalloc_impl(inst);
    std::vector<ThreadCtx *> hogs;
    for (unsigned i = 0; i < kMaxThreads; ++i) {
        ThreadCtx *ctx = core->attachThread();
        if (!ctx)
            break;
        hogs.push_back(ctx);
    }
    ASSERT_EQ(hogs.size(), kMaxThreads);

    uint64_t w = 0;
    EXPECT_EQ(nvalloc_malloc_to(inst, 64, &w), nullptr);
    EXPECT_EQ(nvalloc_errno(inst), NVALLOC_EAGAIN);
    EXPECT_EQ(nvalloc_free_from(inst, &w), NVALLOC_EAGAIN);

    // Once a slot frees up, the next implicit attach succeeds.
    core->detachThread(hogs.back());
    hogs.pop_back();
    EXPECT_NE(nvalloc_malloc_to(inst, 64, &w), nullptr);
    EXPECT_EQ(nvalloc_free_from(inst, &w), NVALLOC_OK);

    for (ThreadCtx *ctx : hogs)
        core->detachThread(ctx);
    nvalloc_exit(inst);
}

TEST(CApi, DoubleFreeAndForeignPointerAreEinvalHeapUnharmed)
{
    PmDevice dev;
    NvInstance *inst = nvalloc_init(&dev);
    uint64_t *root = nvalloc_root(inst, 0);

    ASSERT_NE(nvalloc_malloc_to(inst, 256, root), nullptr);
    uint64_t stale = *root;
    EXPECT_EQ(nvalloc_free_from(inst, root), NVALLOC_OK);

    // Double free through a stale copy of the word.
    EXPECT_EQ(nvalloc_free_from(inst, &stale), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_errno(inst), NVALLOC_EINVAL);

    // Null word and foreign (never-allocated) pointer.
    uint64_t zero = 0;
    EXPECT_EQ(nvalloc_free_from(inst, &zero), NVALLOC_EINVAL);
    uint64_t foreign = dev.size() - 8192;
    EXPECT_EQ(nvalloc_free_from(inst, &foreign), NVALLOC_EINVAL);

    // The rejected frees left no structural damage: the auditor is
    // the oracle.
    AuditReport rep = HeapAuditor(*nvalloc_impl(inst)).audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();

    // And the heap still allocates.
    EXPECT_NE(nvalloc_malloc_to(inst, 256, root), nullptr);
    EXPECT_EQ(nvalloc_free_from(inst, root), NVALLOC_OK);
    nvalloc_exit(inst);
}

// ---------------------------------------------------------------------
// The versioned nvalloc_open_ex surface.
// ---------------------------------------------------------------------

TEST(CApiOpenEx, EinvalContractLeavesOutUntouched)
{
    PmDevice dev;
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    NvInstance *sentinel = reinterpret_cast<NvInstance *>(0x1);
    NvInstance *out = sentinel;

    EXPECT_EQ(nvalloc_open_ex(nullptr, &opts, &out), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_open_ex(&dev, nullptr, &out), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_open_ex(&dev, &opts, nullptr), NVALLOC_EINVAL);

    opts.version = 0; // never a valid revision
    EXPECT_EQ(nvalloc_open_ex(&dev, &opts, &out), NVALLOC_EINVAL);
    opts.version = NVALLOC_OPTIONS_VERSION + 1; // from the future
    EXPECT_EQ(nvalloc_open_ex(&dev, &opts, &out), NVALLOC_EINVAL);

    nvalloc_options_init(&opts);
    opts.bit_stripes = 0; // fails NvAllocConfig::invalidReason
    EXPECT_EQ(nvalloc_open_ex(&dev, &opts, &out), NVALLOC_EINVAL);
    opts.bit_stripes = 6;
    opts.maintenance_mode = 42; // not an NvMaintenanceMode
    EXPECT_EQ(nvalloc_open_ex(&dev, &opts, &out), NVALLOC_EINVAL);
    opts.maintenance_mode = NVALLOC_MAINT_MANUAL;
    opts.maintenance_wake_fraction = 2.0;
    EXPECT_EQ(nvalloc_open_ex(&dev, &opts, &out), NVALLOC_EINVAL);

    EXPECT_EQ(out, sentinel) << "*out must be untouched on EINVAL";
}

TEST(CApiOpenEx, OkPathDrivesMaintenanceByAction)
{
    PmDevice dev;
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    opts.maintenance_mode = NVALLOC_MAINT_MANUAL;

    NvInstance *inst = nullptr;
    ASSERT_EQ(nvalloc_open_ex(&dev, &opts, &inst), NVALLOC_OK);
    ASSERT_NE(inst, nullptr);
    EXPECT_EQ(nvalloc_errno(inst), NVALLOC_OK);
    EXPECT_EQ(nvalloc_impl(inst)->config().maintenance_mode,
              MaintenanceMode::Manual);

    uint64_t *root = nvalloc_root(inst, 0);
    ASSERT_NE(nvalloc_malloc_to(inst, 128, root), nullptr);
    EXPECT_EQ(nvalloc_free_from(inst, root), NVALLOC_OK);

    EXPECT_EQ(nvalloc_maintenance(inst, "step"), NVALLOC_OK);
    uint64_t slices = 0;
    EXPECT_EQ(nvalloc_ctl(inst, "stats.maintenance.slices", &slices),
              NVALLOC_OK);
    EXPECT_EQ(slices, 1u);
    EXPECT_EQ(nvalloc_maintenance(inst, "pause"), NVALLOC_OK);
    EXPECT_EQ(nvalloc_maintenance(inst, "resume"), NVALLOC_OK);
    EXPECT_EQ(nvalloc_maintenance(inst, "wake"), NVALLOC_OK);
    EXPECT_EQ(nvalloc_maintenance(inst, "defragment"), NVALLOC_EINVAL);

    // The ctl alias runs the same dispatcher.
    uint64_t v = 0;
    EXPECT_EQ(nvalloc_ctl(inst, "maintenance.step", &v), NVALLOC_OK);
    EXPECT_EQ(nvalloc_ctl(inst, "stats.maintenance.slices", &v),
              NVALLOC_OK);
    EXPECT_EQ(v, 2u);

    nvalloc_exit(inst);
}

TEST(CApiOpenEx, BadHardeningPolicyIsEinval)
{
    PmDevice dev;
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    NvInstance *sentinel = reinterpret_cast<NvInstance *>(0x1);
    NvInstance *out = sentinel;

    opts.hardening_policy = 7; // not an NvHardeningPolicy
    EXPECT_EQ(nvalloc_open_ex(&dev, &opts, &out), NVALLOC_EINVAL);
    EXPECT_EQ(out, sentinel);

    opts.hardening_policy = NVALLOC_HARDEN_QUARANTINE;
    opts.quarantine_depth = 1u << 21; // fails invalidReason
    EXPECT_EQ(nvalloc_open_ex(&dev, &opts, &out), NVALLOC_EINVAL);
    EXPECT_EQ(out, sentinel);
}

TEST(CApiOpenEx, FastPathOptionsV4Contract)
{
    PmDevice dev;
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    NvInstance *sentinel = reinterpret_cast<NvInstance *>(0x1);
    NvInstance *out = sentinel;

    // v4 misuse: unknown mode and out-of-range knobs are EINVAL.
    opts.fastpath = 7; // not an NvFastPathMode
    EXPECT_EQ(nvalloc_open_ex(&dev, &opts, &out), NVALLOC_EINVAL);
    nvalloc_options_init(&opts);
    opts.fastpath_regions = 0;
    EXPECT_EQ(nvalloc_open_ex(&dev, &opts, &out), NVALLOC_EINVAL);
    opts.fastpath_regions = 9;
    EXPECT_EQ(nvalloc_open_ex(&dev, &opts, &out), NVALLOC_EINVAL);
    nvalloc_options_init(&opts);
    opts.fastpath_batch = 0;
    EXPECT_EQ(nvalloc_open_ex(&dev, &opts, &out), NVALLOC_EINVAL);
    opts.fastpath_batch = 513;
    EXPECT_EQ(nvalloc_open_ex(&dev, &opts, &out), NVALLOC_EINVAL);
    EXPECT_EQ(out, sentinel) << "*out must be untouched on EINVAL";

    // A v3 caller's struct carries garbage where v4 added fields;
    // those bytes must never be read — the library's defaults apply.
    nvalloc_options_init(&opts);
    opts.version = 3;
    opts.fastpath = 99;
    opts.fastpath_regions = 0;
    opts.fastpath_batch = 0;
    NvInstance *inst = nullptr;
    ASSERT_EQ(nvalloc_open_ex(&dev, &opts, &inst), NVALLOC_OK);
    EXPECT_EQ(nvalloc_impl(inst)->config().fastpath,
              FastPathMode::LockFree);
    EXPECT_EQ(nvalloc_impl(inst)->config().fastpath_regions, 2u);
    EXPECT_EQ(nvalloc_impl(inst)->config().fastpath_batch, 24u);
    nvalloc_exit(inst);

    // The v4 escape hatch maps through, and the fastpath ctl leaves
    // are reachable through the C veneer.
    PmDevice dev2;
    nvalloc_options_init(&opts);
    opts.fastpath = NVALLOC_FASTPATH_LOCKED;
    opts.fastpath_regions = 4;
    opts.fastpath_batch = 64;
    inst = nullptr;
    ASSERT_EQ(nvalloc_open_ex(&dev2, &opts, &inst), NVALLOC_OK);
    EXPECT_EQ(nvalloc_impl(inst)->config().fastpath,
              FastPathMode::Locked);
    EXPECT_EQ(nvalloc_impl(inst)->config().fastpath_regions, 4u);
    EXPECT_EQ(nvalloc_impl(inst)->config().fastpath_batch, 64u);
    uint64_t *root = nvalloc_root(inst, 0);
    ASSERT_NE(nvalloc_malloc_to(inst, 96, root), nullptr);
    EXPECT_EQ(nvalloc_free_from(inst, root), NVALLOC_OK);
    uint64_t v = 1;
    EXPECT_EQ(nvalloc_ctl(inst, "stats.fastpath.reserve_hits", &v),
              NVALLOC_OK);
    EXPECT_EQ(v, 0u) << "locked mode must take no reservations";
    nvalloc_exit(inst);
}

TEST(CApiOpenEx, HardeningOptionsMapThrough)
{
    PmDevice dev;
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    opts.guard_sample_rate = 64;
    opts.redzone_canaries = 1;
    opts.quarantine_depth = 8;
    opts.hardening_policy = NVALLOC_HARDEN_QUARANTINE;

    NvInstance *inst = nullptr;
    ASSERT_EQ(nvalloc_open_ex(&dev, &opts, &inst), NVALLOC_OK);
    const NvAllocConfig &cfg = nvalloc_impl(inst)->config();
    EXPECT_EQ(cfg.guard_sample_rate, 64u);
    EXPECT_TRUE(cfg.redzone_canaries);
    EXPECT_EQ(cfg.quarantine_depth, 8u);
    EXPECT_EQ(cfg.hardening_policy, HardeningPolicy::Quarantine);

    // The hardening counter family is reachable through nvalloc_ctl.
    uint64_t v = ~0ull;
    EXPECT_EQ(nvalloc_ctl(inst, "stats.hardening.validated_frees", &v),
              NVALLOC_OK);
    EXPECT_EQ(v, 0u);
    nvalloc_exit(inst);
}

// ---------------------------------------------------------------------
// Hostile-free error contract: every class of bad free returns
// NVALLOC_EINVAL, never aborts, and leaves the heap audit-clean and
// serviceable.
// ---------------------------------------------------------------------

TEST(CApi, HostileFreeContractUnderFullHardening)
{
    PmDevice dev;
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    opts.redzone_canaries = 1;
    opts.quarantine_depth = 8;
    NvInstance *inst = nullptr;
    ASSERT_EQ(nvalloc_open_ex(&dev, &opts, &inst), NVALLOC_OK);
    uint64_t *root = nvalloc_root(inst, 0);

    // Interior pointer into a small block.
    ASSERT_NE(nvalloc_malloc_to(inst, 256, root), nullptr);
    uint64_t small_off = *root;
    uint64_t interior = small_off + 8;
    EXPECT_EQ(nvalloc_free_from(inst, &interior), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_errno(inst), NVALLOC_EINVAL);

    // Interior pointer into a large extent (past the slab radix, into
    // extent-classification territory).
    uint64_t lw = 0;
    ASSERT_NE(nvalloc_malloc_to(inst, 64 * 1024, &lw), nullptr);
    uint64_t large_interior = lw + 4096;
    EXPECT_EQ(nvalloc_free_from(inst, &large_interior), NVALLOC_EINVAL);

    // Double free through a stale copy; the real free goes first.
    uint64_t stale = small_off;
    EXPECT_EQ(nvalloc_free_from(inst, root), NVALLOC_OK);
    EXPECT_EQ(nvalloc_free_from(inst, &stale), NVALLOC_EINVAL);

    // Wild pointer into never-allocated space.
    uint64_t wild = dev.size() - 4096;
    EXPECT_EQ(nvalloc_free_from(inst, &wild), NVALLOC_EINVAL);

    // Each rejection was classified and counted.
    uint64_t misaligned = 0, doubled = 0, wilds = 0;
    EXPECT_EQ(nvalloc_ctl(inst, "stats.hardening.misaligned_frees",
                          &misaligned),
              NVALLOC_OK);
    EXPECT_EQ(nvalloc_ctl(inst, "stats.hardening.double_frees", &doubled),
              NVALLOC_OK);
    EXPECT_EQ(nvalloc_ctl(inst, "stats.hardening.wild_frees", &wilds),
              NVALLOC_OK);
    EXPECT_EQ(misaligned, 2u) << "small + large interior";
    EXPECT_EQ(doubled, 1u);
    EXPECT_EQ(wilds, 1u);

    // Contained: the heap audits clean and still serves.
    EXPECT_EQ(nvalloc_free_from(inst, &lw), NVALLOC_OK);
    AuditReport rep = HeapAuditor(*nvalloc_impl(inst)).audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();
    ASSERT_NE(nvalloc_malloc_to(inst, 256, root), nullptr);
    EXPECT_EQ(nvalloc_free_from(inst, root), NVALLOC_OK);
    nvalloc_exit(inst);
}

TEST(CApi, CrossHeapFreeIsEinvalAndAttributed)
{
    // Two live heaps on separate devices. Padding pushes heap B's
    // probe block to an offset heap A has never mapped, so the free
    // into A classifies as wild there — and the heap registry
    // attributes it to B.
    PmDevice dev_a, dev_b;
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    NvInstance *a = nullptr, *b = nullptr;
    ASSERT_EQ(nvalloc_open_ex(&dev_a, &opts, &a), NVALLOC_OK);
    ASSERT_EQ(nvalloc_open_ex(&dev_b, &opts, &b), NVALLOC_OK);

    uint64_t pad = 0;
    ASSERT_NE(nvalloc_malloc_to(b, 16u << 20, &pad), nullptr);
    uint64_t probe = 0;
    ASSERT_NE(nvalloc_malloc_to(b, 128, &probe), nullptr);
    ASSERT_FALSE(nvalloc_impl(a)->ownsOffset(probe))
        << "probe collided with heap A's own layout";

    uint64_t stale = probe;
    EXPECT_EQ(nvalloc_free_from(a, &stale), NVALLOC_EINVAL);
    uint64_t cross = 0;
    EXPECT_EQ(nvalloc_ctl(a, "stats.hardening.cross_heap_frees", &cross),
              NVALLOC_OK);
    EXPECT_EQ(cross, 1u);

    // Heap B's block is untouched by the rejected free.
    EXPECT_EQ(nvalloc_free_from(b, &probe), NVALLOC_OK);
    EXPECT_EQ(nvalloc_free_from(b, &pad), NVALLOC_OK);
    nvalloc_exit(a);
    nvalloc_exit(b);
}

TEST(CApi, FreeAfterDegradedOpenIsEinvalNotAbort)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{128} << 20;
    PmDevice dev(dcfg);
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    uint64_t leaked = 0;
    {
        NvInstance *inst = nullptr;
        ASSERT_EQ(nvalloc_open_ex(&dev, &opts, &inst), NVALLOC_OK);
        ASSERT_NE(nvalloc_malloc_to(inst, 512, &leaked), nullptr);
        nvalloc_impl(inst)->dirtyRestart();
        nvalloc_exit(inst);
    }
    static_cast<uint8_t *>(dev.at(0))[16] ^= 0xff; // break the crc

    NvInstance *inst = nullptr;
    ASSERT_EQ(nvalloc_open_ex(&dev, &opts, &inst), NVALLOC_ECORRUPT);
    ASSERT_NE(inst, nullptr);

    // A free against the degraded instance — even of a once-valid
    // offset — is refused with a status, not an abort, and touches no
    // persistent state.
    EXPECT_EQ(nvalloc_free_from(inst, &leaked), NVALLOC_EINVAL);
    uint64_t zero = 0;
    EXPECT_EQ(nvalloc_free_from(inst, &zero), NVALLOC_EINVAL);
    nvalloc_exit(inst);
}

TEST(CApiOpenEx, CorruptImageReturnsDegradedInstanceForAuditing)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{128} << 20;
    PmDevice dev(dcfg);
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    {
        NvInstance *inst = nullptr;
        ASSERT_EQ(nvalloc_open_ex(&dev, &opts, &inst), NVALLOC_OK);
        uint64_t w = 0;
        ASSERT_NE(nvalloc_malloc_to(inst, 512, &w), nullptr);
        nvalloc_impl(inst)->dirtyRestart(); // reopen takes recovery
        nvalloc_exit(inst);
    }
    // Corrupt the superblock body so the recovery crc check fails.
    static_cast<uint8_t *>(dev.at(0))[16] ^= 0xff;

    NvInstance *inst = nullptr;
    ASSERT_EQ(nvalloc_open_ex(&dev, &opts, &inst), NVALLOC_ECORRUPT);
    ASSERT_NE(inst, nullptr) << "degraded instance must be returned";
    EXPECT_EQ(nvalloc_errno(inst), NVALLOC_ECORRUPT);

    // Allocation is refused with the open status...
    uint64_t w = 0;
    EXPECT_EQ(nvalloc_malloc_to(inst, 64, &w), nullptr);
    EXPECT_EQ(nvalloc_errno(inst), NVALLOC_ECORRUPT);

    // ...but introspection works: the auditor sees the violations.
    uint64_t mode = 0;
    EXPECT_EQ(nvalloc_ctl(inst, "stats.mode.current", &mode), NVALLOC_OK);
    EXPECT_EQ(mode, uint64_t(HeapMode::Failed));
    AuditReport rep = HeapAuditor(*nvalloc_impl(inst)).audit();
    EXPECT_GT(rep.violations(), 0u) << rep.summary();
    nvalloc_exit(inst);
}

// ---------------------------------------------------------------------
// Transaction surface (DESIGN.md §11): the happy path through the C
// veneer, and the error contract — every misuse returns NVALLOC_EINVAL
// with nvalloc_errno set, never an abort(), and the heap keeps
// serving.
// ---------------------------------------------------------------------

TEST(CApiTx, AtomicGroupCommitsThroughTheVeneer)
{
    PmDevice dev;
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    NvInstance *inst = nullptr;
    ASSERT_EQ(nvalloc_open_ex(&dev, &opts, &inst), NVALLOC_OK);
    uint64_t *root = nvalloc_root(inst, 0);
    uint64_t *flag = nvalloc_root(inst, 1);

    ASSERT_EQ(nvalloc_tx_begin(inst), NVALLOC_OK);
    void *p = nvalloc_tx_alloc(inst, 192, root);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x5a, 192);
    EXPECT_EQ(*root, 0u) << "publish must wait for commit";
    ASSERT_EQ(nvalloc_tx_write(inst, flag, 0xf1a6), NVALLOC_OK);
    ASSERT_EQ(nvalloc_tx_commit(inst), NVALLOC_OK);
    EXPECT_NE(*root, 0u);
    EXPECT_EQ(*flag, 0xf1a6u);

    // Free + pointer clear as one atomic group.
    ASSERT_EQ(nvalloc_tx_begin(inst), NVALLOC_OK);
    ASSERT_EQ(nvalloc_tx_free(inst, root), NVALLOC_OK);
    ASSERT_EQ(nvalloc_tx_write(inst, root, 0), NVALLOC_OK);
    ASSERT_EQ(nvalloc_tx_write(inst, flag, 0), NVALLOC_OK);
    ASSERT_EQ(nvalloc_tx_commit(inst), NVALLOC_OK);
    EXPECT_EQ(*root, 0u);

    AuditReport rep = HeapAuditor(*nvalloc_impl(inst)).audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();
    nvalloc_exit(inst);
}

TEST(CApiTx, NestedBeginIsEinvalAndOuterTxSurvives)
{
    PmDevice dev;
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    NvInstance *inst = nullptr;
    ASSERT_EQ(nvalloc_open_ex(&dev, &opts, &inst), NVALLOC_OK);
    uint64_t *root = nvalloc_root(inst, 0);

    ASSERT_EQ(nvalloc_tx_begin(inst), NVALLOC_OK);
    EXPECT_EQ(nvalloc_tx_begin(inst), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_errno(inst), NVALLOC_EINVAL);

    // The rejection did not disturb the outer transaction.
    ASSERT_NE(nvalloc_tx_alloc(inst, 64, root), nullptr);
    ASSERT_EQ(nvalloc_tx_commit(inst), NVALLOC_OK);
    EXPECT_NE(*root, 0u);
    EXPECT_EQ(nvalloc_free_from(inst, root), NVALLOC_OK);
    nvalloc_exit(inst);
}

TEST(CApiTx, OpsOutsideAnOpenTxAreEinval)
{
    PmDevice dev;
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    NvInstance *inst = nullptr;
    ASSERT_EQ(nvalloc_open_ex(&dev, &opts, &inst), NVALLOC_OK);
    uint64_t *root = nvalloc_root(inst, 0);
    ASSERT_NE(nvalloc_malloc_to(inst, 64, root), nullptr);
    uint64_t word = 0;

    // Never begun.
    EXPECT_EQ(nvalloc_tx_alloc(inst, 64, &word), nullptr);
    EXPECT_EQ(nvalloc_errno(inst), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_tx_free(inst, root), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_tx_write(inst, root, 1), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_tx_commit(inst), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_tx_abort(inst), NVALLOC_EINVAL);

    // After a commit the transaction is closed: ops are EINVAL again.
    ASSERT_EQ(nvalloc_tx_begin(inst), NVALLOC_OK);
    ASSERT_EQ(nvalloc_tx_commit(inst), NVALLOC_OK);
    EXPECT_EQ(nvalloc_tx_write(inst, root, 1), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_tx_commit(inst), NVALLOC_EINVAL);

    // Same after an abort.
    ASSERT_EQ(nvalloc_tx_begin(inst), NVALLOC_OK);
    ASSERT_EQ(nvalloc_tx_abort(inst), NVALLOC_OK);
    EXPECT_EQ(nvalloc_tx_alloc(inst, 64, &word), nullptr);
    EXPECT_EQ(nvalloc_tx_abort(inst), NVALLOC_EINVAL);

    // A null/zero where word for tx_free is rejected up front.
    ASSERT_EQ(nvalloc_tx_begin(inst), NVALLOC_OK);
    EXPECT_EQ(nvalloc_tx_free(inst, nullptr), NVALLOC_EINVAL);
    uint64_t zero = 0;
    EXPECT_EQ(nvalloc_tx_free(inst, &zero), NVALLOC_EINVAL);
    ASSERT_EQ(nvalloc_tx_abort(inst), NVALLOC_OK);

    // The word the rejected ops named was never touched, and the heap
    // still serves plain traffic.
    EXPECT_NE(*root, 0u);
    EXPECT_EQ(nvalloc_free_from(inst, root), NVALLOC_OK);
    AuditReport rep = HeapAuditor(*nvalloc_impl(inst)).audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();
    nvalloc_exit(inst);
}

TEST(CApiTx, TxWriteFromNonOwningThreadIsEinval)
{
    PmDevice dev;
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    NvInstance *inst = nullptr;
    ASSERT_EQ(nvalloc_open_ex(&dev, &opts, &inst), NVALLOC_OK);
    uint64_t *flag = nvalloc_root(inst, 1);

    // A transaction is per-thread: another thread touching its words
    // through the tx surface has no open transaction of its own, so
    // the call is refused on that thread.
    ASSERT_EQ(nvalloc_tx_begin(inst), NVALLOC_OK);
    ASSERT_EQ(nvalloc_tx_write(inst, flag, 0xa11), NVALLOC_OK);
    std::thread outsider([&] {
        EXPECT_EQ(nvalloc_tx_write(inst, flag, 0xbad), NVALLOC_EINVAL);
        EXPECT_EQ(nvalloc_errno(inst), NVALLOC_EINVAL);
        EXPECT_EQ(nvalloc_tx_commit(inst), NVALLOC_EINVAL);
    });
    outsider.join();
    EXPECT_EQ(*flag, 0xa11u) << "outsider write must not land";
    ASSERT_EQ(nvalloc_tx_abort(inst), NVALLOC_OK);
    EXPECT_EQ(*flag, 0u) << "abort rolls back the owner's write";
    nvalloc_exit(inst);
}

TEST(CApiTx, DegradedOpenRejectsEveryTxCall)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{128} << 20;
    PmDevice dev(dcfg);
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    uint64_t leaked = 0;
    {
        NvInstance *inst = nullptr;
        ASSERT_EQ(nvalloc_open_ex(&dev, &opts, &inst), NVALLOC_OK);
        ASSERT_NE(nvalloc_malloc_to(inst, 512, &leaked), nullptr);
        nvalloc_impl(inst)->dirtyRestart();
        nvalloc_exit(inst);
    }
    static_cast<uint8_t *>(dev.at(0))[16] ^= 0xff; // break the crc

    NvInstance *inst = nullptr;
    ASSERT_EQ(nvalloc_open_ex(&dev, &opts, &inst), NVALLOC_ECORRUPT);
    ASSERT_NE(inst, nullptr);

    uint64_t word = 0;
    EXPECT_EQ(nvalloc_tx_begin(inst), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_errno(inst), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_tx_alloc(inst, 64, &word), nullptr);
    EXPECT_EQ(nvalloc_tx_free(inst, &leaked), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_tx_write(inst, &word, 1), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_tx_commit(inst), NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_tx_abort(inst), NVALLOC_EINVAL);
    EXPECT_EQ(word, 0u);

    uint64_t rejected = 0;
    EXPECT_EQ(nvalloc_ctl(inst, "stats.tx.rejected", &rejected),
              NVALLOC_OK);
    EXPECT_GE(rejected, 6u);
    nvalloc_exit(inst);
}

// ---------------------------------------------------------------------
// Named (pool) opens: refcounted sharing, the options-mismatch EINVAL
// contract, and the health ABI.
// ---------------------------------------------------------------------

TEST(CApiPool, NamedOpenIdenticalOptionsSharesOneInstance)
{
    PmDevice dev;
    nvalloc_options opts;
    nvalloc_options_init(&opts);

    NvInstance *a = nullptr;
    NvInstance *b = nullptr;
    ASSERT_EQ(nvalloc_open_named(&dev, "capi-shared", &opts, &a),
              NVALLOC_OK);
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(nvalloc_open_named(&dev, "capi-shared", &opts, &b),
              NVALLOC_OK);
    EXPECT_EQ(a, b) << "identical reopen must share the instance";

    // Dropping one handle leaves the shared heap serving.
    nvalloc_exit(b);
    uint64_t w = 0;
    ASSERT_NE(nvalloc_malloc_to(a, 192, &w), nullptr);
    EXPECT_EQ(nvalloc_free_from(a, &w), NVALLOC_OK);
    EXPECT_EQ(nvalloc_health(a), NVALLOC_HEALTH_SERVING);
    nvalloc_exit(a);
}

TEST(CApiPool, NamedOpenOptionsMismatchIsEinvalNeverFirstWins)
{
    PmDevice dev;
    nvalloc_options opts;
    nvalloc_options_init(&opts);

    NvInstance *first = nullptr;
    ASSERT_EQ(nvalloc_open_named(&dev, "capi-mismatch", &opts, &first),
              NVALLOC_OK);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(nvalloc_errno(first), NVALLOC_OK);

    // Same name, different effective configuration: hard EINVAL with
    // *out untouched — not a silent handle onto the first config.
    nvalloc_options other;
    nvalloc_options_init(&other);
    other.gc_variant = 1;
    NvInstance *sentinel = reinterpret_cast<NvInstance *>(0x1);
    NvInstance *out = sentinel;
    EXPECT_EQ(nvalloc_open_named(&dev, "capi-mismatch", &other, &out),
              NVALLOC_EINVAL);
    EXPECT_EQ(out, sentinel) << "*out must be untouched on EINVAL";

    // The existing member records the refused open, errno style.
    EXPECT_EQ(nvalloc_errno(first), NVALLOC_EINVAL);

    // ...and is otherwise unharmed: still serving, still allocating.
    EXPECT_EQ(nvalloc_health(first), NVALLOC_HEALTH_SERVING);
    uint64_t w = 0;
    ASSERT_NE(nvalloc_malloc_to(first, 256, &w), nullptr);
    EXPECT_EQ(nvalloc_free_from(first, &w), NVALLOC_OK);

    // Invalid arguments never consult (or disturb) the pool.
    EXPECT_EQ(nvalloc_open_named(nullptr, "x", &opts, &out),
              NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_open_named(&dev, nullptr, &opts, &out),
              NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_open_named(&dev, "x", nullptr, &out),
              NVALLOC_EINVAL);
    EXPECT_EQ(nvalloc_open_named(&dev, "x", &opts, nullptr),
              NVALLOC_EINVAL);
    EXPECT_EQ(out, sentinel);

    nvalloc_exit(first);

    // The last exit closed the member: the name is reusable with a
    // different configuration afterwards.
    NvInstance *again = nullptr;
    PmDevice dev2;
    ASSERT_EQ(nvalloc_open_named(&dev2, "capi-mismatch", &other, &again),
              NVALLOC_OK);
    EXPECT_EQ(nvalloc_impl(again)->config().consistency,
              Consistency::Gc);
    nvalloc_exit(again);
}

TEST(CApiPool, HealthAbiRoundTripsThroughRestore)
{
    PmDevice dev;
    nvalloc_options opts;
    nvalloc_options_init(&opts);
    NvInstance *inst = nullptr;
    ASSERT_EQ(nvalloc_open_named(&dev, "capi-health", &opts, &inst),
              NVALLOC_OK);

    EXPECT_EQ(nvalloc_health(inst), NVALLOC_HEALTH_SERVING);
    uint64_t st = ~0ull;
    EXPECT_EQ(nvalloc_ctl(inst, "stats.health.state", &st), NVALLOC_OK);
    EXPECT_EQ(st, uint64_t{NVALLOC_HEALTH_SERVING});

    // restore on a clean heap is an audit + no-op transition.
    EXPECT_EQ(nvalloc_restore_health(inst), NVALLOC_OK);
    EXPECT_EQ(nvalloc_health(inst), NVALLOC_HEALTH_SERVING);
    nvalloc_exit(inst);
}

} // namespace
} // namespace nvalloc
