/**
 * @file
 * Tests of the paper-style C API veneer (nvalloc_init /
 * nvalloc_malloc_to / nvalloc_free_from / nvalloc_exit), including
 * implicit per-thread contexts.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "nvalloc/nvalloc.h"
#include "nvalloc/nvalloc_c.h"

namespace nvalloc {
namespace {

TEST(CApi, InitMallocFreeExit)
{
    PmDevice dev;
    NvInstance *inst = nvalloc_init(&dev);
    uint64_t *root = nvalloc_root(inst, 0);

    void *p = nvalloc_malloc_to(inst, 128, root);
    ASSERT_NE(p, nullptr);
    EXPECT_NE(*root, 0u);
    std::memset(p, 0x3c, 128);

    nvalloc_free_from(inst, root);
    EXPECT_EQ(*root, 0u);
    nvalloc_exit(inst);
}

TEST(CApi, GcVariantOption)
{
    PmDevice dev;
    NvAllocOptions opts;
    opts.gc_variant = true;
    NvInstance *inst = nvalloc_init(&dev, &opts);
    EXPECT_EQ(nvalloc_impl(inst)->config().consistency,
              Consistency::Gc);
    nvalloc_exit(inst);
}

TEST(CApi, ImplicitThreadContexts)
{
    PmDevice dev;
    NvInstance *inst = nvalloc_init(&dev);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            std::vector<uint64_t> words(50, 0);
            for (auto &w : words)
                ASSERT_NE(nvalloc_malloc_to(inst, 64, &w), nullptr);
            for (auto &w : words)
                nvalloc_free_from(inst, &w);
        });
    }
    for (auto &th : threads)
        th.join();
    nvalloc_exit(inst);
}

} // namespace
} // namespace nvalloc
