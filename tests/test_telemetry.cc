/**
 * @file
 * Tests of the telemetry subsystem: the ctl registry, the event ring,
 * the sharded counter aggregation under concurrency, and the NvAlloc
 * integration (ctlRead, statsJson, tracing, DegradedStats exposure).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "nvalloc/nvalloc.h"
#include "telemetry/ctl.h"
#include "telemetry/event_ring.h"
#include "telemetry/telemetry.h"

namespace nvalloc {
namespace {

// ---------------------------------------------------------------------
// CtlRegistry.
// ---------------------------------------------------------------------

TEST(CtlRegistry, ReadAndUnknownName)
{
    CtlRegistry reg;
    reg.registerName("a.b.c", [] { return uint64_t{7}; });
    reg.registerName("a.b.d", [] { return uint64_t{9}; });

    uint64_t v = 0;
    EXPECT_EQ(reg.read("a.b.c", v), CtlStatus::Ok);
    EXPECT_EQ(v, 7u);
    EXPECT_EQ(reg.read("a.b.d", v), CtlStatus::Ok);
    EXPECT_EQ(v, 9u);

    EXPECT_EQ(reg.read("a.b", v), CtlStatus::UnknownName)
        << "interior node is not a leaf";
    EXPECT_EQ(reg.read("a.b.e", v), CtlStatus::UnknownName);
    EXPECT_EQ(reg.read("", v), CtlStatus::UnknownName);
    EXPECT_TRUE(reg.contains("a.b.c"));
    EXPECT_FALSE(reg.contains("a.b"));
}

TEST(CtlRegistry, PrefixMatchesWholeComponents)
{
    CtlRegistry reg;
    reg.registerName("stats.flush.total", [] { return uint64_t{1}; });
    reg.registerName("stats.flushes", [] { return uint64_t{2}; });

    auto under = reg.names("stats.flush");
    ASSERT_EQ(under.size(), 1u);
    EXPECT_EQ(under[0], "stats.flush.total")
        << "\"stats.flushes\" shares the string prefix but not the "
           "component";
    EXPECT_EQ(reg.names().size(), 2u);
    EXPECT_EQ(reg.names("stats.flushes").size(), 1u)
        << "exact leaf matches its own prefix";
}

TEST(CtlRegistry, JsonNestsDottedNames)
{
    CtlRegistry reg;
    reg.registerName("s.a.x", [] { return uint64_t{1}; });
    reg.registerName("s.a.y", [] { return uint64_t{2}; });
    reg.registerName("s.b", [] { return uint64_t{3}; });
    EXPECT_EQ(reg.json(), R"({"s":{"a":{"x":1,"y":2},"b":3}})");
}

// ---------------------------------------------------------------------
// EventRing.
// ---------------------------------------------------------------------

TEST(EventRing, WraparoundKeepsNewestAndCountsDropped)
{
    EventRing ring(4);
    for (uint64_t i = 0; i < 10; ++i) {
        TraceEvent e;
        e.ts = i;
        e.arg = 100 + i;
        ring.record(e);
    }
    EXPECT_EQ(ring.recorded(), 10u);
    EXPECT_EQ(ring.dropped(), 6u);

    std::vector<TraceEvent> out;
    ring.drainInto(out);
    ASSERT_EQ(out.size(), 4u);
    for (uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(out[i].ts, 6 + i) << "oldest surviving event first";
        EXPECT_EQ(out[i].arg, 106 + i);
    }

    ring.reset();
    EXPECT_EQ(ring.recorded(), 0u);
    out.clear();
    ring.drainInto(out);
    EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------
// Telemetry (standalone instance).
// ---------------------------------------------------------------------

TEST(Telemetry, AggregatesAcrossThreads)
{
    Telemetry tel;
    const unsigned kThreads = 8;
    const unsigned kPerThread = 1000;

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&tel, t] {
            for (unsigned i = 0; i < kPerThread; ++i) {
                tel.noteSmallAlloc(t % kNumSizeClasses, i % 2 == 0, i);
                tel.add(StatCounter::LogAppend);
            }
            tel.noteSmallFree(t % kNumSizeClasses, 0);
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(tel.smallAllocs(), kThreads * kPerThread);
    EXPECT_EQ(tel.total(StatCounter::LogAppend), kThreads * kPerThread);
    EXPECT_EQ(tel.tcacheHits() + tel.total(StatCounter::TcacheMiss),
              kThreads * kPerThread);
    EXPECT_EQ(tel.total(StatCounter::TcacheMiss),
              kThreads * kPerThread / 2)
        << "every other alloc was recorded as a miss";
    EXPECT_EQ(tel.smallFrees(), kThreads);
    EXPECT_EQ(tel.shardCount(), kThreads);

    uint64_t class_total = 0;
    for (unsigned c = 0; c < kNumSizeClasses; ++c)
        class_total += tel.classAllocs(c);
    EXPECT_EQ(class_total, kThreads * kPerThread);
}

TEST(Telemetry, DisabledFreezesCounters)
{
    Telemetry tel;
    tel.noteSmallAlloc(0, true, 0);
    EXPECT_EQ(tel.smallAllocs(), 1u);

    tel.setEnabled(false);
    tel.noteSmallAlloc(0, true, 0);
    tel.add(StatCounter::LogAppend, 42);
    EXPECT_EQ(tel.smallAllocs(), 1u)
        << "value survives, increments stop";
    EXPECT_EQ(tel.total(StatCounter::LogAppend), 0u);

    tel.setEnabled(true);
    tel.noteSmallAlloc(0, true, 0);
    EXPECT_EQ(tel.smallAllocs(), 2u);
}

TEST(Telemetry, SinkCellsAttributeFlushes)
{
    // The pull-based FlushSink protocol end to end: the model resolves
    // the attribution row once, bumps it per classified flush, and
    // re-resolves after every epoch bump (setEnabled, bindArena).
    LatencyModel model;
    Telemetry tel;
    tel.attachSink(&model);
    tel.bindArena(2);

    for (uint64_t i = 0; i < 8; ++i)
        model.onFlush(i * 64, TimeKind::FlushMeta);
    uint64_t before = tel.flushTotal();
    EXPECT_EQ(before, 8u);
    EXPECT_EQ(tel.flushClassTotal(FlushClass::Reflush) +
                  tel.flushClassTotal(FlushClass::Sequential) +
                  tel.flushClassTotal(FlushClass::Random) +
                  tel.flushClassTotal(FlushClass::XpLineHit),
              before)
        << "class totals partition the flush total";
    uint64_t arena2 = 0;
    for (unsigned c = 0; c < kNumFlushClasses; ++c)
        arena2 += tel.arenaFlush(2, FlushClass(c));
    EXPECT_EQ(arena2, before) << "attributed to the bound arena";

    // Disabling drops the cached row; flushes stop being attributed.
    tel.setEnabled(false);
    model.onFlush(0x100000, TimeKind::FlushMeta);
    EXPECT_EQ(tel.flushTotal(), before);

    // Re-enabling re-arms it on the next flush.
    tel.setEnabled(true);
    model.onFlush(0x200000, TimeKind::FlushMeta);
    EXPECT_EQ(tel.flushTotal(), before + 1);

    // Rebinding moves subsequent attribution to the new arena.
    tel.bindArena(5);
    model.onFlush(0x300000, TimeKind::FlushMeta);
    uint64_t arena5 = 0;
    for (unsigned c = 0; c < kNumFlushClasses; ++c)
        arena5 += tel.arenaFlush(5, FlushClass(c));
    EXPECT_EQ(arena5, 1u);

    tel.attachSink(nullptr);
    model.onFlush(0x400000, TimeKind::FlushMeta);
    EXPECT_EQ(tel.flushTotal(), before + 2) << "detached sink is quiet";
}

TEST(Telemetry, TraceDrainMergesSortedAndCountsDrops)
{
    Telemetry tel;
    tel.startTracing(4);
    const unsigned kThreads = 4;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&tel] {
            VClock::reset();
            for (unsigned i = 0; i < 10; ++i) {
                VClock::advance(1, TimeKind::Other);
                tel.event(TraceOp::Refill, i);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    tel.stopTracing();

    std::vector<TraceEvent> events;
    uint64_t dropped = tel.drainEvents(events);
    EXPECT_EQ(events.size(), kThreads * 4u) << "ring cap per thread";
    EXPECT_EQ(dropped, kThreads * 6u);
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].ts, events[i - 1].ts) << "sorted by vclock";

    // Restarting clears the drained buffers.
    tel.startTracing(4);
    tel.stopTracing();
    events.clear();
    EXPECT_EQ(tel.drainEvents(events), 0u);
    EXPECT_TRUE(events.empty());
}

// ---------------------------------------------------------------------
// NvAlloc integration.
// ---------------------------------------------------------------------

class TelemetryHeap : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PmDeviceConfig dcfg;
        dcfg.size = size_t{1} << 28;
        dev_ = std::make_unique<PmDevice>(dcfg);
        alloc_ = NvAlloc::openOrDie(*dev_);
        ctx_ = alloc_->attachThread();
        ASSERT_NE(ctx_, nullptr);
    }

    void
    TearDown() override
    {
        if (ctx_)
            alloc_->detachThread(ctx_);
        alloc_.reset();
        dev_.reset();
    }

    uint64_t
    ctl(const char *name)
    {
        uint64_t v = 0;
        EXPECT_EQ(alloc_->ctlRead(name, &v), NvStatus::Ok) << name;
        return v;
    }

    std::unique_ptr<PmDevice> dev_;
    std::unique_ptr<NvAlloc> alloc_;
    ThreadCtx *ctx_ = nullptr;
};

TEST_F(TelemetryHeap, CountersFollowTraffic)
{
    std::vector<uint64_t> offs;
    for (int i = 0; i < 100; ++i)
        offs.push_back(alloc_->allocOffset(*ctx_, 64, nullptr));
    uint64_t big = alloc_->allocOffset(*ctx_, 100 * 1024, nullptr);
    ASSERT_NE(big, 0u);

    EXPECT_EQ(ctl("stats.alloc.small"), 100u);
    EXPECT_EQ(ctl("stats.alloc.large"), 1u);
    EXPECT_EQ(ctl("stats.alloc.large_bytes"), 100u * 1024);
    EXPECT_EQ(ctl("stats.tcache.hit") + ctl("stats.tcache.miss"), 100u);
    EXPECT_EQ(ctl("stats.class.64.alloc"), 100u);
    EXPECT_EQ(ctl("stats.class.64.live"), 100u);
    EXPECT_EQ(ctl("stats.alloc.small_bytes"), 100u * 64);

    for (uint64_t off : offs)
        EXPECT_EQ(alloc_->freeOffset(*ctx_, off, nullptr), NvStatus::Ok);
    EXPECT_EQ(alloc_->freeOffset(*ctx_, big, nullptr), NvStatus::Ok);

    EXPECT_EQ(ctl("stats.free.small"), 100u);
    EXPECT_EQ(ctl("stats.free.large"), 1u);
    EXPECT_EQ(ctl("stats.class.64.live"), 0u);
    EXPECT_GT(ctl("stats.wal.commits"), 0u);
    EXPECT_GT(ctl("stats.flush.total"), 0u);
    EXPECT_GT(ctl("stats.heap.stat_shards"), 0u);
}

TEST_F(TelemetryHeap, UnknownCtlNameIsAnError)
{
    uint64_t v = 0;
    EXPECT_EQ(alloc_->ctlRead("stats.no.such.name", &v),
              NvStatus::UnknownCtl);
    EXPECT_EQ(alloc_->ctlRead("", &v), NvStatus::UnknownCtl);
    // The family root is interior, not a leaf.
    EXPECT_EQ(alloc_->ctlRead("stats.alloc", &v), NvStatus::UnknownCtl);
}

TEST_F(TelemetryHeap, DegradedStatsReachTheSnapshot)
{
    // A free of a never-allocated offset is rejected and counted in
    // both the DegradedStats mirror and the shard counter.
    EXPECT_NE(alloc_->freeOffset(*ctx_, 0x1234, nullptr), NvStatus::Ok);
    EXPECT_EQ(ctl("stats.degraded.invalid_frees"), 1u);
    EXPECT_EQ(ctl("stats.free.invalid"), 1u);

    std::string json = alloc_->statsJson();
    EXPECT_NE(json.find("\"degraded\":{"), std::string::npos);
    EXPECT_NE(json.find("\"invalid_frees\":1"), std::string::npos);
    EXPECT_NE(json.find("\"mode\":{"), std::string::npos);
}

TEST_F(TelemetryHeap, ModeTransitionsAreCounted)
{
    // Fill the device with 32 MB extents until one cannot be placed:
    // the failing request drives the reclaim slow path and leaves the
    // heap Exhausted...
    const size_t kChunk = 32 * 1024 * 1024;
    unsigned served = 0;
    while (alloc_->allocOffset(*ctx_, kChunk, nullptr) != 0)
        ++served;
    ASSERT_GT(served, 0u);
    ASSERT_LT(served, 100u) << "256 MB device must fill up";
    EXPECT_EQ(ctl("stats.alloc.failed"), 1u);
    EXPECT_GE(ctl("stats.mode.to_reclaiming"), 1u);
    EXPECT_EQ(ctl("stats.mode.to_exhausted"), 1u);
    EXPECT_EQ(ctl("stats.mode.current"),
              uint64_t(HeapMode::Exhausted));

    // ...and the next success returns it to Normal.
    uint64_t off = alloc_->allocOffset(*ctx_, 64, nullptr);
    ASSERT_NE(off, 0u);
    EXPECT_EQ(ctl("stats.mode.to_normal"), 1u);
    EXPECT_EQ(ctl("stats.mode.current"), uint64_t(HeapMode::Normal));
}

TEST_F(TelemetryHeap, TracingCapturesAllocFlow)
{
    alloc_->telemetry().startTracing(8);
    std::vector<uint64_t> offs;
    for (int i = 0; i < 20; ++i)
        offs.push_back(alloc_->allocOffset(*ctx_, 128, nullptr));
    for (uint64_t off : offs)
        alloc_->freeOffset(*ctx_, off, nullptr);
    alloc_->telemetry().stopTracing();

    std::vector<TraceEvent> events;
    uint64_t dropped = alloc_->telemetry().drainEvents(events);
    EXPECT_EQ(events.size(), 8u) << "ring capacity bounds the dump";
    EXPECT_GT(dropped, 0u) << "40 ops through an 8-slot ring";
    for (const TraceEvent &e : events) {
        EXPECT_TRUE(e.op == TraceOp::Alloc || e.op == TraceOp::Free ||
                    e.op == TraceOp::Refill || e.op == TraceOp::Morph);
    }
}

TEST_F(TelemetryHeap, ConfigDisableZeroesEverything)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 28;
    PmDevice dev(dcfg);
    NvAllocConfig cfg;
    cfg.telemetry = false;
    auto quiet_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &quiet = *quiet_h;
    ThreadCtx *ctx = quiet.attachThread();
    ASSERT_NE(ctx, nullptr);

    uint64_t off = quiet.allocOffset(*ctx, 64, nullptr);
    ASSERT_NE(off, 0u);
    quiet.freeOffset(*ctx, off, nullptr);

    uint64_t v = 1;
    EXPECT_EQ(quiet.ctlRead("stats.alloc.small", &v), NvStatus::Ok)
        << "the tree still answers";
    EXPECT_EQ(v, 0u) << "but counters never move";
    quiet.detachThread(ctx);
}

TEST_F(TelemetryHeap, EveryRegisteredNameIsReadable)
{
    // Walk the whole tree through the public read path; this is the
    // same sweep the nvalloc_stat CLI default mode performs.
    size_t n = 0;
    for (const std::string &name : alloc_->ctl().names()) {
        uint64_t v = 0;
        EXPECT_EQ(alloc_->ctlRead(name.c_str(), &v), NvStatus::Ok)
            << name;
        ++n;
    }
    EXPECT_GT(n, 100u) << "counter families registered";
    EXPECT_EQ(n, alloc_->ctl().size());
}

} // namespace
} // namespace nvalloc
