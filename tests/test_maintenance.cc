/**
 * @file
 * Tests of the background maintenance subsystem (maintenance.h,
 * DESIGN.md §8) and the redesigned construction surface around it:
 *
 *  - Manual mode is deterministic: two identical runs stepping the
 *    service at the same points produce identical counters;
 *  - epoch pins defer slow GC (the only stage that relocates live log
 *    entries) and the deferral is accounted;
 *  - Thread mode wakes on log pressure from the mutator's large-object
 *    paths and absorbs GC virtual time off the allocating threads;
 *  - shutdown ordering survives concurrent churn, pause/resume storms,
 *    and crash/dirty-restart hooks (run under tsan in CI);
 *  - NvAlloc::open() validates configs up front and reports the
 *    outcome as a status, with the deprecated constructor agreeing;
 *  - the PmAllocatorRegistry constructs every builtin by name and
 *    applies MakeOptions centrally.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/allocator_iface.h"
#include "baselines/nvalloc_adapter.h"
#include "nvalloc/nvalloc.h"

namespace nvalloc {
namespace {

NvAllocConfig
maintConfig(MaintenanceMode mode)
{
    NvAllocConfig cfg;
    cfg.consistency = Consistency::Log;
    cfg.maintenance_mode = mode;
    return cfg;
}

/** Deterministic keep/churn mix over the large path: every iteration
 *  appends one live entry and, every other iteration, a tombstone. */
struct LargeChurn
{
    NvAlloc &alloc;
    ThreadCtx &ctx;
    std::vector<uint64_t> kept;
    uint64_t lcg = 0x9e3779b97f4a7c15ull;

    explicit LargeChurn(NvAlloc &a, ThreadCtx &c) : alloc(a), ctx(c) {}

    void
    step(unsigned i)
    {
        uint64_t off = alloc.allocOffset(ctx, 32 * 1024, nullptr);
        ASSERT_NE(off, 0u);
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        if (i % 2 == 0) {
            kept.push_back(off);
        } else {
            ASSERT_EQ(alloc.freeOffset(ctx, off, nullptr), NvStatus::Ok);
        }
    }

    void
    drain()
    {
        for (uint64_t off : kept)
            EXPECT_EQ(alloc.freeOffset(ctx, off, nullptr), NvStatus::Ok);
        kept.clear();
    }
};

// ---------------------------------------------------------------------
// Manual mode: determinism.
// ---------------------------------------------------------------------

struct CounterSnapshot
{
    uint64_t slices, fast, slow, decay, vns, gc_vns;

    bool
    operator==(const CounterSnapshot &o) const
    {
        return slices == o.slices && fast == o.fast && slow == o.slow &&
               decay == o.decay && vns == o.vns && gc_vns == o.gc_vns;
    }
};

CounterSnapshot
snapshot(const MaintenanceService &m)
{
    const MaintenanceStats &s = m.stats();
    return {s.slices.load(),      s.log_fast_gc.load(),
            s.log_slow_gc.load(), s.decay_ticks.load(),
            s.virtual_ns.load(),  s.gc_virtual_ns.load()};
}

CounterSnapshot
manualRun()
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{64} << 20;
    PmDevice dev(dcfg);
    NvAllocConfig cfg = maintConfig(MaintenanceMode::Manual);
    cfg.log_file_bytes = 32 * 1024;
    cfg.log_gc_threshold = 0.9; // keep the inline append trigger out
    cfg.maintenance_wake_fraction = 0.3;

    OpenResult r = NvAlloc::open(dev, cfg);
    EXPECT_EQ(r.status, NvStatus::Ok);
    NvAlloc &alloc = *r.heap;
    ThreadCtx *ctx = alloc.attachThread();
    EXPECT_NE(ctx, nullptr);

    LargeChurn churn(alloc, *ctx);
    for (unsigned i = 0; i < 400; ++i) {
        churn.step(i);
        if (i % 16 == 15)
            alloc.maintenance().step();
    }
    churn.drain();
    alloc.maintenance().step();

    CounterSnapshot snap = snapshot(alloc.maintenance());
    alloc.detachThread(ctx);
    return snap;
}

TEST(Maintenance, ManualModeIsDeterministic)
{
    CounterSnapshot a = manualRun();
    CounterSnapshot b = manualRun();
    EXPECT_GE(a.slices, 26u) << "every step() ran a slice";
    EXPECT_GE(a.fast, 1u);
    EXPECT_TRUE(a == b)
        << "identical Manual runs diverged: slices " << a.slices << "/"
        << b.slices << ", virtual_ns " << a.vns << "/" << b.vns;
}

TEST(Maintenance, ManualWithoutStepRunsNothing)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{64} << 20;
    PmDevice dev(dcfg);
    OpenResult r = NvAlloc::open(dev, maintConfig(MaintenanceMode::Manual));
    ASSERT_TRUE(r);
    ThreadCtx *ctx = r.heap->attachThread();
    ASSERT_NE(ctx, nullptr);

    LargeChurn churn(*r.heap, *ctx);
    for (unsigned i = 0; i < 100; ++i)
        churn.step(i);
    churn.drain();

    EXPECT_EQ(r.heap->maintenance().stats().slices.load(), 0u)
        << "Manual mode must not run slices on its own";
    EXPECT_FALSE(r.heap->maintenance().threadRunning());
    r.heap->detachThread(ctx);
}

// ---------------------------------------------------------------------
// Epoch-based deferral.
// ---------------------------------------------------------------------

TEST(Maintenance, PinsDeferSlowGcUntilUnpin)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{64} << 20;
    PmDevice dev(dcfg);
    NvAllocConfig cfg = maintConfig(MaintenanceMode::Manual);
    cfg.log_file_bytes = 32 * 1024;
    cfg.log_gc_threshold = 0.9; // inline trigger never fires
    cfg.maintenance_wake_fraction = 0.3;

    OpenResult r = NvAlloc::open(dev, cfg);
    ASSERT_TRUE(r);
    NvAlloc &alloc = *r.heap;
    ThreadCtx *ctx = alloc.attachThread();
    ASSERT_NE(ctx, nullptr);

    // Drive log occupancy past the wake level (0.27) with a live/dead
    // mix, so the pressure stage wants a slow GC and has tombstones to
    // drop when it runs.
    BookkeepingLog &log = alloc.bookkeepingLog();
    LargeChurn churn(alloc, *ctx);
    for (unsigned i = 0;
         log.activeChunks() < (log.maxChunks() * 35) / 100; ++i) {
        ASSERT_LT(i, 100000u) << "log never reached the wake level";
        churn.step(i);
    }

    MaintenanceService &m = alloc.maintenance();
    {
        MaintenanceService::PinGuard pin(m);
        m.step(); // reports no work: the one wanted stage was deferred
        EXPECT_GE(m.stats().deferred.load(), 1u)
            << "slow GC must be deferred while a pin is held";
        EXPECT_EQ(m.stats().log_slow_gc.load(), 0u);
    }
    size_t chunks_before = log.activeChunks();
    m.step();
    EXPECT_GE(m.stats().log_slow_gc.load(), 1u)
        << "unpinning releases the deferred slow GC";
    EXPECT_LT(log.activeChunks(), chunks_before)
        << "slow GC dropped tombstoned chunks";
    EXPECT_GT(m.stats().gc_virtual_ns.load(), 0u)
        << "the compaction's virtual time is attributed to maintenance";

    churn.drain();
    alloc.detachThread(ctx);
}

TEST(Maintenance, ForcedSliceIgnoresPause)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{64} << 20;
    PmDevice dev(dcfg);
    OpenResult r = NvAlloc::open(dev, maintConfig(MaintenanceMode::Manual));
    ASSERT_TRUE(r);
    MaintenanceService &m = r.heap->maintenance();

    m.pause();
    EXPECT_TRUE(m.paused());
    EXPECT_FALSE(m.step()) << "ordinary slices respect pause";
    EXPECT_EQ(m.stats().slices.load(), 0u);

    m.reclaimSync(); // the out-of-memory path cannot wait for resume
    EXPECT_EQ(m.stats().slices.load(), 1u);
    m.resume();
    EXPECT_FALSE(m.paused());
}

// ---------------------------------------------------------------------
// Thread mode: pressure wake-ups and GC-time attribution.
// ---------------------------------------------------------------------

TEST(Maintenance, ThreadModeWakesOnLogPressure)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{64} << 20;
    PmDevice dev(dcfg);
    NvAllocConfig cfg = maintConfig(MaintenanceMode::Thread);
    cfg.log_file_bytes = 32 * 1024;
    cfg.log_gc_threshold = 0.5;

    OpenResult r = NvAlloc::open(dev, cfg);
    ASSERT_TRUE(r);
    NvAlloc &alloc = *r.heap;
    EXPECT_TRUE(alloc.maintenance().threadRunning());
    ThreadCtx *ctx = alloc.attachThread();
    ASSERT_NE(ctx, nullptr);

    LargeChurn churn(alloc, *ctx);
    for (unsigned i = 0; i < 1500; ++i)
        churn.step(i);
    churn.drain();

    const MaintenanceStats &s = alloc.maintenance().stats();
    EXPECT_GE(s.wakes.load(), 1u)
        << "large-path pressure polls never woke the worker";
    EXPECT_GE(s.slices.load(), 1u);

    // Attribution invariant: what maintenance absorbed is a subset of
    // the log's total GC time.
    uint64_t gc_total = 0, gc_maint = 0;
    ASSERT_EQ(alloc.ctlRead("stats.log.gc_ns", &gc_total), NvStatus::Ok);
    ASSERT_EQ(alloc.ctlRead("stats.maintenance.gc_virtual_ns", &gc_maint),
              NvStatus::Ok);
    EXPECT_LE(gc_maint, gc_total);
    EXPECT_GT(gc_maint, 0u)
        << "the worker never ran a GC despite sustained pressure";

    alloc.detachThread(ctx);
}

TEST(Maintenance, ThreadModeShutdownUnderChurn)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{256} << 20;
    PmDevice dev(dcfg);
    NvAllocConfig cfg = maintConfig(MaintenanceMode::Thread);
    cfg.log_file_bytes = 64 * 1024;
    cfg.log_gc_threshold = 0.5;

    auto alloc = NvAlloc::openOrDie(dev, cfg);
    ASSERT_EQ(alloc->openStatus(), NvStatus::Ok);

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < 2; ++t) {
        workers.emplace_back([&alloc, t] {
            ThreadCtx *ctx = alloc->attachThread();
            ASSERT_NE(ctx, nullptr);
            std::vector<uint64_t> offs;
            for (unsigned i = 0; i < 600; ++i) {
                size_t size = (i % 3 == t % 3) ? 32 * 1024 : 256;
                uint64_t off = alloc->allocOffset(*ctx, size, nullptr);
                if (off)
                    offs.push_back(off);
                if (offs.size() > 64) {
                    alloc->freeOffset(*ctx, offs.back(), nullptr);
                    offs.pop_back();
                }
            }
            for (uint64_t off : offs)
                alloc->freeOffset(*ctx, off, nullptr);
            alloc->detachThread(ctx);
        });
    }

    // A pause/resume/wake storm concurrent with the churn: pause() must
    // wait out in-flight slices, wake() must never deadlock with them.
    for (unsigned i = 0; i < 50; ++i) {
        alloc->maintenance().pause();
        alloc->maintenance().resume();
        alloc->maintenance().wake(MaintWakeReason::Explicit);
    }
    for (std::thread &w : workers)
        w.join();
    alloc.reset(); // destructor shuts the worker down first
}

TEST(Maintenance, ThreadModeSurvivesDirtyRestart)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{64} << 20;
    PmDevice dev(dcfg);
    NvAllocConfig cfg = maintConfig(MaintenanceMode::Thread);
    cfg.log_file_bytes = 32 * 1024;
    cfg.log_gc_threshold = 0.5;

    uint64_t kept = 0;
    {
        OpenResult r = NvAlloc::open(dev, cfg);
        ASSERT_TRUE(r);
        ThreadCtx *ctx = r.heap->attachThread();
        ASSERT_NE(ctx, nullptr);
        LargeChurn churn(*r.heap, *ctx);
        for (unsigned i = 0; i < 300; ++i)
            churn.step(i);
        kept = churn.kept.size();
        r.heap->dirtyRestart(); // worker joins before the flags freeze
    }

    OpenResult r = NvAlloc::open(dev, cfg);
    ASSERT_EQ(r.status, NvStatus::Ok);
    EXPECT_TRUE(r.heap->lastRecovery().performed);
    EXPECT_TRUE(r.heap->lastRecovery().after_failure);
    EXPECT_EQ(r.heap->lastRecovery().extents_rebuilt, kept);
    EXPECT_TRUE(r.heap->maintenance().threadRunning())
        << "maintenance restarts after a recovered open";

    ThreadCtx *ctx = r.heap->attachThread();
    ASSERT_NE(ctx, nullptr);
    uint64_t off = r.heap->allocOffset(*ctx, 32 * 1024, nullptr);
    EXPECT_NE(off, 0u);
    EXPECT_EQ(r.heap->freeOffset(*ctx, off, nullptr), NvStatus::Ok);
    r.heap->detachThread(ctx);
}

// ---------------------------------------------------------------------
// The ctl surface.
// ---------------------------------------------------------------------

TEST(Maintenance, CtlActionsAndCounters)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{64} << 20;
    PmDevice dev(dcfg);
    OpenResult r = NvAlloc::open(dev, maintConfig(MaintenanceMode::Manual));
    ASSERT_TRUE(r);
    NvAlloc &alloc = *r.heap;

    uint64_t v = 0;
    EXPECT_EQ(alloc.ctlRead("maintenance.step", &v), NvStatus::Ok);
    EXPECT_EQ(alloc.ctlRead("stats.maintenance.slices", &v),
              NvStatus::Ok);
    EXPECT_EQ(v, 1u);

    EXPECT_EQ(alloc.ctlRead("maintenance.pause", &v), NvStatus::Ok);
    EXPECT_TRUE(alloc.maintenance().paused());
    EXPECT_EQ(alloc.ctlRead("stats.maintenance.paused", &v),
              NvStatus::Ok);
    EXPECT_EQ(v, 1u);
    EXPECT_EQ(alloc.ctlRead("maintenance.resume", &v), NvStatus::Ok);
    EXPECT_FALSE(alloc.maintenance().paused());

    EXPECT_EQ(alloc.ctlRead("maintenance.selfdestruct", &v),
              NvStatus::UnknownCtl);
    EXPECT_EQ(alloc.maintenanceControl("bogus"),
              NvStatus::InvalidArgument);

    EXPECT_EQ(alloc.ctlRead("stats.maintenance.mode", &v), NvStatus::Ok);
    EXPECT_EQ(v, uint64_t(MaintenanceMode::Manual));
    EXPECT_EQ(alloc.ctlRead("stats.maintenance.virtual_ns", &v),
              NvStatus::Ok);
}

// ---------------------------------------------------------------------
// The open() factory.
// ---------------------------------------------------------------------

TEST(OpenFactory, RejectsInvalidConfigWithoutTouchingDevice)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{64} << 20;
    PmDevice dev(dcfg);

    NvAllocConfig bad;
    bad.bit_stripes = 0;
    OpenResult r = NvAlloc::open(dev, bad);
    EXPECT_EQ(r.status, NvStatus::InvalidArgument);
    EXPECT_EQ(r.heap, nullptr);
    EXPECT_FALSE(r);

    bad = NvAllocConfig{};
    bad.maintenance_wake_fraction = 0.0;
    EXPECT_EQ(NvAlloc::open(dev, bad).status, NvStatus::InvalidArgument);
    bad = NvAllocConfig{};
    bad.maintenance_slice_ns = 0;
    EXPECT_EQ(NvAlloc::open(dev, bad).status, NvStatus::InvalidArgument);

    // The rejected opens never formatted the device: a good open still
    // takes the create path, not recovery.
    OpenResult ok = NvAlloc::open(dev, NvAllocConfig{});
    ASSERT_TRUE(ok);
    EXPECT_FALSE(ok.heap->lastRecovery().performed);
}

TEST(OpenFactory, OpenOrDieAgreesWithOpen)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{64} << 20;
    PmDevice dev(dcfg);
    {
        OpenResult r = NvAlloc::open(dev, maintConfig(MaintenanceMode::Off));
        ASSERT_TRUE(r);
        ThreadCtx *ctx = r.heap->attachThread();
        ASSERT_NE(ctx, nullptr);
        uint64_t off = r.heap->allocOffset(*ctx, 256, nullptr);
        EXPECT_NE(off, 0u);
        EXPECT_EQ(r.heap->freeOffset(*ctx, off, nullptr), NvStatus::Ok);
        r.heap->detachThread(ctx);
    }
    // Same device, the assert-on-misuse convenience factory (which
    // replaced the retired two-step constructor): recovery of the
    // clean shutdown, identical observable state.
    auto again = NvAlloc::openOrDie(dev, maintConfig(MaintenanceMode::Off));
    EXPECT_EQ(again->openStatus(), NvStatus::Ok);
    EXPECT_TRUE(again->lastRecovery().performed);
    ThreadCtx *ctx = again->attachThread();
    ASSERT_NE(ctx, nullptr);
    uint64_t off = again->allocOffset(*ctx, 256, nullptr);
    EXPECT_NE(off, 0u);
    again->detachThread(ctx);
}

// ---------------------------------------------------------------------
// The allocator registry.
// ---------------------------------------------------------------------

TEST(Registry, KnowsEveryBuiltin)
{
    PmAllocatorRegistry &reg = PmAllocatorRegistry::instance();
    for (const char *name : {"pmdk", "nvm_malloc", "pallocator",
                             "makalu", "ralloc", "nvalloc", "nvalloc-gc"})
        EXPECT_TRUE(reg.known(name)) << name;
    EXPECT_FALSE(reg.known("tcmalloc"));
    EXPECT_GE(reg.names().size(), 7u);

    PmDeviceConfig dcfg;
    dcfg.size = size_t{64} << 20;
    PmDevice dev(dcfg);
    EXPECT_EQ(reg.make("tcmalloc", dev), nullptr);
}

TEST(Registry, MakesWorkingAllocatorsByName)
{
    PmAllocatorRegistry &reg = PmAllocatorRegistry::instance();
    for (const char *name : {"nvalloc", "nvalloc-gc", "pmdk"}) {
        PmDeviceConfig dcfg;
        dcfg.size = size_t{128} << 20;
        PmDevice dev(dcfg);
        std::unique_ptr<PmAllocator> a = reg.make(name, dev);
        ASSERT_NE(a, nullptr) << name;
        AllocThread *t = a->threadAttach();
        ASSERT_NE(t, nullptr) << name;
        uint64_t off = a->allocTo(t, 512, nullptr);
        EXPECT_NE(off, 0u) << name;
        a->freeFrom(t, off, nullptr);
        a->threadDetach(t);
    }
}

TEST(Registry, TweakReachesNvAllocConfig)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{64} << 20;
    PmDevice dev(dcfg);
    MakeOptions opts;
    opts.tweak_nvalloc = [](NvAllocConfig &c) {
        c.maintenance_mode = MaintenanceMode::Manual;
    };
    std::unique_ptr<PmAllocator> a =
        PmAllocatorRegistry::instance().make("nvalloc", dev, opts);
    ASSERT_NE(a, nullptr);
    auto *adapter = dynamic_cast<NvAllocAdapter *>(a.get());
    ASSERT_NE(adapter, nullptr);
    EXPECT_EQ(adapter->impl().config().maintenance_mode,
              MaintenanceMode::Manual);
    EXPECT_TRUE(a->stronglyConsistent());
}

} // namespace
} // namespace nvalloc
