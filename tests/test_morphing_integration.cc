/**
 * @file
 * End-to-end slab morphing tests through the public NvAlloc API:
 * data integrity of old-class blocks across a morph, mixed-class
 * co-location, allocation from morphed slabs, morph-state teardown,
 * crash consistency across the whole cycle, and the SU threshold.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/rng.h"
#include "nvalloc/nvalloc.h"
#include "test_util.h"

namespace nvalloc {
namespace {

struct MorphRig
{
    std::unique_ptr<PmDevice> dev;
    std::unique_ptr<NvAlloc> alloc;
    ThreadCtx *ctx = nullptr;

    explicit MorphRig(double threshold = 0.2, bool shadow = false)
    {
        PmDeviceConfig dcfg;
        dcfg.size = size_t{1} << 30;
        dcfg.shadow = shadow;
        dev = std::make_unique<PmDevice>(dcfg);
        NvAllocConfig cfg;
        cfg.morph_threshold = threshold;
        cfg.num_arenas = 1; // deterministic slab placement
        alloc = NvAlloc::openOrDie(*dev, cfg);
        ctx = alloc->attachThread();
    }

    ~MorphRig()
    {
        if (ctx && alloc)
            alloc->detachThread(ctx);
    }

    uint64_t
    totalMorphs()
    {
        uint64_t n = 0;
        for (unsigned i = 0; i < alloc->numArenas(); ++i)
            n += alloc->arena(i).stats().morphs;
        return n;
    }

    /** Fill then thin a 64 B population so sparse slabs exist. */
    std::map<uint64_t, uint8_t>
    makeSparsePopulation(unsigned total, unsigned keep_every)
    {
        std::map<uint64_t, uint8_t> survivors;
        std::vector<uint64_t> offs;
        for (unsigned i = 0; i < total; ++i)
            offs.push_back(alloc->allocOffset(*ctx, 64, nullptr));
        for (unsigned i = 0; i < total; ++i) {
            if (i % keep_every == 0) {
                uint8_t tag = uint8_t(i * 37 + 5);
                std::memset(alloc->at(offs[i]), tag, 64);
                dev->persist(alloc->at(offs[i]), 64,
                             TimeKind::FlushData);
                survivors[offs[i]] = tag;
            } else {
                alloc->freeOffset(*ctx, offs[i], nullptr);
            }
        }
        return survivors;
    }
};

TEST(MorphIntegration, OldBlockDataSurvivesMorph)
{
    MorphRig rig;
    auto survivors = rig.makeSparsePopulation(8000, 25);

    // Demand another class until morphing happens.
    std::vector<uint64_t> big;
    while (rig.totalMorphs() == 0 && big.size() < 4000)
        big.push_back(rig.alloc->allocOffset(*rig.ctx, 1024, nullptr));
    ASSERT_GT(rig.totalMorphs(), 0u);

    // Every old block's bytes are untouched.
    for (auto &[off, tag] : survivors) {
        auto *bytes = static_cast<uint8_t *>(rig.alloc->at(off));
        for (int b = 0; b < 64; ++b)
            ASSERT_EQ(bytes[b], tag) << "off " << off;
    }

    // And all of them are still individually freeable.
    for (auto &[off, tag] : survivors)
        rig.alloc->freeOffset(*rig.ctx, off, nullptr);
    for (uint64_t off : big)
        rig.alloc->freeOffset(*rig.ctx, off, nullptr);
    EXPECT_EQ(liveSmallBlocks(*rig.alloc), 0u);
}

TEST(MorphIntegration, NewBlocksNeverOverlapLiveOldBlocks)
{
    MorphRig rig;
    auto survivors = rig.makeSparsePopulation(8000, 25);

    std::vector<uint64_t> big;
    for (int i = 0; i < 2000; ++i)
        big.push_back(rig.alloc->allocOffset(*rig.ctx, 1024, nullptr));
    ASSERT_GT(rig.totalMorphs(), 0u);

    // Writing every new block must not disturb any old block.
    for (uint64_t off : big)
        std::memset(rig.alloc->at(off), 0xEE, 1024);
    for (auto &[off, tag] : survivors) {
        auto *bytes = static_cast<uint8_t *>(rig.alloc->at(off));
        for (int b = 0; b < 64; ++b)
            ASSERT_EQ(bytes[b], tag);
    }
}

TEST(MorphIntegration, MorphedSlabReturnsToNormalWhenOldBlocksDie)
{
    MorphRig rig;
    auto survivors = rig.makeSparsePopulation(4000, 50);
    std::vector<uint64_t> big;
    while (rig.totalMorphs() == 0 && big.size() < 4000)
        big.push_back(rig.alloc->allocOffset(*rig.ctx, 1024, nullptr));
    ASSERT_GT(rig.totalMorphs(), 0u);

    for (auto &[off, tag] : survivors)
        rig.alloc->freeOffset(*rig.ctx, off, nullptr);

    unsigned still_morphing = 0;
    rig.alloc->arena(0).forEachSlab([&](VSlab *slab) {
        still_morphing += slab->morphing() ? 1 : 0;
        EXPECT_EQ(slab->header()->flag, 0u);
    });
    EXPECT_EQ(still_morphing, 0u)
        << "all index tables drained -> regular slabs again";
}

TEST(MorphIntegration, HigherThresholdMorphsMore)
{
    uint64_t morphs_low, morphs_high;
    {
        MorphRig rig(0.05);
        rig.makeSparsePopulation(8000, 8); // ~12% occupancy slabs
        for (int i = 0; i < 2000; ++i)
            rig.alloc->allocOffset(*rig.ctx, 1024, nullptr);
        morphs_low = rig.totalMorphs();
    }
    {
        MorphRig rig(0.5);
        rig.makeSparsePopulation(8000, 8);
        for (int i = 0; i < 2000; ++i)
            rig.alloc->allocOffset(*rig.ctx, 1024, nullptr);
        morphs_high = rig.totalMorphs();
    }
    EXPECT_GT(morphs_high, morphs_low);
}

TEST(MorphIntegration, CrashAfterMorphRecoversBothClasses)
{
    MorphRig rig(0.2, /*shadow=*/true);
    auto survivors = rig.makeSparsePopulation(6000, 30);
    std::vector<uint64_t> big;
    while (rig.totalMorphs() == 0 && big.size() < 4000)
        big.push_back(rig.alloc->allocOffset(*rig.ctx, 1024, nullptr));
    ASSERT_GT(rig.totalMorphs(), 0u);

    rig.alloc->simulateCrash();
    rig.ctx = nullptr;
    PmDevice &dev = *rig.dev;
    rig.alloc.reset();

    NvAllocConfig cfg;
    cfg.num_arenas = 1;
    auto again_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &again = *again_h;
    EXPECT_TRUE(again.lastRecovery().after_failure);

    // Old-class survivors are intact and classified as old blocks...
    for (auto &[off, tag] : survivors) {
        ASSERT_TRUE(blockIsLive(again, off)) << off;
        auto *bytes = static_cast<uint8_t *>(again.at(off));
        for (int b = 0; b < 64; ++b)
            ASSERT_EQ(bytes[b], tag);
    }
    // ...and the new-class blocks too — except possibly the newest
    // one: it was attached to a volatile word, so WAL replay rightly
    // reclaims it as an in-flight (leaked) allocation.
    unsigned live_big = 0;
    for (uint64_t off : big)
        live_big += blockIsLive(again, off) ? 1 : 0;
    EXPECT_GE(live_big + 1, big.size());

    // Everything remains freeable after recovery.
    ThreadCtx *ctx = again.attachThread();
    for (auto &[off, tag] : survivors)
        again.freeOffset(*ctx, off, nullptr);
    for (uint64_t off : big) {
        if (blockIsLive(again, off))
            again.freeOffset(*ctx, off, nullptr);
    }
    EXPECT_EQ(liveSmallBlocks(again), 0u);
    again.detachThread(ctx);
}

} // namespace
} // namespace nvalloc
