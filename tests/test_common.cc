/**
 * @file
 * Unit and property tests of the common substrate: RNG, smootherstep,
 * size classes, bitmap helpers, the intrusive LRU list, the intrusive
 * red-black tree (validated against std::multimap with invariant
 * checks), and the radix tree (validated against std::map).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "common/bitmap_ops.h"
#include "common/lru_list.h"
#include "common/radix_tree.h"
#include "common/rbtree.h"
#include "common/rng.h"
#include "common/size_classes.h"
#include "common/smootherstep.h"

namespace nvalloc {
namespace {

// ---- Rng ------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
    Rng a(7), b(7), c(8);
    bool differs = false;
    for (int i = 0; i < 100; ++i) {
        uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        differs |= va != c.next();
    }
    EXPECT_TRUE(differs);
}

TEST(Rng, UniformStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        uint64_t v = rng.uniform(100, 150);
        ASSERT_GE(v, 100u);
        ASSERT_LE(v, 150u);
    }
}

TEST(Rng, UniformCoversRange)
{
    Rng rng(4);
    std::set<uint64_t> seen;
    for (int i = 0; i < 5000; ++i)
        seen.insert(rng.uniform(0, 9));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, PoissonMeanRoughlyCorrect)
{
    Rng rng(6);
    double sum = 0;
    for (int i = 0; i < 20000; ++i)
        sum += double(rng.poisson(6.5));
    EXPECT_NEAR(sum / 20000, 6.5, 0.2);
}

// ---- smootherstep ----------------------------------------------------

TEST(Smootherstep, EndpointsAndMonotonicity)
{
    EXPECT_DOUBLE_EQ(smootherstep(0.0), 0.0);
    EXPECT_DOUBLE_EQ(smootherstep(1.0), 1.0);
    EXPECT_DOUBLE_EQ(smootherstep(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(smootherstep(2.0), 1.0);
    double prev = 0.0;
    for (int i = 1; i <= 100; ++i) {
        double v = smootherstep(i / 100.0);
        ASSERT_GE(v, prev);
        prev = v;
    }
    EXPECT_NEAR(smootherstep(0.5), 0.5, 1e-12); // odd symmetry
}

TEST(Smootherstep, DecayLimitFractionFallsToZero)
{
    EXPECT_DOUBLE_EQ(decayLimitFraction(0, 100), 1.0);
    EXPECT_DOUBLE_EQ(decayLimitFraction(100, 100), 0.0);
    EXPECT_DOUBLE_EQ(decayLimitFraction(1000, 100), 0.0);
    EXPECT_GT(decayLimitFraction(25, 100), decayLimitFraction(75, 100));
}

// ---- size classes ----------------------------------------------------

TEST(SizeClasses, EveryClassFitsItsRange)
{
    for (unsigned c = 0; c < kNumSizeClasses; ++c) {
        size_t size = classToSize(c);
        EXPECT_EQ(sizeToClass(size), c);
        if (c > 0) {
            EXPECT_EQ(sizeToClass(classToSize(c - 1) + 1), c);
        }
    }
}

TEST(SizeClasses, MonotoneAndBounded)
{
    for (unsigned c = 1; c < kNumSizeClasses; ++c)
        EXPECT_GT(classToSize(c), classToSize(c - 1));
    EXPECT_EQ(classToSize(kNumSizeClasses - 1), kSmallMax);
}

TEST(SizeClasses, InternalFragmentationBounded)
{
    // jemalloc-style spacing: waste < 25% beyond the linear region.
    for (size_t size = 129; size <= kSmallMax; size += 97) {
        size_t block = classToSize(sizeToClass(size));
        EXPECT_GE(block, size);
        EXPECT_LE(double(block - size) / double(size), 0.25) << size;
    }
}

// ---- bitmap ops -------------------------------------------------------

TEST(BitmapOps, SetClearTestRoundtrip)
{
    uint64_t words[4] = {};
    for (size_t bit : {0u, 1u, 63u, 64u, 127u, 255u}) {
        EXPECT_FALSE(bitmapTest(words, bit));
        bitmapSet(words, bit);
        EXPECT_TRUE(bitmapTest(words, bit));
        bitmapClear(words, bit);
        EXPECT_FALSE(bitmapTest(words, bit));
    }
}

TEST(BitmapOps, FindFirstZeroSkipsFullWords)
{
    uint64_t words[3] = {~uint64_t{0}, ~uint64_t{0}, 0};
    EXPECT_EQ(bitmapFindFirstZero(words, 192), 128u);
    bitmapClear(words, 70);
    EXPECT_EQ(bitmapFindFirstZero(words, 192), 70u);
    // No zero below the limit.
    uint64_t full[1] = {~uint64_t{0}};
    EXPECT_EQ(bitmapFindFirstZero(full, 64), 64u);
}

TEST(BitmapOps, FindFirstZeroRespectsLimit)
{
    uint64_t words[1] = {~uint64_t{0} >> 4}; // bits 60..63 clear
    EXPECT_EQ(bitmapFindFirstZero(words, 60), 60u) << "limit clips";
    EXPECT_EQ(bitmapFindFirstZero(words, 64), 60u);
}

TEST(BitmapOps, PopcountMatchesManualCount)
{
    Rng rng(11);
    uint64_t words[8] = {};
    unsigned expected = 0;
    for (int i = 0; i < 200; ++i) {
        size_t bit = rng.nextBounded(512);
        if (!bitmapTest(words, bit)) {
            bitmapSet(words, bit);
            if (bit < 300)
                ++expected;
        }
    }
    EXPECT_EQ(bitmapPopcount(words, 300), expected);
}

// ---- LruList ----------------------------------------------------------

struct Item
{
    int id;
    LruLink link;
};

TEST(LruList, OrderAndTouch)
{
    NVALLOC_LRU_LIST(Item, link) list;
    Item a{1, {}}, b{2, {}}, c{3, {}};
    list.pushBack(&a);
    list.pushBack(&b);
    list.pushBack(&c);
    EXPECT_EQ(list.size(), 3u);
    EXPECT_EQ(list.front()->id, 1);

    list.touch(&a); // a becomes MRU
    EXPECT_EQ(list.front()->id, 2);

    EXPECT_EQ(list.popFront()->id, 2);
    EXPECT_EQ(list.popFront()->id, 3);
    EXPECT_EQ(list.popFront()->id, 1);
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.popFront(), nullptr);
}

TEST(LruList, IterationAndRemove)
{
    NVALLOC_LRU_LIST(Item, link) list;
    std::vector<Item> items(10);
    for (int i = 0; i < 10; ++i) {
        items[i].id = i;
        list.pushBack(&items[i]);
    }
    list.remove(&items[4]);
    list.remove(&items[9]);
    std::vector<int> order;
    for (Item *it = list.front(); it; it = list.next(it))
        order.push_back(it->id);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 5, 6, 7, 8}));
    EXPECT_FALSE(items[4].link.linked());
}

// ---- RbTree ------------------------------------------------------------

struct Node
{
    int payload;
    RbNode rb;
};

using Tree = RbTree<Node, offsetof(Node, rb)>;

TEST(RbTree, InsertFindEraseSmoke)
{
    Tree tree;
    Node n1{1, {}}, n2{2, {}}, n3{3, {}};
    tree.insert(&n1, 50);
    tree.insert(&n2, 30);
    tree.insert(&n3, 70);
    EXPECT_EQ(tree.size(), 3u);
    EXPECT_EQ(tree.find(30), &n2);
    EXPECT_EQ(tree.find(31), nullptr);
    EXPECT_EQ(tree.lowerBound(40), &n1);
    EXPECT_EQ(tree.lowerBound(71), nullptr);
    EXPECT_EQ(tree.upperBoundBelow(40), &n2);
    tree.checkInvariants();
    tree.erase(&n1);
    EXPECT_EQ(tree.lowerBound(40), &n3);
    tree.checkInvariants();
}

TEST(RbTree, RandomOpsMatchMultimapWithInvariants)
{
    Tree tree;
    std::multimap<uint64_t, Node *> model;
    std::vector<std::unique_ptr<Node>> pool;
    Rng rng(13);

    for (int step = 0; step < 4000; ++step) {
        if (model.empty() || rng.nextDouble() < 0.55) {
            auto node = std::make_unique<Node>();
            uint64_t key = rng.nextBounded(500);
            tree.insert(node.get(), key);
            model.emplace(key, node.get());
            pool.push_back(std::move(node));
        } else {
            auto it = model.begin();
            std::advance(it, long(rng.nextBounded(model.size())));
            tree.erase(it->second);
            model.erase(it);
        }
        if (step % 64 == 0)
            tree.checkInvariants();
        ASSERT_EQ(tree.size(), model.size());
    }
    tree.checkInvariants();

    // Ordered iteration agrees with the model.
    std::vector<uint64_t> keys;
    for (Node *n = tree.first(); n; n = tree.next(n))
        keys.push_back(Tree::nodeOf(n)->key);
    std::vector<uint64_t> expect;
    for (auto &[k, v] : model)
        expect.push_back(k);
    EXPECT_EQ(keys, expect);

    // lowerBound agrees for probes.
    for (uint64_t probe = 0; probe < 500; probe += 7) {
        Node *got = tree.lowerBound(probe);
        auto it = model.lower_bound(probe);
        if (it == model.end())
            EXPECT_EQ(got, nullptr);
        else
            EXPECT_EQ(Tree::nodeOf(got)->key, it->first);
    }
}

TEST(RbTree, DuplicateKeys)
{
    Tree tree;
    std::vector<std::unique_ptr<Node>> pool;
    for (int i = 0; i < 100; ++i) {
        auto n = std::make_unique<Node>();
        tree.insert(n.get(), 42);
        pool.push_back(std::move(n));
    }
    EXPECT_EQ(tree.size(), 100u);
    tree.checkInvariants();
    for (int i = 0; i < 100; ++i) {
        Node *n = tree.find(42);
        ASSERT_NE(n, nullptr);
        tree.erase(n);
    }
    EXPECT_TRUE(tree.empty());
}

// ---- RadixTree ---------------------------------------------------------

TEST(RadixTree, SetGetAndRangeSemantics)
{
    RadixTree tree;
    int a, b;
    tree.set(0, &a);
    EXPECT_EQ(tree.get(0), &a);
    EXPECT_EQ(tree.get(4095), &a) << "page granularity";
    EXPECT_EQ(tree.get(4096), nullptr);

    tree.setRange(64 * 1024, 64 * 1024, &b);
    EXPECT_EQ(tree.get(64 * 1024), &b);
    EXPECT_EQ(tree.get(128 * 1024 - 1), &b);
    EXPECT_EQ(tree.get(128 * 1024), nullptr);

    tree.setRange(64 * 1024, 64 * 1024, nullptr);
    EXPECT_EQ(tree.get(64 * 1024), nullptr);
}

TEST(RadixTree, RandomRangesMatchModel)
{
    RadixTree tree;
    std::map<uint64_t, void *> model; // page -> value
    Rng rng(17);
    std::vector<int> values(64);

    for (int step = 0; step < 2000; ++step) {
        uint64_t page = rng.nextBounded(1 << 14);
        uint64_t pages = 1 + rng.nextBounded(16);
        void *v = rng.nextDouble() < 0.2
                      ? nullptr
                      : &values[rng.nextBounded(values.size())];
        tree.setRange(page << 12, pages << 12, v);
        for (uint64_t p = page; p < page + pages; ++p) {
            if (v)
                model[p] = v;
            else
                model.erase(p);
        }
    }
    for (uint64_t p = 0; p < (1 << 14) + 16; ++p) {
        auto it = model.find(p);
        EXPECT_EQ(tree.get(p << 12),
                  it == model.end() ? nullptr : it->second)
            << p;
    }
}

TEST(RadixTree, ConcurrentReadersDuringWrites)
{
    RadixTree tree;
    static int value;
    std::atomic<bool> stop{false};

    std::thread writer([&] {
        for (int round = 0; round < 200; ++round) {
            tree.setRange(uint64_t(round) << 16, 1 << 16, &value);
            tree.setRange(uint64_t(round) << 16, 1 << 16, nullptr);
        }
        stop = true;
    });
    std::thread reader([&] {
        while (!stop) {
            for (int round = 0; round < 200; ++round) {
                void *v = tree.get(uint64_t(round) << 16);
                ASSERT_TRUE(v == nullptr || v == &value);
            }
        }
    });
    writer.join();
    reader.join();
}

} // namespace
} // namespace nvalloc
