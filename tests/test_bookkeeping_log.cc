/**
 * @file
 * Bookkeeping log tests (§5.3): append/tombstone semantics, replay
 * round trips, fast GC of empty chunks, slow GC with entry
 * relocation and the alt-bit switch, interleaved entry placement, and
 * recycling of unreachable chunks after an interrupted slow GC.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "nvalloc/bookkeeping_log.h"

namespace nvalloc {
namespace {

struct Owner
{
    LogEntryRef ref;
};

class LogFixture : public ::testing::Test
{
  protected:
    static constexpr size_t kRegionBytes = 64 * 1024; // ~60 chunks

    void
    SetUp() override
    {
        PmDeviceConfig cfg;
        cfg.size = size_t{1} << 26;
        dev_ = std::make_unique<PmDevice>(cfg);
        region_ = dev_->mapRegion(kRegionBytes);
        log_ = std::make_unique<BookkeepingLog>();
        log_->attach(dev_.get(), region_, kRegionBytes,
                     /*interleaved=*/true, /*flush=*/true,
                     /*gc_threshold=*/0.5, /*create=*/true);
        log_->setRelocateFn([](void *owner, LogEntryRef ref) {
            static_cast<Owner *>(owner)->ref = ref;
        });
    }

    /** Reattach + replay into a map off->(type,size). */
    std::map<uint64_t, std::pair<LogType, uint64_t>>
    replayAll(BookkeepingLog &log)
    {
        std::map<uint64_t, std::pair<LogType, uint64_t>> out;
        log.replay([&](LogType type, uint64_t off, uint64_t size,
                       LogEntryRef) {
            out[off] = {type, size};
        });
        return out;
    }

    std::unique_ptr<PmDevice> dev_;
    uint64_t region_ = 0;
    std::unique_ptr<BookkeepingLog> log_;
};

TEST_F(LogFixture, AppendAndReplayRoundtrip)
{
    log_->append(kLogNormal, 1 << 20, 65536, nullptr);
    log_->append(kLogSlab, 2 << 20, kSlabSize, nullptr);
    EXPECT_EQ(log_->liveEntries(), 2u);

    BookkeepingLog fresh;
    fresh.attach(dev_.get(), region_, kRegionBytes, true, true, 0.5,
                 /*create=*/false);
    auto entries = replayAll(fresh);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[1 << 20].first, kLogNormal);
    EXPECT_EQ(entries[1 << 20].second, 65536u);
    EXPECT_EQ(entries[2 << 20].first, kLogSlab);
}

TEST_F(LogFixture, TombstoneRemovesEntryFromReplay)
{
    LogEntryRef a = log_->append(kLogNormal, 1 << 20, 4096, nullptr);
    log_->append(kLogNormal, 2 << 20, 4096, nullptr);
    log_->tombstone(a);
    EXPECT_EQ(log_->liveEntries(), 1u);

    BookkeepingLog fresh;
    fresh.attach(dev_.get(), region_, kRegionBytes, true, true, 0.5,
                 false);
    auto entries = replayAll(fresh);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries.count(1 << 20), 0u);
    EXPECT_EQ(entries.count(2 << 20), 1u);
}

TEST_F(LogFixture, ManyEntriesSpanChunks)
{
    for (uint64_t i = 0; i < 5 * kLogEntriesPerChunk; ++i)
        log_->append(kLogNormal, (i + 1) << 12, 4096, nullptr);
    EXPECT_GE(log_->activeChunks(), 5u);

    BookkeepingLog fresh;
    fresh.attach(dev_.get(), region_, kRegionBytes, true, true, 0.5,
                 false);
    EXPECT_EQ(replayAll(fresh).size(), 5 * kLogEntriesPerChunk);
}

TEST_F(LogFixture, FastGcRecyclesEmptyChunks)
{
    std::vector<LogEntryRef> refs;
    for (uint64_t i = 0; i < 4 * kLogEntriesPerChunk; ++i)
        refs.push_back(
            log_->append(kLogNormal, (i + 1) << 12, 4096, nullptr));
    size_t chunks_before = log_->activeChunks();

    // Kill everything in the first two chunks.
    for (unsigned i = 0; i < 2 * kLogEntriesPerChunk; ++i)
        log_->tombstone(refs[i]);

    // Appends eventually trigger fast GC (free list empty).
    uint64_t fast_before = log_->stats().fast_gcs;
    for (uint64_t i = 0; i < 8 * kLogEntriesPerChunk; ++i)
        log_->append(kLogNormal, (1000 + i) << 12, 4096, nullptr);
    EXPECT_GT(log_->stats().fast_gcs, fast_before);
    // Chunk count grows far less than the appended volume because
    // empties were recycled.
    EXPECT_LT(log_->activeChunks(), chunks_before + 9);
}

TEST_F(LogFixture, SlowGcCompactsAndRelocatesOwners)
{
    std::vector<std::unique_ptr<Owner>> owners;
    std::vector<LogEntryRef> refs;
    for (uint64_t i = 0; i < 3 * kLogEntriesPerChunk; ++i) {
        owners.push_back(std::make_unique<Owner>());
        owners.back()->ref = log_->append(
            kLogNormal, (i + 1) << 12, 4096, owners.back().get());
    }
    // Tombstone two thirds.
    for (size_t i = 0; i < owners.size(); ++i) {
        if (i % 3 != 0)
            log_->tombstone(owners[i]->ref);
    }
    size_t live = log_->liveEntries();

    log_->slowGc();
    EXPECT_EQ(log_->liveEntries(), live);
    EXPECT_LE(log_->activeChunks(), 2u) << "compacted";

    // Relocated refs must still resolve: replay and compare.
    BookkeepingLog fresh;
    fresh.attach(dev_.get(), region_, kRegionBytes, true, true, 0.5,
                 false);
    auto entries = replayAll(fresh);
    EXPECT_EQ(entries.size(), live);
    for (size_t i = 0; i < owners.size(); i += 3)
        EXPECT_EQ(entries.count((i + 1) << 12), 1u);

    // Tombstoning through a relocated ref still works.
    log_->tombstone(owners[0]->ref);
    EXPECT_EQ(log_->liveEntries(), live - 1);
}

TEST_F(LogFixture, SlowGcFlipsAltBit)
{
    auto *hdr = static_cast<LogHeader *>(dev_->at(region_));
    uint32_t alt0 = hdr->alt;
    log_->append(kLogNormal, 1 << 20, 4096, nullptr);
    log_->slowGc();
    EXPECT_NE(hdr->alt, alt0);
    log_->slowGc();
    EXPECT_EQ(hdr->alt, alt0);
}

TEST_F(LogFixture, InterleavedEntriesAvoidSameLine)
{
    dev_->model().reset();
    for (unsigned i = 0; i < 32; ++i)
        log_->append(kLogNormal, (i + 1) << 12, 4096, nullptr);
    auto c = dev_->flushCounts();
    // With 8 chunk stripes, consecutive entry flushes never reflush.
    EXPECT_EQ(c.reflush, 0u);

    // Sequential placement re-flushes heavily (8 entries per line).
    uint64_t region2 = dev_->mapRegion(kRegionBytes);
    BookkeepingLog seq;
    seq.attach(dev_.get(), region2, kRegionBytes, /*interleaved=*/false,
               true, 0.5, true);
    dev_->model().reset();
    for (unsigned i = 0; i < 32; ++i)
        seq.append(kLogNormal, (i + 1) << 12, 4096, nullptr);
    EXPECT_GT(dev_->flushCounts().reflush, 20u);
}

TEST_F(LogFixture, EntryPackingRoundtrip)
{
    // addr is 28 bits of 4 KB units (1 TB device) since the fold
    // checksum moved into bits [61:54].
    uint64_t e = logEntryPack(kLogSlab, 0x2345678ULL, 0x3abcdefULL);
    EXPECT_EQ(logEntryType(e), kLogSlab);
    EXPECT_EQ(logEntryAddr(e), 0x2345678ULL);
    EXPECT_EQ(logEntrySize(e), 0x3abcdefULL);
    EXPECT_TRUE(logEntryChecksumOk(e));

    // Any single flipped payload bit must fail verification, and a
    // zeroed slot never verifies (end-of-chunk sentinel).
    EXPECT_FALSE(logEntryChecksumOk(e ^ 1));
    EXPECT_FALSE(logEntryChecksumOk(e ^ (1ULL << 30)));
    EXPECT_FALSE(logEntryChecksumOk(0));
}

TEST_F(LogFixture, ReplayRecyclesUnreachableChunks)
{
    // Fill a few chunks, then mimic a crashed slow GC: carve chunks
    // that are never linked into the published list.
    for (uint64_t i = 0; i < 2 * kLogEntriesPerChunk; ++i)
        log_->append(kLogNormal, (i + 1) << 12, 4096, nullptr);

    BookkeepingLog fresh;
    fresh.attach(dev_.get(), region_, kRegionBytes, true, true, 0.5,
                 false);
    replayAll(fresh);
    // All carved chunks are either active or back on the free list:
    // appending many more entries must not exhaust the region early.
    for (uint64_t i = 0; i < 30 * kLogEntriesPerChunk; ++i) {
        LogEntryRef ref = fresh.append(kLogNormal, (5000 + i) << 12,
                                       4096, nullptr);
        fresh.tombstone(ref);
    }
    SUCCEED();
}

} // namespace
} // namespace nvalloc
