/**
 * @file
 * Graceful-degradation tests: heap, log, and thread-slot exhaustion
 * must surface as status codes — never aborts — and the heap must
 * remain fully usable (frees, then fresh allocations) afterwards.
 *
 * The degraded-mode state machine under test (see DESIGN.md):
 *
 *   Normal --(alloc fails fast path)--> Reclaiming --(retry ok)--> Normal
 *                                          |
 *                                          +--(retry fails)--> Exhausted
 *
 * plus the terminal Failed mode entered only at open time.
 */

#include <gtest/gtest.h>

#include <vector>

#include "nvalloc/nvalloc.h"

namespace nvalloc {
namespace {

NvAllocConfig
logConfig()
{
    NvAllocConfig cfg;
    cfg.consistency = Consistency::Log;
    return cfg;
}

// ---------------------------------------------------------------------
// Satellite 1: allocTo returns 0 on exhaustion; heap usable after.
// ---------------------------------------------------------------------

TEST(Exhaustion, LargeAllocExhaustsGracefullyAndRecovers)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{32} << 20; // tiny device
    PmDevice dev(dcfg);
    auto alloc_h = NvAlloc::openOrDie(dev, logConfig());
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();
    ASSERT_NE(ctx, nullptr);

    std::vector<uint64_t> offs;
    for (unsigned i = 0; i < 1000; ++i) {
        uint64_t off = alloc.allocOffset(*ctx, 1 << 20, nullptr);
        if (off == 0)
            break;
        offs.push_back(off);
    }
    ASSERT_FALSE(offs.empty());
    ASSERT_LT(offs.size(), 1000u) << "device never exhausted";

    // The failure is a status, not an abort, and is accounted.
    NvStatus why = alloc.lastStatus();
    EXPECT_TRUE(why == NvStatus::OutOfMemory ||
                why == NvStatus::RegionTableFull)
        << nvStatusName(why);
    EXPECT_EQ(alloc.mode(), HeapMode::Exhausted);
    EXPECT_GE(alloc.degradedStats().failed_allocs.load(), 1u);
    EXPECT_GE(alloc.degradedStats().reclaim_attempts.load(), 1u);

    // The heap stays usable for frees...
    for (uint64_t off : offs)
        EXPECT_EQ(alloc.freeOffset(*ctx, off, nullptr), NvStatus::Ok);

    // ...and for fresh allocations, returning the mode to Normal.
    uint64_t again = alloc.allocOffset(*ctx, 1 << 20, nullptr);
    EXPECT_NE(again, 0u);
    EXPECT_EQ(alloc.mode(), HeapMode::Normal);
    alloc.freeOffset(*ctx, again, nullptr);
    alloc.detachThread(ctx);
}

TEST(Exhaustion, SmallAllocExhaustsGracefullyAndRecovers)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{16} << 20;
    PmDevice dev(dcfg);
    auto alloc_h = NvAlloc::openOrDie(dev, logConfig());
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();
    ASSERT_NE(ctx, nullptr);

    std::vector<uint64_t> offs;
    for (unsigned i = 0; i < 100000; ++i) {
        uint64_t off = alloc.allocOffset(*ctx, 4096, nullptr);
        if (off == 0)
            break;
        offs.push_back(off);
    }
    ASSERT_FALSE(offs.empty());
    ASSERT_LT(offs.size(), 100000u) << "device never exhausted";
    EXPECT_EQ(alloc.mode(), HeapMode::Exhausted);
    EXPECT_GE(alloc.degradedStats().failed_allocs.load(), 1u);

    for (uint64_t off : offs)
        ASSERT_EQ(alloc.freeOffset(*ctx, off, nullptr), NvStatus::Ok);

    uint64_t again = alloc.allocOffset(*ctx, 4096, nullptr);
    EXPECT_NE(again, 0u);
    EXPECT_EQ(alloc.mode(), HeapMode::Normal);
    alloc.freeOffset(*ctx, again, nullptr);
    alloc.detachThread(ctx);
}

TEST(Exhaustion, UnserviceableSizesAreInvalidArgument)
{
    PmDevice dev;
    auto alloc_h = NvAlloc::openOrDie(dev);
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();
    ASSERT_NE(ctx, nullptr);

    EXPECT_EQ(alloc.allocOffset(*ctx, 0, nullptr), 0u);
    EXPECT_EQ(alloc.lastStatus(), NvStatus::InvalidArgument);

    // Beyond the log entry's representable size: refused up front,
    // without a reclamation attempt (retry is moot).
    uint64_t before = alloc.degradedStats().reclaim_attempts.load();
    EXPECT_EQ(alloc.allocOffset(*ctx, uint64_t{1} << 26, nullptr), 0u);
    EXPECT_EQ(alloc.lastStatus(), NvStatus::InvalidArgument);
    EXPECT_EQ(alloc.degradedStats().reclaim_attempts.load(), before);

    // The refusals left the heap fully usable.
    uint64_t off = alloc.allocOffset(*ctx, 256, nullptr);
    EXPECT_NE(off, 0u);
    alloc.freeOffset(*ctx, off, nullptr);
    alloc.detachThread(ctx);
}

// ---------------------------------------------------------------------
// Tentpole: the reclamation slow path (drain tcaches, force log GC /
// decay) runs before an allocation is failed, and a retry after it
// counts as a reclaim success.
// ---------------------------------------------------------------------

TEST(Exhaustion, ReclaimThenRetrySucceedsViaTcacheDrain)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{32} << 20;
    PmDevice dev(dcfg);
    NvAllocConfig cfg = logConfig();
    cfg.slab_morphing = false; // frees park in the tcache (lent)
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();
    ASSERT_NE(ctx, nullptr);

    // Fill the device with one size class.
    std::vector<uint64_t> offs;
    for (unsigned i = 0; i < 100000; ++i) {
        uint64_t off = alloc.allocOffset(*ctx, 16 * 1024, nullptr);
        if (off == 0)
            break;
        offs.push_back(off);
    }
    ASSERT_GT(offs.size(), 16u);
    ASSERT_LT(offs.size(), 100000u) << "device never exhausted";

    // Return the last batch of blocks. With morphing disabled they
    // sit *lent* in this thread's tcache, pinning their slabs: the
    // heap now has free memory, but none that an arena refill or the
    // large allocator can see.
    for (unsigned i = 0; i < 16; ++i) {
        ASSERT_EQ(alloc.freeOffset(*ctx, offs.back(), nullptr),
                  NvStatus::Ok);
        offs.pop_back();
    }

    // A different size class needs a fresh slab, which only exists
    // after the reclamation slow path drains the tcache and releases
    // the emptied slabs back to the large allocator. The allocation
    // must succeed on the internal retry — exercising
    // Normal -> Reclaiming -> Normal, not -> Exhausted.
    uint64_t succ0 = alloc.degradedStats().reclaim_successes.load();
    uint64_t off = alloc.allocOffset(*ctx, 64, nullptr);
    EXPECT_NE(off, 0u) << nvStatusName(alloc.lastStatus());
    EXPECT_GE(alloc.degradedStats().reclaim_successes.load(), succ0 + 1);
    EXPECT_EQ(alloc.mode(), HeapMode::Normal);

    alloc.freeOffset(*ctx, off, nullptr);
    for (uint64_t o : offs)
        ASSERT_EQ(alloc.freeOffset(*ctx, o, nullptr), NvStatus::Ok);
    alloc.detachThread(ctx);
}

TEST(Exhaustion, LogPressureChurnNeverFailsAllocations)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{64} << 20;
    PmDevice dev(dcfg);
    NvAllocConfig cfg = logConfig();
    cfg.log_file_bytes = 64 * 1024; // ~60 chunks; fills quickly
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();
    ASSERT_NE(ctx, nullptr);

    // Churn large extents: every pair appends an allocation entry and
    // a tombstone, so the log cycles through full many times over.
    // The allocator's GC layers (fast GC, opportunistic slow GC, and
    // the reclamation slow path as last resort) must absorb all of it
    // without failing a single allocation.
    for (unsigned i = 0; i < 12000; ++i) {
        uint64_t off = alloc.allocOffset(*ctx, 32 * 1024, nullptr);
        ASSERT_NE(off, 0u) << "iteration " << i << ": "
                           << nvStatusName(alloc.lastStatus());
        ASSERT_EQ(alloc.freeOffset(*ctx, off, nullptr), NvStatus::Ok);
    }
    EXPECT_EQ(alloc.degradedStats().failed_allocs.load(), 0u);
    EXPECT_EQ(alloc.mode(), HeapMode::Normal);
    alloc.detachThread(ctx);
}

TEST(Exhaustion, LogFullOfLiveEntriesFailsThenFreesUnblock)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{256} << 20;
    PmDevice dev(dcfg);
    NvAllocConfig cfg = logConfig();
    cfg.log_file_bytes = 16 * 1024; // ~15 chunks, ~1.9k entries
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();
    ASSERT_NE(ctx, nullptr);

    // All-live entries: slow GC has nothing to drop, so exhaustion is
    // real and the allocation must fail with a status.
    std::vector<uint64_t> offs;
    for (unsigned i = 0; i < 4000; ++i) {
        uint64_t off = alloc.allocOffset(*ctx, 32 * 1024, nullptr);
        if (off == 0)
            break;
        offs.push_back(off);
    }
    ASSERT_FALSE(offs.empty());
    ASSERT_LT(offs.size(), 4000u) << "log never exhausted";
    EXPECT_EQ(alloc.lastStatus(), NvStatus::LogExhausted);
    EXPECT_EQ(alloc.mode(), HeapMode::Exhausted);

    // Frees still work (a full log only costs crash-journaling of the
    // deletion), and afterwards allocation resumes.
    for (uint64_t off : offs)
        ASSERT_EQ(alloc.freeOffset(*ctx, off, nullptr), NvStatus::Ok);
    uint64_t again = alloc.allocOffset(*ctx, 32 * 1024, nullptr);
    EXPECT_NE(again, 0u);
    EXPECT_EQ(alloc.mode(), HeapMode::Normal);
    alloc.freeOffset(*ctx, again, nullptr);
    alloc.detachThread(ctx);
}

// ---------------------------------------------------------------------
// Hostile frees against an exhausted heap: the hardened validator
// keeps rejecting bad frees with a status while the heap is degraded,
// and valid frees still recover it.
// ---------------------------------------------------------------------

TEST(Exhaustion, HostileFreesWhileExhaustedAreRejectedAndHeapRecovers)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{16} << 20;
    PmDevice dev(dcfg);
    NvAllocConfig cfg = logConfig();
    cfg.redzone_canaries = true;
    cfg.quarantine_depth = 8;
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();
    ASSERT_NE(ctx, nullptr);

    std::vector<uint64_t> offs;
    for (unsigned i = 0; i < 100000; ++i) {
        uint64_t off = alloc.allocOffset(*ctx, 4096, nullptr);
        if (off == 0)
            break;
        offs.push_back(off);
    }
    ASSERT_FALSE(offs.empty());
    ASSERT_LT(offs.size(), 100000u) << "device never exhausted";
    ASSERT_EQ(alloc.mode(), HeapMode::Exhausted);

    // Bad frees while exhausted: rejected, classified, no abort, and
    // the heap does not leave Exhausted on their account.
    const HardeningStats &hs = alloc.hardening().stats();
    EXPECT_EQ(alloc.freeOffset(*ctx, offs.front() + 8, nullptr),
              NvStatus::InvalidFree);
    ASSERT_EQ(alloc.freeOffset(*ctx, offs.back(), nullptr), NvStatus::Ok);
    uint64_t stale = offs.back();
    offs.pop_back();
    EXPECT_EQ(alloc.freeOffset(*ctx, stale, nullptr),
              NvStatus::InvalidFree);
    EXPECT_GE(hs.misaligned_frees.load(), 1u);
    EXPECT_GE(hs.double_frees.load(), 1u);
    EXPECT_EQ(alloc.mode(), HeapMode::Exhausted);

    // Valid frees still drain the heap and allocation resumes.
    for (uint64_t off : offs)
        ASSERT_EQ(alloc.freeOffset(*ctx, off, nullptr), NvStatus::Ok);
    uint64_t again = alloc.allocOffset(*ctx, 4096, nullptr);
    EXPECT_NE(again, 0u);
    EXPECT_EQ(alloc.mode(), HeapMode::Normal);
    alloc.freeOffset(*ctx, again, nullptr);
    alloc.detachThread(ctx);
}

// ---------------------------------------------------------------------
// Satellite 2: thread-slot exhaustion returns nullptr, not an abort.
// ---------------------------------------------------------------------

TEST(Exhaustion, AttachSlotExhaustionReturnsNull)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{256} << 20;
    PmDevice dev(dcfg);
    auto alloc_h = NvAlloc::openOrDie(dev);
    NvAlloc &alloc = *alloc_h;

    std::vector<ThreadCtx *> ctxs;
    for (unsigned i = 0; i < kMaxThreads; ++i) {
        ThreadCtx *ctx = alloc.attachThread();
        ASSERT_NE(ctx, nullptr) << "slot " << i;
        ctxs.push_back(ctx);
    }

    // Slot 129: refused with a status, heap untouched.
    EXPECT_EQ(alloc.attachThread(), nullptr);
    EXPECT_EQ(alloc.lastStatus(), NvStatus::TooManyThreads);
    EXPECT_GE(alloc.degradedStats().failed_attaches.load(), 1u);

    // Detaching one frees a slot for a fresh attach.
    alloc.detachThread(ctxs.back());
    ctxs.pop_back();
    ThreadCtx *fresh = alloc.attachThread();
    EXPECT_NE(fresh, nullptr);
    if (fresh)
        ctxs.push_back(fresh);

    for (ThreadCtx *ctx : ctxs)
        alloc.detachThread(ctx);
}

} // namespace
} // namespace nvalloc
