/**
 * @file
 * Crash and recovery tests (paper §4.4).
 *
 * The shadow-mode device discards every store that was never
 * persisted, so destroying an NvAlloc without its destructor running
 * (we simulate by calling dev.crash() and abandoning the instance)
 * exercises exactly the torn states a power cut leaves. Recovery must
 * (a) resurrect all committed objects, (b) leak nothing, and (c) keep
 * the heap allocatable.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "nvalloc/nvalloc.h"
#include "test_util.h"

namespace nvalloc {
namespace {

PmDeviceConfig
shadowCfg()
{
    PmDeviceConfig cfg;
    cfg.size = size_t{1} << 30;
    cfg.shadow = true;
    return cfg;
}

TEST(Recovery, NormalShutdownRebuildsEverything)
{
    PmDevice dev(shadowCfg());
    std::vector<uint64_t> offs;
    {
        auto alloc_h = NvAlloc::openOrDie(dev);
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        uint64_t *root = alloc.rootWord(0);
        for (int i = 0; i < 300; ++i) {
            alloc.mallocTo(*ctx, 64 + (i % 200), root);
            offs.push_back(*root);
            std::memset(alloc.at(*root), i & 0xff, 64);
        }
        // A large extent too.
        alloc.mallocTo(*ctx, 256 * 1024, alloc.rootWord(1));
        alloc.detachThread(ctx);
    } // clean shutdown

    auto again_h = NvAlloc::openOrDie(dev);
    NvAlloc &again = *again_h;
    EXPECT_TRUE(again.lastRecovery().performed);
    EXPECT_FALSE(again.lastRecovery().after_failure);
    EXPECT_GE(again.lastRecovery().slabs_rebuilt, 1u);
    EXPECT_EQ(liveSmallBlocks(again), 300u);

    // Every committed block must still be allocated and freeable.
    ThreadCtx *ctx = again.attachThread();
    for (uint64_t off : offs)
        again.freeOffset(*ctx, off, nullptr);
    again.freeFrom(*ctx, again.rootWord(1));
    EXPECT_EQ(liveSmallBlocks(again), 0u);
    again.detachThread(ctx);
}

TEST(Recovery, CrashRecoveryLogVariantResolvesInFlightOps)
{
    PmDevice dev(shadowCfg());
    uint64_t committed = 0;
    {
        auto alloc_h = NvAlloc::openOrDie(dev);
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        uint64_t *root = alloc.rootWord(0);
        alloc.mallocTo(*ctx, 128, root);
        committed = *root;
        // Crash: no shutdown, no detach.
        alloc.simulateCrash();
        // Abandon `alloc` without running ~NvAlloc side effects
        // mattering — the device already rolled back.
    }

    auto again_h = NvAlloc::openOrDie(dev);
    NvAlloc &again = *again_h;
    EXPECT_TRUE(again.lastRecovery().performed);
    EXPECT_TRUE(again.lastRecovery().after_failure);

    // The committed alloc survived: root word points at it.
    EXPECT_EQ(*again.rootWord(0), committed);
    // And it is marked allocated.
    VSlab *slab = static_cast<VSlab *>(again.slabRadix().get(committed));
    ASSERT_NE(slab, nullptr);
    EXPECT_TRUE(slab->isAllocated(slab->blockIndexOf(committed)));

    // Heap remains usable.
    ThreadCtx *ctx = again.attachThread();
    uint64_t off = again.allocOffset(*ctx, 64, nullptr);
    EXPECT_NE(off, 0u);
    again.freeOffset(*ctx, off, nullptr);
    again.freeFrom(*ctx, again.rootWord(0));
    again.detachThread(ctx);
}

TEST(Recovery, LogVariantLeaksNothingOnVolatileAttach)
{
    // An allocation whose attach word was never published persistently
    // must be rolled back by WAL replay.
    PmDevice dev(shadowCfg());
    {
        auto alloc_h = NvAlloc::openOrDie(dev);
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        uint64_t volatile_word = 0; // DRAM attach: commit never lands
        alloc.allocOffset(*ctx, 128, &volatile_word);
        ASSERT_NE(volatile_word, 0u);
        alloc.simulateCrash();
        (void)ctx;
    }

    auto again_h = NvAlloc::openOrDie(dev);
    NvAlloc &again = *again_h;
    EXPECT_TRUE(again.lastRecovery().after_failure);
    EXPECT_EQ(liveSmallBlocks(again), 0u) << "torn alloc leaked";
    EXPECT_GE(again.lastRecovery().wal_undos, 1u);
}

TEST(Recovery, GcVariantCollectsUnreachableBlocks)
{
    PmDevice dev(shadowCfg());
    NvAllocConfig cfg;
    cfg.consistency = Consistency::Gc;
    uint64_t reachable = 0;
    {
        auto alloc_h = NvAlloc::openOrDie(dev, cfg);
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        uint64_t *root = alloc.rootWord(0);

        // One reachable chain: root -> A -> B (offsets stored in the
        // first word of each block).
        void *a = alloc.mallocTo(*ctx, 64, root);
        reachable = *root;
        uint64_t b_off = alloc.allocOffset(*ctx, 64, nullptr);
        *static_cast<uint64_t *>(a) = b_off;
        dev.persistFence(a, 8, TimeKind::FlushData);

        // And three unreachable (leaked) blocks. The GC variant never
        // flushes small bitmaps, so force them out (as a cache
        // eviction on real hardware would) to create durable leaks.
        for (int i = 0; i < 3; ++i)
            alloc.allocOffset(*ctx, 64, nullptr);
        for (unsigned i = 0; i < alloc.numArenas(); ++i)
            alloc.arena(i).persistAllBitmaps();

        alloc.simulateCrash();
    }

    auto again_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &again = *again_h;
    EXPECT_TRUE(again.lastRecovery().after_failure);
    // GC kept exactly the two reachable blocks.
    EXPECT_EQ(liveSmallBlocks(again), 2u);
    EXPECT_GE(again.lastRecovery().gc_reclaimed_blocks, 3u);
    EXPECT_EQ(*again.rootWord(0), reachable);
}

TEST(Recovery, RepeatedCrashRecoverCycles)
{
    PmDevice dev(shadowCfg());
    std::vector<uint64_t> survivors;

    for (int round = 0; round < 5; ++round) {
        auto alloc_h = NvAlloc::openOrDie(dev);
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();

        // All previous survivors must still be intact.
        for (size_t i = 0; i < survivors.size(); ++i) {
            EXPECT_TRUE(blockIsLive(alloc, survivors[i]))
                << "round " << round << " block " << i;
        }

        // Add 50 more committed blocks, attached persistently through
        // root word 0 (we only keep the offsets).
        uint64_t *root = alloc.rootWord(0);
        for (int i = 0; i < 50; ++i) {
            alloc.mallocTo(*ctx, 64 + round * 32, root);
            survivors.push_back(*root);
        }
        alloc.simulateCrash();
    }

    auto final_alloc_h = NvAlloc::openOrDie(dev);
    NvAlloc &final_alloc = *final_alloc_h;
    EXPECT_EQ(liveSmallBlocks(final_alloc), survivors.size());
}

TEST(Recovery, LargeExtentsSurviveCrash)
{
    PmDevice dev(shadowCfg());
    uint64_t big = 0;
    {
        auto alloc_h = NvAlloc::openOrDie(dev);
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        alloc.mallocTo(*ctx, 512 * 1024, alloc.rootWord(0));
        big = *alloc.rootWord(0);
        std::memset(alloc.at(big), 0x77, 512 * 1024);
        dev.persistFence(alloc.at(big), 512 * 1024, TimeKind::FlushData);
        alloc.simulateCrash();
    }

    auto again_h = NvAlloc::openOrDie(dev);
    NvAlloc &again = *again_h;
    Veh *veh = again.large().findVeh(big);
    ASSERT_NE(veh, nullptr);
    EXPECT_EQ(veh->state, Veh::State::Activated);
    auto *bytes = static_cast<unsigned char *>(again.at(big));
    EXPECT_EQ(bytes[0], 0x77);
    EXPECT_EQ(bytes[512 * 1024 - 1], 0x77);

    ThreadCtx *ctx = again.attachThread();
    again.freeFrom(*ctx, again.rootWord(0));
    again.detachThread(ctx);
}

TEST(Recovery, MorphFlagUndoneAfterCrash)
{
    // Force a slab to morph-eligibility, then crash mid-run and check
    // the slab comes back consistent (flag == 0) in every case.
    PmDevice dev(shadowCfg());
    {
        NvAllocConfig cfg;
        cfg.morph_threshold = 0.5;
        auto alloc_h = NvAlloc::openOrDie(dev, cfg);
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        uint64_t *root = alloc.rootWord(0);

        // Fill a class-4 slab sparsely, then demand another class so
        // morphing kicks in.
        std::vector<uint64_t> offs;
        for (int i = 0; i < 64; ++i) {
            alloc.mallocTo(*ctx, 64, root);
            offs.push_back(*root);
        }
        for (size_t i = 0; i < offs.size(); i += 2)
            alloc.freeOffset(*ctx, offs[i], nullptr);
        // Trigger allocations of another class.
        for (int i = 0; i < 32; ++i)
            alloc.mallocTo(*ctx, 1024, root);
        alloc.simulateCrash();
    }

    auto again_h = NvAlloc::openOrDie(dev);
    NvAlloc &again = *again_h;
    for (unsigned i = 0; i < again.numArenas(); ++i) {
        again.arena(i).forEachSlab([&](VSlab *slab) {
            EXPECT_EQ(slab->header()->flag, 0);
        });
    }
}

} // namespace
} // namespace nvalloc
