/**
 * @file
 * Transaction-layer tests (DESIGN.md §11): the txBegin/txAlloc/txFree/
 * txWrite/txCommit/txAbort surface, its interaction with the plain
 * fast path and the hardened free validator, the auditor's tx
 * invariants, and — the centerpiece — an every-point crash sweep: for
 * a matrix of transaction shapes, a crash is armed at the 1st, 2nd,
 * 3rd, ... flush (and fence) of the transaction section until the
 * section completes, and at EVERY point the recovered heap must show
 * the transaction all-or-nothing: every staged effect visible, or
 * none, never a mix — plus no leak and a violation-free audit.
 *
 * Like the fault-injection sweep, the tests honour
 * NVALLOC_MAINTENANCE=off|manual|thread and NVALLOC_HARDENING=full
 * (canaries + delayed-reuse quarantine), so the CI tx legs prove the
 * protocol under a racing maintenance worker and full hardening.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "nvalloc/auditor.h"
#include "nvalloc/nvalloc.h"
#include "nvalloc/wal.h"
#include "test_util.h"

namespace nvalloc {
namespace {

NvAllocConfig
sweepConfig()
{
    NvAllocConfig cfg;
    const char *env = std::getenv("NVALLOC_MAINTENANCE");
    if (env && std::strcmp(env, "thread") == 0)
        cfg.maintenance_mode = MaintenanceMode::Thread;
    else if (env && std::strcmp(env, "manual") == 0)
        cfg.maintenance_mode = MaintenanceMode::Manual;
    const char *hard = std::getenv("NVALLOC_HARDENING");
    if (hard && std::strcmp(hard, "full") == 0) {
        cfg.redzone_canaries = true;
        cfg.quarantine_depth = 16;
    }
    return cfg;
}

/** Is the large extent at `off` currently activated (non-slab)? */
bool
largeIsLive(NvAlloc &alloc, uint64_t off)
{
    Veh *veh = alloc.large().findVeh(off);
    return veh && veh->off == off && !veh->is_slab &&
           veh->state == Veh::State::Activated;
}

uint64_t
ctlValue(NvAlloc &alloc, const char *name)
{
    uint64_t v = ~uint64_t{0};
    EXPECT_EQ(alloc.ctlRead(name, &v), NvStatus::Ok) << name;
    return v;
}

// ---------------------------------------------------------------------
// Functional surface
// ---------------------------------------------------------------------

class TxFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PmDeviceConfig dcfg;
        dcfg.size = size_t{1} << 28;
        dcfg.shadow = true;
        dev_ = std::make_unique<PmDevice>(dcfg);
        alloc_ = NvAlloc::openOrDie(*dev_, sweepConfig());
        ctx_ = alloc_->attachThread();
        ASSERT_NE(ctx_, nullptr);
    }

    void
    TearDown() override
    {
        if (ctx_ && alloc_)
            alloc_->detachThread(ctx_);
        alloc_.reset();
    }

    std::unique_ptr<PmDevice> dev_;
    std::unique_ptr<NvAlloc> alloc_;
    ThreadCtx *ctx_ = nullptr;
};

TEST_F(TxFixture, CommitPublishesEveryOpAtomically)
{
    // Pre-state: one plain block to free inside the tx, and a
    // persistent word for txWrite.
    uint64_t pre = alloc_->allocOffset(*ctx_, 64, alloc_->rootWord(0));
    ASSERT_NE(pre, 0u);
    uint64_t *w = alloc_->rootWord(1);
    *w = 0x1111;
    dev_->persistFence(w, 8, TimeKind::FlushData);

    ASSERT_EQ(alloc_->txBegin(*ctx_), NvStatus::Ok);
    uint64_t small = alloc_->txAlloc(*ctx_, 48, alloc_->rootWord(2));
    ASSERT_NE(small, 0u);
    uint64_t large = alloc_->txAlloc(*ctx_, 100 * 1024,
                                     alloc_->rootWord(3));
    ASSERT_NE(large, 0u);
    EXPECT_TRUE(blockIsLive(*alloc_, small));
    // Not yet published: the attach words still read zero.
    EXPECT_EQ(*alloc_->rootWord(2), 0u);
    EXPECT_EQ(*alloc_->rootWord(3), 0u);

    ASSERT_EQ(alloc_->txFree(*ctx_, pre), NvStatus::Ok);
    EXPECT_TRUE(blockIsLive(*alloc_, pre)) << "free deferred to commit";
    ASSERT_EQ(alloc_->txWrite(*ctx_, alloc_->rootWord(0), 0),
              NvStatus::Ok);
    ASSERT_EQ(alloc_->txWrite(*ctx_, w, 0x2222), NvStatus::Ok);
    EXPECT_EQ(*w, 0x2222u) << "txWrite lands in place";

    ASSERT_EQ(alloc_->txCommit(*ctx_), NvStatus::Ok);
    EXPECT_EQ(*alloc_->rootWord(2), small);
    EXPECT_EQ(*alloc_->rootWord(3), large);
    EXPECT_EQ(*alloc_->rootWord(0), 0u);
    EXPECT_FALSE(blockIsLive(*alloc_, pre)) << "deferred free applied";
    EXPECT_TRUE(blockIsLive(*alloc_, small));
    EXPECT_TRUE(largeIsLive(*alloc_, large));

    AuditReport rep = HeapAuditor(*alloc_).audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();
    EXPECT_EQ(ctlValue(*alloc_, "stats.tx.commits"), 1u);
    EXPECT_EQ(ctlValue(*alloc_, "stats.tx.staged_blocks"), 0u);
}

TEST_F(TxFixture, AbortRollsBackEveryOp)
{
    uint64_t pre = alloc_->allocOffset(*ctx_, 64, alloc_->rootWord(0));
    ASSERT_NE(pre, 0u);
    uint64_t *w = alloc_->rootWord(1);
    *w = 0x1111;
    dev_->persistFence(w, 8, TimeKind::FlushData);
    uint64_t live_before = liveSmallBlocks(*alloc_);

    ASSERT_EQ(alloc_->txBegin(*ctx_), NvStatus::Ok);
    uint64_t small = alloc_->txAlloc(*ctx_, 48, alloc_->rootWord(2));
    ASSERT_NE(small, 0u);
    uint64_t large = alloc_->txAlloc(*ctx_, 100 * 1024,
                                     alloc_->rootWord(3));
    ASSERT_NE(large, 0u);
    ASSERT_EQ(alloc_->txFree(*ctx_, pre), NvStatus::Ok);
    ASSERT_EQ(alloc_->txWrite(*ctx_, w, 0x2222), NvStatus::Ok);
    ASSERT_EQ(alloc_->txAbort(*ctx_), NvStatus::Ok);

    EXPECT_EQ(*alloc_->rootWord(2), 0u);
    EXPECT_EQ(*alloc_->rootWord(3), 0u);
    EXPECT_EQ(*w, 0x1111u) << "txWrite rolled back";
    EXPECT_TRUE(blockIsLive(*alloc_, pre)) << "staged free discarded";
    EXPECT_FALSE(blockIsLive(*alloc_, small));
    EXPECT_FALSE(largeIsLive(*alloc_, large));
    EXPECT_EQ(liveSmallBlocks(*alloc_), live_before);

    AuditReport rep = HeapAuditor(*alloc_).audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();
    EXPECT_EQ(ctlValue(*alloc_, "stats.tx.aborts"), 1u);
    EXPECT_EQ(ctlValue(*alloc_, "stats.tx.staged_blocks"), 0u);
}

TEST_F(TxFixture, EmptyTransactionCommitsAndAborts)
{
    ASSERT_EQ(alloc_->txBegin(*ctx_), NvStatus::Ok);
    EXPECT_EQ(alloc_->txCommit(*ctx_), NvStatus::Ok);
    ASSERT_EQ(alloc_->txBegin(*ctx_), NvStatus::Ok);
    EXPECT_EQ(alloc_->txAbort(*ctx_), NvStatus::Ok);
    EXPECT_EQ(ctlValue(*alloc_, "stats.tx.begins"), 2u);
}

TEST_F(TxFixture, SurfaceRejectsMisuse)
{
    // Ops and commit/abort require an open tx.
    EXPECT_EQ(alloc_->txCommit(*ctx_), NvStatus::InvalidArgument);
    EXPECT_EQ(alloc_->txAbort(*ctx_), NvStatus::InvalidArgument);
    EXPECT_EQ(alloc_->txAlloc(*ctx_, 64, nullptr), 0u);
    EXPECT_EQ(alloc_->txFree(*ctx_, 4096), NvStatus::InvalidArgument);
    EXPECT_EQ(alloc_->txWrite(*ctx_, alloc_->rootWord(0), 1),
              NvStatus::InvalidArgument);

    ASSERT_EQ(alloc_->txBegin(*ctx_), NvStatus::Ok);
    // Nested begin.
    EXPECT_EQ(alloc_->txBegin(*ctx_), NvStatus::InvalidArgument);
    // txWrite target validation: null, volatile, misaligned.
    uint64_t volatile_word = 0;
    EXPECT_EQ(alloc_->txWrite(*ctx_, nullptr, 1),
              NvStatus::InvalidArgument);
    EXPECT_EQ(alloc_->txWrite(*ctx_, &volatile_word, 1),
              NvStatus::InvalidArgument);
    auto *mis = reinterpret_cast<uint64_t *>(
        static_cast<char *>(alloc_->at(kCacheLine)) + 4);
    EXPECT_EQ(alloc_->txWrite(*ctx_, mis, 1), NvStatus::InvalidArgument);
    // Zero-size tx alloc.
    EXPECT_EQ(alloc_->txAlloc(*ctx_, 0, nullptr), 0u);
    ASSERT_EQ(alloc_->txAbort(*ctx_), NvStatus::Ok);
    EXPECT_GE(ctlValue(*alloc_, "stats.tx.rejected"), 7u);
}

TEST_F(TxFixture, OversizeTransactionRefused)
{
    ASSERT_EQ(alloc_->txBegin(*ctx_), NvStatus::Ok);
    for (unsigned i = 0; i < kTxMaxOps; ++i)
        ASSERT_EQ(alloc_->txWrite(*ctx_, alloc_->rootWord(0), i),
                  NvStatus::Ok)
            << i;
    EXPECT_EQ(alloc_->txWrite(*ctx_, alloc_->rootWord(0), 99),
              NvStatus::InvalidArgument);
    EXPECT_EQ(alloc_->txAlloc(*ctx_, 64, nullptr), 0u);
    EXPECT_EQ(ctlValue(*alloc_, "stats.tx.oversize"), 2u);
    ASSERT_EQ(alloc_->txAbort(*ctx_), NvStatus::Ok);
    EXPECT_EQ(*alloc_->rootWord(0), 0u) << "all writes rolled back";
}

TEST_F(TxFixture, PlainOpsRejectedWhileTxOpen)
{
    uint64_t pre = alloc_->allocOffset(*ctx_, 64, nullptr);
    ASSERT_NE(pre, 0u);
    ASSERT_EQ(alloc_->txBegin(*ctx_), NvStatus::Ok);
    EXPECT_EQ(alloc_->allocOffset(*ctx_, 64, nullptr), 0u);
    EXPECT_EQ(alloc_->lastStatus(), NvStatus::InvalidArgument);
    EXPECT_EQ(alloc_->freeOffset(*ctx_, pre, nullptr),
              NvStatus::InvalidArgument);
    EXPECT_EQ(ctlValue(*alloc_, "stats.tx.plain_ops_rejected"), 2u);
    ASSERT_EQ(alloc_->txCommit(*ctx_), NvStatus::Ok);
    // Resolved: the plain path works again.
    EXPECT_EQ(alloc_->freeOffset(*ctx_, pre, nullptr), NvStatus::Ok);
}

TEST_F(TxFixture, StagedBlockRejectsPlainFreeFromOtherThread)
{
    ThreadCtx *other = alloc_->attachThread();
    ASSERT_NE(other, nullptr);

    uint64_t pre = alloc_->allocOffset(*ctx_, 64, nullptr);
    ASSERT_NE(pre, 0u);
    ASSERT_EQ(alloc_->txBegin(*ctx_), NvStatus::Ok);
    ASSERT_EQ(alloc_->txFree(*ctx_, pre), NvStatus::Ok);

    // The tx-freed block is staged: a racing plain free from another
    // thread is rejected by the ordered validator with its own kind.
    EXPECT_EQ(alloc_->freeOffset(*other, pre, nullptr),
              NvStatus::InvalidFree);
    EXPECT_EQ(ctlValue(*alloc_, "stats.hardening.tx_staged_frees"), 1u);

    // Same for a tx-allocated (unpublished) block.
    uint64_t fresh = alloc_->txAlloc(*ctx_, 64, nullptr);
    ASSERT_NE(fresh, 0u);
    EXPECT_EQ(alloc_->freeOffset(*other, fresh, nullptr),
              NvStatus::InvalidFree);
    EXPECT_EQ(ctlValue(*alloc_, "stats.hardening.tx_staged_frees"), 2u);

    // Double-stage: the same block cannot be tx-freed twice.
    EXPECT_EQ(alloc_->txFree(*ctx_, pre), NvStatus::InvalidFree);

    ASSERT_EQ(alloc_->txCommit(*ctx_), NvStatus::Ok);
    EXPECT_FALSE(blockIsLive(*alloc_, pre));
    alloc_->detachThread(other);
}

TEST_F(TxFixture, TxFreeValidatesLikePlainFree)
{
    ASSERT_EQ(alloc_->txBegin(*ctx_), NvStatus::Ok);
    // Wild and misaligned targets — rejected, nothing staged, nothing
    // journaled.
    EXPECT_EQ(alloc_->txFree(*ctx_, dev_->size() + 64),
              NvStatus::InvalidFree);
    uint64_t blk = alloc_->txAlloc(*ctx_, 64, nullptr);
    ASSERT_NE(blk, 0u);
    EXPECT_EQ(alloc_->txFree(*ctx_, blk + 8), NvStatus::InvalidFree);
    ASSERT_EQ(alloc_->txAbort(*ctx_), NvStatus::Ok);
    EXPECT_EQ(ctlValue(*alloc_, "stats.tx.staged_blocks"), 0u);

    AuditReport rep = HeapAuditor(*alloc_).audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();
}

TEST_F(TxFixture, DetachAbortsOpenTransaction)
{
    ThreadCtx *t = alloc_->attachThread();
    ASSERT_NE(t, nullptr);
    ASSERT_EQ(alloc_->txBegin(*t), NvStatus::Ok);
    uint64_t blk = alloc_->txAlloc(*t, 64, alloc_->rootWord(0));
    ASSERT_NE(blk, 0u);
    alloc_->detachThread(t);
    EXPECT_EQ(*alloc_->rootWord(0), 0u);
    EXPECT_FALSE(blockIsLive(*alloc_, blk));
    EXPECT_EQ(ctlValue(*alloc_, "stats.tx.aborts"), 1u);
    EXPECT_EQ(ctlValue(*alloc_, "stats.tx.open"), 0u);
}

TEST_F(TxFixture, FastPathJournalCostUnchanged)
{
    // The non-tx fast path must stay at exactly one WAL entry (one
    // flush) per plain alloc and per plain free; a tx op costs the
    // same one entry, plus two control records for the whole group:
    // the commit mark and, after the apply loop, the applied seal
    // that keeps recovery from redoing an already-applied tx. The
    // group cost is O(1), not O(ops).
    uint64_t pre = alloc_->allocOffset(*ctx_, 64, nullptr);
    ASSERT_NE(pre, 0u);
    uint64_t s0 = ctx_->wal.sequence();
    uint64_t a = alloc_->allocOffset(*ctx_, 64, nullptr);
    ASSERT_NE(a, 0u);
    EXPECT_EQ(ctx_->wal.sequence(), s0 + 1) << "plain alloc = 1 entry";
    EXPECT_EQ(alloc_->freeOffset(*ctx_, a, nullptr), NvStatus::Ok);
    EXPECT_EQ(ctx_->wal.sequence(), s0 + 2) << "plain free = 1 entry";

    ASSERT_EQ(alloc_->txBegin(*ctx_), NvStatus::Ok);
    EXPECT_EQ(ctx_->wal.sequence(), s0 + 2) << "begin journals nothing";
    uint64_t b = alloc_->txAlloc(*ctx_, 64, nullptr);
    ASSERT_NE(b, 0u);
    EXPECT_EQ(ctx_->wal.sequence(), s0 + 3) << "tx alloc = 1 entry";
    ASSERT_EQ(alloc_->txFree(*ctx_, pre), NvStatus::Ok);
    EXPECT_EQ(ctx_->wal.sequence(), s0 + 4) << "tx free = 1 entry";
    ASSERT_EQ(alloc_->txCommit(*ctx_), NvStatus::Ok);
    EXPECT_EQ(ctx_->wal.sequence(), s0 + 6)
        << "commit = commit mark + applied seal, apply journals nothing";
}

TEST_F(TxFixture, DegradedHeapRejectsTx)
{
    // A Failed-mode heap must reject tx entry with InvalidArgument
    // (errno contract: EINVAL, not ECORRUPT) and touch nothing.
    alloc_->detachThread(ctx_);
    ctx_ = nullptr;
    alloc_->dirtyRestart(); // force the recovery path on reopen
    alloc_.reset();

    // Corrupt the superblock body so the reopen degrades.
    auto *sb_bytes = static_cast<uint8_t *>(dev_->at(0));
    sb_bytes[16] ^= 0xff;
    auto degraded_h = NvAlloc::openOrDie(*dev_, sweepConfig());
    NvAlloc &degraded = *degraded_h;
    ASSERT_EQ(degraded.openStatus(), NvStatus::CorruptMetadata);
    EXPECT_EQ(degraded.txRejected(), NvStatus::InvalidArgument);
    EXPECT_EQ(degraded.lastStatus(), NvStatus::InvalidArgument);
    EXPECT_GE(ctlValue(degraded, "stats.tx.rejected"), 1u);
}

// ---------------------------------------------------------------------
// Auditor: tx invariants
// ---------------------------------------------------------------------

TEST_F(TxFixture, LiveOpenTransactionAuditsClean)
{
    ASSERT_EQ(alloc_->txBegin(*ctx_), NvStatus::Ok);
    uint64_t blk = alloc_->txAlloc(*ctx_, 64, alloc_->rootWord(0));
    ASSERT_NE(blk, 0u);
    ASSERT_EQ(alloc_->txWrite(*ctx_, alloc_->rootWord(1), 7),
              NvStatus::Ok);

    HeapAuditor auditor(*alloc_);
    AuditReport rep = auditor.audit();
    EXPECT_EQ(rep.violations(), 0u)
        << "open tx must not read as an orphan\n"
        << rep.summary();
    ASSERT_EQ(alloc_->txCommit(*ctx_), NvStatus::Ok);
    rep = auditor.audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();
}

TEST_F(TxFixture, StompedCommitRecordIsOrphanAndRepairable)
{
    ASSERT_EQ(alloc_->txBegin(*ctx_), NvStatus::Ok);
    uint64_t blk = alloc_->txAlloc(*ctx_, 64, alloc_->rootWord(0));
    ASSERT_NE(blk, 0u);
    ASSERT_EQ(alloc_->txWrite(*ctx_, alloc_->rootWord(1), 7),
              NvStatus::Ok);
    ASSERT_EQ(alloc_->txCommit(*ctx_), NvStatus::Ok);

    // Stomp the crc of both control records — the commit record and
    // the applied seal (either intact one on its own still resolves
    // the run): the run turns into op entries whose transaction can no
    // longer be resolved.
    auto *ring = static_cast<WalEntry *>(
        dev_->at(alloc_->walRingOffset(ctx_->wal_slot)));
    unsigned stomped = 0;
    for (unsigned s = 0; s < kWalRingEntries; ++s) {
        if ((ring[s].block_op & 3) != kWalNone &&
            (ring[s].tx_mark == kWalTxCommit ||
             ring[s].tx_mark == kWalTxApplied)) {
            ring[s].crc ^= 0xdead;
            ++stomped;
        }
    }
    ASSERT_EQ(stomped, 2u);

    HeapAuditor auditor(*alloc_);
    AuditReport rep = auditor.audit();
    EXPECT_GE(rep.wal_entry_bad, 1u) << rep.summary();
    EXPECT_GE(rep.tx_orphan_entries, 1u) << rep.summary();

    AuditReport fixed = auditor.repair();
    EXPECT_GE(fixed.repaired_tx_entries, 2u) << fixed.summary();
    rep = auditor.audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();
    // The committed state itself is untouched by the scrub.
    EXPECT_TRUE(blockIsLive(*alloc_, blk));
    EXPECT_EQ(*alloc_->rootWord(1), 7u);
}

// ---------------------------------------------------------------------
// Every-point crash sweep
// ---------------------------------------------------------------------

constexpr unsigned kPre = 4;    //!< pre-allocated blocks a tx can free
constexpr unsigned kSlots = 12; //!< persistent pointer words in use

enum class TxShape
{
    Empty,       //!< begin + commit, no ops
    OneSmall,    //!< a single small allocation
    Mixed,       //!< small + large allocs, writes, frees
    AbortPath,   //!< ops then abort instead of commit
    Interleaved, //!< two thread contexts, two open txs interleaved
};

const char *
shapeName(TxShape s)
{
    switch (s) {
    case TxShape::Empty: return "empty";
    case TxShape::OneSmall: return "one-small";
    case TxShape::Mixed: return "mixed";
    case TxShape::AbortPath: return "abort";
    case TxShape::Interleaved: return "interleaved";
    }
    return "?";
}

/** One staged effect and how to recognise it after recovery. Slot
 *  indices refer to the persistent slot table the workload allocates
 *  (its offset rides in rootWord(0)). */
struct Effect
{
    enum class Kind
    {
        SmallAlloc,
        LargeAlloc,
        Free,
        Write,
    };
    Kind kind;
    unsigned slot;  //!< publish/target slot-table index
    uint64_t off;   //!< block offset (allocs/frees)
    uint64_t old_v; //!< write undo value
    uint64_t new_v; //!< write redo value
};

/** Visible = the effect's committed state is present. */
bool
effectVisible(NvAlloc &a, uint64_t *slots, const Effect &e)
{
    switch (e.kind) {
    case Effect::Kind::SmallAlloc:
        return slots[e.slot] == e.off && blockIsLive(a, e.off);
    case Effect::Kind::LargeAlloc:
        return slots[e.slot] == e.off && largeIsLive(a, e.off);
    case Effect::Kind::Free:
        return !blockIsLive(a, e.off);
    case Effect::Kind::Write:
        return slots[e.slot] == e.new_v;
    }
    return false;
}

/** Invisible = the pre-transaction state is intact. */
bool
effectInvisible(NvAlloc &a, uint64_t *slots, const Effect &e)
{
    switch (e.kind) {
    case Effect::Kind::SmallAlloc:
        return slots[e.slot] == 0 && !blockIsLive(a, e.off);
    case Effect::Kind::LargeAlloc:
        return slots[e.slot] == 0 && !largeIsLive(a, e.off);
    case Effect::Kind::Free:
        return blockIsLive(a, e.off);
    case Effect::Kind::Write:
        return slots[e.slot] == e.old_v;
    }
    return false;
}

/**
 * Run one crash point: seeded pre-state, arm the crash at the nth
 * flush/fence, run the shape's transaction, simulate the crash
 * (whether or not the arming triggered — a never-triggered run is the
 * post-commit crash point and ends the sweep), recover, and assert:
 *
 *   all-or-nothing  every effect of a tx is visible or every one is
 *                   invisible — per transaction, never a mix;
 *   no leak         small-block census matches the outcome exactly;
 *   audit clean     a full HeapAuditor walk reports zero violations;
 *   usable          the recovered heap serves plain AND tx traffic.
 *
 * Returns true if the armed crash triggered (=> more points remain).
 */
bool
runTxCrashPoint(TxShape shape, bool at_fence, unsigned nth)
{
    SCOPED_TRACE(::testing::Message()
                 << shapeName(shape)
                 << (at_fence ? " fence=" : " flush=") << nth);

    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 28;
    dcfg.shadow = true;
    PmDevice dev(dcfg);
    dev.enableFaultInjection(FaultPolicy{});

    std::vector<Effect> fx;  //!< primary tx's effects
    std::vector<Effect> fx2; //!< second tx's effects (Interleaved)
    uint64_t pre[kPre] = {};
    uint64_t table_off = 0;
    uint64_t live_before = 0;
    bool triggered = false;

    {
        auto alloc_h = NvAlloc::openOrDie(dev, sweepConfig());
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        if (ctx == nullptr) {
            ADD_FAILURE() << "attach failed during setup";
            return false;
        }
        // Pre-state: a slot table of persistent pointer words (the
        // superblock only carries 8 roots), blocks the tx will free,
        // and seeded write words.
        table_off =
            alloc.allocOffset(*ctx, kSlots * 8, alloc.rootWord(0));
        if (table_off == 0) {
            ADD_FAILURE() << "slot table allocation failed";
            return false;
        }
        auto *slots = static_cast<uint64_t *>(alloc.at(table_off));
        std::memset(slots, 0, kSlots * 8);
        slots[6] = 0x1111;
        slots[7] = 0x3333;
        dev.persistFence(slots, kSlots * 8, TimeKind::FlushData);
        for (unsigned i = 0; i < kPre; ++i) {
            pre[i] =
                alloc.allocOffset(*ctx, 64 + 32 * i, &slots[8 + i]);
            if (pre[i] == 0) {
                ADD_FAILURE() << "pre-block " << i << " failed";
                return false;
            }
        }
        live_before = liveSmallBlocks(alloc);

        if (at_fence)
            dev.armCrashAtFence(nth);
        else
            dev.armCrashAtFlush(nth);

        auto tx_alloc = [&](ThreadCtx &c, size_t size,
                            Effect::Kind kind, unsigned slot,
                            std::vector<Effect> &out) {
            uint64_t off = alloc.txAlloc(c, size, &slots[slot]);
            EXPECT_NE(off, 0u) << "txAlloc size " << size;
            if (off)
                out.push_back({kind, slot, off, 0, 0});
        };
        auto tx_free = [&](ThreadCtx &c, unsigned i,
                           std::vector<Effect> &out) {
            // The documented pairing: stage the free and clear the
            // owning pointer word in the same atomic unit.
            if (alloc.txFree(c, pre[i]) == NvStatus::Ok &&
                alloc.txWrite(c, &slots[8 + i], 0) == NvStatus::Ok) {
                out.push_back(
                    {Effect::Kind::Free, 8 + i, pre[i], 0, 0});
                out.push_back(
                    {Effect::Kind::Write, 8 + i, 0, pre[i], 0});
            } else {
                ADD_FAILURE() << "tx free of pre-block " << i;
            }
        };
        auto tx_write = [&](ThreadCtx &c, unsigned slot, uint64_t oldv,
                            uint64_t newv, std::vector<Effect> &out) {
            if (alloc.txWrite(c, &slots[slot], newv) == NvStatus::Ok)
                out.push_back(
                    {Effect::Kind::Write, slot, 0, oldv, newv});
            else
                ADD_FAILURE() << "tx write to slot " << slot;
        };
        auto small = Effect::Kind::SmallAlloc;
        auto big = Effect::Kind::LargeAlloc;

        switch (shape) {
        case TxShape::Empty:
            EXPECT_EQ(alloc.txBegin(*ctx), NvStatus::Ok);
            EXPECT_EQ(alloc.txCommit(*ctx), NvStatus::Ok);
            break;
        case TxShape::OneSmall:
            EXPECT_EQ(alloc.txBegin(*ctx), NvStatus::Ok);
            tx_alloc(*ctx, 96, small, 0, fx);
            EXPECT_EQ(alloc.txCommit(*ctx), NvStatus::Ok);
            break;
        case TxShape::Mixed:
            EXPECT_EQ(alloc.txBegin(*ctx), NvStatus::Ok);
            tx_alloc(*ctx, 48, small, 0, fx);
            tx_alloc(*ctx, 80 * 1024, big, 1, fx);
            tx_write(*ctx, 6, 0x1111, 0x2222, fx);
            tx_free(*ctx, 0, fx);
            tx_alloc(*ctx, 512, small, 2, fx);
            tx_free(*ctx, 1, fx);
            tx_write(*ctx, 7, 0x3333, 0x4444, fx);
            EXPECT_EQ(alloc.txCommit(*ctx), NvStatus::Ok);
            break;
        case TxShape::AbortPath:
            EXPECT_EQ(alloc.txBegin(*ctx), NvStatus::Ok);
            tx_alloc(*ctx, 48, small, 0, fx);
            tx_write(*ctx, 6, 0x1111, 0x2222, fx);
            tx_free(*ctx, 0, fx);
            EXPECT_EQ(alloc.txAbort(*ctx), NvStatus::Ok);
            break;
        case TxShape::Interleaved: {
            ThreadCtx *ctx2 = alloc.attachThread();
            if (ctx2 == nullptr) {
                ADD_FAILURE() << "second attach failed";
                return false;
            }
            EXPECT_EQ(alloc.txBegin(*ctx), NvStatus::Ok);
            EXPECT_EQ(alloc.txBegin(*ctx2), NvStatus::Ok);
            tx_alloc(*ctx, 48, small, 0, fx);
            tx_alloc(*ctx2, 96, small, 1, fx2);
            tx_free(*ctx, 0, fx);
            tx_write(*ctx2, 6, 0x1111, 0x2222, fx2);
            tx_free(*ctx2, 1, fx2);
            EXPECT_EQ(alloc.txCommit(*ctx), NvStatus::Ok);
            // The second tx stays open across the crash: recovery
            // must roll its run back regardless of how far tx 1 got.
            break;
        }
        }
        triggered = dev.crashTriggered();
        alloc.simulateCrash();
    }

    auto again_h = NvAlloc::openOrDie(dev, sweepConfig());
    NvAlloc &again = *again_h;
    const RecoveryReport &rec = again.lastRecovery();
    EXPECT_TRUE(rec.performed);
    auto *slots = static_cast<uint64_t *>(again.at(table_off));

    // All-or-nothing, per transaction.
    auto check_atomic = [&](const std::vector<Effect> &effects,
                            const char *tag, bool must_be_invisible) {
        if (effects.empty())
            return;
        unsigned visible = 0, invisible = 0;
        std::string detail;
        for (const Effect &e : effects) {
            bool vis = effectVisible(again, slots, e);
            bool invis = effectInvisible(again, slots, e);
            if (vis)
                ++visible;
            else if (invis)
                ++invisible;
            detail += " [kind=" + std::to_string(int(e.kind)) +
                      " slot=" + std::to_string(e.slot) +
                      " word=" + std::to_string(slots[e.slot]) +
                      (vis ? " V]" : invis ? " I]" : " TORN]");
        }
        EXPECT_TRUE(visible == effects.size() ||
                    invisible == effects.size())
            << tag << ": torn transaction — " << visible << "/"
            << effects.size() << " effects visible, " << invisible
            << " invisible;" << detail
            << "; tx_committed=" << rec.tx_committed
            << " tx_rolled_back=" << rec.tx_rolled_back
            << " wal_rejected=" << rec.wal_rejected;
        if (must_be_invisible) {
            EXPECT_EQ(invisible, effects.size())
                << tag << ": aborted tx left effects behind";
        }
    };
    check_atomic(fx, "tx1", shape == TxShape::AbortPath);
    check_atomic(fx2, "tx2", /*must_be_invisible=*/false);

    // No leak: the small-block census must equal the pre-state plus
    // exactly the committed small effects. (tx2 in the Interleaved
    // shape was still open at the crash, so any of its staged blocks
    // surviving would surface here.)
    bool tx1_visible =
        !fx.empty() && effectVisible(again, slots, fx.front());
    bool tx2_visible =
        !fx2.empty() && effectVisible(again, slots, fx2.front());
    int64_t expect = int64_t(live_before);
    auto tally = [&](const std::vector<Effect> &effects, bool visible) {
        if (!visible)
            return;
        for (const Effect &e : effects) {
            if (e.kind == Effect::Kind::SmallAlloc)
                ++expect;
            else if (e.kind == Effect::Kind::Free)
                --expect;
        }
    };
    tally(fx, tx1_visible);
    tally(fx2, tx2_visible);
    EXPECT_EQ(int64_t(liveSmallBlocks(again)), expect)
        << "leak/loss; tx1_visible=" << tx1_visible
        << " tx2_visible=" << tx2_visible
        << " tx_committed=" << rec.tx_committed
        << " tx_rolled_back=" << rec.tx_rolled_back;

    // Audit clean: no orphaned tx records, no staged/free conflicts.
    AuditReport audit = HeapAuditor(again).audit();
    EXPECT_EQ(audit.violations(), 0u) << audit.summary();

    // Usable: plain traffic, then a fresh transaction, both work.
    ThreadCtx *ctx = again.attachThread();
    if (ctx != nullptr) {
        uint64_t probe = again.allocOffset(*ctx, 128, nullptr);
        EXPECT_NE(probe, 0u);
        EXPECT_EQ(again.freeOffset(*ctx, probe, nullptr),
                  NvStatus::Ok);
        EXPECT_EQ(again.txBegin(*ctx), NvStatus::Ok);
        uint64_t tx_probe = again.txAlloc(*ctx, 64, &slots[3]);
        EXPECT_NE(tx_probe, 0u);
        EXPECT_EQ(again.txCommit(*ctx), NvStatus::Ok);
        EXPECT_EQ(slots[3], tx_probe);
        again.detachThread(ctx);
    } else {
        ADD_FAILURE() << "recovered heap refused an attach";
    }

    return triggered;
}

class TxCrashSweep : public ::testing::TestWithParam<int>
{
};

/** Walk nth = 1, 2, 3, ... until the armed crash no longer fires —
 *  i.e. EVERY flush point of the shape's transaction section has been
 *  a crash point, plus the final run whose crash lands after commit. */
TEST_P(TxCrashSweep, AllOrNothingAtEveryFlushPoint)
{
    TxShape shape = TxShape(GetParam());
    constexpr unsigned kCap = 400; // far above any shape's flush count
    unsigned nth = 1;
    for (; nth <= kCap; ++nth) {
        if (!runTxCrashPoint(shape, /*at_fence=*/false, nth))
            break;
        if (::testing::Test::HasFailure())
            return; // the SCOPED_TRACE already names the point
    }
    ASSERT_LE(nth, kCap) << "sweep never ran out of flush points";
    RecordProperty("crash_points", int(nth));
}

TEST_P(TxCrashSweep, AllOrNothingAtEveryFencePoint)
{
    TxShape shape = TxShape(GetParam());
    constexpr unsigned kCap = 400;
    unsigned nth = 1;
    for (; nth <= kCap; ++nth) {
        if (!runTxCrashPoint(shape, /*at_fence=*/true, nth))
            break;
        if (::testing::Test::HasFailure())
            return;
    }
    ASSERT_LE(nth, kCap) << "sweep never ran out of fence points";
    RecordProperty("crash_points", int(nth));
}

INSTANTIATE_TEST_SUITE_P(Shapes, TxCrashSweep, ::testing::Range(0, 5));

} // namespace
} // namespace nvalloc
