/**
 * @file
 * Tests of the flush latency model against the behaviours §3.1
 * documents: the reflush-distance cost curve (800→500 ns over
 * distances 0-3), sequential-vs-random media costs, XPBuffer hits,
 * classification counters, the eADR mode, and the trace hook.
 */

#include <gtest/gtest.h>

#include "pm/pm_device.h"

namespace nvalloc {
namespace {

class LatencyModelTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PmDeviceConfig cfg;
        cfg.size = size_t{1} << 28;
        dev_ = std::make_unique<PmDevice>(cfg);
        VClock::reset();
    }

    uint64_t
    flushCost(uint64_t offset)
    {
        uint64_t v0 = VClock::now();
        dev_->flushLine(dev_->base() + offset, TimeKind::FlushMeta);
        return VClock::now() - v0;
    }

    std::unique_ptr<PmDevice> dev_;
};

TEST_F(LatencyModelTest, ReflushDistanceCurveMatchesPaper)
{
    const LatencyParams &p = dev_->model().params();

    // Cycle over K distinct lines; steady-state distance is K-1.
    for (unsigned k = 1; k <= 4; ++k) {
        dev_->model().reset();
        // Warm up the cycle.
        for (unsigned i = 0; i < 2 * k; ++i)
            flushCost((i % k) * 64);
        uint64_t cost = flushCost(((2 * k) % k) * 64) - p.issue;
        EXPECT_EQ(cost, p.reflush_base - p.reflush_step * (k - 1))
            << "distance " << k - 1;
    }
    // Paper numbers: 800 ns at distance 0 down to 500 at distance 3.
    EXPECT_EQ(p.reflush_base, 800u);
    EXPECT_EQ(p.reflush_base - 3 * p.reflush_step, 500u);
}

TEST_F(LatencyModelTest, BeyondWindowIsRegularFlush)
{
    const LatencyParams &p = dev_->model().params();
    // Cycle of 6 distinct lines: distance 5 >= window, no reflush.
    for (unsigned i = 0; i < 18; ++i)
        flushCost((i % 6) * 64);
    auto c = dev_->flushCounts();
    // After the first pass every flush is distance 5: all hits or
    // media, no reflushes beyond warmup.
    EXPECT_LE(c.reflush, 0u + p.reflush_window);
    EXPECT_GT(c.xpline_hit, 8u);
}

TEST_F(LatencyModelTest, SequentialCheaperThanRandom)
{
    const LatencyParams &p = dev_->model().params();
    // Sequential XPLine misses: one line per consecutive XPLine.
    dev_->model().reset();
    uint64_t seq = 0;
    for (unsigned i = 0; i < 200; ++i)
        seq += flushCost(uint64_t(i) * 256);
    // Random far-apart lines.
    dev_->model().reset();
    VClock::reset();
    uint64_t rnd = 0;
    uint64_t x = 99;
    for (unsigned i = 0; i < 200; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        rnd += flushCost((x % (1 << 20)) * 64);
    }
    EXPECT_LT(p.media_seq, p.media_random);
    EXPECT_LT(seq, rnd);
}

TEST_F(LatencyModelTest, XpBufferHitsAreCheap)
{
    const LatencyParams &p = dev_->model().params();
    // 5 lines in one XPLine region cycled: beyond the reflush window
    // but inside the XPBuffer.
    for (unsigned i = 0; i < 40; ++i)
        flushCost((i % 5) * 64);
    uint64_t cost = flushCost((40 % 5) * 64);
    EXPECT_EQ(cost, p.issue + p.xpline_hit);
}

TEST_F(LatencyModelTest, CountersClassifyEveryFlush)
{
    for (unsigned i = 0; i < 100; ++i)
        flushCost((i % 3) * 64); // reflush loop
    for (unsigned i = 0; i < 50; ++i)
        flushCost(uint64_t(1 + i) * 1 << 20); // random misses
    auto c = dev_->flushCounts();
    EXPECT_EQ(c.total, 150u);
    EXPECT_EQ(c.total,
              c.reflush + c.sequential + c.random + c.xpline_hit);
    EXPECT_GE(c.reflush, 95u);
    EXPECT_GE(c.random, 40u);
}

TEST_F(LatencyModelTest, FenceCostAndCount)
{
    uint64_t v0 = VClock::now();
    dev_->fence();
    dev_->fence();
    EXPECT_EQ(VClock::now() - v0, 2 * dev_->model().params().fence);
    EXPECT_EQ(dev_->flushCounts().fences, 2u);
}

TEST_F(LatencyModelTest, EadrRemovesStallsKeepsMediaCosts)
{
    dev_->model().setEadr(true);
    const LatencyParams &p = dev_->model().params();

    // Reflush pattern: free under eADR (write combining). The first
    // touches of fresh lines pay the writeback cost; steady state is
    // free.
    for (unsigned i = 0; i < 4; ++i)
        flushCost((i % 2) * 64);
    uint64_t v0 = VClock::now();
    for (unsigned i = 0; i < 100; ++i)
        flushCost((i % 2) * 64);
    EXPECT_EQ(VClock::now(), v0) << "same-line dirtying is free";

    // Distinct random lines still pay the (small) writeback cost.
    v0 = VClock::now();
    uint64_t x = 7;
    for (unsigned i = 0; i < 100; ++i) {
        x = x * 6364136223846793005ULL + 1;
        flushCost((x % (1 << 20)) * 64);
    }
    uint64_t eadr_cost = VClock::now() - v0;
    EXPECT_GT(eadr_cost, 0u);
    EXPECT_LE(eadr_cost, 100 * p.eadr_random);

    // Fences are free on eADR.
    v0 = VClock::now();
    dev_->fence();
    EXPECT_EQ(VClock::now(), v0);
}

TEST_F(LatencyModelTest, TraceCapturesOffsets)
{
    dev_->model().startTrace(5);
    for (unsigned i = 0; i < 10; ++i)
        flushCost(i * 4096);
    auto trace = dev_->model().stopTrace();
    ASSERT_EQ(trace.size(), 5u) << "cap respected";
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(trace[i], i * 4096);
}

TEST_F(LatencyModelTest, StopWithoutStartIsEmptyNoop)
{
    EXPECT_FALSE(dev_->model().tracing());
    EXPECT_TRUE(dev_->model().stopTrace().empty());
    // Flushes after a stray stop must not be recorded anywhere.
    flushCost(0);
    EXPECT_TRUE(dev_->model().stopTrace().empty());
}

TEST_F(LatencyModelTest, DoubleStopSecondIsEmpty)
{
    dev_->model().startTrace(8);
    flushCost(0);
    flushCost(4096);
    auto first = dev_->model().stopTrace();
    EXPECT_EQ(first.size(), 2u);
    EXPECT_FALSE(dev_->model().tracing());
    EXPECT_TRUE(dev_->model().stopTrace().empty())
        << "second stop returns nothing, not the old buffer";
}

TEST_F(LatencyModelTest, RestartWhileTracingClearsBuffer)
{
    dev_->model().startTrace(8);
    flushCost(0);
    flushCost(64);
    // Restart discards the two buffered offsets and applies the new
    // capacity.
    dev_->model().startTrace(1);
    EXPECT_TRUE(dev_->model().tracing());
    flushCost(8192);
    flushCost(12288); // over the restarted cap; dropped
    auto trace = dev_->model().stopTrace();
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace[0], 8192u);
}

TEST_F(LatencyModelTest, ResetInvalidatesPerThreadHistory)
{
    // Build up reflush history, reset, and check the next flush of
    // the same line is NOT treated as a reflush.
    for (unsigned i = 0; i < 10; ++i)
        flushCost(0);
    dev_->model().reset();
    flushCost(0);
    auto c = dev_->flushCounts();
    EXPECT_EQ(c.reflush, 0u);
    EXPECT_EQ(c.total, 1u);
}

TEST_F(LatencyModelTest, PersistFlushesEveryCoveredLine)
{
    dev_->model().reset();
    dev_->persist(dev_->base() + 60, 10, TimeKind::FlushData);
    EXPECT_EQ(dev_->flushCounts().total, 2u) << "straddles two lines";
    dev_->model().reset();
    dev_->persist(dev_->base() + 4096, 256, TimeKind::FlushData);
    EXPECT_EQ(dev_->flushCounts().total, 4u);
}

} // namespace
} // namespace nvalloc
