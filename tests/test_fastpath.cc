/**
 * @file
 * Lock-free small-path tests (DESIGN.md §14): the hit path takes no
 * VLock, racing claims never hand out a block twice, region slots
 * steal across arenas, crash points inside reservation refills
 * recover to a clean heap, and a 128-thread Larson-style churn stays
 * audit-clean under virtual time.
 *
 * Honours the CI matrix envs: NVALLOC_MAINTENANCE=off|manual|thread,
 * NVALLOC_HARDENING=full (which legitimately routes frees through the
 * locked path — the lock-freedom asserts adapt), and
 * NVALLOC_FASTPATH=locked|lockfree.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "nvalloc/auditor.h"
#include "nvalloc/nvalloc.h"
#include "test_util.h"

namespace nvalloc {
namespace {

NvAllocConfig
fastpathConfig()
{
    NvAllocConfig cfg;
    const char *env = std::getenv("NVALLOC_MAINTENANCE");
    if (env && std::strcmp(env, "thread") == 0)
        cfg.maintenance_mode = MaintenanceMode::Thread;
    else if (env && std::strcmp(env, "manual") == 0)
        cfg.maintenance_mode = MaintenanceMode::Manual;
    const char *hard = std::getenv("NVALLOC_HARDENING");
    if (hard && std::strcmp(hard, "full") == 0) {
        cfg.redzone_canaries = true;
        cfg.quarantine_depth = 16;
    }
    const char *fp = std::getenv("NVALLOC_FASTPATH");
    if (fp && std::strcmp(fp, "locked") == 0)
        cfg.fastpath = FastPathMode::Locked;
    else
        cfg.fastpath = FastPathMode::LockFree;
    return cfg;
}

bool
hardeningFull()
{
    const char *hard = std::getenv("NVALLOC_HARDENING");
    return hard && std::strcmp(hard, "full") == 0;
}

uint64_t
readCtl(NvAlloc &alloc, const char *name)
{
    uint64_t v = 0;
    EXPECT_EQ(alloc.ctlRead(name, &v), NvStatus::Ok) << name;
    return v;
}

// ---------------------------------------------------------------------
// The acceptance gate: zero VLock acquisitions on the alloc/free hit
// path. The thread-local acquisition counter in vlock.h observes every
// VLock::lock() on this thread, so a zero delta proves the whole call
// chain — tcache pop, gate entry, bitfield CAS, WAL append, publish —
// took no lock.
// ---------------------------------------------------------------------
TEST(FastPath, HitPathAcquiresNoVLocks)
{
    NvAllocConfig cfg = fastpathConfig();
    if (cfg.fastpath != FastPathMode::LockFree)
        GTEST_SKIP() << "NVALLOC_FASTPATH=locked leg";

    PmDeviceConfig dcfg;
    dcfg.size = size_t{128} << 20;
    PmDevice dev(dcfg);
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();
    ASSERT_NE(ctx, nullptr);

    // Warm: the first allocation funds the tcache (locked refill is
    // expected there); the frees refill it for the measured rounds.
    std::vector<uint64_t> warm;
    for (unsigned i = 0; i < 16; ++i)
        warm.push_back(alloc.allocOffset(*ctx, 64, nullptr));
    for (uint64_t off : warm)
        ASSERT_EQ(alloc.freeOffset(*ctx, off, nullptr), NvStatus::Ok);

    // Measured rounds: every alloc hits the tcache, every free takes
    // the lock-free gate (unless the hardening leg routes frees
    // through quarantine, which is the documented locked fallback —
    // so the two sides are metered separately).
    uint64_t alloc_locks = 0;
    uint64_t free_locks = 0;
    for (unsigned round = 0; round < 8; ++round) {
        uint64_t t0 = tl_vlock_acquisitions;
        uint64_t off = alloc.allocOffset(*ctx, 64, nullptr);
        alloc_locks += tl_vlock_acquisitions - t0;
        ASSERT_NE(off, 0u);
        t0 = tl_vlock_acquisitions;
        ASSERT_EQ(alloc.freeOffset(*ctx, off, nullptr), NvStatus::Ok);
        free_locks += tl_vlock_acquisitions - t0;
    }

    EXPECT_EQ(alloc_locks, 0u) << "alloc hit path acquired a VLock";
    if (!hardeningFull()) {
        EXPECT_EQ(free_locks, 0u) << "free hit path acquired a VLock";
    }

    alloc.detachThread(ctx);
}

// ---------------------------------------------------------------------
// CAS-retry storm: hostile threads hammer the same size class — and
// therefore the same slabs and bitfield words. The oracle is block
// identity: no offset may ever be handed to two threads at once, and
// the final live count must match the survivors exactly. Run under
// TSan in the tsan-fastpath CI leg, this is also the data-race proof
// for the claim cascade.
// ---------------------------------------------------------------------
TEST(FastPath, CasRetryStormNeverDoublesABlock)
{
    NvAllocConfig cfg = fastpathConfig();
    PmDeviceConfig dcfg;
    dcfg.size = size_t{256} << 20;
    PmDevice dev(dcfg);
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;

    constexpr unsigned kThreads = 8;
    constexpr unsigned kOps = 3000;
    std::vector<std::vector<uint64_t>> survivors(kThreads);
    std::atomic<unsigned> failures{0};

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            ThreadCtx *ctx = alloc.attachThread();
            if (!ctx) {
                failures.fetch_add(1);
                return;
            }
            Rng rng(1000 + t);
            std::vector<uint64_t> mine;
            for (unsigned op = 0; op < kOps; ++op) {
                if (mine.empty() || rng.nextBounded(3) != 0) {
                    uint64_t off = alloc.allocOffset(*ctx, 64, nullptr);
                    if (off == 0) {
                        failures.fetch_add(1);
                        break;
                    }
                    // Dirty the block: overlapping grants would show
                    // up as torn stamps under TSan and in the
                    // uniqueness check below.
                    std::memset(alloc.at(off), int('a' + t), 64);
                    mine.push_back(off);
                } else {
                    size_t pick = rng.nextBounded(mine.size());
                    if (alloc.freeOffset(*ctx, mine[pick], nullptr) !=
                        NvStatus::Ok) {
                        failures.fetch_add(1);
                        break;
                    }
                    mine[pick] = mine.back();
                    mine.pop_back();
                }
            }
            survivors[t] = std::move(mine);
            alloc.detachThread(ctx);
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(failures.load(), 0u);

    // Block identity: every surviving offset is unique and live.
    std::set<uint64_t> all;
    for (auto &v : survivors) {
        for (uint64_t off : v) {
            EXPECT_TRUE(all.insert(off).second)
                << "offset " << off << " granted twice";
            EXPECT_TRUE(blockIsLive(alloc, off));
        }
    }
    EXPECT_EQ(liveSmallBlocks(alloc), all.size());

    // The reservation machinery actually ran (not the locked
    // fallback throughout).
    if (cfg.fastpath == FastPathMode::LockFree) {
        EXPECT_GT(readCtl(alloc, "stats.fastpath.reserve_hits"), 0u);
    }

    AuditReport rep = HeapAuditor(alloc).audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();
}

// ---------------------------------------------------------------------
// Region steal: sibling raiding is the ladder's last resort — it
// fires only when the thread's own arena is truly dry (no freelist
// slab, no morph candidate, new slab refused). Exhaust the heap so
// arena B cannot carve a slab, leave availability only on arena A,
// and a hostile thread on B must serve its allocation from A — via
// A's region slots (lock-free) or A's locked refill — counting a
// region steal either way.
// ---------------------------------------------------------------------
TEST(FastPath, RegionStealServesExhaustedPeerArena)
{
    NvAllocConfig cfg = fastpathConfig();
    if (cfg.fastpath != FastPathMode::LockFree)
        GTEST_SKIP() << "NVALLOC_FASTPATH=locked leg";
    cfg.num_arenas = 2;

    PmDeviceConfig dcfg;
    dcfg.size = size_t{64} << 20;
    PmDevice dev(dcfg);
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;
    ASSERT_GE(alloc.numArenas(), 2u);

    // Arena A: several slabs of the class, half the blocks freed so A
    // keeps availability no matter how the tcache splits them.
    ThreadCtx *ctx1 = alloc.attachThread();
    ASSERT_NE(ctx1, nullptr);
    std::vector<uint64_t> offs;
    for (unsigned i = 0; i < 3000; ++i) {
        uint64_t off = alloc.allocOffset(*ctx1, 96, nullptr);
        ASSERT_NE(off, 0u);
        offs.push_back(off);
    }
    for (size_t i = 0; i < offs.size(); i += 2) {
        ASSERT_EQ(alloc.freeOffset(*ctx1, offs[i], nullptr),
                  NvStatus::Ok);
        offs[i] = 0;
    }

    // Exhaust the extent space down to slab granularity (64 KiB) so
    // no arena can carve a fresh slab.
    std::vector<uint64_t> hogs;
    for (size_t hog = 1u << 20; hog >= kSlabSize; hog /= 4) {
        for (;;) {
            uint64_t off = alloc.allocOffset(*ctx1, hog, nullptr);
            if (off == 0)
                break;
            hogs.push_back(off);
        }
    }

    // Churn a little so A's locked refill runs again and reprovisions
    // its region slots (the exhaustion reclaim dropped them).
    std::vector<uint64_t> churn;
    for (unsigned i = 0; i < 32; ++i) {
        uint64_t off = alloc.allocOffset(*ctx1, 96, nullptr);
        ASSERT_NE(off, 0u) << "arena A lost its availability";
        churn.push_back(off);
    }
    for (uint64_t off : churn)
        ASSERT_EQ(alloc.freeOffset(*ctx1, off, nullptr), NvStatus::Ok);

    uint64_t steals_before =
        readCtl(alloc, "stats.fastpath.region_steals");

    std::atomic<Arena *> arena1{ctx1->arena};
    std::thread hostile([&] {
        // Attach while ctx1 still holds arena A, so least-loaded
        // placement lands this thread on arena B.
        ThreadCtx *ctx2 = alloc.attachThread();
        ASSERT_NE(ctx2, nullptr);
        ASSERT_NE(ctx2->arena, arena1.load())
            << "least-loaded placement put both threads on one arena";
        // B is empty and the heap can give it no slab: the ladder
        // must cross over to A.
        uint64_t off = alloc.allocOffset(*ctx2, 96, nullptr);
        EXPECT_NE(off, 0u) << "sibling search failed under exhaustion";
        if (off != 0) {
            EXPECT_EQ(alloc.freeOffset(*ctx2, off, nullptr),
                      NvStatus::Ok);
        }
        alloc.detachThread(ctx2);
    });
    hostile.join();

    EXPECT_GT(readCtl(alloc, "stats.fastpath.region_steals"),
              steals_before)
        << "peer arena was never raided";

    for (uint64_t off : offs) {
        if (off)
            alloc.freeOffset(*ctx1, off, nullptr);
    }
    for (uint64_t off : hogs)
        alloc.freeOffset(*ctx1, off, nullptr);
    alloc.detachThread(ctx1);

    AuditReport rep = HeapAuditor(alloc).audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();
}

// ---------------------------------------------------------------------
// Crash points inside the reservation refill. The workload allocates
// in bursts larger than the reservation batch, so flush crash points
// land inside claimFast cascades, region installs, and slab-header
// initialisation. Recovery must satisfy the same three safety
// properties as the main crash matrix.
// ---------------------------------------------------------------------
constexpr unsigned kSweepSlots = 48;

class FastPathCrashSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FastPathCrashSweep, SafeInsideReservationRefill)
{
    unsigned nth = 1 + 9 * GetParam();
    SCOPED_TRACE(::testing::Message() << "flush=" << nth);

    NvAllocConfig cfg = fastpathConfig();
    cfg.fastpath = FastPathMode::LockFree; // the sweep's subject

    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 29;
    dcfg.shadow = true;
    PmDevice dev(dcfg);

    uint64_t table_off;
    {
        auto alloc_h = NvAlloc::openOrDie(dev, cfg);
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        ASSERT_NE(ctx, nullptr);
        alloc.mallocTo(*ctx, kSweepSlots * 8, alloc.rootWord(0));
        table_off = *alloc.rootWord(0);
        std::memset(alloc.at(table_off), 0, kSweepSlots * 8);
        dev.persistFence(alloc.at(table_off), kSweepSlots * 8,
                         TimeKind::FlushData);

        dev.armCrashAtFlush(nth);

        // Burst pattern: fill every slot (> fastpath_batch, so the
        // tcache refills mid-burst), then clear every slot (draining
        // into pending stacks), repeat.
        auto *slots = static_cast<uint64_t *>(alloc.at(table_off));
        Rng rng(4242);
        for (unsigned round = 0;
             round < 64 && !dev.crashTriggered(); ++round) {
            for (unsigned s = 0;
                 s < kSweepSlots && !dev.crashTriggered(); ++s) {
                if (slots[s] == 0) {
                    size_t size = 32 + rng.nextBounded(96);
                    void *p = alloc.mallocTo(*ctx, size, &slots[s]);
                    if (!p)
                        break;
                    std::memset(p, int(0x40 + s), 24);
                    dev.persistFence(p, 24, TimeKind::FlushData);
                }
            }
            for (unsigned s = 0;
                 s < kSweepSlots && !dev.crashTriggered(); ++s) {
                if (slots[s] != 0)
                    alloc.freeFrom(*ctx, &slots[s]);
            }
        }
        alloc.simulateCrash();
    }

    auto again_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &again = *again_h;
    EXPECT_TRUE(again.lastRecovery().performed);

    auto *slots = static_cast<uint64_t *>(again.at(table_off));
    unsigned published = 0;
    for (unsigned s = 0; s < kSweepSlots; ++s) {
        if (slots[s] == 0)
            continue;
        ++published;
        ASSERT_TRUE(blockIsLive(again, slots[s]))
            << "slot " << s << " lost at flush " << nth;
        auto *bytes = static_cast<uint8_t *>(again.at(slots[s]));
        for (int b = 0; b < 24; ++b)
            ASSERT_EQ(bytes[b], 0x40 + s) << "torn data, slot " << s;
    }
    EXPECT_EQ(liveSmallBlocks(again), published + 1)
        << "leak or loss at flush " << nth;

    AuditReport rep = HeapAuditor(again).audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();

    ThreadCtx *ctx = again.attachThread();
    ASSERT_NE(ctx, nullptr);
    for (unsigned s = 0; s < kSweepSlots; ++s) {
        if (slots[s])
            again.freeFrom(*ctx, &slots[s]);
    }
    uint64_t probe = again.allocOffset(*ctx, 128, nullptr);
    EXPECT_NE(probe, 0u);
    again.freeOffset(*ctx, probe, nullptr);
    again.detachThread(ctx);
}

// 25 flush points with stride 9 span slab creation, the first claim
// cascades, and steady-state refills.
INSTANTIATE_TEST_SUITE_P(RefillPoints, FastPathCrashSweep,
                         ::testing::Range(0u, 25u));

// ---------------------------------------------------------------------
// 128-thread Larson-small churn under virtual time: every WAL slot in
// play, slabs shared across the whole thread population, and the heap
// still audits clean when the dust settles.
// ---------------------------------------------------------------------
TEST(FastPath, Larson128ThreadChurnAuditsClean)
{
    NvAllocConfig cfg = fastpathConfig();
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 29;
    PmDevice dev(dcfg);
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;

    constexpr unsigned kThreads = 128;
    constexpr unsigned kOps = 800;
    constexpr unsigned kHeld = 8;
    static const size_t kSizes[] = {16, 32, 64, 96, 128};
    std::atomic<unsigned> attached{0};
    std::atomic<unsigned> op_failures{0};
    std::atomic<uint64_t> ops_done{0};

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            ThreadCtx *ctx = alloc.attachThread();
            if (!ctx)
                return; // the maintenance thread may hold a slot
            attached.fetch_add(1);
            Rng rng(77 + t);
            uint64_t held[kHeld] = {};
            for (unsigned op = 0; op < kOps; ++op) {
                unsigned h = unsigned(rng.nextBounded(kHeld));
                if (held[h]) {
                    if (alloc.freeOffset(*ctx, held[h], nullptr) !=
                        NvStatus::Ok)
                        op_failures.fetch_add(1);
                    held[h] = 0;
                } else {
                    held[h] = alloc.allocOffset(
                        *ctx, kSizes[rng.nextBounded(5)], nullptr);
                    if (!held[h])
                        op_failures.fetch_add(1);
                }
                ops_done.fetch_add(1);
            }
            for (unsigned h = 0; h < kHeld; ++h) {
                if (held[h])
                    alloc.freeOffset(*ctx, held[h], nullptr);
            }
            alloc.detachThread(ctx);
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_GE(attached.load(), kThreads - 1); // one slot for maint
    EXPECT_EQ(op_failures.load(), 0u);
    EXPECT_GE(ops_done.load(), uint64_t(attached.load()) * kOps);

    AuditReport rep = HeapAuditor(alloc).audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();
    EXPECT_EQ(liveSmallBlocks(alloc), 0u) << "blocks leaked by churn";
}

// ---------------------------------------------------------------------
// The v4 escape hatch: fastpath=locked must behave like the pre-v4
// allocator — correct, audit-clean, and with the reservation counters
// untouched.
// ---------------------------------------------------------------------
TEST(FastPath, LockedEscapeHatchTakesNoReservations)
{
    NvAllocConfig cfg = fastpathConfig();
    cfg.fastpath = FastPathMode::Locked;

    PmDeviceConfig dcfg;
    dcfg.size = size_t{128} << 20;
    PmDevice dev(dcfg);
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();
    ASSERT_NE(ctx, nullptr);

    Rng rng(5);
    std::vector<uint64_t> live;
    for (unsigned op = 0; op < 4000; ++op) {
        if (live.empty() || rng.nextBounded(3) != 0) {
            uint64_t off = alloc.allocOffset(
                *ctx, 16 + rng.nextBounded(200), nullptr);
            ASSERT_NE(off, 0u);
            live.push_back(off);
        } else {
            size_t pick = rng.nextBounded(live.size());
            ASSERT_EQ(alloc.freeOffset(*ctx, live[pick], nullptr),
                      NvStatus::Ok);
            live[pick] = live.back();
            live.pop_back();
        }
    }
    EXPECT_EQ(readCtl(alloc, "stats.fastpath.reserve_hits"), 0u);
    EXPECT_EQ(readCtl(alloc, "stats.fastpath.reserve_misses"), 0u);

    for (uint64_t off : live)
        alloc.freeOffset(*ctx, off, nullptr);
    AuditReport rep = HeapAuditor(alloc).audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();
    alloc.detachThread(ctx);
}

} // namespace
} // namespace nvalloc
