/**
 * @file
 * Crash-point sweep (parameterized): run a deterministic mixed
 * workload, crash after N operations for many values of N, recover,
 * and check the fundamental safety properties at every point:
 *
 *   1. no lost committed object — every offset whose attach word was
 *      persistently published is still allocated with intact data;
 *   2. no leak — WAL replay (LOG) reconciles every in-flight op, so
 *      the number of live blocks equals the number of published words;
 *   3. the heap remains fully usable after recovery.
 *
 * This is the property-based core of the fail-safety claim (§4.4).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "nvalloc/nvalloc.h"
#include "test_util.h"

namespace nvalloc {
namespace {

constexpr unsigned kSlots = 64;

class CrashMatrix : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CrashMatrix, SafeAtEveryCrashPoint)
{
    unsigned crash_after = GetParam();

    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 29;
    dcfg.shadow = true;
    PmDevice dev(dcfg);

    // Persistent slot table the workload publishes into.
    uint64_t table_off;
    {
        auto alloc_h = NvAlloc::openOrDie(dev);
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        alloc.mallocTo(*ctx, kSlots * 8, alloc.rootWord(0));
        table_off = *alloc.rootWord(0);
        std::memset(alloc.at(table_off), 0, kSlots * 8);
        dev.persistFence(alloc.at(table_off), kSlots * 8,
                         TimeKind::FlushData);

        auto *slots = static_cast<uint64_t *>(alloc.at(table_off));
        Rng rng(99); // same seed for every crash point
        for (unsigned op = 0; op < crash_after; ++op) {
            unsigned s = unsigned(rng.nextBounded(kSlots));
            if (slots[s] == 0) {
                size_t size = 32 + rng.nextBounded(400);
                void *p = alloc.mallocTo(*ctx, size, &slots[s]);
                std::memset(p, int(0x40 + s), 32);
                dev.persistFence(p, 32, TimeKind::FlushData);
            } else {
                alloc.freeFrom(*ctx, &slots[s]);
            }
        }
        alloc.simulateCrash();
    }

    auto again_h = NvAlloc::openOrDie(dev);
    NvAlloc &again = *again_h;
    EXPECT_TRUE(again.lastRecovery().performed);

    // Property 1+2: published <=> allocated, data intact.
    auto *slots = static_cast<uint64_t *>(again.at(table_off));
    unsigned published = 0;
    for (unsigned s = 0; s < kSlots; ++s) {
        if (slots[s] == 0)
            continue;
        ++published;
        ASSERT_TRUE(blockIsLive(again, slots[s]))
            << "slot " << s << " lost at crash point " << crash_after;
        auto *bytes = static_cast<uint8_t *>(again.at(slots[s]));
        for (int b = 0; b < 32; ++b)
            ASSERT_EQ(bytes[b], 0x40 + s) << "torn data, slot " << s;
    }
    // The table block itself is the +1.
    EXPECT_EQ(liveSmallBlocks(again), published + 1)
        << "leak or loss at crash point " << crash_after;

    // Property 3: still usable — free everything, allocate again.
    ThreadCtx *ctx = again.attachThread();
    for (unsigned s = 0; s < kSlots; ++s) {
        if (slots[s])
            again.freeFrom(*ctx, &slots[s]);
    }
    uint64_t probe = again.allocOffset(*ctx, 128, nullptr);
    EXPECT_NE(probe, 0u);
    again.freeOffset(*ctx, probe, nullptr);
    again.detachThread(ctx);
}

INSTANTIATE_TEST_SUITE_P(
    CrashPoints, CrashMatrix,
    ::testing::Values(0u, 1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u,
                      144u, 233u, 377u, 610u, 987u, 1597u));

} // namespace
} // namespace nvalloc
