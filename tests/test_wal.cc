/**
 * @file
 * WAL unit tests: append/newestEntry semantics, ring wrap, the
 * implicit-commit replay rule, and interleaved entry placement.
 */

#include <gtest/gtest.h>

#include <memory>

#include "nvalloc/wal.h"

namespace nvalloc {
namespace {

class WalFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        PmDeviceConfig cfg;
        cfg.size = size_t{1} << 24;
        dev_ = std::make_unique<PmDevice>(cfg);
        ring_off_ = dev_->mapRegion(kWalRingBytes);
    }

    std::unique_ptr<PmDevice> dev_;
    uint64_t ring_off_ = 0;
};

TEST_F(WalFixture, EmptyRingHasNoNewestEntry)
{
    EXPECT_EQ(Wal::newestEntry(dev_.get(), ring_off_), nullptr);
}

TEST_F(WalFixture, NewestEntryTracksAppends)
{
    Wal wal;
    wal.attach(dev_.get(), ring_off_, true, 6, true);

    wal.append(kWalAlloc, 0x1000, 0x2000, 64);
    const WalEntry *e = Wal::newestEntry(dev_.get(), ring_off_);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(WalOp(e->block_op & 3), kWalAlloc);
    EXPECT_EQ(e->block_op >> 2, 0x1000u);
    EXPECT_EQ(e->where_off, 0x2000u);
    EXPECT_EQ(e->size, 64u);

    wal.append(kWalFree, 0x3000, kWalNoWhere, 0);
    e = Wal::newestEntry(dev_.get(), ring_off_);
    EXPECT_EQ(WalOp(e->block_op & 3), kWalFree);
    EXPECT_EQ(e->block_op >> 2, 0x3000u);
}

TEST_F(WalFixture, WrapKeepsNewestCorrect)
{
    Wal wal;
    wal.attach(dev_.get(), ring_off_, true, 6, true);
    for (uint64_t i = 1; i <= 3 * kWalRingEntries + 5; ++i)
        wal.append(kWalAlloc, i << 12, kWalNoWhere, 64);
    const WalEntry *e = Wal::newestEntry(dev_.get(), ring_off_);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->seq, 3 * kWalRingEntries + 5);
    EXPECT_EQ(e->block_op >> 2,
              uint64_t(3 * kWalRingEntries + 5) << 12);
}

TEST_F(WalFixture, OneLineEntriesNeverReflush)
{
    // v2 format: an entry is exactly one cache line (payload + crc +
    // pad), so no two appends can share a line and neither placement
    // re-flushes. Before the crc grew the entry past 32 B, sequential
    // placement packed two entries per line and re-flushed on every
    // second append; the format change removes that hazard instead of
    // relying on interleaving to dodge it.
    Wal wal;
    wal.attach(dev_.get(), ring_off_, true, 6, true);
    dev_->model().reset();
    for (int i = 0; i < 32; ++i)
        wal.append(kWalAlloc, uint64_t(i) << 12, kWalNoWhere, 64);
    EXPECT_EQ(dev_->flushCounts().reflush, 0u);

    uint64_t ring2 = dev_->mapRegion(kWalRingBytes);
    Wal seq;
    seq.attach(dev_.get(), ring2, false, 6, true);
    dev_->model().reset();
    for (int i = 0; i < 32; ++i)
        seq.append(kWalAlloc, uint64_t(i) << 12, kWalNoWhere, 64);
    EXPECT_EQ(dev_->flushCounts().reflush, 0u);
}

TEST_F(WalFixture, ChecksumRejectsTornEntry)
{
    Wal wal;
    wal.attach(dev_.get(), ring_off_, true, 6, true);
    wal.append(kWalAlloc, 0x1000, 0x2000, 64);
    wal.append(kWalAlloc, 0x4000, 0x5000, 128);

    // Corrupt the newest entry's payload without fixing its crc — the
    // shape a torn persist leaves. Verification must skip it and fall
    // back to the previous (implicitly committed) entry.
    WalEntry *newest = const_cast<WalEntry *>(
        Wal::newestEntry(dev_.get(), ring_off_));
    ASSERT_NE(newest, nullptr);
    EXPECT_EQ(newest->block_op >> 2, 0x4000u);
    newest->size ^= 0xdead;

    unsigned rejected = 0;
    const WalEntry *e =
        Wal::newestEntry(dev_.get(), ring_off_, &rejected);
    EXPECT_EQ(rejected, 1u);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->block_op >> 2, 0x1000u);

    // With verification off the torn entry wins again.
    e = Wal::newestEntry(dev_.get(), ring_off_, nullptr,
                         /*verify=*/false);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->block_op >> 2, 0x4000u);
}

TEST_F(WalFixture, FlushDisabledWritesButDoesNotFlush)
{
    Wal wal;
    wal.attach(dev_.get(), ring_off_, true, 6, /*flush=*/false);
    dev_->model().reset();
    wal.append(kWalAlloc, 0x5000, kWalNoWhere, 64);
    EXPECT_EQ(dev_->flushCounts().total, 0u);
    EXPECT_NE(Wal::newestEntry(dev_.get(), ring_off_), nullptr);
}

} // namespace
} // namespace nvalloc
