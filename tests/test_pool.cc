/**
 * @file
 * HeapPool tests (DESIGN.md §12): per-tenant isolation, the
 * config-identity open contract, quota enforcement, health-state
 * containment (victim refuses, siblings serve), sibling opens during
 * quarantine, the restore() repair path, the pool chaos soak, and a
 * crash-point sweep landing inside patrol-scrub slices.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nvalloc/auditor.h"
#include "nvalloc/layout.h"
#include "nvalloc/nvalloc.h"
#include "nvalloc/pool.h"
#include "nvalloc/slab.h"
#include "pool_chaos_harness.h"
#include "test_util.h"

namespace nvalloc {
namespace {

/** Deterministic member config: manual maintenance (tests drive the
 *  patrol directly), patrol on. The pool forces fault_containment. */
NvAllocConfig
memberConfig()
{
    NvAllocConfig cfg;
    cfg.maintenance_mode = MaintenanceMode::Manual;
    cfg.patrol_scrub = true;
    return cfg;
}

/** Drive the victim's patrol until it reaches `goal` (bounded). */
bool
patrolUntil(NvAlloc &heap, HeapHealth goal, unsigned budget = 4096)
{
    while (unsigned(heap.health()) < unsigned(goal) && budget--)
        heap.patrolSlice();
    return unsigned(heap.health()) >= unsigned(goal);
}

TEST(PoolOpen, SameConfigSharesMemberDifferentConfigRefused)
{
    PmDevice d0, d1;
    HeapPool pool;

    HeapPool::MemberResult a = pool.open("alpha", d0, memberConfig());
    ASSERT_TRUE(a) << nvStatusName(a.status);
    ASSERT_NE(a.heap, nullptr);
    EXPECT_FALSE(a.existing);
    EXPECT_TRUE(a.heap->config().fault_containment)
        << "pool must force containment on";

    // Identical config: the same member comes back.
    HeapPool::MemberResult again = pool.open("alpha", d0, memberConfig());
    ASSERT_TRUE(again);
    EXPECT_TRUE(again.existing);
    EXPECT_EQ(again.heap, a.heap);
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.stats().reopen_hits.load(), 1u);

    // Different config: refused, recorded on the existing member.
    NvAllocConfig other = memberConfig();
    other.consistency = Consistency::Gc;
    HeapPool::MemberResult bad = pool.open("alpha", d1, other);
    EXPECT_EQ(bad.status, NvStatus::InvalidArgument);
    EXPECT_EQ(bad.heap, nullptr);
    EXPECT_EQ(a.heap->lastStatus(), NvStatus::InvalidArgument);
    EXPECT_EQ(pool.stats().option_mismatches.load(), 1u);

    // The refusal did not disturb the member.
    ThreadCtx *ctx = a.heap->attachThread();
    uint64_t off = a.heap->allocOffset(*ctx, 128, nullptr);
    EXPECT_NE(off, 0u);
    a.heap->freeOffset(*ctx, off, nullptr);
    a.heap->detachThread(ctx);
    EXPECT_EQ(a.heap->health(), HeapHealth::Serving);

    EXPECT_EQ(pool.close("alpha"), NvStatus::Ok);
    EXPECT_EQ(pool.close("alpha"), NvStatus::InvalidArgument);
    EXPECT_EQ(pool.size(), 0u);
}

TEST(PoolQuota, CapacityQuotaConfinesOneTenant)
{
    PmDevice d0, d1;
    HeapPool pool;

    NvAllocConfig capped = memberConfig();
    capped.capacity_quota_bytes = uint64_t{1} << 20; // 1 MB of extents
    NvAlloc *small = pool.open("capped", d0, capped).heap;
    NvAlloc *wide = pool.open("wide", d1, memberConfig()).heap;
    ASSERT_NE(small, nullptr);
    ASSERT_NE(wide, nullptr);

    // A small allocation first, so a slab exists before the quota
    // (which bounds *all* activated extents, slabs included) fills up.
    ThreadCtx *sc = small->attachThread();
    uint64_t probe = small->allocOffset(*sc, 128, nullptr);
    ASSERT_NE(probe, 0u);

    // Fill the capped tenant's extent quota.
    std::vector<uint64_t> held;
    for (;;) {
        uint64_t off = small->allocOffset(*sc, 256 * 1024, nullptr);
        if (off == 0)
            break;
        held.push_back(off);
        ASSERT_LE(held.size(), 64u) << "quota never enforced";
    }
    EXPECT_EQ(small->lastStatus(), NvStatus::QuotaExceeded);
    EXPECT_GE(held.size(), 2u); // the quota was usable up to the cap

    // Quota exhaustion is resource pressure, not corruption: the
    // member stays Serving, and small allocations backed by the
    // already-activated slab still work.
    EXPECT_EQ(small->health(), HeapHealth::Serving);
    uint64_t probe2 = small->allocOffset(*sc, 128, nullptr);
    EXPECT_NE(probe2, 0u);
    small->freeOffset(*sc, probe2, nullptr);
    small->freeOffset(*sc, probe, nullptr);

    // ...and the sibling's extent path is unaffected.
    ThreadCtx *wc = wide->attachThread();
    uint64_t big = wide->allocOffset(*wc, 256 * 1024, nullptr);
    EXPECT_NE(big, 0u);
    wide->freeOffset(*wc, big, nullptr);
    wide->detachThread(wc);

    // Freeing extents returns quota headroom.
    for (uint64_t off : held)
        small->freeOffset(*sc, off, nullptr);
    EXPECT_NE(small->allocOffset(*sc, 256 * 1024, nullptr), 0u);
    small->detachThread(sc);
}

TEST(PoolContainment, VictimRefusesSiblingServesThenRestores)
{
    PmDevice d0, d1;
    HeapPool pool;
    NvAlloc *victim = pool.open("victim", d0, memberConfig()).heap;
    NvAlloc *sibling = pool.open("sibling", d1, memberConfig()).heap;
    ASSERT_NE(victim, nullptr);
    ASSERT_NE(sibling, nullptr);

    ThreadCtx *vc = victim->attachThread();
    ThreadCtx *sc = sibling->attachThread();

    uint64_t off = victim->allocOffset(*vc, 256, nullptr);
    ASSERT_NE(off, 0u);
    EXPECT_EQ(victim->freeOffset(*vc, off, nullptr), NvStatus::Ok);

    uint64_t sibling_fails_before = ~0ull;
    ASSERT_EQ(sibling->ctlRead("stats.degraded.failed_allocs",
                               &sibling_fails_before),
              NvStatus::Ok);

    // A double free is detected by the hardened free pipeline and,
    // under containment, escalates the victim to Degraded.
    EXPECT_NE(victim->freeOffset(*vc, off, nullptr), NvStatus::Ok);
    EXPECT_EQ(victim->health(), HeapHealth::Degraded);

    // The victim refuses new mutations with HeapUnhealthy...
    EXPECT_EQ(victim->allocOffset(*vc, 256, nullptr), 0u);
    EXPECT_EQ(victim->lastStatus(), NvStatus::HeapUnhealthy);

    // ...while the sibling serves with zero failed operations.
    for (int i = 0; i < 32; ++i) {
        uint64_t s = sibling->allocOffset(*sc, 64 + 32 * i, nullptr);
        ASSERT_NE(s, 0u);
        sibling->freeOffset(*sc, s, nullptr);
    }
    uint64_t sibling_fails_after = ~0ull;
    ASSERT_EQ(sibling->ctlRead("stats.degraded.failed_allocs",
                               &sibling_fails_after),
              NvStatus::Ok);
    EXPECT_EQ(sibling_fails_after, sibling_fails_before);
    EXPECT_EQ(sibling->health(), HeapHealth::Serving);

    // The pool snapshot reflects both states.
    bool saw_victim = false;
    for (const HeapPool::MemberHealth &m : pool.snapshot()) {
        if (m.name == "victim") {
            saw_victim = true;
            EXPECT_EQ(m.health, HeapHealth::Degraded);
            EXPECT_GE(m.escalations, 1u);
            EXPECT_FALSE(m.last_reason.empty());
        } else {
            EXPECT_EQ(m.health, HeapHealth::Serving);
        }
    }
    EXPECT_TRUE(saw_victim);
    EXPECT_GE(pool.stats().escalations.load(), 1u);

    // restore() repairs (nothing persistent was damaged — the bad
    // free was rejected) and returns the victim to Serving. The
    // tenant quiesces first: the auditor needs no lent blocks.
    victim->detachThread(vc);
    EXPECT_EQ(pool.restore("victim"), NvStatus::Ok);
    EXPECT_EQ(victim->health(), HeapHealth::Serving);
    EXPECT_GE(pool.stats().restores.load(), 1u);

    vc = victim->attachThread();
    uint64_t back = victim->allocOffset(*vc, 256, nullptr);
    EXPECT_NE(back, 0u);
    victim->freeOffset(*vc, back, nullptr);
    victim->detachThread(vc);
    sibling->detachThread(sc);
}

TEST(PoolQuarantine, PatrolEscalatesSiblingOpensRestoreRepairs)
{
    PmDevice d0, d1, d2;
    HeapPool pool;
    NvAlloc *victim = pool.open("victim", d0, memberConfig()).heap;
    NvAlloc *sibling = pool.open("sibling", d1, memberConfig()).heap;
    ASSERT_NE(victim, nullptr);
    ASSERT_NE(sibling, nullptr);

    ThreadCtx *vc = victim->attachThread();
    std::vector<uint64_t> offs;
    for (int i = 0; i < 48; ++i)
        offs.push_back(victim->allocOffset(*vc, 96, nullptr));

    // A stray persistent bitmap bit: popcount no longer matches the
    // live count, which the patrol can detect but not repair in
    // place — the victim must cross into Quarantined.
    bool flipped = false;
    for (unsigned a = 0; a < victim->numArenas() && !flipped; ++a) {
        victim->arena(a).forEachSlab([&](VSlab *sl) {
            if (flipped || sl->morphing())
                return;
            sl->header()->bitmap[kSlabBitmapBytes - 1] ^= 0x80;
            flipped = true;
        });
    }
    ASSERT_TRUE(flipped);

    ASSERT_TRUE(patrolUntil(*victim, HeapHealth::Quarantined))
        << "patrol did not quarantine within budget, health="
        << heapHealthName(victim->health());
    EXPECT_GE(pool.stats().quarantines.load(), 1u);

    // Sibling operations — including a brand-new member open — are
    // legal while the victim sits quarantined.
    NvAlloc *late = pool.open("late", d2, memberConfig()).heap;
    ASSERT_NE(late, nullptr);
    EXPECT_EQ(late->health(), HeapHealth::Serving);
    ThreadCtx *lc = late->attachThread();
    uint64_t loff = late->allocOffset(*lc, 512, nullptr);
    EXPECT_NE(loff, 0u);
    late->freeOffset(*lc, loff, nullptr);
    late->detachThread(lc);
    EXPECT_EQ(sibling->health(), HeapHealth::Serving);
    EXPECT_EQ(pool.names().size(), 3u);

    // restore() rebuilds the persistent bitmap from the live state;
    // the tenant quiesces (detaches) first so no blocks are lent.
    victim->detachThread(vc);
    EXPECT_EQ(pool.restore("victim"), NvStatus::Ok);
    EXPECT_EQ(victim->health(), HeapHealth::Serving);

    vc = victim->attachThread();
    for (uint64_t off : offs)
        if (off)
            victim->freeOffset(*vc, off, nullptr);
    victim->detachThread(vc);
    HeapAuditor auditor(*victim);
    EXPECT_TRUE(auditor.audit().clean());
}

// ---------------------------------------------------------------------
// Pool chaos: the 4-tenant containment soak (tools/pool_chaos_harness.h)
// in a deterministic short configuration. The long soak is the
// DISABLED_ test below, registered under the `soak` ctest config.
// ---------------------------------------------------------------------

TEST(PoolChaos, ShortSoakContainsEveryClass)
{
    ChaosOptions o;
    o.seed = 20260809;
    o.rounds = 22; // two full cycles over the 11 classes
    PoolChaosHarness h(o);
    EXPECT_TRUE(h.runPool()) << h.error();
    EXPECT_EQ(h.roundsRun(), o.rounds);
    for (unsigned e = 0; e < ChaosHarness::kEventCount; ++e) {
        ChaosEvent ev = ChaosEvent(e);
        EXPECT_GT(h.injected(ev), 0u) << chaosEventName(ev);
        EXPECT_EQ(h.detected(ev), h.injected(ev) - h.skipped(ev))
            << chaosEventName(ev) << " injected but not detected";
    }
}

TEST(PoolChaos, DeterministicForSeed)
{
    ChaosOptions o;
    o.seed = 777;
    o.rounds = 11;
    PoolChaosHarness a(o), b(o);
    ASSERT_TRUE(a.runPool()) << a.error();
    ASSERT_TRUE(b.runPool()) << b.error();
    for (unsigned e = 0; e < ChaosHarness::kEventCount; ++e) {
        ChaosEvent ev = ChaosEvent(e);
        EXPECT_EQ(a.injected(ev), b.injected(ev)) << chaosEventName(ev);
        EXPECT_EQ(a.detected(ev), b.detected(ev)) << chaosEventName(ev);
        EXPECT_EQ(a.skipped(ev), b.skipped(ev)) << chaosEventName(ev);
    }
}

/** Long pool soak — excluded from the default ctest run; registered
 *  under the `soak` configuration/label (tests/CMakeLists.txt). */
TEST(PoolChaos, DISABLED_LongSoak)
{
    ChaosOptions o;
    o.seed = 20260809;
    o.rounds = 200;
    PoolChaosHarness h(o);
    EXPECT_TRUE(h.runPool()) << h.error();
    EXPECT_EQ(h.roundsRun(), o.rounds);
}

// ---------------------------------------------------------------------
// Crash points inside a patrol-scrub slice. The patrol persists header
// repairs; crashing at the nth flush after the patrol starts lands the
// crash inside (or between) repair persists. Safety contract: recovery
// completes, the heap audits clean (an unrepaired slab is quarantined
// and leaked — contained, not fatal), and the heap keeps serving.
// Honours NVALLOC_MAINTENANCE=manual|thread like the other sweeps, so
// the CI thread leg also proves patrol slices racing the background
// maintenance thread.
// ---------------------------------------------------------------------

class PatrolCrashMatrix : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PatrolCrashMatrix, RecoversAuditCleanFromPatrolSliceCrash)
{
    const unsigned nth = GetParam();
    SCOPED_TRACE(::testing::Message() << "patrol flush=" << nth);

    NvAllocConfig cfg = memberConfig();
    const char *env = std::getenv("NVALLOC_MAINTENANCE");
    if (env && std::strcmp(env, "thread") == 0)
        cfg.maintenance_mode = MaintenanceMode::Thread;

    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 28;
    dcfg.shadow = true;
    PmDevice dev(dcfg);

    {
        auto alloc_h = NvAlloc::openOrDie(dev, cfg);
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();

        // Seeded mixed workload so the patrol has slabs to walk.
        constexpr unsigned kSlots = 64;
        uint64_t slots[kSlots] = {};
        Rng rng(nth * 7919u + 3);
        for (unsigned op = 0; op < 300; ++op) {
            unsigned s = unsigned(rng.nextBounded(kSlots));
            if (slots[s] == 0)
                slots[s] =
                    alloc.allocOffset(*ctx, 32 + rng.nextBounded(480),
                                      nullptr);
            else
                alloc.freeOffset(*ctx, slots[s], nullptr),
                    slots[s] = 0;
        }

        // Smash a handful of slab headers: each one is a patrol
        // finding whose repair persists — a flush point inside the
        // patrol slice.
        unsigned smashed = 0;
        for (unsigned a = 0; a < alloc.numArenas() && smashed < 4; ++a) {
            alloc.arena(a).forEachSlab([&](VSlab *sl) {
                if (smashed < 4 && !sl->morphing()) {
                    sl->header()->size_class ^= 0x55;
                    ++smashed;
                }
            });
        }
        ASSERT_GT(smashed, 0u);

        dev.armCrashAtFlush(nth);
        for (unsigned slice = 0;
             slice < 512 && !dev.crashTriggered(); ++slice)
            alloc.patrolSlice();
        alloc.simulateCrash();
    }

    // Recovery must complete; damage the patrol had not yet durably
    // repaired is contained (slab quarantined), never fatal.
    auto again_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &again = *again_h;
    EXPECT_TRUE(again.lastRecovery().performed);

    HeapAuditor auditor(again);
    AuditReport rep = auditor.audit();
    EXPECT_TRUE(rep.clean()) << rep.summary();

    // Still serving: fresh traffic and a full patrol pass stay quiet.
    ThreadCtx *ctx = again.attachThread();
    uint64_t probe = again.allocOffset(*ctx, 192, nullptr);
    EXPECT_NE(probe, 0u);
    again.freeOffset(*ctx, probe, nullptr);
    again.detachThread(ctx);

    uint64_t passes_before = 0;
    ASSERT_EQ(again.ctlRead("stats.scrub.passes", &passes_before),
              NvStatus::Ok);
    for (unsigned slice = 0; slice < 4096; ++slice) {
        uint64_t passes = 0;
        again.patrolSlice();
        again.ctlRead("stats.scrub.passes", &passes);
        if (passes > passes_before)
            break;
    }
    EXPECT_EQ(again.health(), HeapHealth::Serving);
}

INSTANTIATE_TEST_SUITE_P(PatrolSliceCrashPoints, PatrolCrashMatrix,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u));

} // namespace
} // namespace nvalloc
