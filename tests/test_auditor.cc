/**
 * @file
 * HeapAuditor tests: a healthy heap audits clean; each class of
 * injected damage is detected as the right violation; repair rebuilds
 * everything derivable and the repaired heap audits clean again.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "nvalloc/auditor.h"
#include "nvalloc/nvalloc.h"

namespace nvalloc {
namespace {

struct Heap
{
    explicit Heap(Consistency c = Consistency::Log,
                  size_t dev_size = size_t{256} << 20)
        : dcfg{}, dev{(dcfg.size = dev_size, dcfg)},
          alloc_h{NvAlloc::openOrDie(dev, makeCfg(c))},
          alloc{*alloc_h}, ctx{alloc.attachThread()}
    {
    }

    static NvAllocConfig
    makeCfg(Consistency c)
    {
        NvAllocConfig cfg;
        cfg.consistency = c;
        return cfg;
    }

    /** Mixed sizes, some frees; leaves live objects behind. */
    std::vector<uint64_t>
    churn(unsigned ops = 3000)
    {
        static const size_t sizes[] = {16,   96,       512,      2048,
                                       8192, 24 * 1024, 128 * 1024};
        std::vector<uint64_t> live;
        uint64_t rng = 0x2545f4914f6cdd1dULL;
        for (unsigned i = 0; i < ops; ++i) {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            if (live.empty() || rng % 3 != 0) {
                uint64_t off = alloc.allocOffset(
                    *ctx, sizes[rng % 7], nullptr);
                if (off)
                    live.push_back(off);
            } else {
                size_t pick = rng % live.size();
                alloc.freeOffset(*ctx, live[pick], nullptr);
                live[pick] = live.back();
                live.pop_back();
            }
        }
        return live;
    }

    VSlab *
    quietSlab()
    {
        VSlab *found = nullptr;
        for (unsigned a = 0; a < alloc.numArenas() && !found; ++a) {
            alloc.arena(a).forEachSlab([&](VSlab *s) {
                if (!found && !s->morphing() && s->lentBlocks() == 0)
                    found = s;
            });
        }
        return found;
    }

    PmDeviceConfig dcfg;
    PmDevice dev;
    std::unique_ptr<NvAlloc> alloc_h;
    NvAlloc &alloc;
    ThreadCtx *ctx;
};

TEST(Auditor, HealthyHeapAuditsClean)
{
    for (Consistency c : {Consistency::Log, Consistency::Gc}) {
        Heap h(c);
        ASSERT_NE(h.ctx, nullptr);
        h.churn();
        AuditReport rep = HeapAuditor(h.alloc).audit();
        EXPECT_EQ(rep.violations(), 0u) << rep.summary();
        EXPECT_TRUE(rep.clean());
    }
}

TEST(Auditor, InPlaceDescriptorHeapAuditsClean)
{
    // The Base config: no bookkeeping log, in-place descriptors.
    PmDeviceConfig dcfg;
    dcfg.size = size_t{256} << 20;
    PmDevice dev(dcfg);
    NvAllocConfig cfg;
    cfg.consistency = Consistency::Log;
    cfg.log_bookkeeping = false;
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();
    ASSERT_NE(ctx, nullptr);
    for (unsigned i = 0; i < 500; ++i)
        alloc.allocOffset(*ctx, 40 * 1024, nullptr);
    AuditReport rep = HeapAuditor(alloc).audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();
}

TEST(Auditor, StrayBitmapBitIsDetectedAndRebuilt)
{
    Heap h;
    ASSERT_NE(h.ctx, nullptr);
    h.churn();
    VSlab *slab = h.quietSlab();
    ASSERT_NE(slab, nullptr);

    // A bit beyond the geometry's mapped slots: allocated-per-bitmap
    // but not live — exactly what a torn bitmap flush leaves behind.
    slab->header()->bitmap[kSlabBitmapBytes - 1] ^= 0x80;

    HeapAuditor auditor(h.alloc);
    AuditReport rep = auditor.audit();
    EXPECT_EQ(rep.bitmap_mismatch, 1u) << rep.summary();

    AuditReport fixed = auditor.repair();
    EXPECT_EQ(fixed.repaired_bitmaps, 1u) << fixed.summary();
    AuditReport after = auditor.audit();
    EXPECT_EQ(after.violations(), 0u) << after.summary();
}

TEST(Auditor, CorruptSlabHeaderIsDetectedAndRewritten)
{
    Heap h;
    ASSERT_NE(h.ctx, nullptr);
    h.churn();
    VSlab *slab = h.quietSlab();
    ASSERT_NE(slab, nullptr);

    // Tear the header's first line: the crc no longer matches.
    slab->header()->size_class ^= 0x55;

    HeapAuditor auditor(h.alloc);
    AuditReport rep = auditor.audit();
    EXPECT_GE(rep.slab_header_bad, 1u) << rep.summary();

    AuditReport fixed = auditor.repair();
    EXPECT_GE(fixed.repaired_headers, 1u) << fixed.summary();
    AuditReport after = auditor.audit();
    EXPECT_EQ(after.violations(), 0u) << after.summary();
}

TEST(Auditor, PoisonedFreeLineIsScrubbedPoisonedLiveLineIsNot)
{
    Heap h;
    ASSERT_NE(h.ctx, nullptr);
    std::vector<uint64_t> live = h.churn();
    ASSERT_FALSE(live.empty());

    // One poisoned line in unmapped space (free) and one inside a
    // live block (user data: not the auditor's to scrub).
    h.dev.poisonLine(h.dev.size() - kCacheLine);
    uint64_t live_line = live.front() & ~uint64_t(kCacheLine - 1);
    h.dev.poisonLine(live_line);

    HeapAuditor auditor(h.alloc);
    AuditReport rep = auditor.audit();
    EXPECT_EQ(rep.poisoned_free_lines, 1u) << rep.summary();
    EXPECT_EQ(rep.poisoned_live_lines, 1u) << rep.summary();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();

    AuditReport fixed = auditor.repair();
    EXPECT_EQ(fixed.scrubbed_lines, 1u) << fixed.summary();

    AuditReport after = auditor.audit();
    EXPECT_EQ(after.poisoned_free_lines, 0u) << after.summary();
    EXPECT_EQ(after.poisoned_live_lines, 1u) << after.summary();
    EXPECT_TRUE(h.dev.isPoisoned(h.dev.at(live_line), 8));
}

TEST(Auditor, TornWalEntryIsDetectedAndZeroed)
{
    Heap h;
    ASSERT_NE(h.ctx, nullptr);
    h.churn(500);

    auto *e = static_cast<WalEntry *>(
        h.dev.at(h.alloc.walRingOffset(3)));
    e->block_op = (uint64_t(0x777) << 2) | kWalAlloc;
    e->seq = 9;
    e->where_off = kWalNoWhere;
    e->size = 128;
    e->crc = walEntryCrc(*e) ^ 0x1; // torn

    HeapAuditor auditor(h.alloc);
    AuditReport rep = auditor.audit();
    EXPECT_EQ(rep.wal_entry_bad, 1u) << rep.summary();

    AuditReport fixed = auditor.repair();
    EXPECT_EQ(fixed.repaired_wal_entries, 1u) << fixed.summary();
    AuditReport after = auditor.audit();
    EXPECT_EQ(after.violations(), 0u) << after.summary();
}

TEST(Auditor, DoubleFreeLeavesHeapCleanAndAccounted)
{
    Heap h;
    ASSERT_NE(h.ctx, nullptr);
    uint64_t off = h.alloc.allocOffset(*h.ctx, 256, nullptr);
    ASSERT_NE(off, 0u);
    ASSERT_EQ(h.alloc.freeOffset(*h.ctx, off, nullptr), NvStatus::Ok);

    uint64_t before = h.alloc.degradedStats().invalid_frees.load();
    EXPECT_EQ(h.alloc.freeOffset(*h.ctx, off, nullptr),
              NvStatus::InvalidFree);
    EXPECT_EQ(h.alloc.degradedStats().invalid_frees.load(), before + 1);

    // Foreign pointers (never allocated / outside any slab) likewise.
    EXPECT_EQ(h.alloc.freeOffset(*h.ctx, h.dev.size() - 4096, nullptr),
              NvStatus::InvalidFree);
    EXPECT_EQ(h.alloc.freeOffset(*h.ctx, 0, nullptr),
              NvStatus::InvalidFree);

    AuditReport rep = HeapAuditor(h.alloc).audit();
    EXPECT_EQ(rep.violations(), 0u) << rep.summary();
}

TEST(Auditor, FailedOpenNeverAuditsClean)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{128} << 20;
    PmDevice dev(dcfg);
    uint64_t sb_crc_line;
    {
        auto alloc_h = NvAlloc::openOrDie(dev);
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        ASSERT_NE(ctx, nullptr);
        alloc.allocOffset(*ctx, 512, nullptr);
        alloc.dirtyRestart(); // force the recovery path on reopen
        sb_crc_line = 0;      // superblock root line
    }
    // Corrupt the superblock body so the recovery crc check fails.
    auto *sb_bytes = static_cast<uint8_t *>(dev.at(sb_crc_line));
    sb_bytes[16] ^= 0xff;

    auto again_h = NvAlloc::openOrDie(dev);
    NvAlloc &again = *again_h;
    EXPECT_EQ(again.openStatus(), NvStatus::CorruptMetadata);
    EXPECT_EQ(again.mode(), HeapMode::Failed);
    EXPECT_EQ(again.attachThread(), nullptr);
    EXPECT_EQ(again.lastStatus(), NvStatus::CorruptMetadata);

    AuditReport rep = HeapAuditor(again).audit();
    EXPECT_GT(rep.violations(), 0u) << rep.summary();
}

} // namespace
} // namespace nvalloc
