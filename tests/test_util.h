/**
 * @file
 * Shared helpers for NVAlloc tests.
 */

#ifndef NVALLOC_TESTS_TEST_UTIL_H
#define NVALLOC_TESTS_TEST_UTIL_H

#include "nvalloc/nvalloc.h"

namespace nvalloc {

/** Count live blocks across all slabs, including blocks_before of
 *  morphing slabs (which live in index tables, not bitmaps). */
inline uint64_t
liveSmallBlocks(NvAlloc &alloc)
{
    uint64_t live = 0;
    for (unsigned i = 0; i < alloc.numArenas(); ++i) {
        alloc.arena(i).forEachSlab([&](VSlab *slab) {
            live += slab->liveBlocks() + slab->cntSlab();
        });
    }
    return live;
}

/** True if the block at `off` is allocated — under either the current
 *  or, for morphing slabs, the old geometry. */
inline bool
blockIsLive(NvAlloc &alloc, uint64_t off)
{
    VSlab *slab = static_cast<VSlab *>(alloc.slabRadix().get(off));
    if (!slab)
        return false;
    unsigned old_idx = 0;
    if (slab->isOldBlock(off, old_idx))
        return true;
    unsigned idx = slab->blockIndexOf(off);
    return idx < slab->capacity() && slab->isAllocated(idx);
}

} // namespace nvalloc

#endif // NVALLOC_TESTS_TEST_UTIL_H
