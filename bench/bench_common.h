/**
 * @file
 * Shared scaffolding for the figure-reproduction benches.
 *
 * Each bench binary regenerates one table/figure of the paper: it
 * sweeps the same allocators, thread counts, and workload parameters
 * (scaled; see DESIGN.md §3) and prints the series the paper plots.
 * Metrics are virtual-time throughputs (Mops/s) unless a figure
 * reports memory or counters. `--quick` shrinks the sweep for CI.
 */

#ifndef NVALLOC_BENCH_BENCH_COMMON_H
#define NVALLOC_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <functional>

#include "workloads/workloads.h"

namespace nvalloc {

/** Workload parameter sets, already scaled from the paper's values. */
struct BenchParams
{
    bool quick = false;

    unsigned tt_iters() const { return quick ? 2 : 4; }
    unsigned tt_objs() const { return quick ? 500 : 1000; }
    size_t tt_size() const { return 64; }

    uint64_t
    prodcon_objs(unsigned pairs) const
    {
        uint64_t total = quick ? 8192 : 32768;
        return total / (pairs ? pairs : 1);
    }

    unsigned sh_iters() const { return quick ? 1500 : 5000; }

    unsigned larson_small_slots() const { return 512; }
    unsigned larson_rounds() const { return quick ? 2 : 4; }
    unsigned larson_small_ops() const { return quick ? 800 : 2000; }

    unsigned larson_large_slots() const { return 32; }
    unsigned larson_large_ops() const { return quick ? 200 : 400; }

    unsigned dbms_iters() const { return quick ? 3 : 6; }

    unsigned
    dbms_objs(unsigned threads) const
    {
        unsigned n = (quick ? 256 : 512) / threads;
        return n < 16 ? 16 : n;
    }

    size_t frag_total() const
    {
        return quick ? (size_t{64} << 20) : (size_t{256} << 20);
    }
    size_t frag_live() const
    {
        return quick ? (size_t{12} << 20) : (size_t{48} << 20);
    }
};

/** Fresh device + allocator, run one workload, return the result. */
inline RunResult
runOn(AllocKind kind, const MakeOptions &opts,
      const std::function<RunResult(PmAllocator &, VtimeEpoch &)> &body)
{
    auto dev = makeBenchDevice();
    auto alloc = makeAllocator(kind, *dev, opts);
    VtimeEpoch epoch;
    return body(*alloc, epoch);
}

} // namespace nvalloc

#endif // NVALLOC_BENCH_BENCH_COMMON_H
