/**
 * @file
 * Figure 11: execution-time breakdown (FlushMeta / FlushWAL / Search /
 * Other) of NVAlloc-LOG configurations at 8 threads on Threadtest,
 * Larson-small and DBMStest.
 *
 * Configurations as in the paper:
 *   Base         — no optimization: sequential bitmaps/WAL/tcache and
 *                  in-place extent bookkeeping;
 *   +Interleaved — only the interleaved tcache layout;
 *   +Log         — only log-structured bookkeeping;
 *   NVAlloc-LOG  — everything.
 *
 * Expected shape (§6.2): FlushMeta+FlushWAL ≈ 87% of Base on
 * Threadtest; +Interleaved cuts FlushMeta by ~half; the full system
 * cuts total flush time by ~48%; on DBMStest +Log removes ~45% of
 * flush time and the full system another ~26%.
 */

#include "bench_common.h"

using namespace nvalloc;

namespace {

struct Config
{
    const char *name;
    bool tcache_il, bitmap_il, wal_il, log;
    bool harden;
};

const Config kConfigs[] = {
    {"Base", false, false, false, false, false},
    {"+Interleaved", true, false, false, false, false},
    {"+Log", false, false, false, true, false},
    {"NVAlloc-LOG", true, true, true, true, false},
    // Full system plus the hardened free pipeline (free-side
    // validation, redzone canaries, a 16-deep quarantine). Guard
    // sampling stays off: it reroutes allocations to guard extents
    // and would change what is measured, not just how fast.
    {"+HardenedFree", true, true, true, true, true},
};

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};
    const unsigned kThreads = 8;

    struct Bench
    {
        const char *name;
        std::function<RunResult(PmAllocator &, VtimeEpoch &)> run;
    };
    const Bench benches[] = {
        {"Threadtest",
         [&](PmAllocator &a, VtimeEpoch &e) {
             return threadtest(a, e, kThreads, p.tt_iters(), p.tt_objs(),
                               p.tt_size());
         }},
        {"Larson-small",
         [&](PmAllocator &a, VtimeEpoch &e) {
             return larson(a, e, kThreads, 64, 256,
                           p.larson_small_slots(), p.larson_rounds(),
                           p.larson_small_ops(), args.seed);
         }},
        {"DBMStest",
         [&](PmAllocator &a, VtimeEpoch &e) {
             return dbmstest(a, e, kThreads, p.dbms_iters(),
                             p.dbms_objs(kThreads), args.seed);
         }},
    };

    for (const Bench &bench : benches) {
        std::printf("## Fig 11 %s — normalized time breakdown "
                    "(8 threads)\n", bench.name);
        std::printf("%-14s %8s | %9s %9s %9s %7s %7s %7s\n", "config",
                    "rel.time", "FlushMeta", "FlushWAL", "FlushLog",
                    "Search", "Lock", "Other");

        double base_time = 0;
        for (const Config &cfg : kConfigs) {
            MakeOptions opts;
            opts.tweak_nvalloc = [&](NvAllocConfig &c) {
                c.interleaved_tcache = cfg.tcache_il;
                c.interleaved_bitmap = cfg.bitmap_il;
                c.interleaved_wal = cfg.wal_il;
                c.interleaved_log = cfg.log && cfg.wal_il;
                c.log_bookkeeping = cfg.log;
                c.hardened_free = cfg.harden;
                c.redzone_canaries = cfg.harden;
                c.quarantine_depth = cfg.harden ? 16 : 0;
            };
            RunResult r = runOn(AllocKind::NvAllocLog, opts,
                                [&](PmAllocator &a, VtimeEpoch &e) {
                                    return bench.run(a, e);
                                });
            double total = 0;
            for (auto v : r.breakdown)
                total += double(v);
            if (base_time == 0)
                base_time = total;

            auto pct = [&](TimeKind k) {
                return 100.0 * double(r.breakdown[unsigned(k)]) / total;
            };
            double other = pct(TimeKind::Other) + pct(TimeKind::Fence) +
                           pct(TimeKind::FlushData) +
                           pct(TimeKind::PmRead);
            std::printf("%-14s %7.2fx | %8.1f%% %8.1f%% %8.1f%% "
                        "%6.1f%% %6.1f%% %6.1f%%\n",
                        cfg.name, total / base_time,
                        pct(TimeKind::FlushMeta), pct(TimeKind::FlushWal),
                        pct(TimeKind::FlushLog), pct(TimeKind::Search),
                        pct(TimeKind::LockWait), other);

            std::string section = std::string("Fig 11 ") + bench.name;
            benchJsonPoint(section, cfg.name, "rel_time",
                           total / base_time);
            benchJsonPoint(section, cfg.name, "FlushMeta",
                           pct(TimeKind::FlushMeta));
            benchJsonPoint(section, cfg.name, "FlushWAL",
                           pct(TimeKind::FlushWal));
            benchJsonPoint(section, cfg.name, "FlushLog",
                           pct(TimeKind::FlushLog));
            benchJsonPoint(section, cfg.name, "Search",
                           pct(TimeKind::Search));
            benchJsonPoint(section, cfg.name, "Lock",
                           pct(TimeKind::LockWait));
            benchJsonPoint(section, cfg.name, "Other", other);
        }
        std::printf("\n");
    }
    return 0;
}
