/**
 * @file
 * Figure 13: space consumption (peak committed PM) of Threadtest and
 * DBMStest runs over thread counts, for jemalloc-style baselines and
 * NVAlloc-LOG. Ralloc is excluded from DBMStest (broken large path)
 * as in the paper; NVAlloc-GC equals NVAlloc-LOG.
 *
 * Expected shape (§6.2): NVAlloc-LOG comparable or better than every
 * baseline on both benchmarks.
 */

#include "bench_common.h"

using namespace nvalloc;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};
    auto threads = benchThreadCounts(args.quick);

    struct Bench
    {
        const char *name;
        bool large;
        std::function<RunResult(PmAllocator &, VtimeEpoch &, unsigned)>
            run;
    };
    const Bench benches[] = {
        {"Threadtest", false,
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             // Larger batches than the throughput figures so the
             // footprint dominates fixed overheads.
             return threadtest(a, e, t, 2, args.quick ? 4000 : 16000,
                               p.tt_size());
         }},
        {"DBMStest", true,
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return dbmstest(a, e, t, p.dbms_iters(), p.dbms_objs(t),
                             args.seed);
         }},
    };

    for (const Bench &bench : benches) {
        printSeriesHeader((std::string("Fig 13 ") + bench.name).c_str(),
                          "peak memory (MiB) vs threads", threads);
        for (AllocKind kind :
             {AllocKind::Pmdk, AllocKind::NvmMalloc, AllocKind::Makalu,
              AllocKind::Ralloc, AllocKind::NvAllocLog}) {
            if (bench.large && kind == AllocKind::Ralloc)
                continue;
            std::vector<double> row;
            for (unsigned t : threads) {
                auto dev = makeBenchDevice();
                auto alloc = makeAllocator(kind, *dev, {});
                VtimeEpoch epoch;
                dev->resetPeak();
                bench.run(*alloc, epoch, t);
                row.push_back(double(dev->peakCommittedBytes()) /
                              (1 << 20));
            }
            printSeriesRow(allocName(kind), row);
        }
        std::printf("\n");
    }
    return 0;
}
