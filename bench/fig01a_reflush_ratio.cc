/**
 * @file
 * Figure 1(a): share of cache-line reflushes among all allocator-
 * induced flush operations for the strongly consistent baselines on
 * Threadtest, Prod-con, Shbench and Larson.
 *
 * Expected shape (paper §3.1): reflushes account for 40.4%-99.7% of
 * all flushes — up to 99.7% for PMDK, 94.4% for nvm_malloc and 98.8%
 * for PAllocator — because they consecutively update small metadata
 * in slab headers and WALs.
 */

#include "bench_common.h"

using namespace nvalloc;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};

    const AllocKind kinds[] = {AllocKind::Pmdk, AllocKind::NvmMalloc,
                               AllocKind::PAllocator};

    struct Bench
    {
        const char *name;
        std::function<RunResult(PmAllocator &, VtimeEpoch &)> run;
    };
    const Bench benches[] = {
        {"Threadtest",
         [&](PmAllocator &a, VtimeEpoch &e) {
             return threadtest(a, e, 1, p.tt_iters(), p.tt_objs(),
                               p.tt_size());
         }},
        {"Prod-con",
         [&](PmAllocator &a, VtimeEpoch &e) {
             return prodcon(a, e, 2, p.prodcon_objs(1), 64);
         }},
        {"Shbench",
         [&](PmAllocator &a, VtimeEpoch &e) {
             return shbench(a, e, 1, p.sh_iters(), args.seed);
         }},
        {"Larson",
         [&](PmAllocator &a, VtimeEpoch &e) {
             return larson(a, e, 1, 64, 256, p.larson_small_slots(),
                           p.larson_rounds(), p.larson_small_ops(),
                           args.seed);
         }},
    };

    std::printf("## Fig 1(a) — %% of flushes that are reflushes "
                "(reflush / regular)\n");
    std::printf("%-12s", "benchmark");
    for (AllocKind kind : kinds)
        std::printf(" %12s", allocName(kind));
    std::printf("\n");

    for (const Bench &bench : benches) {
        std::printf("%-12s", bench.name);
        for (AllocKind kind : kinds) {
            auto dev = makeBenchDevice();
            auto alloc = makeAllocator(kind, *dev, {});
            VtimeEpoch epoch;
            dev->model().reset();
            bench.run(*alloc, epoch);
            auto c = dev->flushCounts();
            double pct =
                c.total ? 100.0 * double(c.reflush) / double(c.total)
                        : 0.0;
            std::printf("  %5.1f/%5.1f", pct, 100.0 - pct);
        }
        std::printf("\n");
    }
    return 0;
}
