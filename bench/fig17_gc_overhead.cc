/**
 * @file
 * Figure 17: overhead of garbage collection on the bookkeeping log,
 * measured on Larson-large and DBMStest with NVAlloc-LOG.
 *
 * "w/o GC" uses a log region large enough that the slow-GC threshold
 * is never reached; "GC" shrinks the region so Usage_pmem forces
 * frequent slow GCs. Expected shape (§6.6): the drop is slight (~3%
 * on Larson-large, ~8% on DBMStest) because log entries are 8 B and
 * copying survivors is cheap.
 */

#include "baselines/nvalloc_adapter.h"
#include "bench_common.h"

using namespace nvalloc;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};
    const unsigned kThreads = 4;

    struct Bench
    {
        const char *name;
        std::function<RunResult(PmAllocator &, VtimeEpoch &)> run;
    };
    const Bench benches[] = {
        {"Larson-large",
         [&](PmAllocator &a, VtimeEpoch &e) {
             return larson(a, e, kThreads, 32 * 1024, 512 * 1024,
                           p.larson_large_slots(), p.larson_rounds(),
                           p.larson_large_ops(), args.seed);
         }},
        {"DBMStest",
         [&](PmAllocator &a, VtimeEpoch &e) {
             return dbmstest(a, e, kThreads, p.dbms_iters(),
                             p.dbms_objs(kThreads), args.seed);
         }},
    };

    std::printf("## Fig 17 — bookkeeping-log GC overhead "
                "(throughput, Mops/s)\n");
    std::printf("%-14s %10s %10s %8s %10s %10s\n", "benchmark",
                "w/o GC", "with GC", "drop", "fast GCs", "slow GCs");

    for (const Bench &bench : benches) {
        double mops[2];
        uint64_t fast = 0, slow = 0;
        for (int gc = 0; gc < 2; ++gc) {
            auto dev = makeBenchDevice();
            MakeOptions opts;
            opts.tweak_nvalloc = [&](NvAllocConfig &c) {
                if (gc == 0) {
                    c.log_file_bytes = 16 * 1024 * 1024;
                    c.log_gc_threshold = 1.1; // never slow-GC
                } else {
                    // Usage_pmem = 0.2%-style pressure: a log so small
                    // that slow GC must run repeatedly.
                    c.log_file_bytes = 32 * 1024;
                    c.log_gc_threshold = 0.25;
                }
            };
            auto alloc = makeAllocator(AllocKind::NvAllocLog, *dev, opts);
            VtimeEpoch epoch;
            RunResult r = bench.run(*alloc, epoch);
            mops[gc] = r.mops();
            if (gc == 1) {
                // Read through the ctl tree — same counters the
                // nvalloc_stat tool and the JSON snapshot report.
                NvAlloc &impl =
                    dynamic_cast<NvAllocAdapter *>(alloc.get())->impl();
                impl.ctlRead("stats.log.fast_gc", &fast);
                impl.ctlRead("stats.log.slow_gc", &slow);
            }
        }
        std::printf("%-14s %10.3f %10.3f %7.1f%% %10llu %10llu\n",
                    bench.name, mops[0], mops[1],
                    100.0 * (1.0 - mops[1] / mops[0]),
                    (unsigned long long)fast, (unsigned long long)slow);
        // Trajectory rows for the bench_compare.py gate (the fg/bg
        // table below stays out: a busy-polling background worker is
        // too scheduling-sensitive to gate on).
        benchJsonPoint("Fig 17 GC overhead",
                       std::string(bench.name) + " w/o GC",
                       std::to_string(kThreads), mops[0]);
        benchJsonPoint("Fig 17 GC overhead",
                       std::string(bench.name) + " with GC",
                       std::to_string(kThreads), mops[1]);
    }

    // Foreground vs. background: the same GC-pressure config, with the
    // maintenance service either off (GC runs inline on the allocating
    // threads, as above) or in Thread mode (a dedicated worker absorbs
    // it). "fg GC ns/op" is the GC virtual time that stayed on the
    // allocating threads per operation: the log's total gc_ns minus
    // whatever the maintenance worker ran (gc_virtual_ns). The bg row
    // should show this share dropping — that is the point of the
    // subsystem.
    std::printf("\n## Fig 17 (cont.) — foreground vs background GC\n");
    std::printf("%-14s %-4s %10s %13s %8s %10s %10s\n", "benchmark",
                "gc", "Mops/s", "fg GC ns/op", "fg %", "slices",
                "slow GCs");
    for (const Bench &bench : benches) {
        for (int bg = 0; bg < 2; ++bg) {
            auto dev = makeBenchDevice();
            MakeOptions opts;
            opts.tweak_nvalloc = [&](NvAllocConfig &c) {
                c.log_file_bytes = 32 * 1024;
                c.log_gc_threshold = 0.25;
                if (bg) {
                    c.maintenance_mode = MaintenanceMode::Thread;
                    c.maintenance_interval_ms = 0; // busy-poll worker
                }
            };
            auto alloc = makeAllocator(AllocKind::NvAllocLog, *dev, opts);
            VtimeEpoch epoch;
            RunResult r = bench.run(*alloc, epoch);
            NvAlloc &impl =
                dynamic_cast<NvAllocAdapter *>(alloc.get())->impl();
            uint64_t gc_total = 0, gc_maint = 0, slices = 0,
                     slow_gcs = 0;
            impl.ctlRead("stats.log.gc_ns", &gc_total);
            impl.ctlRead("stats.maintenance.gc_virtual_ns", &gc_maint);
            impl.ctlRead("stats.maintenance.slices", &slices);
            impl.ctlRead("stats.maintenance.log_slow_gc", &slow_gcs);
            uint64_t fg_ns = gc_total - gc_maint;
            double fg_ns_op =
                r.total_ops ? double(fg_ns) / double(r.total_ops) : 0.0;
            double fg_pct =
                gc_total ? 100.0 * double(fg_ns) / double(gc_total)
                         : 100.0;
            std::printf("%-14s %-4s %10.3f %13.2f %7.1f%% %10llu "
                        "%10llu\n",
                        bench.name, bg ? "bg" : "fg", r.mops(), fg_ns_op,
                        fg_pct, (unsigned long long)slices,
                        (unsigned long long)slow_gcs);
        }
    }
    return 0;
}
