/**
 * @file
 * Figure 17: overhead of garbage collection on the bookkeeping log,
 * measured on Larson-large and DBMStest with NVAlloc-LOG.
 *
 * "w/o GC" uses a log region large enough that the slow-GC threshold
 * is never reached; "GC" shrinks the region so Usage_pmem forces
 * frequent slow GCs. Expected shape (§6.6): the drop is slight (~3%
 * on Larson-large, ~8% on DBMStest) because log entries are 8 B and
 * copying survivors is cheap.
 */

#include "baselines/nvalloc_adapter.h"
#include "bench_common.h"

using namespace nvalloc;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};
    const unsigned kThreads = 4;

    struct Bench
    {
        const char *name;
        std::function<RunResult(PmAllocator &, VtimeEpoch &)> run;
    };
    const Bench benches[] = {
        {"Larson-large",
         [&](PmAllocator &a, VtimeEpoch &e) {
             return larson(a, e, kThreads, 32 * 1024, 512 * 1024,
                           p.larson_large_slots(), p.larson_rounds(),
                           p.larson_large_ops(), args.seed);
         }},
        {"DBMStest",
         [&](PmAllocator &a, VtimeEpoch &e) {
             return dbmstest(a, e, kThreads, p.dbms_iters(),
                             p.dbms_objs(kThreads), args.seed);
         }},
    };

    std::printf("## Fig 17 — bookkeeping-log GC overhead "
                "(throughput, Mops/s)\n");
    std::printf("%-14s %10s %10s %8s %10s %10s\n", "benchmark",
                "w/o GC", "with GC", "drop", "fast GCs", "slow GCs");

    for (const Bench &bench : benches) {
        double mops[2];
        uint64_t fast = 0, slow = 0;
        for (int gc = 0; gc < 2; ++gc) {
            auto dev = makeBenchDevice();
            MakeOptions opts;
            opts.tweak_nvalloc = [&](NvAllocConfig &c) {
                if (gc == 0) {
                    c.log_file_bytes = 16 * 1024 * 1024;
                    c.log_gc_threshold = 1.1; // never slow-GC
                } else {
                    // Usage_pmem = 0.2%-style pressure: a log so small
                    // that slow GC must run repeatedly.
                    c.log_file_bytes = 32 * 1024;
                    c.log_gc_threshold = 0.25;
                }
            };
            auto alloc = makeAllocator(AllocKind::NvAllocLog, *dev, opts);
            VtimeEpoch epoch;
            RunResult r = bench.run(*alloc, epoch);
            mops[gc] = r.mops();
            if (gc == 1) {
                // Read through the ctl tree — same counters the
                // nvalloc_stat tool and the JSON snapshot report.
                NvAlloc &impl =
                    dynamic_cast<NvAllocAdapter *>(alloc.get())->impl();
                impl.ctlRead("stats.log.fast_gc", &fast);
                impl.ctlRead("stats.log.slow_gc", &slow);
            }
        }
        std::printf("%-14s %10.3f %10.3f %7.1f%% %10llu %10llu\n",
                    bench.name, mops[0], mops[1],
                    100.0 * (1.0 - mops[1] / mops[0]),
                    (unsigned long long)fast, (unsigned long long)slow);
    }
    return 0;
}
