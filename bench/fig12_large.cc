/**
 * @file
 * Figure 12: large-allocation throughput (Larson-large: 32-512 KB
 * objects; DBMStest) for PMDK, nvm_malloc, PAllocator, Makalu and
 * NVAlloc-LOG. Ralloc is excluded (broken for large objects) and
 * NVAlloc-GC equals NVAlloc-LOG on this path, both as in the paper.
 *
 * Expected shape (§6.2): NVAlloc-LOG up to 40x/18x/55x/57x faster than
 * PMDK/nvm_malloc/PAllocator/Makalu — log-structured bookkeeping turns
 * the random in-place extent-header updates into sequential appends.
 */

#include "bench_common.h"

using namespace nvalloc;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};
    auto threads = benchThreadCounts(args.quick);

    const AllocKind kinds[] = {AllocKind::Pmdk, AllocKind::NvmMalloc,
                               AllocKind::PAllocator, AllocKind::Makalu,
                               AllocKind::NvAllocLog};

    struct Bench
    {
        const char *name;
        std::function<RunResult(PmAllocator &, VtimeEpoch &, unsigned)>
            run;
    };
    const Bench benches[] = {
        {"Larson-large",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return larson(a, e, t, 32 * 1024, 512 * 1024,
                           p.larson_large_slots(), p.larson_rounds(),
                           p.larson_large_ops(), args.seed);
         }},
        {"DBMStest",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return dbmstest(a, e, t, p.dbms_iters(), p.dbms_objs(t),
                             args.seed);
         }},
    };

    for (const Bench &bench : benches) {
        printSeriesHeader((std::string("Fig 12 ") + bench.name).c_str(),
                          "throughput (Mops/s) vs threads", threads);
        for (AllocKind kind : kinds) {
            std::vector<double> row;
            for (unsigned t : threads) {
                RunResult r = runOn(kind, {},
                                    [&](PmAllocator &a, VtimeEpoch &e) {
                                        return bench.run(a, e, t);
                                    });
                row.push_back(r.mops());
            }
            printSeriesRow(allocName(kind), row);
        }
        std::printf("\n");
    }
    return 0;
}
