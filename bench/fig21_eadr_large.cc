/**
 * @file
 * Figure 21: large allocations on the emulated eADR platform.
 *
 * Expected shape (§6.7): NVAlloc-LOG keeps a large advantage (~11x on
 * average) even without flushes, because the VEH design plus
 * log-structured bookkeeping issues far fewer PM accesses with better
 * locality than in-place extent headers.
 */

#include "bench_common.h"

using namespace nvalloc;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};
    auto threads = benchThreadCounts(args.quick);

    const AllocKind kinds[] = {AllocKind::Pmdk, AllocKind::NvmMalloc,
                               AllocKind::PAllocator, AllocKind::Makalu,
                               AllocKind::NvAllocLog};

    MakeOptions opts;
    opts.eadr = true;
    opts.flush_enabled = false;

    struct Bench
    {
        const char *name;
        std::function<RunResult(PmAllocator &, VtimeEpoch &, unsigned)>
            run;
    };
    const Bench benches[] = {
        {"Larson-large",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return larson(a, e, t, 32 * 1024, 512 * 1024,
                           p.larson_large_slots(), p.larson_rounds(),
                           p.larson_large_ops(), args.seed);
         }},
        {"DBMStest",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return dbmstest(a, e, t, p.dbms_iters(), p.dbms_objs(t),
                             args.seed);
         }},
    };

    for (const Bench &bench : benches) {
        printSeriesHeader(
            (std::string("Fig 21 ") + bench.name + " (eADR)").c_str(),
            "throughput (Mops/s) vs threads", threads);
        for (AllocKind kind : kinds) {
            std::vector<double> row;
            for (unsigned t : threads) {
                RunResult r = runOn(kind, opts,
                                    [&](PmAllocator &a, VtimeEpoch &e) {
                                        return bench.run(a, e, t);
                                    });
                row.push_back(r.mops());
            }
            printSeriesRow(allocName(kind), row);
        }
        std::printf("\n");
    }
    return 0;
}
