/**
 * @file
 * Figure 16: sensitivity analysis.
 *
 *  (a) Number of bit stripes (1..32) vs Threadtest execution time at
 *      several thread counts. Expected shape (§6.5): not monotone —
 *      too few stripes leave reflushes; too many spread the writes
 *      over more XPLines and pressure the XPBuffer; ~6 is the sweet
 *      spot for most thread counts.
 *  (b) Slab-morphing space-utilization threshold SU on Fragbench W4:
 *      larger SU morphs more slabs (less memory, more morph cost).
 */

#include "bench_common.h"

using namespace nvalloc;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};

    // (a) bit stripes.
    const unsigned stripe_counts[] = {1, 2, 3, 4, 5, 6, 7, 8,
                                      12, 16, 24, 32};
    std::vector<unsigned> threads =
        args.quick ? std::vector<unsigned>{4}
                   : std::vector<unsigned>{1, 2, 4, 8, 16, 32};

    std::printf("## Fig 16(a) — Threadtest execution time (virtual "
                "ms) vs #bit stripes\n");
    std::printf("%-8s", "threads");
    for (unsigned s : stripe_counts)
        std::printf(" %8u", s);
    std::printf("\n");
    for (unsigned t : threads) {
        std::printf("%-8u", t);
        for (unsigned stripes : stripe_counts) {
            MakeOptions opts;
            opts.tweak_nvalloc = [&](NvAllocConfig &c) {
                c.bit_stripes = stripes;
            };
            RunResult r = runOn(AllocKind::NvAllocLog, opts,
                                [&](PmAllocator &a, VtimeEpoch &e) {
                                    return threadtest(a, e, t,
                                                      p.tt_iters(),
                                                      p.tt_objs(),
                                                      p.tt_size());
                                });
            std::printf(" %8.2f", double(r.makespan_ns) / 1e6);
        }
        std::printf("\n");
    }

    // (b) morph threshold SU on W4.
    std::printf("\n## Fig 16(b) — Fragbench W4 vs morph threshold "
                "SU\n");
    std::printf("%-6s %14s %16s\n", "SU", "memory (MiB)",
                "time (virtual ms)");
    for (double su : {0.10, 0.20, 0.30, 0.50}) {
        auto dev = makeBenchDevice();
        MakeOptions opts;
        opts.tweak_nvalloc = [&](NvAllocConfig &c) {
            c.morph_threshold = su;
        };
        auto alloc = makeAllocator(AllocKind::NvAllocLog, *dev, opts);
        VtimeEpoch epoch;
        FragResult fr = fragbench(*alloc, epoch, fragWorkloads()[3],
                                  p.frag_total(), p.frag_live(),
                                  args.seed);
        std::printf("%4.0f%% %14.1f %16.1f\n", su * 100,
                    double(fr.peak_bytes) / (1 << 20),
                    double(fr.run.makespan_ns) / 1e6);
    }
    return 0;
}
