/**
 * @file
 * §3.1 microbenchmark (google-benchmark): the latency model's
 * reflush-distance curve and flush-class costs.
 *
 * The paper: "the latency of cache line reflushes is decreased from
 * 800 ns to 500 ns when reflush distance is increased from 0 to 3",
 * and reflush latency is 3x/7x the random/sequential write latency.
 * These benchmarks measure the *virtual* cost the model charges per
 * flush for each access pattern and report it as the `vns_per_flush`
 * counter (wall time of the model code itself is irrelevant).
 */

#include <benchmark/benchmark.h>

#include "pm/pm_device.h"

using namespace nvalloc;

namespace {

/** Charge `n` flushes with a given stride pattern; report virtual ns
 *  per flush. */
void
runPattern(benchmark::State &state, unsigned distinct_lines,
           uint64_t stride)
{
    PmDeviceConfig cfg;
    cfg.size = size_t{1} << 26;
    PmDevice dev(cfg);
    char *base = dev.base();

    uint64_t flushes = 0;
    VClock::reset();
    uint64_t v0 = VClock::now();
    for (auto _ : state) {
        for (unsigned i = 0; i < 256; ++i) {
            uint64_t line = (uint64_t(i) % distinct_lines) * stride;
            dev.flushLine(base + line, TimeKind::FlushMeta);
            ++flushes;
        }
    }
    state.counters["vns_per_flush"] =
        double(VClock::now() - v0) / double(flushes);
}

void
BM_ReflushDistance(benchmark::State &state)
{
    // Cycling over K distinct lines gives every flush a reflush
    // distance of K-1.
    runPattern(state, unsigned(state.range(0)), 64);
}

void
BM_SequentialFlush(benchmark::State &state)
{
    PmDeviceConfig cfg;
    cfg.size = size_t{1} << 30;
    PmDevice dev(cfg);
    char *base = dev.base();
    uint64_t line = 0, flushes = 0;
    VClock::reset();
    uint64_t v0 = VClock::now();
    for (auto _ : state) {
        for (unsigned i = 0; i < 256; ++i) {
            dev.flushLine(base + line, TimeKind::FlushMeta);
            line += 256; // fresh XPLine each flush, sequential
            ++flushes;
        }
    }
    state.counters["vns_per_flush"] =
        double(VClock::now() - v0) / double(flushes);
}

void
BM_RandomFlush(benchmark::State &state)
{
    PmDeviceConfig cfg;
    cfg.size = size_t{1} << 30;
    PmDevice dev(cfg);
    char *base = dev.base();
    uint64_t x = 88172645463325252ULL, flushes = 0;
    VClock::reset();
    uint64_t v0 = VClock::now();
    for (auto _ : state) {
        for (unsigned i = 0; i < 256; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            dev.flushLine(base + (x % (cfg.size / 64)) * 64,
                          TimeKind::FlushMeta);
            ++flushes;
        }
    }
    state.counters["vns_per_flush"] =
        double(VClock::now() - v0) / double(flushes);
}

} // namespace

BENCHMARK(BM_ReflushDistance)->DenseRange(1, 6)->Arg(8)->Arg(16);
BENCHMARK(BM_SequentialFlush);
BENCHMARK(BM_RandomFlush);

BENCHMARK_MAIN();
