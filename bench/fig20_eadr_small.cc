/**
 * @file
 * Figure 20: small allocations on the emulated eADR platform (all
 * clwb removed), strongly consistent allocators.
 *
 * Expected shape (§6.7): NVAlloc-LOG still wins on average (~240%)
 * because its residual PM traffic is lower, but the gaps shrink, and
 * PAllocator's per-thread allocators overtake it at 64 threads on
 * Threadtest while losing on the cross-thread benchmarks.
 */

#include "bench_common.h"

using namespace nvalloc;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};
    auto threads = benchThreadCounts(args.quick);

    struct Bench
    {
        const char *name;
        std::function<RunResult(PmAllocator &, VtimeEpoch &, unsigned)>
            run;
    };
    const Bench benches[] = {
        {"Threadtest",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return threadtest(a, e, t, p.tt_iters(), p.tt_objs(),
                               p.tt_size());
         }},
        {"Prod-con",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return prodcon(a, e, t, p.prodcon_objs(t / 2), 64);
         }},
        {"Shbench",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return shbench(a, e, t, p.sh_iters(), args.seed);
         }},
        {"Larson-small",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return larson(a, e, t, 64, 256, p.larson_small_slots(),
                           p.larson_rounds(), p.larson_small_ops(),
                           args.seed);
         }},
    };

    MakeOptions opts;
    opts.eadr = true;
    opts.flush_enabled = false;

    for (const Bench &bench : benches) {
        printSeriesHeader(
            (std::string("Fig 20 ") + bench.name + " (eADR)").c_str(),
            "throughput (Mops/s) vs threads", threads);
        for (AllocKind kind : strongGroup()) {
            std::vector<double> row;
            for (unsigned t : threads) {
                RunResult r = runOn(kind, opts,
                                    [&](PmAllocator &a, VtimeEpoch &e) {
                                        return bench.run(a, e, t);
                                    });
                row.push_back(r.mops());
            }
            printSeriesRow(allocName(kind), row);
        }
        std::printf("\n");
    }
    return 0;
}
