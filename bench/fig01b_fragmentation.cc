/**
 * @file
 * Figure 1(b): peak memory consumption of allocators with static slab
 * segregation on the Fragbench workloads W1-W4 of Table 1.
 *
 * Expected shape (paper §3.2): managing ~1 unit of live data costs up
 * to 2.8 units of heap because slabs pinned to one size class cannot
 * serve the post-Delete allocation sizes; GC/embedded-list allocators
 * (Makalu, Ralloc) fragment worst. NVAlloc with slab morphing
 * (shown for contrast) stays close to the live size.
 */

#include "bench_common.h"

using namespace nvalloc;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};

    const AllocKind kinds[] = {AllocKind::Pmdk, AllocKind::NvmMalloc,
                               AllocKind::PAllocator, AllocKind::Makalu,
                               AllocKind::Ralloc, AllocKind::NvAllocLog};

    std::printf("## Fig 1(b) — peak memory (MiB) on Fragbench; "
                "live data ~%zu MiB\n", p.frag_live() >> 20);
    std::printf("%-12s", "allocator");
    for (unsigned w = 0; w < kNumFragWorkloads; ++w)
        std::printf(" %10s", fragWorkloads()[w].name);
    std::printf("\n");

    for (AllocKind kind : kinds) {
        std::printf("%-12s", allocName(kind));
        for (unsigned w = 0; w < kNumFragWorkloads; ++w) {
            auto dev = makeBenchDevice();
            auto alloc = makeAllocator(kind, *dev, {});
            VtimeEpoch epoch;
            FragResult fr =
                fragbench(*alloc, epoch, fragWorkloads()[w],
                          p.frag_total(), p.frag_live(), args.seed);
            std::printf(" %10.1f", double(fr.peak_bytes) / (1 << 20));
        }
        std::printf("\n");
    }
    return 0;
}
