/**
 * @file
 * Figure 10: small-allocation throughput of the weakly consistent
 * (GC-based) allocators — Makalu, Ralloc, NVAlloc-GC — on Threadtest,
 * Prod-con, Shbench and Larson-small.
 *
 * Expected shape (paper §6.2): NVAlloc-GC wins (up to 70x over Makalu
 * at scale, up to 6x over Ralloc) because it manages blocks with
 * bitmaps + a volatile DRAM copy while Makalu/Ralloc chase embedded
 * free-list pointers stored in PM; Makalu additionally serializes on
 * central heap structures.
 */

#include "bench_common.h"

using namespace nvalloc;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};
    auto threads = benchThreadCounts(args.quick);

    struct Bench
    {
        const char *name;
        std::function<RunResult(PmAllocator &, VtimeEpoch &, unsigned)>
            run;
    };
    const Bench benches[] = {
        {"Threadtest",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return threadtest(a, e, t, p.tt_iters(), p.tt_objs(),
                               p.tt_size());
         }},
        {"Prod-con",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return prodcon(a, e, t, p.prodcon_objs(t / 2), 64);
         }},
        {"Shbench",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return shbench(a, e, t, p.sh_iters(), args.seed);
         }},
        {"Larson-small",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return larson(a, e, t, 64, 256, p.larson_small_slots(),
                           p.larson_rounds(), p.larson_small_ops(),
                           args.seed);
         }},
    };

    for (const Bench &bench : benches) {
        printSeriesHeader((std::string("Fig 10 ") + bench.name).c_str(),
                          "throughput (Mops/s) vs threads", threads);
        for (AllocKind kind : weakGroup()) {
            std::vector<double> row;
            for (unsigned t : threads) {
                RunResult r = runOn(kind, {},
                                    [&](PmAllocator &a, VtimeEpoch &e) {
                                        return bench.run(a, e, t);
                                    });
                row.push_back(r.mops());
            }
            printSeriesRow(allocName(kind), row);
        }
        std::printf("\n");
    }
    return 0;
}
