/**
 * @file
 * Figure 14: FPTree throughput (50% inserts / 50% deletes, 128 B KV
 * objects) over thread counts, for both allocator groups.
 *
 * Expected shape (§6.3): with NVAlloc-LOG, FPTree reaches up to
 * 1.2x/1.5x/3.1x the throughput it reaches with PMDK / nvm_malloc /
 * PAllocator; NVAlloc-GC improves on the GC group by up to 35.4%.
 * The allocator gap is smaller than in Fig. 9/10 because tree
 * maintenance amortizes allocator cost.
 */

#include "bench_common.h"
#include "common/rng.h"
#include "fptree/fptree.h"

using namespace nvalloc;

namespace {

RunResult
fptreeBench(PmAllocator &alloc, VtimeEpoch &epoch, unsigned threads,
            unsigned warm_keys, unsigned ops_per_thread, uint64_t seed)
{
    FpTree tree(alloc);

    // Warm-up phase (not measured): preload the tree.
    runWorkers(1, epoch, [&](unsigned) -> uint64_t {
        AllocThread *t = alloc.threadAttach();
        Rng rng(seed);
        for (unsigned i = 0; i < warm_keys; ++i)
            tree.insert(t, rng.next(), i);
        alloc.threadDetach(t);
        return warm_keys;
    });

    // Measured phase: 50% insert / 50% delete.
    return runWorkers(threads, epoch, [&](unsigned tid) -> uint64_t {
        AllocThread *t = alloc.threadAttach();
        Rng rng(seed * 7919 + tid);
        std::vector<uint64_t> mine;
        uint64_t base = uint64_t(tid + 1) << 40;
        for (unsigned i = 0; i < ops_per_thread; ++i) {
            if (mine.empty() || rng.nextDouble() < 0.5) {
                uint64_t key = base + rng.next() % (uint64_t{1} << 30);
                if (tree.insert(t, key, key))
                    mine.push_back(key);
            } else {
                size_t pick = rng.nextBounded(mine.size());
                tree.erase(t, mine[pick]);
                mine[pick] = mine.back();
                mine.pop_back();
            }
        }
        alloc.threadDetach(t);
        return ops_per_thread;
    });
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    auto threads = benchThreadCounts(args.quick);
    unsigned warm = args.quick ? 20000 : 100000;
    unsigned ops = args.quick ? 4000 : 10000;

    const char *groups[] = {"strongly consistent", "weakly consistent"};
    for (int g = 0; g < 2; ++g) {
        auto kinds = g == 0 ? strongGroup() : weakGroup();
        printSeriesHeader(
            (std::string("Fig 14 FPTree (") + groups[g] + ")").c_str(),
            "throughput (Mops/s) vs threads", threads);
        for (AllocKind kind : kinds) {
            std::vector<double> row;
            for (unsigned t : threads) {
                RunResult r =
                    runOn(kind, {}, [&](PmAllocator &a, VtimeEpoch &e) {
                        return fptreeBench(a, e, t, warm, ops,
                                           args.seed);
                    });
                row.push_back(r.mops());
            }
            printSeriesRow(allocName(kind), row);
        }
        std::printf("\n");
    }
    return 0;
}
