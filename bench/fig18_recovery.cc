/**
 * @file
 * Figure 18 (table): recovery time after building a singly linked
 * list of nodes sized uniformly in [64, 128] B, then restarting.
 *
 * Expected ordering (§6.6): nvm_malloc (defers reconstruction) «
 * PMDK < NVAlloc-LOG (additionally scans the bookkeeping log) «
 * Ralloc (partial scan) < Makalu ≈ NVAlloc-GC (full conservative GC).
 * The paper builds 10 M nodes; we default to 1 M (×10 noted in the
 * output) and scale further under --quick.
 */

#include "baselines/nvalloc_adapter.h"
#include "bench_common.h"
#include "common/rng.h"

using namespace nvalloc;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    unsigned nodes = args.quick ? 100000 : 1000000;

    std::printf("## Fig 18 — recovery time after a %u-node list "
                "(paper: 10M nodes)\n", nodes);
    std::printf("%-14s %16s\n", "allocator", "time (virtual)");

    const AllocKind kinds[] = {AllocKind::NvmMalloc, AllocKind::Pmdk,
                               AllocKind::NvAllocLog, AllocKind::Ralloc,
                               AllocKind::Makalu, AllocKind::NvAllocGc};

    for (AllocKind kind : kinds) {
        auto dev = makeBenchDevice(size_t{6} << 30);
        MakeOptions opts;
        auto alloc = makeAllocator(kind, *dev, opts);
        VtimeEpoch epoch;

        // Build the linked list: node[i] stores the offset of
        // node[i+1] in its first word.
        runWorkers(1, epoch, [&](unsigned) -> uint64_t {
            AllocThread *t = alloc->threadAttach();
            Rng rng(args.seed);
            uint64_t prev = 0;
            for (unsigned i = 0; i < nodes; ++i) {
                size_t size = rng.uniform(64, 128);
                uint64_t off = alloc->allocTo(t, size, nullptr);
                *static_cast<uint64_t *>(dev->at(off)) = prev;
                prev = off;
            }
            // Root the list for the GC variants.
            if (auto *nv = dynamic_cast<NvAllocAdapter *>(alloc.get()))
                *nv->impl().rootWord(0) = prev;
            alloc->threadDetach(t);
            return nodes;
        });

        uint64_t vns = 0;
        runWorkers(1, epoch, [&](unsigned) -> uint64_t {
            vns = alloc->recover();
            return 1;
        });

        if (vns >= 1000000)
            std::printf("%-14s %13.1f ms\n", allocName(kind),
                        double(vns) / 1e6);
        else
            std::printf("%-14s %13.1f us\n", allocName(kind),
                        double(vns) / 1e3);
    }
    return 0;
}
