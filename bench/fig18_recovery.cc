/**
 * @file
 * Figure 18 (table): recovery time after building a singly linked
 * list of nodes sized uniformly in [64, 128] B, then restarting.
 *
 * Expected ordering (§6.6): nvm_malloc (defers reconstruction) «
 * PMDK < NVAlloc-LOG (additionally scans the bookkeeping log) «
 * Ralloc (partial scan) < Makalu ≈ NVAlloc-GC (full conservative GC).
 * The paper builds 10 M nodes; we default to 1 M (×10 noted in the
 * output) and scale further under --quick.
 */

#include "baselines/nvalloc_adapter.h"
#include "bench_common.h"
#include "common/rng.h"

using namespace nvalloc;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    unsigned nodes = args.quick ? 100000 : 1000000;

    std::printf("## Fig 18 — recovery time after a %u-node list "
                "(paper: 10M nodes)\n", nodes);
    std::printf("%-22s %16s\n", "allocator", "time (virtual)");

    // NVAlloc-LOG appears twice: with recovery checksum verification
    // (the hardened default: every WAL entry, log chunk and slab
    // header is re-checksummed during replay) and with verification
    // off, to expose the integrity tax on restart latency.
    struct Row
    {
        AllocKind kind;
        const char *suffix;
        bool verify_checksums;
    };
    const Row rows[] = {
        {AllocKind::NvmMalloc, "", true},
        {AllocKind::Pmdk, "", true},
        {AllocKind::NvAllocLog, " (csum)", true},
        {AllocKind::NvAllocLog, " (no csum)", false},
        {AllocKind::Ralloc, "", true},
        {AllocKind::Makalu, "", true},
        {AllocKind::NvAllocGc, "", true},
    };

    for (const Row &row : rows) {
        AllocKind kind = row.kind;
        auto dev = makeBenchDevice(size_t{6} << 30);
        MakeOptions opts;
        opts.tweak_nvalloc = [&](NvAllocConfig &cfg) {
            cfg.verify_recovery_checksums = row.verify_checksums;
        };
        auto alloc = makeAllocator(kind, *dev, opts);
        VtimeEpoch epoch;

        // Build the linked list: node[i] stores the offset of
        // node[i+1] in its first word.
        runWorkers(1, epoch, [&](unsigned) -> uint64_t {
            AllocThread *t = alloc->threadAttach();
            Rng rng(args.seed);
            uint64_t prev = 0;
            for (unsigned i = 0; i < nodes; ++i) {
                size_t size = rng.uniform(64, 128);
                uint64_t off = alloc->allocTo(t, size, nullptr);
                *static_cast<uint64_t *>(dev->at(off)) = prev;
                prev = off;
            }
            // Root the list for the GC variants.
            if (auto *nv = dynamic_cast<NvAllocAdapter *>(alloc.get()))
                *nv->impl().rootWord(0) = prev;
            alloc->threadDetach(t);
            return nodes;
        });

        uint64_t vns = 0;
        runWorkers(1, epoch, [&](unsigned) -> uint64_t {
            vns = alloc->recover();
            return 1;
        });

        char label[64];
        std::snprintf(label, sizeof(label), "%s%s", allocName(kind),
                      row.suffix);
        // Raw vns as well: the checksum-verification tax is real but
        // small (crc math over headers/entries), so it only shows at
        // full precision.
        if (vns >= 1000000)
            std::printf("%-22s %13.1f ms  (%llu vns)\n", label,
                        double(vns) / 1e6, (unsigned long long)vns);
        else
            std::printf("%-22s %13.1f us  (%llu vns)\n", label,
                        double(vns) / 1e3, (unsigned long long)vns);
    }
    return 0;
}
