/**
 * @file
 * Figure 19: impact of the number of bit stripes on the emulated eADR
 * platform (flushes free), Threadtest with 4 threads.
 *
 * Expected shape (§6.7): flat — with no explicit flushes there are no
 * reflushes to avoid, so interleaving has no effect (and NVAlloc
 * disables it when pmem_has_auto_flush() reports eADR).
 */

#include "bench_common.h"

using namespace nvalloc;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};

    const unsigned stripes_list[] = {1, 2, 3, 4, 5, 6, 7, 8,
                                     12, 16, 24, 32};
    std::printf("## Fig 19 — Threadtest (4 threads) on eADR vs #bit "
                "stripes\n");
    std::printf("%-8s %18s\n", "stripes", "time (virtual ms)");
    for (unsigned stripes : stripes_list) {
        MakeOptions opts;
        opts.eadr = true;
        opts.flush_enabled = false;
        // Force interleaving on despite eADR to measure its
        // (non-)effect, as the paper does before disabling it.
        opts.tweak_nvalloc = [&](NvAllocConfig &c) {
            c.interleaved_bitmap = true;
            c.interleaved_tcache = true;
            c.interleaved_wal = true;
            c.interleaved_log = true;
            c.bit_stripes = stripes;
        };
        RunResult r = runOn(AllocKind::NvAllocLog, opts,
                            [&](PmAllocator &a, VtimeEpoch &e) {
                                return threadtest(a, e, 4, p.tt_iters(),
                                                  p.tt_objs(),
                                                  p.tt_size());
                            });
        std::printf("%-8u %18.2f\n", stripes,
                    double(r.makespan_ns) / 1e6);
    }
    return 0;
}
