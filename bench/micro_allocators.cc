/**
 * @file
 * google-benchmark microbenchmarks of the allocators' hot paths:
 * single-threaded malloc/free pairs for one small and one large size,
 * reporting both real wall time (code efficiency) and modeled virtual
 * ns per operation (the figure-level metric).
 */

#include <benchmark/benchmark.h>

#include "workloads/harness.h"

using namespace nvalloc;

namespace {

void
allocFreePairs(benchmark::State &state, AllocKind kind, size_t size)
{
    auto dev = makeBenchDevice();
    auto alloc = makeAllocator(kind, *dev, {});
    AllocThread *t = alloc->threadAttach();
    VClock::reset();
    uint64_t v0 = VClock::now();
    uint64_t ops = 0;
    for (auto _ : state) {
        uint64_t off = alloc->allocTo(t, size, nullptr);
        benchmark::DoNotOptimize(off);
        alloc->freeFrom(t, off, nullptr);
        ops += 2;
    }
    alloc->threadDetach(t);
    state.counters["vns_per_op"] =
        double(VClock::now() - v0) / double(ops);
}

void BM_Small(benchmark::State &s)
{
    allocFreePairs(s, AllocKind(s.range(0)), 64);
}

void BM_Large(benchmark::State &s)
{
    allocFreePairs(s, AllocKind(s.range(0)), 128 * 1024);
}

} // namespace

BENCHMARK(BM_Small)
    ->Arg(int(AllocKind::Pmdk))
    ->Arg(int(AllocKind::NvmMalloc))
    ->Arg(int(AllocKind::PAllocator))
    ->Arg(int(AllocKind::Makalu))
    ->Arg(int(AllocKind::Ralloc))
    ->Arg(int(AllocKind::NvAllocLog))
    ->Arg(int(AllocKind::NvAllocGc));

BENCHMARK(BM_Large)
    ->Arg(int(AllocKind::Pmdk))
    ->Arg(int(AllocKind::NvmMalloc))
    ->Arg(int(AllocKind::PAllocator))
    ->Arg(int(AllocKind::Makalu))
    ->Arg(int(AllocKind::NvAllocLog));

BENCHMARK_MAIN();
