/**
 * @file
 * Figure 15: the Fragbench evaluation of slab morphing (§6.4).
 *
 *  (a) space consumption of Makalu, NVAlloc-LOG, and NVAlloc-LOG
 *      without slab morphing on W1-W4;
 *  (b) slab-space breakdown by utilization bucket (0-30 / 30-70 /
 *      70-100%) with and without morphing;
 *  (c,d) runtime of the strong and weak groups with and without
 *      morphing.
 *
 * Expected shape: morphing reduces memory by up to 41.9% (57.8% vs
 * the worst baselines), shifts slabs into the high-utilization
 * bucket, and costs ~4.5% runtime.
 */

#include "baselines/nvalloc_adapter.h"
#include "bench_common.h"

using namespace nvalloc;

namespace {

FragResult
runFrag(AllocKind kind, bool morphing, const FragWorkload &w,
        const BenchParams &p, uint64_t seed,
        std::array<uint64_t, 3> *buckets = nullptr)
{
    auto dev = makeBenchDevice();
    MakeOptions opts;
    opts.tweak_nvalloc = [&](NvAllocConfig &c) {
        c.slab_morphing = morphing;
    };
    auto alloc = makeAllocator(kind, *dev, opts);
    VtimeEpoch epoch;
    auto *adapter = dynamic_cast<NvAllocAdapter *>(alloc.get());
    FragResult fr = fragbench(
        *alloc, epoch, w, p.frag_total(), p.frag_live(), seed,
        buckets && adapter
            ? std::function<void()>([&] {
                  *buckets = adapter->impl().slabUtilizationBytes();
              })
            : std::function<void()>());
    return fr;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};
    const FragWorkload *ws = fragWorkloads();

    // (a) space consumption.
    std::printf("## Fig 15(a) — peak memory (MiB), live ~%zu MiB\n",
                p.frag_live() >> 20);
    std::printf("%-22s %8s %8s %8s %8s\n", "allocator", "W1", "W2",
                "W3", "W4");
    struct Row
    {
        const char *name;
        AllocKind kind;
        bool morph;
    };
    const Row rows[] = {
        {"Makalu", AllocKind::Makalu, false},
        {"NVAlloc-LOG", AllocKind::NvAllocLog, true},
        {"NVAlloc-LOG (w/o SM)", AllocKind::NvAllocLog, false},
    };
    for (const Row &row : rows) {
        std::printf("%-22s", row.name);
        for (unsigned w = 0; w < kNumFragWorkloads; ++w) {
            FragResult fr =
                runFrag(row.kind, row.morph, ws[w], p, args.seed);
            std::printf(" %8.1f", double(fr.peak_bytes) / (1 << 20));
        }
        std::printf("\n");
    }

    // (b) slab utilization breakdown (bytes still held in slabs at the
    // measurement point, before the final teardown).
    std::printf("\n## Fig 15(b) — NVAlloc slab space by utilization "
                "(MiB): 0-30%% / 30-70%% / 70-100%%\n");
    std::printf("%-10s %26s %26s\n", "workload", "with morphing",
                "w/o morphing");
    for (unsigned w = 0; w < kNumFragWorkloads; ++w) {
        std::array<uint64_t, 3> with_sm{}, without_sm{};
        runFrag(AllocKind::NvAllocLog, true, ws[w], p, args.seed,
                &with_sm);
        runFrag(AllocKind::NvAllocLog, false, ws[w], p, args.seed,
                &without_sm);
        auto mb = [](uint64_t b) { return double(b) / (1 << 20); };
        std::printf("%-10s %8.1f/%7.1f/%7.1f  %8.1f/%7.1f/%7.1f\n",
                    ws[w].name, mb(with_sm[0]), mb(with_sm[1]),
                    mb(with_sm[2]), mb(without_sm[0]), mb(without_sm[1]),
                    mb(without_sm[2]));
    }

    // (c,d) runtime with/without morphing plus the other allocators.
    std::printf("\n## Fig 15(c) — execution time (virtual ms), "
                "strongly consistent\n");
    const AllocKind strong[] = {AllocKind::Pmdk, AllocKind::NvmMalloc,
                                AllocKind::NvAllocLog};
    std::printf("%-22s %8s %8s %8s %8s\n", "allocator", "W1", "W2",
                "W3", "W4");
    for (AllocKind kind : strong) {
        for (int morph = (kind == AllocKind::NvAllocLog ? 1 : 0);
             morph >= 0; --morph) {
            std::printf("%-22s",
                        kind == AllocKind::NvAllocLog
                            ? (morph ? "NVAlloc-LOG"
                                     : "NVAlloc-LOG (w/o SM)")
                            : allocName(kind));
            for (unsigned w = 0; w < kNumFragWorkloads; ++w) {
                FragResult fr = runFrag(kind, morph != 0, ws[w], p,
                                        args.seed);
                std::printf(" %8.1f",
                            double(fr.run.makespan_ns) / 1e6);
            }
            std::printf("\n");
            if (kind != AllocKind::NvAllocLog)
                break;
        }
    }

    std::printf("\n## Fig 15(d) — execution time (virtual ms), "
                "weakly consistent\n");
    const AllocKind weak[] = {AllocKind::Makalu, AllocKind::Ralloc,
                              AllocKind::NvAllocGc};
    std::printf("%-22s %8s %8s %8s %8s\n", "allocator", "W1", "W2",
                "W3", "W4");
    for (AllocKind kind : weak) {
        for (int morph = (kind == AllocKind::NvAllocGc ? 1 : 0);
             morph >= 0; --morph) {
            std::printf("%-22s",
                        kind == AllocKind::NvAllocGc
                            ? (morph ? "NVAlloc-GC"
                                     : "NVAlloc-GC (w/o SM)")
                            : allocName(kind));
            for (unsigned w = 0; w < kNumFragWorkloads; ++w) {
                FragResult fr = runFrag(kind, morph != 0, ws[w], p,
                                        args.seed);
                std::printf(" %8.1f",
                            double(fr.run.makespan_ns) / 1e6);
            }
            std::printf("\n");
            if (kind != AllocKind::NvAllocGc)
                break;
        }
    }
    return 0;
}
