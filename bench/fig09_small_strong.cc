/**
 * @file
 * Figure 9: small-allocation throughput of the strongly consistent
 * allocators (PMDK, nvm_malloc, PAllocator, NVAlloc-LOG) on
 * Threadtest, Prod-con, Shbench and Larson-small, over 1-64 threads.
 *
 * Expected shape (paper §6.2): NVAlloc-LOG wins everywhere — up to
 * 6.4x over PMDK, 3.5x over nvm_malloc, 3.9x over PAllocator —
 * because interleaved mapping removes the cache-line reflushes in
 * both bitmap and WAL updates.
 */

#include "bench_common.h"

using namespace nvalloc;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};
    // Fig 9 runs the wide ladder: 64 and 128 threads are where the
    // lock-free small path separates from the mutex-based designs.
    auto threads = benchThreadCountsSmallPath(args.quick);

    struct Bench
    {
        const char *name;
        std::function<RunResult(PmAllocator &, VtimeEpoch &, unsigned)>
            run;
    };
    const Bench benches[] = {
        {"Threadtest",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return threadtest(a, e, t, p.tt_iters(), p.tt_objs(),
                               p.tt_size());
         }},
        {"Prod-con",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return prodcon(a, e, t, p.prodcon_objs(t / 2), 64);
         }},
        {"Shbench",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return shbench(a, e, t, p.sh_iters(), args.seed);
         }},
        {"Larson-small",
         [&](PmAllocator &a, VtimeEpoch &e, unsigned t) {
             return larson(a, e, t, 64, 256, p.larson_small_slots(),
                           p.larson_rounds(), p.larson_small_ops(),
                           args.seed);
         }},
    };

    for (const Bench &bench : benches) {
        printSeriesHeader((std::string("Fig 9 ") + bench.name).c_str(),
                          "throughput (Mops/s) vs threads", threads);
        for (AllocKind kind : strongGroup()) {
            std::vector<double> row;
            for (unsigned t : threads) {
                RunResult r = runOn(kind, {},
                                    [&](PmAllocator &a, VtimeEpoch &e) {
                                        return bench.run(a, e, t);
                                    });
                row.push_back(r.mops());
            }
            printSeriesRow(allocName(kind), row);
        }
        std::printf("\n");
    }
    return 0;
}
