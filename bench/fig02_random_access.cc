/**
 * @file
 * Figure 2: addresses of the first metadata flushes when running
 * DBMStest (large allocations) on nvm_malloc, PAllocator, PMDK and
 * Makalu.
 *
 * The paper's scatter plots show bookkeeping writes sprayed across the
 * whole heap: in-place extent-header updates follow wherever best-fit
 * found an extent. We print a sample of the trace plus dispersion
 * statistics, and contrast with NVAlloc-LOG, whose log-structured
 * bookkeeping turns the same updates into a compact sequential band.
 */

#include <algorithm>
#include <cmath>

#include "bench_common.h"

using namespace nvalloc;

namespace {

struct Dispersion
{
    double span_mb;    //!< max - min address
    double mean_jump;  //!< mean |addr[i+1] - addr[i]|
    double seq_pct;    //!< jumps within 4 KB
};

Dispersion
analyze(const std::vector<uint64_t> &trace)
{
    Dispersion d{0, 0, 0};
    if (trace.size() < 2)
        return d;
    uint64_t lo = *std::min_element(trace.begin(), trace.end());
    uint64_t hi = *std::max_element(trace.begin(), trace.end());
    d.span_mb = double(hi - lo) / (1 << 20);
    double sum = 0;
    unsigned seq = 0;
    for (size_t i = 1; i < trace.size(); ++i) {
        uint64_t a = trace[i - 1], b = trace[i];
        uint64_t jump = a > b ? a - b : b - a;
        sum += double(jump);
        if (jump <= 4096)
            ++seq;
    }
    d.mean_jump = sum / double(trace.size() - 1) / (1 << 10); // KiB
    d.seq_pct = 100.0 * seq / double(trace.size() - 1);
    return d;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};
    bool dump = false;
    for (int i = 1; i < argc; ++i)
        dump = dump || std::string(argv[i]) == "--dump";

    const AllocKind kinds[] = {AllocKind::NvmMalloc,
                               AllocKind::PAllocator, AllocKind::Pmdk,
                               AllocKind::Makalu, AllocKind::NvAllocLog};

    std::printf("## Fig 2 — dispersion of the first 1000 metadata "
                "flush addresses (DBMStest)\n");
    std::printf("%-12s %12s %14s %10s\n", "allocator", "span (MiB)",
                "mean jump(KiB)", "seq %");

    for (AllocKind kind : kinds) {
        auto dev = makeBenchDevice();
        auto alloc = makeAllocator(kind, *dev, {});
        VtimeEpoch epoch;

        // Skip allocator setup noise, then trace.
        dev->model().startTrace(1000);
        dbmstest(*alloc, epoch, 1, p.dbms_iters(), p.dbms_objs(1),
                 args.seed);
        auto trace = dev->model().stopTrace();

        Dispersion d = analyze(trace);
        std::printf("%-12s %12.1f %14.1f %10.1f\n", allocName(kind),
                    d.span_mb, d.mean_jump, d.seq_pct);

        if (dump) {
            std::printf("# trace %s\n", allocName(kind));
            for (size_t i = 0; i < trace.size(); ++i)
                std::printf("%zu %llu\n", i,
                            (unsigned long long)trace[i]);
        }
    }
    return 0;
}
