/**
 * @file
 * Ablation bench beyond the paper's figures: the three consistency
 * variants side by side (LOG / GC / IC — the third being the paper's
 * §4.1 future work), each optimization toggled individually, and the
 * §6.5 dynamic-stripe policy against fixed stripe counts.
 */

#include "bench_common.h"

using namespace nvalloc;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    BenchParams p{args.quick};
    auto threads = benchThreadCounts(args.quick);

    // --- consistency variants ---------------------------------------
    printSeriesHeader("Ablation: consistency variants (Threadtest)",
                      "throughput (Mops/s) vs threads", threads);
    struct Variant
    {
        const char *name;
        Consistency consistency;
    };
    const Variant variants[] = {
        {"NVAlloc-LOG", Consistency::Log},
        {"NVAlloc-GC", Consistency::Gc},
        {"NVAlloc-IC", Consistency::InternalCollection},
    };
    for (const Variant &v : variants) {
        std::vector<double> row;
        for (unsigned t : threads) {
            MakeOptions opts;
            opts.tweak_nvalloc = [&](NvAllocConfig &c) {
                c.consistency = v.consistency;
            };
            RunResult r = runOn(AllocKind::NvAllocLog, opts,
                                [&](PmAllocator &a, VtimeEpoch &e) {
                                    return threadtest(a, e, t,
                                                      p.tt_iters(),
                                                      p.tt_objs(),
                                                      p.tt_size());
                                });
            row.push_back(r.mops());
        }
        printSeriesRow(v.name, row);
    }

    // --- one-out optimization toggles --------------------------------
    std::printf("\n## Ablation: NVAlloc-LOG with one optimization "
                "disabled (Threadtest, 8 threads, virtual ms)\n");
    struct Toggle
    {
        const char *name;
        std::function<void(NvAllocConfig &)> apply;
    };
    const Toggle toggles[] = {
        {"full system", [](NvAllocConfig &) {}},
        {"- interleaved bitmap",
         [](NvAllocConfig &c) { c.interleaved_bitmap = false; }},
        {"- interleaved tcache",
         [](NvAllocConfig &c) { c.interleaved_tcache = false; }},
        {"- interleaved WAL",
         [](NvAllocConfig &c) { c.interleaved_wal = false; }},
        {"- log bookkeeping",
         [](NvAllocConfig &c) { c.log_bookkeeping = false; }},
        {"- slab morphing",
         [](NvAllocConfig &c) { c.slab_morphing = false; }},
    };
    for (const Toggle &toggle : toggles) {
        MakeOptions opts;
        opts.tweak_nvalloc = toggle.apply;
        RunResult r = runOn(AllocKind::NvAllocLog, opts,
                            [&](PmAllocator &a, VtimeEpoch &e) {
                                return threadtest(a, e, 8, p.tt_iters(),
                                                  p.tt_objs(),
                                                  p.tt_size());
                            });
        std::printf("%-22s %10.3f\n", toggle.name,
                    double(r.makespan_ns) / 1e6);
    }

    // --- dynamic stripes ----------------------------------------------
    std::printf("\n## Ablation: dynamic stripe policy vs fixed "
                "(Threadtest, virtual ms)\n");
    std::printf("%-10s", "threads");
    for (const char *label : {"fixed 6", "fixed 8", "dynamic"})
        std::printf(" %10s", label);
    std::printf("\n");
    for (unsigned t : threads) {
        std::printf("%-10u", t);
        for (int mode = 0; mode < 3; ++mode) {
            MakeOptions opts;
            opts.tweak_nvalloc = [&](NvAllocConfig &c) {
                if (mode == 0)
                    c.bit_stripes = 6;
                else if (mode == 1)
                    c.bit_stripes = 8;
                else
                    c.dynamic_stripes = true;
            };
            RunResult r = runOn(AllocKind::NvAllocLog, opts,
                                [&](PmAllocator &a, VtimeEpoch &e) {
                                    return threadtest(a, e, t,
                                                      p.tt_iters(),
                                                      p.tt_objs(),
                                                      p.tt_size());
                                });
            std::printf(" %10.3f", double(r.makespan_ns) / 1e6);
        }
        std::printf("\n");
    }
    return 0;
}
