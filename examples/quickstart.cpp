/**
 * @file
 * Quickstart: the paper's programming model (§4.1) in ~60 lines.
 *
 *   nvalloc_init       -> construct NvAlloc on a PmDevice
 *   nvalloc_malloc_to  -> mallocTo(ctx, size, &persistent_word)
 *   nvalloc_free_from  -> freeFrom(ctx, &persistent_word)
 *   nvalloc_exit       -> destructor (normal shutdown)
 *
 * The attach word lives in persistent memory (here: a superblock root
 * word), so the allocation is failure-atomic: after any crash the
 * block is either reachable from the word or not allocated at all.
 *
 * Build:  cmake --build build && ./build/examples/quickstart
 */

#include <cstdio>
#include <cstring>

#include "nvalloc/nvalloc.h"

using namespace nvalloc;

int
main()
{
    // The emulated persistent memory DIMM (a real deployment would
    // mmap a DAX heap file here).
    PmDevice dev;

    // nvalloc_init: creates a fresh heap, or recovers an existing one.
    auto alloc_h = NvAlloc::openOrDie(dev);
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();

    // A persistent pointer word; applications anchor their top-level
    // structures in one of the superblock's root words.
    uint64_t *root = alloc.rootWord(0);

    // Failure-atomic allocation: the new block's offset is published
    // into *root before mallocTo returns.
    char *msg = static_cast<char *>(alloc.mallocTo(*ctx, 64, root));
    std::snprintf(msg, 64, "hello, persistent world");
    dev.persistFence(msg, 64, TimeKind::FlushData);

    std::printf("allocated 64 B at offset %llu: \"%s\"\n",
                (unsigned long long)*root, msg);

    // Large allocations (> 16 KB) go through the extent allocator and
    // the log-structured bookkeeping — same API.
    uint64_t *root2 = alloc.rootWord(1);
    void *big = alloc.mallocTo(*ctx, 256 * 1024, root2);
    std::memset(big, 0x2a, 256 * 1024);
    std::printf("allocated 256 KiB extent at offset %llu\n",
                (unsigned long long)*root2);

    // nvalloc_free_from: frees the block and clears the word,
    // atomically with respect to failures.
    alloc.freeFrom(*ctx, root);
    alloc.freeFrom(*ctx, root2);
    std::printf("freed both; root words are now %llu and %llu\n",
                (unsigned long long)*root, (unsigned long long)*root2);

    // Allocator-induced flush behaviour is observable:
    auto c = dev.flushCounts();
    std::printf("device saw %llu flushes, %.1f%% of them reflushes\n",
                (unsigned long long)c.total,
                c.total ? 100.0 * double(c.reflush) / double(c.total)
                        : 0.0);

    alloc.detachThread(ctx);
    return 0;
}
