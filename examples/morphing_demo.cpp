/**
 * @file
 * Slab morphing in action (paper §5.2, Fig. 5).
 *
 * Recreates the fragmentation scenario of §3.2 at miniature scale:
 * a workload fills slabs with 64 B objects, frees most of them, then
 * switches to 1 KB objects. With static segregation the sparse 64 B
 * slabs are dead weight; with morphing they transform into 1 KB slabs
 * while their surviving old blocks are tracked through the index
 * table (blocks of two size classes co-located in one slab).
 *
 * The demo prints heap usage and slab states for both configurations.
 */

#include <cstdio>
#include <vector>

#include "nvalloc/nvalloc.h"

using namespace nvalloc;

namespace {

void
run(bool morphing)
{
    PmDevice dev;
    NvAllocConfig cfg;
    cfg.slab_morphing = morphing;
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();

    std::printf("--- slab morphing %s ---\n",
                morphing ? "ENABLED" : "DISABLED");

    // Phase 1: fill with small objects.
    std::vector<uint64_t> small;
    for (int i = 0; i < 20000; ++i)
        small.push_back(alloc.allocOffset(*ctx, 64, nullptr));
    std::printf("phase 1: 20000 x 64 B live, heap = %5.2f MiB\n",
                double(dev.committedBytes()) / (1 << 20));

    // Phase 2: free 95% — slabs become mostly idle but not empty.
    for (size_t i = 0; i < small.size(); ++i) {
        if (i % 20 != 0)
            alloc.freeOffset(*ctx, small[i], nullptr);
    }
    std::printf("phase 2: 1000 survivors,   heap = %5.2f MiB\n",
                double(dev.committedBytes()) / (1 << 20));

    // Phase 3: the workload switches to 1 KB objects (the
    // changing-request-size pattern of Fragbench/Table 1).
    std::vector<uint64_t> big;
    for (int i = 0; i < 1250; ++i)
        big.push_back(alloc.allocOffset(*ctx, 1024, nullptr));

    uint64_t morphs = 0, slabs = 0, morphing_now = 0;
    for (unsigned a = 0; a < alloc.numArenas(); ++a) {
        morphs += alloc.arena(a).stats().morphs;
        alloc.arena(a).forEachSlab([&](VSlab *slab) {
            ++slabs;
            if (slab->morphing())
                ++morphing_now;
        });
    }
    std::printf("phase 3: +1250 x 1 KB,     heap = %5.2f MiB "
                "(%llu slabs, %llu morphed, %llu still carry "
                "blocks of both classes)\n",
                double(dev.committedBytes()) / (1 << 20),
                (unsigned long long)slabs, (unsigned long long)morphs,
                (unsigned long long)morphing_now);

    // Old-geometry survivors stay freeable: release them all, which
    // completes the pending morphs (cnt_slab -> 0).
    for (size_t i = 0; i < small.size(); i += 20)
        alloc.freeOffset(*ctx, small[i], nullptr);
    morphing_now = 0;
    for (unsigned a = 0; a < alloc.numArenas(); ++a) {
        alloc.arena(a).forEachSlab([&](VSlab *slab) {
            if (slab->morphing())
                ++morphing_now;
        });
    }
    std::printf("phase 4: old blocks freed; %llu slab(s) still in "
                "morph state\n\n",
                (unsigned long long)morphing_now);

    for (uint64_t off : big)
        alloc.freeOffset(*ctx, off, nullptr);
    alloc.detachThread(ctx);
}

} // namespace

int
main()
{
    run(false);
    run(true);
    std::printf("morphing lets the 1 KB phase reuse the idle 64 B "
                "slabs instead of growing the heap (paper Fig. 15).\n");
    return 0;
}
