/**
 * @file
 * Anatomy of allocator-induced flushes (paper §3.1, §5.1).
 *
 * Uses the device's flush classification counters to show, side by
 * side, what the same allocation trace costs under:
 *   - sequential bitmap + sequential WAL + plain tcache (the Base
 *     configuration: every consecutive allocation re-flushes the
 *     lines it just flushed);
 *   - full interleaved mapping (bit stripes + sub-tcaches + striped
 *     WAL entries: the reflushes disappear).
 *
 * This is the core mechanism behind the paper's Fig. 9/10 speedups.
 */

#include <cstdio>
#include <vector>

#include "nvalloc/nvalloc.h"

using namespace nvalloc;

namespace {

void
trace(const char *label, bool interleaved)
{
    PmDevice dev;
    NvAllocConfig cfg;
    cfg.interleaved_bitmap = interleaved;
    cfg.interleaved_tcache = interleaved;
    cfg.interleaved_wal = interleaved;
    auto alloc_h = NvAlloc::openOrDie(dev, cfg);
    NvAlloc &alloc = *alloc_h;
    ThreadCtx *ctx = alloc.attachThread();

    dev.model().reset();
    VClock::reset();
    uint64_t v0 = VClock::now();

    std::vector<uint64_t> offs;
    for (int i = 0; i < 5000; ++i)
        offs.push_back(alloc.allocOffset(*ctx, 64, nullptr));
    for (uint64_t off : offs)
        alloc.freeOffset(*ctx, off, nullptr);

    uint64_t vns = VClock::now() - v0;
    auto c = dev.flushCounts();
    std::printf("%-24s %8llu flushes | %5.1f%% reflush %5.1f%% "
                "buffered %5.1f%% media | %6.0f ns/op modeled\n",
                label, (unsigned long long)c.total,
                100.0 * double(c.reflush) / double(c.total),
                100.0 * double(c.xpline_hit) / double(c.total),
                100.0 * double(c.sequential + c.random) /
                    double(c.total),
                double(vns) / (2.0 * 5000));

    alloc.detachThread(ctx);
}

} // namespace

int
main()
{
    std::printf("10000 small ops (5000 x 64 B malloc + free), "
                "one thread:\n\n");
    trace("sequential (Base)", false);
    trace("interleaved (NVAlloc)", true);
    std::printf("\nthe interleaved mapping turns ~90%% reflushes "
                "(800 ns each) into buffered\nXPLine hits — the "
                "3-6x small-allocation speedup of Fig. 9.\n");
    return 0;
}
