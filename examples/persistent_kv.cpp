/**
 * @file
 * A persistent key-value store that survives crashes.
 *
 * Demonstrates the pattern the paper's FPTree evaluation uses (§6.3):
 * a durable data structure whose nodes are NVAlloc blocks, anchored in
 * a superblock root word with offset-based links, plus the crash /
 * recovery cycle. The store is a persistent hash table with chaining;
 * every entry holds its own key/value bytes in one block.
 *
 * The demo fills the store, simulates a power failure mid-update, and
 * shows that recovery preserves exactly the committed entries.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "nvalloc/nvalloc.h"

using namespace nvalloc;

namespace {

constexpr unsigned kBuckets = 256;

/** Persistent store header: bucket table of entry offsets. */
struct StoreRoot
{
    uint64_t magic;
    uint64_t buckets[kBuckets];
};

/** Persistent entry: chained per bucket; key/value inline. */
struct Entry
{
    uint64_t next;   //!< offset of next entry in the bucket
    uint32_t klen;
    uint32_t vlen;
    char bytes[];    //!< key then value
};

uint64_t
hashKey(const std::string &key)
{
    uint64_t h = 1469598103934665603ULL;
    for (char ch : key) {
        h ^= uint8_t(ch);
        h *= 1099511628211ULL;
    }
    return h;
}

class KvStore
{
  public:
    KvStore(NvAlloc &alloc, ThreadCtx &ctx) : alloc_(alloc), ctx_(ctx)
    {
        uint64_t *root = alloc_.rootWord(0);
        if (*root == 0) {
            // First run: allocate + publish the bucket table.
            alloc_.mallocTo(ctx_, sizeof(StoreRoot), root);
            auto *sr = static_cast<StoreRoot *>(alloc_.at(*root));
            std::memset(sr, 0, sizeof(StoreRoot));
            sr->magic = 0x4b56u;
            alloc_.device().persistFence(sr, sizeof(StoreRoot),
                                         TimeKind::FlushData);
        }
        root_ = static_cast<StoreRoot *>(alloc_.at(*root));
    }

    void
    put(const std::string &key, const std::string &value)
    {
        erase(key); // simple upsert
        uint64_t *head = &root_->buckets[hashKey(key) % kBuckets];

        size_t need = sizeof(Entry) + key.size() + value.size();
        // Stage the entry in a fresh block; link it by publishing the
        // block into the bucket head (the failure-atomic step).
        uint64_t off = alloc_.allocOffset(ctx_, need, nullptr);
        auto *e = static_cast<Entry *>(alloc_.at(off));
        e->next = *head;
        e->klen = uint32_t(key.size());
        e->vlen = uint32_t(value.size());
        std::memcpy(e->bytes, key.data(), key.size());
        std::memcpy(e->bytes + key.size(), value.data(), value.size());
        alloc_.device().persistFence(e, need, TimeKind::FlushData);

        *head = off;
        alloc_.device().persistFence(head, 8, TimeKind::FlushData);
    }

    bool
    get(const std::string &key, std::string &value) const
    {
        uint64_t off = root_->buckets[hashKey(key) % kBuckets];
        while (off) {
            auto *e = static_cast<Entry *>(alloc_.at(off));
            if (e->klen == key.size() &&
                std::memcmp(e->bytes, key.data(), e->klen) == 0) {
                value.assign(e->bytes + e->klen, e->vlen);
                return true;
            }
            off = e->next;
        }
        return false;
    }

    bool
    erase(const std::string &key)
    {
        uint64_t *link = &root_->buckets[hashKey(key) % kBuckets];
        while (*link) {
            auto *e = static_cast<Entry *>(alloc_.at(*link));
            if (e->klen == key.size() &&
                std::memcmp(e->bytes, key.data(), e->klen) == 0) {
                // Unlink (persist), then free through the link word's
                // former value.
                uint64_t victim = *link;
                *link = e->next;
                alloc_.device().persistFence(link, 8,
                                             TimeKind::FlushData);
                alloc_.freeOffset(ctx_, victim, nullptr);
                return true;
            }
            link = &e->next;
        }
        return false;
    }

  private:
    NvAlloc &alloc_;
    ThreadCtx &ctx_;
    StoreRoot *root_;
};

} // namespace

int
main()
{
    PmDeviceConfig dcfg;
    dcfg.shadow = true; // enable crash simulation
    PmDevice dev(dcfg);

    // --- first process lifetime -----------------------------------
    {
        auto alloc_h = NvAlloc::openOrDie(dev);
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        KvStore store(alloc, *ctx);

        for (int i = 0; i < 100; ++i) {
            store.put("key-" + std::to_string(i),
                      "value-" + std::to_string(i * i));
        }
        std::printf("populated 100 committed entries\n");

        // Crash in the middle of an update burst: these puts race the
        // power failure; each is individually atomic.
        store.put("key-crash-a", "torn?");
        store.put("key-crash-b", "torn?");
        alloc.simulateCrash();
        std::printf("power failure simulated\n");
    }

    // --- second process lifetime: recovery -------------------------
    {
        auto alloc_h = NvAlloc::openOrDie(dev); // recovery runs here
        NvAlloc &alloc = *alloc_h;
        const RecoveryInfo &ri = alloc.lastRecovery();
        std::printf("recovered: failure=%d slabs=%llu wal_undo=%llu "
                    "wal_redo=%llu\n",
                    ri.after_failure,
                    (unsigned long long)ri.slabs_rebuilt,
                    (unsigned long long)ri.wal_undos,
                    (unsigned long long)ri.wal_completions);

        ThreadCtx *ctx = alloc.attachThread();
        KvStore store(alloc, *ctx);

        int found = 0;
        std::string v;
        for (int i = 0; i < 100; ++i) {
            if (store.get("key-" + std::to_string(i), v))
                ++found;
        }
        std::printf("found %d/100 committed entries after crash\n",
                    found);

        std::printf("crash-time entries: a=%s b=%s\n",
                    store.get("key-crash-a", v) ? "present" : "absent",
                    store.get("key-crash-b", v) ? "present" : "absent");

        store.put("key-new", "post-recovery");
        std::printf("store is writable again: %s\n",
                    store.get("key-new", v) ? v.c_str() : "?");
        alloc.detachThread(ctx);
    }
    return 0;
}
