/**
 * @file
 * Minimal tour of the built-in KV service (src/kv/, DESIGN.md §13).
 *
 * Unlike persistent_kv.cpp — which hand-rolls a durable hash table to
 * show the raw allocator pattern — this example uses the packaged
 * KvStore: transactional all-or-nothing puts, erase through the
 * delayed-reuse quarantine, and a volatile index rebuilt from the
 * persistent buckets on every open. The demo crashes the device in the
 * middle of an update burst and shows that reopening recovers exactly
 * the committed records.
 */

#include <cstdio>
#include <string>

#include "kv/kv_store.h"
#include "nvalloc/nvalloc.h"

using namespace nvalloc;

int
main()
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 27; // 128 MB emulated PM, with a shadow
    dcfg.shadow = true;          // image so we can simulate power loss
    PmDevice dev(dcfg);

    // ---- first life: create the store and commit some records ------
    {
        auto heap_h = NvAlloc::openOrDie(dev, NvAllocConfig{});
        NvAlloc &heap = *heap_h;
        ThreadCtx *ctx = heap.attachThread();
        KvOptions opts;
        opts.buckets = 256;
        auto kv = KvStore::open(heap, opts);
        if (!ctx || !kv) {
            std::fprintf(stderr, "open failed\n");
            return 1;
        }

        for (int i = 0; i < 100; ++i)
            kv->put(*ctx, "key-" + std::to_string(i),
                    "value-" + std::to_string(i));
        kv->erase(*ctx, "key-7"); // freed block rides the quarantine

        // Crash in the middle of an update burst: from the 40th flush
        // on, nothing reaches the persistent image — exactly a power
        // cut mid-transaction.
        dev.armCrashAtFlush(40);
        for (int i = 0; i < 100; ++i)
            kv->put(*ctx, "key-" + std::to_string(i), "updated");
        heap.simulateCrash();
        std::printf("crashed mid-update (records so far: %llu)\n",
                    (unsigned long long)kv->stats().records.load());
        heap.detachThread(ctx);
    }

    // ---- second life: recovery + index rebuild ---------------------
    {
        auto heap_h = NvAlloc::openOrDie(dev, NvAllocConfig{});
        NvAlloc &heap = *heap_h;
        auto kv = KvStore::open(heap, KvOptions{.buckets = 256});
        if (!kv) {
            std::fprintf(stderr, "reopen failed\n");
            return 1;
        }
        const RecoveryInfo &r = heap.lastRecovery();
        std::printf("recovery: committed=%llu rolled_back=%llu\n",
                    (unsigned long long)r.tx_committed,
                    (unsigned long long)r.tx_rolled_back);

        // Every record is either its old committed value or the fully
        // updated one — never a torn mix; key-7 stays erased.
        unsigned old_vals = 0, new_vals = 0, torn = 0;
        std::string v;
        for (int i = 0; i < 100; ++i) {
            KvStatus s = kv->get("key-" + std::to_string(i), &v);
            if (i == 7) {
                if (s != KvStatus::NotFound)
                    ++torn;
                continue;
            }
            if (s != KvStatus::Ok)
                ++torn;
            else if (v == "updated")
                ++new_vals;
            else if (v == "value-" + std::to_string(i))
                ++old_vals;
            else
                ++torn;
        }
        std::printf("after recovery: %u updated, %u original, %u torn\n",
                    new_vals, old_vals, torn);
        if (torn || kv->verify() != KvStatus::Ok) {
            std::fprintf(stderr, "store failed verification\n");
            return 1;
        }
        std::printf("verify: clean (%llu records rebuilt)\n",
                    (unsigned long long)kv->stats().records.load());
    }
    return 0;
}
