# Empty dependencies file for flush_anatomy.
# This may be replaced when dependencies are built.
