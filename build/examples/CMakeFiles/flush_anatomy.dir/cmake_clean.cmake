file(REMOVE_RECURSE
  "CMakeFiles/flush_anatomy.dir/flush_anatomy.cpp.o"
  "CMakeFiles/flush_anatomy.dir/flush_anatomy.cpp.o.d"
  "flush_anatomy"
  "flush_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flush_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
