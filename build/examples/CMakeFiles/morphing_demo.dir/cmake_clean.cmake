file(REMOVE_RECURSE
  "CMakeFiles/morphing_demo.dir/morphing_demo.cpp.o"
  "CMakeFiles/morphing_demo.dir/morphing_demo.cpp.o.d"
  "morphing_demo"
  "morphing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morphing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
