# Empty compiler generated dependencies file for morphing_demo.
# This may be replaced when dependencies are built.
