file(REMOVE_RECURSE
  "CMakeFiles/test_morphing_integration.dir/test_morphing_integration.cc.o"
  "CMakeFiles/test_morphing_integration.dir/test_morphing_integration.cc.o.d"
  "test_morphing_integration"
  "test_morphing_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_morphing_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
