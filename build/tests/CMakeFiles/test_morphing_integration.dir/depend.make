# Empty dependencies file for test_morphing_integration.
# This may be replaced when dependencies are built.
