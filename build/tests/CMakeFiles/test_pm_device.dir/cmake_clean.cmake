file(REMOVE_RECURSE
  "CMakeFiles/test_pm_device.dir/test_pm_device.cc.o"
  "CMakeFiles/test_pm_device.dir/test_pm_device.cc.o.d"
  "test_pm_device"
  "test_pm_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pm_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
