# Empty compiler generated dependencies file for test_nvalloc_basic.
# This may be replaced when dependencies are built.
