file(REMOVE_RECURSE
  "CMakeFiles/test_nvalloc_basic.dir/test_nvalloc_basic.cc.o"
  "CMakeFiles/test_nvalloc_basic.dir/test_nvalloc_basic.cc.o.d"
  "test_nvalloc_basic"
  "test_nvalloc_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvalloc_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
