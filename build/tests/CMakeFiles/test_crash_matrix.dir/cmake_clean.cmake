file(REMOVE_RECURSE
  "CMakeFiles/test_crash_matrix.dir/test_crash_matrix.cc.o"
  "CMakeFiles/test_crash_matrix.dir/test_crash_matrix.cc.o.d"
  "test_crash_matrix"
  "test_crash_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crash_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
