# Empty dependencies file for test_baseline_internals.
# This may be replaced when dependencies are built.
