# Empty dependencies file for test_offset_ptr.
# This may be replaced when dependencies are built.
