file(REMOVE_RECURSE
  "CMakeFiles/test_offset_ptr.dir/test_offset_ptr.cc.o"
  "CMakeFiles/test_offset_ptr.dir/test_offset_ptr.cc.o.d"
  "test_offset_ptr"
  "test_offset_ptr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_offset_ptr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
