# Empty compiler generated dependencies file for test_bookkeeping_log.
# This may be replaced when dependencies are built.
