file(REMOVE_RECURSE
  "CMakeFiles/test_bookkeeping_log.dir/test_bookkeeping_log.cc.o"
  "CMakeFiles/test_bookkeeping_log.dir/test_bookkeeping_log.cc.o.d"
  "test_bookkeeping_log"
  "test_bookkeeping_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bookkeeping_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
