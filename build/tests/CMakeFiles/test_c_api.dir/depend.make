# Empty dependencies file for test_c_api.
# This may be replaced when dependencies are built.
