# Empty compiler generated dependencies file for test_fptree.
# This may be replaced when dependencies are built.
