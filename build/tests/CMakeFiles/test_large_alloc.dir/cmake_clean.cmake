file(REMOVE_RECURSE
  "CMakeFiles/test_large_alloc.dir/test_large_alloc.cc.o"
  "CMakeFiles/test_large_alloc.dir/test_large_alloc.cc.o.d"
  "test_large_alloc"
  "test_large_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_large_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
