# Empty compiler generated dependencies file for test_large_alloc.
# This may be replaced when dependencies are built.
