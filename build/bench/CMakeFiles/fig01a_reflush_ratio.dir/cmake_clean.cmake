file(REMOVE_RECURSE
  "CMakeFiles/fig01a_reflush_ratio.dir/fig01a_reflush_ratio.cc.o"
  "CMakeFiles/fig01a_reflush_ratio.dir/fig01a_reflush_ratio.cc.o.d"
  "fig01a_reflush_ratio"
  "fig01a_reflush_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01a_reflush_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
