# Empty compiler generated dependencies file for fig01a_reflush_ratio.
# This may be replaced when dependencies are built.
