# Empty compiler generated dependencies file for fig17_gc_overhead.
# This may be replaced when dependencies are built.
