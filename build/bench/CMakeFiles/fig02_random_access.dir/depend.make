# Empty dependencies file for fig02_random_access.
# This may be replaced when dependencies are built.
