file(REMOVE_RECURSE
  "CMakeFiles/fig02_random_access.dir/fig02_random_access.cc.o"
  "CMakeFiles/fig02_random_access.dir/fig02_random_access.cc.o.d"
  "fig02_random_access"
  "fig02_random_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_random_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
