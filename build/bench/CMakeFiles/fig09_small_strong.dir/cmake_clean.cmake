file(REMOVE_RECURSE
  "CMakeFiles/fig09_small_strong.dir/fig09_small_strong.cc.o"
  "CMakeFiles/fig09_small_strong.dir/fig09_small_strong.cc.o.d"
  "fig09_small_strong"
  "fig09_small_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_small_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
