# Empty compiler generated dependencies file for fig09_small_strong.
# This may be replaced when dependencies are built.
