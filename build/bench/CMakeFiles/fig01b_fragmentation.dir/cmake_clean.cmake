file(REMOVE_RECURSE
  "CMakeFiles/fig01b_fragmentation.dir/fig01b_fragmentation.cc.o"
  "CMakeFiles/fig01b_fragmentation.dir/fig01b_fragmentation.cc.o.d"
  "fig01b_fragmentation"
  "fig01b_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01b_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
