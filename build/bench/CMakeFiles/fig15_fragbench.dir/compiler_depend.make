# Empty compiler generated dependencies file for fig15_fragbench.
# This may be replaced when dependencies are built.
