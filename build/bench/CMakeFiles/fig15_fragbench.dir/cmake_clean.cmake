file(REMOVE_RECURSE
  "CMakeFiles/fig15_fragbench.dir/fig15_fragbench.cc.o"
  "CMakeFiles/fig15_fragbench.dir/fig15_fragbench.cc.o.d"
  "fig15_fragbench"
  "fig15_fragbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_fragbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
