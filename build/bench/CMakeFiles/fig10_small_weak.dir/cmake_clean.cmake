file(REMOVE_RECURSE
  "CMakeFiles/fig10_small_weak.dir/fig10_small_weak.cc.o"
  "CMakeFiles/fig10_small_weak.dir/fig10_small_weak.cc.o.d"
  "fig10_small_weak"
  "fig10_small_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_small_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
