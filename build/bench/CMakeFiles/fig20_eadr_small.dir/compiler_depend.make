# Empty compiler generated dependencies file for fig20_eadr_small.
# This may be replaced when dependencies are built.
