file(REMOVE_RECURSE
  "CMakeFiles/fig21_eadr_large.dir/fig21_eadr_large.cc.o"
  "CMakeFiles/fig21_eadr_large.dir/fig21_eadr_large.cc.o.d"
  "fig21_eadr_large"
  "fig21_eadr_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_eadr_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
