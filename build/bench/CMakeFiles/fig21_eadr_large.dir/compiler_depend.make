# Empty compiler generated dependencies file for fig21_eadr_large.
# This may be replaced when dependencies are built.
