file(REMOVE_RECURSE
  "CMakeFiles/fig14_fptree.dir/fig14_fptree.cc.o"
  "CMakeFiles/fig14_fptree.dir/fig14_fptree.cc.o.d"
  "fig14_fptree"
  "fig14_fptree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_fptree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
