# Empty compiler generated dependencies file for fig14_fptree.
# This may be replaced when dependencies are built.
