file(REMOVE_RECURSE
  "CMakeFiles/fig18_recovery.dir/fig18_recovery.cc.o"
  "CMakeFiles/fig18_recovery.dir/fig18_recovery.cc.o.d"
  "fig18_recovery"
  "fig18_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
