# Empty compiler generated dependencies file for fig18_recovery.
# This may be replaced when dependencies are built.
