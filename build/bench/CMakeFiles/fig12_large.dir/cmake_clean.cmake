file(REMOVE_RECURSE
  "CMakeFiles/fig12_large.dir/fig12_large.cc.o"
  "CMakeFiles/fig12_large.dir/fig12_large.cc.o.d"
  "fig12_large"
  "fig12_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
