# Empty compiler generated dependencies file for fig12_large.
# This may be replaced when dependencies are built.
