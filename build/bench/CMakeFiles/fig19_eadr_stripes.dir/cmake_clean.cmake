file(REMOVE_RECURSE
  "CMakeFiles/fig19_eadr_stripes.dir/fig19_eadr_stripes.cc.o"
  "CMakeFiles/fig19_eadr_stripes.dir/fig19_eadr_stripes.cc.o.d"
  "fig19_eadr_stripes"
  "fig19_eadr_stripes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_eadr_stripes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
