# Empty compiler generated dependencies file for fig19_eadr_stripes.
# This may be replaced when dependencies are built.
