# Empty compiler generated dependencies file for fig13_space.
# This may be replaced when dependencies are built.
