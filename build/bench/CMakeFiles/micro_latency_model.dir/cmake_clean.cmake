file(REMOVE_RECURSE
  "CMakeFiles/micro_latency_model.dir/micro_latency_model.cc.o"
  "CMakeFiles/micro_latency_model.dir/micro_latency_model.cc.o.d"
  "micro_latency_model"
  "micro_latency_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_latency_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
