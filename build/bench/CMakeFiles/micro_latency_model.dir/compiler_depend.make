# Empty compiler generated dependencies file for micro_latency_model.
# This may be replaced when dependencies are built.
