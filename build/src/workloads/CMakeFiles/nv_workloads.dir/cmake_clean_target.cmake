file(REMOVE_RECURSE
  "libnv_workloads.a"
)
