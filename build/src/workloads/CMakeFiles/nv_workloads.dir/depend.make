# Empty dependencies file for nv_workloads.
# This may be replaced when dependencies are built.
