file(REMOVE_RECURSE
  "CMakeFiles/nv_workloads.dir/harness.cc.o"
  "CMakeFiles/nv_workloads.dir/harness.cc.o.d"
  "CMakeFiles/nv_workloads.dir/workloads.cc.o"
  "CMakeFiles/nv_workloads.dir/workloads.cc.o.d"
  "libnv_workloads.a"
  "libnv_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
