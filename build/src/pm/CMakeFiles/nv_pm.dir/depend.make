# Empty dependencies file for nv_pm.
# This may be replaced when dependencies are built.
