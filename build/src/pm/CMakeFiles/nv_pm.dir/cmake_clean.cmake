file(REMOVE_RECURSE
  "CMakeFiles/nv_pm.dir/latency_model.cc.o"
  "CMakeFiles/nv_pm.dir/latency_model.cc.o.d"
  "CMakeFiles/nv_pm.dir/pm_device.cc.o"
  "CMakeFiles/nv_pm.dir/pm_device.cc.o.d"
  "CMakeFiles/nv_pm.dir/vclock.cc.o"
  "CMakeFiles/nv_pm.dir/vclock.cc.o.d"
  "libnv_pm.a"
  "libnv_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
