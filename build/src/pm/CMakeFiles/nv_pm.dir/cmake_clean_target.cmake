file(REMOVE_RECURSE
  "libnv_pm.a"
)
