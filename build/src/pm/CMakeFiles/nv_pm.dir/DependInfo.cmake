
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pm/latency_model.cc" "src/pm/CMakeFiles/nv_pm.dir/latency_model.cc.o" "gcc" "src/pm/CMakeFiles/nv_pm.dir/latency_model.cc.o.d"
  "/root/repo/src/pm/pm_device.cc" "src/pm/CMakeFiles/nv_pm.dir/pm_device.cc.o" "gcc" "src/pm/CMakeFiles/nv_pm.dir/pm_device.cc.o.d"
  "/root/repo/src/pm/vclock.cc" "src/pm/CMakeFiles/nv_pm.dir/vclock.cc.o" "gcc" "src/pm/CMakeFiles/nv_pm.dir/vclock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
