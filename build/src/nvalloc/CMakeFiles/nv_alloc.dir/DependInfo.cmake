
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvalloc/arena.cc" "src/nvalloc/CMakeFiles/nv_alloc.dir/arena.cc.o" "gcc" "src/nvalloc/CMakeFiles/nv_alloc.dir/arena.cc.o.d"
  "/root/repo/src/nvalloc/bookkeeping_log.cc" "src/nvalloc/CMakeFiles/nv_alloc.dir/bookkeeping_log.cc.o" "gcc" "src/nvalloc/CMakeFiles/nv_alloc.dir/bookkeeping_log.cc.o.d"
  "/root/repo/src/nvalloc/large_alloc.cc" "src/nvalloc/CMakeFiles/nv_alloc.dir/large_alloc.cc.o" "gcc" "src/nvalloc/CMakeFiles/nv_alloc.dir/large_alloc.cc.o.d"
  "/root/repo/src/nvalloc/nvalloc.cc" "src/nvalloc/CMakeFiles/nv_alloc.dir/nvalloc.cc.o" "gcc" "src/nvalloc/CMakeFiles/nv_alloc.dir/nvalloc.cc.o.d"
  "/root/repo/src/nvalloc/nvalloc_c.cc" "src/nvalloc/CMakeFiles/nv_alloc.dir/nvalloc_c.cc.o" "gcc" "src/nvalloc/CMakeFiles/nv_alloc.dir/nvalloc_c.cc.o.d"
  "/root/repo/src/nvalloc/recovery.cc" "src/nvalloc/CMakeFiles/nv_alloc.dir/recovery.cc.o" "gcc" "src/nvalloc/CMakeFiles/nv_alloc.dir/recovery.cc.o.d"
  "/root/repo/src/nvalloc/slab.cc" "src/nvalloc/CMakeFiles/nv_alloc.dir/slab.cc.o" "gcc" "src/nvalloc/CMakeFiles/nv_alloc.dir/slab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pm/CMakeFiles/nv_pm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
