# Empty dependencies file for nv_alloc.
# This may be replaced when dependencies are built.
