file(REMOVE_RECURSE
  "libnv_alloc.a"
)
