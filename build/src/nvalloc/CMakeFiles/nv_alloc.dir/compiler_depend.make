# Empty compiler generated dependencies file for nv_alloc.
# This may be replaced when dependencies are built.
