file(REMOVE_RECURSE
  "CMakeFiles/nv_alloc.dir/arena.cc.o"
  "CMakeFiles/nv_alloc.dir/arena.cc.o.d"
  "CMakeFiles/nv_alloc.dir/bookkeeping_log.cc.o"
  "CMakeFiles/nv_alloc.dir/bookkeeping_log.cc.o.d"
  "CMakeFiles/nv_alloc.dir/large_alloc.cc.o"
  "CMakeFiles/nv_alloc.dir/large_alloc.cc.o.d"
  "CMakeFiles/nv_alloc.dir/nvalloc.cc.o"
  "CMakeFiles/nv_alloc.dir/nvalloc.cc.o.d"
  "CMakeFiles/nv_alloc.dir/nvalloc_c.cc.o"
  "CMakeFiles/nv_alloc.dir/nvalloc_c.cc.o.d"
  "CMakeFiles/nv_alloc.dir/recovery.cc.o"
  "CMakeFiles/nv_alloc.dir/recovery.cc.o.d"
  "CMakeFiles/nv_alloc.dir/slab.cc.o"
  "CMakeFiles/nv_alloc.dir/slab.cc.o.d"
  "libnv_alloc.a"
  "libnv_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
