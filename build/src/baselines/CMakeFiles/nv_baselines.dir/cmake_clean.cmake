file(REMOVE_RECURSE
  "CMakeFiles/nv_baselines.dir/baseline_base.cc.o"
  "CMakeFiles/nv_baselines.dir/baseline_base.cc.o.d"
  "CMakeFiles/nv_baselines.dir/extent_heap.cc.o"
  "CMakeFiles/nv_baselines.dir/extent_heap.cc.o.d"
  "CMakeFiles/nv_baselines.dir/slab_engine.cc.o"
  "CMakeFiles/nv_baselines.dir/slab_engine.cc.o.d"
  "libnv_baselines.a"
  "libnv_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
