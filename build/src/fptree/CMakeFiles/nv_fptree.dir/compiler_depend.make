# Empty compiler generated dependencies file for nv_fptree.
# This may be replaced when dependencies are built.
