file(REMOVE_RECURSE
  "CMakeFiles/nv_fptree.dir/fptree.cc.o"
  "CMakeFiles/nv_fptree.dir/fptree.cc.o.d"
  "libnv_fptree.a"
  "libnv_fptree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_fptree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
