file(REMOVE_RECURSE
  "libnv_fptree.a"
)
