#!/bin/bash
# Regenerate every paper figure/table. Full sweep; pass --quick through
# by running: BENCH_ARGS=--quick ./run_benches.sh
cd "$(dirname "$0")"
for b in build/bench/fig* build/bench/ablation_variants ; do
    echo "===================================================================="
    echo "== $(basename $b)"
    echo "===================================================================="
    timeout 1200 "$b" $BENCH_ARGS
    echo
done
echo "== micro_latency_model"
timeout 300 build/bench/micro_latency_model --benchmark_min_time=0.05 2>&1 | grep -v "^\*\*\*"
echo
echo "== micro_allocators"
timeout 600 build/bench/micro_allocators --benchmark_min_time=0.05 2>&1 | grep -v "^\*\*\*"
