#!/bin/bash
# Regenerate every paper figure/table. Full sweep; pass --quick through
# by running: BENCH_ARGS=--quick ./run_benches.sh
#
# NVALLOC_BENCH_ALLOCATORS limits the allocators every harness-driven
# figure runs, as a comma-separated list of PmAllocatorRegistry names
# ("pmdk", "nvm_malloc", "pallocator", "makalu", "ralloc", "nvalloc",
# "nvalloc-gc"), e.g.:
#   NVALLOC_BENCH_ALLOCATORS=nvalloc,nvalloc-gc,pmdk ./run_benches.sh
# Unset (the default) runs the full comparison set.
#
# Every figure bench also writes a machine-readable
# $NVALLOC_BENCH_JSON_DIR/BENCH_<fig>.json (default build/bench_json).
# The virtual clock makes single-thread rows exactly reproducible for
# a given seed (multi-thread rows jitter a few percent with host
# scheduling); compare two runs (or a run against bench/baselines/)
# with tools/bench_compare.py.
#
# Exits non-zero if any bench fails or times out (timeout exits 124),
# after running the remaining benches so one bad figure does not hide
# the others.
set -euo pipefail
cd "$(dirname "$0")"

export NVALLOC_BENCH_JSON_DIR="${NVALLOC_BENCH_JSON_DIR:-build/bench_json}"
mkdir -p "$NVALLOC_BENCH_JSON_DIR"

status=0
fail() {
    echo "!! $1 failed (exit $2)" >&2
    status=1
}

for b in build/bench/fig* build/bench/ablation_variants ; do
    echo "===================================================================="
    echo "== $(basename "$b")"
    echo "===================================================================="
    timeout 1200 "$b" ${BENCH_ARGS:-} || fail "$(basename "$b")" $?
    echo
done

echo "===================================================================="
echo "== nvalloc_ycsb (KV service, workloads A-F)"
echo "===================================================================="
timeout 1200 build/tools/nvalloc_ycsb ${BENCH_ARGS:-} \
    || fail nvalloc_ycsb $?
echo

echo "== micro_latency_model"
timeout 300 build/bench/micro_latency_model --benchmark_min_time=0.05 2>&1 \
    | grep -v "^\*\*\*" || fail micro_latency_model $?
echo
echo "== micro_allocators"
timeout 600 build/bench/micro_allocators --benchmark_min_time=0.05 2>&1 \
    | grep -v "^\*\*\*" || fail micro_allocators $?

exit "$status"
