/**
 * @file
 * Pool containment soak: the chaos harness against a 4-tenant HeapPool
 * (DESIGN.md §12).
 *
 * One hostile tenant injects the same 12 trouble classes as the
 * single-heap soak (tools/chaos_harness.h) into *its own* heap
 * mid-churn, while three sibling tenants run plain mutator traffic.
 * After every round the harness asserts the pool-level blast-radius
 * contract:
 *
 *  - the victim was detected: hardened-free classes escalate its
 *    health at the faulting operation, metadata classes within a
 *    bounded number of patrol-scrub slices (once per soak a stray
 *    bitmap bit rides along with the header smash so the
 *    patrol-unrepairable path — Quarantined — is exercised too);
 *  - while Degraded/Quarantined the victim refuses new mutations
 *    (fault_containment is forced by the pool);
 *  - every sibling kept serving: zero failed allocations
 *    (stats.degraded.failed_allocs unmoved), health Serving, heap
 *    audits clean — including across the victim's crash rounds, and
 *    including a fresh member opened while the victim sits
 *    quarantined;
 *  - the pool converges: HeapPool::restore() returns the victim to
 *    Serving every round (crash rounds go through HeapPool::reopen(),
 *    i.e. member-local recovery, first), and the final sweep frees
 *    every published block of every tenant and audits all members
 *    clean.
 *
 * Deterministic for a given ChaosOptions. Shared by nvalloc_chaos.cc
 * (--pool) and tests/test_pool.cc (ctest registration, including the
 * soak-labeled long run).
 */

#ifndef NVALLOC_TOOLS_POOL_CHAOS_HARNESS_H
#define NVALLOC_TOOLS_POOL_CHAOS_HARNESS_H

#include <memory>

#include "chaos_harness.h"
#include "nvalloc/pool.h"

namespace nvalloc {

class PoolChaosHarness : public ChaosHarness
{
  public:
    static constexpr unsigned kTenants = 4; //!< 1 hostile + 3 siblings
    /** Patrol-slice budget for detecting one metadata injection: two
     *  full passes over the victim's structures, with slack. */
    static constexpr unsigned kPatrolBudget = 4096;

    explicit PoolChaosHarness(const ChaosOptions &o) : ChaosHarness(o) {}

    /** Run the pool soak; false on the first containment failure (see
     *  error()). */
    bool runPool();

    uint64_t quarantineRounds() const { return quarantine_rounds_; }

  private:
    NvAllocConfig
    poolConfig() const
    {
        NvAllocConfig cfg = config();
        cfg.patrol_scrub = true;
        // fault_containment is forced by HeapPool::open either way;
        // set it here too so the config the pool remembers is the one
        // we offered (same-config re-opens stay `existing`).
        cfg.fault_containment = true;
        return cfg;
    }

    bool
    poolFail(unsigned round, ChaosEvent ev, const std::string &msg)
    {
        return fail(round, ev, "[pool] " + msg);
    }

    uint64_t
    failedAllocs(NvAlloc &heap)
    {
        uint64_t v = 0;
        heap.ctlRead("stats.degraded.failed_allocs", &v);
        return v;
    }

    uint64_t quarantine_rounds_ = 0;
};

inline bool
PoolChaosHarness::runPool()
{
    static const char *kNames[kTenants] = {"hostile", "alpha", "beta",
                                           "gamma"};
    PmDeviceConfig dcfg;
    dcfg.size = opt_.device_mb << 20;
    dcfg.shadow = true; // the hostile tenant's crash rounds need replay

    // Devices must outlive the pool: one live heap per device.
    std::vector<std::unique_ptr<PmDevice>> devs;
    HeapPool pool;
    NvAlloc *heaps[kTenants];
    ThreadCtx *ctxs[kTenants];
    uint64_t table_off[kTenants];
    std::vector<size_t> tsizes[kTenants];

    for (unsigned t = 0; t < kTenants; ++t) {
        devs.emplace_back(new PmDevice(dcfg));
        HeapPool::MemberResult r =
            pool.open(kNames[t], *devs[t], poolConfig());
        if (!r) {
            error_ = std::string("pool open ") + kNames[t] + " failed";
            return false;
        }
        heaps[t] = r.heap;
        ctxs[t] = heaps[t]->attachThread();
        if (!ctxs[t]) {
            error_ = std::string("attach ") + kNames[t] + " failed";
            return false;
        }
        heaps[t]->mallocTo(*ctxs[t], kSlots * 8, heaps[t]->rootWord(0));
        table_off[t] = *heaps[t]->rootWord(0);
        if (!table_off[t]) {
            error_ = std::string(kNames[t]) + " slot table alloc failed";
            return false;
        }
        auto *slots = static_cast<uint64_t *>(heaps[t]->at(table_off[t]));
        std::memset(slots, 0, kSlots * 8);
        devs[t]->persistFence(slots, kSlots * 8, TimeKind::FlushData);
        tsizes[t].assign(kSlots, 0);
    }

    // The cross-heap donor (same shape as the single-heap soak): its
    // padded-high offsets are what a stale cross-tenant pointer looks
    // like when freed into the hostile member.
    PmDeviceConfig donor_dcfg;
    donor_dcfg.size = opt_.device_mb << 20;
    PmDevice donor_dev(donor_dcfg);
    NvAllocConfig donor_cfg;
    auto donor_h = NvAlloc::openOrDie(donor_dev, donor_cfg);
    NvAlloc &donor = *donor_h;
    ThreadCtx *donor_ctx = donor.attachThread();
    if (!donor_ctx) {
        error_ = "donor heap attach failed";
        return false;
    }
    size_t pad = (opt_.device_mb / 8) << 20;
    for (unsigned i = 0; i < 2; ++i)
        donor.allocOffset(*donor_ctx, pad, nullptr);
    std::vector<uint64_t> donor_offs;
    for (unsigned i = 0; i < 48; ++i) {
        uint64_t off = donor.allocOffset(
            *donor_ctx, i % 5 == 0 ? 32 * 1024 : 128, nullptr);
        if (off)
            donor_offs.push_back(off);
    }

    bool late_tenant_done = false;

    for (unsigned round = 0; round < opt_.rounds; ++round) {
        ChaosEvent ev = ChaosEvent(round % kEventCount);
        if (opt_.verbose)
            std::fprintf(stderr, "pool-chaos: round %u event %s\n",
                         round, chaosEventName(ev));

        uint64_t sibling_failed[kTenants];
        for (unsigned t = 1; t < kTenants; ++t)
            sibling_failed[t] = failedAllocs(*heaps[t]);

        NvAlloc *victim = heaps[0];
        auto *vslots =
            static_cast<uint64_t *>(victim->at(table_off[0]));

        ++injected_[unsigned(ev)];
        uint64_t skipped_before = skipped_[unsigned(ev)];
        bool crash_round =
            ev == ChaosEvent::Crash ||
            (ev == ChaosEvent::TornTx &&
             victim->config().consistency == Consistency::Log);

        if (crash_round) {
            // Fresh per-round fault policy on the victim device only:
            // the siblings' devices never crash, so their unfenced
            // stores are not at stake.
            FaultPolicy fp;
            fp.seed = opt_.seed * 1000003ULL + round + 1;
            fp.staged_persist_fraction = 0.7;
            fp.word_granularity = true;
            devs[0]->enableFaultInjection(fp);

            sizes_.swap(tsizes[0]);
            if (ev == ChaosEvent::Crash) {
                unsigned nth = 1 + unsigned(rng_.nextBounded(150));
                devs[0]->armCrashAtFlush(nth);
                churn(*victim, *ctxs[0], vslots, opt_.ops_per_round,
                      *devs[0], /*crash_mode=*/true);
            } else {
                // Stage a multi-op transaction and crash inside it.
                churn(*victim, *ctxs[0], vslots, opt_.ops_per_round / 2,
                      *devs[0], /*crash_mode=*/false);
                unsigned fs = kSlots;
                for (unsigned s = 0; s < kSlots && fs == kSlots; ++s)
                    if (vslots[s] == 0)
                        fs = s;
                unsigned ls = pickSmallSlot(*victim, vslots);
                unsigned tx_flushes =
                    1 + (fs != kSlots ? 1 : 0) + (ls != kSlots ? 2 : 0);
                unsigned nth =
                    1 + unsigned(rng_.nextBounded(tx_flushes + 3));
                devs[0]->armCrashAtFlush(nth);
                victim->txBegin(*ctxs[0]);
                if (fs != kSlots &&
                    victim->txAlloc(*ctxs[0], 96, &vslots[fs]) != 0)
                    sizes_[fs] = 96;
                if (ls != kSlots &&
                    victim->txFree(*ctxs[0], vslots[ls]) ==
                        NvStatus::Ok) {
                    victim->txWrite(*ctxs[0], &vslots[ls], 0);
                    sizes_[ls] = 0;
                }
                victim->txWrite(*ctxs[0], victim->rootWord(1),
                                round + 1);
                victim->txCommit(*ctxs[0]);
                if (!devs[0]->crashTriggered())
                    ++skipped_[unsigned(ev)];
            }
            bool tx_crashed = ev == ChaosEvent::TornTx &&
                              devs[0]->crashTriggered();
            victim->simulateCrash();
            sizes_.swap(tsizes[0]);

            // Siblings serve across the victim's crash.
            for (unsigned t = 1; t < kTenants; ++t) {
                sizes_.swap(tsizes[t]);
                churn(*heaps[t], *ctxs[t],
                      static_cast<uint64_t *>(
                          heaps[t]->at(table_off[t])),
                      opt_.ops_per_round, *devs[t],
                      /*crash_mode=*/false);
                sizes_.swap(tsizes[t]);
            }

            // Member-local recovery through the pool; siblings are
            // untouched by it.
            HeapPool::MemberResult r = pool.reopen(kNames[0]);
            if (!r)
                return poolFail(round, ev, "victim reopen failed");
            heaps[0] = victim = r.heap;
            ctxs[0] = victim->attachThread();
            if (!ctxs[0])
                return poolFail(round, ev, "victim re-attach failed");
            if (*victim->rootWord(0) != table_off[0])
                return poolFail(round, ev, "victim slot table root lost");
            vslots = static_cast<uint64_t *>(victim->at(table_off[0]));
            for (unsigned s = 0; s < kSlots; ++s) {
                if (vslots[s] != 0 && !offsetLive(*victim, vslots[s]))
                    return poolFail(round, ev,
                                    "published block lost at slot " +
                                        std::to_string(s));
                if (vslots[s] == 0)
                    tsizes[0][s] = 0;
            }
            HeapAuditor auditor(*victim);
            AuditReport rep = auditor.audit();
            if (rep.violations() != 0)
                return poolFail(round, ev,
                                "post-reopen audit:\n" + rep.summary());
            if (tx_crashed) {
                uint64_t committed = 0, rolled_back = 0;
                victim->ctlRead("stats.tx.recovered_committed",
                                &committed);
                victim->ctlRead("stats.tx.recovered_rolled_back",
                                &rolled_back);
                if (committed + rolled_back == 0) {
                    // The crash landed before the group record was
                    // persisted (or the torn-word policy dropped it):
                    // recovery correctly found nothing to resolve, and
                    // the audit + slot sweep above proved the
                    // all-or-nothing outcome was "nothing".
                    ++skipped_[unsigned(ChaosEvent::TornTx)];
                } else {
                    ++detected_[unsigned(ChaosEvent::TornTx)];
                }
            } else if (ev == ChaosEvent::Crash) {
                ++detected_[unsigned(ChaosEvent::Crash)];
            }
        } else {
            if (ev == ChaosEvent::TornTx)
                ++skipped_[unsigned(ev)]; // tx classes are LOG-only
            // The hostile tenant corrupts its own heap mid-churn...
            sizes_.swap(tsizes[0]);
            churn(*victim, *ctxs[0], vslots, opt_.ops_per_round / 2,
                  *devs[0], /*crash_mode=*/false);
            bool inject_ok = ev == ChaosEvent::TornTx ||
                             inject(ev, *victim, *ctxs[0], *devs[0],
                                    vslots, round, donor_offs);
            // Once per soak, a stray bitmap bit rides along: patrol
            // cannot repair a popcount mismatch in place, so the
            // victim must cross into Quarantined (not just Degraded).
            bool want_quarantine = false;
            if (inject_ok && ev == ChaosEvent::HeaderSmash &&
                quarantine_rounds_ == 0) {
                for (unsigned a = 0;
                     a < victim->numArenas() && !want_quarantine; ++a) {
                    victim->arena(a).forEachSlab([&](VSlab *sl) {
                        if (want_quarantine)
                            return;
                        sl->header()->bitmap[kSlabBitmapBytes - 1] ^=
                            0x80;
                        want_quarantine = true;
                    });
                }
            }
            sizes_.swap(tsizes[0]);
            if (!inject_ok)
                return false;

            // ...while the siblings run plain mutator traffic.
            for (unsigned t = 1; t < kTenants; ++t) {
                sizes_.swap(tsizes[t]);
                churn(*heaps[t], *ctxs[t],
                      static_cast<uint64_t *>(
                          heaps[t]->at(table_off[t])),
                      opt_.ops_per_round, *devs[t],
                      /*crash_mode=*/false);
                sizes_.swap(tsizes[t]);
            }

            // Detection: hardened-free classes escalate at the
            // faulting op; metadata classes within the patrol budget.
            // Three classes legitimately never escalate here: a round
            // whose injection was skipped, PoisonLine (media poison
            // sits in *free* extents, which the patrol phases do not
            // walk — the injection already proved the full audit sees
            // it, and restore() repairs it below), and KvStomp (the
            // corruption lands in application payload: the KV layer's
            // checksum detects and contains it record-granularly
            // without the heap's health machine ever being involved —
            // escalating a whole tenant for one bad record would
            // defeat the containment the class is proving).
            bool skipped_this_round =
                skipped_[unsigned(ev)] != skipped_before;
            bool expect_escalation = !skipped_this_round &&
                                     ev != ChaosEvent::PoisonLine &&
                                     ev != ChaosEvent::KvStomp;
            if (expect_escalation || want_quarantine) {
                HeapHealth goal = want_quarantine
                                      ? HeapHealth::Quarantined
                                      : HeapHealth::Degraded;
                unsigned slices = 0;
                while (unsigned(victim->health()) < unsigned(goal) &&
                       slices < kPatrolBudget) {
                    victim->patrolSlice();
                    ++slices;
                }
                if (unsigned(victim->health()) < unsigned(goal))
                    return poolFail(round, ev,
                                    "victim not detected within " +
                                        std::to_string(kPatrolBudget) +
                                        " patrol slices");
                if (want_quarantine)
                    ++quarantine_rounds_;
            }
        }

        // Containment: while Degraded/Quarantined the victim refuses
        // new mutations...
        bool victim_down = unsigned(victim->health()) >=
                           unsigned(HeapHealth::Degraded);
        if (victim_down &&
            victim->allocOffset(*ctxs[0], 64, nullptr) != 0)
            return poolFail(round, ev,
                            "degraded victim served an allocation");

        // ...and a new member can open (and serve) while the victim
        // sits quarantined.
        if (victim->health() == HeapHealth::Quarantined &&
            !late_tenant_done) {
            devs.emplace_back(new PmDevice(dcfg));
            HeapPool::MemberResult late =
                pool.open("late", *devs.back(), poolConfig());
            if (!late)
                return poolFail(round, ev,
                                "open during quarantine failed");
            ThreadCtx *lctx = late.heap->attachThread();
            if (!lctx)
                return poolFail(round, ev, "late tenant attach failed");
            uint64_t loff =
                late.heap->allocOffset(*lctx, 256, nullptr);
            if (loff == 0 ||
                late.heap->freeOffset(*lctx, loff, nullptr) !=
                    NvStatus::Ok)
                return poolFail(round, ev,
                                "late tenant failed to serve during "
                                "quarantine");
            late.heap->detachThread(lctx);
            if (pool.close("late") != NvStatus::Ok)
                return poolFail(round, ev, "late tenant close failed");
            late_tenant_done = true;
        }

        // Blast radius: every sibling is Serving, audits clean, and
        // had zero failed allocations this round.
        for (unsigned t = 1; t < kTenants; ++t) {
            if (heaps[t]->health() != HeapHealth::Serving)
                return poolFail(round, ev,
                                std::string("sibling ") + kNames[t] +
                                    " left Serving");
            if (failedAllocs(*heaps[t]) != sibling_failed[t])
                return poolFail(round, ev,
                                std::string("sibling ") + kNames[t] +
                                    " had failed allocations");
            HeapAuditor auditor(*heaps[t]);
            AuditReport rep = auditor.audit();
            if (rep.violations() != 0)
                return poolFail(round, ev,
                                std::string("sibling ") + kNames[t] +
                                    " audit:\n" + rep.summary());
        }

        // Convergence: repair + re-audit returns the victim to
        // Serving every round (restore() refuses unless the final
        // audit is clean). Quiesce the tenant first — bitmap rebuild
        // refuses while its thread still holds tcache-lent blocks.
        victim->detachThread(ctxs[0]);
        if (pool.restore(kNames[0]) != NvStatus::Ok)
            return poolFail(round, ev, "victim restore failed");
        if (victim->health() != HeapHealth::Serving)
            return poolFail(round, ev,
                            "victim not Serving after restore");
        ctxs[0] = victim->attachThread();
        if (!ctxs[0])
            return poolFail(round, ev,
                            "victim re-attach after restore failed");
        ++rounds_run_;
    }

    if (!late_tenant_done &&
        opt_.rounds > unsigned(ChaosEvent::HeaderSmash)) {
        error_ = "[pool] quarantine round never ran (no late-tenant "
                 "open was exercised)";
        return false;
    }

    // Final sweep: every tenant's published blocks still free cleanly
    // and every member audits clean — the pool converged.
    for (unsigned t = 0; t < kTenants; ++t) {
        auto *slots =
            static_cast<uint64_t *>(heaps[t]->at(table_off[t]));
        for (unsigned s = 0; s < kSlots; ++s) {
            if (slots[s] != 0 &&
                heaps[t]->freeFrom(*ctxs[t], &slots[s]) !=
                    NvStatus::Ok) {
                error_ = std::string("[pool] final free of ") +
                         kNames[t] + " slot " + std::to_string(s) +
                         " rejected";
                return false;
            }
        }
        heaps[t]->hardening().drainQuarantine();
        HeapAuditor auditor(*heaps[t]);
        AuditReport rep = auditor.audit();
        if (rep.violations() != 0) {
            error_ = std::string("[pool] final audit of ") + kNames[t] +
                     ":\n" + rep.summary();
            return false;
        }
        heaps[t]->detachThread(ctxs[t]);
    }
    donor.detachThread(donor_ctx);
    return true;
}

} // namespace nvalloc

#endif // NVALLOC_TOOLS_POOL_CHAOS_HARNESS_H
