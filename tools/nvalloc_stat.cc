/**
 * @file
 * nvalloc_stat: command-line heap statistics viewer.
 *
 * The emulated PM device lives in anonymous memory, so — like
 * nvalloc_fsck — the tool builds a heap, runs a mixed workload on it,
 * and then serves the telemetry ctl tree over the result. It is both a
 * smoke test for the introspection API (every registered name is
 * readable) and a discovery aid: `--list` enumerates the tree,
 * `--ctl NAME` reads one leaf exactly as an embedding application
 * would via nvalloc_ctl().
 *
 * Exit status: 0 = ok, 1 = unknown ctl name, 2 = usage error or the
 * heap refused to open.
 *
 *   nvalloc_stat                      # full name/value table
 *   nvalloc_stat --json               # whole-heap JSON snapshot
 *   nvalloc_stat --ctl stats.alloc.small
 *   nvalloc_stat --list stats.arena.0
 *   nvalloc_stat --reopen --trace 64  # recovery stats + event trace
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "kv/kv_store.h"
#include "nvalloc/nvalloc.h"

using namespace nvalloc;

namespace {

struct Options
{
    bool gc = false;
    bool base = false; //!< in-place descriptors instead of the log
    bool json = false;
    bool list = false;
    bool reopen = false; //!< dirty-restart + recover before reporting
    bool hardening = false; //!< full hardening + hostile-free traffic
    bool tx = false;        //!< transactional traffic + tx section
    bool health = false;    //!< patrol-scrub + health report section
    bool kv = false;        //!< KV service traffic + stats.kv section
    bool fastpath = false;  //!< stats.fastpath report section
    size_t trace = 0;    //!< per-thread event-ring capacity
    size_t device_mb = 256;
    unsigned ops = 20000;
    MaintenanceMode maintenance = MaintenanceMode::Off;
    std::string prefix;       //!< --list filter
    std::vector<std::string> ctls; //!< --ctl names, in order
    std::vector<std::string> maint_actions; //!< --maint, in order
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --gc           report on the NVAlloc-GC variant\n"
        "  --base         in-place descriptors (no bookkeeping log)\n"
        "  --device-mb N  emulated device size in MB (default 256)\n"
        "  --ops N        workload operations before reporting\n"
        "  --reopen       dirty-restart and recover before reporting\n"
        "  --hardening    enable canaries/quarantine/guard sampling,\n"
        "                 mix hostile frees into the workload, and\n"
        "                 append the hardening report section\n"
        "  --tx           group part of the workload into committed\n"
        "                 and aborted transactions and append the\n"
        "                 stats.tx report section\n"
        "  --health       run a full patrol-scrub pass after the\n"
        "                 workload and append the health report\n"
        "                 (state, escalations, stats.scrub.*)\n"
        "  --kv           open the KV service on the heap, run mixed\n"
        "                 put/get/erase traffic, and append the\n"
        "                 stats.kv report section (LOG variant only)\n"
        "  --fastpath     append the lock-free small-path report\n"
        "                 (reservation hits/misses, CAS retries,\n"
        "                 region steals, refill searches)\n"
        "  --trace N      arm per-thread event rings of N events and\n"
        "                 dump the merged trace\n"
        "  --ctl NAME     read one ctl leaf (repeatable)\n"
        "  --list [PFX]   list registered ctl names (under PFX)\n"
        "  --json         whole-heap JSON snapshot\n"
        "  --maintenance M  background maintenance: off|manual|thread\n"
        "                 (manual steps a slice every 512 workload ops)\n"
        "  --maint A      run a maintenance action after the workload:\n"
        "                 pause|resume|step|wake (repeatable)\n",
        argv0);
}

bool
parseArgs(int argc, char **argv, Options &o)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--gc") {
            o.gc = true;
        } else if (a == "--base") {
            o.base = true;
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--reopen") {
            o.reopen = true;
        } else if (a == "--hardening") {
            o.hardening = true;
        } else if (a == "--tx") {
            o.tx = true;
        } else if (a == "--health") {
            o.health = true;
        } else if (a == "--kv") {
            o.kv = true;
        } else if (a == "--fastpath") {
            o.fastpath = true;
        } else if (a == "--list") {
            o.list = true;
            // Optional prefix: consume the next token unless it is
            // another flag.
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
                o.prefix = argv[++i];
        } else if (a == "--ctl") {
            const char *v = next();
            if (!v)
                return false;
            o.ctls.push_back(v);
        } else if (a == "--trace") {
            const char *v = next();
            if (!v)
                return false;
            o.trace = std::strtoul(v, nullptr, 0);
        } else if (a == "--device-mb") {
            const char *v = next();
            if (!v)
                return false;
            o.device_mb = std::strtoul(v, nullptr, 0);
        } else if (a == "--ops") {
            const char *v = next();
            if (!v)
                return false;
            o.ops = unsigned(std::strtoul(v, nullptr, 0));
        } else if (a == "--maintenance") {
            const char *v = next();
            if (!v)
                return false;
            if (std::strcmp(v, "off") == 0)
                o.maintenance = MaintenanceMode::Off;
            else if (std::strcmp(v, "manual") == 0)
                o.maintenance = MaintenanceMode::Manual;
            else if (std::strcmp(v, "thread") == 0)
                o.maintenance = MaintenanceMode::Thread;
            else
                return false;
        } else if (a == "--maint") {
            const char *v = next();
            if (!v)
                return false;
            o.maint_actions.push_back(v);
        } else {
            return false;
        }
    }
    return o.device_mb >= 16;
}

NvAllocConfig
makeConfig(const Options &o)
{
    NvAllocConfig cfg;
    cfg.consistency = o.gc ? Consistency::Gc : Consistency::Log;
    cfg.log_bookkeeping = !o.base;
    cfg.trace_ring_capacity = o.trace;
    cfg.maintenance_mode = o.maintenance;
    if (o.hardening) {
        cfg.redzone_canaries = true;
        cfg.quarantine_depth = 32;
        cfg.guard_sample_rate = 128;
    }
    return cfg;
}

/** Mixed small/large churn (same shape as nvalloc_fsck's). In Manual
 *  maintenance mode a slice is stepped every 512 operations, so the
 *  stats.maintenance.* family is populated deterministically. With
 *  `tx` on, every 256th operation runs as a small transaction
 *  (alternating commit and abort) so the stats.tx.* family is
 *  populated. */
void
runWorkload(NvAlloc &alloc, ThreadCtx &ctx, unsigned ops, bool tx)
{
    std::vector<uint64_t> live;
    uint64_t rng = 0x9e3779b97f4a7c15ULL;
    auto rnd = [&]() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    static const size_t sizes[] = {16, 48, 256, 1024, 4096, 24 * 1024,
                                   80 * 1024};
    bool hostile = alloc.config().hardened_free &&
                   alloc.config().quarantine_depth > 0;
    for (unsigned i = 0; i < ops; ++i) {
        if (i % 512 == 511 &&
            alloc.config().maintenance_mode == MaintenanceMode::Manual)
            alloc.maintenance().step();
        if (tx && i % 256 == 255) {
            alloc.txBegin(ctx);
            uint64_t off = alloc.txAlloc(ctx, 64 + (i & 0xc0), nullptr);
            if (i % 512 == 255 && off != 0) {
                alloc.txCommit(ctx);
                live.push_back(off);
            } else {
                alloc.txAbort(ctx);
            }
            continue;
        }
        if (hostile && i % 1024 == 1023 && !live.empty()) {
            // Hostile-free traffic (--hardening): a double free and an
            // interior-pointer free, both rejected and counted.
            uint64_t off = live[rnd() % live.size()];
            alloc.freeOffset(ctx, off + 1, nullptr);
            alloc.freeOffset(ctx, off, nullptr);
            alloc.freeOffset(ctx, off, nullptr);
            live.erase(std::find(live.begin(), live.end(), off));
            continue;
        }
        if (live.empty() || rnd() % 3 != 0) {
            size_t size = sizes[rnd() % (sizeof(sizes) / sizeof(*sizes))];
            uint64_t off = alloc.allocOffset(ctx, size, nullptr);
            if (off != 0)
                live.push_back(off);
        } else {
            size_t pick = rnd() % live.size();
            alloc.freeOffset(ctx, live[pick], nullptr);
            live[pick] = live.back();
            live.pop_back();
        }
    }
    for (size_t i = 0; i + 1 < live.size(); i += 2)
        alloc.freeOffset(ctx, live[i], nullptr);
}

void
dumpTrace(NvAlloc &alloc)
{
    alloc.telemetry().stopTracing();
    std::vector<TraceEvent> events;
    uint64_t dropped = alloc.telemetry().drainEvents(events);
    std::printf("trace: %zu event(s), %llu dropped\n", events.size(),
                (unsigned long long)dropped);
    for (const TraceEvent &e : events) {
        std::printf("  %12llu shard=%u %-12s arg=0x%llx",
                    (unsigned long long)e.ts, e.shard,
                    traceOpName(e.op), (unsigned long long)e.arg);
        if (e.size_class != 0xff)
            std::printf(" class=%u", e.size_class);
        if (e.outcome != 0)
            std::printf(" status=%u", e.outcome);
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    if (!parseArgs(argc, argv, o)) {
        usage(argv[0]);
        return 2;
    }

    PmDeviceConfig dcfg;
    dcfg.size = o.device_mb << 20;
    PmDevice dev(dcfg);

    if (o.reopen) {
        // Build a first life whose shutdown is dirty, so the reporting
        // instance below runs failure recovery and the stats.recovery.*
        // family is populated.
        auto first_h = NvAlloc::openOrDie(dev, makeConfig(o));
        NvAlloc &first = *first_h;
        ThreadCtx *ctx = first.attachThread();
        if (!ctx) {
            std::fprintf(stderr, "stat: could not attach build thread\n");
            return 2;
        }
        runWorkload(first, *ctx, o.ops, o.tx);
        first.dirtyRestart();
    }

    auto alloc_h = NvAlloc::openOrDie(dev, makeConfig(o));
    NvAlloc &alloc = *alloc_h;
    if (alloc.openStatus() != NvStatus::Ok) {
        std::fprintf(stderr, "stat: heap failed to open: %s\n",
                     nvStatusName(alloc.openStatus()));
        return 2;
    }
    if (!o.reopen) {
        ThreadCtx *ctx = alloc.attachThread();
        if (!ctx) {
            std::fprintf(stderr, "stat: could not attach thread\n");
            return 2;
        }
        runWorkload(alloc, *ctx, o.ops, o.tx);
        alloc.detachThread(ctx);
    }

    if (o.health) {
        // One full patrol pass: step slices until the cursor wraps
        // (bounded — each slice covers cfg.patrol_items items).
        uint64_t passes = 0;
        alloc.ctlRead("stats.scrub.passes", &passes);
        for (unsigned s = 0; s < 4096; ++s) {
            alloc.patrolSlice();
            uint64_t now = 0;
            alloc.ctlRead("stats.scrub.passes", &now);
            if (now > passes)
                break;
        }
    }

    // The store registers the stats.kv.* subtree on open and detaches
    // it on destruction, so it must outlive the reporting below.
    std::unique_ptr<KvStore> kv;
    if (o.kv) {
        if (o.gc) {
            std::fprintf(stderr,
                         "stat: --kv needs the tx layer (LOG variant)\n");
            return 2;
        }
        KvOptions ko;
        ko.buckets = 512;
        ko.root_index = 1; // root 0 may anchor future workload state
        KvStatus why = KvStatus::Ok;
        kv = KvStore::open(alloc, ko, &why);
        if (!kv) {
            std::fprintf(stderr, "stat: kv open failed: %s\n",
                         kvStatusName(why));
            return 2;
        }
        ThreadCtx *ctx = alloc.attachThread();
        if (!ctx) {
            std::fprintf(stderr, "stat: could not attach kv thread\n");
            return 2;
        }
        unsigned records = o.ops / 8 < 64 ? 64 : o.ops / 8;
        char key[32];
        std::string v;
        for (unsigned i = 0; i < records; ++i) {
            std::snprintf(key, sizeof key, "stat-%u", i);
            std::string val(i % 7 == 0 ? 2048 : 64,
                            char('a' + i % 26));
            kv->put(*ctx, key, val);
        }
        for (unsigned i = 0; i < records; ++i) {
            std::snprintf(key, sizeof key, "stat-%u", i % records);
            kv->get(key, &v);
            if (i % 3 == 0) {
                std::snprintf(key, sizeof key, "stat-%u", i);
                kv->put(*ctx, key, "updated");
            }
            if (i % 5 == 0) {
                std::snprintf(key, sizeof key, "miss-%u", i);
                kv->get(key, &v);
            }
        }
        for (unsigned i = 0; i < records; i += 4) {
            std::snprintf(key, sizeof key, "stat-%u", i);
            kv->erase(*ctx, key);
        }
        alloc.detachThread(ctx);
    }

    for (const std::string &action : o.maint_actions) {
        if (alloc.maintenanceControl(action.c_str()) != NvStatus::Ok) {
            std::fprintf(stderr, "stat: unknown maintenance action: %s\n",
                         action.c_str());
            return 2;
        }
    }

    int rc = 0;
    if (o.list) {
        for (const std::string &name : alloc.ctl().names(o.prefix))
            std::printf("%s\n", name.c_str());
    } else if (!o.ctls.empty()) {
        for (const std::string &name : o.ctls) {
            uint64_t v = 0;
            if (alloc.ctlRead(name.c_str(), &v) != NvStatus::Ok) {
                std::fprintf(stderr, "stat: unknown ctl name: %s\n",
                             name.c_str());
                rc = 1;
                continue;
            }
            std::printf("%s: %llu\n", name.c_str(),
                        (unsigned long long)v);
        }
    } else if (o.json) {
        std::printf("%s\n", alloc.statsJson().c_str());
    } else {
        alloc.ctl().forEach([](const std::string &name, uint64_t v) {
            std::printf("%-40s %llu\n", name.c_str(),
                        (unsigned long long)v);
        });
    }

    if (o.hardening) {
        if (o.json)
            std::printf("%s\n", alloc.hardening().json().c_str());
        else
            std::printf("hardening: %s\n",
                        alloc.hardening().json().c_str());
    }
    if (o.tx) {
        if (o.json)
            std::printf("%s\n", alloc.txJson().c_str());
        else
            std::printf("tx: %s\n", alloc.txJson().c_str());
    }
    if (o.health) {
        if (o.json)
            std::printf("%s\n", alloc.healthJson().c_str());
        else
            std::printf("health: %s\n", alloc.healthJson().c_str());
    }
    if (o.fastpath) {
        if (o.json)
            std::printf("%s\n", alloc.fastpathJson().c_str());
        else
            std::printf("fastpath: %s\n", alloc.fastpathJson().c_str());
    }
    if (kv) {
        if (o.json)
            std::printf("%s\n", kv->json().c_str());
        else
            std::printf("kv: %s\n", kv->json().c_str());
    }

    if (o.trace > 0 && !o.json)
        dumpTrace(alloc);
    return rc;
}
