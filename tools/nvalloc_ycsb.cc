/**
 * @file
 * nvalloc_ycsb — YCSB A-F traffic driver over the KV service
 * (DESIGN.md §13).
 *
 *   nvalloc_ycsb                      # full run: A-F, 1M keys,
 *                                     # threads {1,8,16}, zipfian
 *   nvalloc_ycsb --quick              # CI shape: 20k keys, {1,4,8}
 *   nvalloc_ycsb --workload B         # one mix
 *   nvalloc_ycsb --uniform --theta=0.8 --records=2000000 --ops=500000
 *   nvalloc_ycsb --crash              # crash-mid-YCSB smoke: run A
 *                                     # on a shadow device, kill it at
 *                                     # a seeded flush, recover,
 *                                     # verify + audit (exit != 0 on
 *                                     # any violation)
 *
 * Emits BENCH_ycsb.json through the harness JSON path when
 * NVALLOC_BENCH_JSON_DIR is set (section "ycsb-<W>", series
 * "nvalloc", x = thread count, value = run-phase Mops/s) and honours
 * NVALLOC_BENCH_ALLOCATORS — the KV store rides NVAlloc-LOG, so the
 * whole figure is skipped unless "nvalloc" is enabled. The t=1 rows
 * are virtual-time exact for a given seed; threaded rows jitter with
 * host scheduling inside bench_compare's tolerances.
 *
 * The --crash verdict doubles as the CI leg's fsck stage for the KV
 * heap: the emulated device is anonymous memory, so the audit runs
 * in-process (HeapAuditor — the engine behind nvalloc_fsck) plus the
 * KV layer's own full-checksum verify().
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "nvalloc/auditor.h"
#include "nvalloc/nvalloc.h"
#include "workloads/ycsb.h"

namespace nvalloc {
namespace {

struct Options
{
    std::string workloads = "ABCDEF";
    uint64_t records = 1'000'000;
    uint64_t ops = 0; //!< 0 = same as records
    std::vector<unsigned> threads;
    bool quick = false;
    bool uniform = false;
    double theta = 0.99;
    uint64_t seed = 42;
    bool crash = false;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--quick] [--workload A..F|all] [--records N]\n"
        "          [--ops N] [--threads N[,N...]] [--uniform]\n"
        "          [--theta X] [--seed N] [--crash]\n",
        argv0);
    return 2;
}

YcsbSpec
makeSpec(const Options &o, YcsbWorkload w, unsigned threads)
{
    YcsbSpec spec;
    spec.workload = w;
    spec.record_count = o.records;
    spec.op_count = o.ops ? o.ops : o.records;
    spec.threads = threads;
    spec.zipfian = !o.uniform;
    spec.theta = o.theta;
    spec.seed = o.seed;
    return spec;
}

/** One workload at one thread count on a fresh heap; returns the
 *  run-phase throughput. */
double
runOne(const Options &o, YcsbWorkload w, unsigned threads,
       uint64_t *errors)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{4} << 30;
    PmDevice dev(dcfg);
    auto heap_h = NvAlloc::openOrDie(dev);
    NvAlloc &heap = *heap_h;
    YcsbSpec spec = makeSpec(o, w, threads);

    KvOptions ko;
    ko.buckets = spec.record_count;
    KvStatus why;
    auto store = KvStore::open(heap, ko, &why);
    if (!store) {
        std::fprintf(stderr, "ycsb: kv open failed: %s\n",
                     kvStatusName(why));
        *errors += 1;
        return 0.0;
    }

    VtimeEpoch epoch;
    YcsbResult load = ycsbLoad(*store, spec, epoch);
    std::atomic<uint64_t> inserted{spec.record_count};
    YcsbResult run = ycsbRun(*store, spec, epoch, inserted);
    *errors += load.errors + run.errors;
    return run.run.mops();
}

int
runBench(const Options &o)
{
    if (!benchAllocatorEnabled("nvalloc")) {
        std::printf("ycsb: allocator filter excludes nvalloc; "
                    "nothing to run\n");
        return 0;
    }
    uint64_t errors = 0;
    for (char wc : o.workloads) {
        YcsbWorkload w = YcsbWorkload(wc - 'A');
        std::string figure =
            std::string("ycsb-") + ycsbWorkloadName(w);
        printSeriesHeader(figure.c_str(), "Mops/s (run phase)",
                          o.threads);
        std::vector<double> row;
        for (unsigned t : o.threads)
            row.push_back(runOne(o, w, t, &errors));
        printSeriesRow("nvalloc", row);
    }
    if (errors) {
        std::fprintf(stderr, "ycsb: %" PRIu64 " op errors\n", errors);
        return 1;
    }
    return 0;
}

/**
 * Crash-mid-YCSB smoke: load + partial run of workload A on a shadow
 * device, crash armed at a seed-derived flush count, then recovery
 * must yield a heap that (a) audits clean, (b) passes the KV store's
 * full-checksum verify, and (c) still holds every load-phase key —
 * workload A never erases, so a missing key would be a lost commit.
 */
int
runCrashSmoke(const Options &o)
{
    PmDeviceConfig dcfg;
    dcfg.size = size_t{1} << 28;
    dcfg.shadow = true;
    PmDevice dev(dcfg);
    dev.enableFaultInjection(FaultPolicy{});

    uint64_t records = o.records > 20000 ? 20000 : o.records;
    Options so = o;
    so.records = records;
    so.ops = records;
    YcsbSpec spec = makeSpec(so, YcsbWorkload::A, 4);
    spec.large_value_every = 256;
    spec.large_value_size = 8192;

    bool triggered = false;
    {
        auto heap_h = NvAlloc::openOrDie(dev);
        NvAlloc &heap = *heap_h;
        KvOptions ko;
        ko.buckets = records;
        auto store = KvStore::open(heap, ko);
        if (!store) {
            std::fprintf(stderr, "ycsb-crash: kv open failed\n");
            return 1;
        }
        VtimeEpoch epoch;
        YcsbResult load = ycsbLoad(*store, spec, epoch);
        if (load.errors || load.inserts != records) {
            std::fprintf(stderr, "ycsb-crash: load failed\n");
            return 1;
        }
        // Arm after the load so the crash lands inside the run mix.
        dev.armCrashAtFlush(1 + unsigned(o.seed % 4096));
        std::atomic<uint64_t> inserted{records};
        ycsbRun(*store, spec, epoch, inserted);
        triggered = dev.crashTriggered();
        store.reset();
        heap.simulateCrash();
    }

    auto again_h = NvAlloc::openOrDie(dev);
    NvAlloc &again = *again_h;
    KvStatus why;
    auto store = KvStore::open(again, KvOptions{}, &why);
    if (!store) {
        std::fprintf(stderr, "ycsb-crash: reopen failed: %s\n",
                     kvStatusName(why));
        return 1;
    }
    int rc = 0;
    AuditReport audit = HeapAuditor(again).audit();
    if (audit.violations() != 0) {
        std::fprintf(stderr, "ycsb-crash: audit: %s\n",
                     audit.summary().c_str());
        rc = 1;
    }
    if (store->verify() != KvStatus::Ok) {
        std::fprintf(stderr, "ycsb-crash: checksum verify failed\n");
        rc = 1;
    }
    std::string val;
    uint64_t missing = 0;
    for (uint64_t id = 0; id < records; ++id)
        if (store->get(ycsbKey(id), &val) != KvStatus::Ok)
            ++missing;
    if (missing) {
        std::fprintf(stderr,
                     "ycsb-crash: %" PRIu64 " committed keys lost\n",
                     missing);
        rc = 1;
    }
    std::printf("ycsb-crash: crash=%s records=%" PRIu64
                " recovered=%" PRIu64 " audit=%s verify=%s\n",
                triggered ? "triggered" : "not-reached", records,
                store->count(), rc ? "FAIL" : "clean",
                rc ? "FAIL" : "ok");
    return rc;
}

} // namespace
} // namespace nvalloc

int
main(int argc, char **argv)
{
    using namespace nvalloc;
    Options o;
    BenchArgs args = BenchArgs::parse(argc, argv);
    o.quick = args.quick;
    o.seed = args.seed;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto val = [&](const char *pfx) -> const char * {
            size_t n = std::strlen(pfx);
            return std::strncmp(a, pfx, n) == 0 ? a + n : nullptr;
        };
        if (std::strcmp(a, "--quick") == 0 ||
            std::strncmp(a, "--seed=", 7) == 0) {
            // handled by BenchArgs::parse
        } else if (std::strcmp(a, "--crash") == 0) {
            o.crash = true;
        } else if (std::strcmp(a, "--uniform") == 0) {
            o.uniform = true;
        } else if (const char *v = val("--workload=")) {
            if (std::strcmp(v, "all") == 0) {
                o.workloads = "ABCDEF";
            } else if (std::strlen(v) == 1 && *v >= 'A' &&
                       *v <= 'F') {
                o.workloads = v;
            } else {
                return usage(argv[0]);
            }
        } else if (std::strcmp(a, "--workload") == 0 &&
                   i + 1 < argc) {
            a = argv[++i];
            if (std::strcmp(a, "all") == 0)
                o.workloads = "ABCDEF";
            else if (std::strlen(a) == 1 && *a >= 'A' && *a <= 'F')
                o.workloads = a;
            else
                return usage(argv[0]);
        } else if (const char *v = val("--records=")) {
            o.records = std::strtoull(v, nullptr, 10);
        } else if (const char *v = val("--ops=")) {
            o.ops = std::strtoull(v, nullptr, 10);
        } else if (const char *v = val("--theta=")) {
            o.theta = std::strtod(v, nullptr);
        } else if (const char *v = val("--threads=")) {
            o.threads.clear();
            for (const char *p = v; *p;) {
                o.threads.push_back(unsigned(std::strtoul(
                    p, const_cast<char **>(&p), 10)));
                if (*p == ',')
                    ++p;
            }
        } else {
            return usage(argv[0]);
        }
    }
    if (o.quick && o.records == 1'000'000)
        o.records = 20'000;
    if (o.threads.empty())
        o.threads = o.quick ? std::vector<unsigned>{1, 4, 8}
                            : std::vector<unsigned>{1, 8, 16};
    benchJsonSetProgram("ycsb");

    if (o.crash)
        return runCrashSmoke(o);
    return runBench(o);
}
