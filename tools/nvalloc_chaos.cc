/**
 * @file
 * nvalloc_chaos: seeded chaos soak for the hardening subsystem.
 *
 * Repeatedly opens a heap, churns it, injects one trouble event per
 * round — crashes, torn transactions and media poison from the fault
 * injector, plus deliberate application corruption (double/wild/
 * misaligned/cross-heap frees, canary stomps, guard overflows,
 * quarantine stomps, header smashes, KV record/bucket stomps through
 * the src/kv service) — and asserts after every round that the event
 * was detected and contained (see tools/chaos_harness.h for the
 * contract).
 *
 * With --pool the same trouble classes run against the hostile member
 * of a 4-tenant HeapPool: the victim must be detected (health machine
 * + patrol scrub) and contained while its three siblings keep serving
 * with zero failed allocations (see tools/pool_chaos_harness.h).
 *
 * Deterministic for a given --seed. Exit status: 0 = every round
 * contained, 1 = a containment failure (printed), 2 = usage error.
 *
 *   nvalloc_chaos                          # 200 rounds, seed 1
 *   nvalloc_chaos --rounds 50 --seed 7     # CI smoke
 *   nvalloc_chaos --gc --policy quarantine # NVAlloc-GC variant
 *   nvalloc_chaos --pool --rounds 200      # pool containment soak
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "chaos_harness.h"
#include "pool_chaos_harness.h"

using namespace nvalloc;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --rounds N     soak rounds (default 200)\n"
        "  --seed N       RNG seed (default 1); runs are deterministic\n"
        "  --ops N        mutator operations per round (default 256)\n"
        "  --device-mb N  emulated device size in MB (default 256)\n"
        "  --gc           soak the NVAlloc-GC variant\n"
        "  --policy P     hardening policy: report|quarantine\n"
        "  --pool         4-tenant pool containment soak (1 hostile\n"
        "                 tenant vs 3 serving siblings)\n"
        "  --verbose      log every round and skipped injection\n",
        argv0);
}

bool
parseArgs(int argc, char **argv, ChaosOptions &o, bool &pool)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--gc") {
            o.gc = true;
        } else if (a == "--pool") {
            pool = true;
        } else if (a == "--verbose") {
            o.verbose = true;
        } else if (a == "--rounds") {
            const char *v = next();
            if (!v)
                return false;
            o.rounds = unsigned(std::strtoul(v, nullptr, 0));
        } else if (a == "--seed") {
            const char *v = next();
            if (!v)
                return false;
            o.seed = std::strtoull(v, nullptr, 0);
        } else if (a == "--ops") {
            const char *v = next();
            if (!v)
                return false;
            o.ops_per_round = unsigned(std::strtoul(v, nullptr, 0));
        } else if (a == "--device-mb") {
            const char *v = next();
            if (!v)
                return false;
            o.device_mb = std::strtoul(v, nullptr, 0);
        } else if (a == "--policy") {
            const char *v = next();
            if (!v)
                return false;
            if (std::strcmp(v, "report") == 0)
                o.policy = HardeningPolicy::Report;
            else if (std::strcmp(v, "quarantine") == 0)
                o.policy = HardeningPolicy::Quarantine;
            else
                return false;
        } else {
            return false;
        }
    }
    return o.rounds > 0 && o.device_mb >= 64;
}

} // namespace

int
main(int argc, char **argv)
{
    ChaosOptions o;
    bool pool = false;
    if (!parseArgs(argc, argv, o, pool)) {
        usage(argv[0]);
        return 2;
    }

    if (pool) {
        PoolChaosHarness harness(o);
        bool ok = harness.runPool();
        std::printf("pool-chaos: %u round(s), seed %llu, %u tenant(s), "
                    "%s\n",
                    harness.roundsRun(), (unsigned long long)o.seed,
                    PoolChaosHarness::kTenants,
                    o.gc ? "NVAlloc-GC" : "NVAlloc-LOG");
        std::fputs(harness.summary().c_str(), stdout);
        if (!ok) {
            std::printf("pool-chaos: FAILED at %s\n",
                        harness.error().c_str());
            return 1;
        }
        std::printf("pool-chaos: all rounds contained, blast radius "
                    "confined to the hostile tenant\n");
        return 0;
    }

    ChaosHarness harness(o);
    bool ok = harness.run();

    std::printf("chaos: %u round(s), seed %llu, %s%s\n",
                harness.roundsRun(), (unsigned long long)o.seed,
                o.gc ? "NVAlloc-GC" : "NVAlloc-LOG",
                o.policy == HardeningPolicy::Quarantine
                    ? ", quarantine policy"
                    : "");
    std::fputs(harness.summary().c_str(), stdout);
    if (!ok) {
        std::printf("chaos: FAILED at %s\n", harness.error().c_str());
        return 1;
    }
    std::printf("chaos: all rounds contained\n");
    return 0;
}
