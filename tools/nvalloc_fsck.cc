/**
 * @file
 * nvalloc_fsck: command-line heap checker.
 *
 * The emulated PM device lives in anonymous memory, so there is no
 * heap file to open; instead the tool builds a heap, optionally runs a
 * workload, optionally injects damage (a dirty restart, poisoned
 * lines, a flipped bitmap bit, a torn WAL entry), reopens it, and runs
 * the HeapAuditor over the result — the same audit + repair pipeline
 * an fsck over a real heap file would run.
 *
 * Exit status contract (asserted by CI):
 *   0 = clean: the audit found nothing to fix;
 *   1 = repaired: violations were found AND the repair pass (--repair)
 *       brought the final audit back to clean;
 *   2 = unrecoverable/degraded: the heap refused to open, or
 *       violations remain (no --repair, or repair could not derive a
 *       fix).
 *
 *   nvalloc_fsck                       # clean build + audit -> 0
 *   nvalloc_fsck --flip-bitmap --repair              # -> 1
 *   nvalloc_fsck --flip-bitmap                       # -> 2
 *   nvalloc_fsck --pool --json         # per-member objects + health
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "nvalloc/auditor.h"
#include "nvalloc/nvalloc.h"
#include "nvalloc/pool.h"

using namespace nvalloc;

namespace {

struct Options
{
    bool gc = false;
    bool base = false; //!< in-place descriptors instead of the log
    bool crash = false;
    bool repair = false;
    bool quiet = false;
    bool json = false;
    bool flip_bitmap = false;
    bool corrupt_wal = false;
    bool pool = false;
    unsigned poison_free = 0;
    size_t device_mb = 256;
    unsigned ops = 20000;
};

/** The CI-asserted exit-code contract. */
int
verdict(bool initial_clean, bool final_clean)
{
    if (!final_clean)
        return 2; // unrecoverable/degraded
    return initial_clean ? 0 : 1;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --gc             audit the NVAlloc-GC variant\n"
        "  --base           in-place descriptors (no bookkeeping log)\n"
        "  --device-mb N    emulated device size in MB (default 256)\n"
        "  --ops N          workload operations before the audit\n"
        "  --crash          dirty-restart mid-life, recover, then audit\n"
        "  --poison-free N  poison N free lines before the audit\n"
        "  --flip-bitmap    flip a stray bit in one slab bitmap\n"
        "  --corrupt-wal    plant a torn WAL entry\n"
        "  --repair         repair after the audit, then re-audit\n"
        "  --pool           audit a 3-tenant heap pool: per-member\n"
        "                   reports; damage flags hit tenant0 only\n"
        "  --quiet          print only the verdict\n"
        "  --json           machine-readable report + stats snapshot\n",
        argv0);
}

bool
parseArgs(int argc, char **argv, Options &o)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--gc") {
            o.gc = true;
        } else if (a == "--base") {
            o.base = true;
        } else if (a == "--crash") {
            o.crash = true;
        } else if (a == "--repair") {
            o.repair = true;
        } else if (a == "--quiet") {
            o.quiet = true;
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--flip-bitmap") {
            o.flip_bitmap = true;
        } else if (a == "--corrupt-wal") {
            o.corrupt_wal = true;
        } else if (a == "--pool") {
            o.pool = true;
        } else if (a == "--poison-free") {
            const char *v = next();
            if (!v)
                return false;
            o.poison_free = unsigned(std::strtoul(v, nullptr, 0));
        } else if (a == "--device-mb") {
            const char *v = next();
            if (!v)
                return false;
            o.device_mb = std::strtoul(v, nullptr, 0);
        } else if (a == "--ops") {
            const char *v = next();
            if (!v)
                return false;
            o.ops = unsigned(std::strtoul(v, nullptr, 0));
        } else {
            return false;
        }
    }
    return o.device_mb >= 16;
}

NvAllocConfig
makeConfig(const Options &o)
{
    NvAllocConfig cfg;
    cfg.consistency = o.gc ? Consistency::Gc : Consistency::Log;
    cfg.log_bookkeeping = !o.base;
    return cfg;
}

/** Mixed small/large churn so the audit walks non-trivial state. */
void
runWorkload(NvAlloc &alloc, ThreadCtx &ctx, unsigned ops)
{
    std::vector<uint64_t> live;
    uint64_t rng = 0x9e3779b97f4a7c15ULL;
    auto rnd = [&]() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    static const size_t sizes[] = {16, 48, 256, 1024, 4096, 24 * 1024,
                                   80 * 1024};
    for (unsigned i = 0; i < ops; ++i) {
        if (live.empty() || rnd() % 3 != 0) {
            size_t size = sizes[rnd() % (sizeof(sizes) / sizeof(*sizes))];
            uint64_t off = alloc.allocOffset(ctx, size, nullptr);
            if (off != 0)
                live.push_back(off);
        } else {
            size_t pick = rnd() % live.size();
            alloc.freeOffset(ctx, live[pick], nullptr);
            live[pick] = live.back();
            live.pop_back();
        }
    }
    // Leave roughly half the objects live for the audit to cover.
    for (size_t i = 0; i + 1 < live.size(); i += 2)
        alloc.freeOffset(ctx, live[i], nullptr);
}

/**
 * Pool mode: three tenant heaps behind one HeapPool. Damage flags hit
 * tenant0 only; the patrol scrubber is stepped so detection and the
 * health escalation show up in the per-member reports, and --repair
 * goes through HeapPool::restore (repair + health restore) instead of
 * a bare auditor pass. Exit code follows the same contract: 0 when no
 * member ever had a finding, 1 when findings were fully repaired and
 * every member is back to Serving, 2 otherwise.
 */
int
poolMain(const Options &o)
{
    PmDeviceConfig dcfg;
    dcfg.size = o.device_mb << 20;
    static const char *kNames[] = {"tenant0", "tenant1", "tenant2"};
    // Devices must outlive the pool (one live heap per device).
    std::vector<std::unique_ptr<PmDevice>> devs;
    HeapPool pool;
    std::vector<NvAlloc *> heaps;
    for (const char *name : kNames) {
        devs.emplace_back(new PmDevice(dcfg));
        HeapPool::MemberResult r = pool.open(name, *devs.back(),
                                             makeConfig(o));
        if (!r.heap) {
            std::fprintf(stderr, "fsck: pool open %s failed: %s\n",
                         name, nvStatusName(r.status));
            return 2;
        }
        heaps.push_back(r.heap);
    }
    for (NvAlloc *h : heaps) {
        ThreadCtx *ctx = h->attachThread();
        if (!ctx)
            return 2;
        runWorkload(*h, *ctx, o.ops / 4);
        h->detachThread(ctx);
    }

    if (o.flip_bitmap) {
        // Damage a quiesced slab (no morph in flight, nothing lent to
        // a tcache): --repair must be able to rebuild its bitmap, so
        // the exit-code contract stays 1 and not 2.
        bool done = false;
        for (unsigned i = 0; i < heaps[0]->numArenas() && !done; ++i) {
            heaps[0]->arena(i).forEachSlab([&](VSlab *slab) {
                if (done || slab->morphing() ||
                    slab->lentBlocks() != 0)
                    return;
                slab->header()->bitmap[kSlabBitmapBytes - 1] ^= 0x80;
                done = true;
            });
        }
    }
    if (o.corrupt_wal) {
        auto *e = static_cast<WalEntry *>(
            devs[0]->at(heaps[0]->walRingOffset(0)));
        e->block_op = (uint64_t(0x1234) << 2) | kWalAlloc;
        e->seq = 1;
        e->where_off = kWalNoWhere;
        e->size = 64;
        e->crc = walEntryCrc(*e) ^ 0xdeadbeef;
    }

    // Step the patrol scrubber over every member so detection (and the
    // resulting health escalation on the victim) is part of the run.
    for (NvAlloc *h : heaps)
        for (unsigned s = 0; s < 64; ++s)
            h->patrolSlice();

    bool any_finding = false;
    bool all_ok = true;
    const bool text = !o.quiet && !o.json;
    std::string members;
    for (size_t i = 0; i < heaps.size(); ++i) {
        NvAlloc *h = heaps[i];
        HeapAuditor aud(*h);
        AuditReport rep = aud.audit();
        bool dirty = !rep.clean() ||
                     unsigned(h->health()) >= unsigned(HeapHealth::Degraded);
        any_finding |= dirty;
        if (dirty && o.repair) {
            pool.restore(kNames[i]);
            rep = aud.audit();
        }
        bool ok = rep.clean() &&
                  unsigned(h->health()) < unsigned(HeapHealth::Degraded);
        all_ok &= ok;
        if (!members.empty())
            members += ",";
        members += "\"";
        members += kNames[i];
        members += "\":{\"clean\":";
        members += rep.clean() ? "true" : "false";
        members += ",\"health\":" + std::string(h->healthJson());
        members += ",\"audit\":" + rep.json() + "}";
        if (text)
            std::printf("fsck: %s: %s, health=%s\n", kNames[i],
                        rep.clean() ? "clean" : "NOT CLEAN",
                        heapHealthName(h->health()));
    }

    if (o.json) {
        std::string doc = "{\"pool\":" + pool.healthJson();
        doc += ",\"members\":{" + members + "}}";
        std::printf("%s\n", doc.c_str());
    } else if (!text) {
        std::printf("fsck: pool %s\n",
                    all_ok ? (any_finding ? "repaired" : "clean")
                           : "NOT CLEAN");
    }
    return verdict(!any_finding, all_ok);
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    if (!parseArgs(argc, argv, o)) {
        usage(argv[0]);
        return 2;
    }
    if (o.pool)
        return poolMain(o);

    PmDeviceConfig dcfg;
    dcfg.size = o.device_mb << 20;
    PmDevice dev(dcfg);

    // Phase 1: build a heap with real history on the device.
    {
        auto alloc_h = NvAlloc::openOrDie(dev, makeConfig(o));
        NvAlloc &alloc = *alloc_h;
        ThreadCtx *ctx = alloc.attachThread();
        if (!ctx) {
            std::fprintf(stderr, "fsck: could not attach build thread\n");
            return 2;
        }
        runWorkload(alloc, *ctx, o.ops);
        if (o.crash)
            alloc.dirtyRestart(); // next open takes failure recovery
        else
            alloc.detachThread(ctx);
        // ~NvAlloc: normal shutdown unless dirtyRestart neutered it.
    }

    // Phase 2: reopen (runs recovery) and inject the requested damage.
    auto alloc_h = NvAlloc::openOrDie(dev, makeConfig(o));
    NvAlloc &alloc = *alloc_h;
    if (alloc.openStatus() != NvStatus::Ok) {
        std::fprintf(stderr, "fsck: heap failed to open: %s\n",
                     nvStatusName(alloc.openStatus()));
        return 2;
    }

    // Exercise the transaction layer on the reporting instance so the
    // report's "tx" object reflects live counters: one committed and
    // one aborted group. Both close before the audit runs, so no
    // staged state leaks into the checks.
    {
        ThreadCtx *tctx = alloc.attachThread();
        if (tctx) {
            alloc.txBegin(*tctx);
            if (alloc.txAlloc(*tctx, 128, alloc.rootWord(7)) != 0)
                alloc.txWrite(*tctx, alloc.rootWord(6), 0x7e57);
            alloc.txCommit(*tctx);
            alloc.txBegin(*tctx);
            alloc.txAlloc(*tctx, 256, nullptr);
            alloc.txAbort(*tctx);
            alloc.detachThread(tctx);
        }
    }

    if (o.poison_free > 0) {
        // Poison lines inside reclaimed (free) extents.
        unsigned left = o.poison_free;
        alloc.large().forEachVeh([&](Veh *veh) {
            if (veh->state != Veh::State::Reclaimed)
                return;
            for (uint64_t l = 0; left > 0 && l < veh->size / kCacheLine;
                 ++l, --left)
                dev.poisonLine(veh->off + l * kCacheLine);
        });
        if (left > 0)
            std::fprintf(stderr,
                         "fsck: only %u of %u free lines poisoned "
                         "(no reclaimed extents)\n",
                         o.poison_free - left, o.poison_free);
    }
    if (o.flip_bitmap) {
        bool done = false;
        for (unsigned i = 0; i < alloc.numArenas() && !done; ++i) {
            alloc.arena(i).forEachSlab([&](VSlab *slab) {
                if (done)
                    return;
                // The last bitmap byte is beyond any geometry's mapped
                // slots, so this is a stray allocated bit.
                slab->header()->bitmap[kSlabBitmapBytes - 1] ^= 0x80;
                done = true;
            });
        }
        if (!done)
            std::fprintf(stderr, "fsck: no slab to corrupt\n");
    }
    if (o.corrupt_wal) {
        auto *e = static_cast<WalEntry *>(dev.at(alloc.walRingOffset(0)));
        e->block_op = (uint64_t(0x1234) << 2) | kWalAlloc;
        e->seq = 1;
        e->where_off = kWalNoWhere;
        e->size = 64;
        e->crc = walEntryCrc(*e) ^ 0xdeadbeef; // deliberately wrong
    }

    HeapAuditor auditor(alloc);
    AuditReport rep = auditor.audit();
    const bool initial_clean = rep.clean();
    const bool text = !o.quiet && !o.json;
    if (text)
        std::fputs(rep.summary().c_str(), stdout);

    const std::string initial_json = o.json ? rep.json() : std::string();
    std::string repair_json; // empty when no repair pass ran
    if (o.repair && (!rep.clean() || rep.poisoned_free_lines > 0)) {
        AuditReport fixed = auditor.repair();
        repair_json = fixed.json();
        if (text) {
            std::fputs("after repair:\n", stdout);
            std::fputs(fixed.summary().c_str(), stdout);
        }
        rep = auditor.audit();
        if (text)
            std::fputs(rep.summary().c_str(), stdout);
    }

    if (o.json) {
        // Component documents are already JSON; splice them together
        // rather than re-walking the structures through a writer.
        std::string doc = "{\"clean\":";
        doc += rep.clean() ? "true" : "false";
        doc += ",\"audit\":" + initial_json;
        if (!repair_json.empty())
            doc += ",\"repair\":" + repair_json +
                   ",\"final_audit\":" + rep.json();
        doc += ",\"tx\":" + alloc.txJson();
        doc += ",\"hardening\":" + alloc.hardening().json();
        doc += ",\"fastpath\":" + alloc.fastpathJson();
        doc += ",\"stats\":" + alloc.statsJson() + "}";
        std::printf("%s\n", doc.c_str());
        return verdict(initial_clean, rep.clean());
    }

    if (!rep.clean()) {
        std::printf("fsck: NOT CLEAN (%llu violations)\n",
                    (unsigned long long)rep.violations());
        return 2;
    }
    std::printf("fsck: %s\n", initial_clean ? "clean" : "repaired");
    return verdict(initial_clean, true);
}
