#!/usr/bin/env python3
"""Compare two directories of BENCH_<fig>.json files.

Each file is emitted by a bench binary when NVALLOC_BENCH_JSON_DIR is
set (see src/workloads/harness.h) and holds a flat list of points keyed
by (section, series, x). Single-thread rows are exactly reproducible
(the virtual clock is deterministic); multi-thread rows jitter a few
percent because virtual-time lock queues fill in host scheduling
order. A point therefore only fails when it exceeds BOTH tolerances:

  relative deviation > --threshold  AND  absolute deviation > --abs

(the AND keeps tiny percentage-point values from tripping the relative
check and noisy-but-small shifts from tripping the absolute one).
Defaults are 0, i.e. exact compare — CI passes explicit tolerances
sized ~3x above measured run-to-run noise.

Usage:
  tools/bench_compare.py BASELINE_DIR CURRENT_DIR \
      [--threshold FRAC] [--abs VALUE]

Exit status: 0 when every baseline point is present and within
tolerance, 1 on any missing file, missing point, or deviation.
"""

import argparse
import json
import os
import sys


def load_dir(path):
    """{bench_name: {(section, series, x): value}} for BENCH_*.json."""
    out = {}
    for name in sorted(os.listdir(path)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        with open(os.path.join(path, name)) as f:
            doc = json.load(f)
        points = {}
        for p in doc["points"]:
            points[(p["section"], p["series"], p["x"])] = p["value"]
        out[name] = points
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.0,
                    help="allowed relative deviation (default: exact)")
    ap.add_argument("--abs", dest="abs_tol", type=float, default=0.0,
                    help="allowed absolute deviation (default: exact)")
    args = ap.parse_args()

    base = load_dir(args.baseline)
    cur = load_dir(args.current)
    if not base:
        print(f"error: no BENCH_*.json in {args.baseline}",
              file=sys.stderr)
        return 1

    failures = 0
    compared = 0
    for bench, base_points in sorted(base.items()):
        cur_points = cur.get(bench)
        if cur_points is None:
            print(f"FAIL {bench}: missing from {args.current}")
            failures += 1
            continue
        for key, want in sorted(base_points.items()):
            got = cur_points.get(key)
            section, series, x = key
            label = f"{bench} [{section} / {series} @ {x}]"
            if got is None:
                print(f"FAIL {label}: point missing")
                failures += 1
                continue
            compared += 1
            scale = max(abs(want), 1e-12)
            diff = abs(got - want)
            rel = diff / scale
            if rel > args.threshold and diff > args.abs_tol:
                print(f"FAIL {label}: baseline {want:.6f} vs "
                      f"{got:.6f} (rel {rel:.4%} > "
                      f"{args.threshold:.4%}, abs {diff:.4f} > "
                      f"{args.abs_tol:.4f})")
                failures += 1

    if failures:
        print(f"bench_compare: {failures} failure(s), "
              f"{compared} point(s) compared")
        return 1
    print(f"bench_compare: OK — {compared} point(s) match across "
          f"{len(base)} bench file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
