/**
 * @file
 * Chaos soak harness for the hardening subsystem (DESIGN.md §9).
 *
 * A seeded, deterministic (under Manual maintenance) loop that
 * interleaves a mutator workload with two kinds of trouble:
 *
 *  - fault-injector events: mid-operation crashes at arbitrary flush
 *    points under a torn-word policy, plus media poison — the same
 *    substrate as the flush-granularity crash sweep;
 *  - deliberate application-level corruption: double frees, wild and
 *    misaligned frees, cross-heap frees (against a live donor heap),
 *    canary stomps, guard redzone overflows, quarantine stomps,
 *    slab-header smashes, transactions torn by a mid-commit crash
 *    (resolved all-or-nothing by the next recovery), and KV-level
 *    stomps of a live record's payload and bucket word, detected and
 *    contained by the KV service's checksums (src/kv/).
 *
 * After every round the harness asserts the containment contract: the
 * corruption was detected (the matching stats.hardening.* counter
 * moved) and contained (the heap still audits clean, repairable damage
 * was repaired, and — after a crash — recovery converged with every
 * persistently published block still allocated).
 *
 * Shared by tools/nvalloc_chaos.cc (CLI soak) and tests/test_chaos.cc
 * (ctest registration, including the soak-labeled long run).
 */

#ifndef NVALLOC_TOOLS_CHAOS_HARNESS_H
#define NVALLOC_TOOLS_CHAOS_HARNESS_H

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "kv/kv_store.h"
#include "nvalloc/auditor.h"
#include "nvalloc/nvalloc.h"

namespace nvalloc {

/** One trouble class the harness can inject into a round. */
enum class ChaosEvent : unsigned
{
    DoubleFree = 0,
    WildFree,
    MisalignedFree,
    CanaryStomp,
    CrossHeapFree,
    GuardOverflow,
    QuarantineStomp,
    HeaderSmash,
    PoisonLine,
    Crash,
    TornTx,
    KvStomp,
    kCount,
};

inline const char *
chaosEventName(ChaosEvent e)
{
    switch (e) {
    case ChaosEvent::DoubleFree: return "double-free";
    case ChaosEvent::WildFree: return "wild-free";
    case ChaosEvent::MisalignedFree: return "misaligned-free";
    case ChaosEvent::CanaryStomp: return "canary-stomp";
    case ChaosEvent::CrossHeapFree: return "cross-heap-free";
    case ChaosEvent::GuardOverflow: return "guard-overflow";
    case ChaosEvent::QuarantineStomp: return "quarantine-stomp";
    case ChaosEvent::HeaderSmash: return "header-smash";
    case ChaosEvent::PoisonLine: return "poison-line";
    case ChaosEvent::Crash: return "crash";
    case ChaosEvent::TornTx: return "torn-tx";
    case ChaosEvent::KvStomp: return "kv-stomp";
    case ChaosEvent::kCount: break;
    }
    return "?";
}

struct ChaosOptions
{
    uint64_t seed = 1;
    unsigned rounds = 200;
    unsigned ops_per_round = 256;
    size_t device_mb = 256;
    bool gc = false; //!< NVAlloc-GC instead of NVAlloc-LOG
    bool verbose = false;
    HardeningPolicy policy = HardeningPolicy::Report;
};

class ChaosHarness
{
  public:
    static constexpr unsigned kSlots = 96;
    static constexpr unsigned kEventCount =
        unsigned(ChaosEvent::kCount);

    explicit ChaosHarness(const ChaosOptions &o)
        : opt_(o), rng_(o.seed ? o.seed : 1)
    {
    }

    /** Run the soak; false on the first containment failure (see
     *  error()). Deterministic for a given ChaosOptions. */
    bool run();

    const std::string &error() const { return error_; }
    unsigned roundsRun() const { return rounds_run_; }
    uint64_t injected(ChaosEvent e) const { return injected_[unsigned(e)]; }
    uint64_t detected(ChaosEvent e) const { return detected_[unsigned(e)]; }
    uint64_t skipped(ChaosEvent e) const { return skipped_[unsigned(e)]; }

    std::string
    summary() const
    {
        std::string s;
        char buf[128];
        for (unsigned e = 0; e < kEventCount; ++e) {
            std::snprintf(buf, sizeof(buf),
                          "  %-16s injected=%llu detected=%llu "
                          "skipped=%llu\n",
                          chaosEventName(ChaosEvent(e)),
                          (unsigned long long)injected_[e],
                          (unsigned long long)detected_[e],
                          (unsigned long long)skipped_[e]);
            s += buf;
        }
        return s;
    }

  protected:
    // The injection routines, slot oracle and per-round state are
    // shared with PoolChaosHarness (tools/pool_chaos_harness.h), which
    // drives them against the victim member of a multi-tenant pool.
    NvAllocConfig
    config() const
    {
        NvAllocConfig cfg;
        cfg.consistency =
            opt_.gc ? Consistency::Gc : Consistency::Log;
        // Manual maintenance keeps the run single-threaded, hence
        // deterministic for a given seed.
        cfg.maintenance_mode = MaintenanceMode::Manual;
        cfg.redzone_canaries = true;
        cfg.quarantine_depth = 16;
        cfg.guard_sample_rate = 32;
        cfg.hardening_policy = opt_.policy;
        return cfg;
    }

    bool
    fail(unsigned round, ChaosEvent ev, const std::string &msg)
    {
        error_ = "round " + std::to_string(round) + " (" +
                 chaosEventName(ev) + "): " + msg;
        return false;
    }

    /** Is `off` still allocated (small block, old block, or extent)? */
    static bool
    offsetLive(NvAlloc &heap, uint64_t off)
    {
        if (auto *slab =
                static_cast<VSlab *>(heap.slabRadix().get(off))) {
            unsigned old_idx = 0;
            if (slab->isOldBlock(off, old_idx))
                return true;
            unsigned idx = slab->blockIndexOf(off);
            return idx < slab->capacity() && slab->isAllocated(idx);
        }
        Veh *veh = heap.large().findVeh(off);
        return veh && veh->off == off &&
               veh->state == Veh::State::Activated && !veh->is_slab;
    }

    size_t
    pickSize()
    {
        static const size_t small[] = {16,  32,   64,   96,  256,
                                       512, 1024, 2048, 4096, 8192};
        static const size_t large[] = {24 * 1024, 48 * 1024, 96 * 1024};
        if (rng_.nextBounded(24) == 0)
            return large[rng_.nextBounded(3)];
        return small[rng_.nextBounded(10)];
    }

    /** Seeded alloc/free churn over the persistent slot table; steps a
     *  maintenance slice periodically. In crash mode, stops once the
     *  armed crash point has triggered. */
    void
    churn(NvAlloc &heap, ThreadCtx &ctx, uint64_t *slots, unsigned ops,
          PmDevice &dev, bool crash_mode)
    {
        for (unsigned op = 0; op < ops; ++op) {
            if (crash_mode && dev.crashTriggered())
                return;
            if (op % 64 == 63)
                heap.maintenance().step();
            unsigned s = unsigned(rng_.nextBounded(kSlots));
            if (slots[s] == 0) {
                size_t size = pickSize();
                void *p = heap.mallocTo(ctx, size, &slots[s]);
                if (p) {
                    sizes_[s] = size;
                    std::memset(p, int(0x41 + (s & 31)),
                                std::min<size_t>(size, 32));
                    dev.persistFence(p, 32, TimeKind::FlushData);
                }
            } else {
                heap.freeFrom(ctx, &slots[s]);
                sizes_[s] = 0;
            }
        }
    }

    /** A live slot holding a current-geometry small block that is not
     *  a guard; kSlots if none qualifies. */
    unsigned
    pickSmallSlot(NvAlloc &heap, const uint64_t *slots,
                  size_t min_size = 0)
    {
        for (unsigned tries = 0; tries < kSlots; ++tries) {
            unsigned s = unsigned(rng_.nextBounded(kSlots));
            uint64_t off = slots[s];
            if (off == 0 || sizes_[s] < min_size)
                continue;
            if (heap.hardening().isGuard(off))
                continue;
            auto *slab =
                static_cast<VSlab *>(heap.slabRadix().get(off));
            if (!slab)
                continue;
            unsigned old_idx = 0;
            if (slab->isOldBlock(off, old_idx))
                continue;
            return s;
        }
        return kSlots;
    }

    bool inject(ChaosEvent ev, NvAlloc &heap, ThreadCtx &ctx,
                PmDevice &dev, uint64_t *slots, unsigned round,
                const std::vector<uint64_t> &donor_offs);

    ChaosOptions opt_;
    Rng rng_;
    std::string error_;
    unsigned rounds_run_ = 0;
    uint64_t injected_[kEventCount] = {};
    uint64_t detected_[kEventCount] = {};
    uint64_t skipped_[kEventCount] = {};
    std::vector<size_t> sizes_; //!< per-slot sizes (volatile oracle)
    bool pending_crash_ = false;
    bool pending_tx_crash_ = false;
};

inline bool
ChaosHarness::inject(ChaosEvent ev, NvAlloc &heap, ThreadCtx &ctx,
                     PmDevice &dev, uint64_t *slots, unsigned round,
                     const std::vector<uint64_t> &donor_offs)
{
    const HardeningStats &hs = heap.hardening().stats();
    auto count = [](const std::atomic<uint64_t> &a) {
        return a.load(std::memory_order_relaxed);
    };
    auto skip = [&](const char *why) {
        ++skipped_[unsigned(ev)];
        if (opt_.verbose)
            std::fprintf(stderr, "chaos: round %u %s skipped (%s)\n",
                         round, chaosEventName(ev), why);
        return true;
    };

    switch (ev) {
    case ChaosEvent::DoubleFree: {
        unsigned s = pickSmallSlot(heap, slots);
        if (s == kSlots)
            return skip("no small block live");
        uint64_t off = slots[s];
        uint64_t before = count(hs.double_frees);
        if (heap.freeFrom(ctx, &slots[s]) != NvStatus::Ok)
            return fail(round, ev, "priming free rejected");
        sizes_[s] = 0;
        // The priming free can trigger a slab morph; after one the
        // stale offset may no longer name a block boundary of the
        // current geometry, and the second free then (correctly)
        // classifies as misaligned rather than double.
        auto *pslab = static_cast<VSlab *>(heap.slabRadix().get(off));
        unsigned old_idx = 0;
        if (!pslab || pslab->isOldBlock(off, old_idx))
            return skip("priming free morphed the slab");
        unsigned pidx = pslab->blockIndexOf(off);
        if (pidx >= pslab->capacity() || pslab->blockOffset(pidx) != off)
            return skip("priming free morphed the slab geometry");
        if (heap.freeOffset(ctx, off, nullptr) != NvStatus::InvalidFree)
            return fail(round, ev, "double free not rejected");
        if (count(hs.double_frees) != before + 1)
            return fail(round, ev, "double_frees did not move");
        ++detected_[unsigned(ev)];
        return true;
    }
    case ChaosEvent::WildFree: {
        // The device tail is never mapped by the workload's footprint.
        uint64_t off = dev.size() - kCacheLine;
        uint64_t before = count(hs.wild_frees);
        if (heap.ownsOffset(off))
            return skip("device tail mapped");
        if (heap.freeOffset(ctx, off, nullptr) != NvStatus::InvalidFree)
            return fail(round, ev, "wild free not rejected");
        if (count(hs.wild_frees) != before + 1)
            return fail(round, ev, "wild_frees did not move");
        ++detected_[unsigned(ev)];
        return true;
    }
    case ChaosEvent::MisalignedFree: {
        unsigned s = pickSmallSlot(heap, slots, /*min_size=*/16);
        if (s == kSlots)
            return skip("no block >= 16B live");
        uint64_t before = count(hs.misaligned_frees);
        if (heap.freeOffset(ctx, slots[s] + 8, nullptr) !=
            NvStatus::InvalidFree)
            return fail(round, ev, "interior free not rejected");
        if (count(hs.misaligned_frees) != before + 1)
            return fail(round, ev, "misaligned_frees did not move");
        ++detected_[unsigned(ev)];
        return true;
    }
    case ChaosEvent::CanaryStomp: {
        unsigned s = pickSmallSlot(heap, slots);
        if (s == kSlots)
            return skip("no small block live");
        uint64_t off = slots[s];
        auto *slab = static_cast<VSlab *>(heap.slabRadix().get(off));
        unsigned bsize = slab->blockSize();
        // The application overflow: the canary word gets clobbered.
        auto *w = reinterpret_cast<uint64_t *>(
            static_cast<char *>(heap.at(off)) + bsize -
            HardeningManager::kCanaryBytes);
        *w ^= 0xdeadbeefcafef00dULL;
        uint64_t before = count(hs.canary_stomps);
        NvStatus st = heap.freeFrom(ctx, &slots[s]);
        sizes_[s] = 0;
        if (st != NvStatus::Ok)
            return fail(round, ev,
                        "stomped free should contain, not error");
        if (count(hs.canary_stomps) != before + 1)
            return fail(round, ev, "canary_stomps did not move");
        if (slots[s] != 0)
            return fail(round, ev, "attach word not cleared");
        ++detected_[unsigned(ev)];
        return true;
    }
    case ChaosEvent::CrossHeapFree: {
        uint64_t victim = 0;
        for (uint64_t cand : donor_offs) {
            if (cand < dev.size() && !heap.ownsOffset(cand)) {
                victim = cand;
                break;
            }
        }
        if (victim == 0)
            return skip("all donor offsets collide with this heap");
        uint64_t before = count(hs.cross_heap_frees);
        if (heap.freeOffset(ctx, victim, nullptr) !=
            NvStatus::InvalidFree)
            return fail(round, ev, "cross-heap free not rejected");
        if (count(hs.cross_heap_frees) != before + 1)
            return fail(round, ev, "cross_heap_frees did not move");
        ++detected_[unsigned(ev)];
        return true;
    }
    case ChaosEvent::GuardOverflow: {
        // Allocate until the sampler hands out a guard extent.
        uint64_t goff = 0;
        std::vector<uint64_t> chaff;
        for (unsigned i = 0; i < 4 * 32 && goff == 0; ++i) {
            uint64_t off = heap.allocOffset(ctx, 48, nullptr);
            if (off == 0)
                break;
            if (heap.hardening().isGuard(off))
                goff = off;
            else
                chaff.push_back(off);
        }
        for (uint64_t off : chaff)
            heap.freeOffset(ctx, off, nullptr);
        if (goff == 0)
            return skip("sampler produced no guard");
        // Linear overflow: one byte past the allocation, into the
        // redzone fill.
        static_cast<uint8_t *>(heap.at(goff))[48] = 0xaa;
        uint64_t before = count(hs.guard_overflows);
        if (heap.freeOffset(ctx, goff, nullptr) != NvStatus::Ok)
            return fail(round, ev, "guard free should contain");
        if (count(hs.guard_overflows) != before + 1)
            return fail(round, ev, "guard_overflows did not move");
        ++detected_[unsigned(ev)];
        return true;
    }
    case ChaosEvent::QuarantineStomp: {
        // Start from an empty FIFO: a saturated one evicts on push,
        // leaving the depth unchanged. Morph-candidate blocks bypass
        // the quarantine, so try a few victims.
        heap.hardening().drainQuarantine();
        uint64_t off = 0;
        for (unsigned tries = 0; tries < 8 && off == 0; ++tries) {
            unsigned s = pickSmallSlot(heap, slots);
            if (s == kSlots)
                break;
            uint64_t cand = slots[s];
            if (heap.freeFrom(ctx, &slots[s]) != NvStatus::Ok)
                return fail(round, ev, "priming free rejected");
            sizes_[s] = 0;
            if (heap.hardening().quarantineDepth() > 0)
                off = cand;
        }
        if (off == 0)
            return skip("every victim bypassed the quarantine");
        // The use-after-free write, into the poison fill.
        std::memset(heap.at(off), 0x5a, 8);
        uint64_t before = count(hs.quarantine_uaf);
        heap.hardening().drainQuarantine();
        if (count(hs.quarantine_uaf) != before + 1)
            return fail(round, ev, "quarantine_uaf did not move");
        ++detected_[unsigned(ev)];
        return true;
    }
    case ChaosEvent::HeaderSmash: {
        VSlab *victim = nullptr;
        for (unsigned a = 0; a < heap.numArenas() && !victim; ++a) {
            heap.arena(a).forEachSlab([&](VSlab *sl) {
                if (!victim && !sl->morphing())
                    victim = sl;
            });
        }
        if (!victim)
            return skip("no repairable slab");
        victim->header()->size_class ^= 0x55;
        HeapAuditor auditor(heap);
        AuditReport rep = auditor.audit();
        if (rep.slab_header_bad == 0)
            return fail(round, ev, "smashed header not detected");
        // Containment: repaired from the volatile mirror (the common
        // post-round repair pass re-audits clean below).
        ++detected_[unsigned(ev)];
        return true;
    }
    case ChaosEvent::PoisonLine: {
        dev.poisonLine(dev.size() - kCacheLine);
        HeapAuditor auditor(heap);
        AuditReport rep = auditor.audit();
        if (rep.poisoned_free_lines == 0)
            return fail(round, ev, "poisoned line not detected");
        ++detected_[unsigned(ev)];
        return true;
    }
    case ChaosEvent::KvStomp: {
        // Application-level corruption through the KV service
        // (src/kv/): stomp a live record's payload and a bucket head
        // word, and expect record-granular detection + containment —
        // sibling keys stay readable, the allocator's own metadata
        // stays audit-clean (the stomp lands inside the payload, not
        // on the canary), and an erase-then-read never touches the
        // quarantined block.
        if (heap.config().consistency != Consistency::Log)
            return skip("kv needs the tx layer (LOG variant)");
        KvOptions ko;
        ko.buckets = 64;
        ko.root_index = 2;
        KvStatus why = KvStatus::Ok;
        auto kv = KvStore::open(heap, ko, &why);
        if (!kv) {
            if (why == KvStatus::HeapUnhealthy ||
                why == KvStatus::QuotaExceeded ||
                why == KvStatus::OutOfMemory)
                return skip(kvStatusName(why));
            return fail(round, ev,
                        std::string("kv open failed: ") +
                            kvStatusName(why));
        }
        char keys[3][32];
        std::string vals[3];
        for (unsigned i = 0; i < 3; ++i) {
            std::snprintf(keys[i], sizeof(keys[i]), "kv-%u-%u",
                          round, i);
            vals[i].assign(48 + 16 * i, char('a' + i));
            KvStatus s = kv->put(ctx, keys[i], vals[i]);
            if (s == KvStatus::HeapUnhealthy ||
                s == KvStatus::QuotaExceeded ||
                s == KvStatus::OutOfMemory)
                return skip(kvStatusName(s));
            if (s != KvStatus::Ok)
                return fail(round, ev, "kv put failed");
        }
        // Erase-then-read: the freed record routes through the
        // delayed-reuse quarantine at commit; the read (stripe-locked
        // out of the erase) must miss without dirtying the poison
        // fill, so draining must not report a quarantine UAF.
        uint64_t uaf_before = count(hs.quarantine_uaf);
        std::string out;
        if (kv->erase(ctx, keys[0]) != KvStatus::Ok)
            return fail(round, ev, "kv erase failed");
        if (kv->get(keys[0], &out) != KvStatus::NotFound)
            return fail(round, ev, "erased key still readable");
        heap.hardening().drainQuarantine();
        if (count(hs.quarantine_uaf) != uaf_before)
            return fail(round, ev,
                        "erase-then-read tripped the UAF guard");
        // Payload stomp: 8 bytes inside the live value (canary and
        // header untouched — the *KV* checksum must catch this).
        uint64_t roff = kv->recordOffset(keys[1]);
        if (roff == 0)
            return fail(round, ev, "record offset lookup failed");
        char *payload =
            static_cast<char *>(heap.at(roff + KvStore::kRecordHeader)) +
            std::strlen(keys[1]);
        char saved[8];
        std::memcpy(saved, payload, sizeof(saved));
        std::memset(payload, 0x6b, sizeof(saved));
        uint64_t corrupt_before =
            kv->stats().corrupt_records.load(std::memory_order_relaxed);
        if (kv->get(keys[1], &out) != KvStatus::Corrupt)
            return fail(round, ev, "stomped record not detected");
        if (kv->stats().corrupt_records.load(
                std::memory_order_relaxed) <= corrupt_before)
            return fail(round, ev, "corrupt_records did not move");
        if (kv->get(keys[2], &out) != KvStatus::Ok ||
            out != vals[2])
            return fail(round, ev, "sibling key not contained");
        std::memcpy(payload, saved, sizeof(saved));
        if (kv->get(keys[1], &out) != KvStatus::Ok || out != vals[1])
            return fail(round, ev, "restored record unreadable");
        // Bucket stomp: smash the chain head with a wild, misaligned
        // offset; the walk must classify it instead of wandering.
        uint64_t *bw = static_cast<uint64_t *>(
            heap.at(kv->bucketWordOffset(keys[2])));
        uint64_t head = *bw;
        *bw = dev.size() - 13;
        if (kv->get(keys[2], &out) != KvStatus::Corrupt)
            return fail(round, ev, "wild bucket head not detected");
        *bw = head;
        if (kv->get(keys[2], &out) != KvStatus::Ok)
            return fail(round, ev, "restored bucket unreadable");
        // Tidy so rounds stay independent (the store persists across
        // the harness's reopen cycle at rootWord(2)).
        for (unsigned i = 1; i < 3; ++i)
            if (kv->erase(ctx, keys[i]) != KvStatus::Ok)
                return fail(round, ev, "cleanup erase failed");
        heap.hardening().drainQuarantine();
        ++detected_[unsigned(ev)];
        return true;
    }
    case ChaosEvent::Crash:
    case ChaosEvent::TornTx:
    case ChaosEvent::kCount:
        break; // handled by the round loop
    }
    return true;
}

inline bool
ChaosHarness::run()
{
    PmDeviceConfig dcfg;
    dcfg.size = opt_.device_mb << 20;
    dcfg.shadow = true;
    PmDevice dev(dcfg);

    // The cross-heap donor: a second live heap on its own device. Its
    // blocks' offsets are valid device offsets of the primary heap too
    // (the devices are the same address space model), which is exactly
    // the bug shape: a pointer from heap A freed into heap B. Padding
    // pushes the donor's candidate blocks to high offsets the primary
    // heap never maps, so the free classifies as wild there and the
    // registry can attribute it to the donor.
    PmDeviceConfig donor_cfg;
    donor_cfg.size = opt_.device_mb << 20;
    PmDevice donor_dev(donor_cfg);
    NvAllocConfig donor_heap_cfg;
    auto donor_h = NvAlloc::openOrDie(donor_dev, donor_heap_cfg);
    NvAlloc &donor = *donor_h;
    ThreadCtx *donor_ctx = donor.attachThread();
    if (!donor_ctx) {
        error_ = "donor heap attach failed";
        return false;
    }
    size_t pad = (opt_.device_mb / 8) << 20;
    for (unsigned i = 0; i < 2; ++i)
        donor.allocOffset(*donor_ctx, pad, nullptr);
    std::vector<uint64_t> donor_offs;
    for (unsigned i = 0; i < 48; ++i) {
        uint64_t off = donor.allocOffset(
            *donor_ctx, i % 5 == 0 ? 32 * 1024 : 128, nullptr);
        if (off)
            donor_offs.push_back(off);
    }

    sizes_.assign(kSlots, 0);
    uint64_t table_off = 0;

    for (unsigned round = 0; round < opt_.rounds; ++round) {
        ChaosEvent ev = ChaosEvent(round % kEventCount);
        if (opt_.verbose)
            std::fprintf(stderr, "chaos: round %u event %s\n", round,
                         chaosEventName(ev));

        // Fresh fault policy per round (reseeded): unfenced flushes
        // may tear or drop when this round crashes.
        FaultPolicy fp;
        fp.seed = opt_.seed * 1000003ULL + round + 1;
        fp.staged_persist_fraction = 0.7;
        fp.word_granularity = true;
        dev.enableFaultInjection(fp);

        auto heap_h = NvAlloc::openOrDie(dev, config());
        NvAlloc &heap = *heap_h;
        if (heap.openStatus() != NvStatus::Ok)
            return fail(round, ev, "heap failed to open");
        ThreadCtx *ctx = heap.attachThread();
        if (!ctx)
            return fail(round, ev, "attach failed");

        uint64_t *slots;
        if (round == 0) {
            heap.mallocTo(*ctx, kSlots * 8, heap.rootWord(0));
            table_off = *heap.rootWord(0);
            if (!table_off)
                return fail(round, ev, "slot table alloc failed");
            slots = static_cast<uint64_t *>(heap.at(table_off));
            std::memset(slots, 0, kSlots * 8);
            dev.persistFence(slots, kSlots * 8, TimeKind::FlushData);
        } else {
            if (*heap.rootWord(0) != table_off)
                return fail(round, ev, "slot table root lost");
            slots = static_cast<uint64_t *>(heap.at(table_off));
            // Recovery convergence: every persistently published block
            // must have survived; sizes are volatile and rebuilt lazily
            // (a slot whose size is unknown is still freeable).
            for (unsigned s = 0; s < kSlots; ++s) {
                if (slots[s] != 0 && !offsetLive(heap, slots[s]))
                    return fail(round, ev,
                                "published block lost at slot " +
                                    std::to_string(s));
                if (slots[s] == 0)
                    sizes_[s] = 0;
            }
        }

        // Post-open audit: whatever the previous round did (including
        // a mid-operation crash), recovery converged to a clean heap.
        {
            HeapAuditor auditor(heap);
            AuditReport rep = auditor.audit();
            if (rep.violations() != 0)
                return fail(round, ev,
                            "post-open audit:\n" + rep.summary());
        }
        if (pending_crash_) {
            ++detected_[unsigned(ChaosEvent::Crash)];
            pending_crash_ = false;
        }
        if (pending_tx_crash_) {
            // The previous round crashed inside a transaction; this
            // open's recovery must have resolved the group one way or
            // the other (the slot checks above verified whichever way
            // all-or-nothing).
            uint64_t committed = 0, rolled_back = 0;
            heap.ctlRead("stats.tx.recovered_committed", &committed);
            heap.ctlRead("stats.tx.recovered_rolled_back", &rolled_back);
            if (committed + rolled_back == 0)
                return fail(round, ChaosEvent::TornTx,
                            "crashed transaction not resolved");
            ++detected_[unsigned(ChaosEvent::TornTx)];
            pending_tx_crash_ = false;
        }

        ++injected_[unsigned(ev)];
        if (ev == ChaosEvent::Crash) {
            unsigned nth = 1 + unsigned(rng_.nextBounded(150));
            dev.armCrashAtFlush(nth);
            churn(heap, *ctx, slots, opt_.ops_per_round, dev,
                  /*crash_mode=*/true);
            heap.simulateCrash();
            pending_crash_ = true; // verified at the next open
            ++rounds_run_;
            continue;
        }

        if (ev == ChaosEvent::TornTx &&
            heap.config().consistency == Consistency::Log) {
            // Stage a multi-op transaction — an alloc into a free
            // slot, a free of a live one with its pointer clear, and a
            // scratch word update — and crash at a random flush inside
            // it (ops, commit record, or the apply phase).
            churn(heap, *ctx, slots, opt_.ops_per_round / 2, dev,
                  /*crash_mode=*/false);
            unsigned fs = kSlots;
            for (unsigned s = 0; s < kSlots && fs == kSlots; ++s)
                if (slots[s] == 0)
                    fs = s;
            unsigned ls = pickSmallSlot(heap, slots);
            unsigned tx_flushes =
                1 + (fs != kSlots ? 1 : 0) + (ls != kSlots ? 2 : 0);
            // nth >= 2: the transaction's very first flush is its first
            // journal append, and cutting it leaves no durable trace of
            // the transaction at all — recovery then (correctly) has
            // nothing to resolve, which the resolved-counter check
            // below cannot tell apart from a lost transaction. The
            // nothing-persisted shape is the plain crash class's
            // territory; this class always tears a *journaled* tx.
            unsigned nth = 2 + unsigned(rng_.nextBounded(tx_flushes + 3));
            dev.armCrashAtFlush(nth);
            heap.txBegin(*ctx);
            if (fs != kSlots && heap.txAlloc(*ctx, 96, &slots[fs]) != 0)
                sizes_[fs] = 96;
            if (ls != kSlots &&
                heap.txFree(*ctx, slots[ls]) == NvStatus::Ok) {
                heap.txWrite(*ctx, &slots[ls], 0);
                sizes_[ls] = 0;
            }
            heap.txWrite(*ctx, heap.rootWord(1), round + 1);
            heap.txCommit(*ctx);
            if (dev.crashTriggered()) {
                pending_tx_crash_ = true;
            } else {
                ++skipped_[unsigned(ev)];
            }
            heap.simulateCrash();
            ++rounds_run_;
            continue;
        }
        if (ev == ChaosEvent::TornTx) {
            // Transactions are LOG-only (txBegin itself refuses on the
            // other variants): the class degrades to a documented skip
            // and the round runs as plain churn.
            ++skipped_[unsigned(ev)];
        }

        churn(heap, *ctx, slots, opt_.ops_per_round, dev,
              /*crash_mode=*/false);
        if (!inject(ev, heap, *ctx, dev, slots, round, donor_offs))
            return false;

        // Containment: repair what is repairable (smashed header,
        // poisoned free line), then the heap must audit clean again.
        {
            HeapAuditor auditor(heap);
            auditor.repair();
            AuditReport rep = auditor.audit();
            if (rep.violations() != 0)
                return fail(round, ev,
                            "post-round audit:\n" + rep.summary());
        }
        heap.detachThread(ctx);
        ++rounds_run_;
    }

    // Final life: everything still frees cleanly, and the emptied heap
    // audits clean — the soak converged.
    {
        auto heap_h = NvAlloc::openOrDie(dev, config());
        NvAlloc &heap = *heap_h;
        if (heap.openStatus() != NvStatus::Ok) {
            error_ = "final open failed";
            return false;
        }
        ThreadCtx *ctx = heap.attachThread();
        if (!ctx) {
            error_ = "final attach failed";
            return false;
        }
        if (pending_crash_) {
            // The last round crashed; recovery converged iff this open
            // audits clean (the free sweep below re-checks every slot).
            HeapAuditor auditor(heap);
            AuditReport rep = auditor.audit();
            if (rep.violations() != 0) {
                error_ = "post-crash final audit:\n" + rep.summary();
                return false;
            }
            ++detected_[unsigned(ChaosEvent::Crash)];
            pending_crash_ = false;
        }
        if (pending_tx_crash_) {
            uint64_t committed = 0, rolled_back = 0;
            heap.ctlRead("stats.tx.recovered_committed", &committed);
            heap.ctlRead("stats.tx.recovered_rolled_back", &rolled_back);
            if (committed + rolled_back == 0) {
                error_ = "final open: crashed transaction not resolved";
                return false;
            }
            HeapAuditor auditor(heap);
            AuditReport rep = auditor.audit();
            if (rep.violations() != 0) {
                error_ = "post-tx-crash final audit:\n" + rep.summary();
                return false;
            }
            ++detected_[unsigned(ChaosEvent::TornTx)];
            pending_tx_crash_ = false;
        }
        auto *slots = static_cast<uint64_t *>(heap.at(table_off));
        for (unsigned s = 0; s < kSlots; ++s) {
            if (slots[s] != 0 &&
                heap.freeFrom(*ctx, &slots[s]) != NvStatus::Ok) {
                error_ = "final free of slot " + std::to_string(s) +
                         " rejected";
                return false;
            }
        }
        heap.hardening().drainQuarantine();
        HeapAuditor auditor(heap);
        AuditReport rep = auditor.audit();
        if (rep.violations() != 0) {
            error_ = "final audit:\n" + rep.summary();
            return false;
        }
        heap.detachThread(ctx);
    }

    donor.detachThread(donor_ctx);
    return true;
}

} // namespace nvalloc

#endif // NVALLOC_TOOLS_CHAOS_HARNESS_H
