#include "pm/vclock.h"

#include <cstring>

namespace nvalloc {

namespace {

struct ThreadClock
{
    uint64_t now = 0;
    std::array<uint64_t, kNumTimeKinds> kinds{};
};

thread_local ThreadClock tl_clock;

} // namespace

uint64_t
VClock::now()
{
    return tl_clock.now;
}

void
VClock::advance(uint64_t ns, TimeKind kind)
{
    tl_clock.now += ns;
    tl_clock.kinds[static_cast<unsigned>(kind)] += ns;
}

void
VClock::advanceTo(uint64_t t, TimeKind kind)
{
    if (t > tl_clock.now) {
        tl_clock.kinds[static_cast<unsigned>(kind)] += t - tl_clock.now;
        tl_clock.now = t;
    }
}

void
VClock::reset()
{
    tl_clock = ThreadClock{};
}

void
VClock::setNow(uint64_t t)
{
    tl_clock.now = t;
}

uint64_t
VClock::kindTotal(TimeKind kind)
{
    return tl_clock.kinds[static_cast<unsigned>(kind)];
}

std::array<uint64_t, kNumTimeKinds>
VClock::snapshot()
{
    return tl_clock.kinds;
}

VServer::VServer(unsigned units, uint64_t window_ns)
    : window_ns_(window_ns), capacity_(uint64_t(units) * window_ns)
{
}

uint64_t &
VServer::slotBusy(uint64_t window)
{
    unsigned slot = unsigned(window % kWindows);
    if (tag_[slot] != window) {
        // Stale slot from a window far in the past: recycle.
        tag_[slot] = window;
        busy_[slot] = 0;
    }
    return busy_[slot];
}

uint64_t
VServer::reserve(uint64_t arrival, uint64_t hold_ns)
{
    if (hold_ns == 0)
        return arrival;
    std::lock_guard<std::mutex> g(mutex_);

    if (!touched_) {
        busy_ = std::make_unique<uint64_t[]>(kWindows);
        tag_ = std::make_unique<uint64_t[]>(kWindows);
        std::memset(busy_.get(), 0, kWindows * sizeof(uint64_t));
        // Tag 0 is valid for window 0; mark others stale.
        for (unsigned i = 0; i < kWindows; ++i)
            tag_[i] = i; // identity: window i maps to slot i initially
        touched_ = true;
    }

    // First window at/after the arrival with spare capacity.
    uint64_t w = arrival / window_ns_;
    while (slotBusy(w) >= capacity_)
        ++w;

    // The start time reflects how much of this window is already
    // booked (holds are packed from the window start; sub-window
    // ordering is below the model's resolution).
    uint64_t within = slotBusy(w);
    uint64_t start = w * window_ns_ + within / (capacity_ / window_ns_);
    if (start < arrival)
        start = arrival;

    // Book the hold, spilling into subsequent windows.
    uint64_t remaining = hold_ns;
    uint64_t v = w;
    while (remaining > 0) {
        uint64_t &busy = slotBusy(v);
        uint64_t space = capacity_ - busy;
        uint64_t use = remaining < space ? remaining : space;
        busy += use;
        remaining -= use;
        if (remaining)
            ++v;
    }
    return start;
}

void
VServer::reset()
{
    std::lock_guard<std::mutex> g(mutex_);
    touched_ = false;
    busy_.reset();
    tag_.reset();
}

} // namespace nvalloc
