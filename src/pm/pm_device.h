/**
 * @file
 * Emulated persistent memory device.
 *
 * Stands in for an Intel Optane DIMM exposed through an Ext4-DAX heap
 * file. The device is one large virtual region; allocators carve
 * "mapped regions" out of it (the analogue of mmap-ing segments of the
 * heap file), write to it with ordinary stores, and make stores
 * durable with persist()/fence(), which are routed through the
 * LatencyModel for cost accounting.
 *
 * Crash simulation: with the shadow enabled, the device keeps a second
 * image that only receives data on persist(). crash() replaces the
 * working image with the shadow, which discards every store that was
 * never explicitly flushed — exactly the state a power cut leaves in
 * ADR hardware (CPU caches lost, DIMM contents kept). Recovery code is
 * tested against these torn states.
 *
 * Fault injection: enableFaultInjection() installs a FaultInjector and
 * switches the shadow to epoch semantics — flushes stage lines, fences
 * commit them. Crashes (explicit or scheduled at the Nth flush/fence)
 * then apply the injector's policy to the final epoch: torn lines,
 * 8-byte word atomicity, dropped flushes, early evictions. The device
 * also carries a media-poison set: poisoned lines read back as a
 * sentinel until rewritten, and isPoisoned() lets recovery react
 * instead of interpreting garbage.
 *
 * The device outlives allocator instances: destroying an allocator and
 * re-attaching a new one to the same device emulates a process restart
 * over the same heap file.
 */

#ifndef NVALLOC_PM_PM_DEVICE_H
#define NVALLOC_PM_PM_DEVICE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "pm/fault_injector.h"
#include "pm/latency_model.h"

namespace nvalloc {

struct PmDeviceConfig
{
    size_t size = size_t{8} << 30;  //!< virtual size (NORESERVE)
    bool shadow = false;            //!< enable crash simulation
    LatencyParams latency{};
};

class PmDevice
{
  public:
    /** Space reserved at offset 0 for an allocator's superblock. */
    static constexpr size_t kRootSize = 4096;
    /** Region grain; every mapRegion result is aligned to this. */
    static constexpr size_t kRegionAlign = 64 * 1024;

    explicit PmDevice(PmDeviceConfig cfg = {});
    ~PmDevice();

    PmDevice(const PmDevice &) = delete;
    PmDevice &operator=(const PmDevice &) = delete;

    char *base() const { return base_; }
    size_t size() const { return cfg_.size; }

    uint64_t
    offsetOf(const void *p) const
    {
        return static_cast<uint64_t>(
            static_cast<const char *>(p) - base_);
    }

    void *
    at(uint64_t offset) const
    {
        return base_ + offset;
    }

    /** True if p points into this device's region. */
    bool
    contains(const void *p) const
    {
        auto *c = static_cast<const char *>(p);
        return c >= base_ && c < base_ + cfg_.size;
    }

    /** First kRootSize bytes; allocators anchor their persistent
     *  superblock here so recovery can find it. */
    void *root() const { return base_; }

    /**
     * Carve a zeroed region of `bytes` (rounded up to kRegionAlign)
     * out of the device — the analogue of extending/mmap-ing the heap
     * file. Returns the region's offset.
     */
    uint64_t mapRegion(size_t bytes);

    /**
     * Like mapRegion, but returns 0 instead of dying when the device
     * has no room left. Offset 0 is the root area and is never handed
     * out as a region, so it is unambiguous as a failure sentinel.
     * Allocators use this on their exhaustion paths so a full device
     * degrades to a failed allocation instead of killing the process.
     */
    uint64_t tryMapRegion(size_t bytes);

    /**
     * Return a region to the device (analogue of munmap +
     * fallocate(PUNCH_HOLE)): the physical pages are released and the
     * range becomes reusable by later mapRegion calls. Contents are
     * zero if re-mapped.
     */
    void unmapRegion(uint64_t offset, size_t bytes);

    /**
     * Release the physical pages of a still-mapped range (analogue of
     * madvise(MADV_DONTNEED) on a DAX mapping): the offsets stay valid
     * but contents are lost and the bytes stop counting as consumed.
     * Models the "retained" extent state of the decay mechanism.
     */
    void decommit(uint64_t offset, size_t bytes);

    /** Re-acquire physical pages for a decommitted range (zeroed). */
    void recommit(uint64_t offset, size_t bytes);

    /** Bytes currently mapped (virtual reservation). */
    size_t mappedBytes() const { return mapped_bytes_; }

    /** Bytes currently consuming physical persistent memory; this is
     *  what the paper's space-consumption figures measure. */
    size_t committedBytes() const { return committed_bytes_; }
    size_t peakCommittedBytes() const { return peak_committed_; }
    void resetPeak() { peak_committed_ = committed_bytes_; }

    /** Flush every cache line overlapping [addr, addr+len). */
    void persist(const void *addr, size_t len, TimeKind kind);

    /** Flush a single line containing `addr`. */
    void flushLine(const void *addr, TimeKind kind);

    void fence();

    /**
     * Charge the latency of a PM read that misses the CPU cache (e.g.
     * chasing an embedded free-list pointer, as Makalu/Ralloc do).
     * Reads are not tracked per line — callers invoke this exactly
     * where their access pattern defeats the cache.
     */
    void
    chargeRead(bool sequential)
    {
        VClock::advance(sequential ? 100 : 300, TimeKind::PmRead);
    }

    /** persist + fence in one call. */
    void
    persistFence(const void *addr, size_t len, TimeKind kind)
    {
        persist(addr, len, kind);
        fence();
    }

    bool shadowEnabled() const { return shadow_ != nullptr; }

    /**
     * Simulate a power failure: discard all stores that were never
     * persisted. Region bookkeeping is untouched (the heap file keeps
     * its length); only byte contents roll back. Requires shadow mode.
     * With a fault injector installed, the final unfenced epoch is
     * resolved by the injector's policy instead of being kept.
     */
    void crash();

    // ---- fault injection --------------------------------------------

    /**
     * Install (or replace) a fault injector with `policy`; requires
     * shadow mode. From this call on, flushes only stage lines and
     * fences commit them — the idealized flush-is-durable shortcut is
     * off. Returns the injector for arming crash points.
     */
    FaultInjector &enableFaultInjection(FaultPolicy policy = {});

    FaultInjector *faultInjector() { return fi_.get(); }

    /** Schedule a crash at the Nth flush from now (requires an
     *  injector). Sweeps at flush granularity arm this per point. */
    void
    armCrashAtFlush(uint64_t nth)
    {
        faults().armCrashAtFlush(nth);
    }

    /** Schedule a crash at the Nth fence from now. */
    void
    armCrashAtFence(uint64_t nth)
    {
        faults().armCrashAtFence(nth);
    }

    /** True once a scheduled crash point has been reached: every later
     *  store is doomed, so workloads can stop early. */
    bool
    crashTriggered() const
    {
        return fi_ && fi_->triggered();
    }

    // ---- media poison -----------------------------------------------

    /**
     * Poison the media line containing device offset `off`: the line
     * reads back as kPoisonByte until rewritten (a persisted write to
     * a poisoned line heals it, as on real DIMMs). Works with or
     * without an injector policy.
     */
    void poisonLine(uint64_t off);

    /** Clear poison without rewriting (administrative repair). */
    void clearPoison(uint64_t off);

    /** True if any byte of [addr, addr+len) lies in a poisoned line. */
    bool isPoisoned(const void *addr, size_t len = 1) const;

    size_t
    poisonedLineCount() const
    {
        return fi_ ? fi_->poisonedLines() : 0;
    }

    /** Sorted device offsets of every poisoned media line. Lets an
     *  auditor classify each poisoned line (free vs live data) instead
     *  of probing the whole device with isPoisoned(). */
    std::vector<uint64_t> poisonedLineOffsets() const;

    LatencyModel &model() { return model_; }
    const LatencyModel &model() const { return model_; }

    /** Statistics shortcut. */
    FlushClassCounts flushCounts() const { return model_.counts(); }

  private:
    PmDeviceConfig cfg_;
    char *base_ = nullptr;
    char *shadow_ = nullptr;
    LatencyModel model_;

    std::mutex region_mutex_;
    uint64_t bump_ = kRegionAlign;     // offset 0 holds the root area
    uint64_t high_water_ = kRegionAlign;
    std::map<uint64_t, size_t> free_regions_; // offset -> size
    size_t mapped_bytes_ = 0;
    size_t committed_bytes_ = 0;
    size_t peak_committed_ = 0;

    // Fault injection (null = idealized flush-is-durable shadow).
    std::unique_ptr<FaultInjector> fi_;
    std::mutex stage_mutex_;
    std::unordered_set<uint64_t> staged_; //!< flushed, unfenced lines

    void addCommitted(size_t bytes);
    FaultInjector &faults();
    void stageLine(uint64_t line);
    void commitLine(uint64_t line);
    void freezeAtCrashPoint();
    void dropFaultState(uint64_t offset, size_t bytes);
};

} // namespace nvalloc

#endif // NVALLOC_PM_PM_DEVICE_H
