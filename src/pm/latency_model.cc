#include "pm/latency_model.h"

#include <cstring>

#include "common/size_classes.h"

namespace nvalloc {

namespace {

constexpr unsigned kMruCap = 8;      // recent distinct lines tracked
constexpr uint64_t kXpLine = 256;    // Optane internal write granule

} // namespace

/**
 * Per-thread flush history. Stored thread-locally and keyed by (model,
 * generation) so that reset() on one model cannot leak stale recency
 * state into the next benchmark phase, and several devices can be live
 * at once.
 */
struct LatencyModel::ThreadState
{
    const LatencyModel *owner = nullptr;
    uint64_t generation = 0;

    // MRU list of recently flushed 64 B lines, deduplicated.
    uint64_t mru[kMruCap] = {};
    unsigned mru_len = 0;

    // LRU set of buffered 256 B XPLines.
    std::vector<uint64_t> xplines;

    uint64_t last_line = ~uint64_t{0};
    uint64_t last_miss_xpline = ~uint64_t{0};

    // Sink attribution row (FlushSink::flushCells), re-resolved
    // whenever the model's sink epoch moves past sink_epoch. epoch 0
    // never matches the model's (it starts at 1), so a fresh slot
    // resolves on its first flush.
    std::atomic<uint64_t> *sink_cells = nullptr;
    uint64_t sink_epoch = 0;

    /** Reflush distance of `line`, or kMruCap if the line was not
     *  flushed recently (a fresh line is never a reflush, no matter
     *  how short the history is). Also moves/inserts the line to the
     *  MRU front. */
    unsigned
    touchLine(uint64_t line)
    {
        unsigned found = mru_len;
        for (unsigned i = 0; i < mru_len; ++i) {
            if (mru[i] == line) {
                found = i;
                break;
            }
        }
        bool fresh = found == mru_len;
        unsigned shift_end =
            fresh ? (mru_len < kMruCap ? mru_len : kMruCap - 1) : found;
        for (unsigned i = shift_end; i > 0; --i)
            mru[i] = mru[i - 1];
        mru[0] = line;
        if (fresh && mru_len < kMruCap)
            ++mru_len;
        return fresh ? kMruCap : found;
    }

    /** True if the XPLine was buffered; refreshes LRU either way. */
    bool
    touchXpLine(uint64_t xpline, unsigned capacity)
    {
        for (size_t i = 0; i < xplines.size(); ++i) {
            if (xplines[i] == xpline) {
                xplines.erase(xplines.begin() + i);
                xplines.push_back(xpline);
                return true;
            }
        }
        xplines.push_back(xpline);
        if (xplines.size() > capacity)
            xplines.erase(xplines.begin());
        return false;
    }
};

namespace {

// One slot per live model this thread has touched.
thread_local std::vector<LatencyModel::ThreadState> tl_states;

// Generations are drawn from a process-wide counter, never reused.
// Slots in tl_states are matched by (owner pointer, generation); if a
// destroyed model's address is recycled for a new one, a per-model
// counter would restart at the same value and the stale thread history
// would wrongly match, leaking flush recency across devices.
std::atomic<uint64_t> g_generation{1};

} // namespace

LatencyModel::LatencyModel(LatencyParams params)
    : params_(params), media_(params.media_slots)
{
    generation_.store(g_generation.fetch_add(1, std::memory_order_relaxed),
                      std::memory_order_relaxed);
}

// (media_ is a VServer with params.media_slots parallel units.)

LatencyModel::ThreadState &
LatencyModel::threadState()
{
    uint64_t gen = generation_.load(std::memory_order_relaxed);
    for (auto &ts : tl_states) {
        if (ts.owner == this) {
            if (ts.generation != gen) {
                ts = ThreadState{};
                ts.owner = this;
                ts.generation = gen;
            }
            return ts;
        }
    }
    tl_states.emplace_back();
    auto &ts = tl_states.back();
    ts.owner = this;
    ts.generation = gen;
    return ts;
}

void
LatencyModel::noteClass(FlushClass cls, ThreadState &ts)
{
    n_class_[static_cast<unsigned>(cls)].fetch_add(
        1, std::memory_order_relaxed);
    // Sink attribution: resolve the cell row lazily (once per thread
    // per epoch), then bump it with a relaxed load+store — the row is
    // owned by this thread, so no read-modify-write is needed. The
    // epoch is checked before every use, so a row handed out by a
    // since-replaced sink can never be written.
    uint64_t ep = sink_epoch_.load(std::memory_order_relaxed);
    if (ts.sink_epoch != ep) {
        FlushSink *s = sink_.load(std::memory_order_acquire);
        ts.sink_cells = s ? s->flushCells() : nullptr;
        ts.sink_epoch = ep;
    }
    if (std::atomic<uint64_t> *row = ts.sink_cells) {
        auto &cell = row[static_cast<unsigned>(cls)];
        cell.store(cell.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
    }
}

void
LatencyModel::chargeMedia(uint64_t line, ThreadState &ts, TimeKind kind)
{
    uint64_t xpline = line & ~(kXpLine - 1);
    bool sequential = (xpline == ts.last_miss_xpline ||
                       xpline == ts.last_miss_xpline + kXpLine);
    ts.last_miss_xpline = xpline;

    uint64_t cost = sequential ? params_.media_seq : params_.media_random;
    noteClass(sequential ? FlushClass::Sequential : FlushClass::Random,
              ts);

    // Media writes share the drain bandwidth; queueing delay appears
    // as the booked start moving past the thread's current clock.
    uint64_t start = media_.reserve(VClock::now(), cost);
    VClock::advanceTo(start + cost, kind);
}

void
LatencyModel::onFlush(uint64_t line, TimeKind kind)
{
    n_total_.fetch_add(1, std::memory_order_relaxed);

    if (tracing_) {
        std::lock_guard<std::mutex> g(trace_mutex_);
        if (trace_.size() < trace_cap_)
            trace_.push_back(line);
    }

    ThreadState &ts = threadState();

    if (eadr_) {
        // No flush stall; repeated dirtying of the same line is free
        // (write combining), but distinct lines still drain to media.
        unsigned distance = ts.touchLine(line);
        if (distance < params_.reflush_window) {
            noteClass(FlushClass::Reflush, ts);
            return;
        }
        uint64_t xpline = line & ~(kXpLine - 1);
        if (ts.touchXpLine(xpline, params_.xpbuf_lines)) {
            noteClass(FlushClass::XpLineHit, ts);
            VClock::advance(params_.eadr_hit, kind);
        } else {
            bool sequential = (xpline == ts.last_miss_xpline ||
                               xpline == ts.last_miss_xpline + kXpLine);
            ts.last_miss_xpline = xpline;
            uint64_t cost =
                sequential ? params_.eadr_seq : params_.eadr_random;
            noteClass(sequential ? FlushClass::Sequential
                                 : FlushClass::Random,
                      ts);
            VClock::advance(cost, kind);
        }
        return;
    }

    VClock::advance(params_.issue, kind);

    unsigned distance = ts.touchLine(line);
    if (distance < params_.reflush_window) {
        // Reflush: the line is still being written back; cost shrinks
        // as the distance grows (paper: 800 ns at 0 down to 500 at 3).
        noteClass(FlushClass::Reflush, ts);
        uint64_t cost = params_.reflush_base -
                        params_.reflush_step * distance;
        VClock::advance(cost, kind);
        ts.last_line = line;
        return;
    }

    uint64_t xpline = line & ~(kXpLine - 1);
    if (ts.touchXpLine(xpline, params_.xpbuf_lines)) {
        noteClass(FlushClass::XpLineHit, ts);
        VClock::advance(params_.xpline_hit, kind);
    } else {
        chargeMedia(line, ts, kind);
    }
    ts.last_line = line;
}

void
LatencyModel::onFence()
{
    n_fence_.fetch_add(1, std::memory_order_relaxed);
    if (!eadr_)
        VClock::advance(params_.fence, TimeKind::Fence);
}

void
LatencyModel::setEadr(bool on)
{
    eadr_ = on;
    reset();
}

void
LatencyModel::reset()
{
    generation_.store(g_generation.fetch_add(1, std::memory_order_relaxed),
                      std::memory_order_relaxed);
    n_total_.store(0);
    for (auto &c : n_class_)
        c.store(0);
    n_fence_.store(0);
    media_.reset();
}

FlushClassCounts
LatencyModel::counts() const
{
    FlushClassCounts c;
    c.total = n_total_.load();
    c.reflush = n_class_[unsigned(FlushClass::Reflush)].load();
    c.sequential = n_class_[unsigned(FlushClass::Sequential)].load();
    c.random = n_class_[unsigned(FlushClass::Random)].load();
    c.xpline_hit = n_class_[unsigned(FlushClass::XpLineHit)].load();
    c.fences = n_fence_.load();
    return c;
}

void
LatencyModel::startTrace(size_t max_entries)
{
    std::lock_guard<std::mutex> g(trace_mutex_);
    trace_.clear();
    trace_cap_ = max_entries;
    tracing_ = true;
}

std::vector<uint64_t>
LatencyModel::stopTrace()
{
    // Idempotent: a stop with no trace running (never started, or
    // already stopped) leaves an empty buffer behind and returns an
    // empty vector, so unbalanced start/stop pairs cannot hand out a
    // stale trace or touch a moved-from vector.
    std::vector<uint64_t> out;
    std::lock_guard<std::mutex> g(trace_mutex_);
    tracing_ = false;
    trace_cap_ = 0;
    out.swap(trace_);
    return out;
}

bool
LatencyModel::tracing() const
{
    std::lock_guard<std::mutex> g(trace_mutex_);
    return tracing_;
}

} // namespace nvalloc
