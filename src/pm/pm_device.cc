#include "pm/pm_device.h"

#include <sys/mman.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>

#include "common/logging.h"
#include "common/size_classes.h"

namespace nvalloc {

namespace {

char *
mapAnonymous(size_t bytes)
{
    void *p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (p == MAP_FAILED) {
        throw std::system_error(
            errno, std::generic_category(),
            "PmDevice: mmap of emulated PM region failed");
    }
    return static_cast<char *>(p);
}

uint64_t
alignUp(uint64_t v, uint64_t a)
{
    return (v + a - 1) & ~(a - 1);
}

} // namespace

PmDevice::PmDevice(PmDeviceConfig cfg)
    : cfg_(cfg), model_(cfg.latency)
{
    cfg_.size = alignUp(cfg_.size, kRegionAlign);
    base_ = mapAnonymous(cfg_.size);
    if (cfg_.shadow)
        shadow_ = mapAnonymous(cfg_.size);
}

PmDevice::~PmDevice()
{
    ::munmap(base_, cfg_.size);
    if (shadow_)
        ::munmap(shadow_, cfg_.size);
}

uint64_t
PmDevice::mapRegion(size_t bytes)
{
    uint64_t off = tryMapRegion(bytes);
    if (off == 0)
        NV_FATAL("emulated PM device exhausted");
    return off;
}

uint64_t
PmDevice::tryMapRegion(size_t bytes)
{
    bytes = alignUp(bytes, kRegionAlign);
    std::lock_guard<std::mutex> g(region_mutex_);

    // First fit from the recycled regions, splitting oversized holes.
    for (auto it = free_regions_.begin(); it != free_regions_.end(); ++it) {
        if (it->second >= bytes) {
            uint64_t off = it->first;
            size_t rest = it->second - bytes;
            free_regions_.erase(it);
            if (rest)
                free_regions_.emplace(off + bytes, rest);
            mapped_bytes_ += bytes;
            addCommitted(bytes);
            return off;
        }
    }

    uint64_t off = bump_;
    if (off + bytes > cfg_.size)
        return 0;
    bump_ += bytes;
    high_water_ = bump_;
    mapped_bytes_ += bytes;
    addCommitted(bytes);
    return off;
}

void
PmDevice::unmapRegion(uint64_t offset, size_t bytes)
{
    bytes = alignUp(bytes, kRegionAlign);
    NV_ASSERT(offset % kRegionAlign == 0 && offset + bytes <= cfg_.size);

    // Release physical pages; contents must read back as zero if the
    // range is recycled, matching a fresh mmap of a punched hole.
    ::madvise(base_ + offset, bytes, MADV_DONTNEED);
    if (shadow_)
        ::madvise(shadow_ + offset, bytes, MADV_DONTNEED);
    dropFaultState(offset, bytes);

    std::lock_guard<std::mutex> g(region_mutex_);
    mapped_bytes_ -= bytes;
    committed_bytes_ -= bytes;

    // Coalesce with neighbours to keep the hole list small.
    auto [it, inserted] = free_regions_.emplace(offset, bytes);
    NV_ASSERT(inserted);
    if (it != free_regions_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            free_regions_.erase(it);
            it = prev;
        }
    }
    auto next = std::next(it);
    if (next != free_regions_.end() &&
        it->first + it->second == next->first) {
        it->second += next->second;
        free_regions_.erase(next);
    }
}

void
PmDevice::persist(const void *addr, size_t len, TimeKind kind)
{
    if (len == 0)
        return;
    uint64_t first = offsetOf(addr) & ~uint64_t{kCacheLine - 1};
    uint64_t last = (offsetOf(addr) + len - 1) & ~uint64_t{kCacheLine - 1};
    for (uint64_t line = first; line <= last; line += kCacheLine) {
        model_.onFlush(line, kind);
        if (!shadow_)
            continue;
        if (fi_)
            stageLine(line);
        else
            std::memcpy(shadow_ + line, base_ + line, kCacheLine);
    }
}

void
PmDevice::flushLine(const void *addr, TimeKind kind)
{
    uint64_t line = offsetOf(addr) & ~uint64_t{kCacheLine - 1};
    model_.onFlush(line, kind);
    if (!shadow_) {
        // No crash simulation: flushes are durable immediately, so a
        // persisted write heals media poison right here.
        if (fi_) {
            std::lock_guard<std::mutex> g(stage_mutex_);
            fi_->clearPoison(line);
        }
        return;
    }
    if (fi_)
        stageLine(line);
    else
        std::memcpy(shadow_ + line, base_ + line, kCacheLine);
}

void
PmDevice::fence()
{
    model_.onFence();
    if (!fi_ || !shadow_)
        return;
    std::lock_guard<std::mutex> g(stage_mutex_);
    if (fi_->triggered())
        return; // post-crash-point fence: nothing can commit
    if (fi_->noteFence()) {
        // The scheduled crash point is this fence: its epoch never
        // commits; the policy decides what survives of it.
        freezeAtCrashPoint();
        return;
    }
    for (uint64_t line : staged_)
        commitLine(line);
    staged_.clear();
}

void
PmDevice::stageLine(uint64_t line)
{
    std::lock_guard<std::mutex> g(stage_mutex_);
    if (fi_->triggered())
        return; // post-crash-point flush: lost
    staged_.insert(line);
    if (fi_->noteFlush())
        freezeAtCrashPoint();
}

void
PmDevice::commitLine(uint64_t line)
{
    std::memcpy(shadow_ + line, base_ + line, kCacheLine);
    // A persisted write to a poisoned line heals it.
    if (fi_->isPoisoned(line))
        fi_->clearPoison(line);
}

void
PmDevice::freezeAtCrashPoint()
{
    fi_->applyCrashImage(base_, shadow_, high_water_, staged_);
    staged_.clear();
}

void
PmDevice::addCommitted(size_t bytes)
{
    committed_bytes_ += bytes;
    if (committed_bytes_ > peak_committed_)
        peak_committed_ = committed_bytes_;
}

void
PmDevice::decommit(uint64_t offset, size_t bytes)
{
    ::madvise(base_ + offset, bytes, MADV_DONTNEED);
    if (shadow_)
        ::madvise(shadow_ + offset, bytes, MADV_DONTNEED);
    dropFaultState(offset, bytes);
    std::lock_guard<std::mutex> g(region_mutex_);
    committed_bytes_ -= bytes;
}

void
PmDevice::dropFaultState(uint64_t offset, size_t bytes)
{
    // A released range holds no staged flushes, and remapping fresh
    // pages over a poisoned line clears its poison.
    if (!fi_)
        return;
    std::lock_guard<std::mutex> g(stage_mutex_);
    for (uint64_t line = offset; line < offset + bytes;
         line += kCacheLine) {
        staged_.erase(line);
        fi_->clearPoison(line);
    }
}

void
PmDevice::recommit(uint64_t offset, size_t bytes)
{
    (void)offset; // pages fault back in on first touch, already zeroed
    std::lock_guard<std::mutex> g(region_mutex_);
    addCommitted(bytes);
}

void
PmDevice::crash()
{
    NV_ASSERT(shadow_ != nullptr);
    if (fi_) {
        std::lock_guard<std::mutex> g(stage_mutex_);
        // Resolve the final unfenced epoch by policy unless a
        // scheduled crash point already froze the durable image.
        if (!fi_->triggered())
            freezeAtCrashPoint();
        fi_->resetAfterCrash();
    }
    // Roll the working image back to the last persisted state. Only
    // the range ever handed out can contain data.
    std::memcpy(base_, shadow_, high_water_);
}

FaultInjector &
PmDevice::faults()
{
    if (!fi_)
        fi_ = std::make_unique<FaultInjector>();
    return *fi_;
}

FaultInjector &
PmDevice::enableFaultInjection(FaultPolicy policy)
{
    NV_ASSERT(shadow_ != nullptr);
    faults().setPolicy(policy);
    return *fi_;
}

void
PmDevice::poisonLine(uint64_t off)
{
    uint64_t line = off & ~uint64_t{kCacheLine - 1};
    NV_ASSERT(line < cfg_.size);
    faults().poison(line);
    std::memset(base_ + line, kPoisonByte, kCacheLine);
    if (shadow_)
        std::memset(shadow_ + line, kPoisonByte, kCacheLine);
}

void
PmDevice::clearPoison(uint64_t off)
{
    if (fi_)
        fi_->clearPoison(off & ~uint64_t{kCacheLine - 1});
}

std::vector<uint64_t>
PmDevice::poisonedLineOffsets() const
{
    std::vector<uint64_t> lines;
    if (fi_) {
        const auto &set = fi_->poisonSet();
        lines.assign(set.begin(), set.end());
        std::sort(lines.begin(), lines.end());
    }
    return lines;
}

bool
PmDevice::isPoisoned(const void *addr, size_t len) const
{
    if (!fi_ || fi_->poisonedLines() == 0 || len == 0)
        return false;
    uint64_t first = offsetOf(addr) & ~uint64_t{kCacheLine - 1};
    uint64_t last = (offsetOf(addr) + len - 1) & ~uint64_t{kCacheLine - 1};
    for (uint64_t line = first; line <= last; line += kCacheLine) {
        if (fi_->isPoisoned(line))
            return true;
    }
    return false;
}

} // namespace nvalloc
