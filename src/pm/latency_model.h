/**
 * @file
 * Flush classification and cost model for emulated persistent memory.
 *
 * Reproduces the performance characteristics the paper builds on:
 *
 *  - Cache line *reflush*: flushing a 64 B line whose reflush distance
 *    (number of distinct lines flushed since its last flush) is < 4 is
 *    far more expensive than a regular flush; latency decreases from
 *    800 ns at distance 0 to 500 ns at distance 3 (paper §3.1).
 *  - Sequential vs random small writes: Optane serves sequential
 *    flushes faster than random ones (paper §3.3, [40]).
 *  - XPBuffer: the DIMM's internal write-combining buffer holds a
 *    limited number of 256 B XPLines; flushes that hit a buffered
 *    XPLine are cheap, misses pay a media write and consume shared
 *    media bandwidth, modeled as a small pool of virtual-time slots.
 *    This reproduces the non-monotone bit-stripe sensitivity of
 *    Fig. 16(a).
 *  - eADR: flushes become free (only counted), as in the paper's §6.7
 *    emulation.
 *
 * All costs advance the calling thread's VClock; counters are global
 * and deterministic for a fixed workload trace.
 */

#ifndef NVALLOC_PM_LATENCY_MODEL_H
#define NVALLOC_PM_LATENCY_MODEL_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "pm/vclock.h"

namespace nvalloc {

/** Tunable constants, all in virtual nanoseconds unless noted. */
struct LatencyParams
{
    // Reflush: cost = reflush_base - reflush_step * distance.
    uint64_t reflush_base = 800;
    uint64_t reflush_step = 100;
    unsigned reflush_window = 4; //!< distance < window => reflush

    uint64_t xpline_hit = 60;    //!< flush into a buffered XPLine
    uint64_t media_seq = 100;    //!< XPLine miss, sequential successor
    uint64_t media_random = 250; //!< XPLine miss, random target
    uint64_t issue = 20;         //!< fixed CPU cost of any clwb
    uint64_t fence = 30;         //!< sfence

    unsigned xpbuf_lines = 64;   //!< XPBuffer capacity: 16 KB of 256 B XPLines [40]
    unsigned media_slots = 8;    //!< concurrent media writes (2 DIMMs x 4 WPQ slots)

    // eADR: flush *stalls* disappear (the cache is persistent) but PM
    // write traffic still drains through the same media, so dirty
    // lines cost a little, more if random (§6.7: NVAlloc keeps its
    // advantage on eADR through fewer accesses and better locality).
    uint64_t eadr_hit = 5;       //!< write into a buffered XPLine
    uint64_t eadr_seq = 25;      //!< sequential writeback
    uint64_t eadr_random = 60;   //!< random writeback

    uint64_t read_miss = 0;      //!< PM reads are not modeled
};

/** Mapping a TimeKind for a flush; see VClock. */
struct FlushClassCounts
{
    uint64_t total = 0;
    uint64_t reflush = 0;
    uint64_t sequential = 0;
    uint64_t random = 0;
    uint64_t xpline_hit = 0;
    uint64_t fences = 0;
};

/** How a flush was served; mirrors the FlushClassCounts buckets. */
enum class FlushClass : unsigned
{
    Reflush = 0,
    Sequential,
    Random,
    XpLineHit,
    NumClasses,
};

constexpr unsigned kNumFlushClasses =
    static_cast<unsigned>(FlushClass::NumClasses);

inline const char *
flushClassName(FlushClass c)
{
    switch (c) {
    case FlushClass::Reflush: return "reflush";
    case FlushClass::Sequential: return "sequential";
    case FlushClass::Random: return "random";
    case FlushClass::XpLineHit: return "xpline_hit";
    case FlushClass::NumClasses: break;
    }
    return "?";
}

/**
 * The hook a telemetry layer installs to attribute flush classes to
 * whatever higher-level context it tracks (heap, arena, thread).
 *
 * The model does not make a virtual call per flush. Instead it asks
 * the sink once per thread — and again whenever the sink epoch moves
 * (setSink / invalidateSinkCells) — for that thread's *cell row*:
 * kNumFlushClasses relaxed atomics, indexed by FlushClass, that only
 * the calling thread will write. Every classified flush then bumps
 * row[class] directly, so the steady-state cost of an installed sink
 * is one relaxed load+store. flushCells() runs on the flushing
 * thread, inside the flush path; it may return nullptr to decline
 * attribution for that thread and must not flush. The returned row
 * must stay valid until the sink is uninstalled or the epoch is
 * bumped again.
 */
class FlushSink
{
  public:
    virtual ~FlushSink() = default;
    virtual std::atomic<uint64_t> *flushCells() = 0;
};

class LatencyModel
{
  public:
    explicit LatencyModel(LatencyParams params = {});

    /** Charge one 64 B cache-line flush at heap offset `line` (already
     *  line-aligned), attributed to `kind`. */
    void onFlush(uint64_t line, TimeKind kind);

    void onFence();

    /** Switch eADR emulation on or off (also resets history). */
    void setEadr(bool on);
    bool eadr() const { return eadr_; }

    const LatencyParams &params() const { return params_; }
    void setParams(const LatencyParams &p) { params_ = p; }

    /** Zero counters and invalidate all per-thread history. */
    void reset();

    FlushClassCounts counts() const;

    /**
     * Install (or, with nullptr, remove) the flush-classification
     * sink. One sink at a time — installing replaces the previous one
     * (last writer wins; the allocator that owns the device's traffic
     * installs its telemetry here and removes it on destruction). The
     * caller guarantees the sink outlives its installation.
     */
    void
    setSink(FlushSink *sink)
    {
        sink_.store(sink, std::memory_order_release);
        invalidateSinkCells();
    }

    FlushSink *
    sink() const
    {
        return sink_.load(std::memory_order_acquire);
    }

    /**
     * Drop every thread's cached cell row; each thread re-asks the
     * sink on its next flush. setSink calls this itself; a sink whose
     * attribution target changed out of band (say, a thread re-bound
     * to a different arena) calls it directly. One atomic increment.
     */
    void
    invalidateSinkCells()
    {
        sink_epoch_.fetch_add(1, std::memory_order_release);
    }

    /**
     * Begin recording flush offsets (for the Fig. 2 scatter). Calling
     * it while a trace is already running restarts the trace: the
     * buffer is cleared and the new capacity applies.
     */
    void startTrace(size_t max_entries);

    /**
     * End the trace and return the recorded offsets. Idempotent and
     * safe without a matching startTrace: a stop when no trace is
     * running (including a second consecutive stop) returns an empty
     * vector and changes nothing.
     */
    std::vector<uint64_t> stopTrace();

    bool tracing() const;

    struct ThreadState;

  private:
    ThreadState &threadState();
    void chargeMedia(uint64_t line, ThreadState &ts, TimeKind kind);
    void noteClass(FlushClass cls, ThreadState &ts);

    LatencyParams params_;
    bool eadr_ = false;

    std::atomic<uint64_t> generation_{1};
    std::atomic<FlushSink *> sink_{nullptr};
    //! Bumped on every setSink/invalidateSinkCells; threads compare it
    //! against their cached row's epoch before trusting the pointer.
    std::atomic<uint64_t> sink_epoch_{1};

    std::atomic<uint64_t> n_total_{0};
    //! Per-class flush counts, indexed by FlushClass (one indexed
    //! fetch_add on the flush path instead of a switch).
    std::atomic<uint64_t> n_class_[kNumFlushClasses] = {};
    std::atomic<uint64_t> n_fence_{0};

    // Shared media bandwidth (XPBuffer drain ports): a windowed
    // capacity server with `media_slots` parallel units.
    VServer media_;

    // Optional flush-address trace.
    mutable std::mutex trace_mutex_;
    bool tracing_ = false;
    size_t trace_cap_ = 0;
    std::vector<uint64_t> trace_;
};

} // namespace nvalloc

#endif // NVALLOC_PM_LATENCY_MODEL_H
