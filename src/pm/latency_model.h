/**
 * @file
 * Flush classification and cost model for emulated persistent memory.
 *
 * Reproduces the performance characteristics the paper builds on:
 *
 *  - Cache line *reflush*: flushing a 64 B line whose reflush distance
 *    (number of distinct lines flushed since its last flush) is < 4 is
 *    far more expensive than a regular flush; latency decreases from
 *    800 ns at distance 0 to 500 ns at distance 3 (paper §3.1).
 *  - Sequential vs random small writes: Optane serves sequential
 *    flushes faster than random ones (paper §3.3, [40]).
 *  - XPBuffer: the DIMM's internal write-combining buffer holds a
 *    limited number of 256 B XPLines; flushes that hit a buffered
 *    XPLine are cheap, misses pay a media write and consume shared
 *    media bandwidth, modeled as a small pool of virtual-time slots.
 *    This reproduces the non-monotone bit-stripe sensitivity of
 *    Fig. 16(a).
 *  - eADR: flushes become free (only counted), as in the paper's §6.7
 *    emulation.
 *
 * All costs advance the calling thread's VClock; counters are global
 * and deterministic for a fixed workload trace.
 */

#ifndef NVALLOC_PM_LATENCY_MODEL_H
#define NVALLOC_PM_LATENCY_MODEL_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "pm/vclock.h"

namespace nvalloc {

/** Tunable constants, all in virtual nanoseconds unless noted. */
struct LatencyParams
{
    // Reflush: cost = reflush_base - reflush_step * distance.
    uint64_t reflush_base = 800;
    uint64_t reflush_step = 100;
    unsigned reflush_window = 4; //!< distance < window => reflush

    uint64_t xpline_hit = 60;    //!< flush into a buffered XPLine
    uint64_t media_seq = 100;    //!< XPLine miss, sequential successor
    uint64_t media_random = 250; //!< XPLine miss, random target
    uint64_t issue = 20;         //!< fixed CPU cost of any clwb
    uint64_t fence = 30;         //!< sfence

    unsigned xpbuf_lines = 64;   //!< XPBuffer capacity: 16 KB of 256 B XPLines [40]
    unsigned media_slots = 8;    //!< concurrent media writes (2 DIMMs x 4 WPQ slots)

    // eADR: flush *stalls* disappear (the cache is persistent) but PM
    // write traffic still drains through the same media, so dirty
    // lines cost a little, more if random (§6.7: NVAlloc keeps its
    // advantage on eADR through fewer accesses and better locality).
    uint64_t eadr_hit = 5;       //!< write into a buffered XPLine
    uint64_t eadr_seq = 25;      //!< sequential writeback
    uint64_t eadr_random = 60;   //!< random writeback

    uint64_t read_miss = 0;      //!< PM reads are not modeled
};

/** Mapping a TimeKind for a flush; see VClock. */
struct FlushClassCounts
{
    uint64_t total = 0;
    uint64_t reflush = 0;
    uint64_t sequential = 0;
    uint64_t random = 0;
    uint64_t xpline_hit = 0;
    uint64_t fences = 0;
};

class LatencyModel
{
  public:
    explicit LatencyModel(LatencyParams params = {});

    /** Charge one 64 B cache-line flush at heap offset `line` (already
     *  line-aligned), attributed to `kind`. */
    void onFlush(uint64_t line, TimeKind kind);

    void onFence();

    /** Switch eADR emulation on or off (also resets history). */
    void setEadr(bool on);
    bool eadr() const { return eadr_; }

    const LatencyParams &params() const { return params_; }
    void setParams(const LatencyParams &p) { params_ = p; }

    /** Zero counters and invalidate all per-thread history. */
    void reset();

    FlushClassCounts counts() const;

    /** Begin recording flush offsets (for the Fig. 2 scatter). */
    void startTrace(size_t max_entries);
    std::vector<uint64_t> stopTrace();

    struct ThreadState;

  private:
    ThreadState &threadState();
    void chargeMedia(uint64_t line, ThreadState &ts, TimeKind kind);

    LatencyParams params_;
    bool eadr_ = false;

    std::atomic<uint64_t> generation_{1};

    std::atomic<uint64_t> n_total_{0};
    std::atomic<uint64_t> n_reflush_{0};
    std::atomic<uint64_t> n_seq_{0};
    std::atomic<uint64_t> n_random_{0};
    std::atomic<uint64_t> n_hit_{0};
    std::atomic<uint64_t> n_fence_{0};

    // Shared media bandwidth (XPBuffer drain ports): a windowed
    // capacity server with `media_slots` parallel units.
    VServer media_;

    // Optional flush-address trace.
    std::mutex trace_mutex_;
    bool tracing_ = false;
    size_t trace_cap_ = 0;
    std::vector<uint64_t> trace_;
};

} // namespace nvalloc

#endif // NVALLOC_PM_LATENCY_MODEL_H
