/**
 * @file
 * Position-independent pointers for persistent structures.
 *
 * A heap file may be mapped at a different virtual address after every
 * restart, so persistent structures must not store raw pointers (paper
 * §4.1, same technique as Ralloc and NV-Heaps). OffsetPtr stores the
 * *self-relative* distance to the target: dereferencing adds the
 * distance to the pointer's own address, which is correct wherever the
 * containing region is mapped, as long as pointer and target live in
 * the same mapping.
 *
 * The value 0 (pointing at itself) encodes null.
 */

#ifndef NVALLOC_PM_OFFSET_PTR_H
#define NVALLOC_PM_OFFSET_PTR_H

#include <cstdint>

namespace nvalloc {

template <typename T>
class OffsetPtr
{
  public:
    OffsetPtr() = default;

    OffsetPtr(T *p) { set(p); }

    OffsetPtr &
    operator=(T *p)
    {
        set(p);
        return *this;
    }

    // Copying must rebase the offset relative to the new location.
    OffsetPtr(const OffsetPtr &other) { set(other.get()); }

    OffsetPtr &
    operator=(const OffsetPtr &other)
    {
        set(other.get());
        return *this;
    }

    // The distance is computed through uintptr_t: raw pointer
    // subtraction between distinct objects is undefined behaviour and
    // optimizers exploit it; integer arithmetic is merely
    // implementation-defined and round-trips on every flat-memory
    // platform.
    T *
    get() const
    {
        if (off_ == 0)
            return nullptr;
        return reinterpret_cast<T *>(
            reinterpret_cast<uintptr_t>(this) + uintptr_t(off_));
    }

    void
    set(T *p)
    {
        if (!p) {
            off_ = 0;
        } else {
            off_ = int64_t(reinterpret_cast<uintptr_t>(p) -
                           reinterpret_cast<uintptr_t>(this));
        }
    }

    T *operator->() const { return get(); }
    T &operator*() const { return *get(); }
    explicit operator bool() const { return off_ != 0; }
    bool operator==(const OffsetPtr &o) const { return get() == o.get(); }
    bool operator==(const T *p) const { return get() == p; }

    int64_t rawOffset() const { return off_; }

  private:
    int64_t off_ = 0;
};

} // namespace nvalloc

#endif // NVALLOC_PM_OFFSET_PTR_H
