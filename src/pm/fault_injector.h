/**
 * @file
 * Fault injection for the emulated persistent memory device.
 *
 * The plain shadow device models an idealized ADR platform: a flushed
 * line is durable the instant the flush is issued, and a crash loses
 * exactly the never-flushed stores. Real Optane DIMMs fail in finer
 * ways, and allocator bugs hide in exactly those modes:
 *
 *  - *Torn persists*: a flush that was issued but whose fence never
 *    retired gives no durability guarantee; at the power cut some of
 *    the epoch's pending lines have reached media, others have not,
 *    and within a line only 8-byte aligned words are atomic (x86
 *    store atomicity / DIMM ECC word granularity).
 *  - *Early evictions*: a dirty line that was never flushed may still
 *    be durable — the cache evicted it at some arbitrary earlier
 *    point. Recovery must therefore tolerate metadata that persisted
 *    *ahead* of its WAL entry, not only behind it.
 *  - *Media poison*: a failed media write leaves a line that returns a
 *    poison sentinel on read; consumers must detect and contain it
 *    rather than interpret garbage.
 *
 * With an injector installed, PmDevice switches to epoch semantics:
 * flushes *stage* lines and only a fence makes the staged set durable.
 * A crash (explicit, or scheduled at the Nth flush/fence via
 * armCrashAtFlush/armCrashAtFence) applies the FaultPolicy to the
 * final epoch: each staged line lands with probability
 * `staged_persist_fraction`, each dirty-unflushed line lands with
 * probability `eviction_fraction`, and with `word_granularity` a
 * landing line may tear at 8-byte boundaries. All coins are
 * deterministic in (seed, line address), so a sweep over crash points
 * is exactly reproducible.
 */

#ifndef NVALLOC_PM_FAULT_INJECTOR_H
#define NVALLOC_PM_FAULT_INJECTOR_H

#include <cstddef>
#include <cstdint>
#include <unordered_set>

namespace nvalloc {

/** What survives of the crash epoch; all coins seeded + per-line. */
struct FaultPolicy
{
    uint64_t seed = 1;

    /** Fraction of issued-but-unfenced flushes that reach media. 1.0
     *  reproduces the idealized flush-is-durable device. */
    double staged_persist_fraction = 1.0;

    /** Fraction of dirty, never-flushed lines that reach media anyway
     *  (cache eviction wrote them back before the cut). */
    double eviction_fraction = 0.0;

    /** Landing lines tear at 8-byte words: each word of the line
     *  persists independently (x86 atomicity floor). */
    bool word_granularity = false;
};

/** Byte a poisoned line reads back as until rewritten. */
constexpr uint8_t kPoisonByte = 0xb5;

class FaultInjector
{
  public:
    struct Stats
    {
        uint64_t flushes = 0;        //!< flushes observed
        uint64_t fences = 0;         //!< fences observed
        uint64_t staged_dropped = 0; //!< unfenced flushes lost at crash
        uint64_t staged_landed = 0;  //!< unfenced flushes that survived
        uint64_t evicted_landed = 0; //!< unflushed dirty lines survived
        uint64_t words_torn = 0;     //!< words rolled back inside
                                     //!< otherwise-landing lines
    };

    explicit FaultInjector(FaultPolicy policy = {}) : policy_(policy) {}

    const FaultPolicy &policy() const { return policy_; }
    void setPolicy(const FaultPolicy &p) { policy_ = p; }

    // ---- crash scheduling -------------------------------------------

    /** Crash when the Nth flush from now is issued (1-based). The Nth
     *  flush itself is part of the torn epoch. */
    void
    armCrashAtFlush(uint64_t nth)
    {
        crash_at_flush_ = nth ? stats_.flushes + nth : 0;
    }

    /** Crash when the Nth fence from now begins (its epoch never
     *  commits). */
    void
    armCrashAtFence(uint64_t nth)
    {
        crash_at_fence_ = nth ? stats_.fences + nth : 0;
    }

    bool armed() const { return crash_at_flush_ || crash_at_fence_; }

    /** The scheduled crash point was reached; the device is frozen
     *  (no store after this point can become durable). */
    bool triggered() const { return frozen_; }

    // ---- device-side hooks ------------------------------------------

    /** Count one flush; true if it is the scheduled crash point. */
    bool
    noteFlush()
    {
        ++stats_.flushes;
        return crash_at_flush_ && stats_.flushes >= crash_at_flush_;
    }

    /** Count one fence; true if it is the scheduled crash point. */
    bool
    noteFence()
    {
        ++stats_.fences;
        return crash_at_fence_ && stats_.fences >= crash_at_fence_;
    }

    void markFrozen() { frozen_ = true; }

    /** The crash consumed the armed point; the injector stays
     *  installed for the next run (the policy persists). */
    void
    resetAfterCrash()
    {
        frozen_ = false;
        crash_at_flush_ = 0;
        crash_at_fence_ = 0;
    }

    // ---- deterministic coins ----------------------------------------

    bool
    stagedLineLands(uint64_t line) const
    {
        return coin(line, 0x51a9ed) < policy_.staged_persist_fraction;
    }

    bool
    evictedLineLands(uint64_t line) const
    {
        return coin(line, 0xe71c7) < policy_.eviction_fraction;
    }

    bool
    wordLands(uint64_t line, unsigned word) const
    {
        if (!policy_.word_granularity)
            return true;
        // Each word its own fair-ish coin; keep at least the fraction
        // semantics loose — word tearing is about atomicity, not rate.
        return coin(line * 8 + word, 0x3c4d) < 0.5;
    }

    bool wordGranularity() const { return policy_.word_granularity; }

    // ---- media poison -----------------------------------------------

    void poison(uint64_t line) { poisoned_.insert(line); }
    void clearPoison(uint64_t line) { poisoned_.erase(line); }
    bool isPoisoned(uint64_t line) const { return poisoned_.count(line); }
    size_t poisonedLines() const { return poisoned_.size(); }
    const std::unordered_set<uint64_t> &poisonSet() const
    {
        return poisoned_;
    }

    /**
     * Build the post-crash durable image: apply the policy to the
     * final epoch, writing surviving content from `base` into
     * `shadow`. Called by PmDevice when the crash point is reached
     * (scheduled or explicit); leaves the injector frozen.
     */
    void applyCrashImage(char *base, char *shadow, uint64_t high_water,
                         const std::unordered_set<uint64_t> &staged);

    Stats &stats() { return stats_; }
    const Stats &stats() const { return stats_; }

  private:
    void copyLineTorn(char *dst, const char *src, uint64_t line);

    /** splitmix64 of (seed, x, salt), mapped to [0, 1). */
    double
    coin(uint64_t x, uint64_t salt) const
    {
        uint64_t z = policy_.seed ^ (x * 0x9e3779b97f4a7c15ull) ^
                     (salt << 32);
        z += 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        return double(z >> 11) * 0x1.0p-53;
    }

    FaultPolicy policy_;
    uint64_t crash_at_flush_ = 0; //!< absolute flush count, 0 = off
    uint64_t crash_at_fence_ = 0;
    bool frozen_ = false;
    std::unordered_set<uint64_t> poisoned_; //!< line offsets
    Stats stats_;
};

} // namespace nvalloc

#endif // NVALLOC_PM_FAULT_INJECTOR_H
