/**
 * @file
 * Virtual time.
 *
 * The paper reports thread-scaling curves measured on a 40-core Optane
 * machine. This reproduction runs on arbitrary hosts (including a
 * single core), so wall-clock time cannot reproduce those curves.
 * Instead every thread carries a *virtual clock*: modeled persistent
 * memory stalls and modeled CPU work advance it, and the harness
 * reports throughput as ops / makespan of the per-thread virtual
 * clocks.
 *
 * Serialized resources (arena locks, the XPBuffer's drain bandwidth)
 * are modeled by VServer, a *windowed capacity server*: virtual time
 * is divided into fixed windows and each server tracks how many
 * busy-nanoseconds of its capacity each window has consumed. A hold is
 * placed into the first window at or after its arrival time with
 * spare capacity; whatever does not fit spills forward. Queueing
 * delay is therefore a function of virtual-time utilization only —
 * it does not depend on the order in which the host's scheduler
 * happens to run the threads, which is what makes the model sound on
 * a single core where threads' clocks drift arbitrarily far apart.
 *
 * Time is also broken down by TimeKind so the Fig. 11 execution-time
 * breakdowns (FlushMeta / FlushWAL / Search / Other) fall out of the
 * same accounting.
 */

#ifndef NVALLOC_PM_VCLOCK_H
#define NVALLOC_PM_VCLOCK_H

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>

namespace nvalloc {

/** Attribution buckets for virtual time (paper Fig. 11). */
enum class TimeKind : unsigned
{
    FlushMeta = 0, //!< flushing slab bitmaps / headers / extent meta
    FlushWal,      //!< flushing write-ahead-log entries
    FlushLog,      //!< flushing bookkeeping-log entries
    FlushData,     //!< flushing user data (attach pointers etc.)
    Fence,         //!< store fences
    Search,        //!< extent search / split / coalesce work
    PmRead,        //!< persistent memory read stalls (cache misses)
    LockWait,      //!< modeled queueing on locks / media bandwidth
    Other,         //!< everything else (list ops, tcache ops, ...)
    NumKinds,
};

constexpr unsigned kNumTimeKinds =
    static_cast<unsigned>(TimeKind::NumKinds);

/** Per-thread virtual clock with per-kind attribution. */
class VClock
{
  public:
    /** Virtual nanoseconds elapsed on this thread since reset(). */
    static uint64_t now();

    /** Advance this thread's clock, attributing to `kind`. */
    static void advance(uint64_t ns, TimeKind kind);

    /** Jump this thread's clock forward to `t` if t is later; the gap
     *  is attributed to `kind` (used for modeled queueing delay). */
    static void advanceTo(uint64_t t, TimeKind kind);

    /** Zero this thread's clock and its per-kind buckets. */
    static void reset();

    /**
     * Set the clock without attributing time anywhere. Benchmark
     * workers start their clocks at a common phase base so
     * virtual-time resources stay meaningful across phases; the
     * harness measures deltas.
     */
    static void setNow(uint64_t t);

    /** Time attributed to one kind on this thread. */
    static uint64_t kindTotal(TimeKind kind);

    /** Snapshot all buckets of this thread. */
    static std::array<uint64_t, kNumTimeKinds> snapshot();
};

/**
 * Windowed capacity server modeling a serially-reusable resource (or
 * `units` parallel copies of one, for the media-bandwidth pool).
 *
 * reserve(arrival, hold) books `hold` busy-nanoseconds starting at the
 * first window >= arrival with spare capacity and returns the virtual
 * start time; the caller advances its own clock by (start - arrival)
 * + hold (or just the wait, if the hold already elapsed naturally, as
 * VLock does).
 */
class VServer
{
  public:
    explicit VServer(unsigned units = 1, uint64_t window_ns = 200'000);

    /** Book a hold; returns its virtual start time (>= arrival). */
    uint64_t reserve(uint64_t arrival, uint64_t hold_ns);

    void reset();

  private:
    static constexpr unsigned kWindows = 512;

    std::mutex mutex_;
    uint64_t window_ns_;
    uint64_t capacity_; //!< busy-ns capacity per window
    std::unique_ptr<uint64_t[]> busy_;  //!< by window % kWindows
    std::unique_ptr<uint64_t[]> tag_;   //!< absolute window index
    bool touched_ = false;

    uint64_t &slotBusy(uint64_t window);
};

} // namespace nvalloc

#endif // NVALLOC_PM_VCLOCK_H
