#include "pm/fault_injector.h"

#include <cstring>

#include "common/size_classes.h"

namespace nvalloc {

void
FaultInjector::copyLineTorn(char *dst, const char *src, uint64_t line)
{
    if (!policy_.word_granularity) {
        std::memcpy(dst, src, kCacheLine);
        return;
    }
    for (unsigned w = 0; w < kCacheLine / 8; ++w) {
        if (wordLands(line, w))
            std::memcpy(dst + w * 8, src + w * 8, 8);
        else
            ++stats_.words_torn;
    }
}

void
FaultInjector::applyCrashImage(char *base, char *shadow,
                               uint64_t high_water,
                               const std::unordered_set<uint64_t> &staged)
{
    // Issued-but-unfenced flushes: the power cut caught the epoch
    // mid-drain, so each line lands (possibly torn) or is lost.
    for (uint64_t line : staged) {
        if (stagedLineLands(line)) {
            copyLineTorn(shadow + line, base + line, line);
            ++stats_.staged_landed;
        } else {
            ++stats_.staged_dropped;
        }
    }

    // Dirty, never-flushed lines: ordinarily lost with the CPU cache,
    // but a fraction were evicted earlier and are durable anyway.
    if (policy_.eviction_fraction > 0.0) {
        for (uint64_t line = 0; line < high_water; line += kCacheLine) {
            if (staged.count(line))
                continue;
            if (std::memcmp(base + line, shadow + line, kCacheLine) == 0)
                continue;
            if (evictedLineLands(line)) {
                copyLineTorn(shadow + line, base + line, line);
                ++stats_.evicted_landed;
            }
        }
    }

    // Poisoned lines stay poisoned across the cut: re-stamp the
    // sentinel over whatever the torn epoch left there.
    for (uint64_t line : poisoned_) {
        if (line < high_water)
            std::memset(shadow + line, kPoisonByte, kCacheLine);
    }

    frozen_ = true;
}

} // namespace nvalloc
