/**
 * @file
 * nvm_malloc allocator model (Schwalb et al., ADMS'15).
 *
 * What the paper measures about nvm_malloc and this model reproduces:
 *  - volatile/non-volatile split with 8 B slab bitmaps sequentially
 *    mapped in slab headers: consecutive allocations re-flush the same
 *    line (§1, §3.1 — up to 94.4% reflushes in Fig. 1a);
 *  - a WAL whose small appended entries share cache lines;
 *  - per-size-class locking (better scaling than PMDK, worse than
 *    NVAlloc's arenas + tcaches);
 *  - large allocations through in-place header updates (Fig. 2a);
 *  - very fast recovery because metadata reconstruction is deferred
 *    to runtime deallocation (Fig. 18: 324 µs).
 */

#ifndef NVALLOC_BASELINES_NVM_MALLOC_ALLOC_H
#define NVALLOC_BASELINES_NVM_MALLOC_ALLOC_H

#include "baselines/baseline_base.h"

namespace nvalloc {

class NvmMallocAlloc : public BaselineAllocator
{
  public:
    explicit NvmMallocAlloc(PmDevice &dev, bool flush_enabled = true)
        : BaselineAllocator(dev, spec(), flush_enabled)
    {
    }

    static BaselineSpec
    spec()
    {
        BaselineSpec s;
        s.name = "nvm_malloc";
        s.strong = true;
        s.small.locking = SlabEngine::Locking::PerClass;
        s.small.shards = 4; // nvm_malloc's per-CPU arenas
        s.small.freelist = SlabEngine::FreeList::Bitmap;
        s.small.bitmap_flush = true;
        s.small.log_head_flush = false;
        s.small.log_entry_flushes = 1;
        s.small.cpu_ns = 70;
        s.large_journal_entries = 1;
        s.recovery = BaselineSpec::Recovery::WalScan;
        return s;
    }
};

} // namespace nvalloc

#endif // NVALLOC_BASELINES_NVM_MALLOC_ALLOC_H
