/**
 * @file
 * PmAllocatorRegistry: the name-keyed construction path every bench,
 * tool, and test uses (see allocator_iface.h). Builtins are registered
 * in the singleton's constructor so a static-library link cannot drop
 * them the way it drops file-scope registrar objects.
 */

#include "baselines/allocator_iface.h"

#include "baselines/makalu_alloc.h"
#include "baselines/nvalloc_adapter.h"
#include "baselines/nvm_malloc_alloc.h"
#include "baselines/pallocator.h"
#include "baselines/pmdk_alloc.h"
#include "baselines/ralloc_alloc.h"

namespace nvalloc {

namespace {

NvAllocConfig
nvallocConfigFor(Consistency consistency, const MakeOptions &opts)
{
    NvAllocConfig cfg;
    cfg.consistency = consistency;
    cfg.flush_enabled = opts.flush_enabled;
    if (opts.eadr) {
        // pmem_has_auto_flush() detected eADR: interleaving is
        // disabled because it only spreads cache pressure (§6.7).
        cfg.interleaved_bitmap = false;
        cfg.interleaved_tcache = false;
        cfg.interleaved_wal = false;
        cfg.interleaved_log = false;
    }
    if (opts.tweak_nvalloc)
        opts.tweak_nvalloc(cfg);
    return cfg;
}

} // namespace

PmAllocatorRegistry::PmAllocatorRegistry()
{
    registerFactory("pmdk", [](PmDevice &dev, const MakeOptions &o) {
        return std::make_unique<PmdkAlloc>(dev, o.flush_enabled);
    });
    registerFactory("nvm_malloc", [](PmDevice &dev, const MakeOptions &o) {
        return std::make_unique<NvmMallocAlloc>(dev, o.flush_enabled);
    });
    registerFactory("pallocator", [](PmDevice &dev, const MakeOptions &o) {
        return std::make_unique<PalAllocator>(dev, o.flush_enabled);
    });
    registerFactory("makalu", [](PmDevice &dev, const MakeOptions &o) {
        return std::make_unique<MakaluAlloc>(dev, o.flush_enabled);
    });
    registerFactory("ralloc", [](PmDevice &dev, const MakeOptions &o) {
        return std::make_unique<RallocAlloc>(dev, o.flush_enabled);
    });
    registerFactory("nvalloc", [](PmDevice &dev, const MakeOptions &o) {
        return std::make_unique<NvAllocAdapter>(
            dev, nvallocConfigFor(Consistency::Log, o));
    });
    registerFactory("nvalloc-gc", [](PmDevice &dev, const MakeOptions &o) {
        return std::make_unique<NvAllocAdapter>(
            dev, nvallocConfigFor(Consistency::Gc, o));
    });
}

PmAllocatorRegistry &
PmAllocatorRegistry::instance()
{
    static PmAllocatorRegistry reg;
    return reg;
}

void
PmAllocatorRegistry::registerFactory(const std::string &name, Factory fn)
{
    factories_[name] = std::move(fn);
}

std::unique_ptr<PmAllocator>
PmAllocatorRegistry::make(const std::string &name, PmDevice &dev,
                          const MakeOptions &opts) const
{
    auto it = factories_.find(name);
    if (it == factories_.end())
        return nullptr;
    if (opts.eadr)
        dev.model().setEadr(true);
    return it->second(dev, opts);
}

bool
PmAllocatorRegistry::known(const std::string &name) const
{
    return factories_.count(name) != 0;
}

std::vector<std::string>
PmAllocatorRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, fn] : factories_)
        out.push_back(name);
    return out;
}

} // namespace nvalloc
