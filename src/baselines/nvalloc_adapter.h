/**
 * @file
 * PmAllocator adapter over NvAlloc, exposing both consistency variants
 * to the benchmark harness under the paper's names ("NVAlloc-LOG",
 * "NVAlloc-GC").
 */

#ifndef NVALLOC_BASELINES_NVALLOC_ADAPTER_H
#define NVALLOC_BASELINES_NVALLOC_ADAPTER_H

#include <memory>

#include "baselines/allocator_iface.h"
#include "nvalloc/nvalloc.h"

namespace nvalloc {

class NvAllocAdapter : public PmAllocator
{
  public:
    struct Thread : AllocThread
    {
        ThreadCtx *ctx;
    };

    NvAllocAdapter(PmDevice &dev, NvAllocConfig cfg = {},
                   const char *name = nullptr)
        : dev_(dev), strong_(cfg.consistency == Consistency::Log)
    {
        // Factory open: a rejected config leaves alloc_ null (every
        // threadAttach then returns nullptr, the interface's "heap
        // refused to open" signal); a degraded heap is kept so its
        // ctl tree stays inspectable through impl().
        alloc_ = NvAlloc::open(dev, cfg).heap;
        if (name) {
            name_ = name;
        } else {
            name_ = strong_ ? "NVAlloc-LOG" : "NVAlloc-GC";
        }
    }

    const char *name() const override { return name_; }

    bool stronglyConsistent() const override { return strong_; }

    PmDevice &device() override { return dev_; }

    AllocThread *
    threadAttach() override
    {
        if (!alloc_)
            return nullptr; // config was rejected at construction
        ThreadCtx *ctx = alloc_->attachThread();
        if (!ctx)
            return nullptr; // slot exhaustion or failed open
        auto *t = new Thread;
        t->ctx = ctx;
        return t;
    }

    void
    threadDetach(AllocThread *t) override
    {
        auto *thread = static_cast<Thread *>(t);
        alloc_->detachThread(thread->ctx);
        delete thread;
    }

    uint64_t
    allocTo(AllocThread *t, size_t size, uint64_t *where) override
    {
        return alloc_->allocOffset(*static_cast<Thread *>(t)->ctx, size,
                                   where);
    }

    void
    freeFrom(AllocThread *t, uint64_t off, uint64_t *where) override
    {
        alloc_->freeOffset(*static_cast<Thread *>(t)->ctx, off, where);
    }

    uint64_t
    recover() override
    {
        // NvAlloc recovers at open(); reopening the heap is
        // the recovery measurement. The restart is dirty so the
        // failure path (WAL replay / conservative GC) runs, which is
        // what the paper's recovery experiment measures.
        NvAllocConfig cfg = alloc_->config();
        alloc_->dirtyRestart();
        alloc_.reset();
        alloc_ = NvAlloc::open(dev_, cfg).heap;
        return alloc_->lastRecovery().virtual_ns;
    }

    void
    simulateCrash() override
    {
        // NvAlloc must also neuter its destructor (a killed process
        // runs no shutdown path), not just roll the device back.
        alloc_->simulateCrash();
    }

    NvAlloc &impl() { return *alloc_; }

  private:
    PmDevice &dev_;
    bool strong_;
    std::unique_ptr<NvAlloc> alloc_;
    const char *name_;
};

} // namespace nvalloc

#endif // NVALLOC_BASELINES_NVALLOC_ADAPTER_H
