/**
 * @file
 * Shared large-object heap for the baseline allocator models.
 *
 * Implements the structure §3.3 attributes to PMDK, nvm_malloc,
 * PAllocator and Makalu: the heap grows in 4 MB regions whose header
 * area holds per-extent bookkeeping records; every allocate/free/split
 * updates the owning record *in place*, which after a few
 * alloc/free cycles produces small random writes scattered across all
 * region headers — the Fig. 2 pattern — instead of NVAlloc's
 * sequential bookkeeping log.
 *
 * The heap is fully functional (best-fit, split, coalesce, reuse); the
 * baselines differ in how many extra journal flushes they wrap around
 * each operation, which they do from their own code.
 */

#ifndef NVALLOC_BASELINES_EXTENT_HEAP_H
#define NVALLOC_BASELINES_EXTENT_HEAP_H

#include <cstdint>
#include <map>
#include <vector>

#include "nvalloc/layout.h"
#include "nvalloc/vlock.h"
#include "pm/pm_device.h"

namespace nvalloc {

class ExtentHeap
{
  public:
    ExtentHeap(PmDevice *dev, bool flush_enabled)
        : dev_(dev), flush_(flush_enabled)
    {
    }

    /** Allocate an extent (16 KB grain). Returns offset or 0. */
    uint64_t allocExtent(uint64_t size);

    /** Free a previously allocated extent. */
    void freeExtent(uint64_t off);

    /** True if `off` is the start of a live extent. */
    bool isAllocated(uint64_t off) const;

    uint64_t allocatedBytes() const { return allocated_bytes_; }
    size_t liveExtents() const { return allocated_.size(); }

    VLock lock; //!< public so callers can extend the critical section

    /** Walk all allocated extents (recovery modeling). */
    template <typename Fn>
    void
    forEachAllocated(Fn &&fn) const
    {
        for (const auto &[off, ext] : allocated_)
            fn(off, ext.size);
    }

  private:
    struct Extent
    {
        uint64_t size;
        uint64_t desc_off; //!< persistent record slot
    };

    PmDevice *dev_;
    bool flush_;

    std::multimap<uint64_t, uint64_t> free_by_size_; // size -> off
    std::map<uint64_t, uint64_t> free_by_addr_;      // off -> size
    std::map<uint64_t, Extent> allocated_;           // off -> info
    std::map<uint64_t, uint64_t> regions_;           // region -> size
    std::map<uint64_t, std::vector<unsigned>> desc_free_;

    uint64_t allocated_bytes_ = 0;

    uint64_t newRegion();
    void insertFree(uint64_t off, uint64_t size);
    void removeFree(uint64_t off, uint64_t size);
    uint64_t takeDescSlot(uint64_t off);
    void writeDesc(uint64_t desc_off, uint64_t off, uint64_t size,
                   uint32_t state);
    void writeBoundaryTags(uint64_t off, uint64_t size);
};

} // namespace nvalloc

#endif // NVALLOC_BASELINES_EXTENT_HEAP_H
