/**
 * @file
 * PAllocator model (Oukid et al., VLDB'17). The original is closed
 * source; like the paper's authors, we reimplement it from its paper.
 *
 * What NVAlloc's paper measures about PAllocator and this model
 * reproduces:
 *  - one dedicated small allocator per thread (segregated fit): the
 *    best scalability of the strong group for thread-local workloads
 *    (§6.7: beats NVAlloc-LOG on 64-thread Threadtest under eADR) but
 *    worse under cross-thread free patterns (Prod-con, Larson), where
 *    every remote free must take the owner's lock;
 *  - 2 B block metadata in page headers plus micro-logs: small
 *    same-line writes, flushed per op → reflush-bound on ADR
 *    (Fig. 1a: up to 98.8% reflushes);
 *  - large allocations through persistent headers updated in place,
 *    indexed by volatile trees (Fig. 2b).
 */

#ifndef NVALLOC_BASELINES_PALLOCATOR_H
#define NVALLOC_BASELINES_PALLOCATOR_H

#include "baselines/baseline_base.h"

namespace nvalloc {

class PalAllocator : public BaselineAllocator
{
  public:
    explicit PalAllocator(PmDevice &dev, bool flush_enabled = true)
        : BaselineAllocator(dev, spec(), flush_enabled)
    {
    }

    static BaselineSpec
    spec()
    {
        BaselineSpec s;
        s.name = "PAllocator";
        s.strong = true;
        s.small.locking = SlabEngine::Locking::PerThread;
        s.small.freelist = SlabEngine::FreeList::Bitmap;
        s.small.bitmap_flush = true;  // the 2 B page-header metadata
        s.small.log_head_flush = false;
        s.small.log_entry_flushes = 1; // micro-log
        s.small.cpu_ns = 55;
        s.large_journal_entries = 1;
        s.recovery = BaselineSpec::Recovery::MetaWalk;
        return s;
    }
};

} // namespace nvalloc

#endif // NVALLOC_BASELINES_PALLOCATOR_H
