/**
 * @file
 * Common interface over all allocators under evaluation.
 *
 * The benchmark harness drives every allocator — NVAlloc's two
 * variants and the five baseline models — through this interface, so
 * every figure compares identical traces on the identical emulated
 * device.
 *
 * The baselines are behavioural models, not line-by-line ports: each
 * reimplements the metadata layout and flush/locking discipline that
 * the paper identifies as the performance-relevant property of the
 * original (PMDK's transactional lane logs, nvm_malloc's sequential
 * slab bitmaps + WAL, PAllocator's per-thread segregated fit with
 * micro-logs, Makalu's and Ralloc's embedded free lists), on top of
 * the same PmDevice latency model.
 */

#ifndef NVALLOC_BASELINES_ALLOCATOR_IFACE_H
#define NVALLOC_BASELINES_ALLOCATOR_IFACE_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nvalloc/config.h"
#include "pm/pm_device.h"

namespace nvalloc {

/** Opaque per-thread handle. */
struct AllocThread
{
    virtual ~AllocThread() = default;
};

class PmAllocator
{
  public:
    virtual ~PmAllocator() = default;

    virtual const char *name() const = 0;

    /** True for WAL/transaction-based allocators ("strongly
     *  consistent" in the paper's grouping), false for GC-based. */
    virtual bool stronglyConsistent() const = 0;

    /** Whether large (>16 KB) allocations work; Ralloc's open-source
     *  implementation is broken there and the paper excludes it. */
    virtual bool supportsLarge() const { return true; }

    /**
     * Attach the calling thread. Returns nullptr when the allocator
     * cannot take another thread — its per-thread slots are all in
     * use, or the heap refused to open — and never aborts. Callers
     * must check the result; after a nullptr the thread may retry
     * once some other thread detaches. Passing the nullptr on to
     * allocTo/freeFrom/threadDetach is undefined.
     */
    virtual AllocThread *threadAttach() = 0;
    virtual void threadDetach(AllocThread *t) = 0;

    /**
     * Allocate `size` bytes, atomically publishing the offset into
     * the persistent word `where` (may be nullptr). Returns the
     * block's device offset, or 0 when the heap is exhausted — after
     * any internal reclamation slow path has already run — or `size`
     * is unserviceable. A 0 return leaves the heap fully usable for
     * frees and smaller allocations; callers skip the operation (and
     * report it, e.g. via noteFailedAlloc in the harness).
     */
    virtual uint64_t allocTo(AllocThread *t, size_t size,
                             uint64_t *where) = 0;

    /** Free the block at `off`, clearing `where` if given. */
    virtual void freeFrom(AllocThread *t, uint64_t off,
                          uint64_t *where) = 0;

    virtual PmDevice &device() = 0;

    /** Recover after restart/crash; returns modeled virtual ns. */
    virtual uint64_t recover() { return 0; }

    /**
     * Simulate a power cut: roll the device back to its persisted
     * image (honouring any installed fault-injection policy) and
     * neuter in-DRAM allocator state. Call recover() afterwards.
     * Requires the device's shadow mode. The same hook works for
     * every allocator, so crash sweeps can drive baselines too.
     */
    virtual void simulateCrash() { device().crash(); }
};

/** Construction knobs shared by every allocator factory. */
struct MakeOptions
{
    bool flush_enabled = true; //!< false on the emulated eADR platform
    bool eadr = false;         //!< put the device model in eADR mode
    /** Overrides applied to NVAlloc variants only. */
    std::function<void(NvAllocConfig &)> tweak_nvalloc;
};

/**
 * Name-keyed allocator factory: the single construction path for every
 * bench, tool, and test. Benches that used to switch over AllocKind go
 * through make() so a new allocator (or variant) only needs one
 * registration here and immediately appears everywhere, including in
 * run_benches.sh's NVALLOC_BENCH_ALLOCATORS filter.
 *
 * Built-in names: "pmdk", "nvm_malloc", "pallocator", "makalu",
 * "ralloc", "nvalloc" (LOG variant), "nvalloc-gc".
 *
 * The registry is a construct-on-first-use singleton with the builtins
 * registered in its constructor — not via static registrar objects,
 * which a static-library link is free to drop.
 */
class PmAllocatorRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<PmAllocator>(
        PmDevice &, const MakeOptions &)>;

    static PmAllocatorRegistry &instance();

    /** Register (or replace) a factory under `name`. */
    void registerFactory(const std::string &name, Factory fn);

    /**
     * Construct allocator `name` on `dev`. Device-level options
     * (eADR) are applied here, centrally, before the factory runs.
     * Returns nullptr for an unknown name.
     */
    std::unique_ptr<PmAllocator> make(const std::string &name,
                                      PmDevice &dev,
                                      const MakeOptions &opts = {}) const;

    bool known(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    PmAllocatorRegistry(); //!< registers the builtins

    std::map<std::string, Factory> factories_;
};

} // namespace nvalloc

#endif // NVALLOC_BASELINES_ALLOCATOR_IFACE_H
