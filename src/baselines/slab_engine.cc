#include "baselines/slab_engine.h"

#include "common/logging.h"

namespace nvalloc {

SlabEngine::SlabEngine(PmDevice *dev, ExtentHeap *extents, Policy policy,
                       bool flush_enabled)
    : dev_(dev), extents_(extents), policy_(policy), flush_(flush_enabled)
{
    unsigned shards = policy_.shards < 1 ? 1 : policy_.shards;
    for (unsigned i = 0; i < shards; ++i)
        shard_heaps_.push_back(std::make_unique<Heap>());
}

SlabEngine::~SlabEngine()
{
    for (Slab *slab : all_slabs_)
        delete slab;
}

SlabEngine::Tls *
SlabEngine::attach()
{
    std::lock_guard<std::mutex> g(admin_mutex_);
    auto *tls = new Tls;
    tls->id = next_tls_id_++;
    tls->log_off = extents_->allocExtent(16 * 1024);

    if (policy_.locking == Locking::PerThread) {
        // Detached heaps are recycled (a departing thread's slabs stay
        // usable, as PAllocator's persistent per-thread allocators do)
        // but only by threads whose virtual clock is past the detach.
        uint64_t now = VClock::now();
        for (size_t i = 0; i < free_heaps_.size(); ++i) {
            if (free_heaps_[i].second <= now) {
                tls->heap = free_heaps_[i].first;
                free_heaps_.erase(free_heaps_.begin() + long(i));
                break;
            }
        }
        if (!tls->heap) {
            thread_heaps_.push_back(std::make_unique<Heap>());
            tls->heap = thread_heaps_.back().get();
        }
    }
    return tls;
}

void
SlabEngine::detach(Tls *tls)
{
    std::lock_guard<std::mutex> g(admin_mutex_);
    extents_->freeExtent(tls->log_off);
    if (tls->heap)
        free_heaps_.emplace_back(tls->heap, VClock::now());
    delete tls;
}

SlabEngine::Heap &
SlabEngine::heapFor(Tls *tls, Slab *slab)
{
    // Frees always go to the heap that owns the slab (for a shared
    // arena that is the arena itself; for PAllocator it is the owner
    // thread's allocator — the cross-thread cost the paper measures).
    if (slab)
        return *slab->owner;
    if (policy_.locking == Locking::PerThread)
        return *tls->heap;
    return *shard_heaps_[tls->id % shard_heaps_.size()];
}

VLock &
SlabEngine::lockFor(Heap &heap, unsigned cls)
{
    if (policy_.locking == Locking::PerClass)
        return heap.classes[cls].lock;
    return heap.lock;
}

void
SlabEngine::journal(Tls *tls, uint64_t off, uint64_t size, bool is_free)
{
    journalWith(tls, policy_, off, size, is_free);
}

void
SlabEngine::journalWith(Tls *tls, const Policy &policy, uint64_t off,
                        uint64_t size, bool is_free)
{
    if (policy.log_head_flush) {
        // PMDK-lane style: the lane header line is rewritten on every
        // operation — reflush distance 0.
        auto *head = static_cast<uint64_t *>(dev_->at(tls->log_off));
        head[0] = tls->op_count;
        head[1] = off;
        if (flush_) {
            dev_->persist(head, kCacheLine, TimeKind::FlushWal);
            dev_->fence();
        }
    }
    for (unsigned i = 0; i < policy.log_entry_flushes; ++i) {
        // Appending journal: 16 B entries, four per line, so three of
        // four appends re-flush the line of the previous append.
        unsigned pos = tls->log_pos++ % 960;
        auto *e = static_cast<uint64_t *>(
            dev_->at(tls->log_off + kCacheLine + uint64_t(pos) * 16));
        e[0] = (off << 2) | (is_free ? 2 : 1);
        e[1] = size;
        if (flush_) {
            dev_->persist(e, 16, TimeKind::FlushWal);
            dev_->fence();
        }
    }
}

SlabEngine::Slab *
SlabEngine::newSlab(Heap &heap, unsigned cls)
{
    uint64_t off = extents_->allocExtent(kSlabSize);
    if (off == 0)
        return nullptr;
    auto *slab = new Slab;
    slab->off = off;
    slab->cls = uint16_t(cls);
    slab->capacity =
        uint16_t((kSlabSize - kBaseSlabHeader) / classToSize(cls));
    slab->owner = &heap;
    radix_.setRange(off, kSlabSize, slab);
    {
        std::lock_guard<std::mutex> g(admin_mutex_);
        all_slabs_.push_back(slab);
    }
    heap.classes[cls].partial.pushBack(slab);
    slab_count_.fetch_add(1, std::memory_order_relaxed);

    // Initialize the persistent slab header (class, magic word).
    auto *hdr = static_cast<uint64_t *>(dev_->at(off));
    hdr[0] = 0x42534c4142ULL; // "BSLAB"
    hdr[1] = cls;
    if (flush_) {
        dev_->persist(hdr, kCacheLine, TimeKind::FlushMeta);
        dev_->fence();
    }
    return slab;
}

void
SlabEngine::persistBitmapBit(Slab *slab, unsigned idx, bool set)
{
    // Sequentially mapped persistent bitmap right after the magic
    // line: consecutive allocations hit the same line (§3.1).
    auto *words = reinterpret_cast<uint64_t *>(
        static_cast<char *>(dev_->at(slab->off)) + kCacheLine);
    if (set)
        bitmapSet(words, idx);
    else
        bitmapClear(words, idx);
    if (flush_ && policy_.bitmap_flush) {
        dev_->flushLine(reinterpret_cast<char *>(words) + idx / 8,
                        TimeKind::FlushMeta);
        dev_->fence();
    }
}

uint64_t
SlabEngine::allocFromBitmap(Heap &heap, unsigned cls)
{
    ClassHeap &ch = heap.classes[cls];
    Slab *slab = ch.partial.front();
    if (!slab) {
        slab = newSlab(heap, cls);
        if (!slab)
            return 0;
    }
    size_t idx = bitmapFindFirstZero(slab->vbitmap, slab->capacity);
    NV_ASSERT(idx < slab->capacity);
    bitmapSet(slab->vbitmap, idx);
    if (++slab->live == slab->capacity)
        ch.partial.remove(slab); // full slabs leave the freelist
    persistBitmapBit(slab, unsigned(idx), true);
    return slab->off + kBaseSlabHeader + idx * classToSize(cls);
}

uint64_t
SlabEngine::allocFromEmbedded(Heap &heap, unsigned cls)
{
    ClassHeap &ch = heap.classes[cls];
    if (ch.embedded_head != 0) {
        uint64_t off = ch.embedded_head;
        // Chasing the link means reading the freed block itself — a
        // random PM read (the locality cost §6.2 attributes to
        // Makalu/Ralloc).
        if (policy_.link_read_charge)
            dev_->chargeRead(false);
        ch.embedded_head = *static_cast<uint64_t *>(dev_->at(off));
        auto *slab = static_cast<Slab *>(radix_.get(off));
        NV_ASSERT(slab != nullptr);
        ++slab->live;
        return off;
    }

    Slab *slab = ch.partial.front();
    if (!slab || slab->next_unused == slab->capacity) {
        slab = newSlab(heap, cls);
        if (!slab)
            return 0;
    }
    unsigned idx = slab->next_unused++;
    ++slab->live;
    if (slab->next_unused == slab->capacity)
        ch.partial.remove(slab);
    return slab->off + kBaseSlabHeader + idx * classToSize(cls);
}

void
SlabEngine::freeToBitmap(Heap &heap, Slab *slab, uint64_t off)
{
    unsigned idx = unsigned((off - slab->off - kBaseSlabHeader) /
                            classToSize(slab->cls));
    NV_ASSERT(bitmapTest(slab->vbitmap, idx));
    bitmapClear(slab->vbitmap, idx);
    if (slab->live-- == slab->capacity)
        heap.classes[slab->cls].partial.pushBack(slab);
    persistBitmapBit(slab, idx, false);
    // Static slab segregation (paper §3.2): the slab stays assigned
    // to its size class even when completely empty — it is reusable
    // by this class only, never returned for reassignment. This is
    // precisely the fragmentation NVAlloc's slab morphing removes.
}

void
SlabEngine::freeToEmbedded(Heap &heap, Slab *slab, uint64_t off)
{
    ClassHeap &ch = heap.classes[slab->cls];
    *static_cast<uint64_t *>(dev_->at(off)) = ch.embedded_head;
    if (flush_ && policy_.flush_link) {
        dev_->persist(dev_->at(off), 8, TimeKind::FlushMeta);
        dev_->fence();
    }
    ch.embedded_head = off;
    --slab->live;
    // Embedded-list slabs are never reclaimed: their free blocks are
    // woven into the class-wide list (the static-segregation cost the
    // paper measures in Fig. 1(b)).
}

uint64_t
SlabEngine::alloc(Tls *tls, size_t size)
{
    unsigned cls = sizeToClass(size);
    Heap &heap = heapFor(tls, nullptr);

    // Journals (PMDK lanes, nvm_malloc WALs, PAllocator micro-logs)
    // are per-thread structures: written outside the heap lock.
    journal(tls, 0, size, false);

    VLockGuard g(lockFor(heap, cls));
    uint64_t off = policy_.freelist == FreeList::Bitmap
                       ? allocFromBitmap(heap, cls)
                       : allocFromEmbedded(heap, cls);
    if (off == 0)
        return 0;

    ++tls->op_count;
    if (policy_.periodic_meta_flush &&
        tls->op_count % policy_.periodic_meta_flush == 0 && flush_) {
        auto *slab = static_cast<Slab *>(radix_.get(off));
        dev_->persist(dev_->at(slab->off), kCacheLine,
                      TimeKind::FlushMeta);
        dev_->fence();
    }
    VClock::advance(policy_.cpu_ns, TimeKind::Other);
    live_blocks_.fetch_add(1, std::memory_order_relaxed);
    return off;
}

bool
SlabEngine::free(Tls *tls, uint64_t off)
{
    auto *slab = static_cast<Slab *>(radix_.get(off));
    if (!slab)
        return false;

    Heap &heap = heapFor(tls, slab);
    journal(tls, off, 0, true);

    VLockGuard g(lockFor(heap, slab->cls));
    if (policy_.freelist == FreeList::Bitmap)
        freeToBitmap(heap, slab, off);
    else
        freeToEmbedded(heap, slab, off);

    ++tls->op_count;
    VClock::advance(policy_.cpu_ns, TimeKind::Other);
    live_blocks_.fetch_sub(1, std::memory_order_relaxed);
    return true;
}

} // namespace nvalloc
