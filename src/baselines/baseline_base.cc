#include "baselines/baseline_base.h"

#include "common/logging.h"
#include "pm/vclock.h"

namespace nvalloc {

void
BaselineAllocator::publish(uint64_t *where, uint64_t value)
{
    if (!where)
        return;
    *where = value;
    if (flush_ && dev_.contains(where)) {
        dev_.persist(where, sizeof(uint64_t), TimeKind::FlushData);
        dev_.fence();
    }
}

void
BaselineAllocator::largeJournal(SlabEngine::Tls *tls, uint64_t off,
                                size_t size, bool is_free)
{
    SlabEngine::Policy tmp = spec_.small;
    tmp.log_head_flush = spec_.large_journal_head;
    tmp.log_entry_flushes = spec_.large_journal_entries;
    engine_->journalWith(tls, tmp, off, size, is_free);
}

uint64_t
BaselineAllocator::allocTo(AllocThread *t, size_t size, uint64_t *where)
{
    auto *tls = static_cast<SlabEngine::Tls *>(t);
    uint64_t off;
    if (size <= kSmallMax) {
        off = engine_->alloc(tls, size);
    } else {
        largeJournal(tls, 0, size, false);
        off = extents_->allocExtent(size);
        VClock::advance(spec_.small.cpu_ns, TimeKind::Other);
    }
    publish(where, off);
    return off;
}

void
BaselineAllocator::freeFrom(AllocThread *t, uint64_t off, uint64_t *where)
{
    auto *tls = static_cast<SlabEngine::Tls *>(t);
    publish(where, 0);
    if (engine_->free(tls, off))
        return;
    largeJournal(tls, off, 0, true);
    extents_->freeExtent(off);
    VClock::advance(spec_.small.cpu_ns, TimeKind::Other);
}

uint64_t
BaselineAllocator::recover()
{
    uint64_t t0 = VClock::now();
    uint64_t blocks = engine_->liveBlocks();
    uint64_t slabs = engine_->slabCount();
    uint64_t extents = extents_->liveExtents();

    switch (spec_.recovery) {
      case BaselineSpec::Recovery::WalScan:
        // nvm_malloc defers metadata reconstruction: only the journals
        // are read at restart.
        for (unsigned i = 0; i < 64; ++i)
            dev_.chargeRead(true);
        break;
      case BaselineSpec::Recovery::MetaWalk:
        // PMDK walks its lane logs and every run/chunk header.
        for (uint64_t i = 0; i < slabs + extents; ++i)
            dev_.chargeRead(true);
        for (uint64_t i = 0; i < blocks / 16; ++i)
            dev_.chargeRead(true); // bitmap words
        break;
      case BaselineSpec::Recovery::PartialGc:
        // Ralloc scans only the blocks reachable from its descriptors
        // that were dirty at the crash — about half in the paper's
        // linked-list experiment.
        for (uint64_t i = 0; i < blocks / 2; ++i)
            dev_.chargeRead(false);
        break;
      case BaselineSpec::Recovery::FullGc:
        // Makalu's conservative GC dereferences every live object.
        for (uint64_t i = 0; i < blocks; ++i)
            dev_.chargeRead(false);
        break;
    }
    return VClock::now() - t0;
}

} // namespace nvalloc
