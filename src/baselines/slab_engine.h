/**
 * @file
 * Functional small-allocation engine for the baseline models.
 *
 * All five baselines allocate small blocks from size-segregated 64 KB
 * slabs (paper §2.2, §3.2 — static segregation, never morphed). The
 * engine implements the shared mechanics — slabs, per-class freelists,
 * block reuse, a radix index for frees — and a Policy selects the
 * metadata discipline that distinguishes the originals:
 *
 *  - bitmap mode (PMDK, nvm_malloc, PAllocator): sequentially-mapped
 *    persistent slab bitmaps, flushed per operation → the cache-line
 *    reflushes of §3.1;
 *  - embedded-list mode (Makalu, Ralloc): free blocks chained through
 *    their own first word; allocation chases a pointer in PM (charged
 *    as a random read), no per-op flushes;
 *  - journaling: zero or more WAL-style flushes per op, either
 *    appending (entry lines shared by 4 entries → frequent reflushes)
 *    or rewriting a lane head line (reflush distance 0, PMDK);
 *  - locking: one global heap lock, per-class locks, or per-thread
 *    heaps (PAllocator — fast locally, contended on cross-thread
 *    frees).
 */

#ifndef NVALLOC_BASELINES_SLAB_ENGINE_H
#define NVALLOC_BASELINES_SLAB_ENGINE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "baselines/allocator_iface.h"
#include "baselines/extent_heap.h"
#include "common/bitmap_ops.h"
#include "common/lru_list.h"
#include "common/radix_tree.h"
#include "common/size_classes.h"

namespace nvalloc {

class SlabEngine
{
  public:
    enum class Locking { Global, PerClass, PerThread };
    enum class FreeList { Bitmap, Embedded };

    struct Heap;

    struct Policy
    {
        Locking locking = Locking::Global;
        FreeList freelist = FreeList::Bitmap;
        unsigned shards = 1; //!< arena count for Global/PerClass modes
        bool bitmap_flush = true;      //!< flush bitmap line per op
        bool link_read_charge = true;  //!< PM read when popping links
        bool flush_link = false;       //!< flush link writes on free
        bool log_head_flush = false;   //!< rewrite+flush lane head
        unsigned log_entry_flushes = 0; //!< appended journal flushes
        unsigned periodic_meta_flush = 0; //!< extra header flush every N
        uint64_t cpu_ns = 60;          //!< per-op CPU cost
    };

    struct Tls : AllocThread
    {
        unsigned id = 0;
        uint64_t log_off = 0;   //!< 16 KB journal extent
        unsigned log_pos = 0;
        uint64_t op_count = 0;
        Heap *heap = nullptr; //!< per-thread heap if enabled
    };

    SlabEngine(PmDevice *dev, ExtentHeap *extents, Policy policy,
               bool flush_enabled);
    ~SlabEngine();

    Tls *attach();
    void detach(Tls *tls);

    /** Allocate a small block (size <= kSmallMax). Returns offset. */
    uint64_t alloc(Tls *tls, size_t size);

    /** Free if `off` is a small block of this engine; returns false
     *  if the offset is unknown (caller should try the large path). */
    bool free(Tls *tls, uint64_t off);

    /** Journal with an explicit policy (large-path journaling uses a
     *  different flush count than the small path). */
    void journalWith(Tls *tls, const Policy &policy, uint64_t off,
                     uint64_t size, bool is_free);

    uint64_t liveBlocks() const { return live_blocks_.load(); }
    uint64_t slabCount() const { return slab_count_.load(); }

  private:
    struct Slab
    {
        uint64_t off = 0;
        uint16_t cls = 0;
        uint16_t capacity = 0;
        uint16_t live = 0;
        uint16_t next_unused = 0; //!< bump cursor (embedded mode)
        Heap *owner = nullptr;
        LruLink list_link;
        uint64_t vbitmap[bitmapWords(kMaxSlabBlocks)] = {};
    };

    struct ClassHeap
    {
        LruList<Slab, offsetof(Slab, list_link)> partial;
        uint64_t embedded_head = 0; //!< offset of first free block
        VLock lock;                 //!< used in PerClass mode
    };

  public:
    struct Heap
    {
        ClassHeap classes[kNumSizeClasses];
        VLock lock; //!< used in Global / PerThread modes
    };

  private:
    static constexpr size_t kBaseSlabHeader = 1024;

    PmDevice *dev_;
    ExtentHeap *extents_;
    Policy policy_;
    bool flush_;

    std::vector<std::unique_ptr<Heap>> shard_heaps_;
    std::vector<std::unique_ptr<Heap>> thread_heaps_;
    /** Detached heaps with the virtual time of their detach; a heap
     *  is only handed to a thread whose clock is past that time, so a
     *  late-starting worker can never inherit lock history from its
     *  own virtual future (a single-core scheduling artifact). */
    std::vector<std::pair<Heap *, uint64_t>> free_heaps_;
    std::vector<Slab *> all_slabs_;
    RadixTree radix_;
    std::mutex admin_mutex_;
    unsigned next_tls_id_ = 0;

    std::atomic<uint64_t> live_blocks_{0};
    std::atomic<uint64_t> slab_count_{0};

    Heap &heapFor(Tls *tls, Slab *slab);
    VLock &lockFor(Heap &heap, unsigned cls);
    void journal(Tls *tls, uint64_t off, uint64_t size, bool is_free);
    Slab *newSlab(Heap &heap, unsigned cls);
    uint64_t allocFromBitmap(Heap &heap, unsigned cls);
    uint64_t allocFromEmbedded(Heap &heap, unsigned cls);
    void freeToBitmap(Heap &heap, Slab *slab, uint64_t off);
    void freeToEmbedded(Heap &heap, Slab *slab, uint64_t off);
    void persistBitmapBit(Slab *slab, unsigned idx, bool set);
};

} // namespace nvalloc

#endif // NVALLOC_BASELINES_SLAB_ENGINE_H
