#include "baselines/extent_heap.h"

#include <bit>
#include <vector>

#include "common/logging.h"

namespace nvalloc {

namespace {

uint64_t
alignUp(uint64_t v, uint64_t a)
{
    return (v + a - 1) & ~(a - 1);
}

} // namespace

uint64_t
ExtentHeap::newRegion()
{
    uint64_t size = kRegionSize;
    uint64_t off = dev_->mapRegion(size);
    regions_[off] = size;
    auto &slots = desc_free_[off];
    for (unsigned i = kDescsPerRegion; i-- > 0;)
        slots.push_back(i);
    insertFree(off + kRegionHeaderSize, size - kRegionHeaderSize);
    return off;
}

void
ExtentHeap::insertFree(uint64_t off, uint64_t size)
{
    free_by_size_.emplace(size, off);
    free_by_addr_.emplace(off, size);
}

void
ExtentHeap::removeFree(uint64_t off, uint64_t size)
{
    auto range = free_by_size_.equal_range(size);
    for (auto it = range.first; it != range.second; ++it) {
        if (it->second == off) {
            free_by_size_.erase(it);
            free_by_addr_.erase(off);
            return;
        }
    }
    NV_PANIC("free extent index inconsistent");
}

uint64_t
ExtentHeap::takeDescSlot(uint64_t off)
{
    auto it = regions_.upper_bound(off);
    NV_ASSERT(it != regions_.begin());
    --it;
    uint64_t region = it->first;
    auto &slots = desc_free_[region];
    NV_ASSERT(!slots.empty());
    unsigned slot = slots.back();
    slots.pop_back();
    return region + slot * sizeof(ExtentDesc);
}

void
ExtentHeap::writeDesc(uint64_t desc_off, uint64_t off, uint64_t size,
                      uint32_t state)
{
    auto *desc = static_cast<ExtentDesc *>(dev_->at(desc_off));
    desc->offset = off;
    desc->size = size;
    desc->state = state;
    if (flush_) {
        // The in-place bookkeeping update: a 64 B write at whatever
        // region header the best-fit landed in (random, §3.3).
        dev_->persist(desc, sizeof(ExtentDesc), TimeKind::FlushMeta);
        dev_->fence();
    }
}

uint64_t
ExtentHeap::allocExtent(uint64_t size)
{
    size = alignUp(size, kExtentAlign);
    VLockGuard g(lock);

    // Best fit with a modeled search cost. Unlike NVAlloc's DRAM-only
    // VEHs, the originals walk free-list/tree structures stored in
    // persistent memory: every probed node is a random PM read.
    auto it = free_by_size_.lower_bound(size);
    unsigned probes = std::bit_width(free_by_size_.size()) + 2;
    for (unsigned i = 0; i < probes; ++i)
        dev_->chargeRead(false);
    VClock::advance(40 + 15 * probes, TimeKind::Search);
    if (it == free_by_size_.end()) {
        newRegion();
        it = free_by_size_.lower_bound(size);
        if (it == free_by_size_.end())
            return 0;
    }

    uint64_t off = it->second;
    uint64_t have = it->first;
    removeFree(off, have);
    if (have > size)
        insertFree(off + size, have - size);

    uint64_t desc_off = takeDescSlot(off);
    allocated_.emplace(off, Extent{size, desc_off});
    allocated_bytes_ += size;
    writeDesc(desc_off, off, size, 1);
    writeBoundaryTags(off, size);
    return off;
}

void
ExtentHeap::writeBoundaryTags(uint64_t off, uint64_t size)
{
    // Header/footer boundary tags at the extent's ends, as PMDK's
    // chunk headers and Makalu's block headers keep for coalescing:
    // two more small writes at effectively random heap locations.
    auto *head = static_cast<uint64_t *>(dev_->at(off));
    auto *foot = static_cast<uint64_t *>(
        dev_->at(off + size - kCacheLine));
    head[0] = size | 1;
    foot[0] = size | 1;
    if (flush_) {
        dev_->persist(head, 8, TimeKind::FlushMeta);
        dev_->persist(foot, 8, TimeKind::FlushMeta);
        dev_->fence();
    }
}

void
ExtentHeap::freeExtent(uint64_t off)
{
    VLockGuard g(lock);
    // Coalescing consults both neighbours' boundary tags in PM.
    dev_->chargeRead(false);
    dev_->chargeRead(false);
    auto it = allocated_.find(off);
    NV_ASSERT(it != allocated_.end());
    uint64_t size = it->second.size;
    uint64_t desc_off = it->second.desc_off;
    allocated_.erase(it);
    allocated_bytes_ -= size;

    // Coalesce with adjacent free extents within the region.
    uint64_t region = std::prev(regions_.upper_bound(off))->first;
    uint64_t lo = region + kRegionHeaderSize;
    uint64_t hi = region + regions_[region];

    auto right = free_by_addr_.find(off + size);
    if (right != free_by_addr_.end() && right->first < hi) {
        uint64_t rsize = right->second;
        removeFree(off + size, rsize);
        size += rsize;
    }
    auto left = free_by_addr_.lower_bound(off);
    if (left != free_by_addr_.begin()) {
        --left;
        if (left->first >= lo && left->first + left->second == off) {
            uint64_t loff = left->first;
            uint64_t lsize = left->second;
            removeFree(loff, lsize);
            off = loff;
            size += lsize;
        }
    }
    insertFree(off, size);

    // In-place record update marks the extent free; the (possibly
    // coalesced) free run gets fresh boundary tags.
    writeDesc(desc_off, off, size, 2);
    writeBoundaryTags(off, size);
    // Return the slot.
    uint64_t reg = std::prev(regions_.upper_bound(desc_off))->first;
    desc_free_[reg].push_back(
        unsigned((desc_off - reg) / sizeof(ExtentDesc)));
}

bool
ExtentHeap::isAllocated(uint64_t off) const
{
    return allocated_.count(off) != 0;
}

} // namespace nvalloc
