/**
 * @file
 * Ralloc allocator model (Cai et al., ISMM'20).
 *
 * What the paper measures about Ralloc and this model reproduces:
 *  - GC-based consistency derived from the lock-free LRalloc: no
 *    per-op flushes and per-thread caches, making it the fastest
 *    baseline (NVAlloc-GC still wins by up to 6x thanks to bitmaps +
 *    volatile copies instead of embedded lists);
 *  - free lists embedded in the blocks: allocation chases a PM
 *    pointer (random read);
 *  - the open-source implementation "does not work correctly for
 *    large objects" (§6.2) — supportsLarge() is false and the
 *    harness excludes it from large-allocation figures, exactly as
 *    the paper does;
 *  - recovery by a partial scan of dirty descriptors (Fig. 18:
 *    552 ms, faster than Makalu's full GC).
 */

#ifndef NVALLOC_BASELINES_RALLOC_ALLOC_H
#define NVALLOC_BASELINES_RALLOC_ALLOC_H

#include "baselines/baseline_base.h"

namespace nvalloc {

class RallocAlloc : public BaselineAllocator
{
  public:
    explicit RallocAlloc(PmDevice &dev, bool flush_enabled = true)
        : BaselineAllocator(dev, spec(), flush_enabled)
    {
    }

    static BaselineSpec
    spec()
    {
        BaselineSpec s;
        s.name = "Ralloc";
        s.strong = false;
        s.supports_large = false;
        s.small.locking = SlabEngine::Locking::PerThread;
        s.small.freelist = SlabEngine::FreeList::Embedded;
        s.small.bitmap_flush = false;
        s.small.link_read_charge = true;
        s.small.flush_link = false;
        s.small.log_entry_flushes = 0;
        s.small.cpu_ns = 50;
        s.large_journal_entries = 0;
        s.recovery = BaselineSpec::Recovery::PartialGc;
        return s;
    }
};

} // namespace nvalloc

#endif // NVALLOC_BASELINES_RALLOC_ALLOC_H
