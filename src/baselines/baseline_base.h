/**
 * @file
 * Shared plumbing for the five baseline allocator models.
 *
 * A BaselineSpec captures what distinguishes each original allocator:
 * the small-path Policy (see slab_engine.h), how many journal flushes
 * wrap a large allocation, and the recovery discipline. Each concrete
 * baseline (pmdk_alloc.h, ...) is a spec plus the rationale for it.
 */

#ifndef NVALLOC_BASELINES_BASELINE_BASE_H
#define NVALLOC_BASELINES_BASELINE_BASE_H

#include <memory>

#include "baselines/allocator_iface.h"
#include "baselines/extent_heap.h"
#include "baselines/slab_engine.h"

namespace nvalloc {

struct BaselineSpec
{
    const char *name = "baseline";
    bool strong = true;
    bool supports_large = true;

    SlabEngine::Policy small;

    /** Journal flushes around a large allocation/free. */
    unsigned large_journal_entries = 1;
    bool large_journal_head = false;

    /** Recovery model (Fig. 18): per-live-block PM read pattern. */
    enum class Recovery
    {
        WalScan,    //!< scan journals only (fast; nvm_malloc)
        MetaWalk,   //!< walk slab/extent metadata (PMDK)
        PartialGc,  //!< read a fraction of live blocks (Ralloc)
        FullGc,     //!< conservative GC reads every block (Makalu)
    } recovery = Recovery::MetaWalk;
};

class BaselineAllocator : public PmAllocator
{
  public:
    BaselineAllocator(PmDevice &dev, BaselineSpec spec,
                      bool flush_enabled = true)
        : dev_(dev), spec_(spec),
          extents_(std::make_unique<ExtentHeap>(&dev, flush_enabled)),
          engine_(std::make_unique<SlabEngine>(&dev, extents_.get(),
                                               spec.small, flush_enabled)),
          flush_(flush_enabled)
    {
    }

    const char *name() const override { return spec_.name; }
    bool stronglyConsistent() const override { return spec_.strong; }
    bool supportsLarge() const override { return spec_.supports_large; }
    PmDevice &device() override { return dev_; }

    AllocThread *threadAttach() override { return engine_->attach(); }

    void
    threadDetach(AllocThread *t) override
    {
        engine_->detach(static_cast<SlabEngine::Tls *>(t));
    }

    uint64_t allocTo(AllocThread *t, size_t size,
                     uint64_t *where) override;
    void freeFrom(AllocThread *t, uint64_t off, uint64_t *where) override;

    uint64_t recover() override;

    SlabEngine &engine() { return *engine_; }
    ExtentHeap &extents() { return *extents_; }

  protected:
    PmDevice &dev_;
    BaselineSpec spec_;
    std::unique_ptr<ExtentHeap> extents_;
    std::unique_ptr<SlabEngine> engine_;
    bool flush_;

    void publish(uint64_t *where, uint64_t value);
    void largeJournal(SlabEngine::Tls *tls, uint64_t off, size_t size,
                      bool is_free);
};

} // namespace nvalloc

#endif // NVALLOC_BASELINES_BASELINE_BASE_H
