/**
 * @file
 * Makalu allocator model (Bhandari et al., OOPSLA'16).
 *
 * What the paper measures about Makalu and this model reproduces:
 *  - GC-based consistency: small allocations persist almost no
 *    metadata online (offline GC rebuilds it), so there are no
 *    per-op bitmap flushes;
 *  - free blocks managed as linked lists embedded in the blocks
 *    themselves: every allocation chases a pointer stored in
 *    persistent memory — a random PM read — and the blocks' data
 *    locality is poor (§6.2: NVAlloc-GC's bitmaps + volatile copies
 *    beat this by up to 70x at scale);
 *  - central heap structures behind a global lock once thread-local
 *    fridges drain (the scaling wall in Fig. 10);
 *  - occasional header persistence (every few ops) for restartability;
 *  - recovery by conservative GC over every live object (Fig. 18:
 *    911 ms, the slowest of the open-source allocators).
 */

#ifndef NVALLOC_BASELINES_MAKALU_ALLOC_H
#define NVALLOC_BASELINES_MAKALU_ALLOC_H

#include "baselines/baseline_base.h"

namespace nvalloc {

class MakaluAlloc : public BaselineAllocator
{
  public:
    explicit MakaluAlloc(PmDevice &dev, bool flush_enabled = true)
        : BaselineAllocator(dev, spec(), flush_enabled)
    {
    }

    static BaselineSpec
    spec()
    {
        BaselineSpec s;
        s.name = "Makalu";
        s.strong = false;
        s.small.locking = SlabEngine::Locking::Global;
        s.small.freelist = SlabEngine::FreeList::Embedded;
        s.small.bitmap_flush = false;
        s.small.link_read_charge = true;
        s.small.flush_link = false;
        s.small.log_entry_flushes = 0;
        s.small.periodic_meta_flush = 8;
        s.small.cpu_ns = 90;
        s.large_journal_entries = 1;
        s.recovery = BaselineSpec::Recovery::FullGc;
        return s;
    }
};

} // namespace nvalloc

#endif // NVALLOC_BASELINES_MAKALU_ALLOC_H
