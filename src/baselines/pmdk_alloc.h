/**
 * @file
 * PMDK (libpmemobj) allocator model.
 *
 * What the paper measures about PMDK and this model reproduces:
 *  - transactional allocation: every operation journals into a lane
 *    whose header line is rewritten each time (reflush distance 0)
 *    plus an appended redo entry — PMDK's reflush ratio reaches 99.7%
 *    in Fig. 1(a);
 *  - sequentially mapped run bitmaps in persistent run headers,
 *    flushed per op (§3.1);
 *  - heap operations funneled through shared pool structures — the
 *    worst thread-scaling of the strongly consistent group (Fig. 9);
 *  - large allocations: best-fit over chunk headers updated in place
 *    (§3.3, Fig. 2), wrapped in the same transaction (Fig. 12: NVAlloc
 *    is up to 40x faster);
 *  - recovery: lane log traversal plus heap metadata walk (Fig. 18:
 *    34 ms for the 10 M-node list).
 */

#ifndef NVALLOC_BASELINES_PMDK_ALLOC_H
#define NVALLOC_BASELINES_PMDK_ALLOC_H

#include "baselines/baseline_base.h"

namespace nvalloc {

class PmdkAlloc : public BaselineAllocator
{
  public:
    explicit PmdkAlloc(PmDevice &dev, bool flush_enabled = true)
        : BaselineAllocator(dev, spec(), flush_enabled)
    {
    }

    static BaselineSpec
    spec()
    {
        BaselineSpec s;
        s.name = "PMDK";
        s.strong = true;
        s.small.locking = SlabEngine::Locking::Global;
        s.small.freelist = SlabEngine::FreeList::Bitmap;
        s.small.bitmap_flush = true;
        s.small.log_head_flush = true;  // lane header rewrite
        s.small.log_entry_flushes = 1;  // redo entry
        s.small.cpu_ns = 90;
        s.large_journal_entries = 2;    // tx add_range + commit
        s.large_journal_head = true;
        s.recovery = BaselineSpec::Recovery::MetaWalk;
        return s;
    }
};

} // namespace nvalloc

#endif // NVALLOC_BASELINES_PMDK_ALLOC_H
