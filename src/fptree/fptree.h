/**
 * @file
 * FPTree (Oukid et al., SIGMOD'16): a hybrid SCM-DRAM persistent
 * B+tree, used by the paper as the end-to-end application benchmark
 * (§6.3, Fig. 14).
 *
 *  - Inner nodes live in DRAM (rebuildable), each with up to 64
 *    children.
 *  - Leaf nodes live in persistent memory. A leaf holds a validity
 *    bitmap, one byte-sized *fingerprint* per entry (a hash that lets
 *    lookups touch one cache line instead of scanning keys), and 64
 *    key/value slots.
 *  - Values are out-of-line: each value slot holds the offset of an
 *    actual KV object (128 B here, as in the paper's Facebook-derived
 *    setup) allocated through the allocator under test; leaves
 *    themselves are also allocated through it. This is what makes
 *    FPTree throughput an allocator benchmark.
 *
 * Concurrency: a tree-level shared mutex (shared for single-leaf
 * operations, exclusive for splits) plus per-leaf locks — a stand-in
 * for the paper's HTM scheme with the same structural behaviour.
 */

#ifndef NVALLOC_FPTREE_FPTREE_H
#define NVALLOC_FPTREE_FPTREE_H

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "baselines/allocator_iface.h"

namespace nvalloc {

class FpTree
{
  public:
    static constexpr unsigned kLeafCap = 64;
    static constexpr unsigned kInnerCap = 64; //!< children per inner
    static constexpr size_t kValueBytes = 128;

    explicit FpTree(PmAllocator &alloc);
    ~FpTree();

    /** Insert key -> value payload (copied into a fresh 128 B KV
     *  object). Returns false if the key already exists. */
    bool insert(AllocThread *t, uint64_t key, uint64_t value);

    /** Remove a key, freeing its KV object. False if absent. */
    bool erase(AllocThread *t, uint64_t key);

    /** Find a key; fills `value` from the KV object. */
    bool lookup(uint64_t key, uint64_t &value);

    uint64_t size() const { return size_.load(); }

  private:
    /** Persistent leaf layout. */
    struct LeafPm
    {
        uint64_t bitmap;
        uint64_t next_off;
        uint8_t fp[kLeafCap];
        struct Slot
        {
            uint64_t key;
            uint64_t val_off;
        } kv[kLeafCap];
    };

    /** Volatile leaf handle. */
    struct Leaf
    {
        uint64_t pm_off = 0;
        LeafPm *pm = nullptr;
        std::mutex lock;
    };

    struct Inner
    {
        bool leaf_children = true;
        unsigned count = 0; //!< number of children
        // One spare slot: a node may hold kInnerCap + 1 children for
        // the instant between overflow and split.
        uint64_t keys[kInnerCap];
        void *children[kInnerCap + 1];
    };

    PmAllocator &alloc_;
    PmDevice &dev_;
    std::shared_mutex tree_lock_;
    Inner *root_ = nullptr;     //!< null while the tree is one leaf
    Leaf *first_leaf_ = nullptr;
    std::vector<Leaf *> leaves_;
    std::vector<Inner *> inners_;
    std::mutex admin_lock_;
    std::atomic<uint64_t> size_{0};

    AllocThread *init_thread_ = nullptr;

    static uint8_t fingerprint(uint64_t key);
    Leaf *descend(uint64_t key) const;
    Leaf *newLeaf(AllocThread *t);
    unsigned findSlot(const LeafPm *pm, uint64_t key) const;
    bool insertIntoLeaf(AllocThread *t, Leaf *leaf, uint64_t key,
                        uint64_t value);
    void splitLeaf(AllocThread *t, Leaf *leaf, uint64_t key);
    void insertUpward(Inner *node, void *child_split, uint64_t sep,
                      void *new_child);
    void persist(const void *p, size_t len, TimeKind kind);
};

} // namespace nvalloc

#endif // NVALLOC_FPTREE_FPTREE_H
