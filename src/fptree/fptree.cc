#include "fptree/fptree.h"

#include <algorithm>
#include <cstring>

#include "common/bitmap_ops.h"
#include "common/logging.h"
#include "pm/vclock.h"

namespace nvalloc {

namespace {

/** Modeled DRAM traversal cost per operation. */
constexpr uint64_t kTraverseCpuNs = 150;

} // namespace

FpTree::FpTree(PmAllocator &alloc)
    : alloc_(alloc), dev_(alloc.device())
{
    init_thread_ = alloc_.threadAttach();
    first_leaf_ = newLeaf(init_thread_);
}

FpTree::~FpTree()
{
    alloc_.threadDetach(init_thread_);
    for (Leaf *leaf : leaves_)
        delete leaf;
    for (Inner *inner : inners_)
        delete inner;
}

uint8_t
FpTree::fingerprint(uint64_t key)
{
    // One-byte hash, as in the FPTree paper.
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    return uint8_t(key);
}

void
FpTree::persist(const void *p, size_t len, TimeKind kind)
{
    dev_.persist(p, len, kind);
    dev_.fence();
}

FpTree::Leaf *
FpTree::newLeaf(AllocThread *t)
{
    auto *leaf = new Leaf;
    leaf->pm_off = alloc_.allocTo(t, sizeof(LeafPm), nullptr);
    NV_ASSERT(leaf->pm_off != 0);
    leaf->pm = static_cast<LeafPm *>(dev_.at(leaf->pm_off));
    std::memset(leaf->pm, 0, sizeof(LeafPm));
    persist(leaf->pm, sizeof(LeafPm), TimeKind::FlushData);
    std::lock_guard<std::mutex> g(admin_lock_);
    leaves_.push_back(leaf);
    return leaf;
}

FpTree::Leaf *
FpTree::descend(uint64_t key) const
{
    if (!root_)
        return first_leaf_;
    const Inner *node = root_;
    while (true) {
        unsigned i = 0;
        while (i + 1 < node->count && key >= node->keys[i])
            ++i;
        void *child = node->children[i];
        if (node->leaf_children)
            return static_cast<Leaf *>(child);
        node = static_cast<Inner *>(child);
    }
}

unsigned
FpTree::findSlot(const LeafPm *pm, uint64_t key) const
{
    uint8_t fp = fingerprint(key);
    for (unsigned i = 0; i < kLeafCap; ++i) {
        if (!bitmapTest(&pm->bitmap, i))
            continue;
        if (pm->fp[i] == fp && pm->kv[i].key == key)
            return i;
    }
    return kLeafCap;
}

bool
FpTree::insertIntoLeaf(AllocThread *t, Leaf *leaf, uint64_t key,
                       uint64_t value)
{
    LeafPm *pm = leaf->pm;
    if (findSlot(pm, key) != kLeafCap)
        return false; // duplicate

    size_t slot = bitmapFindFirstZero(&pm->bitmap, kLeafCap);
    NV_ASSERT(slot < kLeafCap);

    pm->kv[slot].key = key;
    pm->fp[slot] = fingerprint(key);

    // The KV object is allocated with its offset published directly
    // into the (persistent) leaf slot — the nvalloc_malloc_to pattern.
    uint64_t val_off =
        alloc_.allocTo(t, kValueBytes, &pm->kv[slot].val_off);
    NV_ASSERT(val_off != 0);
    auto *obj = static_cast<uint64_t *>(dev_.at(val_off));
    obj[0] = key;
    obj[1] = value;
    persist(obj, 16, TimeKind::FlushData);

    persist(&pm->kv[slot], sizeof(LeafPm::Slot), TimeKind::FlushData);
    persist(&pm->fp[slot], 1, TimeKind::FlushData);

    // Bitmap write is the commit point.
    bitmapSet(&pm->bitmap, slot);
    persist(&pm->bitmap, 8, TimeKind::FlushData);

    size_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
FpTree::splitLeaf(AllocThread *t, Leaf *leaf, uint64_t key)
{
    LeafPm *pm = leaf->pm;

    // Median of the live keys.
    std::vector<std::pair<uint64_t, unsigned>> keys;
    keys.reserve(kLeafCap);
    for (unsigned i = 0; i < kLeafCap; ++i) {
        if (bitmapTest(&pm->bitmap, i))
            keys.emplace_back(pm->kv[i].key, i);
    }
    std::sort(keys.begin(), keys.end());
    uint64_t sep = keys[keys.size() / 2].first;

    Leaf *fresh = newLeaf(t);
    LeafPm *npm = fresh->pm;

    // Move the upper half: copy slots, then one sequential persist of
    // the whole new leaf, then clear the moved bits in the old leaf.
    uint64_t moved_mask = 0;
    unsigned nslot = 0;
    for (auto [k, i] : keys) {
        if (k < sep)
            continue;
        npm->kv[nslot] = pm->kv[i];
        npm->fp[nslot] = pm->fp[i];
        bitmapSet(&npm->bitmap, nslot);
        moved_mask |= uint64_t{1} << i;
        ++nslot;
    }
    npm->next_off = pm->next_off;
    persist(npm, sizeof(LeafPm), TimeKind::FlushData);

    pm->bitmap &= ~moved_mask;
    pm->next_off = fresh->pm_off;
    persist(&pm->bitmap, 16, TimeKind::FlushData);

    // Hook the new leaf into the parent chain.
    if (!root_) {
        auto *node = new Inner;
        node->leaf_children = true;
        node->count = 2;
        node->keys[0] = sep;
        node->children[0] = leaf;
        node->children[1] = fresh;
        {
            std::lock_guard<std::mutex> g(admin_lock_);
            inners_.push_back(node);
        }
        root_ = node;
        (void)key;
        return;
    }
    insertUpward(root_, leaf, sep, fresh);
}

/**
 * Recursive insertion of (sep, new_child) to the right of
 * `child_split` somewhere under `node`; splits inner nodes that
 * overflow. Runs under the exclusive tree lock.
 */
void
FpTree::insertUpward(Inner *node, void *child_split, uint64_t sep,
                     void *new_child)
{
    // Find the subtree containing child_split.
    unsigned i = 0;
    while (i + 1 < node->count && sep >= node->keys[i])
        ++i;

    if (!node->leaf_children &&
        static_cast<Inner *>(node->children[i]) != child_split) {
        Inner *child = static_cast<Inner *>(node->children[i]);
        insertUpward(child, child_split, sep, new_child);
        if (child->count <= kInnerCap)
            return;
        // Child overflowed by one: split it.
        auto *right = new Inner;
        right->leaf_children = child->leaf_children;
        unsigned half = child->count / 2;
        uint64_t up_key = child->keys[half - 1];
        right->count = child->count - half;
        for (unsigned j = 0; j < right->count; ++j)
            right->children[j] = child->children[half + j];
        for (unsigned j = 0; j + 1 < right->count; ++j)
            right->keys[j] = child->keys[half + j];
        child->count = half;
        {
            std::lock_guard<std::mutex> g(admin_lock_);
            inners_.push_back(right);
        }
        child_split = child;
        sep = up_key;
        new_child = right;
        // fall through to insert (sep, right) into node
        i = 0;
        while (i + 1 < node->count && sep >= node->keys[i])
            ++i;
    }

    // Insert new_child right after position i.
    NV_ASSERT(node->count <= kInnerCap);
    for (unsigned j = node->count; j > i + 1; --j) {
        node->children[j] = node->children[j - 1];
        if (j > 1)
            node->keys[j - 1] = node->keys[j - 2];
    }
    node->children[i + 1] = new_child;
    node->keys[i] = sep;
    ++node->count;

    if (node == root_ && node->count > kInnerCap) {
        // Split the root.
        auto *right = new Inner;
        right->leaf_children = node->leaf_children;
        unsigned half = node->count / 2;
        uint64_t up_key = node->keys[half - 1];
        right->count = node->count - half;
        for (unsigned j = 0; j < right->count; ++j)
            right->children[j] = node->children[half + j];
        for (unsigned j = 0; j + 1 < right->count; ++j)
            right->keys[j] = node->keys[half + j];
        node->count = half;

        auto *new_root = new Inner;
        new_root->leaf_children = false;
        new_root->count = 2;
        new_root->keys[0] = up_key;
        new_root->children[0] = node;
        new_root->children[1] = right;
        {
            std::lock_guard<std::mutex> g(admin_lock_);
            inners_.push_back(right);
            inners_.push_back(new_root);
        }
        root_ = new_root;
    }
}

bool
FpTree::insert(AllocThread *t, uint64_t key, uint64_t value)
{
    VClock::advance(kTraverseCpuNs, TimeKind::Other);
    {
        std::shared_lock<std::shared_mutex> sl(tree_lock_);
        Leaf *leaf = descend(key);
        std::lock_guard<std::mutex> lg(leaf->lock);
        dev_.chargeRead(false); // leaf probe misses the cache
        LeafPm *pm = leaf->pm;
        if (bitmapPopcount(&pm->bitmap, kLeafCap) < kLeafCap)
            return insertIntoLeaf(t, leaf, key, value);
    }

    // Leaf full: restart with the exclusive lock and split.
    std::unique_lock<std::shared_mutex> ul(tree_lock_);
    Leaf *leaf = descend(key);
    if (bitmapPopcount(&leaf->pm->bitmap, kLeafCap) == kLeafCap) {
        splitLeaf(t, leaf, key);
        leaf = descend(key);
    }
    return insertIntoLeaf(t, leaf, key, value);
}

bool
FpTree::erase(AllocThread *t, uint64_t key)
{
    VClock::advance(kTraverseCpuNs, TimeKind::Other);
    std::shared_lock<std::shared_mutex> sl(tree_lock_);
    Leaf *leaf = descend(key);
    std::lock_guard<std::mutex> lg(leaf->lock);
    dev_.chargeRead(false);

    LeafPm *pm = leaf->pm;
    unsigned slot = findSlot(pm, key);
    if (slot == kLeafCap)
        return false;

    // Free the KV object through its leaf slot (nvalloc_free_from),
    // then clear the validity bit — the commit point.
    alloc_.freeFrom(t, pm->kv[slot].val_off, &pm->kv[slot].val_off);
    bitmapClear(&pm->bitmap, slot);
    persist(&pm->bitmap, 8, TimeKind::FlushData);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
}

bool
FpTree::lookup(uint64_t key, uint64_t &value)
{
    VClock::advance(kTraverseCpuNs, TimeKind::Other);
    std::shared_lock<std::shared_mutex> sl(tree_lock_);
    Leaf *leaf = descend(key);
    std::lock_guard<std::mutex> lg(leaf->lock);
    dev_.chargeRead(false);

    unsigned slot = findSlot(leaf->pm, key);
    if (slot == kLeafCap)
        return false;
    auto *obj =
        static_cast<uint64_t *>(dev_.at(leaf->pm->kv[slot].val_off));
    dev_.chargeRead(false);
    value = obj[1];
    return true;
}

} // namespace nvalloc
