/**
 * @file
 * Telemetry counter taxonomy.
 *
 * Every runtime statistic the allocator exports has a stable slot in
 * this enum; the sharded per-thread counter array in telemetry.h is
 * indexed by it and the ctl registry (nvalloc/stats.cc) maps each slot
 * to a dotted introspection name. Keep the enum, statCounterName(),
 * and the ctl registration in sync when adding a counter.
 *
 * Per-size-class allocation/free counts and per-arena flush-class
 * counts live in separate shard arrays (they are families, not single
 * scalars); everything else is one monotonic uint64 per slot.
 *
 * Deliberately absent: totals the recording path can avoid
 * maintaining. stats.alloc.small / stats.free.small are the sum of
 * the per-class arrays, stats.tcache.hit is small allocs minus
 * TcacheMiss, stats.wal.commits sums the WAL rings' own sequence
 * counters, and the stats.flush.* family is summed out of the
 * per-arena attribution matrix (fences come from the LatencyModel's
 * own counter) — all computed at ctl-read time (nvalloc/stats.cc), so
 * the allocation fast path stores one counter, not four.
 */

#ifndef NVALLOC_TELEMETRY_COUNTERS_H
#define NVALLOC_TELEMETRY_COUNTERS_H

namespace nvalloc {

/** Scalar telemetry counters (all monotonic event counts). */
enum class StatCounter : unsigned
{
    // Allocation / free traffic (small-path totals are derived from
    // the per-class family at read time).
    AllocLarge = 0,  //!< large (extent) allocations served
    AllocFailed,     //!< allocations that returned 0 after slow path
    FreeLarge,       //!< large extents freed
    InvalidFree,     //!< frees rejected (double/foreign/null)
    LargeAllocBytes, //!< requested bytes of served large allocations
    LargeFreeBytes,  //!< extent bytes released by large frees

    // Thread-cache behaviour: only the (rare) miss is recorded; hits
    // are small allocs minus misses.
    TcacheMiss, //!< alloc that needed an arena refill

    // Slab lifecycle (paper §4.2 / §5.2).
    SlabCreated,
    SlabReleased,
    SlabMorph,
    ArenaRefill,

    // Bookkeeping log (paper §5.3).
    LogAppend,
    LogTombstone,
    LogFastGc,
    LogSlowGc,

    // Degradation state machine (status.h).
    ModeToReclaiming, //!< Normal -> Reclaiming transitions
    ModeToExhausted,  //!< Reclaiming -> Exhausted transitions
    ModeToNormal,     //!< returns to Normal from a degraded mode

    // Recovery.
    RecoveryRun, //!< recoverHeap() executions observed by this heap

    NumCounters,
};

constexpr unsigned kNumStatCounters =
    static_cast<unsigned>(StatCounter::NumCounters);

/** Arena dimension of the per-shard flush-class attribution array.
 *  Kept independent of nvalloc/layout.h (telemetry sits below the
 *  allocator layer); nvalloc static_asserts its kMaxArenas fits. */
constexpr unsigned kTelemetryMaxArenas = 64;

inline const char *
statCounterName(StatCounter c)
{
    switch (c) {
    case StatCounter::AllocLarge: return "alloc.large";
    case StatCounter::AllocFailed: return "alloc.failed";
    case StatCounter::FreeLarge: return "free.large";
    case StatCounter::InvalidFree: return "free.invalid";
    case StatCounter::LargeAllocBytes: return "alloc.large_bytes";
    case StatCounter::LargeFreeBytes: return "free.large_bytes";
    case StatCounter::TcacheMiss: return "tcache.miss";
    case StatCounter::SlabCreated: return "slab.created";
    case StatCounter::SlabReleased: return "slab.released";
    case StatCounter::SlabMorph: return "slab.morphs";
    case StatCounter::ArenaRefill: return "slab.refills";
    case StatCounter::LogAppend: return "log.appends";
    case StatCounter::LogTombstone: return "log.tombstones";
    case StatCounter::LogFastGc: return "log.fast_gc";
    case StatCounter::LogSlowGc: return "log.slow_gc";
    case StatCounter::ModeToReclaiming: return "mode.to_reclaiming";
    case StatCounter::ModeToExhausted: return "mode.to_exhausted";
    case StatCounter::ModeToNormal: return "mode.to_normal";
    case StatCounter::RecoveryRun: return "recovery.runs";
    case StatCounter::NumCounters: break;
    }
    return "?";
}

} // namespace nvalloc

#endif // NVALLOC_TELEMETRY_COUNTERS_H
