#include "telemetry/telemetry.h"

#include <algorithm>

namespace nvalloc {

namespace {

/** Thread-local cache entry: one per live Telemetry instance this
 *  thread has recorded into. */
struct TlRef
{
    const Telemetry *owner = nullptr;
    uint64_t generation = 0;
    Telemetry::Shard *shard = nullptr;
};

thread_local std::vector<TlRef> tl_refs;

// Generations are process-wide and never reused, so a Telemetry
// constructed at a destroyed instance's address cannot inherit its
// cached shards (same scheme as LatencyModel::ThreadState).
std::atomic<uint64_t> g_generation{1};

} // namespace

Telemetry::Telemetry()
    : generation_(g_generation.fetch_add(1, std::memory_order_relaxed))
{
    epoch_.store(generation_, std::memory_order_relaxed); // enabled
}

Telemetry::~Telemetry()
{
    // Uninstall from the model before the shards (and their cell rows)
    // go away; the epoch bump inside setSink makes every thread drop
    // its cached row before the next write.
    attachSink(nullptr);
}

void
Telemetry::attachSink(LatencyModel *model)
{
    // Only clear the old model's sink if it still points here — a
    // newer heap on the same device may have replaced us already, and
    // detaching must not clobber its installation.
    if (sink_model_ && sink_model_ != model &&
        sink_model_->sink() == this)
        sink_model_->setSink(nullptr);
    sink_model_ = model;
    if (model)
        model->setSink(this);
}

constinit thread_local Telemetry::FastRef Telemetry::tl_fast_{
    nullptr, 0, nullptr};

Telemetry::Shard *
Telemetry::shardSlow()
{
    if (epoch_.load(std::memory_order_relaxed) == 0)
        return nullptr; // disabled
    for (auto &ref : tl_refs) {
        if (ref.owner == this && ref.generation == generation_) {
            tl_fast_ = FastRef{this, generation_, ref.shard};
            return ref.shard;
        }
    }
    Shard *s = registerShard();
    tl_fast_ = FastRef{this, generation_, s};
    // Reuse a slot whose owner died (stale generation) before growing.
    for (auto &ref : tl_refs) {
        if (ref.owner == this) {
            ref = TlRef{this, generation_, s};
            return s;
        }
    }
    tl_refs.push_back(TlRef{this, generation_, s});
    return s;
}

Telemetry::Shard *
Telemetry::registerShard()
{
    std::lock_guard<std::mutex> g(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    Shard *s = shards_.back().get();
    s->id = static_cast<uint32_t>(shards_.size() - 1);
    if (tracing_.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> rg(s->ring_mutex);
        s->ring = std::make_unique<EventRing>(
            trace_cap_.load(std::memory_order_relaxed));
    }
    return s;
}

void
Telemetry::traceInto(Shard *s, TraceOp op, uint64_t arg,
                     uint8_t size_class, uint16_t outcome)
{
    if (!tracing_.load(std::memory_order_relaxed))
        return;
    TraceEvent e;
    e.ts = VClock::now();
    e.arg = arg;
    e.shard = s->id;
    e.op = op;
    e.size_class = size_class;
    e.outcome = outcome;
    std::lock_guard<std::mutex> g(s->ring_mutex);
    size_t cap = trace_cap_.load(std::memory_order_relaxed);
    if (!s->ring || s->ring->capacity() != cap)
        s->ring = std::make_unique<EventRing>(cap);
    s->ring->record(e);
}

std::atomic<uint64_t> *
Telemetry::flushCells()
{
#if NVALLOC_TELEMETRY
    Shard *s = hot();
    return s ? s->arena_flush[s->bound_arena] : nullptr;
#else
    return nullptr;
#endif
}

uint64_t
Telemetry::total(StatCounter ctr) const
{
    uint64_t sum = 0;
    std::lock_guard<std::mutex> g(mutex_);
    for (const auto &s : shards_)
        sum += s->c[idx(ctr)].load(std::memory_order_relaxed);
    return sum;
}

uint64_t
Telemetry::classAllocs(unsigned cls) const
{
    if (cls >= kNumSizeClasses)
        return 0;
    uint64_t sum = 0;
    std::lock_guard<std::mutex> g(mutex_);
    for (const auto &s : shards_)
        sum += s->cls_alloc[cls].load(std::memory_order_relaxed);
    return sum;
}

uint64_t
Telemetry::classFrees(unsigned cls) const
{
    if (cls >= kNumSizeClasses)
        return 0;
    uint64_t sum = 0;
    std::lock_guard<std::mutex> g(mutex_);
    for (const auto &s : shards_)
        sum += s->cls_free[cls].load(std::memory_order_relaxed);
    return sum;
}

uint64_t
Telemetry::arenaFlush(unsigned arena, FlushClass cls) const
{
    if (arena >= kTelemetryMaxArenas || cls >= FlushClass::NumClasses)
        return 0;
    uint64_t sum = 0;
    std::lock_guard<std::mutex> g(mutex_);
    for (const auto &s : shards_)
        sum += s->arena_flush[arena][static_cast<unsigned>(cls)].load(
            std::memory_order_relaxed);
    return sum;
}

uint64_t
Telemetry::smallAllocs() const
{
    uint64_t sum = 0;
    std::lock_guard<std::mutex> g(mutex_);
    for (const auto &s : shards_)
        for (unsigned c = 0; c < kNumSizeClasses; ++c)
            sum += s->cls_alloc[c].load(std::memory_order_relaxed);
    return sum;
}

uint64_t
Telemetry::smallFrees() const
{
    uint64_t sum = 0;
    std::lock_guard<std::mutex> g(mutex_);
    for (const auto &s : shards_)
        for (unsigned c = 0; c < kNumSizeClasses; ++c)
            sum += s->cls_free[c].load(std::memory_order_relaxed);
    return sum;
}

uint64_t
Telemetry::tcacheHits() const
{
    uint64_t allocs = 0, misses = 0;
    std::lock_guard<std::mutex> g(mutex_);
    for (const auto &s : shards_) {
        for (unsigned c = 0; c < kNumSizeClasses; ++c)
            allocs += s->cls_alloc[c].load(std::memory_order_relaxed);
        misses += s->c[idx(StatCounter::TcacheMiss)].load(
            std::memory_order_relaxed);
    }
    return allocs > misses ? allocs - misses : 0;
}

uint64_t
Telemetry::flushClassTotal(FlushClass cls) const
{
    if (cls >= FlushClass::NumClasses)
        return 0;
    unsigned c = static_cast<unsigned>(cls);
    uint64_t sum = 0;
    std::lock_guard<std::mutex> g(mutex_);
    for (const auto &s : shards_)
        for (unsigned a = 0; a < kTelemetryMaxArenas; ++a)
            sum += s->arena_flush[a][c].load(std::memory_order_relaxed);
    return sum;
}

uint64_t
Telemetry::flushTotal() const
{
    uint64_t sum = 0;
    std::lock_guard<std::mutex> g(mutex_);
    for (const auto &s : shards_)
        for (unsigned a = 0; a < kTelemetryMaxArenas; ++a)
            for (unsigned c = 0; c < kNumFlushClasses; ++c)
                sum +=
                    s->arena_flush[a][c].load(std::memory_order_relaxed);
    return sum;
}

uint64_t
Telemetry::smallAllocBytes() const
{
    uint64_t sum = 0;
    std::lock_guard<std::mutex> g(mutex_);
    for (const auto &s : shards_) {
        for (unsigned c = 0; c < kNumSizeClasses; ++c)
            sum += s->cls_alloc[c].load(std::memory_order_relaxed) *
                   classToSize(c);
    }
    return sum;
}

uint64_t
Telemetry::smallFreeBytes() const
{
    uint64_t sum = 0;
    std::lock_guard<std::mutex> g(mutex_);
    for (const auto &s : shards_) {
        for (unsigned c = 0; c < kNumSizeClasses; ++c)
            sum += s->cls_free[c].load(std::memory_order_relaxed) *
                   classToSize(c);
    }
    return sum;
}

unsigned
Telemetry::shardCount() const
{
    std::lock_guard<std::mutex> g(mutex_);
    return static_cast<unsigned>(shards_.size());
}

void
Telemetry::startTracing(size_t per_thread_capacity)
{
    if (per_thread_capacity == 0)
        per_thread_capacity = 1;
    std::lock_guard<std::mutex> g(mutex_);
    trace_cap_.store(per_thread_capacity, std::memory_order_relaxed);
    for (auto &s : shards_) {
        std::lock_guard<std::mutex> rg(s->ring_mutex);
        s->ring = std::make_unique<EventRing>(per_thread_capacity);
    }
    tracing_.store(true, std::memory_order_release);
}

void
Telemetry::stopTracing()
{
    tracing_.store(false, std::memory_order_relaxed);
}

uint64_t
Telemetry::drainEvents(std::vector<TraceEvent> &out) const
{
    uint64_t dropped = 0;
    size_t first = out.size();
    std::lock_guard<std::mutex> g(mutex_);
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> rg(s->ring_mutex);
        if (!s->ring)
            continue;
        s->ring->drainInto(out);
        dropped += s->ring->dropped();
    }
    std::stable_sort(out.begin() + first, out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.ts < b.ts;
                     });
    return dropped;
}

} // namespace nvalloc
