/**
 * @file
 * Dotted-name introspection registry (mallctl-style).
 *
 * Statistics are exported as a tree of dotted names —
 * "stats.arena.0.flush.reflush", "stats.tcache.hit" — each mapping to
 * a reader function that computes the value on demand. The registry
 * is built once (by nvalloc/stats.cc for a heap) and then served
 * read-only: lookups are a map find, the whole tree can be walked for
 * a JSON snapshot, and prefixes can be enumerated for CLI discovery.
 *
 * Names must form a proper tree: a name cannot be both a leaf and an
 * interior node ("stats.flush" and "stats.flush.total" cannot both be
 * registered). registerName asserts this in debug builds; json()
 * relies on it.
 */

#ifndef NVALLOC_TELEMETRY_CTL_H
#define NVALLOC_TELEMETRY_CTL_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace nvalloc {

enum class CtlStatus
{
    Ok = 0,
    UnknownName,
};

class CtlRegistry
{
  public:
    using Reader = std::function<uint64_t()>;

    /** Register a leaf. Later registrations of the same name win
     *  (callers build the registry single-threaded). */
    void registerName(std::string name, Reader reader);

    /** Look `name` up and read its current value. */
    CtlStatus read(std::string_view name, uint64_t &out) const;

    bool
    contains(std::string_view name) const
    {
        return entries_.find(name) != entries_.end();
    }

    size_t size() const { return entries_.size(); }

    /** All registered names with `prefix` (sorted); empty prefix
     *  yields everything. A prefix matches whole components only:
     *  "stats.flush" matches "stats.flush.total", not
     *  "stats.flushes". */
    std::vector<std::string> names(std::string_view prefix = {}) const;

    /** Visit every (name, current value), sorted by name. */
    void forEach(
        const std::function<void(const std::string &, uint64_t)> &fn)
        const;

    /**
     * Serialize the whole tree as nested JSON objects, splitting
     * names on dots: {"stats":{"flush":{"total":123,...},...}}.
     */
    std::string json() const;

  private:
    std::map<std::string, Reader, std::less<>> entries_;
};

} // namespace nvalloc

#endif // NVALLOC_TELEMETRY_CTL_H
