#include "telemetry/ctl.h"

#include <cassert>

#include "common/json.h"

namespace nvalloc {

namespace {

/** Split a dotted name into components (no empty components for
 *  well-formed names; a trailing/leading dot yields an empty one and
 *  is the registrant's bug). */
std::vector<std::string_view>
splitName(std::string_view name)
{
    std::vector<std::string_view> parts;
    size_t start = 0;
    while (true) {
        size_t dot = name.find('.', start);
        if (dot == std::string_view::npos) {
            parts.push_back(name.substr(start));
            return parts;
        }
        parts.push_back(name.substr(start, dot - start));
        start = dot + 1;
    }
}

} // namespace

void
CtlRegistry::registerName(std::string name, Reader reader)
{
#ifndef NDEBUG
    // Tree property: no registered name may be an ancestor or a
    // descendant of another. Entries adjacent in sort order are the
    // only candidates for a prefix relation.
    std::string as_interior = name + ".";
    auto it = entries_.lower_bound(name);
    if (it != entries_.end() && it->first != name)
        assert(it->first.compare(0, as_interior.size(), as_interior) !=
                   0 &&
               "new ctl name is an interior node of an existing leaf");
    if (it != entries_.begin()) {
        auto prev = std::prev(it);
        assert(name.compare(0, prev->first.size() + 1,
                            prev->first + ".") != 0 &&
               "new ctl name descends from an existing leaf");
    }
#endif
    entries_[std::move(name)] = std::move(reader);
}

CtlStatus
CtlRegistry::read(std::string_view name, uint64_t &out) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        return CtlStatus::UnknownName;
    out = it->second();
    return CtlStatus::Ok;
}

std::vector<std::string>
CtlRegistry::names(std::string_view prefix) const
{
    std::vector<std::string> out;
    if (prefix.empty()) {
        for (const auto &[name, reader] : entries_)
            out.push_back(name);
        return out;
    }
    for (auto it = entries_.lower_bound(prefix); it != entries_.end();
         ++it) {
        const std::string &name = it->first;
        if (name.compare(0, prefix.size(), prefix) != 0)
            break;
        // Whole-component match: the prefix must be the full name or
        // be followed by a dot.
        if (name.size() > prefix.size() && name[prefix.size()] != '.')
            continue;
        out.push_back(name);
    }
    return out;
}

void
CtlRegistry::forEach(
    const std::function<void(const std::string &, uint64_t)> &fn) const
{
    for (const auto &[name, reader] : entries_)
        fn(name, reader());
}

std::string
CtlRegistry::json() const
{
    JsonWriter w;
    w.beginObject();
    std::vector<std::string_view> open; // interior nodes currently open
    for (const auto &[name, reader] : entries_) {
        std::vector<std::string_view> parts = splitName(name);
        size_t interior = parts.size() - 1;
        size_t common = 0;
        while (common < open.size() && common < interior &&
               open[common] == parts[common])
            ++common;
        while (open.size() > common) {
            w.endObject();
            open.pop_back();
        }
        for (size_t i = common; i < interior; ++i) {
            w.key(parts[i]).beginObject();
            open.push_back(parts[i]);
        }
        w.key(parts[interior]).value(reader());
    }
    while (!open.empty()) {
        w.endObject();
        open.pop_back();
    }
    w.endObject();
    return w.take();
}

} // namespace nvalloc
