/**
 * @file
 * Sharded runtime statistics and event tracing.
 *
 * One Telemetry instance per heap. Every thread that touches the heap
 * lazily registers a private *shard* — a cache-line-friendly block of
 * relaxed atomic counters plus an optional trace ring — and all hot
 * -path recording is a handful of relaxed loads/stores into that
 * shard. Only the shard's owning thread ever writes it, so increments
 * need no read-modify-write; aggregation sums relaxed loads across
 * shards and never blocks recording threads (a thread takes the
 * registry lock once, on its first touch of the heap).
 *
 * Overhead control is layered:
 *  - compile time: build with -DNVALLOC_TELEMETRY=0 and every note*
 *    helper collapses to an empty inline;
 *  - run time: setEnabled(false) short-circuits each helper on one
 *    relaxed bool load;
 *  - tracing: the per-thread event rings cost nothing until
 *    startTracing() arms them;
 *  - derived totals: the hot path maintains only the per-class,
 *    per-arena, and rare-event counters; every total that can be
 *    summed out of those (alloc.small, tcache.hit, flush.*) is
 *    computed at read time instead of bumped per event.
 *
 * Telemetry implements FlushSink so a LatencyModel can feed it the
 * flush classification stream; flushes are attributed to the arena the
 * recording thread most recently bound (bindArena), which yields the
 * per-arena stats.arena.<i>.flush.* family. The sink protocol is
 * pull-based: the model asks flushCells() for the calling thread's
 * attribution row once per sink epoch and bumps it directly, so a
 * classified flush costs one relaxed increment, not a virtual call
 * (attachSink() remembers the model so setEnabled/bindArena can
 * invalidate the rows it cached).
 */

#ifndef NVALLOC_TELEMETRY_TELEMETRY_H
#define NVALLOC_TELEMETRY_TELEMETRY_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/size_classes.h"
#include "pm/latency_model.h"
#include "pm/vclock.h"
#include "telemetry/counters.h"
#include "telemetry/event_ring.h"

#ifndef NVALLOC_TELEMETRY
#define NVALLOC_TELEMETRY 1
#endif

namespace nvalloc {

class Telemetry final : public FlushSink
{
  public:
    Telemetry();
    ~Telemetry() override;

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    /** Runtime kill switch; counters freeze but keep their values.
     *  Implemented by parking epoch_ at 0 (which never matches a
     *  cached shard's generation), so the hot path pays no separate
     *  enabled check. Also drops the flush-attribution rows a wired
     *  model caches, so the sink stream freezes/resumes with the
     *  rest. */
    void
    setEnabled(bool on)
    {
        epoch_.store(on ? generation_ : 0, std::memory_order_relaxed);
        if (sink_model_)
            sink_model_->invalidateSinkCells();
    }

    bool
    enabled() const
    {
        return epoch_.load(std::memory_order_relaxed) != 0;
    }

    // ------------------------------------------------------------------
    // Hot-path recording (one shard lookup per call, relaxed stores).
    // ------------------------------------------------------------------

#if NVALLOC_TELEMETRY
    /** Small allocation served: one shard lookup for the whole record
     *  — class count plus the (rare) tcache miss. The small-alloc
     *  total and the tcache hit count are derived at read time, so
     *  the steady state is a single counter store. */
    void
    noteSmallAlloc(unsigned cls, bool tcache_hit, uint64_t off)
    {
        Shard *s = hot();
        if (!s)
            return;
        bump(s->cls_alloc[cls]);
        if (!tcache_hit)
            bump(s->c[idx(StatCounter::TcacheMiss)]);
        if (tracing_.load(std::memory_order_relaxed)) [[unlikely]]
            traceInto(s, TraceOp::Alloc, off,
                      static_cast<uint8_t>(cls), 0);
    }

    void
    noteSmallFree(unsigned cls, uint64_t off)
    {
        Shard *s = hot();
        if (!s)
            return;
        bump(s->cls_free[cls]);
        if (tracing_.load(std::memory_order_relaxed)) [[unlikely]]
            traceInto(s, TraceOp::Free, off,
                      static_cast<uint8_t>(cls), 0);
    }

    void
    noteLargeAlloc(uint64_t bytes, uint64_t off)
    {
        Shard *s = hot();
        if (!s)
            return;
        bump(s->c[idx(StatCounter::AllocLarge)]);
        bump(s->c[idx(StatCounter::LargeAllocBytes)], bytes);
        if (tracing_.load(std::memory_order_relaxed)) [[unlikely]]
            traceInto(s, TraceOp::Alloc, off, 0xff, 0);
    }

    void
    noteLargeFree(uint64_t bytes, uint64_t off)
    {
        Shard *s = hot();
        if (!s)
            return;
        bump(s->c[idx(StatCounter::FreeLarge)]);
        bump(s->c[idx(StatCounter::LargeFreeBytes)], bytes);
        if (tracing_.load(std::memory_order_relaxed)) [[unlikely]]
            traceInto(s, TraceOp::Free, off, 0xff, 0);
    }

    void
    noteAllocFailed(uint16_t status)
    {
        Shard *s = hot();
        if (!s)
            return;
        bump(s->c[idx(StatCounter::AllocFailed)]);
        if (tracing_.load(std::memory_order_relaxed)) [[unlikely]]
            traceInto(s, TraceOp::AllocFail, 0, 0xff, status);
    }

    void
    noteInvalidFree(uint64_t off, uint16_t status)
    {
        Shard *s = hot();
        if (!s)
            return;
        bump(s->c[idx(StatCounter::InvalidFree)]);
        if (tracing_.load(std::memory_order_relaxed)) [[unlikely]]
            traceInto(s, TraceOp::InvalidFree, off, 0xff, status);
    }

    /** Bump a scalar counter by `n`. */
    void
    add(StatCounter ctr, uint64_t n = 1)
    {
        if (Shard *s = hot())
            bump(s->c[idx(ctr)], n);
    }

    /** Record a trace event with no counter attached (refills, GC,
     *  mode changes, recovery). No-op unless tracing is armed. */
    void
    event(TraceOp op, uint64_t arg, uint8_t size_class = 0xff,
          uint16_t outcome = 0)
    {
        if (!tracing_.load(std::memory_order_relaxed))
            return;
        if (Shard *s = hot())
            traceInto(s, op, arg, size_class, outcome);
    }

    /**
     * Attribute this thread's subsequent flush classes to `arena`
     * (index into stats.arena.<i>.flush.*). Out-of-range indices fall
     * into the last bucket rather than being dropped. Invalidates the
     * attribution row any wired model cached, so the next flush lands
     * in the new arena's cells.
     */
    void
    bindArena(unsigned arena)
    {
        if (Shard *s = hot())
            s->bound_arena = arena < kTelemetryMaxArenas
                                 ? arena
                                 : kTelemetryMaxArenas - 1;
        if (sink_model_)
            sink_model_->invalidateSinkCells();
    }
#else  // !NVALLOC_TELEMETRY
    void noteSmallAlloc(unsigned, bool, uint64_t) {}
    void noteSmallFree(unsigned, uint64_t) {}
    void noteLargeAlloc(uint64_t, uint64_t) {}
    void noteLargeFree(uint64_t, uint64_t) {}
    void noteAllocFailed(uint16_t) {}
    void noteInvalidFree(uint64_t, uint16_t) {}
    void add(StatCounter, uint64_t = 1) {}
    void event(TraceOp, uint64_t, uint8_t = 0xff, uint16_t = 0) {}
    void bindArena(unsigned) {}
#endif // NVALLOC_TELEMETRY

    /**
     * Install this instance as `model`'s flush sink, replacing any
     * model wired earlier; nullptr uninstalls. Remembering the model
     * lets setEnabled/bindArena drop the per-thread attribution rows
     * it caches (see FlushSink in pm/latency_model.h).
     */
    void attachSink(LatencyModel *model);

    /** FlushSink: the calling thread's arena-attributed flush-class
     *  cell row (&shard->arena_flush[bound_arena][0]), or nullptr when
     *  telemetry is disabled or compiled out. */
    std::atomic<uint64_t> *flushCells() override;

    // ------------------------------------------------------------------
    // Aggregated reads (sum of relaxed loads over all shards).
    // ------------------------------------------------------------------

    uint64_t total(StatCounter ctr) const;
    uint64_t classAllocs(unsigned cls) const;
    uint64_t classFrees(unsigned cls) const;
    uint64_t arenaFlush(unsigned arena, FlushClass cls) const;

    /** Derived totals the hot path does not maintain as scalars:
     *  small allocs/frees sum the per-class family, tcache hits are
     *  small allocs minus recorded misses, and the flush totals sum
     *  the per-arena attribution matrix. */
    uint64_t smallAllocs() const;
    uint64_t smallFrees() const;
    uint64_t tcacheHits() const;
    uint64_t flushClassTotal(FlushClass cls) const;
    uint64_t flushTotal() const;

    /** Bytes ever handed out / taken back through the small path
     *  (computed from the per-class counts at read time, so the hot
     *  path never does a multiply). */
    uint64_t smallAllocBytes() const;
    uint64_t smallFreeBytes() const;

    /** Shards registered so far (threads that touched the heap). */
    unsigned shardCount() const;

    // ------------------------------------------------------------------
    // Event tracing.
    // ------------------------------------------------------------------

    /**
     * Arm every shard (current and future) with a ring of
     * `per_thread_capacity` events. Restarting while armed discards
     * buffered events and applies the new capacity.
     */
    void startTracing(size_t per_thread_capacity);

    /** Disarm; buffered events survive until drained or restarted. */
    void stopTracing();

    bool
    tracingEvents() const
    {
        return tracing_.load(std::memory_order_relaxed);
    }

    /**
     * Append all buffered events, merged across shards and sorted by
     * timestamp, to `out`; returns the number of events lost to ring
     * wraparound. Call after stopTracing() for a consistent dump.
     */
    uint64_t drainEvents(std::vector<TraceEvent> &out) const;

    /**
     * This thread's virtual-time attribution buckets. A thin veneer
     * over VClock so harnesses take their Fig. 11 breakdowns from the
     * telemetry layer instead of reaching into the pm layer.
     */
    static std::array<uint64_t, kNumTimeKinds>
    threadTimeBreakdown()
    {
        return VClock::snapshot();
    }

    /** Per-thread counter block. Public only so the .cc's thread-local
     *  cache can name it; not part of the API surface. */
    struct Shard
    {
        std::atomic<uint64_t> c[kNumStatCounters] = {};
        std::atomic<uint64_t> cls_alloc[kNumSizeClasses] = {};
        std::atomic<uint64_t> cls_free[kNumSizeClasses] = {};
        std::atomic<uint64_t>
            arena_flush[kTelemetryMaxArenas][kNumFlushClasses] = {};

        uint32_t id = 0;            //!< registration index
        unsigned bound_arena = 0;   //!< flush attribution target

        // Trace ring; guarded by ring_mutex (cold unless tracing).
        std::mutex ring_mutex;
        std::unique_ptr<EventRing> ring;
    };

  private:
    static constexpr unsigned
    idx(StatCounter ctr)
    {
        return static_cast<unsigned>(ctr);
    }

    /** Owner-thread increment: the shard is private to this thread,
     *  so a relaxed load+store beats a fetch_add. */
    static void
    bump(std::atomic<uint64_t> &a, uint64_t n = 1)
    {
        a.store(a.load(std::memory_order_relaxed) + n,
                std::memory_order_relaxed);
    }

    /** Single-entry thread-local shard cache. POD with constant
     *  initialization, so the compiler emits a direct TLS access with
     *  no guard check — this is what keeps the per-record cost at a
     *  couple of compares. Caches the most recently used instance;
     *  alternating between heaps on one thread falls back to the
     *  (short) per-thread registry scan in shardSlow(). */
    struct FastRef
    {
        const Telemetry *owner;
        uint64_t generation;
        Shard *shard;
    };
    static thread_local FastRef tl_fast_;

    /** Enabled check + this thread's shard, or nullptr when off. The
     *  two are one comparison: epoch_ equals generation_ while
     *  enabled and 0 while disabled, and a cached entry always holds
     *  generation_ (nonzero), so a single match proves both "right
     *  instance" and "enabled". */
    Shard *
    hot()
    {
        if (tl_fast_.owner == this &&
            tl_fast_.generation ==
                epoch_.load(std::memory_order_relaxed))
            return tl_fast_.shard;
        return shardSlow();
    }

    Shard *shardSlow();
    Shard *registerShard();
    void traceInto(Shard *s, TraceOp op, uint64_t arg,
                   uint8_t size_class, uint16_t outcome);

    //! generation_ while enabled, 0 while disabled (see setEnabled).
    std::atomic<uint64_t> epoch_{0};
    std::atomic<bool> tracing_{false};

    //! The model this instance is installed on as flush sink (via
    //! attachSink), kept so state changes that move attribution
    //! targets can invalidate the cell rows the model cached.
    LatencyModel *sink_model_ = nullptr;

    // Shard registry. The mutex serializes registration and trace
    // arm/disarm/drain; recording threads never take it after their
    // first touch. unique_ptr keeps shard addresses stable across
    // vector growth.
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Shard>> shards_;

    //! Ring capacity while tracing; atomic so traceInto can size a
    //! late-created ring without touching mutex_.
    std::atomic<size_t> trace_cap_{0};

    // Identity of this instance for the thread-local shard cache;
    // process-wide unique so a recycled address can never revive a
    // stale cached shard (same pattern as LatencyModel).
    uint64_t generation_ = 0;
};

} // namespace nvalloc

#endif // NVALLOC_TELEMETRY_TELEMETRY_H
