/**
 * @file
 * Fixed-capacity binary event ring for allocation tracing.
 *
 * One ring per telemetry shard (i.e. per thread): recording is a plain
 * store into a preallocated slot plus a counter bump, so tracing an
 * allocation storm perturbs the traced workload as little as possible.
 * The ring overwrites its oldest entry on wraparound and remembers how
 * many events were lost, so a drained trace is always honest about
 * truncation.
 */

#ifndef NVALLOC_TELEMETRY_EVENT_RING_H
#define NVALLOC_TELEMETRY_EVENT_RING_H

#include <cstdint>
#include <vector>

namespace nvalloc {

/** What happened; `outcome` carries the NvStatus (or 0) of the op. */
enum class TraceOp : uint8_t
{
    Alloc = 1,   //!< successful allocation; arg = block offset
    AllocFail,   //!< allocation returned 0; outcome = NvStatus
    Free,        //!< successful free; arg = block offset
    InvalidFree, //!< rejected free; arg = offending offset
    Refill,      //!< arena refill; arg = blocks added
    Morph,       //!< slab morph; arg = slab offset
    Reclaim,     //!< exhaustion slow path entered
    ModeChange,  //!< degradation transition; arg = new HeapMode
    LogGc,       //!< bookkeeping-log GC; arg = 0 fast, 1 slow
    Recovery,    //!< recoverHeap ran; arg = virtual ns spent
    MaintSlice,  //!< maintenance slice ran; arg = virtual ns spent
    MaintWake,   //!< maintenance woken; arg = MaintWakeReason
    Corruption,  //!< hardening detection; arg = offending offset,
                 //!< outcome = CorruptionKind
    TxBegin,     //!< transaction opened; arg = tx id
    TxCommit,    //!< transaction committed; arg = tx id
    TxAbort,     //!< transaction aborted; arg = tx id
};

inline const char *
traceOpName(TraceOp op)
{
    switch (op) {
    case TraceOp::Alloc: return "alloc";
    case TraceOp::AllocFail: return "alloc-fail";
    case TraceOp::Free: return "free";
    case TraceOp::InvalidFree: return "invalid-free";
    case TraceOp::Refill: return "refill";
    case TraceOp::Morph: return "morph";
    case TraceOp::Reclaim: return "reclaim";
    case TraceOp::ModeChange: return "mode-change";
    case TraceOp::LogGc: return "log-gc";
    case TraceOp::Recovery: return "recovery";
    case TraceOp::MaintSlice: return "maint-slice";
    case TraceOp::MaintWake: return "maint-wake";
    case TraceOp::Corruption: return "corruption";
    case TraceOp::TxBegin: return "tx-begin";
    case TraceOp::TxCommit: return "tx-commit";
    case TraceOp::TxAbort: return "tx-abort";
    }
    return "?";
}

/** One traced event; 24 bytes, no pointers (safe to copy around). */
struct TraceEvent
{
    uint64_t ts = 0;  //!< VClock timestamp of the recording thread
    uint64_t arg = 0; //!< op-specific payload (see TraceOp)
    uint32_t shard = 0;      //!< recording shard (thread) id
    TraceOp op = TraceOp::Alloc;
    uint8_t size_class = 0xff; //!< size class, 0xff = none/large
    uint16_t outcome = 0;      //!< NvStatus of the op (0 = ok)
};

class EventRing
{
  public:
    explicit EventRing(size_t capacity)
        : buf_(capacity ? capacity : 1)
    {
    }

    size_t capacity() const { return buf_.size(); }

    void
    record(const TraceEvent &e)
    {
        buf_[head_ % buf_.size()] = e;
        ++head_;
    }

    /** Events ever recorded (monotonic; may exceed capacity). */
    uint64_t recorded() const { return head_; }

    /** Events lost to wraparound so far. */
    uint64_t
    dropped() const
    {
        return head_ > buf_.size() ? head_ - buf_.size() : 0;
    }

    /** Copy the surviving events, oldest first. */
    void
    drainInto(std::vector<TraceEvent> &out) const
    {
        uint64_t n = head_ < buf_.size() ? head_ : buf_.size();
        uint64_t first = head_ - n;
        for (uint64_t i = 0; i < n; ++i)
            out.push_back(buf_[(first + i) % buf_.size()]);
    }

    void
    reset()
    {
        head_ = 0;
    }

  private:
    std::vector<TraceEvent> buf_;
    uint64_t head_ = 0;
};

} // namespace nvalloc

#endif // NVALLOC_TELEMETRY_EVENT_RING_H
