/**
 * @file
 * Benchmark harness: allocator factory, virtual-time thread runner,
 * and the table/series printers used by every bench binary.
 *
 * Throughput methodology: each worker thread starts its virtual clock
 * at the latest virtual time any earlier worker of the same run
 * context reached (so virtual-time locks and media slots carry over),
 * executes the workload, and reports its elapsed virtual nanoseconds.
 * A phase's makespan is the maximum elapsed time across its workers;
 * throughput is ops / makespan. This reproduces the paper's scaling
 * curves deterministically on any host (see DESIGN.md §1).
 */

#ifndef NVALLOC_WORKLOADS_HARNESS_H
#define NVALLOC_WORKLOADS_HARNESS_H

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/allocator_iface.h"
#include "nvalloc/config.h"
#include "pm/vclock.h"

namespace nvalloc {

/** Allocators under evaluation, by paper name. */
enum class AllocKind
{
    Pmdk,
    NvmMalloc,
    PAllocator,
    Makalu,
    Ralloc,
    NvAllocLog,
    NvAllocGc,
};

/**
 * The paper's two comparison groups (§6.1). When the environment
 * variable NVALLOC_BENCH_ALLOCATORS is set to a comma-separated list
 * of registry names (e.g. "pmdk,nvalloc"), each group is filtered to
 * the named allocators so run_benches.sh can sweep subsets.
 */
std::vector<AllocKind> strongGroup();
std::vector<AllocKind> weakGroup();

const char *allocName(AllocKind kind);

/** Registry name (PmAllocatorRegistry key) for a paper AllocKind. */
const char *allocRegistryName(AllocKind kind);

/** Device size used by the benches. */
std::unique_ptr<PmDevice> makeBenchDevice(size_t size = size_t{4} << 30);

/** Thin wrapper over PmAllocatorRegistry::make(allocRegistryName(kind)):
 *  MakeOptions lives in allocator_iface.h next to the registry. */
std::unique_ptr<PmAllocator> makeAllocator(AllocKind kind, PmDevice &dev,
                                           const MakeOptions &opts = {});

/** Carries virtual time across phases of one allocator's lifetime. */
class VtimeEpoch
{
  public:
    uint64_t base() const { return base_.load(); }

    void
    observe(uint64_t t)
    {
        uint64_t cur = base_.load(std::memory_order_relaxed);
        while (t > cur &&
               !base_.compare_exchange_weak(cur, t)) {
        }
    }

  private:
    std::atomic<uint64_t> base_{0};
};

struct RunResult
{
    uint64_t total_ops = 0;
    uint64_t makespan_ns = 0;
    /** allocTo calls that returned 0 (exhaustion); see noteFailedAlloc. */
    uint64_t failed_allocs = 0;
    std::array<uint64_t, kNumTimeKinds> breakdown{};

    double
    mops() const
    {
        return makespan_ns ? double(total_ops) * 1e3 / double(makespan_ns)
                           : 0.0;
    }
};

/**
 * Run `threads` workers; each body returns its operation count. The
 * harness manages clock continuity and aggregates the per-kind
 * breakdown.
 */
RunResult runWorkers(unsigned threads, VtimeEpoch &epoch,
                     const std::function<uint64_t(unsigned tid)> &body);

/**
 * Record one allocTo that returned 0. Workload bodies call this on
 * every failed allocation instead of aborting; runWorkers folds the
 * count accumulated during the run into RunResult.failed_allocs.
 * Thread safe.
 */
void noteFailedAlloc();

/** Thread counts swept by the paper's figures. */
std::vector<unsigned> benchThreadCounts(bool quick);

/** Wider ladder for the small-path figures (fig 9): extends the sweep
 *  to 64 and 128 threads, where the lock-free fast path separates
 *  from the mutex designs. 128 is the WAL-slot ceiling
 *  (kMaxThreads). */
std::vector<unsigned> benchThreadCountsSmallPath(bool quick);

/** Parse --quick / --threads=N style bench arguments. */
struct BenchArgs
{
    bool quick = false;
    uint64_t seed = 42;

    static BenchArgs parse(int argc, char **argv);
};

/** Print one series row: "<name> t1 v1 t2 v2 ..." (figure format). */
void printSeriesHeader(const char *figure, const char *ylabel,
                       const std::vector<unsigned> &threads);
void printSeriesRow(const char *name,
                    const std::vector<double> &values);

/**
 * Machine-readable figure emission: when NVALLOC_BENCH_JSON_DIR is
 * set, every printSeriesHeader/printSeriesRow pair also records its
 * points, and the accumulated document is written to
 * $NVALLOC_BENCH_JSON_DIR/BENCH_<prog>.json at process exit (<prog> is
 * the basename of argv[0], stamped by BenchArgs::parse). Figures with
 * bespoke tables record through benchJsonPoint directly. The virtual
 * clock makes single-thread numbers exactly reproducible for a given
 * seed (multi-thread rows jitter a few percent with host scheduling),
 * so CI compares whole runs against a committed baseline
 * (tools/bench_compare.py) instead of eyeballing throughput tables.
 */
void benchJsonPoint(const std::string &section,
                    const std::string &series, const std::string &x,
                    double value);

/** Override the <prog> stamped by BenchArgs::parse, for binaries
 *  whose figure name differs from their executable name (the YCSB
 *  driver is nvalloc_ycsb but emits BENCH_ycsb.json). No-op when
 *  NVALLOC_BENCH_JSON_DIR is unset. Call after BenchArgs::parse. */
void benchJsonSetProgram(const char *prog);

/** The NVALLOC_BENCH_ALLOCATORS filter by registry name, for bench
 *  binaries that are not organised around AllocKind groups: true when
 *  the variable is unset/empty or lists `registry_name`. */
bool benchAllocatorEnabled(const char *registry_name);

} // namespace nvalloc

#endif // NVALLOC_WORKLOADS_HARNESS_H
