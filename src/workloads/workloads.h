/**
 * @file
 * The six benchmark workloads of the paper's evaluation (§6.2, §6.4),
 * reimplemented against the PmAllocator interface.
 *
 * Parameters are scaled down from the paper (which ran minutes-long
 * traces on a 40-core machine) but keep every structural property:
 * allocation-size distributions, free patterns, thread interaction
 * (producer/consumer pairs, cross-thread frees, thread churn), and
 * the Fragbench phase structure of Table 1.
 */

#ifndef NVALLOC_WORKLOADS_WORKLOADS_H
#define NVALLOC_WORKLOADS_WORKLOADS_H

#include <cstdint>
#include <functional>

#include "workloads/harness.h"

namespace nvalloc {

/**
 * Threadtest [Hoard]: each thread runs `iters` iterations; per
 * iteration it allocates `objs` objects of `size` bytes and then
 * frees all of them. Fixed-size allocation, no cross-thread frees.
 */
RunResult threadtest(PmAllocator &alloc, VtimeEpoch &epoch,
                     unsigned threads, unsigned iters, unsigned objs,
                     size_t size);

/**
 * Prod-con [Hoard/Schneider]: threads form pairs; the producer
 * allocates `objs_per_pair` objects of `size` bytes, the consumer
 * frees them (every free is a cross-thread free). With one thread the
 * single thread plays both roles.
 */
RunResult prodcon(PmAllocator &alloc, VtimeEpoch &epoch,
                  unsigned threads, uint64_t objs_per_pair, size_t size);

/**
 * Shbench [MicroQuill]: a stress test mixing allocation sizes from
 * 64 B to 1000 B where smaller objects are allocated and freed more
 * frequently, with random lifetimes.
 */
RunResult shbench(PmAllocator &alloc, VtimeEpoch &epoch,
                  unsigned threads, unsigned iters, uint64_t seed);

/**
 * Larson [Larson & Krishnan]: each thread owns a slot array of live
 * objects and repeatedly frees a random slot and reallocates it with
 * a random size in [min_size, max_size]. After each round the thread
 * "hands over" to a fresh thread (modeled by re-attaching), which
 * inherits the remaining objects — so frees hit objects allocated by
 * a predecessor.
 */
RunResult larson(PmAllocator &alloc, VtimeEpoch &epoch, unsigned threads,
                 size_t min_size, size_t max_size, unsigned slots,
                 unsigned rounds, unsigned ops_per_round, uint64_t seed);

/**
 * DBMStest [Durner et al.]: each thread per iteration allocates `objs`
 * large objects with sizes following a (truncated) Poisson
 * distribution between 32 KB and 512 KB, then deletes a random 90% of
 * them; the survivors accumulate across iterations.
 */
RunResult dbmstest(PmAllocator &alloc, VtimeEpoch &epoch,
                   unsigned threads, unsigned iters, unsigned objs,
                   uint64_t seed);

// ---- Fragbench (Table 1, §3.2, §6.4) --------------------------------

struct FragPhaseDist
{
    size_t lo = 0; //!< uniform size range; lo == hi means fixed
    size_t hi = 0;
};

struct FragWorkload
{
    const char *name;
    FragPhaseDist before;
    double delete_ratio; //!< fraction deleted in the Delete phase
    FragPhaseDist after;
};

/** W1-W4 of Table 1. */
const FragWorkload *fragWorkloads();
constexpr unsigned kNumFragWorkloads = 4;

struct FragResult
{
    size_t peak_bytes = 0;     //!< peak committed PM during the run
    size_t live_bytes = 0;     //!< live data at the end (~live cap)
    RunResult run;
};

/**
 * Run one Fragbench workload: Before allocates `total_alloc` bytes of
 * objects from the before-distribution keeping at most `live_cap`
 * bytes live (random deletes); Delete drops `delete_ratio` of the
 * live objects; After repeats the allocation with the
 * after-distribution (paper: 5 GB allocated, 1 GB live; scaled).
 */
FragResult fragbench(PmAllocator &alloc, VtimeEpoch &epoch,
                     const FragWorkload &w, size_t total_alloc,
                     size_t live_cap, uint64_t seed,
                     const std::function<void()> &at_peak = nullptr);

} // namespace nvalloc

#endif // NVALLOC_WORKLOADS_WORKLOADS_H
