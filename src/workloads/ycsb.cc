#include "workloads/ycsb.h"

#include <cmath>
#include <cstdio>

namespace nvalloc {

namespace {

uint64_t
fnv64(uint64_t x)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int i = 0; i < 8; ++i) {
        h ^= x & 0xff;
        h *= 0x100000001b3ULL;
        x >>= 8;
    }
    return h;
}

/** Value length for a *load-phase* record: derived from the id alone
 *  so the crash sweep can recompute it without an oracle entry. */
uint32_t
loadValueLen(const YcsbSpec &s, uint64_t id)
{
    if (s.large_value_every &&
        id % s.large_value_every == s.large_value_every - 1)
        return s.large_value_size;
    uint32_t range = s.value_max > s.value_min
                         ? s.value_max - s.value_min + 1
                         : 1;
    return s.value_min + uint32_t(fnv64(id) % range);
}

struct OpCounters
{
    std::atomic<uint64_t> reads{0}, updates{0}, inserts{0}, scans{0},
        rmws{0}, not_found{0}, errors{0};
};

} // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t items, double theta)
    : items_(items ? items : 1), theta_(theta)
{
    zetan_ = 0.0;
    for (uint64_t i = 1; i <= items_; ++i)
        zetan_ += 1.0 / std::pow(double(i), theta_);
    zeta2_ = 1.0 + 1.0 / std::pow(2.0, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / double(items_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
}

uint64_t
ZipfianGenerator::next(Rng &rng) const
{
    double u = rng.nextDouble();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    uint64_t rank = uint64_t(
        double(items_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= items_ ? items_ - 1 : rank;
}

const char *
ycsbWorkloadName(YcsbWorkload w)
{
    switch (w) {
    case YcsbWorkload::A: return "A";
    case YcsbWorkload::B: return "B";
    case YcsbWorkload::C: return "C";
    case YcsbWorkload::D: return "D";
    case YcsbWorkload::E: return "E";
    case YcsbWorkload::F: return "F";
    }
    return "?";
}

std::string
ycsbKey(uint64_t id)
{
    char buf[32];
    int n = std::snprintf(buf, sizeof(buf), "user%llu",
                          (unsigned long long)fnv64(id));
    return std::string(buf, size_t(n));
}

std::string
ycsbValue(uint64_t id, uint64_t version, uint32_t len)
{
    std::string v(len, '\0');
    uint64_t x = fnv64(id * 1000003 + version);
    for (uint32_t i = 0; i < len; ++i) {
        if ((i & 7) == 0) {
            // SplitMix64 step: cheap, and each 8-byte run differs.
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            x = z ^ (z >> 31);
        }
        v[i] = char((x >> ((i & 7) * 8)) & 0xff);
    }
    return v;
}

YcsbResult
ycsbLoad(KvStore &store, const YcsbSpec &spec, VtimeEpoch &epoch)
{
    YcsbResult res;
    OpCounters c;
    NvAlloc &heap = store.heap();
    res.load = runWorkers(spec.threads, epoch, [&](unsigned tid) {
        ThreadCtx *ctx = heap.attachThread();
        if (!ctx)
            return uint64_t(0);
        uint64_t ops = 0;
        for (uint64_t id = tid; id < spec.record_count;
             id += spec.threads) {
            KvStatus s = store.put(
                *ctx, ycsbKey(id),
                ycsbValue(id, 0, loadValueLen(spec, id)));
            if (s == KvStatus::Ok)
                ++ops;
            else
                c.errors.fetch_add(1, std::memory_order_relaxed);
        }
        heap.detachThread(ctx);
        return ops;
    });
    res.inserts = res.load.total_ops;
    res.errors = c.errors.load();
    return res;
}

YcsbResult
ycsbRun(KvStore &store, const YcsbSpec &spec, VtimeEpoch &epoch,
        std::atomic<uint64_t> &inserted)
{
    YcsbResult res;
    OpCounters c;
    NvAlloc &heap = store.heap();
    // Shared, immutable after construction; next() takes the caller's
    // Rng so the per-thread streams stay independent and seeded.
    ZipfianGenerator zipf(spec.record_count, spec.theta);

    auto body = [&](unsigned tid) -> uint64_t {
        ThreadCtx *ctx = heap.attachThread();
        if (!ctx)
            return uint64_t(0);
        Rng rng(spec.seed * 0x9e3779b9ULL + 0x1000 + tid);
        uint64_t ops = spec.op_count / spec.threads +
                       (tid < spec.op_count % spec.threads ? 1 : 0);
        uint32_t vrange = spec.value_max > spec.value_min
                              ? spec.value_max - spec.value_min + 1
                              : 1;
        std::string val;
        std::vector<std::pair<std::string, std::string>> scratch;

        auto pick = [&]() -> uint64_t {
            uint64_t base = inserted.load(std::memory_order_relaxed);
            uint64_t rank = spec.zipfian ? zipf.next(rng)
                                         : rng.nextBounded(
                                               spec.record_count);
            if (spec.workload == YcsbWorkload::D)
                // Read-latest: rank 0 is the newest inserted id.
                return base - 1 - (rank % base);
            return rank;
        };
        auto valueLen = [&]() -> uint32_t {
            if (spec.large_value_every &&
                rng.nextBounded(spec.large_value_every) == 0)
                return spec.large_value_size;
            return spec.value_min + uint32_t(rng.nextBounded(vrange));
        };
        auto note = [&](KvStatus s, std::atomic<uint64_t> &kind) {
            if (s == KvStatus::Ok)
                kind.fetch_add(1, std::memory_order_relaxed);
            else if (s == KvStatus::NotFound)
                c.not_found.fetch_add(1, std::memory_order_relaxed);
            else
                c.errors.fetch_add(1, std::memory_order_relaxed);
        };

        for (uint64_t i = 0; i < ops; ++i) {
            unsigned r = unsigned(rng.nextBounded(100));
            YcsbWorkload w = spec.workload;
            if (w == YcsbWorkload::C ||
                ((w == YcsbWorkload::A || w == YcsbWorkload::F) &&
                 r < 50) ||
                ((w == YcsbWorkload::B || w == YcsbWorkload::D) &&
                 r < 95)) {
                note(store.get(ycsbKey(pick()), &val), c.reads);
            } else if (w == YcsbWorkload::A ||
                       w == YcsbWorkload::B) {
                uint64_t id = pick();
                note(store.put(*ctx, ycsbKey(id),
                               ycsbValue(id, rng.next() & 0xffff,
                                         valueLen())),
                     c.updates);
            } else if (w == YcsbWorkload::E && r < 95) {
                unsigned len =
                    1 + unsigned(rng.nextBounded(spec.scan_len));
                note(store.scan(ycsbKey(pick()), len, &scratch),
                     c.scans);
            } else if (w == YcsbWorkload::D ||
                       w == YcsbWorkload::E) {
                uint64_t id = inserted.fetch_add(
                    1, std::memory_order_relaxed);
                note(store.put(*ctx, ycsbKey(id),
                               ycsbValue(id, 0, valueLen())),
                     c.inserts);
            } else { // F: read-modify-write
                uint64_t id = pick();
                uint64_t version = rng.next() & 0xffff;
                uint32_t len = valueLen();
                note(store.rmw(*ctx, ycsbKey(id),
                               [&](std::string_view) {
                                   return ycsbValue(id, version,
                                                    len);
                               }),
                     c.rmws);
            }
        }
        heap.detachThread(ctx);
        return ops;
    };

    res.run = runWorkers(spec.threads, epoch, body);
    res.reads = c.reads.load();
    res.updates = c.updates.load();
    res.inserts = c.inserts.load();
    res.scans = c.scans.load();
    res.rmws = c.rmws.load();
    res.not_found = c.not_found.load();
    res.errors = c.errors.load();
    return res;
}

} // namespace nvalloc
