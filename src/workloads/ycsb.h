/**
 * @file
 * YCSB core-workload driver over the KV store (DESIGN.md §13).
 *
 * Implements the six standard mixes (Cooper et al., SoCC'10) against
 * KvStore, with the reference key-chooser machinery:
 *
 *   A  50% read / 50% update          zipfian
 *   B  95% read /  5% update          zipfian
 *   C 100% read                       zipfian
 *   D  95% read (latest) / 5% insert  read-latest
 *   E  95% scan /  5% insert          zipfian (scan len uniform 1..max)
 *   F  50% read / 50% read-modify-write  zipfian
 *
 * Key choosing follows the YCSB reference implementation: a zipfian
 * distribution over the item count (zeta precomputed, theta = 0.99 by
 * default) whose rank is *scrambled* by an FNV hash so the hot keys
 * are spread over the keyspace instead of clustered at the low ids.
 * Everything is seeded: the same YcsbSpec replays the identical op
 * stream, which is what makes the crash sweep's oracle and the bench
 * baselines possible. Throughput rides the harness's virtual-time
 * methodology (harness.h), so t=1 rows are exactly reproducible.
 */

#ifndef NVALLOC_WORKLOADS_YCSB_H
#define NVALLOC_WORKLOADS_YCSB_H

#include <atomic>
#include <cstdint>
#include <string>

#include "common/rng.h"
#include "kv/kv_store.h"
#include "workloads/harness.h"

namespace nvalloc {

/** Zipfian rank chooser (YCSB's ZipfianGenerator): ranks in
 *  [0, items) with P(rank) ∝ 1/(rank+1)^theta. Deterministic given
 *  the caller's Rng. */
class ZipfianGenerator
{
  public:
    explicit ZipfianGenerator(uint64_t items, double theta = 0.99);

    uint64_t next(Rng &rng) const;
    uint64_t items() const { return items_; }

  private:
    uint64_t items_;
    double theta_;
    double zetan_;
    double zeta2_;
    double alpha_;
    double eta_;
};

enum class YcsbWorkload : uint8_t
{
    A,
    B,
    C,
    D,
    E,
    F,
};

const char *ycsbWorkloadName(YcsbWorkload w);

struct YcsbSpec
{
    YcsbWorkload workload = YcsbWorkload::A;
    uint64_t record_count = 1'000'000; //!< load phase inserts
    uint64_t op_count = 1'000'000;     //!< run phase ops (all threads)
    unsigned threads = 8;
    bool zipfian = true; //!< false = uniform key chooser
    double theta = 0.99;
    uint32_t value_min = 64;
    uint32_t value_max = 256;
    /** Every Nth insert/update carries a large value (0 = never):
     *  drives the small+large allocation mix through the store. */
    uint32_t large_value_every = 1024;
    uint32_t large_value_size = 16384;
    unsigned scan_len = 16; //!< max records per scan (workload E)
    uint64_t seed = 42;
};

struct YcsbResult
{
    RunResult load;
    RunResult run;
    uint64_t reads = 0;
    uint64_t updates = 0;
    uint64_t inserts = 0;
    uint64_t scans = 0;
    uint64_t rmws = 0;
    uint64_t not_found = 0; //!< reads racing inserts (workload D)
    uint64_t errors = 0;    //!< any non-Ok/NotFound op outcome
};

/** The YCSB key for a record id: "user" + FNV-hashed decimal, the
 *  reference implementation's "hashed insert order" naming — the
 *  zipfian chooser's hot low ranks land spread over the keyspace. */
std::string ycsbKey(uint64_t id);

/** Deterministic value content for (id, version): verification after
 *  a crash recomputes the expected bytes instead of storing them. */
std::string ycsbValue(uint64_t id, uint64_t version, uint32_t len);

/**
 * Load phase: insert ids [0, spec.record_count) across spec.threads
 * workers. `store` must be empty/fresh for exact-count semantics.
 */
YcsbResult ycsbLoad(KvStore &store, const YcsbSpec &spec,
                    VtimeEpoch &epoch);

/**
 * Run phase: spec.op_count ops in spec.workload's mix. `inserted`
 * carries the next insert id across phases (ycsbLoad leaves it at
 * record_count); workload D reads cluster near its current value.
 * Returns per-op-type counts; `errors` should be zero on a healthy
 * heap.
 */
YcsbResult ycsbRun(KvStore &store, const YcsbSpec &spec,
                   VtimeEpoch &epoch,
                   std::atomic<uint64_t> &inserted);

} // namespace nvalloc

#endif // NVALLOC_WORKLOADS_YCSB_H
