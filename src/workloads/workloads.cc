#include "workloads/workloads.h"

#include <barrier>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace nvalloc {

RunResult
threadtest(PmAllocator &alloc, VtimeEpoch &epoch, unsigned threads,
           unsigned iters, unsigned objs, size_t size)
{
    // The barrier makes every thread's allocation batch coexist, so
    // peak-memory measurements see the concurrent footprint even on a
    // single-core host. Real barrier waits do not advance virtual
    // clocks, so throughput results are unaffected.
    std::barrier<> sync{static_cast<std::ptrdiff_t>(threads)};
    return runWorkers(threads, epoch, [&](unsigned) -> uint64_t {
        AllocThread *t = alloc.threadAttach();
        if (!t) {
            // Still participate in the barriers so siblings progress.
            for (unsigned it = 0; it < iters; ++it) {
                sync.arrive_and_wait();
                sync.arrive_and_wait();
            }
            return 0;
        }
        std::vector<uint64_t> offs(objs);
        uint64_t ops = 0;
        for (unsigned it = 0; it < iters; ++it) {
            for (unsigned i = 0; i < objs; ++i) {
                offs[i] = alloc.allocTo(t, size, nullptr);
                if (offs[i])
                    ++ops;
                else
                    noteFailedAlloc();
            }
            sync.arrive_and_wait();
            for (unsigned i = 0; i < objs; ++i) {
                if (offs[i]) {
                    alloc.freeFrom(t, offs[i], nullptr);
                    ++ops;
                }
            }
            sync.arrive_and_wait();
        }
        alloc.threadDetach(t);
        return ops;
    });
}

namespace {

/** Bounded queue for producer/consumer pairs. */
class OffsetQueue
{
  public:
    explicit OffsetQueue(size_t cap) : cap_(cap) {}

    void
    push(uint64_t off)
    {
        std::unique_lock<std::mutex> lk(mutex_);
        not_full_.wait(lk, [&] { return q_.size() < cap_; });
        q_.push_back(off);
        not_empty_.notify_one();
    }

    /** Returns false when the producer is done and the queue drained. */
    bool
    pop(uint64_t &off)
    {
        std::unique_lock<std::mutex> lk(mutex_);
        not_empty_.wait(lk, [&] { return !q_.empty() || done_; });
        if (q_.empty())
            return false;
        off = q_.front();
        q_.pop_front();
        not_full_.notify_one();
        return true;
    }

    void
    finish()
    {
        std::lock_guard<std::mutex> lk(mutex_);
        done_ = true;
        not_empty_.notify_all();
    }

  private:
    std::mutex mutex_;
    std::condition_variable not_full_, not_empty_;
    std::deque<uint64_t> q_;
    size_t cap_;
    bool done_ = false;
};

} // namespace

RunResult
prodcon(PmAllocator &alloc, VtimeEpoch &epoch, unsigned threads,
        uint64_t objs_per_pair, size_t size)
{
    if (threads < 2) {
        // Degenerate single-thread case: produce and consume locally.
        return runWorkers(1, epoch, [&](unsigned) -> uint64_t {
            AllocThread *t = alloc.threadAttach();
            if (!t)
                return 0;
            uint64_t ops = 0;
            for (uint64_t i = 0; i < objs_per_pair; ++i) {
                uint64_t off = alloc.allocTo(t, size, nullptr);
                if (!off) {
                    noteFailedAlloc();
                    continue;
                }
                alloc.freeFrom(t, off, nullptr);
                ops += 2;
            }
            alloc.threadDetach(t);
            return ops;
        });
    }

    unsigned pairs = threads / 2;
    std::vector<std::unique_ptr<OffsetQueue>> queues;
    for (unsigned p = 0; p < pairs; ++p)
        queues.push_back(std::make_unique<OffsetQueue>(256));

    return runWorkers(pairs * 2, epoch, [&](unsigned tid) -> uint64_t {
        unsigned pair = tid / 2;
        bool producer = (tid % 2) == 0;
        AllocThread *t = alloc.threadAttach();
        uint64_t ops = 0;
        if (producer) {
            if (t) {
                for (uint64_t i = 0; i < objs_per_pair; ++i) {
                    uint64_t off = alloc.allocTo(t, size, nullptr);
                    if (!off) {
                        noteFailedAlloc();
                        continue;
                    }
                    queues[pair]->push(off);
                    ++ops;
                }
            }
            // Always close the queue so the consumer unblocks, even
            // when this producer could not attach.
            queues[pair]->finish();
        } else {
            uint64_t off;
            while (queues[pair]->pop(off)) {
                if (!t)
                    continue; // drain without freeing (no context)
                alloc.freeFrom(t, off, nullptr); // cross-thread free
                ++ops;
            }
        }
        if (t)
            alloc.threadDetach(t);
        return ops;
    });
}

RunResult
shbench(PmAllocator &alloc, VtimeEpoch &epoch, unsigned threads,
        unsigned iters, uint64_t seed)
{
    return runWorkers(threads, epoch, [&](unsigned tid) -> uint64_t {
        AllocThread *t = alloc.threadAttach();
        if (!t)
            return 0;
        Rng rng(seed * 977 + tid);
        std::vector<uint64_t> pool;
        uint64_t ops = 0;
        for (unsigned it = 0; it < iters; ++it) {
            // Smaller sizes dominate: geometric pick over 64..1000 B.
            size_t size = 64;
            while (size < 1000 && rng.nextDouble() < 0.5)
                size = size * 2;
            if (size > 1000)
                size = 1000;
            uint64_t off = alloc.allocTo(t, size, nullptr);
            if (off) {
                pool.push_back(off);
                ++ops;
            } else {
                noteFailedAlloc();
            }

            // Short lifetimes for small objects: free with probability
            // inversely tied to size, plus pool-pressure frees.
            while (pool.size() > 64 ||
                   (!pool.empty() && rng.nextDouble() < 0.45)) {
                size_t pick = rng.nextBounded(pool.size());
                alloc.freeFrom(t, pool[pick], nullptr);
                pool[pick] = pool.back();
                pool.pop_back();
                ++ops;
            }
        }
        for (uint64_t off : pool)
            alloc.freeFrom(t, off, nullptr);
        alloc.threadDetach(t);
        return ops;
    });
}

RunResult
larson(PmAllocator &alloc, VtimeEpoch &epoch, unsigned threads,
       size_t min_size, size_t max_size, unsigned slots, unsigned rounds,
       unsigned ops_per_round, uint64_t seed)
{
    // The slot array is shared by all threads (the defining Larson
    // property: "some objects allocated by one thread are freed by
    // another"); a worker atomically swaps its new allocation into a
    // random slot and frees whatever was there — usually a block some
    // other thread allocated.
    std::vector<std::atomic<uint64_t>> shared(size_t(slots) * threads);
    for (auto &s : shared)
        s.store(0, std::memory_order_relaxed);

    RunResult r = runWorkers(threads, epoch, [&](unsigned tid) -> uint64_t {
        Rng rng(seed * 31 + tid);
        uint64_t ops = 0;
        AllocThread *t = alloc.threadAttach();
        for (unsigned round = 0; t && round < rounds; ++round) {
            for (unsigned i = 0; i < ops_per_round; ++i) {
                size_t size = rng.uniform(min_size, max_size);
                uint64_t fresh = alloc.allocTo(t, size, nullptr);
                if (fresh)
                    ++ops;
                else
                    noteFailedAlloc();
                size_t s = rng.nextBounded(shared.size());
                uint64_t old = shared[s].exchange(fresh);
                if (old) {
                    alloc.freeFrom(t, old, nullptr); // cross-thread
                    ++ops;
                }
            }
            // Thread churn: a successor thread takes over. The
            // successor attach can be refused under slot pressure;
            // the worker then just stops early.
            alloc.threadDetach(t);
            t = alloc.threadAttach();
        }
        if (t)
            alloc.threadDetach(t);
        return ops;
    });

    // Drain the surviving objects (not part of the measurement).
    AllocThread *t = alloc.threadAttach();
    if (t) {
        for (auto &s : shared) {
            uint64_t off = s.load(std::memory_order_relaxed);
            if (off)
                alloc.freeFrom(t, off, nullptr);
        }
        alloc.threadDetach(t);
    }
    return r;
}

RunResult
dbmstest(PmAllocator &alloc, VtimeEpoch &epoch, unsigned threads,
         unsigned iters, unsigned objs, uint64_t seed)
{
    // Barrier between the allocate and delete halves of an iteration:
    // all threads' batches are live simultaneously (see threadtest).
    std::barrier<> sync{static_cast<std::ptrdiff_t>(threads)};
    return runWorkers(threads, epoch, [&](unsigned tid) -> uint64_t {
        AllocThread *t = alloc.threadAttach();
        if (!t) {
            // Still participate in the barriers so siblings progress.
            for (unsigned it = 0; it < iters; ++it) {
                sync.arrive_and_wait();
                sync.arrive_and_wait();
            }
            return 0;
        }
        Rng rng(seed * 131 + tid);
        std::vector<uint64_t> survivors;
        uint64_t ops = 0;
        for (unsigned it = 0; it < iters; ++it) {
            std::vector<uint64_t> batch;
            for (unsigned i = 0; i < objs; ++i) {
                // Truncated Poisson over 32 KB .. 512 KB.
                uint64_t steps = rng.poisson(6.5);
                size_t size = (1 + (steps > 15 ? 15 : steps)) * 32 * 1024;
                uint64_t off = alloc.allocTo(t, size, nullptr);
                if (off) {
                    batch.push_back(off);
                    ++ops;
                } else {
                    noteFailedAlloc();
                }
            }
            sync.arrive_and_wait();
            // Randomly delete 90%.
            for (uint64_t off : batch) {
                if (rng.nextDouble() < 0.9) {
                    alloc.freeFrom(t, off, nullptr);
                    ++ops;
                } else {
                    survivors.push_back(off);
                }
            }
            sync.arrive_and_wait();
        }
        for (uint64_t off : survivors)
            alloc.freeFrom(t, off, nullptr);
        alloc.threadDetach(t);
        return ops;
    });
}

const FragWorkload *
fragWorkloads()
{
    // Table 1 of the paper.
    static const FragWorkload kTable[kNumFragWorkloads] = {
        {"W1", {100, 100}, 0.9, {130, 130}},
        {"W2", {100, 150}, 0.0, {200, 250}},
        {"W3", {100, 150}, 0.9, {200, 250}},
        {"W4", {100, 200}, 0.5, {1000, 2000}},
    };
    return kTable;
}

FragResult
fragbench(PmAllocator &alloc, VtimeEpoch &epoch, const FragWorkload &w,
          size_t total_alloc, size_t live_cap, uint64_t seed,
          const std::function<void()> &at_peak)
{
    FragResult result;
    alloc.device().resetPeak();

    struct Obj
    {
        uint64_t off;
        uint32_t size;
    };
    std::vector<Obj> live;
    uint64_t live_bytes = 0;

    result.run = runWorkers(1, epoch, [&](unsigned) -> uint64_t {
        AllocThread *t = alloc.threadAttach();
        if (!t)
            return 0;
        Rng rng(seed);
        uint64_t ops = 0;

        auto phase = [&](const FragPhaseDist &dist) {
            uint64_t allocated = 0;
            while (allocated < total_alloc) {
                size_t size = dist.lo == dist.hi
                                  ? dist.lo
                                  : rng.uniform(dist.lo, dist.hi);
                while (live_bytes + size > live_cap && !live.empty()) {
                    size_t pick = rng.nextBounded(live.size());
                    alloc.freeFrom(t, live[pick].off, nullptr);
                    live_bytes -= live[pick].size;
                    live[pick] = live.back();
                    live.pop_back();
                    ++ops;
                }
                uint64_t off = alloc.allocTo(t, size, nullptr);
                if (!off) {
                    // Genuinely exhausted: stop the phase rather than
                    // spin. The fragmentation measurement still uses
                    // whatever was committed so far.
                    noteFailedAlloc();
                    break;
                }
                live.push_back({off, uint32_t(size)});
                live_bytes += size;
                allocated += size;
                ++ops;
            }
        };

        phase(w.before);

        // Delete phase: drop delete_ratio of the live objects.
        uint64_t target = uint64_t(double(live.size()) * w.delete_ratio);
        for (uint64_t i = 0; i < target && !live.empty(); ++i) {
            size_t pick = rng.nextBounded(live.size());
            alloc.freeFrom(t, live[pick].off, nullptr);
            live_bytes -= live[pick].size;
            live[pick] = live.back();
            live.pop_back();
            ++ops;
        }

        phase(w.after);

        // Observation point for slab-utilization reporting: the end
        // of the After phase, before teardown (Fig. 15b).
        if (at_peak)
            at_peak();

        for (const Obj &o : live)
            alloc.freeFrom(t, o.off, nullptr);
        result.live_bytes = live_bytes;
        alloc.threadDetach(t);
        return ops;
    });

    result.peak_bytes = alloc.device().peakCommittedBytes();
    return result;
}

} // namespace nvalloc
