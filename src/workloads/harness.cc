#include "workloads/harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "telemetry/telemetry.h"

namespace nvalloc {

namespace {

/** NVALLOC_BENCH_ALLOCATORS filter: true when unset/empty or when the
 *  kind's registry name appears in the comma-separated list. */
bool
allocEnabled(AllocKind kind)
{
    return benchAllocatorEnabled(allocRegistryName(kind));
}

std::vector<AllocKind>
filtered(std::vector<AllocKind> kinds)
{
    std::vector<AllocKind> out;
    for (AllocKind k : kinds)
        if (allocEnabled(k))
            out.push_back(k);
    return out;
}

} // namespace

std::vector<AllocKind>
strongGroup()
{
    return filtered({AllocKind::Pmdk, AllocKind::NvmMalloc,
                     AllocKind::PAllocator, AllocKind::NvAllocLog});
}

std::vector<AllocKind>
weakGroup()
{
    return filtered(
        {AllocKind::Makalu, AllocKind::Ralloc, AllocKind::NvAllocGc});
}

const char *
allocName(AllocKind kind)
{
    switch (kind) {
      case AllocKind::Pmdk: return "PMDK";
      case AllocKind::NvmMalloc: return "nvm_malloc";
      case AllocKind::PAllocator: return "PAllocator";
      case AllocKind::Makalu: return "Makalu";
      case AllocKind::Ralloc: return "Ralloc";
      case AllocKind::NvAllocLog: return "NVAlloc-LOG";
      case AllocKind::NvAllocGc: return "NVAlloc-GC";
    }
    return "?";
}

const char *
allocRegistryName(AllocKind kind)
{
    switch (kind) {
      case AllocKind::Pmdk: return "pmdk";
      case AllocKind::NvmMalloc: return "nvm_malloc";
      case AllocKind::PAllocator: return "pallocator";
      case AllocKind::Makalu: return "makalu";
      case AllocKind::Ralloc: return "ralloc";
      case AllocKind::NvAllocLog: return "nvalloc";
      case AllocKind::NvAllocGc: return "nvalloc-gc";
    }
    return "?";
}

std::unique_ptr<PmDevice>
makeBenchDevice(size_t size)
{
    PmDeviceConfig cfg;
    cfg.size = size;
    return std::make_unique<PmDevice>(cfg);
}

std::unique_ptr<PmAllocator>
makeAllocator(AllocKind kind, PmDevice &dev, const MakeOptions &opts)
{
    return PmAllocatorRegistry::instance().make(allocRegistryName(kind),
                                                dev, opts);
}

namespace {
std::atomic<uint64_t> g_failed_allocs{0};
} // namespace

void
noteFailedAlloc()
{
    g_failed_allocs.fetch_add(1, std::memory_order_relaxed);
}

RunResult
runWorkers(unsigned threads, VtimeEpoch &epoch,
           const std::function<uint64_t(unsigned tid)> &body)
{
    const uint64_t failed_base =
        g_failed_allocs.load(std::memory_order_relaxed);
    struct PerThread
    {
        uint64_t ops = 0;
        uint64_t elapsed = 0;
        std::array<uint64_t, kNumTimeKinds> kinds{};
    };
    std::vector<PerThread> results(threads);

    // Every worker of a phase starts at the same virtual instant; a
    // worker that queues on virtual-time resources shows the full
    // serialized time relative to this shared base.
    const uint64_t phase_base = epoch.base();

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned tid = 0; tid < threads; ++tid) {
        workers.emplace_back([&, tid] {
            VClock::reset();
            VClock::setNow(phase_base);
            // RunResult.breakdown comes from the telemetry layer (a
            // veneer over the same per-thread attribution buckets the
            // ctl tree's flush counters are keyed against), so figure
            // benches and nvalloc_stat report from one source.
            auto kinds0 = Telemetry::threadTimeBreakdown();

            results[tid].ops = body(tid);

            results[tid].elapsed = VClock::now() - phase_base;
            auto kinds1 = Telemetry::threadTimeBreakdown();
            for (unsigned k = 0; k < kNumTimeKinds; ++k)
                results[tid].kinds[k] = kinds1[k] - kinds0[k];
            epoch.observe(VClock::now());
        });
    }
    for (auto &w : workers)
        w.join();

    RunResult out;
    out.failed_allocs =
        g_failed_allocs.load(std::memory_order_relaxed) - failed_base;
    for (const PerThread &r : results) {
        out.total_ops += r.ops;
        if (r.elapsed > out.makespan_ns)
            out.makespan_ns = r.elapsed;
        for (unsigned k = 0; k < kNumTimeKinds; ++k)
            out.breakdown[k] += r.kinds[k];
    }
    return out;
}

std::vector<unsigned>
benchThreadCounts(bool quick)
{
    if (quick)
        return {1, 4, 16};
    return {1, 2, 4, 8, 16, 32, 64};
}

std::vector<unsigned>
benchThreadCountsSmallPath(bool quick)
{
    if (quick)
        return {1, 4, 16, 64, 128};
    return {1, 2, 4, 8, 16, 32, 64, 128};
}

namespace {

/** Accumulates benchJsonPoint records; written as one JSON document at
 *  process exit, so every figure section of a bench binary lands in a
 *  single BENCH_<prog>.json. */
struct BenchJsonSink
{
    struct Point
    {
        std::string section, series, x;
        double value;
    };

    std::string path;    //!< empty = emission disabled
    std::string section; //!< most recent printSeriesHeader figure
    std::vector<unsigned> xs;
    std::vector<Point> points;

    ~BenchJsonSink()
    {
        if (path.empty() || points.empty())
            return;
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "bench: cannot write %s\n",
                         path.c_str());
            return;
        }
        std::fprintf(f, "{\"points\":[");
        for (size_t i = 0; i < points.size(); ++i) {
            const Point &p = points[i];
            std::fprintf(f,
                         "%s\n {\"section\":\"%s\",\"series\":\"%s\","
                         "\"x\":\"%s\",\"value\":%.6f}",
                         i ? "," : "", p.section.c_str(),
                         p.series.c_str(), p.x.c_str(), p.value);
        }
        std::fprintf(f, "\n]}\n");
        std::fclose(f);
    }
};

BenchJsonSink g_bench_json;

} // namespace

void
benchJsonPoint(const std::string &section, const std::string &series,
               const std::string &x, double value)
{
    if (g_bench_json.path.empty())
        return;
    g_bench_json.points.push_back({section, series, x, value});
}

void
benchJsonSetProgram(const char *prog)
{
    const char *dir = std::getenv("NVALLOC_BENCH_JSON_DIR");
    if (dir && *dir && prog && *prog)
        g_bench_json.path =
            std::string(dir) + "/BENCH_" + prog + ".json";
}

bool
benchAllocatorEnabled(const char *registry_name)
{
    const char *env = std::getenv("NVALLOC_BENCH_ALLOCATORS");
    if (!env || !*env)
        return true;
    size_t want_len = std::strlen(registry_name);
    for (const char *p = env; *p;) {
        const char *comma = std::strchr(p, ',');
        size_t len = comma ? size_t(comma - p) : std::strlen(p);
        if (len == want_len &&
            std::strncmp(p, registry_name, len) == 0)
            return true;
        p += len + (comma ? 1 : 0);
    }
    return false;
}

BenchArgs
BenchArgs::parse(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            args.quick = true;
        else if (std::strncmp(argv[i], "--seed=", 7) == 0)
            args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
    const char *dir = std::getenv("NVALLOC_BENCH_JSON_DIR");
    if (dir && *dir && argc > 0) {
        const char *prog = argv[0];
        if (const char *slash = std::strrchr(prog, '/'))
            prog = slash + 1;
        g_bench_json.path =
            std::string(dir) + "/BENCH_" + prog + ".json";
    }
    return args;
}

void
printSeriesHeader(const char *figure, const char *ylabel,
                  const std::vector<unsigned> &threads)
{
    std::printf("## %s — %s\n", figure, ylabel);
    std::printf("%-14s", "allocator");
    for (unsigned t : threads)
        std::printf(" %10u", t);
    std::printf("\n");
    g_bench_json.section = figure;
    g_bench_json.xs = threads;
}

void
printSeriesRow(const char *name, const std::vector<double> &values)
{
    std::printf("%-14s", name);
    for (double v : values)
        std::printf(" %10.3f", v);
    std::printf("\n");
    for (size_t i = 0; i < values.size(); ++i) {
        std::string x = i < g_bench_json.xs.size()
                            ? std::to_string(g_bench_json.xs[i])
                            : std::to_string(i);
        benchJsonPoint(g_bench_json.section, name, x, values[i]);
    }
}

} // namespace nvalloc
