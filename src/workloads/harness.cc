#include "workloads/harness.h"

#include <cstdio>
#include <cstring>
#include <thread>

#include "baselines/makalu_alloc.h"
#include "baselines/nvalloc_adapter.h"
#include "baselines/nvm_malloc_alloc.h"
#include "baselines/pallocator.h"
#include "baselines/pmdk_alloc.h"
#include "baselines/ralloc_alloc.h"
#include "telemetry/telemetry.h"

namespace nvalloc {

std::vector<AllocKind>
strongGroup()
{
    return {AllocKind::Pmdk, AllocKind::NvmMalloc, AllocKind::PAllocator,
            AllocKind::NvAllocLog};
}

std::vector<AllocKind>
weakGroup()
{
    return {AllocKind::Makalu, AllocKind::Ralloc, AllocKind::NvAllocGc};
}

const char *
allocName(AllocKind kind)
{
    switch (kind) {
      case AllocKind::Pmdk: return "PMDK";
      case AllocKind::NvmMalloc: return "nvm_malloc";
      case AllocKind::PAllocator: return "PAllocator";
      case AllocKind::Makalu: return "Makalu";
      case AllocKind::Ralloc: return "Ralloc";
      case AllocKind::NvAllocLog: return "NVAlloc-LOG";
      case AllocKind::NvAllocGc: return "NVAlloc-GC";
    }
    return "?";
}

std::unique_ptr<PmDevice>
makeBenchDevice(size_t size)
{
    PmDeviceConfig cfg;
    cfg.size = size;
    return std::make_unique<PmDevice>(cfg);
}

std::unique_ptr<PmAllocator>
makeAllocator(AllocKind kind, PmDevice &dev, const MakeOptions &opts)
{
    if (opts.eadr)
        dev.model().setEadr(true);

    bool flush = opts.flush_enabled;
    switch (kind) {
      case AllocKind::Pmdk:
        return std::make_unique<PmdkAlloc>(dev, flush);
      case AllocKind::NvmMalloc:
        return std::make_unique<NvmMallocAlloc>(dev, flush);
      case AllocKind::PAllocator:
        return std::make_unique<PalAllocator>(dev, flush);
      case AllocKind::Makalu:
        return std::make_unique<MakaluAlloc>(dev, flush);
      case AllocKind::Ralloc:
        return std::make_unique<RallocAlloc>(dev, flush);
      case AllocKind::NvAllocLog:
      case AllocKind::NvAllocGc: {
        NvAllocConfig cfg;
        cfg.consistency = kind == AllocKind::NvAllocLog
                              ? Consistency::Log
                              : Consistency::Gc;
        cfg.flush_enabled = flush;
        if (opts.eadr) {
            // pmem_has_auto_flush() detected eADR: interleaving is
            // disabled because it only spreads cache pressure (§6.7).
            cfg.interleaved_bitmap = false;
            cfg.interleaved_tcache = false;
            cfg.interleaved_wal = false;
            cfg.interleaved_log = false;
        }
        if (opts.tweak_nvalloc)
            opts.tweak_nvalloc(cfg);
        return std::make_unique<NvAllocAdapter>(dev, cfg);
      }
    }
    return nullptr;
}

namespace {
std::atomic<uint64_t> g_failed_allocs{0};
} // namespace

void
noteFailedAlloc()
{
    g_failed_allocs.fetch_add(1, std::memory_order_relaxed);
}

RunResult
runWorkers(unsigned threads, VtimeEpoch &epoch,
           const std::function<uint64_t(unsigned tid)> &body)
{
    const uint64_t failed_base =
        g_failed_allocs.load(std::memory_order_relaxed);
    struct PerThread
    {
        uint64_t ops = 0;
        uint64_t elapsed = 0;
        std::array<uint64_t, kNumTimeKinds> kinds{};
    };
    std::vector<PerThread> results(threads);

    // Every worker of a phase starts at the same virtual instant; a
    // worker that queues on virtual-time resources shows the full
    // serialized time relative to this shared base.
    const uint64_t phase_base = epoch.base();

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned tid = 0; tid < threads; ++tid) {
        workers.emplace_back([&, tid] {
            VClock::reset();
            VClock::setNow(phase_base);
            // RunResult.breakdown comes from the telemetry layer (a
            // veneer over the same per-thread attribution buckets the
            // ctl tree's flush counters are keyed against), so figure
            // benches and nvalloc_stat report from one source.
            auto kinds0 = Telemetry::threadTimeBreakdown();

            results[tid].ops = body(tid);

            results[tid].elapsed = VClock::now() - phase_base;
            auto kinds1 = Telemetry::threadTimeBreakdown();
            for (unsigned k = 0; k < kNumTimeKinds; ++k)
                results[tid].kinds[k] = kinds1[k] - kinds0[k];
            epoch.observe(VClock::now());
        });
    }
    for (auto &w : workers)
        w.join();

    RunResult out;
    out.failed_allocs =
        g_failed_allocs.load(std::memory_order_relaxed) - failed_base;
    for (const PerThread &r : results) {
        out.total_ops += r.ops;
        if (r.elapsed > out.makespan_ns)
            out.makespan_ns = r.elapsed;
        for (unsigned k = 0; k < kNumTimeKinds; ++k)
            out.breakdown[k] += r.kinds[k];
    }
    return out;
}

std::vector<unsigned>
benchThreadCounts(bool quick)
{
    if (quick)
        return {1, 4, 16};
    return {1, 2, 4, 8, 16, 32, 64};
}

BenchArgs
BenchArgs::parse(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            args.quick = true;
        else if (std::strncmp(argv[i], "--seed=", 7) == 0)
            args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
    return args;
}

void
printSeriesHeader(const char *figure, const char *ylabel,
                  const std::vector<unsigned> &threads)
{
    std::printf("## %s — %s\n", figure, ylabel);
    std::printf("%-14s", "allocator");
    for (unsigned t : threads)
        std::printf(" %10u", t);
    std::printf("\n");
}

void
printSeriesRow(const char *name, const std::vector<double> &values)
{
    std::printf("%-14s", name);
    for (double v : values)
        std::printf(" %10.3f", v);
    std::printf("\n");
}

} // namespace nvalloc
