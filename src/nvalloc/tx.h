/**
 * @file
 * Crash-consistent transaction layer (DESIGN.md §11).
 *
 * A transaction groups up to kTxMaxOps allocations, deferred frees and
 * 8-byte word updates into one atomic unit: after a crash, recovery
 * resolves every in-flight transaction to all-or-nothing. The layer
 * reuses the existing per-thread WAL rings rather than adding a second
 * log — each staged op journals one tx-tagged WAL entry (the same one
 * flush per op the plain fast path pays), and commit is a single
 * epoch-separated commit record + flush.
 *
 * Durability protocol, per thread ring:
 *
 *   txAlloc   journal kWalAlloc (tagged)   block allocated, NOT
 *                                          published until commit
 *   txFree    journal kWalFree (tagged)    block stays allocated;
 *                                          the free applies at commit
 *   txWrite   journal kWalTxData (tagged,  undo value in where_off,
 *             old+new word values)         redo value in size; the
 *                                          in-place write lands now
 *   txCommit  fence; journal ONE commit record (its own append flush
 *             is the commit point); then apply: publish attach words,
 *             perform deferred frees — with NO further journaling, so
 *             the commit record stays the ring's newest entry until
 *             the apply phase is complete
 *   txAbort   roll back live (restore words, free staged allocs),
 *             fence, journal an abort record
 *
 * Recovery (replayWals) finds the ring's newest intact entry; when it
 * is tx-tagged, the whole run of that tx id is gathered and resolved:
 * a commit record present → redo forward (idempotently), otherwise →
 * undo backward. Ring overwrites go oldest-seq-first, so a run's
 * record can never outlive its op entries out of order.
 *
 * While a transaction is open on a thread, plain alloc/free on the
 * same ThreadCtx are rejected (InvalidArgument): an untagged entry at
 * the ring tail would shadow the open run's resolution. Other threads
 * are unaffected — except that free() of a block staged in ANY open
 * transaction is rejected by the ordered free validator with
 * CorruptionKind::TxStagedFree instead of silently racing the commit.
 *
 * The whole tx lifetime holds a MaintenanceService pin, so background
 * slow GC never relocates bookkeeping-log entries out from under an
 * uncommitted transaction's large allocations.
 */

#ifndef NVALLOC_NVALLOC_TX_H
#define NVALLOC_NVALLOC_TX_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

namespace nvalloc {

/** One staged operation of an open transaction. Volatile bookkeeping
 *  only: the durable twin is the tx-tagged WAL entry journaled when
 *  the op was staged. */
struct TxOp
{
    enum class Kind : uint8_t
    {
        Alloc,
        Free,
        Write,
    };

    Kind kind = Kind::Alloc;
    uint64_t off = 0; //!< block offset (Alloc/Free), word offset (Write)
    uint64_t *where = nullptr; //!< Alloc: attach target, published at
                               //!< commit (may be volatile or null)
    uint64_t old_value = 0;    //!< Write: undo value
    uint64_t new_value = 0;    //!< Write: redo value
    size_t size = 0;           //!< Alloc: requested size
};

/** Per-thread transaction state, embedded in ThreadCtx. The ops list
 *  is the bounded undo buffer: it can never exceed kTxMaxOps. */
struct TxContext
{
    uint32_t id = 0; //!< 0 = no open transaction
    std::vector<TxOp> ops;

    bool open() const { return id != 0; }

    void
    reset()
    {
        id = 0;
        ops.clear();
    }
};

/** stats.tx.* counters. The atomics are bumped on tx operations and
 *  read lock-free by the ctl tree; the recovered_* pair is plain
 *  because recovery runs single-threaded before any tx can open. */
struct TxStats
{
    std::atomic<uint64_t> begins{0};
    std::atomic<uint64_t> commits{0};
    std::atomic<uint64_t> aborts{0};
    std::atomic<uint64_t> ops_alloc{0};
    std::atomic<uint64_t> ops_free{0};
    std::atomic<uint64_t> ops_write{0};
    /** Rejected tx calls: nested begin, op/commit/abort outside an
     *  open tx, degraded-open begin, bad txWrite target. */
    std::atomic<uint64_t> rejected{0};
    /** Ops refused because the tx already holds kTxMaxOps. */
    std::atomic<uint64_t> oversize{0};
    /** Plain alloc/free rejected because this thread has an open tx. */
    std::atomic<uint64_t> plain_ops_rejected{0};
    /** What the last recovery resolved (also in RecoveryInfo). */
    uint64_t recovered_committed = 0;
    uint64_t recovered_rolled_back = 0;
};

/**
 * Heap-wide transaction bookkeeping: id allocation, the set of open
 * ids, and the staged-offset registry consulted by the ordered free
 * validator. All volatile — a crash forgets it, and recovery clears
 * the rings it mirrors.
 *
 * The free-path probe is the only hot-path cost the layer adds:
 * one relaxed load of staged_count_, which is zero whenever no
 * transaction holds staged blocks.
 */
class TxManager
{
  public:
    /** Open a new transaction; returns its nonzero id. */
    uint32_t
    beginTx()
    {
        uint32_t id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
        std::lock_guard<std::mutex> g(mu_);
        open_.insert(id);
        return id;
    }

    /** Recovery-time floor for id allocation: ids are volatile (they
     *  restart at 1 on reopen), but the rings persist records tagged
     *  with the previous instance's ids. Seeding past the largest id
     *  found in the rings keeps a fresh transaction from aliasing a
     *  stale commit/applied/abort record — resolution would otherwise
     *  mistake the stale control record for the new run's. */
    void
    seedNextId(uint32_t floor)
    {
        uint32_t cur = next_id_.load(std::memory_order_relaxed);
        while (cur < floor &&
               !next_id_.compare_exchange_weak(
                   cur, floor, std::memory_order_relaxed)) {
        }
    }

    /** Close an id (commit, abort, or recovery cleanup). */
    void
    endTx(uint32_t id)
    {
        std::lock_guard<std::mutex> g(mu_);
        open_.erase(id);
    }

    bool
    isOpen(uint32_t id) const
    {
        std::lock_guard<std::mutex> g(mu_);
        return open_.count(id) != 0;
    }

    uint64_t
    openCount() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return open_.size();
    }

    /** Register `off` as staged by an open tx (a tx-allocated block
     *  awaiting publish, or a tx-freed block awaiting its deferred
     *  free). False if some tx already staged it. */
    bool
    stage(uint64_t off)
    {
        std::lock_guard<std::mutex> g(mu_);
        if (!staged_.insert(off).second)
            return false;
        staged_count_.store(staged_.size(), std::memory_order_relaxed);
        return true;
    }

    void
    unstage(uint64_t off)
    {
        std::lock_guard<std::mutex> g(mu_);
        staged_.erase(off);
        staged_count_.store(staged_.size(), std::memory_order_relaxed);
    }

    /** Free-validator probe. The count shortcut keeps the plain free
     *  path at one relaxed load when no tx holds staged blocks. */
    bool
    isStaged(uint64_t off) const
    {
        if (staged_count_.load(std::memory_order_relaxed) == 0)
            return false;
        std::lock_guard<std::mutex> g(mu_);
        return staged_.count(off) != 0;
    }

    /** Auditor snapshot of the staged registry. */
    std::vector<uint64_t>
    stagedSnapshot() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return std::vector<uint64_t>(staged_.begin(), staged_.end());
    }

    uint64_t
    stagedCount() const
    {
        return staged_count_.load(std::memory_order_relaxed);
    }

    TxStats &stats() { return stats_; }
    const TxStats &stats() const { return stats_; }

  private:
    mutable std::mutex mu_;
    std::unordered_set<uint32_t> open_;
    std::unordered_set<uint64_t> staged_;
    std::atomic<uint64_t> staged_count_{0};
    std::atomic<uint32_t> next_id_{0};
    TxStats stats_;
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_TX_H
