/**
 * @file
 * Fault-contained heap pool (DESIGN.md §12).
 *
 * A HeapPool manages N named per-tenant NVAlloc heaps, each on its own
 * PmDevice, and turns the per-heap health machine (status.h) into a
 * pool-level containment guarantee:
 *
 *  - every member opens with fault_containment forced on, so detected
 *    corruption — hardened-free reports, patrol-scrub findings, audit
 *    failures, failed recoveries — transitions the *victim* to
 *    Degraded/Quarantined and makes it refuse new mutations with
 *    NvStatus::HeapUnhealthy, while every sibling keeps serving with
 *    zero failed operations (heaps share no metadata: the blast radius
 *    of one tenant's corruption is structurally confined to its own
 *    device);
 *  - per-tenant capacity quotas ride the member config
 *    (capacity_quota_bytes, enforced on the extent path);
 *  - a second open of an already-registered name returns the existing
 *    member when the offered config is identical, and refuses with
 *    InvalidArgument — recorded on the existing member's sticky status
 *    so nvalloc_errno-style probes see it — when it differs. Silent
 *    first-wins config adoption is exactly the kind of cross-tenant
 *    surprise a pool exists to prevent;
 *  - members open, close, crash and recover independently: a sibling
 *    open or recovery is legal (and tested) while another member sits
 *    quarantined;
 *  - restore(name) is the repair path: run the auditor's fixups on the
 *    victim (reopening it first when the image failed recovery), then
 *    re-audit and return it to Serving only when clean.
 *
 * The pool itself holds only a name→member map under one mutex; member
 * traffic never takes that mutex, so pool bookkeeping cannot become a
 * cross-tenant serialization point. Health escalations are observed
 * through each member's HealthHook, which by contract only records
 * (the hook can fire under heap locks).
 */

#ifndef NVALLOC_NVALLOC_POOL_H
#define NVALLOC_NVALLOC_POOL_H

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nvalloc/nvalloc.h"

namespace nvalloc {

class HeapPool
{
  public:
    /** Outcome of open()/reopen(). `heap` is non-null for Ok (usable),
     *  and for CorruptMetadata (member kept, Quarantined, read-only
     *  introspection + restore()); null for InvalidArgument. */
    struct MemberResult
    {
        NvStatus status = NvStatus::Ok;
        NvAlloc *heap = nullptr;
        bool existing = false; //!< same name + same config re-open

        explicit operator bool() const { return status == NvStatus::Ok; }
    };

    /** One member's health, snapshot under the pool lock. */
    struct MemberHealth
    {
        std::string name;
        HeapHealth health = HeapHealth::Serving;
        uint64_t escalations = 0;
        uint64_t rejected_ops = 0;
        std::string last_reason; //!< most recent escalation reason
    };

    /** Pool-level counters (all relaxed; hook-side writers). */
    struct Stats
    {
        std::atomic<uint64_t> opens{0};
        std::atomic<uint64_t> reopen_hits{0}; //!< same-config re-opens
        std::atomic<uint64_t> option_mismatches{0};
        std::atomic<uint64_t> escalations{0};  //!< across all members
        std::atomic<uint64_t> quarantines{0};  //!< to Quarantined
        std::atomic<uint64_t> restores{0};     //!< restore() successes
    };

    HeapPool() = default;
    ~HeapPool() = default;

    HeapPool(const HeapPool &) = delete;
    HeapPool &operator=(const HeapPool &) = delete;

    /**
     * Open (create or recover) member `name` on `dev`. The pool forces
     * cfg.fault_containment on — that is its contract — and remembers
     * the resulting config: a later open of the same name returns the
     * existing heap when the offered config is identical
     * (result.existing), and InvalidArgument when it differs (also
     * recorded on the existing member's sticky lastStatus()).
     * A member whose image fails recovery is *kept*, Quarantined, so
     * restore() and per-heap fsck can work on it; its siblings are
     * untouched either way.
     */
    MemberResult open(const std::string &name, PmDevice &dev,
                      NvAllocConfig cfg = {});

    /** The member heap, or nullptr. The pointer stays valid until
     *  close()/reopen() of that name or pool destruction. */
    NvAlloc *find(const std::string &name) const;

    /** Normal shutdown of one member; the pool entry is removed.
     *  InvalidArgument for an unknown name. */
    NvStatus close(const std::string &name);

    /**
     * Tear down and re-open member `name` on its remembered device and
     * config — the crash-recovery path (the caller typically crashed
     * the member via simulateCrash() first; a crashed instance's
     * destructor touches no PM). Siblings keep serving throughout.
     */
    MemberResult reopen(const std::string &name);

    /**
     * Repair path for a Degraded/Quarantined member: reopen first if
     * its image failed recovery, run HeapAuditor::repair(), then
     * NvAlloc::restoreHealth() (re-audit; Serving only when clean).
     * Returns Ok, CorruptMetadata when the image stays unrecoverable,
     * or InvalidArgument for an unknown name.
     */
    NvStatus restore(const std::string &name);

    /** Member names, sorted (std::map order). */
    std::vector<std::string> names() const;

    size_t size() const;

    /** Health snapshot of every member. */
    std::vector<MemberHealth> snapshot() const;

    /** {"members":{name: <healthJson>, ...}, "stats":{...}} for
     *  nvalloc_stat --health and nvalloc_fsck --pool. */
    std::string healthJson() const;

    const Stats &stats() const { return stats_; }

  private:
    struct Member
    {
        PmDevice *dev = nullptr;
        NvAllocConfig cfg; //!< normalized config the member opened with
        std::unique_ptr<NvAlloc> heap;
    };

    /** Field-wise config identity (no operator== on the aggregate:
     *  padding makes memcmp a lie). */
    static bool sameConfig(const NvAllocConfig &a, const NvAllocConfig &b);

    void installHook(const std::string &name, NvAlloc *heap);

    MemberResult openLocked(const std::string &name, PmDevice &dev,
                            const NvAllocConfig &cfg);

    /** Guards members_. Never held while member heaps run traffic —
     *  only around map lookups/mutations and open/close/recover of the
     *  one member being operated on. */
    mutable std::mutex mu_;
    std::map<std::string, Member> members_;

    /** Leaf lock for hook-side reason recording: the health hook fires
     *  under heap locks, so it must never take mu_ (a pool thread
     *  holding mu_ may be walking that same heap). */
    mutable std::mutex reason_mu_;
    std::map<std::string, std::string> last_reasons_;

    Stats stats_;
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_POOL_H
