/**
 * @file
 * Build-time-free configuration of an NvAlloc instance.
 *
 * Every optimization of the paper is an independent runtime flag so
 * the Fig. 11 breakdown (Base / +Interleaved / +Log / full), the
 * Fig. 15 morphing ablation, and the Fig. 16 sensitivity sweeps are
 * driven by configuration rather than separate builds.
 */

#ifndef NVALLOC_NVALLOC_CONFIG_H
#define NVALLOC_NVALLOC_CONFIG_H

#include <cstddef>
#include <cstdint>

namespace nvalloc {

/** Crash-consistency model (paper §4.1, Table 2). */
enum class Consistency
{
    Log, //!< NVAlloc-LOG: WAL-based, strongly consistent
    Gc,  //!< NVAlloc-GC: post-crash garbage collection
    /**
     * NVAlloc-IC: internal collection (the paper's stated future
     * work, after PMDK's POBJ_FIRST/POBJ_NEXT model): allocation
     * bits are persisted eagerly like NVAlloc-LOG but no WAL is
     * written — instead the allocator itself can enumerate every
     * allocated object (NvAlloc::forEachAllocated), so a reference
     * can never be lost and replay is unnecessary.
     */
    InternalCollection,
};

/**
 * Where heap housekeeping (bookkeeping-log GC, extent decay, poison
 * scrubbing, tcache trimming) runs; see maintenance.h and DESIGN.md §8.
 */
enum class MaintenanceMode : uint8_t
{
    Off,    //!< all housekeeping inline on the mutator slow paths
    Manual, //!< only explicit step() calls — deterministic under test
    Thread, //!< a per-heap background thread, woken on pressure
};

/**
 * What a detected corruption (double free, canary stomp, guard
 * redzone hit, ...) does; see hardening.h and DESIGN.md §9.
 */
enum class HardeningPolicy : uint8_t
{
    Report,     //!< count + warn + CorruptionReport; leak the block
    Quarantine, //!< report, then delay the block's reuse in the FIFO
    Abort,      //!< std::abort at the faulting operation
};

/**
 * Small alloc/free hot-path engine (DESIGN.md §14). LockFree is the
 * default and the measured configuration: per-core regions with CAS
 * reservation, no mutex on the hit path. Locked is the escape hatch —
 * the pre-ISSUE-9 shape where every slab mutation runs under the
 * owning arena's VLock — kept for bisection and as the fallback the
 * lock-free path itself drops into when a slab is frozen.
 */
enum class FastPathMode : uint8_t
{
    Locked,
    LockFree,
};

struct NvAllocConfig
{
    Consistency consistency = Consistency::Log;

    // §5.1 interleaved mapping / layout.
    bool interleaved_bitmap = true; //!< slab bitmap bit stripes
    bool interleaved_tcache = true; //!< sub-tcache round robin
    bool interleaved_wal = true;    //!< WAL entry striping
    bool interleaved_log = true;    //!< bookkeeping-log entry striping
    unsigned bit_stripes = 6;       //!< paper default (Fig. 16a)

    /**
     * §6.5's future work, implemented: choose the stripe count of
     * each *new* slab from the current thread concurrency. Many
     * concurrent threads already spread flushes across XPLines, so
     * fewer stripes per slab avoid exhausting the XPBuffer; a lone
     * thread gets the full spread. Stripes never drop below 5 (the
     * reflush window is 4). Per-slab geometry is self-describing in
     * the slab header, so mixed-stripe heaps recover fine.
     */
    bool dynamic_stripes = false;

    // §5.2 slab morphing.
    bool slab_morphing = true;
    double morph_threshold = 0.20;  //!< SU, paper default (Fig. 16b)

    // §5.3 log-structured bookkeeping; false = in-place extent
    // headers, the Base configuration of Fig. 11(c) and Fig. 2.
    bool log_bookkeeping = true;

    /** Arenas ≈ CPU cores; the paper's testbed has 20 physical cores
     *  per socket and one arena per core. */
    unsigned num_arenas = 20;

    /** Per-class tcache capacity in blocks. */
    unsigned tcache_slots = 48;

    // ---- lock-free fast path (core_cache.h, DESIGN.md §14) ----------

    /** Small alloc/free engine; see FastPathMode. */
    FastPathMode fastpath = FastPathMode::LockFree;

    /** Per-arena, per-class region slots in the CoreCache: slabs
     *  pinned for lock-free reservation. More slots spread CAS traffic
     *  at the cost of pinned slab memory. In [1, 8]. */
    unsigned fastpath_regions = 2;

    /** Blocks claimed per lock-free reservation round (the tcache is
     *  topped up at most this much per miss before falling back to the
     *  locked refill search). In [1, 512]. */
    unsigned fastpath_batch = 24;

    /** Bookkeeping log file size (paper: 100 MB; scaled default). */
    size_t log_file_bytes = 4 * 1024 * 1024;

    /** Slow-GC trigger: live log bytes / log file bytes. */
    double log_gc_threshold = 0.5;

    /** Decay window for reclaimed/retained extents, virtual ns
     *  (paper/jemalloc: 50 ms epochs). */
    uint64_t decay_window_ns = 50'000'000;

    /** When false, skips all flush calls (eADR platform, §6.7); the
     *  device's latency model should be set to eADR mode as well. */
    bool flush_enabled = true;

    /**
     * Runtime statistics (the src/telemetry sharded counters and the
     * ctlRead/statsJson introspection tree). Off, the heap still
     * answers ctl queries — every counter just stays zero; the Arena
     * and log-level Stats structs keep counting regardless.
     */
    bool telemetry = true;

    /**
     * When non-zero, event tracing is armed from birth with a
     * per-thread ring of this many events, so heap creation and
     * recovery themselves can be traced. Tracing can also be started
     * later via telemetry().startTracing().
     */
    size_t trace_ring_capacity = 0;

    /**
     * Verify checksums (WAL entries, log chunks/entries, slab
     * headers) while recovering, rejecting torn or poisoned metadata
     * instead of interpreting it. Costs a little recovery-time crc
     * math (Fig. 18 reports both settings); turning it off reverts
     * to trusting the media, which is only safe on the idealized
     * no-fault device.
     */
    bool verify_recovery_checksums = true;

    // ---- background maintenance (maintenance.h, DESIGN.md §8) -------

    MaintenanceMode maintenance_mode = MaintenanceMode::Off;

    /** Virtual-ns budget of one maintenance slice: the slice stops
     *  starting new work units once the budget is spent (a unit in
     *  flight — one slow GC, one decay tick — always completes). */
    uint64_t maintenance_slice_ns = 200'000;

    /** Wake/slow-GC level as a fraction of log_gc_threshold: the
     *  service compacts the log once occupancy reaches
     *  wake_fraction * gc_threshold, i.e. *before* the append path's
     *  own inline trigger would fire. Must be in (0, 1]. */
    double maintenance_wake_fraction = 0.75;

    /** Thread mode: host-time poll cadence between slices when no
     *  wake arrives; 0 busy-polls (benchmarks forcing background GC
     *  to keep up with a fast mutator). */
    unsigned maintenance_interval_ms = 1;

    /** Max media-poisoned lines scrubbed per slice (bounds the slice
     *  even when a fault storm poisons many lines at once). */
    unsigned maintenance_scrub_lines = 8;

    // ---- heap hardening (hardening.h, DESIGN.md §9) -----------------

    /**
     * Classified free validation: rejected frees are sorted into
     * double/misaligned/wild/cross-heap (stats.hardening.*) and go
     * through the HardeningPolicy report machinery. The ordered
     * under-lock validation itself always runs — this flag only
     * controls the classification extras (including the cross-heap
     * registry probe) and the guard sampler.
     */
    bool hardened_free = true;

    /** Redirect one in N small allocations to a guard extent with a
     *  poisoned redzone tail (GWP-ASan style). 0 disables sampling;
     *  requires hardened_free. */
    unsigned guard_sample_rate = 0;

    /**
     * Reserve the last 8 bytes of every small block for a per-block
     * canary word, checked at free and by the auditor. Recorded in the
     * superblock (hardening_flags) because it changes how much of each
     * block the application owns: reopening an existing heap always
     * adopts the image's setting, whatever this says.
     */
    bool redzone_canaries = false;

    /** Delay the reuse of freed small blocks through a FIFO of this
     *  many blocks, poison-filled and verified at eviction so a
     *  use-after-free write is detectable. 0 disables. */
    unsigned quarantine_depth = 0;

    /** What a detected corruption does (report-and-leak / quarantine
     *  / abort). */
    HardeningPolicy hardening_policy = HardeningPolicy::Report;

    // ---- pool containment & patrol scrub (pool.h, DESIGN.md §12) ----

    /**
     * Online patrol scrubber: a fifth maintenance stage that walks
     * superblock / region-table / slab / log-chain checksums
     * incrementally against the live mutator (auditor patrol mode),
     * escalating stable damage to the heap health machine. Runs only
     * when maintenance runs (Manual/Thread); off, the stage is skipped
     * entirely.
     */
    bool patrol_scrub = true;

    /** Metadata items (slabs, log chunks, region entries) examined per
     *  patrol slice. Bounds the virtual time a slice spends holding
     *  arena vlocks / the large-allocator lock. */
    unsigned patrol_items = 8;

    /** Bounded re-read count before a checksum mismatch observed under
     *  a concurrent mutator is declared damage rather than a transient
     *  in-flight update. */
    unsigned patrol_retries = 3;

    /**
     * Fault containment (HeapPool members): when corruption is
     * detected — by the hardened-free pipeline, the auditor, the
     * patrol scrubber or recovery — the heap transitions to
     * Degraded/Quarantined and refuses new allocations with
     * NvStatus::HeapUnhealthy until NvAlloc::restoreHealth() passes a
     * clean audit. Off (default), health is still tracked and exported
     * but never gates operations, preserving single-heap semantics.
     */
    bool fault_containment = false;

    /** Per-tenant capacity quota in bytes, enforced on the extent path
     *  (activated extent bytes, slabs included). 0 = unlimited. */
    uint64_t capacity_quota_bytes = 0;

    /**
     * Validate the knobs an NvAlloc::open() caller can get wrong
     * without tripping anything immediately. Returns nullptr when the
     * config is usable, else a human-readable reason; open() maps a
     * non-null reason to NvStatus::InvalidArgument before construction.
     */
    const char *
    invalidReason() const
    {
        if (bit_stripes < 1 || bit_stripes > 32)
            return "bit_stripes must be in [1, 32]";
        if (num_arenas < 1)
            return "num_arenas must be >= 1";
        if (tcache_slots < 1)
            return "tcache_slots must be >= 1";
        if (fastpath > FastPathMode::LockFree)
            return "fastpath out of range";
        if (fastpath_regions < 1 || fastpath_regions > 8)
            return "fastpath_regions must be in [1, 8]";
        if (fastpath_batch < 1 || fastpath_batch > 512)
            return "fastpath_batch must be in [1, 512]";
        if (!(morph_threshold >= 0.0 && morph_threshold <= 1.0))
            return "morph_threshold must be in [0, 1]";
        if (!(log_gc_threshold > 0.0))
            return "log_gc_threshold must be > 0";
        if (log_bookkeeping && log_file_bytes < 4096)
            return "log_file_bytes must be >= 4096";
        if (maintenance_mode > MaintenanceMode::Thread)
            return "maintenance_mode out of range";
        if (maintenance_slice_ns == 0)
            return "maintenance_slice_ns must be > 0";
        if (!(maintenance_wake_fraction > 0.0 &&
              maintenance_wake_fraction <= 1.0))
            return "maintenance_wake_fraction must be in (0, 1]";
        if (maintenance_scrub_lines == 0)
            return "maintenance_scrub_lines must be > 0";
        if (hardening_policy > HardeningPolicy::Abort)
            return "hardening_policy out of range";
        if (patrol_scrub && patrol_items == 0)
            return "patrol_items must be > 0";
        if (patrol_scrub && patrol_retries == 0)
            return "patrol_retries must be > 0";
        if (capacity_quota_bytes != 0 &&
            capacity_quota_bytes < (uint64_t{1} << 16))
            return "capacity_quota_bytes must be 0 or >= 64 KB";
        if (guard_sample_rate != 0 && !hardened_free)
            return "guard_sample_rate requires hardened_free";
        if (quarantine_depth > (1u << 20))
            return "quarantine_depth must be <= 2^20";
        return nullptr;
    }
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_CONFIG_H
