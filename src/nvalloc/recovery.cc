/**
 * @file
 * Recovery paths of NVAlloc (paper §4.4).
 *
 * Normal-shutdown recovery rebuilds all volatile metadata: arenas are
 * recreated, the bookkeeping log (or the in-place descriptors) is
 * replayed to resurrect VEHs and vslabs — including slab_in morph
 * state from index tables — and the gaps between activated extents
 * become reclaimed free extents.
 *
 * Failure recovery additionally resolves in-flight operations: the
 * LOG variant replays the newest WAL entry of every thread ring and
 * rolls it forward or back depending on whether the attach word was
 * published; the GC variant runs a conservative mark from the
 * persistent roots and rebuilds every slab bitmap from reachability,
 * reclaiming leaked blocks and extents.
 */

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "nvalloc/nvalloc.h"
#include "pm/vclock.h"

namespace nvalloc {

void
NvAlloc::recoverHeap()
{
    uint64_t t0 = VClock::now();
    recovery_.performed = true;

    // A failure happened if any arena never reached NormalShutdown.
    for (unsigned i = 0; i < sb_->num_arenas; ++i) {
        auto st = ArenaState(sb_->arena_state[i]);
        if (st == ArenaState::Running || st == ArenaState::Recovering)
            recovery_.after_failure = true;
    }

    // The superblock is the root of trust: if its config fields are
    // torn or poisoned, nothing below it can be located, so this is
    // the one corruption recovery cannot contain — the open degrades
    // to Failed mode before any persistent state is touched (the
    // arena-state stamp above all else), leaving the media exactly as
    // found for offline fsck.
    recovery_.lines_poisoned = dev_.poisonedLineCount();
    if (cfg_.verify_recovery_checksums &&
        (dev_.isPoisoned(sb_, sizeof(NvSuperblock)) ||
         sb_->sb_crc != superblockCrc(*sb_))) {
        NV_WARN("superblock corrupt (crc/poison); opening in Failed mode");
        open_failed_ = true;
        open_status_ = NvStatus::CorruptMetadata;
        last_status_.store(NvStatus::CorruptMetadata,
                           std::memory_order_relaxed);
        return;
    }
    if (sb_->version != kSuperVersion) {
        NV_WARN("superblock version mismatch; opening in Failed mode");
        open_failed_ = true;
        open_status_ = NvStatus::CorruptMetadata;
        last_status_.store(NvStatus::CorruptMetadata,
                           std::memory_order_relaxed);
        return;
    }
    setArenaStates(ArenaState::Recovering);

    // The on-media format pins geometry choices; honour them over the
    // (possibly different) requested config.
    cfg_.num_arenas = sb_->num_arenas;
    cfg_.bit_stripes = sb_->stripes;
    cfg_.consistency = sb_->consistency == 0
                           ? Consistency::Log
                           : (sb_->consistency == 1
                                  ? Consistency::Gc
                                  : Consistency::InternalCollection);
    // The canary flag is likewise an on-media property: stamping
    // canaries into an image created without them would smash the last
    // word of full-size live blocks, and dropping them would leave
    // stale stamps the auditor reads as stomps. Adopt the image's
    // choice in both directions (zero on pre-hardening images).
    cfg_.redzone_canaries =
        (sb_->hardening_flags & kHardeningFlagCanaries) != 0;

    large_.init(&dev_, cfg_, usesBookkeepingLog() ? &log_ : nullptr,
                region_table_, region_slots_);
    for (unsigned i = 0; i < cfg_.num_arenas; ++i) {
        arenas_.push_back(std::make_unique<Arena>(
            i, &dev_, &cfg_, &large_, &slab_radix_,
            &attached_threads_));
        arenas_.back()->setTelemetry(&tel_);
        arenas_.back()->setFastPathStats(&fp_stats_);
    }

    auto adopt_slab = [&](uint64_t off) {
        // Rebuilding a vslab reads the 4 KB persistent header (a
        // sequential burst) and scans the bitmap to reconstruct the
        // volatile copy and counters — this is why NVAlloc-LOG's
        // recovery is somewhat slower than PMDK's plain metadata walk
        // (paper Fig. 18: 45 ms vs 34 ms).
        for (int line = 0; line < 8; ++line)
            dev_.chargeRead(true);
        if (isQuarantined(off))
            return; // refused in an earlier recovery; still leaked
        if (!VSlab::headerLooksValid(&dev_, off,
                                     cfg_.verify_recovery_checksums)) {
            // A slab whose header cannot be trusted is contained, not
            // fatal: its 64 KB is leaked into the persistent
            // quarantine list and the rest of the heap stays usable.
            quarantineSlab(off);
            return;
        }
        if (cfg_.verify_recovery_checksums)
            VClock::advance(2, TimeKind::Other); // header crc math
        auto *slab = new VSlab(&dev_, off, cfg_.flush_enabled,
                               gcMode());
        // Per-block vbitmap/counter reconstruction.
        VClock::advance(5 * uint64_t(slab->capacity()),
                        TimeKind::Other);
        // Distribute recovered slabs round-robin; the original
        // arena assignment is volatile state.
        arenas_[recovery_.slabs_rebuilt % arenas_.size()]
            ->registerSlab(slab);
        ++recovery_.slabs_rebuilt;
    };

    if (usesBookkeepingLog()) {
        if (!log_.attach(&dev_, sb_->log_off, sb_->log_bytes,
                         cfg_.interleaved_log, cfg_.flush_enabled,
                         cfg_.log_gc_threshold, /*create=*/false,
                         cfg_.verify_recovery_checksums)) {
            // The log header is the single root of every large-extent
            // record; with it untrusted, replay would invent or drop
            // extents. Degrade to Failed mode instead of guessing.
            NV_WARN("bookkeeping log header corrupt; "
                    "opening in Failed mode");
            open_failed_ = true;
            open_status_ = NvStatus::CorruptMetadata;
            last_status_.store(NvStatus::CorruptMetadata,
                               std::memory_order_relaxed);
            return;
        }
        // Paper: "perform a slow GC on the persistent bookkeeping log
        // to clean up its tombstone entries. Then scan and process
        // every log entry."
        log_.replay([&](LogType type, uint64_t off, uint64_t size,
                        LogEntryRef ref) {
            large_.adoptActivated(off, size, type == kLogSlab, ref);
            ++recovery_.extents_rebuilt;
            if (type == kLogSlab)
                adopt_slab(off);
        });
        log_.slowGc();
        large_.rebuildFreeSpace();
        recovery_.log_entries_rejected =
            log_.stats().replay_entries_rejected;
        recovery_.log_chunks_rejected =
            log_.stats().replay_chunks_rejected;
    } else {
        large_.recoverFromDescriptors([&](uint64_t off, uint64_t size) {
            NV_ASSERT(size == kSlabSize);
            adopt_slab(off);
        });
    }
    recovery_.free_extents_rebuilt = large_.reclaimedBytes();

    if (recovery_.after_failure) {
        if (logMode()) {
            replayWals();
        } else if (gcMode()) {
            conservativeGc();
        }
        // InternalCollection: bitmaps are eagerly persisted and
        // self-describing; an interrupted operation left at most an
        // allocated-but-unpublished block, which the application can
        // always reach through forEachAllocated — no replay needed.
    }

    // Canary stamps are never flushed (they are detection state, not
    // heap state), so a crash may have dropped any subset of them with
    // the cut. Restamp every live small block so the first
    // post-recovery free of a surviving block is not misreported as a
    // stomp. No-op unless the image carries the canary flag.
    restampCanaries();

    // Seal every replay/repair effect before destroying the WAL
    // entries that describe it: if the effects and the entry clears
    // shared an epoch and recovery itself crashed at its end, a clear
    // could become durable while the effect it records was dropped —
    // and the next recovery would have nothing left to redo.
    dev_.fence();
    clearWalRings();
    recovery_.virtual_ns = VClock::now() - t0;
    tel_.add(StatCounter::RecoveryRun);
    tel_.event(TraceOp::Recovery, recovery_.virtual_ns);
}

void
NvAlloc::clearWalRings()
{
    for (unsigned i = 0; i < kMaxThreads; ++i) {
        auto *ring = static_cast<WalEntry *>(
            dev_.at(sb_->wal_off + uint64_t(i) * kWalRingBytes));

        // Retire occupied entries oldest-seq-first, one fenced epoch
        // each: should clearing itself crash, the durable ring is then
        // always a newest-suffix of the history, so the surviving
        // max-seq entry is still the one replay would (idempotently)
        // redo. A bulk clear can tear so that an ancient entry becomes
        // the ring's newest and replays a long-completed operation
        // against today's heap — freeing a live block.
        std::vector<WalEntry *> occupied;
        for (unsigned s = 0; s < kWalRingBytes / sizeof(WalEntry); ++s) {
            if ((ring[s].block_op & 3) != kWalNone)
                occupied.push_back(&ring[s]);
        }
        std::sort(occupied.begin(), occupied.end(),
                  [](const WalEntry *a, const WalEntry *b) {
                      return a->seq < b->seq;
                  });
        for (WalEntry *e : occupied) {
            std::memset(e, 0, sizeof(*e));
            dev_.persist(e, sizeof(*e), TimeKind::FlushWal);
            dev_.fence();
        }

        // Scrub the remaining (already empty or torn-beyond-crc) lines
        // in one cheap epoch; any tearing here can only zero bytes of
        // entries that no longer parse.
        std::memset(ring, 0, kWalRingBytes);
        dev_.persist(ring, kWalRingBytes, TimeKind::FlushWal);
    }
    dev_.fence();
}

/**
 * Roll the newest WAL entry of each ring forward or back. The attach
 * word is the commit point: if it holds the block offset, the alloc
 * completed (resp. the free never started); otherwise the operation
 * is undone (resp. completed).
 */
void
NvAlloc::replayWals()
{
    auto ensure_small_free = [&](VSlab *slab, uint64_t off) {
        unsigned idx = slab->blockIndexOf(off);
        if (idx < slab->capacity() && slab->isAllocated(idx)) {
            // Rebuilt vslab counts this block live; undo it.
            VLockGuard g(slab->arena->lock);
            slab->arena->freeDirect(slab, idx);
            return true;
        }
        return false;
    };

    // Tx runs found across the rings are resolved *after* the scan,
    // sorted by tx id. Different threads' committed transactions may
    // have written the same word (a KV bucket head, say): re-applying
    // their redo in arbitrary slot order could rewind the word to an
    // older committed value, orphaning whatever the newer transaction
    // linked. Callers that race on a word are required to serialize
    // those transactions begin-to-commit (the KV stripe lock does),
    // which makes tx-id order — ids are assigned at txBegin — the
    // commit order for every conflicting pair.
    std::vector<std::pair<uint32_t, uint64_t>> tx_runs;

    // Ids are allocated by a volatile counter, so this instance would
    // hand out ids the rings still hold records for (a sealed commit
    // from the previous instance, say). Seed the counter past every id
    // seen so a fresh transaction can never alias a stale run.
    uint32_t max_tx_id = 0;

    for (unsigned slot = 0; slot < kMaxThreads; ++slot) {
        uint64_t ring_off = sb_->wal_off + uint64_t(slot) * kWalRingBytes;
        dev_.chargeRead(true); // scanning the ring
        bool verify = cfg_.verify_recovery_checksums;
        if (verify) {
            // crc32c over the ring's 64 lines, already in cache from
            // the scan read.
            VClock::advance(kWalRingBytes / kCacheLine,
                            TimeKind::Other);
        }
        Wal::forEachIntact(&dev_, ring_off, [&](const WalEntry &we) {
            if (we.tx_id > max_tx_id)
                max_tx_id = we.tx_id;
        });

        unsigned rejected = 0;
        const WalEntry *e =
            Wal::newestEntry(&dev_, ring_off, &rejected, verify);
        recovery_.wal_rejected += rejected;
        if (!e)
            continue;

        // A tx-tagged newest entry means the crash hit inside a
        // transaction's journal / commit / apply window: resolve the
        // whole run all-or-nothing (tx.cc) instead of replaying the
        // one entry. A *non*-newest tx record needs nothing — the
        // owning thread continued past it, so its apply completed.
        if (e->tx_id != 0) {
            tx_runs.emplace_back(e->tx_id, ring_off);
            continue;
        }

        WalOp op = WalOp(e->block_op & 3);
        uint64_t block = e->block_op >> 2;
        bool published = false;
        // Bounds-check before dereferencing: with verification off a
        // torn entry reaches this point, and a wild where_off must not
        // send recovery reading outside the device.
        if (e->where_off != kWalNoWhere &&
            e->where_off + sizeof(uint64_t) <= dev_.size()) {
            published =
                *static_cast<uint64_t *>(dev_.at(e->where_off)) == block;
        }

        VSlab *slab = slabOf(block);
        Veh *veh = slab ? nullptr : large_.findVeh(block);

        if (op == kWalAlloc) {
            if (published) {
                // Committed. Normally the allocation bit went durable
                // before the attach word, but an early cache eviction
                // can persist the word while the bit is lost with the
                // cut — roll the bit forward so the reachable object
                // is never handed out again.
                unsigned idx =
                    slab ? slab->blockIndexOf(block) : 0;
                if (slab && idx < slab->capacity() &&
                    !slab->isAllocated(idx)) {
                    VLockGuard g(slab->arena->lock);
                    slab->claimBlock(idx);
                }
                ++recovery_.wal_completions;
                continue;
            }
            // Undo a torn allocation: clear the block/extent state.
            if (slab) {
                if (ensure_small_free(slab, block))
                    ++recovery_.wal_undos;
            } else if (veh && veh->off == block &&
                       veh->state == Veh::State::Activated &&
                       !veh->is_slab) {
                large_.free(block);
                ++recovery_.wal_undos;
            }
        } else if (op == kWalFree) {
            if (published)
                continue; // the free never reached its commit point
            // Complete a torn free.
            if (slab) {
                unsigned old_idx = 0;
                VLockGuard g(slab->arena->lock);
                if (slab->isOldBlock(block, old_idx)) {
                    slab->arena->freeOld(slab, old_idx);
                    ++recovery_.wal_completions;
                } else {
                    unsigned idx = slab->blockIndexOf(block);
                    if (idx < slab->capacity() && slab->isAllocated(idx)) {
                        slab->arena->freeDirect(slab, idx);
                        ++recovery_.wal_completions;
                    }
                }
            } else if (veh && veh->off == block &&
                       veh->state == Veh::State::Activated &&
                       !veh->is_slab) {
                large_.free(block);
                ++recovery_.wal_completions;
            }
        }
    }

    std::sort(tx_runs.begin(), tx_runs.end());
    for (const auto &[tx_id, ring_off] : tx_runs)
        resolveTxRun(ring_off, tx_id);

    tx_mgr_.seedNextId(max_tx_id);
}

/**
 * Conservative collection for the GC variant (paper §4.4, as in
 * Makalu): starting from the persistent root words, treat every
 * 8-byte-aligned word whose value is the offset of a live heap object
 * as a reference. Slab bitmaps are rebuilt purely from reachability —
 * which is what lets NVAlloc-GC skip all small-metadata flushes at
 * runtime.
 */
void
NvAlloc::conservativeGc()
{
    struct Range
    {
        uint64_t off;
        uint64_t size;
    };

    // Mark state.
    std::unordered_map<VSlab *, std::vector<bool>> slab_marks;
    std::unordered_map<VSlab *, std::vector<bool>> old_marks;
    std::unordered_set<Veh *> extent_marks;
    std::vector<Range> work;

    auto resolve = [&](uint64_t v) -> bool {
        if (v == 0 || v >= dev_.size() || (v & 7) != 0)
            return false;
        if (VSlab *slab = slabOf(v)) {
            if (v < slab->slabOffset() + kSlabHeaderSize)
                return false;
            uint64_t rel = v - slab->slabOffset() - kSlabHeaderSize;
            if (slab->morphing()) {
                // Try the old geometry: interior pointers into a
                // blocks_before range keep the old block alive.
                unsigned old_idx = 0;
                if (slab->isOldBlock(v, old_idx)) {
                    auto &marks = old_marks[slab];
                    if (marks.empty())
                        marks.assign(kMaxSlabBlocks, false);
                    if (!marks[old_idx]) {
                        marks[old_idx] = true;
                        work.push_back(
                            {v, SlabGeometry::compute(
                                    slab->header()->old_size_class,
                                    slab->header()->stripes)
                                    .block_size});
                    }
                    return true;
                }
            }
            unsigned idx = unsigned(rel / slab->blockSize());
            if (idx >= slab->capacity())
                return false;
            auto &marks = slab_marks[slab];
            if (marks.empty())
                marks.assign(slab->capacity(), false);
            if (!marks[idx]) {
                marks[idx] = true;
                work.push_back({slab->blockOffset(idx),
                                slab->blockSize()});
            }
            return true;
        }
        if (Veh *veh = large_.findVeh(v)) {
            if (veh->state != Veh::State::Activated || veh->is_slab)
                return false;
            if (extent_marks.insert(veh).second)
                work.push_back({veh->off, veh->size});
            return true;
        }
        return false;
    };

    for (unsigned i = 0; i < kNumGcRoots; ++i) {
        if (sb_->gc_roots[i] != 0)
            resolve(sb_->gc_roots[i]);
    }

    while (!work.empty()) {
        Range r = work.back();
        work.pop_back();
        // Each object dereference is a random PM read; scanning its
        // words is sequential.
        dev_.chargeRead(false);
        auto *words = static_cast<uint64_t *>(dev_.at(r.off));
        for (uint64_t i = 0; i < r.size / 8; ++i)
            resolve(words[i]);
        VClock::advance(2 * (r.size / 8), TimeKind::Other);
    }

    // Snapshot the slab set first: the reclaim pass below can release
    // fully-free slabs, which mutates the arenas' slab sets.
    std::vector<VSlab *> all_slabs;
    for (auto &arena : arenas_) {
        arena->forEachSlab(
            [&](VSlab *slab) { all_slabs.push_back(slab); });
    }

    // Pass 1 — roll forward: a reachable block whose bit never got
    // persisted was an in-flight allocation that already published its
    // offset; claim it. Claims run before any reclaim so a slab can
    // never be released while it still has reachable blocks.
    for (VSlab *slab : all_slabs) {
        auto it = slab_marks.find(slab);
        if (it == slab_marks.end())
            continue;
        VLockGuard g(slab->arena->lock);
        for (unsigned idx = 0; idx < slab->capacity(); ++idx) {
            if (!it->second[idx])
                continue;
            ++recovery_.gc_marked_blocks;
            if (!slab->isAllocated(idx)) {
                slab->claimBlock(idx);
                ++recovery_.wal_completions;
            }
        }
    }

    // Pass 2 — reclaim: allocated but unreachable blocks are leaks;
    // the persistent bitmap becomes exactly the reachable set.
    for (VSlab *slab : all_slabs) {
        auto it = slab_marks.find(slab);
        {
            VLockGuard g(slab->arena->lock);
            for (unsigned idx = 0; idx < slab->capacity(); ++idx) {
                bool reachable =
                    it != slab_marks.end() && it->second[idx];
                if (slab->isAllocated(idx) && !reachable) {
                    slab->arena->freeDirect(slab, idx);
                    ++recovery_.gc_reclaimed_blocks;
                }
            }
        }
        if (slab->morphing()) {
            // Old blocks whose index entries are live but that are
            // unreachable get reclaimed through the morph path.
            auto oit = old_marks.find(slab);
            std::vector<unsigned> dead;
            const SlabHeader *hdr = slab->header();
            for (unsigned i = 0; i < hdr->index_count; ++i) {
                uint16_t entry = hdr->index_table[i];
                if (!(entry & kIndexAllocated))
                    continue;
                unsigned old_idx = entry & kIndexBlockMask;
                bool reachable = oit != old_marks.end() &&
                                 oit->second[old_idx];
                if (!reachable)
                    dead.push_back(old_idx);
            }
            for (unsigned old_idx : dead) {
                VLockGuard g(slab->arena->lock);
                slab->arena->freeOld(slab, old_idx);
                ++recovery_.gc_reclaimed_blocks;
            }
        }
    }

    // Sweep large extents.
    std::vector<uint64_t> dead_extents;
    large_.forEachActivated([&](Veh *veh) {
        if (!veh->is_slab && !extent_marks.count(veh))
            dead_extents.push_back(veh->off);
    });
    for (uint64_t off : dead_extents) {
        large_.free(off);
        ++recovery_.gc_reclaimed_extents;
    }
}

} // namespace nvalloc
