/**
 * @file
 * The paper's C-style programming interface (§4.1), as a veneer over
 * the C++ API:
 *
 *   nvalloc_init / nvalloc_exit
 *   nvalloc_malloc_to / nvalloc_free_from
 *
 * Thread contexts are managed implicitly: each calling thread is
 * attached on first use and detached when the instance exits. The
 * attach target is a pointer to a persistent uint64_t word inside the
 * heap (offset-based, so structures survive remapping).
 */

#ifndef NVALLOC_NVALLOC_NVALLOC_C_H
#define NVALLOC_NVALLOC_NVALLOC_C_H

#include <cstddef>
#include <cstdint>

namespace nvalloc {

class PmDevice;
class NvAlloc;
struct ThreadCtx;

struct NvInstance; //!< opaque

/** Options for the original nvalloc_init() entry point (deprecated —
 *  unversioned, so it can never grow; new code uses nvalloc_options
 *  and nvalloc_open_ex below). */
struct NvAllocOptions
{
    bool gc_variant = false;   //!< NVAlloc-GC instead of NVAlloc-LOG
    unsigned bit_stripes = 6;
    bool slab_morphing = true;
};

/** Current nvalloc_options layout revision. */
#define NVALLOC_OPTIONS_VERSION 4u

/** Small-allocation fast-path modes for nvalloc_options.fastpath. */
enum NvFastPathMode
{
    NVALLOC_FASTPATH_LOCKED = 0,   //!< every alloc/free takes the
                                   //!< arena lock (pre-v4 behaviour;
                                   //!< escape hatch)
    NVALLOC_FASTPATH_LOCKFREE = 1, //!< per-core regions + atomic
                                   //!< bitfields; no mutex on the hit
                                   //!< path (default)
};

/** Hardening policies for nvalloc_options.hardening_policy: what to
 *  do after a corruption (double free, canary stomp, ...) is
 *  detected. */
enum NvHardeningPolicy
{
    NVALLOC_HARDEN_REPORT = 0,     //!< count, report, contain (leak)
    NVALLOC_HARDEN_QUARANTINE = 1, //!< also delay reuse via the FIFO
    NVALLOC_HARDEN_ABORT = 2,      //!< abort() on first detection
};

/** Maintenance modes for nvalloc_options.maintenance_mode. */
enum NvMaintenanceMode
{
    NVALLOC_MAINT_OFF = 0,    //!< no background work (default)
    NVALLOC_MAINT_MANUAL = 1, //!< slices run only via "step"
    NVALLOC_MAINT_THREAD = 2, //!< dedicated background thread
};

/**
 * Versioned open options for nvalloc_open_ex(). Always initialise
 * with nvalloc_options_init() (which stamps `version`) and then
 * override fields; a caller compiled against an older revision of
 * this header passes its smaller version number and the library only
 * reads the fields that revision defined.
 */
struct nvalloc_options
{
    uint32_t version;       //!< NVALLOC_OPTIONS_VERSION at build time
    /* -- version 1 fields ------------------------------------------ */
    int gc_variant;         //!< NVAlloc-GC instead of NVAlloc-LOG
    unsigned bit_stripes;   //!< interleaved bitmap stripes [1,32]
    int slab_morphing;      //!< enable slab morphing (§5.2)
    int maintenance_mode;   //!< an NvMaintenanceMode value
    uint64_t maintenance_slice_ns;    //!< slice budget, virtual ns
    double maintenance_wake_fraction; //!< wake at this share of the
                                      //!< log GC threshold, (0,1]
    unsigned maintenance_scrub_lines; //!< poison lines per slice
    /* -- version 2 fields (hardening, PR 5) ------------------------ */
    unsigned guard_sample_rate;  //!< redirect 1-in-N small allocs to a
                                 //!< guard extent; 0 disables sampling
    int redzone_canaries;        //!< per-block canary words (on-media
                                 //!< property; adopted from the image
                                 //!< when reopening an existing heap)
    unsigned quarantine_depth;   //!< delayed-reuse FIFO depth; 0 = off
    int hardening_policy;        //!< an NvHardeningPolicy value
    /* -- version 3 fields (pool & patrol scrub, PR 7) -------------- */
    int patrol_scrub;            //!< online metadata patrol (stage 5)
    unsigned patrol_items;       //!< items examined per patrol slice
    unsigned patrol_retries;     //!< re-reads before declaring damage
    int fault_containment;       //!< Degraded/Quarantined refuses ops
                                 //!< (forced on for named/pool opens)
    uint64_t capacity_quota_bytes; //!< per-tenant extent quota; 0 = off
    /* -- version 4 fields (lock-free fast path, PR 9) -------------- */
    int fastpath;                //!< an NvFastPathMode value
    unsigned fastpath_regions;   //!< per-core region slots per size
                                 //!< class, [1,8]
    unsigned fastpath_batch;     //!< blocks claimed per lock-free
                                 //!< reservation, [1,512]
};

/** Fill `o` with the defaults of this header revision. */
inline void
nvalloc_options_init(nvalloc_options *o)
{
    o->version = NVALLOC_OPTIONS_VERSION;
    o->gc_variant = 0;
    o->bit_stripes = 6;
    o->slab_morphing = 1;
    o->maintenance_mode = NVALLOC_MAINT_OFF;
    o->maintenance_slice_ns = 200000;
    o->maintenance_wake_fraction = 0.75;
    o->maintenance_scrub_lines = 8;
    o->guard_sample_rate = 0;
    o->redzone_canaries = 0;
    o->quarantine_depth = 0;
    o->hardening_policy = NVALLOC_HARDEN_REPORT;
    o->patrol_scrub = 1;
    o->patrol_items = 8;
    o->patrol_retries = 3;
    o->fault_containment = 0;
    o->capacity_quota_bytes = 0;
    o->fastpath = NVALLOC_FASTPATH_LOCKFREE;
    o->fastpath_regions = 2;
    o->fastpath_batch = 24;
}

/** errno-style status codes (see nvalloc_errno). */
enum NvErrno
{
    NVALLOC_OK = 0,
    NVALLOC_ENOMEM,   //!< heap/log exhausted even after reclamation
    NVALLOC_EAGAIN,   //!< all thread slots in use; detach one first
    NVALLOC_EINVAL,   //!< bad size, double free, or foreign pointer
    NVALLOC_ECORRUPT, //!< metadata failed validation; heap degraded
};

/** Create (or recover) an NVAlloc heap on `dev`. Deprecated in favor
 *  of nvalloc_open_ex(), which validates its options and reports
 *  *why* an open failed instead of returning a silently degraded
 *  instance. */
NvInstance *nvalloc_init(PmDevice *dev,
                         const NvAllocOptions *opts = nullptr);

/**
 * Versioned open. On success stores the new instance in *out and
 * returns NVALLOC_OK. Error contract (errno-style return; *out is
 * written only where stated):
 *
 *  - NVALLOC_EINVAL: `dev`, `opts` or `out` is null, opts->version is
 *    0 or newer than this library, or an option value fails
 *    validation (bad bit_stripes, maintenance knobs out of range, an
 *    unknown fastpath mode, fastpath_regions outside [1,8], or
 *    fastpath_batch outside [1,512]). *out is untouched and the
 *    device was not modified. Callers compiled against v1/v2/v3
 *    headers are still accepted: fields their revision did not define
 *    are never read and take this library's defaults (fastpath
 *    defaults to NVALLOC_FASTPATH_LOCKFREE).
 *  - NVALLOC_ECORRUPT: the heap image failed validation. *out
 *    receives a *degraded* instance: allocation calls fail with
 *    NVALLOC_ECORRUPT, but nvalloc_ctl / nvalloc_stats_json /
 *    nvalloc_impl work, so callers can run the auditor and decide
 *    whether to repair. Release it with nvalloc_exit as usual.
 *  - NVALLOC_OK: *out receives a fully usable instance.
 *
 * nvalloc_errno on the new instance reflects the open status.
 */
int nvalloc_open_ex(PmDevice *dev, const nvalloc_options *opts,
                    NvInstance **out);

/**
 * Named (pool) open: the process-wide heap pool keyed by `name`.
 * First open of a name creates (or recovers) the member on `dev`;
 * every later open of the same name with an IDENTICAL effective
 * configuration returns the SAME instance (handle-refcounted: each
 * successful open needs its own nvalloc_exit, and the heap shuts down
 * on the last one). An open of a registered name with DIFFERENT
 * options fails with NVALLOC_EINVAL — never silent first-wins — with
 * *out untouched, and nvalloc_errno on the existing instance reads
 * NVALLOC_EINVAL too.
 *
 * Pool members are fault-contained regardless of
 * opts->fault_containment: detected corruption quarantines the member
 * (allocations fail with NVALLOC_ECORRUPT) while other members keep
 * serving. NVALLOC_ECORRUPT at open follows the nvalloc_open_ex
 * contract (*out receives the degraded — and quarantined — member).
 */
int nvalloc_open_named(PmDevice *dev, const char *name,
                       const nvalloc_options *opts, NvInstance **out);

/** Heap health states (see stats.health.state / nvalloc_health). */
enum NvHeapHealth
{
    NVALLOC_HEALTH_SERVING = 0,
    NVALLOC_HEALTH_SCRUBBING = 1,   //!< patrol batch in flight
    NVALLOC_HEALTH_DEGRADED = 2,    //!< corruption detected, repaired
    NVALLOC_HEALTH_QUARANTINED = 3, //!< unrepaired damage; fsck first
};

/** Current health state of the instance (an NvHeapHealth value). */
int nvalloc_health(NvInstance *inst);

/** Re-audit the heap and, when clean, return it to Serving. Returns
 *  NVALLOC_OK, or NVALLOC_ECORRUPT when the audit still finds
 *  violations (run the fsck/repair tooling first). */
int nvalloc_restore_health(NvInstance *inst);

/**
 * Drive the maintenance service: `action` is one of "pause",
 * "resume", "step" (run one bounded slice on the calling thread —
 * the Manual-mode pacing hook), or "wake" (nudge the background
 * thread). Returns NVALLOC_OK or NVALLOC_EINVAL for an unknown
 * action. Also reachable as nvalloc_ctl("maintenance.<action>").
 */
int nvalloc_maintenance(NvInstance *inst, const char *action);

/** Normal shutdown; detaches any implicitly attached threads. */
void nvalloc_exit(NvInstance *inst);

/**
 * Allocate `size` bytes; atomically publish the block's offset into
 * the persistent word `*where` (may be null for a volatile attach).
 * Returns the mapped address, or nullptr on failure —
 * nvalloc_errno() then reports why (NVALLOC_ENOMEM after the
 * reclamation slow path gave up, NVALLOC_EAGAIN if this thread could
 * not be attached, NVALLOC_ECORRUPT if the heap failed to open).
 */
void *nvalloc_malloc_to(NvInstance *inst, size_t size, uint64_t *where);

/** Free the block whose offset `*where` holds; clears the word.
 *  Returns NVALLOC_OK, or NVALLOC_EINVAL — leaving the heap
 *  untouched — for a null/zero word, a double free, or a foreign
 *  pointer. */
int nvalloc_free_from(NvInstance *inst, uint64_t *where);

/** Status of the most recent failing call (sticky, errno style;
 *  successful calls do not reset it). */
int nvalloc_errno(NvInstance *inst);

/* ---- transactions (DESIGN.md §11) ---------------------------------
 *
 * A transaction groups allocations, frees and 8-byte word updates on
 * the calling thread into one atomic unit: after a crash, recovery
 * resolves the whole group all-or-nothing. One transaction may be open
 * per thread; while it is open, plain nvalloc_malloc_to /
 * nvalloc_free_from on the same thread fail with NVALLOC_EINVAL.
 *
 * Error contract (all calls): NVALLOC_EINVAL — with nvalloc_errno set
 * and the heap untouched — for a nested begin, any op/commit/abort
 * without an open transaction, a txWrite target outside the device or
 * misaligned, more than NVALLOC_TX_MAX_OPS staged ops, or any call on
 * a degraded (ECORRUPT-opened) instance; NVALLOC_EAGAIN when the
 * calling thread cannot be attached.
 */

/** Ops one transaction can stage (see kTxMaxOps). */
#define NVALLOC_TX_MAX_OPS 30u

/** Open a transaction on the calling thread. */
int nvalloc_tx_begin(NvInstance *inst);

/** Stage an allocation of `size` bytes inside the open transaction.
 *  Returns the mapped address (or nullptr; nvalloc_errno says why).
 *  The offset is published into `*where` at commit — until then the
 *  block is invisible to recovery and rolled back on abort/crash. */
void *nvalloc_tx_alloc(NvInstance *inst, size_t size, uint64_t *where);

/** Stage a free of the block whose offset `*where` holds. The block
 *  stays allocated (and usable) until commit; pair with
 *  nvalloc_tx_write(where, 0) to clear the pointer word in the same
 *  atomic unit. Validation (double free, foreign pointer, ...) runs
 *  immediately and fails with NVALLOC_EINVAL. */
int nvalloc_tx_free(NvInstance *inst, uint64_t *where);

/** Stage an 8-byte write of `value` to the persistent word `*word`
 *  (must lie inside the heap, 8-aligned). The write lands in place
 *  now and is rolled back on abort or an uncommitted crash. */
int nvalloc_tx_write(NvInstance *inst, uint64_t *word, uint64_t value);

/** Commit: one flush makes every staged op durable atomically. */
int nvalloc_tx_commit(NvInstance *inst);

/** Abort: roll back every staged op and close the transaction. */
int nvalloc_tx_abort(NvInstance *inst);

/** Persistent root words (attach targets / GC roots). */
uint64_t *nvalloc_root(NvInstance *inst, unsigned idx);

/**
 * mallctl-style statistics query: read the counter registered under
 * the dotted `name` (e.g. "stats.arena.0.flush.reflush") into *out.
 * Returns NVALLOC_OK, or NVALLOC_EINVAL for a name not in the
 * registry (*out untouched; nvalloc_errno is not affected).
 */
int nvalloc_ctl(NvInstance *inst, const char *name, uint64_t *out);

/**
 * Whole-heap statistics snapshot as JSON. Writes up to `cap` bytes
 * (always NUL-terminated when cap > 0) into `buf` and returns the
 * full snapshot length excluding the NUL — a return >= cap means the
 * output was truncated; call again with a larger buffer.
 */
size_t nvalloc_stats_json(NvInstance *inst, char *buf, size_t cap);

/** Underlying C++ object, for interop. */
NvAlloc *nvalloc_impl(NvInstance *inst);

/**
 * The calling thread's implicit ThreadCtx on this instance (attached
 * on first use, like every other C entry point). Null — with
 * nvalloc_errno = NVALLOC_EAGAIN — when all WAL slots are taken.
 * Interop hook for C++ layers (the KV veneer) that ride a C-opened
 * instance but call tx methods on nvalloc_impl() directly.
 */
ThreadCtx *nvalloc_thread(NvInstance *inst);

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_NVALLOC_C_H
