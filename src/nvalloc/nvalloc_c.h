/**
 * @file
 * The paper's C-style programming interface (§4.1), as a veneer over
 * the C++ API:
 *
 *   nvalloc_init / nvalloc_exit
 *   nvalloc_malloc_to / nvalloc_free_from
 *
 * Thread contexts are managed implicitly: each calling thread is
 * attached on first use and detached when the instance exits. The
 * attach target is a pointer to a persistent uint64_t word inside the
 * heap (offset-based, so structures survive remapping).
 */

#ifndef NVALLOC_NVALLOC_NVALLOC_C_H
#define NVALLOC_NVALLOC_NVALLOC_C_H

#include <cstddef>
#include <cstdint>

namespace nvalloc {

class PmDevice;
class NvAlloc;

struct NvInstance; //!< opaque

struct NvAllocOptions
{
    bool gc_variant = false;   //!< NVAlloc-GC instead of NVAlloc-LOG
    unsigned bit_stripes = 6;
    bool slab_morphing = true;
};

/** errno-style status codes (see nvalloc_errno). */
enum NvErrno
{
    NVALLOC_OK = 0,
    NVALLOC_ENOMEM,   //!< heap/log exhausted even after reclamation
    NVALLOC_EAGAIN,   //!< all thread slots in use; detach one first
    NVALLOC_EINVAL,   //!< bad size, double free, or foreign pointer
    NVALLOC_ECORRUPT, //!< metadata failed validation; heap degraded
};

/** Create (or recover) an NVAlloc heap on `dev`. */
NvInstance *nvalloc_init(PmDevice *dev,
                         const NvAllocOptions *opts = nullptr);

/** Normal shutdown; detaches any implicitly attached threads. */
void nvalloc_exit(NvInstance *inst);

/**
 * Allocate `size` bytes; atomically publish the block's offset into
 * the persistent word `*where` (may be null for a volatile attach).
 * Returns the mapped address, or nullptr on failure —
 * nvalloc_errno() then reports why (NVALLOC_ENOMEM after the
 * reclamation slow path gave up, NVALLOC_EAGAIN if this thread could
 * not be attached, NVALLOC_ECORRUPT if the heap failed to open).
 */
void *nvalloc_malloc_to(NvInstance *inst, size_t size, uint64_t *where);

/** Free the block whose offset `*where` holds; clears the word.
 *  Returns NVALLOC_OK, or NVALLOC_EINVAL — leaving the heap
 *  untouched — for a null/zero word, a double free, or a foreign
 *  pointer. */
int nvalloc_free_from(NvInstance *inst, uint64_t *where);

/** Status of the most recent failing call (sticky, errno style;
 *  successful calls do not reset it). */
int nvalloc_errno(NvInstance *inst);

/** Persistent root words (attach targets / GC roots). */
uint64_t *nvalloc_root(NvInstance *inst, unsigned idx);

/**
 * mallctl-style statistics query: read the counter registered under
 * the dotted `name` (e.g. "stats.arena.0.flush.reflush") into *out.
 * Returns NVALLOC_OK, or NVALLOC_EINVAL for a name not in the
 * registry (*out untouched; nvalloc_errno is not affected).
 */
int nvalloc_ctl(NvInstance *inst, const char *name, uint64_t *out);

/**
 * Whole-heap statistics snapshot as JSON. Writes up to `cap` bytes
 * (always NUL-terminated when cap > 0) into `buf` and returns the
 * full snapshot length excluding the NUL — a return >= cap means the
 * output was truncated; call again with a larger buffer.
 */
size_t nvalloc_stats_json(NvInstance *inst, char *buf, size_t cap);

/** Underlying C++ object, for interop. */
NvAlloc *nvalloc_impl(NvInstance *inst);

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_NVALLOC_C_H
