#include "nvalloc/large_alloc.h"

#include <bit>
#include <cstring>

#include "common/logging.h"
#include "common/size_classes.h"
#include "pm/vclock.h"

namespace nvalloc {

namespace {

constexpr uint64_t kSearchBaseNs = 40;
constexpr uint64_t kSearchStepNs = 15;

uint64_t
alignUp(uint64_t v, uint64_t a)
{
    return (v + a - 1) & ~(a - 1);
}

} // namespace

LargeAllocator::~LargeAllocator()
{
    auto drain = [](VehList &list) {
        while (Veh *v = list.popFront())
            delete v;
    };
    drain(activated_list_);
    drain(reclaimed_list_);
    drain(retained_list_);
}

void
LargeAllocator::init(PmDevice *dev, const NvAllocConfig &cfg,
                     BookkeepingLog *log, uint64_t *region_table,
                     unsigned region_slots)
{
    dev_ = dev;
    cfg_ = cfg;
    log_ = log;
    region_table_ = region_table;
    region_slots_ = region_slots;
    if (log_) {
        log_->setRelocateFn([](void *owner, LogEntryRef ref) {
            static_cast<Veh *>(owner)->log_ref = ref;
        });
    }
}

void
LargeAllocator::chargeSearch(unsigned steps)
{
    VClock::advance(kSearchBaseNs + steps * kSearchStepNs,
                    TimeKind::Search);
}

Veh *
LargeAllocator::bestFit(SizeTree &tree, uint64_t size)
{
    chargeSearch(std::bit_width(tree.size()));
    return tree.lowerBound(size);
}

uint64_t
LargeAllocator::regionOf(uint64_t off) const
{
    auto it = regions_.upper_bound(off);
    NV_ASSERT(it != regions_.begin());
    --it;
    NV_ASSERT(off < it->first + it->second);
    return it->first;
}

bool
LargeAllocator::regionTableAdd(uint64_t region_off, uint64_t size)
{
    for (unsigned i = 0; i < region_slots_; ++i) {
        if (region_table_[i] == 0) {
            region_table_[i] = packRegionEntry(region_off, size);
            dev_->persistFence(&region_table_[i], sizeof(uint64_t),
                               TimeKind::FlushMeta);
            regions_[region_off] = size;
            return true;
        }
    }
    return false;
}

void
LargeAllocator::regionTableRemove(uint64_t region_off)
{
    regions_.erase(region_off);
    for (unsigned i = 0; i < region_slots_; ++i) {
        if (region_table_[i] != 0 &&
            regionEntryOff(region_table_[i]) == region_off) {
            region_table_[i] = 0;
            dev_->persistFence(&region_table_[i], sizeof(uint64_t),
                               TimeKind::FlushMeta);
            return;
        }
    }
    NV_PANIC("region missing from persistent table");
}

Veh *
LargeAllocator::newRegion()
{
    uint64_t off = dev_->tryMapRegion(kRegionSize);
    if (off == 0) {
        last_failure_.store(NvStatus::OutOfMemory,
                            std::memory_order_relaxed);
        return nullptr;
    }
    if (!regionTableAdd(off, kRegionSize)) {
        dev_->unmapRegion(off, kRegionSize);
        last_failure_.store(NvStatus::RegionTableFull,
                            std::memory_order_relaxed);
        return nullptr;
    }
    ++stats_.regions_mapped;

    auto &slots = desc_free_[off];
    slots.clear();
    for (unsigned i = kDescsPerRegion; i-- > 0;)
        slots.push_back(i);

    Veh *veh = new Veh;
    veh->off = off + kRegionHeaderSize;
    veh->size = kRegionSize - kRegionHeaderSize;
    veh->state = Veh::State::Reclaimed;
    veh->freed_at = VClock::now();
    rtree_.setRange(veh->off, veh->size, veh);
    insertFree(veh, Veh::State::Reclaimed);
    if (!log_)
        descriptorWrite(veh, 2);
    return veh;
}

void
LargeAllocator::insertFree(Veh *veh, Veh::State state)
{
    veh->state = state;
    if (state == Veh::State::Reclaimed) {
        reclaimed_tree_.insert(veh, veh->size);
        reclaimed_list_.pushBack(veh);
        reclaimed_bytes_ += veh->size;
        // The decay window restarts only when the dirty pool grows
        // past its previous high-water mark; steady-state churn that
        // recycles the same extents lets the smootherstep limit keep
        // falling (jemalloc's epoch behaviour).
        if (reclaimed_bytes_ > reclaimed_peak_) {
            reclaimed_peak_ = reclaimed_bytes_;
            decay_epoch_start_ = VClock::now();
        }
    } else {
        retained_tree_.insert(veh, veh->size);
        retained_list_.pushBack(veh);
        retained_bytes_ += veh->size;
    }
}

void
LargeAllocator::removeFree(Veh *veh)
{
    if (veh->state == Veh::State::Reclaimed) {
        reclaimed_tree_.erase(veh);
        reclaimed_list_.remove(veh);
        reclaimed_bytes_ -= veh->size;
    } else {
        NV_ASSERT(veh->state == Veh::State::Retained);
        retained_tree_.erase(veh);
        retained_list_.remove(veh);
        retained_bytes_ -= veh->size;
    }
}

Veh *
LargeAllocator::splitFront(Veh *veh, uint64_t size)
{
    NV_ASSERT(veh->size > size);
    ++stats_.splits;
    chargeSearch(2);

    Veh *front = new Veh;
    front->off = veh->off;
    front->size = size;

    removeFree(veh);
    veh->off += size;
    veh->size -= size;
    rtree_.setRange(veh->off, veh->size, veh);
    insertFree(veh, veh->state); // remainder keeps its commit state
    if (!log_)
        descriptorWrite(veh, 2);

    rtree_.setRange(front->off, front->size, front);
    return front;
}

bool
LargeAllocator::activate(Veh *veh, bool is_slab,
                         const PreLogHook &pre_log)
{
    if (pre_log)
        pre_log(veh->off);
    if (log_) {
        // Append before publishing the volatile state so a log-region
        // exhaustion can be undone without unwinding list membership.
        LogEntryRef ref = log_->append(is_slab ? kLogSlab : kLogNormal,
                                       veh->off, veh->size, veh);
        if (!ref.valid()) {
            last_failure_.store(NvStatus::LogExhausted,
                                std::memory_order_relaxed);
            return false;
        }
        veh->log_ref = ref;
    }
    veh->state = Veh::State::Activated;
    ++veh->reuse_epoch;
    veh->is_slab = is_slab;
    activated_list_.pushBack(veh);
    activated_bytes_ += veh->size;
    if (!log_)
        descriptorWrite(veh, 1);
    return true;
}

void
LargeAllocator::retire(Veh *veh)
{
    NV_ASSERT(veh->state == Veh::State::Activated);
    activated_list_.remove(veh);
    activated_bytes_ -= veh->size;

    if (log_) {
        log_->tombstone(veh->log_ref);
        veh->log_ref = LogEntryRef{};
    } else {
        descriptorWrite(veh, 2);
    }
}

uint64_t
LargeAllocator::allocateDirect(uint64_t size,
                               const PreLogHook &pre_log)
{
    uint64_t total =
        alignUp(size + kRegionHeaderSize, PmDevice::kRegionAlign);
    if (total - kRegionHeaderSize >= (uint64_t{1} << 26)) {
        // Unrepresentable in the log entry's size field.
        last_failure_.store(NvStatus::InvalidArgument,
                            std::memory_order_relaxed);
        return 0;
    }
    // Re-check the quota against the full direct-mapping footprint,
    // which exceeds the caller's rounded request by the region header
    // and region-alignment padding.
    if (cfg_.capacity_quota_bytes != 0 &&
        activated_bytes_ + (total - kRegionHeaderSize) >
            cfg_.capacity_quota_bytes) {
        last_failure_.store(NvStatus::QuotaExceeded,
                            std::memory_order_relaxed);
        return 0;
    }
    uint64_t off = dev_->tryMapRegion(total);
    if (off == 0) {
        last_failure_.store(NvStatus::OutOfMemory,
                            std::memory_order_relaxed);
        return 0;
    }
    if (!regionTableAdd(off, total)) {
        dev_->unmapRegion(off, total);
        last_failure_.store(NvStatus::RegionTableFull,
                            std::memory_order_relaxed);
        return 0;
    }
    ++stats_.regions_mapped;
    auto &slots = desc_free_[off];
    for (unsigned i = kDescsPerRegion; i-- > 0;)
        slots.push_back(i);

    Veh *veh = new Veh;
    veh->off = off + kRegionHeaderSize;
    veh->size = total - kRegionHeaderSize;
    veh->is_direct = true;
    rtree_.setRange(veh->off, veh->size, veh);
    if (!activate(veh, false, pre_log)) {
        rtree_.setRange(veh->off, veh->size, nullptr);
        regionTableRemove(off);
        desc_free_.erase(off);
        dev_->unmapRegion(off, total);
        ++stats_.regions_unmapped;
        delete veh;
        return 0;
    }
    return veh->off;
}

uint64_t
LargeAllocator::allocate(uint64_t size, bool is_slab,
                         const PreLogHook &pre_log)
{
    VLockGuard guard(lock_);
    decayTick();
    ++stats_.allocations;
    size = alignUp(size, kExtentAlign);

    // Per-tenant capacity quota (pool containment, DESIGN.md §12):
    // every byte a tenant holds is an activated extent here — slabs
    // included — so this single check bounds the whole heap. Checked
    // against the post-allocation total so a tenant can always use its
    // full quota but never cross it.
    if (cfg_.capacity_quota_bytes != 0 &&
        activated_bytes_ + size > cfg_.capacity_quota_bytes) {
        last_failure_.store(NvStatus::QuotaExceeded,
                            std::memory_order_relaxed);
        return 0;
    }

    if (size > kLargeMax)
        return allocateDirect(size, pre_log);

    // Best fit in the reclaimed list first, then the retained list
    // (paper §4.3); a hit in retained re-commits physical memory.
    Veh *veh = bestFit(reclaimed_tree_, size);
    bool from_retained = false;
    if (!veh) {
        veh = bestFit(retained_tree_, size);
        from_retained = veh != nullptr;
    }
    if (!veh) {
        veh = newRegion();
        if (!veh)
            return 0;
    }

    if (veh->size > size) {
        Veh *front = splitFront(veh, size);
        if (from_retained)
            dev_->recommit(front->off, front->size);
        if (!activate(front, is_slab, pre_log)) {
            front->freed_at = VClock::now();
            insertFree(front, Veh::State::Reclaimed);
            return 0;
        }
        return front->off;
    }

    removeFree(veh);
    if (from_retained)
        dev_->recommit(veh->off, veh->size);
    if (!activate(veh, is_slab, pre_log)) {
        veh->freed_at = VClock::now();
        insertFree(veh, Veh::State::Reclaimed);
        return 0;
    }
    return veh->off;
}

Veh *
LargeAllocator::coalesce(Veh *veh)
{
    // Left neighbour: the page just below our start.
    Veh *left = findVeh(veh->off - 1);
    if (left && left->state == Veh::State::Reclaimed &&
        left->off + left->size == veh->off) {
        ++stats_.coalesces;
        chargeSearch(2);
        removeFree(left);
        left->size += veh->size;
        rtree_.setRange(veh->off, veh->size, left);
        if (!log_)
            descriptorRelease(veh);
        delete veh;
        veh = left;
        veh->state = Veh::State::Reclaimed; // reinserted by caller
    }

    Veh *right = findVeh(veh->off + veh->size);
    if (right && right->state == Veh::State::Reclaimed &&
        veh->off + veh->size == right->off) {
        ++stats_.coalesces;
        chargeSearch(2);
        removeFree(right);
        veh->size += right->size;
        rtree_.setRange(right->off, right->size, veh);
        if (!log_)
            descriptorRelease(right);
        delete right;
    }
    return veh;
}

void
LargeAllocator::free(uint64_t off)
{
    VLockGuard guard(lock_);
    ++stats_.frees;

    Veh *veh = findVeh(off);
    NV_ASSERT(veh && veh->off == off &&
              veh->state == Veh::State::Activated);
    chargeSearch(3); // R-tree lookup

    retire(veh);

    if (veh->is_direct) {
        uint64_t region = regionOf(off);
        uint64_t total = regions_.at(region);
        rtree_.setRange(veh->off, veh->size, nullptr);
        regionTableRemove(region);
        desc_free_.erase(region);
        dev_->unmapRegion(region, total);
        ++stats_.regions_unmapped;
        delete veh;
        return;
    }

    veh->freed_at = VClock::now();
    veh = coalesce(veh);
    veh->freed_at = VClock::now();
    insertFree(veh, Veh::State::Reclaimed);
    if (!log_)
        descriptorWrite(veh, 2);
    decayTick();
}

void
LargeAllocator::reclaim()
{
    VLockGuard guard(lock_);
    if (log_)
        (void)log_->slowGc();
    decayTick();
}

bool
LargeAllocator::maintainLog(bool want_slow, bool *ran_slow,
                            uint64_t *gc_ns)
{
    if (ran_slow)
        *ran_slow = false;
    if (gc_ns)
        *gc_ns = 0;
    if (!log_)
        return false;
    VLockGuard guard(lock_);
    size_t before = log_->activeChunks();
    uint64_t gc_ns_before =
        log_->stats().gc_ns.load(std::memory_order_relaxed);
    log_->collectFast();
    bool did = log_->activeChunks() != before;
    if (want_slow && log_->slowGc()) {
        did = true;
        if (ran_slow)
            *ran_slow = true;
    }
    if (gc_ns)
        *gc_ns = log_->stats().gc_ns.load(std::memory_order_relaxed) -
                 gc_ns_before;
    return did;
}

void
LargeAllocator::decayPass()
{
    VLockGuard guard(lock_);
    decayTick();
}

int
LargeAllocator::verifyReclaimedFill(uint64_t off, uint64_t size,
                                    uint64_t epoch, uint64_t check_bytes,
                                    uint8_t expect)
{
    VLockGuard guard(lock_);
    Veh *veh = findVeh(off);
    if (!veh || veh->off != off || veh->size != size ||
        veh->state != Veh::State::Reclaimed ||
        veh->reuse_epoch != epoch) {
        // Includes the reused-and-freed-again case: the extent is
        // Reclaimed again, but its contents belong to a later life —
        // the old fill proves nothing.
        return -1;
    }
    const uint8_t *p = static_cast<const uint8_t *>(dev_->at(off));
    for (uint64_t i = 0; i < check_bytes; ++i) {
        if (p[i] != expect)
            return 1;
    }
    return 0;
}

uint64_t
LargeAllocator::reclaimedEpoch(uint64_t off)
{
    VLockGuard guard(lock_);
    Veh *veh = findVeh(off);
    if (!veh || veh->off != off || veh->state != Veh::State::Reclaimed)
        return ~0ULL;
    return veh->reuse_epoch;
}

unsigned
LargeAllocator::scrubUnmappedPoison(
    unsigned max_lines,
    const std::vector<std::pair<uint64_t, uint64_t>> &keep)
{
    if (!dev_ || max_lines == 0)
        return 0;
    VLockGuard guard(lock_);
    unsigned scrubbed = 0;
    for (uint64_t off : dev_->poisonedLineOffsets()) {
        if (scrubbed >= max_lines)
            break;
        if (off < PmDevice::kRootSize)
            continue; // superblock root: never rewrite blindly
        bool protect = false;
        for (const auto &[start, len] : keep) {
            if (off >= start && off < start + len) {
                protect = true;
                break;
            }
        }
        if (protect)
            continue;
        auto it = regions_.upper_bound(off);
        if (it != regions_.begin()) {
            --it;
            if (off < it->first + it->second)
                continue; // inside a live region: the auditor's job
        }
        // Dead space: zero + persist rewrites the line, then clear
        // the flag explicitly (persist() only heals poison under an
        // active fault-injection epoch).
        std::memset(dev_->at(off), 0, kCacheLine);
        dev_->persistFence(dev_->at(off), kCacheLine,
                           TimeKind::FlushMeta);
        dev_->clearPoison(off);
        ++scrubbed;
    }
    return scrubbed;
}

void
LargeAllocator::demote(Veh *veh)
{
    NV_ASSERT(veh->state == Veh::State::Reclaimed);
    ++stats_.demotions;
    removeFree(veh);
    dev_->decommit(veh->off, veh->size);
    insertFree(veh, Veh::State::Retained);
}

void
LargeAllocator::evict(Veh *veh)
{
    // Only whole-region extents can be returned to the OS; partial
    // extents stay retained (their region is still live).
    uint64_t region = regionOf(veh->off);
    uint64_t total = regions_.at(region);
    NV_ASSERT(veh->off == region + kRegionHeaderSize &&
              veh->size == total - kRegionHeaderSize);
    ++stats_.evictions;
    ++stats_.regions_unmapped;

    removeFree(veh);
    rtree_.setRange(veh->off, veh->size, nullptr);
    regionTableRemove(region);
    desc_free_.erase(region);
    // The header area's committed bytes: decommit happened for the
    // data part already; unmap the whole region.
    dev_->recommit(veh->off, veh->size); // rebalance before unmap
    dev_->unmapRegion(region, total);
    delete veh;
}

void
LargeAllocator::decayTick()
{
    uint64_t my_now = VClock::now();
    uint64_t seen = global_vnow_.load(std::memory_order_relaxed);
    while (my_now > seen &&
           !global_vnow_.compare_exchange_weak(seen, my_now)) {
    }
    uint64_t now = std::max(my_now, seen);

    // Reclaimed list: bounded by peak * smootherstep decay since the
    // last growth (paper §2.2; jemalloc decay with 50 ms windows). A
    // short grace period keeps whole-extent demotion granularity from
    // firing the instant the limit dips epsilon below the pool size.
    uint64_t elapsed = now - decay_epoch_start_;
    if (elapsed < cfg_.decay_window_ns / 16)
        elapsed = 0;
    double frac = decayLimitFraction(double(elapsed),
                                     double(cfg_.decay_window_ns));
    auto limit = uint64_t(double(reclaimed_peak_) * frac);
    while (reclaimed_bytes_ > limit) {
        Veh *oldest = reclaimed_list_.front();
        if (!oldest)
            break;
        demote(oldest);
    }
    if (reclaimed_bytes_ == 0)
        reclaimed_peak_ = 0;

    // Retained list: whole-region extents older than two windows go
    // back to the OS.
    Veh *veh = retained_list_.front();
    while (veh) {
        Veh *next = retained_list_.next(veh);
        if (now - veh->freed_at > 2 * cfg_.decay_window_ns) {
            uint64_t region = regionOf(veh->off);
            uint64_t total = regions_.at(region);
            if (veh->off == region + kRegionHeaderSize &&
                veh->size == total - kRegionHeaderSize) {
                evict(veh);
            }
        }
        veh = next;
    }
}

void
LargeAllocator::descriptorWrite(Veh *veh, uint32_t state)
{
    uint64_t region = regionOf(veh->off);
    if (veh->desc_off == 0) {
        auto &slots = desc_free_[region];
        NV_ASSERT(!slots.empty());
        unsigned slot = slots.back();
        slots.pop_back();
        veh->desc_off = region + slot * sizeof(ExtentDesc);
    }
    auto *desc = static_cast<ExtentDesc *>(dev_->at(veh->desc_off));
    desc->offset = veh->off;
    desc->size = veh->size;
    desc->state = state;
    desc->is_slab = veh->is_slab ? 1 : 0;
    // The in-place update the paper's Fig. 2 profiles: a small write
    // at an effectively random header location.
    dev_->persistFence(desc, sizeof(ExtentDesc), TimeKind::FlushMeta);
}

void
LargeAllocator::descriptorRelease(Veh *veh)
{
    if (veh->desc_off == 0)
        return;
    auto *desc = static_cast<ExtentDesc *>(dev_->at(veh->desc_off));
    desc->offset = 0;
    desc->state = 0;
    dev_->persistFence(desc, sizeof(ExtentDesc), TimeKind::FlushMeta);
    uint64_t region = regionOf(veh->off);
    unsigned slot =
        unsigned((veh->desc_off - region) / sizeof(ExtentDesc));
    desc_free_[region].push_back(slot);
    veh->desc_off = 0;
}

Veh *
LargeAllocator::adoptActivated(uint64_t off, uint64_t size, bool is_slab,
                               LogEntryRef ref)
{
    Veh *veh = new Veh;
    veh->off = off;
    veh->size = size;
    veh->state = Veh::State::Activated;
    veh->is_slab = is_slab;
    veh->log_ref = ref;
    rtree_.setRange(off, size, veh);
    activated_list_.pushBack(veh);
    activated_bytes_ += veh->size;
    if (log_)
        log_->setOwner(ref, veh);
    return veh;
}

void
LargeAllocator::rebuildFreeSpace()
{
    // Adopt the persistent region table.
    regions_.clear();
    for (unsigned i = 0; i < region_slots_; ++i) {
        if (region_table_[i] != 0) {
            regions_[regionEntryOff(region_table_[i])] =
                regionEntrySize(region_table_[i]);
        }
    }

    // Every gap between activated extents becomes a reclaimed extent
    // (paper §4.4: "treat the space gaps between active extents as
    // free extents").
    std::vector<uint64_t> to_unmap;
    for (auto &[region, total] : regions_) {
        uint64_t data = region + kRegionHeaderSize;
        uint64_t end = region + total;
        uint64_t cursor = data;
        bool any_active = false;

        auto &slots = desc_free_[region];
        slots.clear();
        for (unsigned i = kDescsPerRegion; i-- > 0;)
            slots.push_back(i);

        while (cursor < end) {
            Veh *veh = findVeh(cursor);
            if (veh && veh->off == cursor) {
                any_active = true;
                cursor += veh->size;
                continue;
            }
            uint64_t gap_end = cursor;
            while (gap_end < end && findVeh(gap_end) == nullptr)
                gap_end += kExtentAlign;
            Veh *free_veh = new Veh;
            free_veh->off = cursor;
            free_veh->size = gap_end - cursor;
            free_veh->freed_at = VClock::now();
            rtree_.setRange(free_veh->off, free_veh->size, free_veh);
            insertFree(free_veh, Veh::State::Reclaimed);
            cursor = gap_end;
        }
        if (!any_active)
            to_unmap.push_back(region);
    }

    // Regions with no live extent at all (including crashed direct
    // regions) are compacted away immediately.
    for (uint64_t region : to_unmap) {
        uint64_t total = regions_.at(region);
        uint64_t data = region + kRegionHeaderSize;
        Veh *veh = findVeh(data);
        NV_ASSERT(veh && veh->off == data &&
                  veh->size == total - kRegionHeaderSize);
        removeFree(veh);
        rtree_.setRange(veh->off, veh->size, nullptr);
        delete veh;
        regionTableRemove(region);
        desc_free_.erase(region);
        dev_->unmapRegion(region, total);
        ++stats_.regions_unmapped;
    }
}

void
LargeAllocator::recoverFromDescriptors(
    const std::function<void(uint64_t, uint64_t)> &on_slab)
{
    regions_.clear();
    for (unsigned i = 0; i < region_slots_; ++i) {
        if (region_table_[i] != 0) {
            regions_[regionEntryOff(region_table_[i])] =
                regionEntrySize(region_table_[i]);
        }
    }

    for (auto &[region, total] : regions_) {
        (void)total;
        auto &slots = desc_free_[region];
        slots.clear();
        auto *descs = static_cast<ExtentDesc *>(dev_->at(region));
        for (unsigned i = kDescsPerRegion; i-- > 0;) {
            const ExtentDesc &d = descs[i];
            if (d.offset == 0) {
                slots.push_back(i);
                continue;
            }
            Veh *veh = new Veh;
            veh->off = d.offset;
            veh->size = d.size;
            veh->is_slab = d.is_slab != 0;
            veh->desc_off = region + i * sizeof(ExtentDesc);
            rtree_.setRange(veh->off, veh->size, veh);
            if (d.state == 1) {
                veh->state = Veh::State::Activated;
                activated_list_.pushBack(veh);
                activated_bytes_ += veh->size;
                if (veh->is_slab)
                    on_slab(veh->off, veh->size);
            } else {
                veh->freed_at = VClock::now();
                insertFree(veh, Veh::State::Reclaimed);
            }
        }
    }
}

} // namespace nvalloc
