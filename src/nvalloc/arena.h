/**
 * @file
 * Arena: per-core slab manager (paper §4.2).
 *
 * Each CPU core owns an arena; each thread is attached to the arena
 * with the fewest threads. The arena keeps one freelist of
 * partially-full slabs per size class, the LRU list of morph
 * candidates (§5.2), the set of all slabs it owns, and a CoreCache of
 * pinned region slabs feeding the lock-free reservation path
 * (DESIGN.md §14).
 *
 * Slow-path slab management (refill, morph, release, repair) runs
 * under the arena's VLock. The hot alloc/free paths instead reserve
 * and free against slabs directly through their atomic bitfields and
 * hand availability notices back via a lock-free pending stack; their
 * contention is modeled through a per-arena VServer (bookFastOp), so
 * the virtual-time scaling curves stay honest without a mutex.
 */

#ifndef NVALLOC_NVALLOC_ARENA_H
#define NVALLOC_NVALLOC_ARENA_H

#include <atomic>
#include <unordered_set>
#include <vector>

#include "common/lru_list.h"
#include "common/radix_tree.h"
#include "nvalloc/config.h"
#include "nvalloc/core_cache.h"
#include "nvalloc/large_alloc.h"
#include "nvalloc/slab.h"
#include "nvalloc/tcache.h"
#include "nvalloc/vlock.h"
#include "pm/vclock.h"
#include "telemetry/telemetry.h"

namespace nvalloc {

class Arena
{
  public:
    struct Stats
    {
        uint64_t slabs_created = 0;
        uint64_t slabs_released = 0;
        uint64_t morphs = 0;
        uint64_t refills = 0;
    };

    Arena(unsigned id, PmDevice *dev, const NvAllocConfig *cfg,
          LargeAllocator *large, RadixTree *slab_radix,
          const std::atomic<unsigned> *total_threads = nullptr);

    /** Stripe count for a new slab under `threads` concurrency. */
    static unsigned dynamicStripes(unsigned threads);
    ~Arena();

    unsigned id() const { return id_; }

    /** Threads currently attached (for least-loaded assignment). */
    std::atomic<unsigned> thread_count{0};

    /** Lock guarding every slab this arena owns. Public because the
     *  facade's hot paths lock it around per-slab operations. */
    VLock lock;

    /**
     * Refill a tcache's class list until full: partially-full slabs
     * first, then slab morphing, then a fresh slab from the large
     * allocator (paper §4.2). Returns the number of blocks added.
     */
    unsigned refill(TCache &tcache, unsigned cls);

    /** Free a block straight back to its slab (tcache bypass). Caller
     *  must hold `lock`. */
    void freeDirect(VSlab *slab, unsigned idx);

    /** Free a block_before of a morphing slab. Caller must hold
     *  `lock`. */
    void freeOld(VSlab *slab, unsigned old_idx);

    /** Note that a slab gained availability (e.g. a block was freed
     *  into a tcache); re-enlists it. Caller must hold `lock`. */
    void noteAvailable(VSlab *slab);

    /** Return a never-allocated block from a drained tcache. Caller
     *  must hold `lock`. */
    void returnLent(VSlab *slab, unsigned idx);

    // -- lock-free fast path (DESIGN.md §14) ------------------------

    /**
     * Lock-free tcache refill from this arena's region slabs; returns
     * the number of blocks reserved (0 = regions dry, caller escalates
     * to a sibling steal or the locked refill).
     */
    unsigned
    fastReserve(TCache &tcache, unsigned cls)
    {
        return core_cache_.reserve(cls, tcache, cfg_->fastpath_batch,
                                   fp_stats_);
    }

    /**
     * Lock-free: a fast free gave `slab` availability the freelists
     * don't know about yet; queue it for the next locked refill.
     */
    void pendingPush(VSlab *slab);

    /**
     * Book one fast operation's serialization window against this
     * arena's virtual-time capacity server. This is the lock-free
     * analogue of the VLock's hold accounting — and follows the same
     * convention: the window is booked into the server, and only the
     * queueing delay the booking implies advances the caller's clock.
     * Uncontended fast ops therefore cost nothing here (their CPU is
     * already modeled by the op's own advance), while threads
     * hammering one arena accumulate virtual wait, which is what
     * keeps the thread-scaling curves meaningful without the mutex.
     */
    void
    bookFastOp(uint64_t cpu_ns)
    {
        uint64_t now = VClock::now();
        uint64_t start = fp_server_.reserve(now, cpu_ns);
        if (start > now)
            VClock::advanceTo(start, TimeKind::LockWait);
    }

    /** Point fast-path telemetry at the heap-wide counters. */
    void setFastPathStats(FastPathStats *s) { fp_stats_ = s; }

    /** Unpin and empty every CoreCache region slot (reclaimMemory),
     *  then release any now-releasable fully-free slabs. */
    void dropRegions();

    /** Adopt a slab rebuilt by recovery. */
    void registerSlab(VSlab *slab);

    /** Persist every slab bitmap (GC-variant normal shutdown). */
    void persistAllBitmaps();

    /** Iterate all live slabs (space-breakdown reporting, Fig 15b). */
    template <typename Fn>
    void
    forEachSlab(Fn &&fn)
    {
        VLockGuard g(lock);
        for (VSlab *slab : slabs_)
            fn(slab);
    }

    const Stats &stats() const { return stats_; }

    /** Mirror slab-lifecycle events into the heap's telemetry (the
     *  local Stats struct keeps counting either way). */
    void setTelemetry(Telemetry *tel) { tel_ = tel; }

  private:
    using SlabList = LruList<VSlab, offsetof(VSlab, free_link)>;
    using MorphLru = LruList<VSlab, offsetof(VSlab, lru_link)>;

    unsigned id_;
    PmDevice *dev_;
    const NvAllocConfig *cfg_;
    LargeAllocator *large_;
    RadixTree *slab_radix_;
    bool gc_mode_;
    unsigned stripes_;
    const std::atomic<unsigned> *total_threads_;

    unsigned slabStripes() const;

    SlabList freelist_[kNumSizeClasses];
    MorphLru morph_lru_;
    std::unordered_set<VSlab *> slabs_;

    CoreCache core_cache_;
    FastPathStats *fp_stats_ = nullptr;
    /** Virtual-time capacity server for lock-free fast ops. */
    VServer fp_server_;
    /** Treiber stack of slabs with un-enlisted availability. */
    std::atomic<VSlab *> pending_head_{nullptr};

    // Released VSlabs are kept until destruction so lock-free radix
    // readers can never observe a dangling pointer (epoch-free
    // deferred reclamation).
    std::vector<VSlab *> graveyard_;

    Stats stats_;
    Telemetry *tel_ = nullptr;

    VSlab *newSlab(unsigned cls);
    VSlab *morphOne(unsigned cls);
    void enlist(VSlab *slab);
    void delist(VSlab *slab);
    void maybeRelease(VSlab *slab);
    void drainPending();
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_ARENA_H
