/**
 * @file
 * The heap's introspection registry: every exported statistic is
 * registered here under its dotted ctl name (see telemetry/ctl.h).
 *
 * Three kinds of sources feed the tree:
 *  - the sharded telemetry counters (hot-path traffic, flush classes),
 *  - subsystem Stats structs read on demand (Arena, BookkeepingLog,
 *    RecoveryInfo, DegradedStats, PmDevice),
 *  - tiny computed values (per-class bytes, live counts, mode).
 *
 * The registry is built lazily on the first ctl use and is immutable
 * afterwards; readers are called with no heap lock held and only load
 * atomics / read plain counters, so introspection never blocks
 * allocation.
 */

#include "nvalloc/nvalloc.h"

#include <cstring>
#include <string>

#include "common/size_classes.h"

namespace nvalloc {

void
NvAlloc::buildCtlRegistry()
{
    Telemetry *tel = &tel_;

    // Every scalar shard counter under its canonical name.
    for (unsigned i = 0; i < kNumStatCounters; ++i) {
        auto ctr = StatCounter(i);
        ctl_.registerName(std::string("stats.") + statCounterName(ctr),
                          [tel, ctr] { return tel->total(ctr); });
    }

    // Derived hot-path totals: the recording path maintains only the
    // per-class / per-arena families plus tcache.miss (one counter
    // store per allocation); these names sum them at read time.
    ctl_.registerName("stats.alloc.small",
                      [tel] { return tel->smallAllocs(); });
    ctl_.registerName("stats.free.small",
                      [tel] { return tel->smallFrees(); });
    ctl_.registerName("stats.tcache.hit",
                      [tel] { return tel->tcacheHits(); });
    ctl_.registerName("stats.alloc.small_bytes",
                      [tel] { return tel->smallAllocBytes(); });
    ctl_.registerName("stats.free.small_bytes",
                      [tel] { return tel->smallFreeBytes(); });

    // Flush classification: per-class totals sum the sink-fed
    // per-arena attribution matrix; fences come straight from the
    // latency model (the sink is not called for fences).
    for (unsigned c = 0; c < kNumFlushClasses; ++c) {
        auto fc = FlushClass(c);
        ctl_.registerName(std::string("stats.flush.") +
                              flushClassName(fc),
                          [tel, fc] { return tel->flushClassTotal(fc); });
    }
    ctl_.registerName("stats.flush.total",
                      [tel] { return tel->flushTotal(); });
    {
        PmDevice *dev = &dev_;
        ctl_.registerName("stats.flush.fences", [dev] {
            return dev->model().counts().fences;
        });
    }

    // WAL commits are derived from the per-thread rings' own append
    // sequences (plus detached rings' retained totals) instead of a
    // hot-path counter.
    ctl_.registerName("stats.wal.commits",
                      [this] { return walCommits(); });

    // Per-size-class family, keyed by block size in bytes.
    for (unsigned cls = 0; cls < kNumSizeClasses; ++cls) {
        std::string base =
            "stats.class." + std::to_string(classToSize(cls)) + ".";
        ctl_.registerName(base + "alloc",
                          [tel, cls] { return tel->classAllocs(cls); });
        ctl_.registerName(base + "free",
                          [tel, cls] { return tel->classFrees(cls); });
        ctl_.registerName(base + "live", [tel, cls] {
            uint64_t a = tel->classAllocs(cls);
            uint64_t f = tel->classFrees(cls);
            return a > f ? a - f : 0;
        });
    }

    // Per-arena family: slab lifecycle from the arena's own Stats,
    // flush classes from the telemetry attribution array.
    for (unsigned i = 0; i < arenas_.size(); ++i) {
        Arena *a = arenas_[i].get();
        std::string base = "stats.arena." + std::to_string(i) + ".";
        ctl_.registerName(base + "threads", [a] {
            return uint64_t(a->thread_count.load());
        });
        ctl_.registerName(base + "slabs_created", [a] {
            return a->stats().slabs_created;
        });
        ctl_.registerName(base + "slabs_released", [a] {
            return a->stats().slabs_released;
        });
        ctl_.registerName(base + "morphs",
                          [a] { return a->stats().morphs; });
        ctl_.registerName(base + "refills",
                          [a] { return a->stats().refills; });
        for (unsigned c = 0; c < kNumFlushClasses; ++c) {
            auto fc = FlushClass(c);
            ctl_.registerName(base + "flush." + flushClassName(fc),
                              [tel, i, fc] {
                                  return tel->arenaFlush(i, fc);
                              });
        }
    }

    // Bookkeeping log: authoritative Stats struct (includes replay
    // rejection counts the shards never see).
    if (usesBookkeepingLog()) {
        BookkeepingLog *log = &log_;
        ctl_.registerName("stats.log.entries_copied", [log] {
            return log->stats().entries_copied.load(
                std::memory_order_relaxed);
        });
        ctl_.registerName("stats.log.live_entries", [log] {
            return uint64_t(log->liveEntries());
        });
        ctl_.registerName("stats.log.active_chunks", [log] {
            return uint64_t(log->activeChunks());
        });
        ctl_.registerName("stats.log.gc_ns", [log] {
            return log->stats().gc_ns.load(std::memory_order_relaxed);
        });
        ctl_.registerName("stats.log.replay.entries_rejected", [log] {
            return log->stats().replay_entries_rejected;
        });
        ctl_.registerName("stats.log.replay.chunks_rejected", [log] {
            return log->stats().replay_chunks_rejected;
        });
    }

    // Degradation machine.
    ctl_.registerName("stats.mode.current", [this] {
        return uint64_t(mode_.load(std::memory_order_relaxed));
    });
    const DegradedStats *deg = &deg_stats_;
    ctl_.registerName("stats.degraded.reclaim_attempts", [deg] {
        return deg->reclaim_attempts.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.degraded.reclaim_successes", [deg] {
        return deg->reclaim_successes.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.degraded.failed_allocs", [deg] {
        return deg->failed_allocs.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.degraded.invalid_frees", [deg] {
        return deg->invalid_frees.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.degraded.failed_attaches", [deg] {
        return deg->failed_attaches.load(std::memory_order_relaxed);
    });

    // What the last recovery did (static after open).
    const RecoveryInfo *rec = &recovery_;
    ctl_.registerName("stats.recovery.performed",
                      [rec] { return uint64_t(rec->performed); });
    ctl_.registerName("stats.recovery.after_failure",
                      [rec] { return uint64_t(rec->after_failure); });
    ctl_.registerName("stats.recovery.slabs_rebuilt",
                      [rec] { return rec->slabs_rebuilt; });
    ctl_.registerName("stats.recovery.extents_rebuilt",
                      [rec] { return rec->extents_rebuilt; });
    ctl_.registerName("stats.recovery.wal_completions",
                      [rec] { return rec->wal_completions; });
    ctl_.registerName("stats.recovery.wal_undos",
                      [rec] { return rec->wal_undos; });
    ctl_.registerName("stats.recovery.wal_rejected",
                      [rec] { return rec->wal_rejected; });
    ctl_.registerName("stats.recovery.slabs_quarantined",
                      [rec] { return rec->slabs_quarantined; });
    ctl_.registerName("stats.recovery.lines_poisoned",
                      [rec] { return rec->lines_poisoned; });
    ctl_.registerName("stats.recovery.gc_reclaimed_blocks",
                      [rec] { return rec->gc_reclaimed_blocks; });
    ctl_.registerName("stats.recovery.virtual_ns",
                      [rec] { return rec->virtual_ns; });

    // Maintenance service (PR 4). All monotonic except mode/paused.
    const MaintenanceStats *ms = &maint_.stats();
    ctl_.registerName("stats.maintenance.slices", [ms] {
        return ms->slices.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.maintenance.wakes", [ms] {
        return ms->wakes.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.maintenance.log_fast_gc", [ms] {
        return ms->log_fast_gc.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.maintenance.log_slow_gc", [ms] {
        return ms->log_slow_gc.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.maintenance.decay_ticks", [ms] {
        return ms->decay_ticks.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.maintenance.scrubbed_lines", [ms] {
        return ms->scrubbed_lines.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.maintenance.trim_requests", [ms] {
        return ms->trim_requests.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.maintenance.deferred", [ms] {
        return ms->deferred.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.maintenance.virtual_ns", [ms] {
        return ms->virtual_ns.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.maintenance.gc_virtual_ns", [ms] {
        return ms->gc_virtual_ns.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.maintenance.mode", [this] {
        return uint64_t(maint_.mode());
    });
    ctl_.registerName("stats.maintenance.paused", [this] {
        return uint64_t(maint_.paused());
    });
    ctl_.registerName("stats.maintenance.patrol_slices", [ms] {
        return ms->patrol_slices.load(std::memory_order_relaxed);
    });

    // Health machine + online patrol scrubber (PR 7, DESIGN.md §12).
    const ScrubStats *ss = &scrub_stats_;
    const HealthStats *hls = &health_stats_;
    ctl_.registerName("stats.health.state", [this] {
        return uint64_t(health_.load(std::memory_order_relaxed));
    });
    ctl_.registerName("stats.health.escalations", [hls] {
        return hls->escalations.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.health.restores", [hls] {
        return hls->restores.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.health.rejected_ops", [hls] {
        return hls->rejected_ops.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.scrub.slices", [ss] {
        return ss->slices.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.scrub.items", [ss] {
        return ss->items.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.scrub.findings", [ss] {
        return ss->findings.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.scrub.repaired", [ss] {
        return ss->repaired.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.scrub.retries", [ss] {
        return ss->retries.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.scrub.passes", [ss] {
        return ss->passes.load(std::memory_order_relaxed);
    });

    // Hardening (PR 5): detection and containment counters, plus the
    // live depths of the guard watch and the quarantine FIFO. All
    // relaxed atomics / mutex-free reads.
    const HardeningStats *hs = &hardening_.stats();
    ctl_.registerName("stats.hardening.validated_frees", [hs] {
        return hs->validated_frees.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.hardening.double_frees", [hs] {
        return hs->double_frees.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.hardening.misaligned_frees", [hs] {
        return hs->misaligned_frees.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.hardening.wild_frees", [hs] {
        return hs->wild_frees.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.hardening.cross_heap_frees", [hs] {
        return hs->cross_heap_frees.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.hardening.canary_stomps", [hs] {
        return hs->canary_stomps.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.hardening.guard_allocs", [hs] {
        return hs->guard_allocs.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.hardening.guard_frees", [hs] {
        return hs->guard_frees.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.hardening.guard_overflows", [hs] {
        return hs->guard_overflows.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.hardening.guard_uaf", [hs] {
        return hs->guard_uaf.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.hardening.quarantine_pushes", [hs] {
        return hs->quarantine_pushes.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.hardening.quarantine_evictions", [hs] {
        return hs->quarantine_evictions.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.hardening.quarantine_uaf", [hs] {
        return hs->quarantine_uaf.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.hardening.leaked_blocks", [hs] {
        return hs->leaked_blocks.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.hardening.reports", [hs] {
        return hs->reports.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.hardening.quarantine_depth", [this] {
        return uint64_t(hardening_.quarantineDepth());
    });
    ctl_.registerName("stats.hardening.tx_staged_frees", [hs] {
        return hs->tx_staged_frees.load(std::memory_order_relaxed);
    });

    // Transaction layer (PR 6): lifecycle counters, rejections, and
    // the live open/staged depths.
    const TxStats *txs = &tx_mgr_.stats();
    ctl_.registerName("stats.tx.begins", [txs] {
        return txs->begins.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.tx.commits", [txs] {
        return txs->commits.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.tx.aborts", [txs] {
        return txs->aborts.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.tx.ops_alloc", [txs] {
        return txs->ops_alloc.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.tx.ops_free", [txs] {
        return txs->ops_free.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.tx.ops_write", [txs] {
        return txs->ops_write.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.tx.rejected", [txs] {
        return txs->rejected.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.tx.oversize", [txs] {
        return txs->oversize.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.tx.plain_ops_rejected", [txs] {
        return txs->plain_ops_rejected.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.tx.recovered_committed",
                      [txs] { return txs->recovered_committed; });
    ctl_.registerName("stats.tx.recovered_rolled_back",
                      [txs] { return txs->recovered_rolled_back; });
    ctl_.registerName("stats.tx.open",
                      [this] { return tx_mgr_.openCount(); });
    ctl_.registerName("stats.tx.staged_blocks",
                      [this] { return tx_mgr_.stagedCount(); });

    // Lock-free small-allocation fast path (PR 9, DESIGN.md §14).
    const FastPathStats *fps = &fp_stats_;
    ctl_.registerName("stats.fastpath.reserve_hits", [fps] {
        return fps->reserve_hits.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.fastpath.reserve_misses", [fps] {
        return fps->reserve_misses.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.fastpath.cas_retries", [fps] {
        return fps->cas_retries.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.fastpath.region_steals", [fps] {
        return fps->region_steals.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.fastpath.refill_searches", [fps] {
        return fps->refill_searches.load(std::memory_order_relaxed);
    });
    ctl_.registerName("stats.fastpath.locked_fallbacks", [fps] {
        return fps->locked_fallbacks.load(std::memory_order_relaxed);
    });

    // KV service (kv_stats.h, DESIGN.md §13). Readers dereference the
    // attach pointer at *read* time, so the subtree works no matter
    // whether the store mounted before or after the registry was
    // built, and reports zeros when none is mounted.
    {
        auto kv = [this](auto member) {
            return [this, member]() -> uint64_t {
                const KvStats *s = kvStats();
                return s ? (s->*member).load(std::memory_order_relaxed)
                         : 0;
            };
        };
        ctl_.registerName("stats.kv.inserts", kv(&KvStats::inserts));
        ctl_.registerName("stats.kv.updates", kv(&KvStats::updates));
        ctl_.registerName("stats.kv.erases", kv(&KvStats::erases));
        ctl_.registerName("stats.kv.rmws", kv(&KvStats::rmws));
        ctl_.registerName("stats.kv.gets", kv(&KvStats::gets));
        ctl_.registerName("stats.kv.hits", kv(&KvStats::hits));
        ctl_.registerName("stats.kv.misses", kv(&KvStats::misses));
        ctl_.registerName("stats.kv.scans", kv(&KvStats::scans));
        ctl_.registerName("stats.kv.scanned_records",
                          kv(&KvStats::scanned_records));
        ctl_.registerName("stats.kv.corrupt_records",
                          kv(&KvStats::corrupt_records));
        ctl_.registerName("stats.kv.rejected_unhealthy",
                          kv(&KvStats::rejected_unhealthy));
        ctl_.registerName("stats.kv.rejected_quota",
                          kv(&KvStats::rejected_quota));
        ctl_.registerName("stats.kv.failed_allocs",
                          kv(&KvStats::failed_allocs));
        ctl_.registerName("stats.kv.records", kv(&KvStats::records));
        ctl_.registerName("stats.kv.key_bytes",
                          kv(&KvStats::key_bytes));
        ctl_.registerName("stats.kv.value_bytes",
                          kv(&KvStats::value_bytes));
        ctl_.registerName("stats.kv.buckets", kv(&KvStats::buckets));
        ctl_.registerName("stats.kv.rebuilds", kv(&KvStats::rebuilds));
        ctl_.registerName("stats.kv.rebuilt_records",
                          kv(&KvStats::rebuilt_records));
    }

    // Whole-heap space accounting.
    PmDevice *dev = &dev_;
    ctl_.registerName("stats.heap.device_bytes",
                      [dev] { return uint64_t(dev->size()); });
    ctl_.registerName("stats.heap.mapped_bytes",
                      [dev] { return uint64_t(dev->mappedBytes()); });
    ctl_.registerName("stats.heap.committed_bytes", [dev] {
        return uint64_t(dev->committedBytes());
    });
    ctl_.registerName("stats.heap.peak_committed_bytes", [dev] {
        return uint64_t(dev->peakCommittedBytes());
    });
    ctl_.registerName("stats.heap.arenas", [this] {
        return uint64_t(arenas_.size());
    });
    ctl_.registerName("stats.heap.threads", [this] {
        return uint64_t(attached_threads_.load());
    });
    ctl_.registerName("stats.heap.stat_shards",
                      [tel] { return uint64_t(tel->shardCount()); });
}

const CtlRegistry &
NvAlloc::ctl()
{
    std::call_once(ctl_once_, [this] { buildCtlRegistry(); });
    return ctl_;
}

NvStatus
NvAlloc::ctlRead(const char *name, uint64_t *out)
{
    std::call_once(ctl_once_, [this] { buildCtlRegistry(); });
    // "maintenance.<action>" names are commands, not statistics: they
    // are dispatched here instead of being registered, because registry
    // readers must be side-effect free (forEach/json invoke them all).
    static const char kMaintPrefix[] = "maintenance.";
    if (name && std::strncmp(name, kMaintPrefix,
                             sizeof(kMaintPrefix) - 1) == 0) {
        NvStatus s =
            maintenanceControl(name + sizeof(kMaintPrefix) - 1);
        if (s == NvStatus::Ok && out)
            *out = maint_.stats().slices.load(std::memory_order_relaxed);
        return s == NvStatus::Ok ? NvStatus::Ok : NvStatus::UnknownCtl;
    }
    // "health.restore" is the ctl spelling of restoreHealth(): audit,
    // and return to Serving only when clean. Like the maintenance
    // commands it is dispatched, never registered. The out-param
    // reports the post-call state so callers see where they landed.
    if (name && std::strcmp(name, "health.restore") == 0) {
        NvStatus s = restoreHealth();
        if (out)
            *out = uint64_t(health_.load(std::memory_order_relaxed));
        return s == NvStatus::Ok ? NvStatus::Ok : NvStatus::UnknownCtl;
    }
    // "health.patrol" runs one patrol batch on the caller's thread
    // (tests and tools without a maintenance thread drive the scrubber
    // through this); reads back the items examined.
    if (name && std::strcmp(name, "health.patrol") == 0) {
        uint64_t items = patrolSlice();
        if (out)
            *out = items;
        return NvStatus::Ok;
    }
    uint64_t v = 0;
    if (ctl_.read(name, v) != CtlStatus::Ok)
        return NvStatus::UnknownCtl;
    if (out)
        *out = v;
    return NvStatus::Ok;
}

std::string
NvAlloc::statsJson()
{
    std::call_once(ctl_once_, [this] { buildCtlRegistry(); });
    return ctl_.json();
}

std::string
NvAlloc::fastpathJson() const
{
    // Compact standalone snapshot for nvalloc_stat --fastpath and
    // nvalloc_fsck --json; mirrors the stats.fastpath.* registry
    // names.
    const FastPathStats &s = fp_stats_;
    auto rd = [](const std::atomic<uint64_t> &c) {
        return c.load(std::memory_order_relaxed);
    };
    std::string out = "{";
    auto field = [&out](const char *k, uint64_t v, bool last = false) {
        out += "\"";
        out += k;
        out += "\":";
        out += std::to_string(v);
        if (!last)
            out += ",";
    };
    field("reserve_hits", rd(s.reserve_hits));
    field("reserve_misses", rd(s.reserve_misses));
    field("cas_retries", rd(s.cas_retries));
    field("region_steals", rd(s.region_steals));
    field("refill_searches", rd(s.refill_searches));
    field("locked_fallbacks", rd(s.locked_fallbacks), true);
    out += "}";
    return out;
}

} // namespace nvalloc
