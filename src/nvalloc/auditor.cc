#include "nvalloc/auditor.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/json.h"
#include "common/logging.h"
#include "nvalloc/nvalloc.h"

namespace nvalloc {

namespace {

// Log-region geometry (mirrors bookkeeping_log.cc): a 64 B header at
// the region start, then chunks of one header line plus 1 KB of
// entries each.
constexpr size_t kLogHeaderArea = 64;
constexpr size_t kLogChunkStride = sizeof(LogChunk);

constexpr size_t kMaxNotes = 64;

std::string
fmt(const char *f, uint64_t a, uint64_t b = 0)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), f, (unsigned long long)a,
                  (unsigned long long)b);
    return buf;
}

} // namespace

std::string
AuditReport::summary() const
{
    std::string s;
    auto add = [&](const char *name, uint64_t v) {
        if (v == 0)
            return;
        char buf[96];
        std::snprintf(buf, sizeof(buf), "  %-22s %llu\n", name,
                      (unsigned long long)v);
        s += buf;
    };
    s += clean() ? "audit: clean\n"
                 : fmt("audit: %llu violation(s)\n", violations());
    add("superblock_bad", superblock_bad);
    add("region_table_bad", region_table_bad);
    add("extent_overlap", extent_overlap);
    add("extent_gap", extent_gap);
    add("slab_header_bad", slab_header_bad);
    add("slab_veh_mismatch", slab_veh_mismatch);
    add("bitmap_mismatch", bitmap_mismatch);
    add("counter_mismatch", counter_mismatch);
    add("log_chain_bad", log_chain_bad);
    add("log_entry_bad", log_entry_bad);
    add("log_entry_orphan", log_entry_orphan);
    add("veh_unlogged", veh_unlogged);
    add("wal_entry_bad", wal_entry_bad);
    add("tx_orphan_entries", tx_orphan_entries);
    add("tx_conflict_staged", tx_conflict_staged);
    add("quarantine_bad", quarantine_bad);
    add("poisoned_free_lines", poisoned_free_lines);
    add("poisoned_live_lines", poisoned_live_lines);
    add("canary_stomped", canary_stomped);
    add("repaired_headers", repaired_headers);
    add("repaired_bitmaps", repaired_bitmaps);
    add("repaired_wal_entries", repaired_wal_entries);
    add("repaired_tx_entries", repaired_tx_entries);
    add("requarantined_slabs", requarantined_slabs);
    add("scrubbed_lines", scrubbed_lines);
    for (const auto &n : notes)
        s += "  - " + n + "\n";
    return s;
}

std::string
AuditReport::json() const
{
    JsonWriter w;
    w.beginObject();
    w.key("clean");
    w.value(clean());
    w.key("violations");
    w.value(violations());
    w.key("counters");
    w.beginObject();
    auto add = [&](const char *name, uint64_t v) {
        w.key(name);
        w.value(v);
    };
    add("superblock_bad", superblock_bad);
    add("region_table_bad", region_table_bad);
    add("extent_overlap", extent_overlap);
    add("extent_gap", extent_gap);
    add("slab_header_bad", slab_header_bad);
    add("slab_veh_mismatch", slab_veh_mismatch);
    add("bitmap_mismatch", bitmap_mismatch);
    add("counter_mismatch", counter_mismatch);
    add("log_chain_bad", log_chain_bad);
    add("log_entry_bad", log_entry_bad);
    add("log_entry_orphan", log_entry_orphan);
    add("veh_unlogged", veh_unlogged);
    add("wal_entry_bad", wal_entry_bad);
    add("tx_orphan_entries", tx_orphan_entries);
    add("tx_conflict_staged", tx_conflict_staged);
    add("quarantine_bad", quarantine_bad);
    add("poisoned_free_lines", poisoned_free_lines);
    add("poisoned_live_lines", poisoned_live_lines);
    add("canary_stomped", canary_stomped);
    add("repaired_headers", repaired_headers);
    add("repaired_bitmaps", repaired_bitmaps);
    add("repaired_wal_entries", repaired_wal_entries);
    add("repaired_tx_entries", repaired_tx_entries);
    add("requarantined_slabs", requarantined_slabs);
    add("scrubbed_lines", scrubbed_lines);
    w.endObject();
    w.key("notes");
    w.beginArray();
    for (const auto &n : notes)
        w.value(n);
    w.endArray();
    w.endObject();
    return w.take();
}

HeapAuditor::HeapAuditor(NvAlloc &alloc) : a_(alloc) {}

AuditReport
HeapAuditor::audit()
{
    return run(false);
}

AuditReport
HeapAuditor::repair()
{
    return run(true);
}

void
HeapAuditor::note(const std::string &msg)
{
    if (rep_.notes.size() < kMaxNotes)
        rep_.notes.push_back(msg);
}

AuditReport
HeapAuditor::run(bool repair)
{
    // The auditor needs a quiescent heap: a concurrent maintenance
    // slice could scrub a poisoned line or compact the log between two
    // checks and turn a consistent image into a phantom violation.
    struct MaintQuiesce
    {
        MaintenanceService &m;
        explicit MaintQuiesce(MaintenanceService &m_) : m(m_)
        {
            m.pause();
        }
        ~MaintQuiesce() { m.resume(); }
    } quiesce(a_.maint_);

    rep_ = AuditReport{};
    repair_ = repair;
    extents_.clear();
    regions_.clear();
    log_chunks_.clear();

    checkSuperblock();
    if (a_.open_failed_) {
        // Nothing below the root was adopted; the structural checks
        // above cover a bad superblock, and a clean superblock means
        // the refusal came from the log root.
        if (rep_.clean()) {
            ++rep_.log_chain_bad;
            note("heap failed to open: bookkeeping-log root corrupt");
        }
        return rep_;
    }

    checkRegionsAndExtents();
    checkSlabs();
    checkExtentJournal();
    checkWalRings();
    checkTxRecords();
    checkQuarantine();
    checkPoison();
    return rep_;
}

// ---- online patrol scrub (maintenance stage 5) ---------------------
//
// Unlike run(), nothing here pauses maintenance or assumes quiescence:
// patrolStep executes FROM a maintenance slice, so it takes only the
// per-structure locks it needs for the current bounded batch and
// treats first-observation mismatches as potentially transient.

namespace {
constexpr size_t kPatrolMaxNotes = 8;
}

PatrolSliceResult
HeapAuditor::patrolStep(PatrolCursor &cur, unsigned max_items,
                        unsigned max_retries)
{
    PatrolSliceResult res;
    if (a_.open_failed_)
        return res; // degraded open: nothing below the root adopted
    unsigned budget = max_items ? max_items : 1;
    // At most one visit per phase per slice; a slice never walks more
    // than one full pass even when the heap is smaller than the budget.
    for (unsigned hops = 0; budget > 0 && hops < 5 && !res.wrapped;
         ++hops) {
        unsigned used = 0;
        switch (cur.phase) {
        case 0:
            used = patrolSuperblock(res);
            cur.phase = 1;
            cur.pos = 0;
            break;
        case 1:
            used = patrolRegionTable(cur, budget, res);
            break;
        case 2:
            used = patrolSlabs(cur, budget, max_retries, res);
            break;
        default:
            used = patrolLogChain(cur, budget, res);
            break;
        }
        budget -= std::min(budget, used);
    }
    return res;
}

unsigned
HeapAuditor::patrolSuperblock(PatrolSliceResult &res)
{
    const NvSuperblock *sb = a_.sb_;
    PmDevice &dev = a_.dev_;
    ++res.items;
    // sb_crc covers only the immutable config fields, so a mismatch
    // can never be a racing runtime update — no re-read needed.
    if (dev.isPoisoned(sb, sizeof(NvSuperblock)) ||
        sb->magic != kSuperMagic || sb->version != kSuperVersion ||
        sb->sb_crc != superblockCrc(*sb)) {
        ++res.findings;
        if (res.notes.size() < kPatrolMaxNotes)
            res.notes.push_back("patrol: superblock damaged");
    }
    return 1;
}

unsigned
HeapAuditor::patrolRegionTable(PatrolCursor &cur, unsigned budget,
                               PatrolSliceResult &res)
{
    PmDevice &dev = a_.dev_;
    unsigned used = 0;
    // Entries are published/retired with single-word updates, so each
    // read observes either 0 or a complete entry — no re-read needed.
    while (cur.pos < a_.region_slots_ && used < budget) {
        uint64_t e = a_.region_table_[cur.pos];
        ++used;
        ++res.items;
        ++cur.pos;
        if (e == 0)
            continue;
        uint64_t off = regionEntryOff(e);
        uint64_t size = regionEntrySize(e);
        if (off % PmDevice::kRegionAlign != 0 || size == 0 ||
            off < PmDevice::kRegionAlign || off + size > dev.size()) {
            ++res.findings;
            if (res.notes.size() < kPatrolMaxNotes)
                res.notes.push_back(
                    fmt("patrol: region table entry 0x%llx+%llu out of "
                        "bounds",
                        off, size));
        }
    }
    if (cur.pos >= a_.region_slots_) {
        cur.phase = 2;
        cur.pos = 0;
    }
    return used;
}

unsigned
HeapAuditor::patrolSlabs(PatrolCursor &cur, unsigned budget,
                         unsigned max_retries, PatrolSliceResult &res)
{
    PmDevice &dev = a_.dev_;
    uint64_t ord = 0;
    unsigned used = 0;
    for (auto &arena : a_.arenas_) {
        arena->forEachSlab([&](VSlab *slab) {
            uint64_t my = ord++;
            if (my < cur.pos || used >= budget)
                return;
            ++used;
            ++res.items;
            cur.pos = my + 1;
            uint64_t off = slab->slabOffset();

            // Header line (magic + geometry crc). Morphing rewrites it
            // under the arena lock we hold, so only media faults can
            // race this read; re-read before declaring damage anyway.
            bool bad = !VSlab::headerLooksValid(&dev, off, true);
            for (unsigned r = 0; bad && r < max_retries; ++r) {
                ++res.retries;
                std::this_thread::yield();
                bad = !VSlab::headerLooksValid(&dev, off, true);
            }
            if (bad) {
                ++res.findings;
                if (res.notes.size() < kPatrolMaxNotes)
                    res.notes.push_back(
                        fmt("patrol: slab 0x%llx header invalid", off));
                if (slab->repairHeader()) {
                    dev.clearPoison(off);
                    ++res.repaired;
                }
                return; // bitmap math is noise under a smashed header
            }

            // Persistent-bitmap popcount vs the live counter. The
            // lock-free fast path flips bits without any lock, so a
            // capture is trusted only when the slab's fast-op epoch
            // brackets it: no fast op in flight on either side and no
            // epoch advance in between (DESIGN.md §14). Untrusted
            // captures mean the counters are moving, not corrupt;
            // beyond that, require the identical wrong observation
            // across every re-read before declaring damage.
            auto observe = [&](uint64_t *pop, uint64_t *live) {
                uint64_t e0 = slab->fpEpoch();
                if (slab->fpBusy())
                    return false;
                *pop = slab->persistentPopcount();
                *live = slab->liveBlocks();
                return !slab->fpBusy() && slab->fpEpoch() == e0;
            };
            uint64_t pop = 0, live = 0;
            if (!observe(&pop, &live))
                return; // in-flight fast op; the next pass looks again
            if (pop == live)
                return;
            bool stable = true;
            for (unsigned r = 0; r < max_retries; ++r) {
                ++res.retries;
                std::this_thread::yield();
                uint64_t p2 = 0, l2 = 0;
                if (!observe(&p2, &l2) || p2 == l2 || p2 != pop ||
                    l2 != live) {
                    stable = false;
                    break;
                }
            }
            if (stable) {
                ++res.findings;
                if (res.notes.size() < kPatrolMaxNotes)
                    res.notes.push_back(
                        fmt("patrol: slab 0x%llx bitmap popcount %llu "
                            "!= live",
                            off, pop));
            }
        });
    }
    if (cur.pos >= ord) {
        cur.phase = 3;
        cur.pos = 0;
    }
    return used;
}

unsigned
HeapAuditor::patrolLogChain(PatrolCursor &cur, unsigned budget,
                            PatrolSliceResult &res)
{
    auto wrap = [&] {
        cur.phase = 0;
        cur.pos = 0;
        ++cur.passes;
        res.wrapped = true;
    };
    if (!a_.usesBookkeepingLog()) {
        wrap();
        return 0;
    }
    PmDevice &dev = a_.dev_;
    const NvSuperblock *sb = a_.sb_;
    // The large allocator's lock keeps GC from rewriting the chain
    // mid-walk; entry appends inside a chunk do not touch the chunk
    // header line the crc covers.
    VLockGuard g(a_.large_.lock());

    const uint64_t log_off = sb->log_off;
    const uint64_t log_bytes = sb->log_bytes;
    const auto *lh = static_cast<const LogHeader *>(dev.at(log_off));
    const size_t max_chunks =
        (log_bytes - kLogHeaderArea) / kLogChunkStride;
    unsigned used = 0;

    if (cur.pos == 0) {
        ++used;
        ++res.items;
        if (dev.isPoisoned(lh, sizeof(LogHeader)) ||
            lh->magic != kLogMagic || lh->crc != logHeaderCrc(*lh) ||
            lh->alt > 1 || lh->num_chunks > max_chunks) {
            ++res.findings;
            if (res.notes.size() < kPatrolMaxNotes)
                res.notes.push_back("patrol: log header invalid");
            wrap(); // the chain pointer would chase garbage
            return used;
        }
        cur.pos = 1;
    }

    auto valid_chunk_off = [&](uint64_t o) {
        return o >= log_off + kLogHeaderArea &&
               o + kLogChunkStride <= log_off + log_bytes &&
               (o - log_off - kLogHeaderArea) % kLogChunkStride == 0;
    };

    std::unordered_set<uint64_t> seen;
    uint64_t off = lh->head[lh->alt];
    uint64_t ord = 1; // ordinal of the chunk at `off`
    bool done = true;
    while (off) {
        if (!valid_chunk_off(off) || !seen.insert(off).second) {
            ++res.findings;
            if (res.notes.size() < kPatrolMaxNotes)
                res.notes.push_back(
                    fmt("patrol: log chain broken at 0x%llx", off));
            break;
        }
        const auto *pc = static_cast<const LogChunk *>(dev.at(off));
        if (ord >= cur.pos) {
            if (used >= budget) {
                done = false;
                break;
            }
            ++used;
            ++res.items;
            cur.pos = ord + 1;
            if (dev.isPoisoned(pc, kLogHeaderArea) ||
                pc->crc != logChunkCrc(*pc) || pc->active != 1) {
                ++res.findings;
                if (res.notes.size() < kPatrolMaxNotes)
                    res.notes.push_back(
                        fmt("patrol: log chunk 0x%llx bad header",
                            off));
                break; // the next pointer is untrustworthy
            }
        }
        off = pc->next;
        ++ord;
    }
    if (done)
        wrap();
    return used;
}

void
HeapAuditor::checkSuperblock()
{
    const NvSuperblock *sb = a_.sb_;
    PmDevice &dev = a_.dev_;

    if (dev.isPoisoned(sb, sizeof(NvSuperblock))) {
        ++rep_.superblock_bad;
        note("superblock: poisoned line");
    }
    if (sb->magic != kSuperMagic) {
        ++rep_.superblock_bad;
        note("superblock: bad magic");
        return; // the rest of the fields are noise
    }
    if (sb->version != kSuperVersion) {
        ++rep_.superblock_bad;
        note(fmt("superblock: version %llu", sb->version));
    }
    if (sb->sb_crc != superblockCrc(*sb)) {
        ++rep_.superblock_bad;
        note("superblock: crc mismatch");
    }
    if (sb->num_arenas == 0 || sb->num_arenas > kMaxArenas) {
        ++rep_.superblock_bad;
        note(fmt("superblock: num_arenas %llu", sb->num_arenas));
    }
    if (sb->consistency > 2) {
        ++rep_.superblock_bad;
        note(fmt("superblock: consistency %llu", sb->consistency));
    }
    if (sb->wal_off == 0 ||
        sb->wal_off + uint64_t(kMaxThreads) * kWalRingBytes > dev.size()) {
        ++rep_.superblock_bad;
        note(fmt("superblock: wal region 0x%llx out of bounds",
                 sb->wal_off));
    }
    if (sb->log_off != 0 &&
        (sb->log_bytes < kLogHeaderArea + 4 * kLogChunkStride ||
         sb->log_off + sb->log_bytes > dev.size())) {
        ++rep_.superblock_bad;
        note(fmt("superblock: log region 0x%llx+%llu out of bounds",
                 sb->log_off, sb->log_bytes));
    }
}

void
HeapAuditor::checkRegionsAndExtents()
{
    PmDevice &dev = a_.dev_;

    a_.large_.forEachRegion(
        [&](uint64_t off, uint64_t size) { regions_.push_back({off, size}); });
    std::sort(regions_.begin(), regions_.end());

    a_.large_.forEachVeh([&](Veh *v) {
        extents_.push_back(
            {v->off, v->size, int(v->state), v->is_slab});
    });
    std::sort(extents_.begin(), extents_.end(),
              [](const ExtSnap &a, const ExtSnap &b) {
                  return a.off < b.off;
              });

    // Region table (persistent) vs the volatile region map.
    std::unordered_map<uint64_t, uint64_t> table;
    for (unsigned i = 0; i < a_.region_slots_; ++i) {
        uint64_t e = a_.region_table_[i];
        if (e == 0)
            continue;
        uint64_t off = regionEntryOff(e);
        uint64_t size = regionEntrySize(e);
        if (off % PmDevice::kRegionAlign != 0 || size == 0 ||
            off < PmDevice::kRegionAlign || off + size > dev.size()) {
            ++rep_.region_table_bad;
            note(fmt("region table: bad entry 0x%llx+%llu", off, size));
            continue;
        }
        if (!table.emplace(off, size).second) {
            ++rep_.region_table_bad;
            note(fmt("region table: duplicate region 0x%llx", off));
        }
    }
    for (const auto &[off, size] : regions_) {
        auto it = table.find(off);
        if (it == table.end() || it->second != size) {
            ++rep_.region_table_bad;
            note(fmt("region 0x%llx+%llu missing from table", off, size));
        } else {
            table.erase(it);
        }
    }
    for (const auto &[off, size] : table) {
        ++rep_.region_table_bad;
        note(fmt("region table: stale entry 0x%llx+%llu", off, size));
    }

    // Regions must not overlap.
    for (size_t i = 1; i < regions_.size(); ++i) {
        if (regions_[i - 1].first + regions_[i - 1].second >
            regions_[i].first) {
            ++rep_.region_table_bad;
            note(fmt("regions 0x%llx and 0x%llx overlap",
                     regions_[i - 1].first, regions_[i].first));
        }
    }

    // Every region's payload must be tiled by extents exactly: start
    // at the header boundary, no gap, no overlap, flush with the end.
    size_t ei = 0;
    for (const auto &[roff, rsize] : regions_) {
        while (ei < extents_.size() && extents_[ei].off < roff) {
            // An extent below every remaining region is orphaned.
            ++rep_.extent_gap;
            note(fmt("extent 0x%llx outside any region",
                     extents_[ei].off));
            ++ei;
        }
        uint64_t cursor = roff + kRegionHeaderSize;
        uint64_t rend = roff + rsize;
        while (ei < extents_.size() && extents_[ei].off < rend) {
            const ExtSnap &e = extents_[ei];
            if (e.off < cursor) {
                ++rep_.extent_overlap;
                note(fmt("extent 0x%llx overlaps previous end 0x%llx",
                         e.off, cursor));
            } else if (e.off > cursor) {
                ++rep_.extent_gap;
                note(fmt("gap [0x%llx, 0x%llx) not covered", cursor,
                         e.off));
            }
            cursor = e.off + e.size;
            ++ei;
        }
        if (cursor != rend) {
            ++rep_.extent_gap;
            note(fmt("gap [0x%llx, 0x%llx) at region tail", cursor,
                     rend));
        }
    }
    while (ei < extents_.size()) {
        ++rep_.extent_gap;
        note(fmt("extent 0x%llx outside any region", extents_[ei].off));
        ++ei;
    }
}

void
HeapAuditor::checkSlabs()
{
    PmDevice &dev = a_.dev_;

    for (auto &arena : a_.arenas_) {
        arena->forEachSlab([&](VSlab *slab) {
            uint64_t off = slab->slabOffset();

            if (!VSlab::headerLooksValid(&dev, off, true)) {
                ++rep_.slab_header_bad;
                note(fmt("slab 0x%llx: header invalid", off));
                if (repair_) {
                    if (slab->repairHeader()) {
                        dev.clearPoison(off); // first line only
                        ++rep_.repaired_headers;
                    } else {
                        note(fmt("slab 0x%llx: header not repairable "
                                 "(morphing)",
                                 off));
                    }
                }
            }

            // The whole 2 KB bitmap is popcounted, not just the active
            // geometry's physical slots, so a stray bit outside the
            // mapped range is a violation too. The walk holds no slab
            // lock (there is none to hold since the lock-free fast
            // path landed), so the capture is epoch-bracketed like the
            // patrol's: an observation with a fast op in flight or an
            // epoch advance across it is moving, not auditable, and
            // is retried rather than reported.
            uint64_t pop = 0, live = 0;
            bool trusted = false;
            for (unsigned r = 0; r < 8 && !trusted; ++r) {
                uint64_t e0 = slab->fpEpoch();
                if (slab->fpBusy()) {
                    std::this_thread::yield();
                    continue;
                }
                pop = slab->persistentPopcount();
                live = slab->liveBlocks();
                trusted = !slab->fpBusy() && slab->fpEpoch() == e0;
            }
            if (trusted && pop != live) {
                ++rep_.bitmap_mismatch;
                note(fmt("slab 0x%llx: bitmap popcount %llu != live",
                         off, pop));
                if (repair_) {
                    if (slab->rebuildPersistentBitmap())
                        ++rep_.repaired_bitmaps;
                    else
                        note(fmt("slab 0x%llx: bitmap not repairable "
                                 "(lent blocks or morphing)",
                                 off));
                }
            }

            unsigned vset = 0;
            for (unsigned idx = 0; idx < slab->capacity(); ++idx)
                vset += slab->vbitTest(idx) ? 1 : 0;
            if (vset != slab->capacity() - slab->available()) {
                ++rep_.counter_mismatch;
                note(fmt("slab 0x%llx: vbitmap %llu blocks vs counters",
                         off, vset));
            }

            if (slab->morphing()) {
                const SlabHeader *h = slab->header();
                unsigned live_old = 0;
                for (unsigned i = 0; i < h->index_count; ++i)
                    live_old +=
                        (h->index_table[i] & kIndexAllocated) ? 1 : 0;
                if (live_old != slab->cntSlab()) {
                    ++rep_.counter_mismatch;
                    note(fmt("slab 0x%llx: index table %llu live old "
                             "blocks vs cnt_slab",
                             off, live_old));
                }
            }

            // Canary sweep (informational): a dirtied canary word in a
            // live block is application damage, not metadata damage —
            // reported so operators see overflows before the free-time
            // check would, but never counted as a heap violation.
            // Morphing slabs are skipped: old-geometry blocks carry
            // stamps from a different block size.
            if (a_.cfg_.redzone_canaries && !slab->morphing()) {
                unsigned bsize = slab->blockSize();
                for (unsigned idx = 0; idx < slab->capacity(); ++idx) {
                    if (!slab->isAllocated(idx))
                        continue;
                    uint64_t boff = slab->blockOffset(idx);
                    uint64_t word = 0;
                    std::memcpy(&word,
                                static_cast<const uint8_t *>(
                                    dev.at(boff)) +
                                    bsize - HardeningManager::kCanaryBytes,
                                sizeof(word));
                    if (word != HardeningManager::canaryValue(boff)) {
                        ++rep_.canary_stomped;
                        note(fmt("block 0x%llx: canary stomped", boff));
                    }
                }
            }

            Veh *veh = a_.large_.findVeh(off);
            if (!veh || veh->off != off || veh->size != kSlabSize ||
                veh->state != Veh::State::Activated || !veh->is_slab) {
                ++rep_.slab_veh_mismatch;
                note(fmt("slab 0x%llx: no activated slab extent", off));
            }
        });
    }

    // Reverse direction: every activated slab extent must be backed by
    // a vslab — or be quarantined, which is exactly what repair does.
    for (const ExtSnap &e : extents_) {
        if (e.state != int(Veh::State::Activated) || !e.is_slab)
            continue;
        VSlab *slab = a_.slabOf(e.off);
        if (slab && slab->slabOffset() == e.off)
            continue;
        if (a_.isQuarantined(e.off))
            continue;
        ++rep_.slab_veh_mismatch;
        note(fmt("slab extent 0x%llx has no vslab and is not "
                 "quarantined",
                 e.off));
        if (repair_) {
            a_.quarantineSlab(e.off);
            ++rep_.requarantined_slabs;
        }
    }
}

void
HeapAuditor::checkExtentJournal()
{
    PmDevice &dev = a_.dev_;
    const NvSuperblock *sb = a_.sb_;

    if (!a_.usesBookkeepingLog()) {
        // In-place mode: every activated extent's descriptor slot must
        // record it as allocated.
        a_.large_.forEachVeh([&](Veh *v) {
            if (v->state != Veh::State::Activated)
                return;
            if (v->desc_off == 0 ||
                v->desc_off + sizeof(ExtentDesc) > dev.size()) {
                ++rep_.veh_unlogged;
                note(fmt("extent 0x%llx: no descriptor slot", v->off));
                return;
            }
            const auto *d =
                static_cast<const ExtentDesc *>(dev.at(v->desc_off));
            if (d->offset != v->off || d->size != v->size ||
                d->state != 1 || (d->is_slab != 0) != v->is_slab) {
                ++rep_.veh_unlogged;
                note(fmt("extent 0x%llx: descriptor mismatch", v->off));
            }
        });
        return;
    }

    // Independent walk of the persistent chunk chain (same structural
    // rules as replay, but read-only and cross-checked against the
    // volatile extent state instead of rebuilding it).
    const uint64_t log_off = sb->log_off;
    const uint64_t log_bytes = sb->log_bytes;
    const auto *lh = static_cast<const LogHeader *>(dev.at(log_off));
    const size_t max_chunks = (log_bytes - kLogHeaderArea) / kLogChunkStride;

    if (dev.isPoisoned(lh, sizeof(LogHeader)) || lh->magic != kLogMagic ||
        lh->crc != logHeaderCrc(*lh) || lh->alt > 1 ||
        lh->num_chunks > max_chunks) {
        ++rep_.log_chain_bad;
        note("log header: invalid");
        return;
    }

    InterleaveMap map = InterleaveMap::build(
        kLogEntriesPerChunk, 64,
        a_.cfg_.interleaved_log ? kLogChunkStripes : 1);

    auto valid_chunk_off = [&](uint64_t o) {
        return o >= log_off + kLogHeaderArea &&
               o + kLogChunkStride <= log_off + log_bytes &&
               (o - log_off - kLogHeaderArea) % kLogChunkStride == 0;
    };
    auto key = [](uint32_t id, uint32_t slot) {
        return (uint64_t(id) << 32) | slot;
    };

    struct LiveEnt
    {
        uint64_t off;
        uint64_t size;
        bool is_slab;
    };
    std::unordered_map<uint64_t, LiveEnt> live;
    std::vector<std::pair<uint32_t, uint32_t>> tombs;
    std::unordered_set<uint32_t> ids;

    uint64_t off = lh->head[lh->alt];
    while (off) {
        if (!valid_chunk_off(off)) {
            ++rep_.log_chain_bad;
            note(fmt("log chain: bad chunk offset 0x%llx", off));
            break;
        }
        if (!log_chunks_.insert(off).second) {
            ++rep_.log_chain_bad;
            note(fmt("log chain: cycle at 0x%llx", off));
            break;
        }
        const auto *pc = static_cast<const LogChunk *>(dev.at(off));
        if (dev.isPoisoned(pc, kLogHeaderArea) ||
            pc->crc != logChunkCrc(*pc) || pc->active != 1) {
            ++rep_.log_chain_bad;
            note(fmt("log chunk 0x%llx: bad header", off));
            break;
        }
        if (!ids.insert(pc->id).second) {
            ++rep_.log_chain_bad;
            note(fmt("log chain: duplicate chunk id %llu", pc->id));
        }
        for (unsigned slot = 0; slot < kLogEntriesPerChunk; ++slot) {
            uint64_t w = pc->entries[map.physical(slot)];
            if (w == 0)
                continue; // never appended (appends are dense)
            if (dev.isPoisoned(&pc->entries[map.physical(slot)], 8) ||
                !logEntryChecksumOk(w)) {
                ++rep_.log_entry_bad;
                note(fmt("log chunk 0x%llx slot %llu: bad entry", off,
                         slot));
                continue;
            }
            LogType t = logEntryType(w);
            if (t == kLogTombstone) {
                tombs.push_back({uint32_t(logEntryAddr(w)),
                                 uint32_t(logEntrySize(w))});
            } else if (t == kLogNormal || t == kLogSlab) {
                live[key(pc->id, slot)] = {logEntryAddr(w) << 12,
                                           logEntrySize(w),
                                           t == kLogSlab};
            }
        }
        off = pc->next;
    }
    for (const auto &[id, slot] : tombs)
        live.erase(key(id, slot));

    // Every activated extent must own exactly one live entry, and
    // every live entry must describe an activated extent.
    a_.large_.forEachVeh([&](Veh *v) {
        if (v->state != Veh::State::Activated)
            return;
        auto it = live.find(key(v->log_ref.chunk_id, v->log_ref.slot));
        if (it == live.end() || it->second.off != v->off ||
            it->second.size != v->size ||
            it->second.is_slab != v->is_slab) {
            ++rep_.veh_unlogged;
            note(fmt("extent 0x%llx: no matching log entry", v->off));
        } else {
            live.erase(it);
        }
    });
    for (const auto &[k, e] : live) {
        (void)k;
        ++rep_.log_entry_orphan;
        note(fmt("log entry for 0x%llx+%llu has no extent", e.off,
                 e.size));
    }
}

void
HeapAuditor::checkWalRings()
{
    PmDevice &dev = a_.dev_;
    const NvSuperblock *sb = a_.sb_;

    for (unsigned slot = 0; slot < kMaxThreads; ++slot) {
        uint64_t ring_off = sb->wal_off + uint64_t(slot) * kWalRingBytes;
        auto *ring = static_cast<WalEntry *>(dev.at(ring_off));
        for (unsigned s = 0; s < kWalRingBytes / sizeof(WalEntry); ++s) {
            WalEntry &e = ring[s];
            unsigned op = unsigned(e.block_op & 3);
            if (op == kWalNone)
                continue;
            bool bad =
                dev.isPoisoned(&e, sizeof(e)) || e.crc != walEntryCrc(e);
            if (!bad) {
                // Structural rules per entry flavour. kWalTxData exists
                // only inside a transaction: a word-write op (offset
                // bounded) or a commit/abort record (op count bounded).
                // Plain alloc/free entries carry a bounded offset and a
                // tag that is either absent or a tx op.
                if (op == unsigned(kWalTxData)) {
                    bad = e.tx_id == 0 ||
                          (e.tx_mark != kWalTxOp &&
                           e.tx_mark != kWalTxCommit &&
                           e.tx_mark != kWalTxAbort &&
                           e.tx_mark != kWalTxApplied) ||
                          (e.tx_mark == kWalTxOp
                               ? (e.block_op >> 2) >= dev.size()
                               : (e.block_op >> 2) > kWalRingEntries);
                } else {
                    bad = (e.block_op >> 2) >= dev.size() ||
                          (e.tx_id == 0 ? e.tx_mark != kWalTxNone
                                        : e.tx_mark != kWalTxOp);
                }
            }
            if (!bad)
                continue;
            ++rep_.wal_entry_bad;
            note(fmt("wal ring %llu entry %llu: torn/poisoned", slot,
                     s));
            if (repair_) {
                std::memset(&e, 0, sizeof(e));
                dev.persist(&e, sizeof(e), TimeKind::FlushWal);
                dev.fence();
                dev.clearPoison(ring_off + s * sizeof(WalEntry));
                ++rep_.repaired_wal_entries;
            }
        }
    }
}

/**
 * Transaction-layer invariants over the WAL rings and the volatile
 * staged registry (DESIGN.md §11):
 *
 *  - every intact tx-tagged op entry belongs to a transaction that is
 *    either still open (live audit) or has its commit/abort record in
 *    the same ring — anything else is an orphan: its tx can never be
 *    resolved (a stomped record, or entries that leaked past
 *    recovery), and replay would mis-handle the run after the next
 *    crash. Repair scrubs the orphaned entries; the run was either
 *    fully applied (record stomped after apply) or will be undone as
 *    recordless on recovery, so the entries carry no information a
 *    future replay may rely on once flagged;
 *  - no transaction has both a commit and an abort record (ambiguous
 *    resolution; reported, never repaired by guessing);
 *  - every offset in the staged registry is a currently-allocated
 *    block: a staged-but-free block means tx bookkeeping and the heap
 *    disagree, and a plain allocation could now hand the same block
 *    out twice. Repair re-claims slab blocks.
 */
void
HeapAuditor::checkTxRecords()
{
    PmDevice &dev = a_.dev_;
    const NvSuperblock *sb = a_.sb_;

    for (unsigned slot = 0; slot < kMaxThreads; ++slot) {
        uint64_t ring_off = sb->wal_off + uint64_t(slot) * kWalRingBytes;
        auto *ring = static_cast<WalEntry *>(dev.at(ring_off));

        struct TxRun
        {
            std::vector<unsigned> op_slots;
            bool commit = false;
            bool abort = false;
        };
        std::unordered_map<uint32_t, TxRun> runs;
        for (unsigned s = 0; s < kWalRingBytes / sizeof(WalEntry); ++s) {
            WalEntry &e = ring[s];
            if ((e.block_op & 3) == kWalNone || e.tx_id == 0)
                continue;
            if (dev.isPoisoned(&e, sizeof(e)) || e.crc != walEntryCrc(e))
                continue; // checkWalRings already counted/repaired it
            TxRun &r = runs[e.tx_id];
            if (e.tx_mark == kWalTxCommit ||
                e.tx_mark == kWalTxApplied)
                r.commit = true;
            else if (e.tx_mark == kWalTxAbort)
                r.abort = true;
            else
                r.op_slots.push_back(s);
        }

        for (auto &[id, r] : runs) {
            if (r.commit && r.abort) {
                ++rep_.tx_orphan_entries;
                note(fmt("wal ring %llu: tx %llu has both commit and "
                         "abort records",
                         slot, id));
                continue;
            }
            if (r.op_slots.empty() || r.commit || r.abort ||
                a_.tx_mgr_.isOpen(id))
                continue;
            ++rep_.tx_orphan_entries;
            note(fmt("wal ring %llu: orphaned entries of tx %llu", slot,
                     id));
            if (repair_) {
                for (unsigned s : r.op_slots) {
                    WalEntry &e = ring[s];
                    std::memset(&e, 0, sizeof(e));
                    dev.persist(&e, sizeof(e), TimeKind::FlushWal);
                    dev.fence();
                    dev.clearPoison(ring_off + s * sizeof(WalEntry));
                    ++rep_.repaired_tx_entries;
                }
            }
        }
    }

    for (uint64_t off : a_.tx_mgr_.stagedSnapshot()) {
        bool allocated = false;
        VSlab *slab = off < dev.size() ? a_.slabOf(off) : nullptr;
        unsigned idx = 0;
        if (slab) {
            unsigned old_idx = 0;
            if (slab->isOldBlock(off, old_idx)) {
                allocated = true;
            } else {
                idx = slab->blockIndexOf(off);
                allocated = idx < slab->capacity() &&
                            slab->blockOffset(idx) == off &&
                            slab->isAllocated(idx);
            }
        } else if (off < dev.size()) {
            Veh *veh = a_.large_.findVeh(off);
            allocated = veh && veh->off == off &&
                        veh->state == Veh::State::Activated;
        }
        if (allocated)
            continue;
        ++rep_.tx_conflict_staged;
        note(fmt("tx-staged block 0x%llx is not allocated", off));
        if (repair_ && slab && idx < slab->capacity() &&
            slab->blockOffset(idx) == off) {
            VLockGuard g(slab->arena->lock);
            slab->claimBlock(idx);
            ++rep_.repaired_tx_entries;
        }
    }
}

void
HeapAuditor::checkQuarantine()
{
    PmDevice &dev = a_.dev_;
    const NvSuperblock *sb = a_.sb_;

    unsigned count = sb->quarantine_count;
    if (count > kQuarantineSlots) {
        ++rep_.quarantine_bad;
        note(fmt("quarantine: count %llu exceeds capacity", count));
        count = kQuarantineSlots;
    }
    for (unsigned i = 0; i < kQuarantineSlots; ++i) {
        uint64_t q = sb->quarantine[i];
        if (i >= count) {
            if (q != 0) {
                ++rep_.quarantine_bad;
                note(fmt("quarantine: slot %llu beyond count not empty",
                         i));
            }
            continue;
        }
        if (q == 0 || q % kExtentAlign != 0 ||
            q < PmDevice::kRegionAlign || q + kSlabSize > dev.size()) {
            ++rep_.quarantine_bad;
            note(fmt("quarantine: bad offset 0x%llx", q));
            continue;
        }
        if (a_.slabOf(q) != nullptr) {
            ++rep_.quarantine_bad;
            note(fmt("quarantine: slab 0x%llx is simultaneously live",
                     q));
        }
    }
}

bool
HeapAuditor::lineIsFree(uint64_t line)
{
    PmDevice &dev = a_.dev_;
    const NvSuperblock *sb = a_.sb_;

    // Root area: superblock + region table are always live metadata;
    // the rest of the first alignment grain is never handed out.
    if (line < PmDevice::kRootSize)
        return false;
    if (line < PmDevice::kRegionAlign)
        return true;

    uint64_t wal_end =
        sb->wal_off + uint64_t(kMaxThreads) * kWalRingBytes;
    if (line >= sb->wal_off && line < wal_end) {
        // One WalEntry per line: occupied only if a valid entry sits
        // there. A torn/poisoned entry is scrubbable by definition —
        // replay would reject it as uncommitted anyway.
        const auto *e = static_cast<const WalEntry *>(dev.at(line));
        return (e->block_op & 3) == kWalNone || e->crc != walEntryCrc(*e);
    }

    if (a_.usesBookkeepingLog() && line >= sb->log_off &&
        line < sb->log_off + sb->log_bytes) {
        if (line < sb->log_off + kLogHeaderArea)
            return false; // log header
        uint64_t idx =
            (line - sb->log_off - kLogHeaderArea) / kLogChunkStride;
        uint64_t chunk =
            sb->log_off + kLogHeaderArea + idx * kLogChunkStride;
        return log_chunks_.count(chunk) == 0; // inactive chunk space
    }

    if (VSlab *slab = a_.slabOf(line)) {
        uint64_t so = slab->slabOffset();
        if (line < so + kSlabHeaderSize)
            return false; // header / bitmap / index table
        // Free iff no overlapping block is allocated, lent, or covered
        // by a live old-geometry block (the vbitmap folds all three).
        uint64_t rel = line - so - kSlabHeaderSize;
        unsigned first = unsigned(rel / slab->blockSize());
        unsigned last =
            unsigned((rel + kCacheLine - 1) / slab->blockSize());
        for (unsigned i = first; i <= last && i < slab->capacity(); ++i) {
            if (slab->vbitTest(i))
                return false;
        }
        return true;
    }

    // Large extents (activated slabs were handled above; an activated
    // is_slab snapshot here means a quarantined slab, which is leaked
    // and must not be rewritten).
    auto it = std::upper_bound(
        extents_.begin(), extents_.end(), line,
        [](uint64_t l, const ExtSnap &e) { return l < e.off; });
    if (it != extents_.begin()) {
        const ExtSnap &e = *(it - 1);
        if (line < e.off + e.size)
            return e.state != int(Veh::State::Activated);
    }

    // Region header areas hold live descriptors in in-place mode only.
    auto rit = std::upper_bound(
        regions_.begin(), regions_.end(),
        std::make_pair(line, ~uint64_t{0}));
    if (rit != regions_.begin()) {
        const auto &[roff, rsize] = *(rit - 1);
        if (line < roff + rsize && line < roff + kRegionHeaderSize)
            return a_.usesBookkeepingLog();
    }

    return true; // unmapped device space
}

void
HeapAuditor::scrubLine(uint64_t line)
{
    PmDevice &dev = a_.dev_;
    std::memset(dev.at(line), 0, kCacheLine);
    dev.persist(dev.at(line), kCacheLine, TimeKind::FlushMeta);
    dev.fence();
    // persist() heals poison only under an active fault-injection
    // epoch; clear it explicitly so a scrub always lands.
    dev.clearPoison(line);
}

void
HeapAuditor::checkPoison()
{
    for (uint64_t line : a_.dev_.poisonedLineOffsets()) {
        if (lineIsFree(line)) {
            ++rep_.poisoned_free_lines;
            if (repair_) {
                scrubLine(line);
                ++rep_.scrubbed_lines;
            }
        } else {
            ++rep_.poisoned_live_lines;
            note(fmt("poisoned live line 0x%llx", line));
        }
    }
}

} // namespace nvalloc
