#include "nvalloc/nvalloc_c.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "nvalloc/nvalloc.h"
#include "nvalloc/pool.h"

namespace nvalloc {

static_assert(NVALLOC_TX_MAX_OPS == kTxMaxOps,
              "C header tx-op bound out of sync with layout.h");

struct NvInstance
{
    /** Plain instance: owns its heap (nvalloc_init/nvalloc_open_ex). */
    explicit NvInstance(std::unique_ptr<NvAlloc> a)
        : owned(std::move(a)), alloc(owned.get())
    {
    }

    /** Pool member: borrows the heap the process-wide HeapPool owns;
     *  torn down through the pool on the last nvalloc_exit. */
    NvInstance(NvAlloc *borrowed, std::string name)
        : alloc(borrowed), pool_name(std::move(name))
    {
    }

    std::unique_ptr<NvAlloc> owned;
    NvAlloc *alloc;
    std::string pool_name; //!< empty for plain instances
    std::mutex mutex;
    std::unordered_map<std::thread::id, ThreadCtx *> ctxs;

    /** Implicit per-thread attach; nullptr when the allocator refused
     *  the attach (slot exhaustion or a failed open). A refused thread
     *  retries on its next call rather than caching the failure. */
    ThreadCtx *
    ctx()
    {
        std::lock_guard<std::mutex> g(mutex);
        auto [it, fresh] = ctxs.emplace(std::this_thread::get_id(),
                                        nullptr);
        if (fresh || it->second == nullptr)
            it->second = alloc->attachThread();
        return it->second;
    }
};

NvInstance *
nvalloc_init(PmDevice *dev, const NvAllocOptions *opts)
{
    // Deprecated path: keeps the historical "always returns an
    // instance" contract (a corrupt image yields a degraded heap with
    // no out-of-band signal beyond nvalloc_errno).
    NvAllocConfig cfg;
    if (opts) {
        cfg.consistency =
            opts->gc_variant ? Consistency::Gc : Consistency::Log;
        cfg.bit_stripes = opts->bit_stripes;
        cfg.slab_morphing = opts->slab_morphing;
    }
    return new NvInstance(NvAlloc::openOrDie(*dev, cfg));
}

namespace {

/** Shared by nvalloc_open_ex and nvalloc_open_named: translate the
 *  versioned C options into an NvAllocConfig. Returns NVALLOC_OK or
 *  NVALLOC_EINVAL (unknown version / enum value out of range). */
int
optionsToConfig(const nvalloc_options *opts, NvAllocConfig &cfg)
{
    if (opts->version == 0 || opts->version > NVALLOC_OPTIONS_VERSION)
        return NVALLOC_EINVAL;

    // Version-1 fields are read unconditionally; later revisions'
    // fields only when the caller's header defined them.
    cfg.consistency =
        opts->gc_variant ? Consistency::Gc : Consistency::Log;
    cfg.bit_stripes = opts->bit_stripes;
    cfg.slab_morphing = opts->slab_morphing != 0;
    switch (opts->maintenance_mode) {
    case NVALLOC_MAINT_OFF:
        cfg.maintenance_mode = MaintenanceMode::Off;
        break;
    case NVALLOC_MAINT_MANUAL:
        cfg.maintenance_mode = MaintenanceMode::Manual;
        break;
    case NVALLOC_MAINT_THREAD:
        cfg.maintenance_mode = MaintenanceMode::Thread;
        break;
    default:
        return NVALLOC_EINVAL;
    }
    cfg.maintenance_slice_ns = opts->maintenance_slice_ns;
    cfg.maintenance_wake_fraction = opts->maintenance_wake_fraction;
    cfg.maintenance_scrub_lines = opts->maintenance_scrub_lines;

    if (opts->version >= 2) {
        cfg.guard_sample_rate = opts->guard_sample_rate;
        cfg.redzone_canaries = opts->redzone_canaries != 0;
        cfg.quarantine_depth = opts->quarantine_depth;
        switch (opts->hardening_policy) {
        case NVALLOC_HARDEN_REPORT:
            cfg.hardening_policy = HardeningPolicy::Report;
            break;
        case NVALLOC_HARDEN_QUARANTINE:
            cfg.hardening_policy = HardeningPolicy::Quarantine;
            break;
        case NVALLOC_HARDEN_ABORT:
            cfg.hardening_policy = HardeningPolicy::Abort;
            break;
        default:
            return NVALLOC_EINVAL;
        }
    }

    if (opts->version >= 3) {
        cfg.patrol_scrub = opts->patrol_scrub != 0;
        cfg.patrol_items = opts->patrol_items;
        cfg.patrol_retries = opts->patrol_retries;
        cfg.fault_containment = opts->fault_containment != 0;
        cfg.capacity_quota_bytes = opts->capacity_quota_bytes;
    }

    if (opts->version >= 4) {
        switch (opts->fastpath) {
        case NVALLOC_FASTPATH_LOCKED:
            cfg.fastpath = FastPathMode::Locked;
            break;
        case NVALLOC_FASTPATH_LOCKFREE:
            cfg.fastpath = FastPathMode::LockFree;
            break;
        default:
            return NVALLOC_EINVAL;
        }
        cfg.fastpath_regions = opts->fastpath_regions;
        cfg.fastpath_batch = opts->fastpath_batch;
    }
    return NVALLOC_OK;
}

/** The process-wide pool behind nvalloc_open_named, plus the handle
 *  refcounts (one per successful named open; the member closes on the
 *  last nvalloc_exit). Both guarded by namedMu. */
struct NamedEntry
{
    NvInstance *inst;
    unsigned refs;
};

std::mutex &
namedMu()
{
    static std::mutex mu;
    return mu;
}

HeapPool &
globalPool()
{
    static HeapPool *pool = new HeapPool; // immortal, like the registry
    return *pool;
}

std::unordered_map<std::string, NamedEntry> &
namedTable()
{
    static auto *tab = new std::unordered_map<std::string, NamedEntry>;
    return *tab;
}

} // namespace

int
nvalloc_open_ex(PmDevice *dev, const nvalloc_options *opts,
                NvInstance **out)
{
    if (!dev || !opts || !out)
        return NVALLOC_EINVAL;
    NvAllocConfig cfg;
    if (optionsToConfig(opts, cfg) != NVALLOC_OK)
        return NVALLOC_EINVAL;

    OpenResult r = NvAlloc::open(*dev, cfg);
    if (!r.heap)
        return NVALLOC_EINVAL; // config rejected; device untouched
    *out = new NvInstance(std::move(r.heap));
    return r.status == NvStatus::CorruptMetadata ? NVALLOC_ECORRUPT
                                                 : NVALLOC_OK;
}

int
nvalloc_open_named(PmDevice *dev, const char *name,
                   const nvalloc_options *opts, NvInstance **out)
{
    if (!dev || !name || !*name || !opts || !out)
        return NVALLOC_EINVAL;
    NvAllocConfig cfg;
    if (optionsToConfig(opts, cfg) != NVALLOC_OK)
        return NVALLOC_EINVAL;

    std::lock_guard<std::mutex> g(namedMu());
    // The pool decides identity-vs-mismatch on the *effective* config
    // (fault_containment forced on), and records a mismatch on the
    // existing member's sticky status so its nvalloc_errno reads
    // EINVAL.
    HeapPool::MemberResult r = globalPool().open(name, *dev, cfg);
    if (!r.heap)
        return NVALLOC_EINVAL; // bad config, or options mismatch
    auto &tab = namedTable();
    auto it = tab.find(name);
    if (it != tab.end()) {
        ++it->second.refs;
        *out = it->second.inst;
    } else {
        NvInstance *inst = new NvInstance(r.heap, name);
        tab.emplace(name, NamedEntry{inst, 1});
        *out = inst;
    }
    return r.status == NvStatus::CorruptMetadata ? NVALLOC_ECORRUPT
                                                 : NVALLOC_OK;
}

int
nvalloc_health(NvInstance *inst)
{
    return int(inst->alloc->health());
}

int
nvalloc_restore_health(NvInstance *inst)
{
    return inst->alloc->restoreHealth() == NvStatus::Ok
               ? NVALLOC_OK
               : NVALLOC_ECORRUPT;
}

int
nvalloc_maintenance(NvInstance *inst, const char *action)
{
    return inst->alloc->maintenanceControl(action) == NvStatus::Ok
               ? NVALLOC_OK
               : NVALLOC_EINVAL;
}

void
nvalloc_exit(NvInstance *inst)
{
    if (!inst->pool_name.empty()) {
        // Pool member: handles are refcounted — only the LAST exit
        // detaches the threads and closes the member through the pool.
        std::lock_guard<std::mutex> g(namedMu());
        auto &tab = namedTable();
        auto it = tab.find(inst->pool_name);
        if (it != tab.end() && --it->second.refs > 0)
            return;
        {
            std::lock_guard<std::mutex> t(inst->mutex);
            for (auto &[tid, ctx] : inst->ctxs) {
                if (ctx)
                    inst->alloc->detachThread(ctx);
            }
            inst->ctxs.clear();
        }
        globalPool().close(inst->pool_name);
        if (it != tab.end())
            tab.erase(it);
        delete inst;
        return;
    }
    {
        std::lock_guard<std::mutex> g(inst->mutex);
        for (auto &[tid, ctx] : inst->ctxs) {
            if (ctx)
                inst->alloc->detachThread(ctx);
        }
        inst->ctxs.clear();
    }
    delete inst;
}

void *
nvalloc_malloc_to(NvInstance *inst, size_t size, uint64_t *where)
{
    ThreadCtx *ctx = inst->ctx();
    if (!ctx)
        return nullptr; // attach refused; nvalloc_errno says why
    return inst->alloc->mallocTo(*ctx, size, where);
}

int
nvalloc_free_from(NvInstance *inst, uint64_t *where)
{
    // On a degraded instance no free can ever be serviced: refuse it
    // as an invalid free (part of the hostile-free error contract)
    // instead of reporting a transient attach problem.
    if (inst->alloc->openStatus() != NvStatus::Ok)
        return NVALLOC_EINVAL;
    ThreadCtx *ctx = inst->ctx();
    if (!ctx)
        return NVALLOC_EAGAIN;
    return inst->alloc->freeFrom(*ctx, where) == NvStatus::Ok
               ? NVALLOC_OK
               : NVALLOC_EINVAL;
}

namespace {

/** The errno mapping shared by nvalloc_errno and the tx calls'
 *  return values. */
int
mapStatus(NvStatus s)
{
    switch (s) {
    case NvStatus::Ok:
        return NVALLOC_OK;
    case NvStatus::OutOfMemory:
    case NvStatus::LogExhausted:
    case NvStatus::RegionTableFull:
    case NvStatus::QuotaExceeded: // per-tenant quota: exhaustion shape
        return NVALLOC_ENOMEM;
    case NvStatus::TooManyThreads:
        return NVALLOC_EAGAIN;
    case NvStatus::InvalidFree:
    case NvStatus::InvalidArgument:
    case NvStatus::UnknownCtl:
        return NVALLOC_EINVAL;
    case NvStatus::CorruptMetadata:
    case NvStatus::HeapUnhealthy: // contained heap; repair it first
        return NVALLOC_ECORRUPT;
    }
    return NVALLOC_OK;
}

} // namespace

int
nvalloc_errno(NvInstance *inst)
{
    return mapStatus(inst->alloc->lastStatus());
}

/** Shared preamble of the tx entry points: a degraded instance rejects
 *  every tx call outright (EINVAL, with nvalloc_errno set via
 *  txRejected — the heap is read-only); then the implicit per-thread
 *  attach. Returns nullptr with *err set on refusal. */
static ThreadCtx *
txEnter(NvInstance *inst, int *err)
{
    if (inst->alloc->openStatus() != NvStatus::Ok) {
        inst->alloc->txRejected();
        *err = NVALLOC_EINVAL;
        return nullptr;
    }
    ThreadCtx *ctx = inst->ctx();
    if (!ctx) {
        *err = NVALLOC_EAGAIN;
        return nullptr;
    }
    return ctx;
}

int
nvalloc_tx_begin(NvInstance *inst)
{
    int err = NVALLOC_OK;
    ThreadCtx *ctx = txEnter(inst, &err);
    if (!ctx)
        return err;
    return mapStatus(inst->alloc->txBegin(*ctx));
}

void *
nvalloc_tx_alloc(NvInstance *inst, size_t size, uint64_t *where)
{
    int err = NVALLOC_OK;
    ThreadCtx *ctx = txEnter(inst, &err);
    if (!ctx)
        return nullptr;
    uint64_t off = inst->alloc->txAlloc(*ctx, size, where);
    return off ? inst->alloc->device().at(off) : nullptr;
}

int
nvalloc_tx_free(NvInstance *inst, uint64_t *where)
{
    int err = NVALLOC_OK;
    ThreadCtx *ctx = txEnter(inst, &err);
    if (!ctx)
        return err;
    if (!where || *where == 0) {
        inst->alloc->txRejected();
        return NVALLOC_EINVAL;
    }
    return mapStatus(inst->alloc->txFree(*ctx, *where));
}

int
nvalloc_tx_write(NvInstance *inst, uint64_t *word, uint64_t value)
{
    int err = NVALLOC_OK;
    ThreadCtx *ctx = txEnter(inst, &err);
    if (!ctx)
        return err;
    return mapStatus(inst->alloc->txWrite(*ctx, word, value));
}

int
nvalloc_tx_commit(NvInstance *inst)
{
    int err = NVALLOC_OK;
    ThreadCtx *ctx = txEnter(inst, &err);
    if (!ctx)
        return err;
    return mapStatus(inst->alloc->txCommit(*ctx));
}

int
nvalloc_tx_abort(NvInstance *inst)
{
    int err = NVALLOC_OK;
    ThreadCtx *ctx = txEnter(inst, &err);
    if (!ctx)
        return err;
    return mapStatus(inst->alloc->txAbort(*ctx));
}

uint64_t *
nvalloc_root(NvInstance *inst, unsigned idx)
{
    return inst->alloc->rootWord(idx);
}

NvAlloc *
nvalloc_impl(NvInstance *inst)
{
    return inst->alloc;
}

ThreadCtx *
nvalloc_thread(NvInstance *inst)
{
    return inst->ctx();
}

int
nvalloc_ctl(NvInstance *inst, const char *name, uint64_t *out)
{
    return inst->alloc->ctlRead(name, out) == NvStatus::Ok
               ? NVALLOC_OK
               : NVALLOC_EINVAL;
}

size_t
nvalloc_stats_json(NvInstance *inst, char *buf, size_t cap)
{
    std::string json = inst->alloc->statsJson();
    if (buf && cap > 0) {
        size_t n = std::min(cap - 1, json.size());
        std::memcpy(buf, json.data(), n);
        buf[n] = '\0';
    }
    return json.size();
}

} // namespace nvalloc
