#include "nvalloc/nvalloc_c.h"

#include <mutex>
#include <thread>
#include <unordered_map>

#include "nvalloc/nvalloc.h"

namespace nvalloc {

struct NvInstance
{
    explicit NvInstance(PmDevice &dev, NvAllocConfig cfg)
        : alloc(dev, cfg)
    {
    }

    NvAlloc alloc;
    std::mutex mutex;
    std::unordered_map<std::thread::id, ThreadCtx *> ctxs;

    ThreadCtx &
    ctx()
    {
        std::lock_guard<std::mutex> g(mutex);
        auto [it, fresh] = ctxs.emplace(std::this_thread::get_id(),
                                        nullptr);
        if (fresh)
            it->second = alloc.attachThread();
        return *it->second;
    }
};

NvInstance *
nvalloc_init(PmDevice *dev, const NvAllocOptions *opts)
{
    NvAllocConfig cfg;
    if (opts) {
        cfg.consistency =
            opts->gc_variant ? Consistency::Gc : Consistency::Log;
        cfg.bit_stripes = opts->bit_stripes;
        cfg.slab_morphing = opts->slab_morphing;
    }
    return new NvInstance(*dev, cfg);
}

void
nvalloc_exit(NvInstance *inst)
{
    {
        std::lock_guard<std::mutex> g(inst->mutex);
        for (auto &[tid, ctx] : inst->ctxs)
            inst->alloc.detachThread(ctx);
        inst->ctxs.clear();
    }
    delete inst;
}

void *
nvalloc_malloc_to(NvInstance *inst, size_t size, uint64_t *where)
{
    return inst->alloc.mallocTo(inst->ctx(), size, where);
}

void
nvalloc_free_from(NvInstance *inst, uint64_t *where)
{
    inst->alloc.freeFrom(inst->ctx(), where);
}

uint64_t *
nvalloc_root(NvInstance *inst, unsigned idx)
{
    return inst->alloc.rootWord(idx);
}

NvAlloc *
nvalloc_impl(NvInstance *inst)
{
    return &inst->alloc;
}

} // namespace nvalloc
