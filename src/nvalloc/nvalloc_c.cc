#include "nvalloc/nvalloc_c.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "nvalloc/nvalloc.h"

namespace nvalloc {

struct NvInstance
{
    explicit NvInstance(PmDevice &dev, NvAllocConfig cfg)
        : alloc(dev, cfg)
    {
    }

    NvAlloc alloc;
    std::mutex mutex;
    std::unordered_map<std::thread::id, ThreadCtx *> ctxs;

    /** Implicit per-thread attach; nullptr when the allocator refused
     *  the attach (slot exhaustion or a failed open). A refused thread
     *  retries on its next call rather than caching the failure. */
    ThreadCtx *
    ctx()
    {
        std::lock_guard<std::mutex> g(mutex);
        auto [it, fresh] = ctxs.emplace(std::this_thread::get_id(),
                                        nullptr);
        if (fresh || it->second == nullptr)
            it->second = alloc.attachThread();
        return it->second;
    }
};

NvInstance *
nvalloc_init(PmDevice *dev, const NvAllocOptions *opts)
{
    NvAllocConfig cfg;
    if (opts) {
        cfg.consistency =
            opts->gc_variant ? Consistency::Gc : Consistency::Log;
        cfg.bit_stripes = opts->bit_stripes;
        cfg.slab_morphing = opts->slab_morphing;
    }
    return new NvInstance(*dev, cfg);
}

void
nvalloc_exit(NvInstance *inst)
{
    {
        std::lock_guard<std::mutex> g(inst->mutex);
        for (auto &[tid, ctx] : inst->ctxs) {
            if (ctx)
                inst->alloc.detachThread(ctx);
        }
        inst->ctxs.clear();
    }
    delete inst;
}

void *
nvalloc_malloc_to(NvInstance *inst, size_t size, uint64_t *where)
{
    ThreadCtx *ctx = inst->ctx();
    if (!ctx)
        return nullptr; // attach refused; nvalloc_errno says why
    return inst->alloc.mallocTo(*ctx, size, where);
}

int
nvalloc_free_from(NvInstance *inst, uint64_t *where)
{
    ThreadCtx *ctx = inst->ctx();
    if (!ctx)
        return NVALLOC_EAGAIN;
    return inst->alloc.freeFrom(*ctx, where) == NvStatus::Ok
               ? NVALLOC_OK
               : NVALLOC_EINVAL;
}

int
nvalloc_errno(NvInstance *inst)
{
    switch (inst->alloc.lastStatus()) {
    case NvStatus::Ok:
        return NVALLOC_OK;
    case NvStatus::OutOfMemory:
    case NvStatus::LogExhausted:
    case NvStatus::RegionTableFull:
        return NVALLOC_ENOMEM;
    case NvStatus::TooManyThreads:
        return NVALLOC_EAGAIN;
    case NvStatus::InvalidFree:
    case NvStatus::InvalidArgument:
    case NvStatus::UnknownCtl:
        return NVALLOC_EINVAL;
    case NvStatus::CorruptMetadata:
        return NVALLOC_ECORRUPT;
    }
    return NVALLOC_OK;
}

uint64_t *
nvalloc_root(NvInstance *inst, unsigned idx)
{
    return inst->alloc.rootWord(idx);
}

NvAlloc *
nvalloc_impl(NvInstance *inst)
{
    return &inst->alloc;
}

int
nvalloc_ctl(NvInstance *inst, const char *name, uint64_t *out)
{
    return inst->alloc.ctlRead(name, out) == NvStatus::Ok
               ? NVALLOC_OK
               : NVALLOC_EINVAL;
}

size_t
nvalloc_stats_json(NvInstance *inst, char *buf, size_t cap)
{
    std::string json = inst->alloc.statsJson();
    if (buf && cap > 0) {
        size_t n = std::min(cap - 1, json.size());
        std::memcpy(buf, json.data(), n);
        buf[n] = '\0';
    }
    return json.size();
}

} // namespace nvalloc
