/**
 * @file
 * stats.kv.* counter block (DESIGN.md §13).
 *
 * The KV store (src/kv/) sits *above* the allocator, but its health is
 * operationally part of the heap: a tenant's corrupt-record count or
 * rejected-op rate is what an operator greps for when a heap degrades.
 * So the counters live in a struct the KvStore owns and *attaches* to
 * its backing NvAlloc (NvAlloc::attachKvStats); the ctl registry reads
 * through an atomic pointer and reports zeros while no store is
 * attached. This keeps the layering acyclic — nvalloc/ never depends
 * on kv/, it only exposes the mount point.
 *
 * All fields are relaxed atomics: bumped on KV op paths (under the
 * store's bucket stripe locks or not at all), read lock-free by
 * nvalloc_stat / ctlRead.
 */

#ifndef NVALLOC_NVALLOC_KV_STATS_H
#define NVALLOC_NVALLOC_KV_STATS_H

#include <atomic>
#include <cstdint>

namespace nvalloc {

struct KvStats
{
    // Mutation traffic (each counted once per *successful* op).
    std::atomic<uint64_t> inserts{0}; //!< puts creating a new key
    std::atomic<uint64_t> updates{0}; //!< puts replacing a value
    std::atomic<uint64_t> erases{0};
    std::atomic<uint64_t> rmws{0};

    // Read traffic.
    std::atomic<uint64_t> gets{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> scans{0};
    std::atomic<uint64_t> scanned_records{0};

    // Detection / rejection paths.
    std::atomic<uint64_t> corrupt_records{0};    //!< crc or header failures
    std::atomic<uint64_t> rejected_unhealthy{0}; //!< ops refused on a degraded tenant
    std::atomic<uint64_t> rejected_quota{0};     //!< inserts refused by the tenant quota
    std::atomic<uint64_t> failed_allocs{0};      //!< other txAlloc failures

    // Gauges (rebuilt on open, maintained under stripe locks).
    std::atomic<uint64_t> records{0};
    std::atomic<uint64_t> key_bytes{0};
    std::atomic<uint64_t> value_bytes{0};
    std::atomic<uint64_t> buckets{0};

    // Recovery.
    std::atomic<uint64_t> rebuilds{0};        //!< open-time index rebuilds
    std::atomic<uint64_t> rebuilt_records{0}; //!< records walked by rebuilds
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_KV_STATS_H
