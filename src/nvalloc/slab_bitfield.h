/**
 * @file
 * Two-level atomic bitfield: the lock-free replacement for the
 * vlock-guarded volatile slab bitmap (ROADMAP item 1, DESIGN.md §14).
 *
 * Layout follows the llfree bitfield/tree split: the lower level is an
 * array of 64-bit words manipulated with CAS (bit set = block not
 * available), the upper level is one summary bit per word (bit set =
 * word observed full) so a claim skips exhausted words without
 * touching their cache lines. The summary is advisory — it may lag in
 * either direction under concurrent claims and releases — and every
 * claim decision is re-validated by the word CAS itself, so a stale
 * summary costs a probe, never correctness.
 *
 * Claims rotate their starting word through a shared rotor, which is
 * what spreads concurrent reservations (and therefore the persistent
 * bit flushes that follow them) across bitmap cache lines — the atomic
 * successor of popBlockSpread's line cursor.
 *
 * Exclusive-context operations (recovery rebuild, morph, repair) use
 * the relaxed set/clear/reset entry points; callers must hold the
 * slab's freeze gate (see VSlab::freeze) so no CAS claim is in flight.
 */

#ifndef NVALLOC_NVALLOC_SLAB_BITFIELD_H
#define NVALLOC_NVALLOC_SLAB_BITFIELD_H

#include <atomic>
#include <bit>
#include <cstdint>

#include "common/bitmap_ops.h"
#include "common/logging.h"

namespace nvalloc {

template <unsigned MaxBits>
class SlabBitfield
{
  public:
    static constexpr unsigned kWords = unsigned(bitmapWords(MaxBits));
    static constexpr unsigned kSummaryWords =
        unsigned(bitmapWords(kWords));

    /** Sentinel returned by claim when no bit below `limit` is free. */
    static constexpr unsigned kNone = MaxBits;

    SlabBitfield() = default;

    // -- exclusive context (freeze gate or single-threaded) ----------

    void
    reset()
    {
        for (auto &w : words_)
            w.store(0, std::memory_order_relaxed);
        for (auto &s : summary_)
            s.store(0, std::memory_order_relaxed);
    }

    void
    set(unsigned bit)
    {
        words_[bit >> 6].fetch_or(uint64_t{1} << (bit & 63),
                                  std::memory_order_relaxed);
    }

    // -- shared context ----------------------------------------------

    bool
    test(unsigned bit) const
    {
        return (words_[bit >> 6].load(std::memory_order_relaxed) >>
                (bit & 63)) &
               1;
    }

    /** Set bits below `limit`; racing claims/releases make this a
     *  snapshot, exact only in exclusive context. */
    unsigned
    popcount(unsigned limit) const
    {
        unsigned n = 0;
        for (unsigned w = 0; w * 64 < limit; ++w) {
            uint64_t v = words_[w].load(std::memory_order_relaxed);
            if ((w + 1) * 64 > limit)
                v &= (uint64_t{1} << (limit & 63)) - 1;
            n += unsigned(std::popcount(v));
        }
        return n;
    }

    /**
     * Atomically claim (0 → 1) the first free bit below `limit`,
     * scanning words from `start_word` with wraparound. Returns the
     * bit index or kNone. Every CAS loss is counted into `retries` —
     * the stats.fastpath.cas_retries feed.
     */
    unsigned
    claim(unsigned limit, unsigned start_word, uint64_t &retries)
    {
        unsigned nwords = unsigned(bitmapWords(limit));
        for (unsigned probe = 0; probe < nwords; ++probe) {
            unsigned w = (start_word + probe) % nwords;
            if (summaryTest(w))
                continue; // advisory: word observed full
            uint64_t full = fullMask(w, limit);
            uint64_t cur = words_[w].load(std::memory_order_relaxed);
            while ((cur & full) != full) {
                unsigned bit = unsigned(std::countr_one(cur));
                uint64_t want = cur | (uint64_t{1} << bit);
                if (words_[w].compare_exchange_weak(
                        cur, want, std::memory_order_acq_rel,
                        std::memory_order_relaxed)) {
                    if ((want & full) == full)
                        summarySet(w);
                    return w * 64 + bit;
                }
                ++retries; // cur reloaded by the failed CAS
            }
            summarySet(w); // observed full; advisory
        }
        return kNone;
    }

    /** Atomically claim one specific bit; false if already set. */
    bool
    tryClaim(unsigned bit)
    {
        uint64_t mask = uint64_t{1} << (bit & 63);
        uint64_t prev = words_[bit >> 6].fetch_or(
            mask, std::memory_order_acq_rel);
        return (prev & mask) == 0;
    }

    /** Atomically release (1 → 0) one bit and unmark its summary. */
    void
    release(unsigned bit)
    {
        uint64_t mask = uint64_t{1} << (bit & 63);
        uint64_t prev = words_[bit >> 6].fetch_and(
            ~mask, std::memory_order_acq_rel);
        NV_ASSERT(prev & mask);
        summaryClear(unsigned(bit >> 6));
    }

  private:
    static uint64_t
    fullMask(unsigned w, unsigned limit)
    {
        if ((w + 1) * 64 <= limit)
            return ~uint64_t{0};
        unsigned tail = limit & 63;
        return tail ? (uint64_t{1} << tail) - 1 : ~uint64_t{0};
    }

    bool
    summaryTest(unsigned w) const
    {
        return (summary_[w >> 6].load(std::memory_order_relaxed) >>
                (w & 63)) &
               1;
    }

    void
    summarySet(unsigned w)
    {
        summary_[w >> 6].fetch_or(uint64_t{1} << (w & 63),
                                  std::memory_order_relaxed);
    }

    void
    summaryClear(unsigned w)
    {
        summary_[w >> 6].fetch_and(~(uint64_t{1} << (w & 63)),
                                   std::memory_order_relaxed);
    }

    std::atomic<uint64_t> words_[kWords] = {};
    std::atomic<uint64_t> summary_[kSummaryWords] = {};
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_SLAB_BITFIELD_H
