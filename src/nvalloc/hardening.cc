#include "nvalloc/hardening.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "nvalloc/arena.h"
#include "nvalloc/nvalloc.h"
#include "nvalloc/slab.h"
#include "telemetry/telemetry.h"

namespace nvalloc {

namespace {

/**
 * Process-wide registry of live heaps, for cross-heap free
 * classification. A Meyers singleton (not namespace-scope statics) so
 * heaps constructed before main() still find it initialized.
 */
struct HeapRegistry
{
    std::mutex mu;
    std::vector<NvAlloc *> heaps;
};

HeapRegistry &
registry()
{
    static HeapRegistry r;
    return r;
}

bool
fillIntact(const uint8_t *p, size_t n, uint8_t expect)
{
    for (size_t i = 0; i < n; ++i) {
        if (p[i] != expect)
            return false;
    }
    return true;
}

} // namespace

HardeningManager::~HardeningManager()
{
    // The owning NvAlloc calls shutdown() from its destructor before
    // subsystems die; this is only the safety net for init-less or
    // double-destroyed paths.
    if (registered_)
        shutdown(/*crashed=*/true);
}

void
HardeningManager::init(NvAlloc *owner, PmDevice *dev, Telemetry *tel,
                       const NvAllocConfig &cfg)
{
    owner_ = owner;
    dev_ = dev;
    tel_ = tel;
    policy_ = cfg.hardening_policy;
    quarantine_cap_ = cfg.quarantine_depth;
    if (owner_) {
        std::lock_guard<std::mutex> g(registry().mu);
        registry().heaps.push_back(owner_);
        registered_ = true;
    }
}

void
HardeningManager::shutdown(bool crashed)
{
    if (registered_) {
        std::lock_guard<std::mutex> g(registry().mu);
        auto &hs = registry().heaps;
        hs.erase(std::remove(hs.begin(), hs.end(), owner_), hs.end());
        registered_ = false;
    }
    if (crashed)
        dropQuarantine();
    else
        drainQuarantine();
    std::lock_guard<std::mutex> g(mu_);
    guard_map_.clear();
    watch_.clear();
}

bool
HardeningManager::ownedByAnotherHeap(uint64_t off) const
{
    if (!owner_)
        return false;
    std::lock_guard<std::mutex> g(registry().mu);
    for (NvAlloc *heap : registry().heaps) {
        if (heap != owner_ && heap->ownsOffset(off))
            return true;
    }
    return false;
}

void
HardeningManager::report(CorruptionKind kind, uint64_t off,
                         uint32_t size_class, std::string detail)
{
    switch (kind) {
    case CorruptionKind::GuardOverflow: bump(stats_.guard_overflows); break;
    case CorruptionKind::GuardUseAfterFree: bump(stats_.guard_uaf); break;
    case CorruptionKind::DoubleFree: bump(stats_.double_frees); break;
    case CorruptionKind::MisalignedFree:
        bump(stats_.misaligned_frees);
        break;
    case CorruptionKind::WildFree: bump(stats_.wild_frees); break;
    case CorruptionKind::CrossHeapFree:
        bump(stats_.cross_heap_frees);
        break;
    case CorruptionKind::CanaryStomp: bump(stats_.canary_stomps); break;
    case CorruptionKind::QuarantineStomp: bump(stats_.quarantine_uaf); break;
    case CorruptionKind::TxStagedFree: bump(stats_.tx_staged_frees); break;
    }
    bump(stats_.reports);

    CorruptionReport rep;
    rep.kind = kind;
    rep.off = off;
    rep.size_class = size_class;
    rep.detail = std::move(detail);
    if (tel_) {
        tel_->event(TraceOp::Corruption, off,
                    size_class <= 0xff ? uint8_t(size_class) : 0xff,
                    uint16_t(kind));
        if (tel_->tracingEvents()) {
            // The GWP-ASan-style context: the alloc/free history of
            // this exact offset, newest 8 events.
            std::vector<TraceEvent> all;
            tel_->drainEvents(all);
            for (const TraceEvent &e : all) {
                if (e.arg != off)
                    continue;
                if (e.op != TraceOp::Alloc && e.op != TraceOp::Free &&
                    e.op != TraceOp::InvalidFree &&
                    e.op != TraceOp::Corruption)
                    continue;
                rep.trace.push_back(e);
            }
            if (rep.trace.size() > 8)
                rep.trace.erase(rep.trace.begin(),
                                rep.trace.end() - 8);
        }
    }

    char line[160];
    std::snprintf(line, sizeof(line),
                  "hardening: %s at offset 0x%llx%s%s",
                  corruptionKindName(kind),
                  static_cast<unsigned long long>(off),
                  rep.detail.empty() ? "" : " — ",
                  rep.detail.c_str());
    NV_WARN(line);

    {
        std::lock_guard<std::mutex> g(mu_);
        reports_.push_back(std::move(rep));
        while (reports_.size() > kMaxRetainedReports)
            reports_.pop_front();
    }

    // Feed the heap health machine (DESIGN.md §12): every confirmed
    // corruption report degrades the owning heap. The state change is
    // always tracked; whether a Degraded heap keeps serving is the
    // owner's fault_containment policy, so single-heap configurations
    // behave exactly as before.
    if (owner_) {
        owner_->escalateHealth(HeapHealth::Degraded,
                               corruptionKindName(kind));
    }

    if (policy_ == HardeningPolicy::Abort) {
        NV_WARN("hardening: policy is abort");
        std::abort();
    }
}

std::vector<CorruptionReport>
HardeningManager::reportsSnapshot() const
{
    std::lock_guard<std::mutex> g(mu_);
    return std::vector<CorruptionReport>(reports_.begin(),
                                         reports_.end());
}

// ---- guard allocations ----------------------------------------------

void
HardeningManager::armGuard(uint64_t off, uint64_t user_size,
                           uint64_t extent_size)
{
    NV_ASSERT(extent_size > user_size);
    std::memset(static_cast<uint8_t *>(dev_->at(off)) + user_size,
                kGuardRedzoneByte, extent_size - user_size);
    {
        std::lock_guard<std::mutex> g(mu_);
        guard_map_[off] = GuardInfo{user_size, extent_size};
        // A stale watch entry for this offset describes the *previous*
        // guard life of the extent: its sizes no longer match the
        // memory, so verifying it after this allocation's own free
        // would misread the new redzone fill as a dirtied poison fill.
        for (auto it = watch_.begin(); it != watch_.end();) {
            if (it->off == off)
                it = watch_.erase(it);
            else
                ++it;
        }
    }
    bump(stats_.guard_allocs);
}

bool
HardeningManager::isGuard(uint64_t off) const
{
    std::lock_guard<std::mutex> g(mu_);
    return guard_map_.count(off) != 0;
}

bool
HardeningManager::takeGuard(uint64_t off, GuardInfo *out)
{
    std::lock_guard<std::mutex> g(mu_);
    auto it = guard_map_.find(off);
    if (it == guard_map_.end())
        return false;
    if (out)
        *out = it->second;
    guard_map_.erase(it);
    return true;
}

bool
HardeningManager::guardRedzoneIntact(uint64_t off,
                                     const GuardInfo &info) const
{
    const uint8_t *p =
        static_cast<const uint8_t *>(dev_->at(off)) + info.user_size;
    return fillIntact(p, info.extent_size - info.user_size,
                      kGuardRedzoneByte);
}

void
HardeningManager::watchFreedGuard(uint64_t off, const GuardInfo &info)
{
    // Capture the extent's reuse epoch before taking mu_ (lock order:
    // never mu_ then the large allocator's lock). The deferred verify
    // only trusts the poison fill while this free life is current.
    uint64_t epoch =
        owner_ ? owner_->large().reclaimedEpoch(off) : ~0ULL;
    WatchedGuard evicted;
    bool have_evicted = false;
    {
        std::lock_guard<std::mutex> g(mu_);
        watch_.push_back(WatchedGuard{off, info, epoch});
        if (watch_.size() > kGuardWatchDepth) {
            evicted = watch_.front();
            watch_.pop_front();
            have_evicted = true;
        }
    }
    if (have_evicted)
        verifyWatchedGuard(evicted);
}

void
HardeningManager::sweepGuardWatch()
{
    std::deque<WatchedGuard> pending;
    {
        std::lock_guard<std::mutex> g(mu_);
        pending.swap(watch_);
    }
    for (const WatchedGuard &w : pending)
        verifyWatchedGuard(w);
}

void
HardeningManager::verifyWatchedGuard(const WatchedGuard &w)
{
    if (!owner_)
        return;
    // verifyReclaimedFill holds the large allocator's lock, so the
    // extent cannot be handed back out mid-check; -1 means it already
    // was (or was coalesced/decommitted) and the evidence is gone.
    int r = owner_->large().verifyReclaimedFill(
        w.off, w.info.extent_size, w.epoch, w.info.user_size,
        kGuardFreeByte);
    if (r > 0) {
        report(CorruptionKind::GuardUseAfterFree, w.off, ~0u,
               "freed guard extent's poison fill was overwritten");
    }
}

// ---- delayed-reuse quarantine ---------------------------------------

void
HardeningManager::quarantinePush(VSlab *slab, unsigned idx,
                                 uint64_t off, unsigned block_size)
{
    // The block is lent: its slab cannot be released and nobody else
    // can be handed the block, so this fill cannot race a new owner.
    std::memset(dev_->at(off), kQuarantineByte, block_size);
    bump(stats_.quarantine_pushes);

    QuarantinedBlock evicted;
    bool have_evicted = false;
    {
        std::lock_guard<std::mutex> g(mu_);
        quarantine_.push_back(
            QuarantinedBlock{slab, idx, off, block_size});
        if (quarantine_.size() > quarantine_cap_) {
            evicted = quarantine_.front();
            quarantine_.pop_front();
            have_evicted = true;
        }
    }
    if (have_evicted)
        evictOne(evicted);
}

void
HardeningManager::evictOne(QuarantinedBlock b)
{
    if (!fillIntact(static_cast<const uint8_t *>(dev_->at(b.off)),
                    b.block_size, kQuarantineByte)) {
        report(CorruptionKind::QuarantineStomp, b.off, ~0u,
               "quarantined block was written after free");
    }
    Arena *arena = b.slab->arena;
    VLockGuard g(arena->lock);
    arena->returnLent(b.slab, b.idx);
    bump(stats_.quarantine_evictions);
}

void
HardeningManager::drainQuarantine()
{
    std::deque<QuarantinedBlock> pending;
    {
        std::lock_guard<std::mutex> g(mu_);
        pending.swap(quarantine_);
    }
    for (const QuarantinedBlock &b : pending)
        evictOne(b);
}

void
HardeningManager::dropQuarantine()
{
    std::lock_guard<std::mutex> g(mu_);
    quarantine_.clear();
}

// ---- introspection --------------------------------------------------

std::string
HardeningManager::json() const
{
    auto v = [](const std::atomic<uint64_t> &a) {
        return a.load(std::memory_order_relaxed);
    };
    uint64_t qdepth, gdepth, wdepth;
    {
        std::lock_guard<std::mutex> g(mu_);
        qdepth = quarantine_.size();
        gdepth = guard_map_.size();
        wdepth = watch_.size();
    }
    std::string s = "{";
    auto field = [&s](const char *name, uint64_t val, bool last = false) {
        s += '"';
        s += name;
        s += "\":";
        s += std::to_string(val);
        if (!last)
            s += ',';
    };
    field("validated_frees", v(stats_.validated_frees));
    field("double_frees", v(stats_.double_frees));
    field("misaligned_frees", v(stats_.misaligned_frees));
    field("wild_frees", v(stats_.wild_frees));
    field("cross_heap_frees", v(stats_.cross_heap_frees));
    field("canary_stomps", v(stats_.canary_stomps));
    field("tx_staged_frees", v(stats_.tx_staged_frees));
    field("guard_allocs", v(stats_.guard_allocs));
    field("guard_frees", v(stats_.guard_frees));
    field("guard_overflows", v(stats_.guard_overflows));
    field("guard_uaf", v(stats_.guard_uaf));
    field("guard_live", gdepth);
    field("guard_watched", wdepth);
    field("quarantine_pushes", v(stats_.quarantine_pushes));
    field("quarantine_evictions", v(stats_.quarantine_evictions));
    field("quarantine_uaf", v(stats_.quarantine_uaf));
    field("quarantine_depth", qdepth);
    field("leaked_blocks", v(stats_.leaked_blocks));
    field("reports", v(stats_.reports), /*last=*/true);
    s += '}';
    return s;
}

} // namespace nvalloc
