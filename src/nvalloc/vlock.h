/**
 * @file
 * Mutex with virtual-time contention modeling.
 *
 * Wraps a real std::mutex (for actual correctness under concurrency)
 * and mirrors every hold in virtual time through a VServer: at unlock,
 * the elapsed virtual hold is booked into the lock's windowed
 * capacity, and whatever queueing delay the booking implies is added
 * to the holder's clock. Threads that hammer a hot arena therefore
 * accumulate virtual wait exactly as they would accumulate wall-clock
 * wait on a real multicore — which is what makes thread-scaling curves
 * meaningful on a single-core host — while uncontended locks cost
 * nothing.
 */

#ifndef NVALLOC_NVALLOC_VLOCK_H
#define NVALLOC_NVALLOC_VLOCK_H

#include <mutex>

#include "pm/vclock.h"

namespace nvalloc {

class VLock
{
  public:
    void
    lock()
    {
        mutex_.lock();
        entry_ = VClock::now();
    }

    void
    unlock()
    {
        uint64_t hold = VClock::now() - entry_;
        if (hold > 0) {
            uint64_t start = server_.reserve(entry_, hold);
            VClock::advanceTo(start + hold, TimeKind::LockWait);
        }
        mutex_.unlock();
    }

    void reset() { server_.reset(); }

  private:
    std::mutex mutex_;
    VServer server_;
    uint64_t entry_ = 0; //!< holder's clock at acquisition
};

using VLockGuard = std::lock_guard<VLock>;

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_VLOCK_H
