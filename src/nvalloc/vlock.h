/**
 * @file
 * Mutex with virtual-time contention modeling.
 *
 * Wraps a real std::mutex (for actual correctness under concurrency)
 * and mirrors every hold in virtual time through a VServer: at unlock,
 * the elapsed virtual hold is booked into the lock's windowed
 * capacity, and whatever queueing delay the booking implies is added
 * to the holder's clock. Threads that hammer a hot arena therefore
 * accumulate virtual wait exactly as they would accumulate wall-clock
 * wait on a real multicore — which is what makes thread-scaling curves
 * meaningful on a single-core host — while uncontended locks cost
 * nothing.
 */

#ifndef NVALLOC_NVALLOC_VLOCK_H
#define NVALLOC_NVALLOC_VLOCK_H

#include <cstdint>
#include <mutex>

#include "common/logging.h"
#include "pm/vclock.h"

namespace nvalloc {

/**
 * Monotonic count of VLock acquisitions by this thread. A counter, not
 * a depth: lock/unlock pairs do not restore it, so a scope that must
 * stay lock-free (VLockFreeScope) can detect even a perfectly balanced
 * acquire-release inside itself.
 */
inline thread_local uint64_t tl_vlock_acquisitions = 0;

class VLock
{
  public:
    void
    lock()
    {
        mutex_.lock();
        ++tl_vlock_acquisitions;
        entry_ = VClock::now();
    }

    void
    unlock()
    {
        uint64_t hold = VClock::now() - entry_;
        if (hold > 0) {
            uint64_t start = server_.reserve(entry_, hold);
            VClock::advanceTo(start + hold, TimeKind::LockWait);
        }
        mutex_.unlock();
    }

    void reset() { server_.reset(); }

  private:
    std::mutex mutex_;
    VServer server_;
    uint64_t entry_ = 0; //!< holder's clock at acquisition
};

using VLockGuard = std::lock_guard<VLock>;

/**
 * Debug assertion that a region acquires no VLock — the ISSUE 9
 * acceptance check for the small alloc/free hit path. Release builds
 * compile it away entirely. Deliberately scoped to the allocator's own
 * locks: the virtual-time substrate (VServer bookkeeping, telemetry
 * shards) may use host mutexes internally without modeling — or
 * constituting — allocator serialization.
 */
class VLockFreeScope
{
#ifndef NDEBUG
  public:
    VLockFreeScope() : entry_(tl_vlock_acquisitions) {}

    ~VLockFreeScope()
    {
        NV_ASSERT(tl_vlock_acquisitions == entry_ &&
                  "hot path acquired a VLock");
    }

  private:
    uint64_t entry_;
#endif
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_VLOCK_H
